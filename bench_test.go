// Benchmarks: one per paper table/figure (each iteration regenerates the
// experiment end to end in the simulator; run `go test -bench=Fig -benchtime=1x`
// for a single full sweep), plus micro-benchmarks of the hot substrate
// primitives (hashing, GRO, encapsulation, event dispatch).
package falcon_test

import (
	"testing"

	falcon "falcon"
	"falcon/internal/gro"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/skb"
)

func benchExperiment(b *testing.B, id string) {
	benchExperimentOpt(b, id, falcon.ExperimentOptions{Quick: true})
}

func benchExperimentOpt(b *testing.B, id string, opt falcon.ExperimentOptions) {
	b.Helper()
	e, ok := falcon.ExperimentByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(opt)
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no results", id)
		}
	}
}

// Paper figures (Section 2.2 motivation and Section 6 evaluation).

func BenchmarkFig2a(b *testing.B) { benchExperiment(b, "fig2a") }
func BenchmarkFig2b(b *testing.B) { benchExperiment(b, "fig2b") }
func BenchmarkFig2c(b *testing.B) { benchExperiment(b, "fig2c") }
func BenchmarkFig2d(b *testing.B) { benchExperiment(b, "fig2d") }
func BenchmarkFig4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig9a(b *testing.B) { benchExperiment(b, "fig9a") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig10Audit is fig10 with full runtime verification on (SKB
// ledger, conservation sweeps, watchdog, trace ring) — run against
// BenchmarkFig10 to measure the audit subsystem's overhead. Audit-off
// cost is a nil-check per lifecycle hook and is covered by the
// bench-report allocation guard.
func BenchmarkFig10Audit(b *testing.B) {
	benchExperimentOpt(b, "fig10", falcon.ExperimentOptions{Quick: true, Audit: true})
}
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B) { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B) { benchExperiment(b, "fig19") }

// Ablations (DESIGN.md §5).

func BenchmarkAblationGROSplit(b *testing.B) { benchExperiment(b, "abl-grosplit") }
func BenchmarkAblationLocality(b *testing.B) { benchExperiment(b, "abl-locality") }
func BenchmarkAblationStages(b *testing.B)   { benchExperiment(b, "abl-stages") }
func BenchmarkAblationDynSplit(b *testing.B) { benchExperiment(b, "abl-dynsplit") }
func BenchmarkBaselineSlim(b *testing.B)     { benchExperiment(b, "abl-slim") }
func BenchmarkExtensionMTU(b *testing.B)     { benchExperiment(b, "abl-mtu") }
func BenchmarkAblationBalancer(b *testing.B) { benchExperiment(b, "abl-balancer") }
func BenchmarkAblationChaos(b *testing.B)    { benchExperiment(b, "abl-chaos") }

// Substrate micro-benchmarks.

func BenchmarkFlowHash(b *testing.B) {
	k := skb.FlowKey{
		SrcIP: proto.IP4(10, 0, 0, 1), DstIP: proto.IP4(10, 0, 0, 2),
		SrcPort: 12345, DstPort: 80, Proto: proto.ProtoTCP,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = k.Hash()
	}
}

func BenchmarkDeviceFlowHash(b *testing.B) {
	h := uint32(0xdeadbeef)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = skb.DeviceFlowHash(h, i&7)
	}
}

func BenchmarkEncapsulate(b *testing.B) {
	inner := proto.BuildUDPFrame(proto.MACFromUint64(1), proto.MACFromUint64(2),
		proto.IP4(10, 32, 0, 1), proto.IP4(10, 32, 0, 2), 7000, 5001, 1,
		make([]byte, 1400))
	b.SetBytes(int64(len(inner)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = proto.Encapsulate(inner, proto.MACFromUint64(3), proto.MACFromUint64(4),
			proto.IP4(192, 168, 1, 1), proto.IP4(192, 168, 1, 2), 49152, 42, uint16(i))
	}
}

func BenchmarkDecapsulate(b *testing.B) {
	inner := proto.BuildUDPFrame(proto.MACFromUint64(1), proto.MACFromUint64(2),
		proto.IP4(10, 32, 0, 1), proto.IP4(10, 32, 0, 2), 7000, 5001, 1,
		make([]byte, 1400))
	outer := proto.Encapsulate(inner, proto.MACFromUint64(3), proto.MACFromUint64(4),
		proto.IP4(192, 168, 1, 1), proto.IP4(192, 168, 1, 2), 49152, 42, 7)
	b.SetBytes(int64(len(outer)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := proto.Decapsulate(outer); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGROPushFlush(b *testing.B) {
	seg := func(seq uint32) []byte {
		return proto.BuildTCPFrame(proto.MACFromUint64(1), proto.MACFromUint64(2),
			proto.IP4(10, 0, 0, 1), proto.IP4(10, 0, 0, 2),
			proto.TCPHdr{SrcPort: 5000, DstPort: 80, Seq: seq, Flags: proto.TCPAck, Window: 65535},
			0, make([]byte, 1400))
	}
	frames := make([][]byte, 8)
	for i := range frames {
		frames[i] = seg(uint32(i * 1400))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := gro.New()
		for _, fr := range frames {
			buf := make([]byte, len(fr))
			copy(buf, fr)
			e.Push(skb.New(buf))
		}
		if out := e.Flush(); len(out) != 1 {
			b.Fatalf("flush = %d", len(out))
		}
	}
}

func BenchmarkEventDispatch(b *testing.B) {
	e := sim.New(1)
	b.ReportAllocs()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(100, tick)
		}
	}
	e.After(100, tick)
	e.Run()
	if n < b.N {
		b.Fatal("event loop stalled")
	}
}

func BenchmarkOverlayPacketEndToEnd(b *testing.B) {
	// Cost of simulating one full overlay packet (tx → wire → 3-softirq
	// rx → socket), amortized: drive b.N packets through a testbed.
	tb := falcon.NewTestbed(falcon.TestbedConfig{
		LinkRate: 100 * falcon.Gbps, Cores: 8, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1}, GRO: true, InnerGRO: true,
	})
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 64, 2, 3, 1)
	b.ReportAllocs()
	b.ResetTimer()
	f.SendAtRate(100_000, falcon.Time(b.N)*10*falcon.Microsecond+falcon.Millisecond)
	tb.Run(falcon.Time(b.N)*10*falcon.Microsecond + 10*falcon.Millisecond)
	b.StopTimer()
	if f.Sock.Delivered.Value() == 0 {
		b.Fatal("nothing delivered")
	}
}
