// Package falcon is a faithful, fully simulated reproduction of
// "Parallelizing Packet Processing in Container Overlay Networks"
// (EuroSys 2021): the Falcon system — softirq pipelining, softirq
// splitting, and dynamic two-choice balancing for VXLAN container
// overlay networks — together with every substrate it runs on: a
// deterministic discrete-event multi-core kernel datapath (NAPI, RSS,
// RPS, GRO, per-CPU backlogs), byte-accurate VXLAN encapsulation, a
// Reno-style TCP, container/bridge/veth topologies, and the paper's
// workloads (sockperf, memcached, CloudSuite web serving).
//
// This package is the public facade: it re-exports the types needed to
// build testbeds, enable Falcon, drive traffic and measure results. The
// implementation lives under internal/; cmd/falconsim regenerates every
// figure in the paper, and EXPERIMENTS.md records the comparison.
package falcon

import (
	"io"

	falconcore "falcon/internal/core"
	"falcon/internal/devices"
	"falcon/internal/experiments"
	"falcon/internal/faults"
	"falcon/internal/overlay"
	"falcon/internal/pcap"
	"falcon/internal/sim"
	"falcon/internal/socket"
	"falcon/internal/stats"
	"falcon/internal/transport"
	"falcon/internal/workload"
)

// Core simulation handles.
type (
	// Sim is what every simulation object schedules against: either a
	// serial *Engine or a multi-shard PDES *Cluster.
	Sim = sim.Sim
	// Cluster is the conservative multi-shard PDES engine (one logical
	// process per simulated host, deterministic merge).
	Cluster = sim.Cluster
	// Engine is the deterministic discrete-event engine driving a
	// simulation.
	Engine = sim.Engine
	// Time is virtual time in nanoseconds.
	Time = sim.Time
)

// Re-exported duration units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Gbps expresses link rates in NewTestbed configs.
const Gbps = devices.Gbps

// Link is one simulated wire (Host.LinkTo; fault and pcap target).
type Link = devices.Link

// Topology and workload types.
type (
	// Testbed is the standard two-server (client/server) deployment the
	// paper's evaluation uses.
	Testbed = workload.Testbed
	// TestbedConfig sizes a Testbed.
	TestbedConfig = workload.TestbedConfig
	// Network is a custom overlay topology (hosts, containers, links).
	Network = overlay.Network
	// Host is one simulated server.
	Host = overlay.Host
	// Container is a container on a host's overlay network.
	Container = overlay.Container
	// UDPFlow is a sockperf-style UDP sender/receiver pair.
	UDPFlow = workload.UDPFlow
	// TCPConn is a simulated TCP connection through the overlay.
	TCPConn = transport.Conn
	// TCPConfig describes a TCP connection's endpoints.
	TCPConfig = transport.Config
	// Socket is a receiving endpoint with delivery instrumentation.
	Socket = socket.Socket
	// Result is one measured window of a workload.
	Result = workload.Result
	// Mode selects Host / Con / Falcon comparisons.
	Mode = workload.Mode
)

// Comparison modes, as labelled in the paper.
const (
	ModeHost   = workload.ModeHost
	ModeCon    = workload.ModeCon
	ModeFalcon = workload.ModeFalcon
)

// Falcon itself.
type (
	// Config selects Falcon's features (FALCON_CPUS, load threshold,
	// two-choice balancing, GRO splitting).
	Config = falconcore.Config
	// Falcon is a host's Falcon instance.
	Falcon = falconcore.Falcon
)

// DefaultLoadThreshold is FALCON_LOAD_THRESHOLD's default (85%).
const DefaultLoadThreshold = falconcore.DefaultLoadThreshold

// Standard testbed addresses.
var (
	// ClientIP and ServerIP are the public host IPs of a Testbed.
	ClientIP = workload.ClientIP
	ServerIP = workload.ServerIP
)

// DefaultConfig returns the paper's full Falcon configuration over the
// given FALCON_CPUS.
func DefaultConfig(cpus []int) Config { return falconcore.DefaultConfig(cpus) }

// NewEngine returns a deterministic simulation engine.
func NewEngine(seed uint64) *Engine { return sim.New(seed) }

// NewCluster returns a deterministic multi-shard PDES simulation whose
// printed results are byte-identical to the serial engine's.
func NewCluster(seed uint64, shards, workers int) *Cluster {
	return sim.NewCluster(seed, shards, workers)
}

// AutoShards picks a (shards, workers) pair for a topology with the
// given host count from runtime.NumCPU() — the CLI's `-shards auto`.
// (1, 1) means "use the serial engine". A negative TestbedConfig.Shards
// applies the same heuristic inside NewTestbed.
func AutoShards(hosts int) (shards, workers int) { return sim.AutoShards(hosts) }

// NewTestbed builds the standard client/server testbed.
func NewTestbed(cfg TestbedConfig) *Testbed { return workload.NewTestbed(cfg) }

// NewNetwork builds an empty custom topology on a simulation (a serial
// *Engine or a PDES *Cluster).
func NewNetwork(e Sim) *Network { return overlay.NewNetwork(e) }

// DialTCP establishes a TCP connection; appWork is extra per-message
// receiver-side processing.
func DialTCP(cfg TCPConfig, appWork Time) (*TCPConn, error) {
	return transport.Dial(cfg, appWork)
}

// MeasureWindow advances the testbed past warmup, measures one window
// over the given sockets, and returns server-side metrics.
func MeasureWindow(tb *Testbed, socks []*Socket, warmup, window Time) Result {
	return workload.MeasureWindow(tb, socks, warmup, window)
}

// Chaos harness: deterministic, time-windowed fault injection (see
// internal/faults for the plan format and the shipped fault types).
type (
	// Fault is one schedulable impairment.
	Fault = faults.Fault
	// FaultItem schedules a Fault over one time window.
	FaultItem = faults.Item
	// FaultPlan is a named schedule of impairments for one run.
	FaultPlan = faults.Plan
	// FaultInjector binds plans to an engine.
	FaultInjector = faults.Injector
)

// The shipped fault types, usable directly in FaultPlan items. Handles
// come from the testbed: links via Host.LinkTo, machines via Host.M,
// NICs via Host.NIC, the KV store via Network.KV.
type (
	// LinkLossBurst forces a loss rate on one link for the window.
	LinkLossBurst = faults.LinkLossBurst
	// LinkJitterBurst adds bounded random delay to one link.
	LinkJitterBurst = faults.LinkJitterBurst
	// RingShrink caps a pNIC's rx-ring occupancy.
	RingShrink = faults.RingShrink
	// CoreStall wedges cores silently (they keep their queues).
	CoreStall = faults.CoreStall
	// CoreOffline hot-unplugs cores visibly.
	CoreOffline = faults.CoreOffline
	// KVFlaky adds latency and transient failures to KV lookups.
	KVFlaky = faults.KVFlaky
	// NoisyNeighbor burns a utilization share of the given cores.
	NoisyNeighbor = faults.NoisyNeighbor
	// HostCrash kills a whole host for the window (queue-resident
	// packets die accounted; arrivals blackhole until the reboot).
	HostCrash = faults.HostCrash
	// HostReboot brings a crashed host back at the window start.
	HostReboot = faults.HostReboot
	// KVPartition cuts one host off from the KV control plane (stale
	// flow-cache serving, retry/backoff on misses, reconcile on heal).
	KVPartition = faults.KVPartition
)

// NewFaultInjector returns an injector whose randomness forks from the
// engine's seeded root RNG.
func NewFaultInjector(e Sim) *FaultInjector { return faults.NewInjector(e) }

// Experiment reproduces one of the paper's figures.
type Experiment = experiments.Experiment

// ExperimentOptions tunes experiment runs.
type ExperimentOptions = experiments.Options

// Experiments lists every reproducible figure/table.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID finds one experiment.
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// Table is a labelled results grid produced by experiments.
type Table = stats.Table

// Latency instrumentation: Result.LatencyHist and
// ExperimentOptions.TailLatency are *Histogram.
type (
	// Histogram is a log-linear latency histogram (deterministic,
	// mergeable across sockets and shards).
	Histogram = stats.Histogram
	// LatencySummary is a Histogram's percentile summary
	// (p50/p90/p99/p99.9, min/max/mean).
	LatencySummary = stats.Summary
	// Rand is the deterministic splitmix64 RNG every simulation object
	// draws from; custom Samplers and Arrivals receive one.
	Rand = sim.Rand
)

// NewHistogram returns an empty latency histogram, e.g. for
// ExperimentOptions.TailLatency.
func NewHistogram() *Histogram { return stats.NewHistogram() }

// Open-loop load generation and trace replay (DESIGN.md §3.1). Both
// attach to a Testbed: tb.StartOpenLoop(cfg, until) /
// tb.StartReplay(cfg). Their send schedules are drawn independently of
// the datapath, so offered load is honest under overload and identical
// across modes and shard counts.
type (
	// Sampler draws flow sizes; Pareto and Lognormal are shipped.
	Sampler = workload.Sampler
	// Pareto is the heavy-tailed size distribution P(X>x) = (Xm/x)^Alpha.
	Pareto = workload.Pareto
	// Lognormal: ln X ~ N(Mu, Sigma²).
	Lognormal = workload.Lognormal
	// Arrivals produces interarrival gaps for the flow arrival process.
	Arrivals = workload.Arrivals
	// PoissonArrivals is the memoryless arrival baseline.
	PoissonArrivals = workload.PoissonArrivals
	// MMPP2 is a bursty two-state Markov-modulated Poisson process.
	MMPP2 = workload.MMPP2
	// OpenLoopConfig sizes an open-loop flow population.
	OpenLoopConfig = workload.OpenLoopConfig
	// OpenLoop is a running population (Testbed.StartOpenLoop).
	OpenLoop = workload.OpenLoop
	// ReplayConfig schedules pcap records onto testbed flows.
	ReplayConfig = workload.ReplayConfig
	// Replay is a running trace replay (Testbed.StartReplay).
	Replay = workload.Replay
)

// LognormalWithMean builds a Lognormal with the given expectation and
// shape sigma.
func LognormalWithMean(mean, sigma float64) Lognormal {
	return workload.LognormalWithMean(mean, sigma)
}

// Pcap traces: capture the virtual wire to tcpdump-readable files and
// read captures back for ReplayConfig.Records.
type (
	// PcapWriter writes a pcap stream (NewPcapWriter; attach with TapLink).
	PcapWriter = pcap.Writer
	// PcapReader iterates records from a pcap stream.
	PcapReader = pcap.Reader
	// PcapRecord is one captured frame with its timestamp.
	PcapRecord = pcap.Record
)

// NewPcapWriter starts a pcap stream; snapLen 0 captures full frames.
func NewPcapWriter(w io.Writer, snapLen int) (*PcapWriter, error) {
	return pcap.NewWriter(w, snapLen)
}

// NewPcapReader opens a pcap stream written by PcapWriter (strict
// little-endian µs/ns subset).
func NewPcapReader(r io.Reader) (*PcapReader, error) { return pcap.NewReader(r) }

// ReadPcap slurps a whole capture, e.g. for ReplayConfig.Records.
func ReadPcap(r io.Reader) ([]PcapRecord, error) { return pcap.ReadAll(r) }

// TapLink mirrors every frame crossing a link into a pcap stream.
func TapLink(l *Link, pw *PcapWriter) { pcap.Tap(l, pw) }
