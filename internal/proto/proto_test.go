package proto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0xab, 0x00, 0x01, 0x02, 0x03}
	if m.String() != "02:ab:00:01:02:03" {
		t.Fatalf("got %s", m)
	}
}

func TestMACFromUint64Unique(t *testing.T) {
	a, b := MACFromUint64(1), MACFromUint64(2)
	if a == b {
		t.Fatal("distinct ids produced equal MACs")
	}
	if a[0]&0x01 != 0 {
		t.Fatal("generated MAC is multicast")
	}
}

func TestIPv4AddrString(t *testing.T) {
	ip := IP4(10, 32, 0, 5)
	if ip.String() != "10.32.0.5" {
		t.Fatalf("got %s", ip)
	}
}

func TestChecksumRFCExample(t *testing.T) {
	// Known vector: an IPv4 header whose checksum field is filled must
	// verify to zero.
	var b [IPv4Len]byte
	PutIPv4(b[:], IPv4Hdr{TotalLen: 60, ID: 7, TTL: 64, Protocol: ProtoUDP,
		Src: IP4(192, 168, 0, 1), Dst: IP4(192, 168, 0, 2)})
	if Checksum(b[:]) != 0 {
		t.Fatal("checksum of checksummed header != 0")
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0xFF}) != ^uint16(0xFF00) {
		t.Fatal("odd-length checksum wrong")
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	h := EthernetHdr{Dst: MACFromUint64(1), Src: MACFromUint64(2), EtherType: EtherTypeIPv4}
	var b [EthLen]byte
	PutEthernet(b[:], h)
	got, err := ParseEthernet(b[:])
	if err != nil || got != h {
		t.Fatalf("round trip: %+v err=%v", got, err)
	}
	if _, err := ParseEthernet(b[:10]); err == nil {
		t.Fatal("truncated parse succeeded")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4Hdr{TotalLen: 120, ID: 99, TTL: 64, Protocol: ProtoTCP,
		Src: IP4(10, 0, 0, 1), Dst: IP4(10, 0, 0, 2)}
	b := make([]byte, 120)
	PutIPv4(b, h)
	got, err := ParseIPv4(b)
	if err != nil || got != h {
		t.Fatalf("round trip: %+v err=%v", got, err)
	}
}

func TestIPv4CorruptionDetected(t *testing.T) {
	b := make([]byte, 60)
	PutIPv4(b, IPv4Hdr{TotalLen: 60, TTL: 64, Protocol: ProtoUDP,
		Src: IP4(1, 2, 3, 4), Dst: IP4(5, 6, 7, 8)})
	b[15] ^= 0x40 // flip a bit in the source address
	if _, err := ParseIPv4(b); err != ErrBadChecksum {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestIPv4Truncated(t *testing.T) {
	b := make([]byte, 25)
	PutIPv4(b, IPv4Hdr{TotalLen: 60, TTL: 64, Protocol: ProtoUDP,
		Src: IP4(1, 2, 3, 4), Dst: IP4(5, 6, 7, 8)})
	if _, err := ParseIPv4(b); err == nil {
		t.Fatal("TotalLen beyond buffer accepted")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	h := UDPHdr{SrcPort: 1234, DstPort: 4789, Length: 20}
	b := make([]byte, 20)
	PutUDP(b, h)
	got, err := ParseUDP(b)
	if err != nil || got != h {
		t.Fatalf("round trip: %+v err=%v", got, err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	h := TCPHdr{SrcPort: 80, DstPort: 5000, Seq: 1 << 30, Ack: 42,
		Flags: TCPAck | TCPPsh, Window: 65535}
	var b [TCPLen]byte
	PutTCP(b[:], h)
	got, err := ParseTCP(b[:])
	if err != nil || got != h {
		t.Fatalf("round trip: %+v err=%v", got, err)
	}
}

func TestBuildParseUDPFrame(t *testing.T) {
	payload := []byte("hello overlay")
	b := BuildUDPFrame(MACFromUint64(1), MACFromUint64(2),
		IP4(10, 0, 0, 1), IP4(10, 0, 0, 2), 5555, 6666, 9, payload)
	f, err := ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if f.IP.Protocol != ProtoUDP || f.SrcPort() != 5555 || f.DstPort() != 6666 {
		t.Fatalf("ports: %d→%d", f.SrcPort(), f.DstPort())
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestBuildParseTCPFrame(t *testing.T) {
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	b := BuildTCPFrame(MACFromUint64(3), MACFromUint64(4),
		IP4(172, 17, 0, 2), IP4(172, 17, 0, 3),
		TCPHdr{SrcPort: 33000, DstPort: 80, Seq: 77, Flags: TCPAck, Window: 1000}, 3, payload)
	f, err := ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if f.TCP.Seq != 77 || f.TCP.Flags != TCPAck {
		t.Fatalf("tcp hdr: %+v", f.TCP)
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestVXLANHeaderRoundTrip(t *testing.T) {
	var b [VXLANLen]byte
	PutVXLAN(b[:], VXLANHdr{VNI: 0xABCDEF})
	got, err := ParseVXLAN(b[:])
	if err != nil || got.VNI != 0xABCDEF {
		t.Fatalf("vni = %#x err=%v", got.VNI, err)
	}
	b[0] = 0
	if _, err := ParseVXLAN(b[:]); err == nil {
		t.Fatal("missing I flag accepted")
	}
}

func TestEncapDecapRoundTrip(t *testing.T) {
	inner := BuildUDPFrame(MACFromUint64(10), MACFromUint64(11),
		IP4(10, 32, 0, 2), IP4(10, 32, 0, 3), 7000, 8000, 1, []byte("container payload"))
	outer := Encapsulate(inner, MACFromUint64(20), MACFromUint64(21),
		IP4(192, 168, 1, 1), IP4(192, 168, 1, 2), 49152, 42, 2)

	if len(outer) != len(inner)+OverlayOverhead {
		t.Fatalf("outer len = %d, want %d", len(outer), len(inner)+OverlayOverhead)
	}
	if !IsVXLAN(outer) {
		t.Fatal("IsVXLAN false for encapsulated frame")
	}
	if IsVXLAN(inner) {
		t.Fatal("IsVXLAN true for plain frame")
	}

	got, vni, err := Decapsulate(outer)
	if err != nil {
		t.Fatal(err)
	}
	if vni != 42 {
		t.Fatalf("vni = %d", vni)
	}
	if !bytes.Equal(got, inner) {
		t.Fatal("inner frame corrupted by encap/decap")
	}
	// Inner frame must still parse cleanly.
	f, err := ParseFrame(got)
	if err != nil || string(f.Payload) != "container payload" {
		t.Fatalf("inner parse: %v", err)
	}
}

func TestDecapsulateRejectsNonVXLAN(t *testing.T) {
	plain := BuildUDPFrame(MACFromUint64(1), MACFromUint64(2),
		IP4(1, 1, 1, 1), IP4(2, 2, 2, 2), 100, 200, 0, []byte("x"))
	if _, _, err := Decapsulate(plain); err == nil {
		t.Fatal("decap of non-VXLAN frame succeeded")
	}
}

func TestEncapDecapProperty(t *testing.T) {
	// Any payload survives encap→decap byte-for-byte.
	if err := quick.Check(func(payload []byte, vni uint32, sport uint16) bool {
		if len(payload) > 9000 {
			payload = payload[:9000]
		}
		vni &= 0xFFFFFF
		inner := BuildUDPFrame(MACFromUint64(1), MACFromUint64(2),
			IP4(10, 0, 0, 1), IP4(10, 0, 0, 2), 1000, 2000, 5, payload)
		outer := Encapsulate(inner, MACFromUint64(3), MACFromUint64(4),
			IP4(192, 168, 0, 1), IP4(192, 168, 0, 2), sport|0x8000, vni, 6)
		got, gotVNI, err := Decapsulate(outer)
		return err == nil && gotVNI == vni && bytes.Equal(got, inner)
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParseFrameErrors(t *testing.T) {
	if _, err := ParseFrame(nil); err == nil {
		t.Fatal("nil frame parsed")
	}
	// Unsupported ethertype.
	b := make([]byte, 60)
	PutEthernet(b, EthernetHdr{EtherType: 0x86DD}) // IPv6
	if _, err := ParseFrame(b); err == nil {
		t.Fatal("IPv6 ethertype accepted")
	}
	// Unsupported L4.
	PutEthernet(b, EthernetHdr{EtherType: EtherTypeIPv4})
	PutIPv4(b[EthLen:], IPv4Hdr{TotalLen: 40, TTL: 64, Protocol: 1, // ICMP
		Src: IP4(1, 1, 1, 1), Dst: IP4(2, 2, 2, 2)})
	if _, err := ParseFrame(b); err == nil {
		t.Fatal("ICMP accepted")
	}
}

func TestIPv4FragmentFlagsRoundTrip(t *testing.T) {
	b := make([]byte, 120)
	h := IPv4Hdr{TotalLen: 120, ID: 5, TTL: 64, Protocol: ProtoUDP,
		Src: IP4(1, 2, 3, 4), Dst: IP4(5, 6, 7, 8),
		MoreFrags: true, FragOff: 1480}
	PutIPv4(b, h)
	got, err := ParseIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.MoreFrags || got.FragOff != 1480 || !got.IsFragment() {
		t.Fatalf("fragment state lost: %+v", got)
	}
	// Last fragment: MF clear, offset set.
	h.MoreFrags = false
	PutIPv4(b, h)
	got, _ = ParseIPv4(b)
	if got.MoreFrags || got.FragOff != 1480 || !got.IsFragment() {
		t.Fatalf("last-fragment state lost: %+v", got)
	}
	// Non-fragment carries DF and is not a fragment.
	h.FragOff = 0
	PutIPv4(b, h)
	got, _ = ParseIPv4(b)
	if got.IsFragment() {
		t.Fatal("plain header reports fragment")
	}
}

func TestParseFrameFirstFragmentUDP(t *testing.T) {
	// A first fragment exposes the UDP ports (for hashing) but its
	// Length field describes the full datagram.
	full := BuildUDPFrame(MACFromUint64(1), MACFromUint64(2),
		IP4(10, 0, 0, 1), IP4(10, 0, 0, 2), 7000, 5001, 3, make([]byte, 4000))
	// Truncate to 1500 of IP payload and mark MF.
	frag := make([]byte, EthLen+IPv4Len+1480)
	copy(frag, full[:len(frag)])
	PutIPv4(frag[EthLen:], IPv4Hdr{TotalLen: uint16(IPv4Len + 1480), ID: 3, TTL: 64,
		Protocol: ProtoUDP, Src: IP4(10, 0, 0, 1), Dst: IP4(10, 0, 0, 2), MoreFrags: true})
	f, err := ParseFrame(frag)
	if err != nil {
		t.Fatalf("first fragment unparsable: %v", err)
	}
	if f.SrcPort() != 7000 || f.DstPort() != 5001 {
		t.Fatalf("ports lost: %d->%d", f.SrcPort(), f.DstPort())
	}
}

func TestParseFrameContinuationFragment(t *testing.T) {
	frag := make([]byte, EthLen+IPv4Len+1000)
	PutEthernet(frag, EthernetHdr{Dst: MACFromUint64(1), Src: MACFromUint64(2), EtherType: EtherTypeIPv4})
	PutIPv4(frag[EthLen:], IPv4Hdr{TotalLen: uint16(IPv4Len + 1000), ID: 3, TTL: 64,
		Protocol: ProtoUDP, Src: IP4(10, 0, 0, 1), Dst: IP4(10, 0, 0, 2),
		MoreFrags: true, FragOff: 1480})
	f, err := ParseFrame(frag)
	if err != nil {
		t.Fatalf("continuation fragment unparsable: %v", err)
	}
	if len(f.Payload) != 1000 {
		t.Fatalf("raw payload = %d", len(f.Payload))
	}
	if f.SrcPort() != 0 {
		t.Fatal("continuation fragment claims ports")
	}
}
