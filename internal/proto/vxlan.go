package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// VXLANHdr is the 8-byte VXLAN header (RFC 7348).
type VXLANHdr struct {
	VNI uint32 // 24-bit VXLAN network identifier
}

// vxlanFlagVNI marks the VNI field as valid (the only defined flag).
const vxlanFlagVNI = 0x08

// PutVXLAN writes a VXLAN header into b (len >= VXLANLen).
func PutVXLAN(b []byte, h VXLANHdr) {
	b[0] = vxlanFlagVNI
	b[1], b[2], b[3] = 0, 0, 0
	binary.BigEndian.PutUint32(b[4:8], h.VNI<<8)
}

// ParseVXLAN reads a VXLAN header from b.
func ParseVXLAN(b []byte) (VXLANHdr, error) {
	if len(b) < VXLANLen {
		return VXLANHdr{}, errTruncated("vxlan", len(b), VXLANLen)
	}
	if b[0]&vxlanFlagVNI == 0 {
		return VXLANHdr{}, errors.New("proto: VXLAN I flag not set")
	}
	return VXLANHdr{VNI: binary.BigEndian.Uint32(b[4:8]) >> 8}, nil
}

// Encapsulate wraps an inner Ethernet frame in outer
// Ethernet+IPv4+UDP+VXLAN headers — what vxlan_xmit does on transmit.
// srcPort carries the inner flow's entropy so RSS/RPS on the receiving
// host spread distinct inner flows across NIC queues, matching kernel
// behaviour (udp_flow_src_port).
func Encapsulate(inner []byte, srcMAC, dstMAC MAC, srcIP, dstIP IPv4Addr, srcPort uint16, vni uint32, ipID uint16) []byte {
	total := OverlayOverhead + len(inner)
	b := make([]byte, total)
	PutEthernet(b, EthernetHdr{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4})
	PutIPv4(b[EthLen:], IPv4Hdr{
		TotalLen: uint16(IPv4Len + UDPLen + VXLANLen + len(inner)),
		ID:       ipID,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      srcIP,
		Dst:      dstIP,
	})
	PutUDP(b[EthLen+IPv4Len:], UDPHdr{
		SrcPort: srcPort,
		DstPort: VXLANPort,
		Length:  uint16(UDPLen + VXLANLen + len(inner)),
	})
	PutVXLAN(b[EthLen+IPv4Len+UDPLen:], VXLANHdr{VNI: vni})
	copy(b[OverlayOverhead:], inner)
	return b
}

// PutEncapHeaders writes the OverlayOverhead bytes of outer
// Ethernet+IPv4+UDP+VXLAN headers into b, in front of an inner frame of
// innerLen bytes — the in-place variant of Encapsulate used when the skb
// has headroom (the kernel's skb_push path in vxlan_xmit).
func PutEncapHeaders(b []byte, srcMAC, dstMAC MAC, srcIP, dstIP IPv4Addr, srcPort uint16, vni uint32, ipID uint16, innerLen int) {
	PutEthernet(b, EthernetHdr{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4})
	PutIPv4(b[EthLen:], IPv4Hdr{
		TotalLen: uint16(IPv4Len + UDPLen + VXLANLen + innerLen),
		ID:       ipID,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      srcIP,
		Dst:      dstIP,
	})
	PutUDP(b[EthLen+IPv4Len:], UDPHdr{
		SrcPort: srcPort,
		DstPort: VXLANPort,
		Length:  uint16(UDPLen + VXLANLen + innerLen),
	})
	PutVXLAN(b[EthLen+IPv4Len+UDPLen:], VXLANHdr{VNI: vni})
}

// Decapsulate validates the outer headers of a VXLAN frame and returns
// the inner Ethernet frame and the VNI — what vxlan_rcv does on receive.
// The returned slice aliases the input buffer (zero copy, like the
// kernel's skb header pull).
func Decapsulate(outer []byte) (inner []byte, vni uint32, err error) {
	f, err := ParseFrame(outer)
	if err != nil {
		return nil, 0, fmt.Errorf("proto: decap outer: %w", err)
	}
	if f.IP.Protocol != ProtoUDP || f.UDP.DstPort != VXLANPort {
		return nil, 0, errors.New("proto: not a VXLAN frame")
	}
	vh, err := ParseVXLAN(f.Payload)
	if err != nil {
		return nil, 0, err
	}
	return f.Payload[VXLANLen:], vh.VNI, nil
}

// IsVXLAN reports whether the frame looks like VXLAN-in-UDP without
// fully validating it — the fast-path check udp_rcv performs before
// handing the packet to vxlan_rcv.
func IsVXLAN(b []byte) bool {
	f, err := ParseFrame(b)
	return err == nil && !f.IP.IsFragment() &&
		f.IP.Protocol == ProtoUDP && f.UDP.DstPort == VXLANPort
}
