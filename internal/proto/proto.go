// Package proto implements byte-accurate network headers: Ethernet, IPv4
// (with RFC 1071 checksums), UDP, TCP, and the VXLAN encapsulation used by
// Docker overlay networks. The simulated devices build and parse real
// frames, so the "prolonged data path" the paper analyses — encapsulation
// on transmit, decapsulation on receive — is actually executed on every
// packet rather than merely charged as an abstract cost.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Header lengths in bytes.
const (
	EthLen   = 14
	IPv4Len  = 20
	UDPLen   = 8
	TCPLen   = 20
	VXLANLen = 8

	// OverlayOverhead is the extra bytes VXLAN encapsulation adds to an
	// inner Ethernet frame: outer Ethernet + outer IPv4 + outer UDP +
	// VXLAN header.
	OverlayOverhead = EthLen + IPv4Len + UDPLen + VXLANLen
)

// EtherType values.
const (
	EtherTypeIPv4 = 0x0800
)

// IP protocol numbers.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// VXLANPort is the IANA-assigned UDP destination port for VXLAN.
const VXLANPort = 4789

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the MAC in colon-hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// MACFromUint64 derives a locally-administered unicast MAC from an id.
func MACFromUint64(v uint64) MAC {
	var m MAC
	m[0] = 0x02 // locally administered, unicast
	m[1] = byte(v >> 32)
	m[2] = byte(v >> 24)
	m[3] = byte(v >> 16)
	m[4] = byte(v >> 8)
	m[5] = byte(v)
	return m
}

// IPv4Addr is an IPv4 address in host byte order.
type IPv4Addr uint32

// IP4 builds an address from dotted quad components.
func IP4(a, b, c, d byte) IPv4Addr {
	return IPv4Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String renders the address in dotted-quad form.
func (ip IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Checksum computes the RFC 1071 ones-complement checksum of data.
func Checksum(data []byte) uint16 {
	var sum uint32
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// EthernetHdr is a parsed Ethernet header.
type EthernetHdr struct {
	Dst, Src  MAC
	EtherType uint16
}

// PutEthernet writes an Ethernet header into b (len >= EthLen).
func PutEthernet(b []byte, h EthernetHdr) {
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.EtherType)
}

// ParseEthernet reads an Ethernet header from b.
func ParseEthernet(b []byte) (EthernetHdr, error) {
	if len(b) < EthLen {
		return EthernetHdr{}, errTruncated("ethernet", len(b), EthLen)
	}
	var h EthernetHdr
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = binary.BigEndian.Uint16(b[12:14])
	return h, nil
}

// IPv4Hdr is a parsed IPv4 header (no options). MoreFrags and FragOff
// (in bytes, a multiple of 8) carry fragmentation state; a non-fragment
// has both zero and is emitted with DF set.
type IPv4Hdr struct {
	TotalLen  uint16
	ID        uint16
	TTL       uint8
	Protocol  uint8
	Src, Dst  IPv4Addr
	MoreFrags bool
	FragOff   uint16
}

// IsFragment reports whether the header describes an IP fragment.
func (h IPv4Hdr) IsFragment() bool { return h.MoreFrags || h.FragOff != 0 }

// PutIPv4 writes an IPv4 header with a valid checksum into b
// (len >= IPv4Len). TotalLen must include the header itself.
func PutIPv4(b []byte, h IPv4Hdr) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = 0    // DSCP/ECN
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	flags := uint16(0x4000) // DF on unfragmented datagrams
	if h.IsFragment() {
		flags = h.FragOff / 8
		if h.MoreFrags {
			flags |= 0x2000 // MF
		}
	}
	binary.BigEndian.PutUint16(b[6:8], flags)
	b[8] = h.TTL
	b[9] = h.Protocol
	b[10], b[11] = 0, 0
	binary.BigEndian.PutUint32(b[12:16], uint32(h.Src))
	binary.BigEndian.PutUint32(b[16:20], uint32(h.Dst))
	csum := Checksum(b[:IPv4Len])
	binary.BigEndian.PutUint16(b[10:12], csum)
}

// PatchIPv4ID rewrites the identification field of the IPv4 header that
// starts at b[EthLen:] and fixes the header checksum — the only per-packet
// mutation a cached encapsulation template needs.
func PatchIPv4ID(b []byte, id uint16) {
	ip := b[EthLen : EthLen+IPv4Len]
	binary.BigEndian.PutUint16(ip[4:6], id)
	ip[10], ip[11] = 0, 0
	csum := Checksum(ip)
	binary.BigEndian.PutUint16(ip[10:12], csum)
}

// ParseIPv4 reads and validates an IPv4 header from b.
func ParseIPv4(b []byte) (IPv4Hdr, error) {
	if len(b) < IPv4Len {
		return IPv4Hdr{}, errTruncated("ipv4", len(b), IPv4Len)
	}
	if b[0]>>4 != 4 {
		return IPv4Hdr{}, fmt.Errorf("proto: not IPv4 (version %d)", b[0]>>4)
	}
	if ihl := int(b[0]&0xf) * 4; ihl != IPv4Len {
		return IPv4Hdr{}, fmt.Errorf("proto: unsupported IPv4 options (ihl=%d)", ihl)
	}
	if Checksum(b[:IPv4Len]) != 0 {
		return IPv4Hdr{}, ErrBadChecksum
	}
	flags := binary.BigEndian.Uint16(b[6:8])
	h := IPv4Hdr{
		TotalLen:  binary.BigEndian.Uint16(b[2:4]),
		ID:        binary.BigEndian.Uint16(b[4:6]),
		TTL:       b[8],
		Protocol:  b[9],
		Src:       IPv4Addr(binary.BigEndian.Uint32(b[12:16])),
		Dst:       IPv4Addr(binary.BigEndian.Uint32(b[16:20])),
		MoreFrags: flags&0x2000 != 0,
		FragOff:   (flags & 0x1FFF) * 8,
	}
	if int(h.TotalLen) > len(b) {
		return IPv4Hdr{}, errTruncated("ipv4 payload", len(b), int(h.TotalLen))
	}
	return h, nil
}

// UDPHdr is a parsed UDP header.
type UDPHdr struct {
	SrcPort, DstPort uint16
	Length           uint16 // header + payload
}

// PutUDP writes a UDP header into b (len >= UDPLen). The checksum is left
// zero (legal for UDP over IPv4, and what VXLAN tunnels commonly do).
func PutUDP(b []byte, h UDPHdr) {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], h.Length)
	binary.BigEndian.PutUint16(b[6:8], 0)
}

// ParseUDP reads a UDP header from b.
func ParseUDP(b []byte) (UDPHdr, error) {
	if len(b) < UDPLen {
		return UDPHdr{}, errTruncated("udp", len(b), UDPLen)
	}
	h := UDPHdr{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Length:  binary.BigEndian.Uint16(b[4:6]),
	}
	if int(h.Length) > len(b) || h.Length < UDPLen {
		return UDPHdr{}, errTruncated("udp payload", len(b), int(h.Length))
	}
	return h, nil
}

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
)

// TCPHdr is a parsed TCP header (no options).
type TCPHdr struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
}

// PutTCP writes a TCP header into b (len >= TCPLen).
func PutTCP(b []byte, h TCPHdr) {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	b[12] = 5 << 4 // data offset: 5 words
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	binary.BigEndian.PutUint16(b[16:18], 0) // checksum (offloaded)
	binary.BigEndian.PutUint16(b[18:20], 0) // urgent
}

// ParseTCP reads a TCP header from b.
func ParseTCP(b []byte) (TCPHdr, error) {
	if len(b) < TCPLen {
		return TCPHdr{}, errTruncated("tcp", len(b), TCPLen)
	}
	if off := int(b[12]>>4) * 4; off != TCPLen {
		return TCPHdr{}, fmt.Errorf("proto: unsupported TCP options (offset=%d)", off)
	}
	return TCPHdr{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Ack:     binary.BigEndian.Uint32(b[8:12]),
		Flags:   b[13],
		Window:  binary.BigEndian.Uint16(b[14:16]),
	}, nil
}

// ErrBadChecksum reports a corrupted IPv4 header.
var ErrBadChecksum = errors.New("proto: bad checksum")

func errTruncated(layer string, got, want int) error {
	return fmt.Errorf("proto: truncated %s: %d bytes, need %d", layer, got, want)
}
