package proto

import (
	"encoding/binary"
	"fmt"
)

// Frame is a fully parsed Ethernet frame through L4. It is the
// simulation's equivalent of the kernel's flow dissector output.
type Frame struct {
	Eth     EthernetHdr
	IP      IPv4Hdr
	UDP     UDPHdr // valid when IP.Protocol == ProtoUDP
	TCP     TCPHdr // valid when IP.Protocol == ProtoTCP
	Payload []byte // L4 payload (points into the original buffer)
}

// SrcPort returns the L4 source port regardless of protocol.
func (f *Frame) SrcPort() uint16 {
	if f.IP.Protocol == ProtoTCP {
		return f.TCP.SrcPort
	}
	return f.UDP.SrcPort
}

// DstPort returns the L4 destination port regardless of protocol.
func (f *Frame) DstPort() uint16 {
	if f.IP.Protocol == ProtoTCP {
		return f.TCP.DstPort
	}
	return f.UDP.DstPort
}

// ParseFrame dissects an Ethernet frame down to L4.
func ParseFrame(b []byte) (Frame, error) {
	var f Frame
	var err error
	if f.Eth, err = ParseEthernet(b); err != nil {
		return f, err
	}
	if f.Eth.EtherType != EtherTypeIPv4 {
		return f, fmt.Errorf("proto: unsupported ethertype %#04x", f.Eth.EtherType)
	}
	ip := b[EthLen:]
	if f.IP, err = ParseIPv4(ip); err != nil {
		return f, err
	}
	l4 := ip[IPv4Len:int(f.IP.TotalLen)]
	if f.IP.FragOff != 0 {
		// Non-first fragment: no L4 header, raw payload only.
		f.Payload = l4
		return f, nil
	}
	switch f.IP.Protocol {
	case ProtoUDP:
		if f.IP.MoreFrags {
			// First fragment: the UDP header is present but its Length
			// covers the whole (unassembled) datagram.
			if len(l4) < UDPLen {
				return f, errTruncated("udp", len(l4), UDPLen)
			}
			f.UDP = UDPHdr{
				SrcPort: binary.BigEndian.Uint16(l4[0:2]),
				DstPort: binary.BigEndian.Uint16(l4[2:4]),
				Length:  binary.BigEndian.Uint16(l4[4:6]),
			}
			f.Payload = l4[UDPLen:]
			return f, nil
		}
		if f.UDP, err = ParseUDP(l4); err != nil {
			return f, err
		}
		f.Payload = l4[UDPLen:f.UDP.Length]
	case ProtoTCP:
		if f.TCP, err = ParseTCP(l4); err != nil {
			return f, err
		}
		f.Payload = l4[TCPLen:]
	default:
		return f, fmt.Errorf("proto: unsupported IP protocol %d", f.IP.Protocol)
	}
	return f, nil
}

// BuildUDPFrame assembles a complete Ethernet+IPv4+UDP frame around
// payload. ipID feeds the IPv4 identification field.
func BuildUDPFrame(srcMAC, dstMAC MAC, srcIP, dstIP IPv4Addr, srcPort, dstPort uint16, ipID uint16, payload []byte) []byte {
	total := EthLen + IPv4Len + UDPLen + len(payload)
	b := make([]byte, total)
	PutEthernet(b, EthernetHdr{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4})
	PutIPv4(b[EthLen:], IPv4Hdr{
		TotalLen: uint16(IPv4Len + UDPLen + len(payload)),
		ID:       ipID,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      srcIP,
		Dst:      dstIP,
	})
	PutUDP(b[EthLen+IPv4Len:], UDPHdr{
		SrcPort: srcPort,
		DstPort: dstPort,
		Length:  uint16(UDPLen + len(payload)),
	})
	copy(b[EthLen+IPv4Len+UDPLen:], payload)
	return b
}

// BuildTCPFrame assembles a complete Ethernet+IPv4+TCP frame.
func BuildTCPFrame(srcMAC, dstMAC MAC, srcIP, dstIP IPv4Addr, hdr TCPHdr, ipID uint16, payload []byte) []byte {
	total := EthLen + IPv4Len + TCPLen + len(payload)
	b := make([]byte, total)
	PutEthernet(b, EthernetHdr{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4})
	PutIPv4(b[EthLen:], IPv4Hdr{
		TotalLen: uint16(IPv4Len + TCPLen + len(payload)),
		ID:       ipID,
		TTL:      64,
		Protocol: ProtoTCP,
		Src:      srcIP,
		Dst:      dstIP,
	})
	PutTCP(b[EthLen+IPv4Len:], hdr)
	copy(b[EthLen+IPv4Len+TCPLen:], payload)
	return b
}
