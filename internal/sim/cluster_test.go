package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// The synthetic PDES workload: nNodes logical nodes, each mapped to a
// shard, running a self-rescheduling event chain with private RNG
// draws, and posting messages to the next node over a "link" with
// linkDelay minimum latency plus jitter. A coordinator-side control
// event samples every node's counter each controlPeriod. Per-node
// traces plus the control trace must be identical for every
// (shards, workers) combination.
const (
	pdesNodes         = 4
	pdesLinkDelay     = Time(800)
	pdesControlPeriod = Time(50_000)
	pdesRunFor        = Time(500_000)
)

type pdesNode struct {
	id    int
	e     *Engine
	out   *PostSource // nil when the next node shares this engine
	rng   *Rand
	next  *pdesNode
	count uint64
	trace []string
}

// Local event times of node i are kept ≡ i (mod 8): every self-delay
// is a multiple of 8 and the start offset is i. Cross-node messages
// therefore never collide with destination-local events on both firing
// time and schedule time at once, which is the one tie the cluster
// cannot break serially (see DESIGN.md §6) — the traces below are then
// required to match exactly.
func (n *pdesNode) step() {
	n.count++
	n.trace = append(n.trace, fmt.Sprintf("step %d @%d", n.count, n.e.Now()))
	// Occasionally message the next node; arrival respects the link's
	// minimum latency, with jitter on top.
	if n.rng.Intn(3) == 0 {
		at := n.e.Now() + pdesLinkDelay + Time(n.rng.Intn(500))
		if n.out == nil {
			n.next.e.AtArg(at, pdesRecv, n.next)
		} else {
			n.out.Post(at, nil, pdesRecv, n.next)
		}
	}
	n.e.After(Time(160+8*n.rng.Intn(40)), n.step)
}

func pdesRecv(v any) {
	n := v.(*pdesNode)
	n.count += 10
	n.trace = append(n.trace, fmt.Sprintf("recv %d @%d", n.count, n.e.Now()))
}

// runPDES builds and runs the synthetic workload, returning the
// per-node traces and the control-sample trace.
func runPDES(t *testing.T, shards, workers int) ([][]string, []string) {
	t.Helper()
	c := NewCluster(1, shards, workers)
	c.Bound(pdesLinkDelay)
	nodes := make([]*pdesNode, pdesNodes)
	for i := range nodes {
		nodes[i] = &pdesNode{id: i, e: c.Shard(i), rng: c.Rand().Fork()}
	}
	for i, n := range nodes {
		n.next = nodes[(i+1)%len(nodes)]
		if n.next.e != n.e {
			n.out = c.Source(n.e, n.next.e)
		}
		n.e.After(Time(80*i+i), n.step)
	}
	var control []string
	var sample func()
	sample = func() {
		s := fmt.Sprintf("@%d:", c.Now())
		for _, n := range nodes {
			s += fmt.Sprintf(" %d", n.count)
		}
		control = append(control, s)
		c.After(pdesControlPeriod, sample)
	}
	c.After(pdesControlPeriod, sample)
	c.RunUntil(pdesRunFor)
	traces := make([][]string, len(nodes))
	for i, n := range nodes {
		traces[i] = n.trace
	}
	if got := c.Now(); got != pdesRunFor {
		t.Fatalf("shards=%d workers=%d: Now()=%v after RunUntil(%v)", shards, workers, got, pdesRunFor)
	}
	for i := 0; i < shards; i++ {
		if got := c.Shard(i).Now(); got != pdesRunFor {
			t.Fatalf("shards=%d workers=%d: shard %d clock %v, want %v", shards, workers, i, got, pdesRunFor)
		}
	}
	return traces, control
}

// TestClusterDeterminism: execution traces are byte-identical for every
// shard and worker count, including the degenerate 1-shard cluster.
func TestClusterDeterminism(t *testing.T) {
	refTraces, refControl := runPDES(t, 1, 1)
	for _, n := range refTraces {
		if len(n) == 0 {
			t.Fatal("reference run produced an empty trace")
		}
	}
	for _, cfg := range [][2]int{{2, 1}, {2, 2}, {4, 2}, {4, 4}, {8, 4}} {
		traces, control := runPDES(t, cfg[0], cfg[1])
		if !reflect.DeepEqual(traces, refTraces) {
			t.Errorf("shards=%d workers=%d: node traces diverge from serial", cfg[0], cfg[1])
		}
		if !reflect.DeepEqual(control, refControl) {
			t.Errorf("shards=%d workers=%d: control samples diverge from serial\n got %v\nwant %v",
				cfg[0], cfg[1], control, refControl)
		}
	}
}

// TestClusterHorizonGuard: posting a message that would arrive inside
// the lookahead horizon must panic — the lookahead was overestimated.
func TestClusterHorizonGuard(t *testing.T) {
	c := NewCluster(1, 2, 1)
	c.Bound(1000)
	src := c.Source(c.Shard(0), c.Shard(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected horizon-violation panic")
		}
	}()
	src.Post(999, nil, func(any) {}, nil)
}

// TestClusterPostAtHorizonOK: arrival exactly at now+lookahead is legal
// and delivered at the right time on the destination shard.
func TestClusterPostAtHorizonOK(t *testing.T) {
	c := NewCluster(1, 2, 2)
	c.Bound(1000)
	src, dst := c.Shard(0), c.Shard(1)
	out := c.Source(src, dst)
	var deliveredAt Time = -1
	src.After(0, func() {
		out.Post(src.Now()+1000, nil, func(any) {
			deliveredAt = dst.Now()
		}, nil)
	})
	c.RunUntil(10_000)
	if deliveredAt != 1000 {
		t.Fatalf("cross-shard delivery at %v, want 1000", deliveredAt)
	}
}

// TestNextAtLowerBound: NextAt never overestimates — running to just
// before the reported bound fires nothing, and repeating the
// probe-and-advance loop reaches every event.
func TestNextAtLowerBound(t *testing.T) {
	e := New(7)
	rng := NewRand(99)
	want := 0
	for i := 0; i < 200; i++ {
		// Mix wheel levels and the overflow heap.
		d := Time(rng.Intn(1 << uint(4*rng.Intn(9))))
		e.After(d, func() { want-- })
		want++
	}
	for {
		next, ok := e.NextAt()
		if !ok {
			break
		}
		if next > e.Now() {
			fired := e.Fired()
			e.RunUntil(next - 1)
			if e.Fired() != fired {
				t.Fatalf("NextAt=%v overestimated: events fired before it", next)
			}
		}
		// Fire everything at the earliest real event time (which may be
		// beyond the conservative bound).
		fired := e.Fired()
		e.RunUntil(next)
		if e.Fired() == fired && next == e.Now() {
			// Bound was a cascade boundary with nothing due: the next
			// probe must make strict progress.
			n2, ok2 := e.NextAt()
			if !ok2 || n2 <= next {
				t.Fatalf("NextAt stuck at %v", next)
			}
		}
	}
	if want != 0 {
		t.Fatalf("%d events unaccounted for", want)
	}
}

// TestClusterBudget: an event-budget overrun inside a worker-run LP
// surfaces as the usual *BudgetExceeded panic on the coordinator.
func TestClusterBudget(t *testing.T) {
	c := NewCluster(1, 2, 2)
	c.Bound(100)
	for i := 0; i < 2; i++ {
		e := c.Shard(i)
		var spin func()
		spin = func() { e.After(10, spin) }
		e.After(0, spin)
	}
	c.SetEventBudget(50)
	defer func() {
		if _, ok := recover().(*BudgetExceeded); !ok {
			t.Fatal("expected *BudgetExceeded panic")
		}
	}()
	c.RunUntil(1_000_000)
}

// staleClockTopology builds the one hazard the adaptive horizon adds
// over the static one: shard 0 sends through shard 1's endpoint while
// shard 1 is still parked at the barrier. The per-endpoint lookahead
// check is computed against the endpoint's own (stale) clock, so the
// arrival can land inside a window that was widened using shard 1's
// next *pending* event — which is later than its clock.
func staleClockTopology(adaptive bool) (*Cluster, *Time) {
	c := NewCluster(1, 2, 1)
	c.SetAdaptive(adaptive)
	s0, s1 := c.Shard(0), c.Shard(1)
	out := c.Source(s1, s0)
	out.Bound(10_000)
	deliveredAt := Time(-1)
	s0.After(0, func() {
		// at=12_000 respects out's declared bound against s1's parked
		// clock (0 + 10_000 <= 12_000) but the adaptive window runs to
		// nexts[1] + 10_000 - 1 = 14_999, so the arrival is inside it.
		out.Post(12_000, nil, func(any) { deliveredAt = s0.Now() }, nil)
	})
	s1.After(5_000, func() {})
	return c, &deliveredAt
}

// TestClusterAdaptiveGuard: the runtime check behind the adaptive
// horizon's safety argument. A stale-clock post that would land inside
// the active window must abort deterministically rather than deliver a
// message the window's derivation assumed impossible.
func TestClusterAdaptiveGuard(t *testing.T) {
	c, _ := staleClockTopology(true)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("stale-clock post inside the adaptive window did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "adaptive horizon unsafe") {
			t.Fatalf("wrong panic: %v", r)
		}
	}()
	c.RunUntil(100_000)
}

// TestClusterAdaptiveGuardFixedOK: the same post is legal under static
// horizons (windows never extend past tLP+L-1, so the arrival is
// outside every window) and must be delivered at its exact time — the
// guard rejects only what the adaptive derivation cannot prove safe.
func TestClusterAdaptiveGuardFixedOK(t *testing.T) {
	c, deliveredAt := staleClockTopology(false)
	c.RunUntil(100_000)
	if *deliveredAt != 12_000 {
		t.Fatalf("stale-clock post delivered at %v under static horizons, want 12000", *deliveredAt)
	}
}

// runAsym is a workload where adaptive horizons should pay off: shard 0
// steps densely but declares a wide outgoing bound (8000ns), while
// shard 2 steps rarely with a tight bound (800ns) that also sets the
// global floor. Static windows are clipped to the 800ns floor on every
// round; adaptive windows stretch to shard 0's declared bound whenever
// shard 2's next event is far away. Shard 1 only receives.
func runAsym(t *testing.T, adaptive bool) ([]string, ClusterStats) {
	t.Helper()
	c := NewCluster(5, 3, 1)
	c.SetAdaptive(adaptive)
	ae, be, ce := c.Shard(0), c.Shard(1), c.Shard(2)
	ab, cb := c.Source(ae, be), c.Source(ce, be)
	ab.Bound(8000)
	cb.Bound(800)
	var trace []string
	rngA, rngC := c.Rand().Fork(), c.Rand().Fork()
	var stepA, stepC func()
	stepA = func() {
		ab.Post(ae.Now()+8000+Time(rngA.Intn(100)), nil, func(any) {
			trace = append(trace, fmt.Sprintf("a@%d", be.Now()))
		}, nil)
		ae.After(Time(150+rngA.Intn(100)), stepA)
	}
	stepC = func() {
		cb.Post(ce.Now()+800+Time(rngC.Intn(100)), nil, func(any) {
			trace = append(trace, fmt.Sprintf("c@%d", be.Now()))
		}, nil)
		ce.After(Time(18_000+rngC.Intn(4_000)), stepC)
	}
	ae.After(0, stepA)
	ce.After(7, stepC)
	c.RunUntil(300_000)
	return trace, c.Stats()
}

// TestClusterAdaptiveWindowsWider is the perf property of adaptive
// horizons, asserted rather than eyeballed: on the asymmetric workload
// the adaptive run needs a small fraction of the static run's barriers,
// and the delivery schedule stays byte-identical — windows change, the
// simulation does not.
func TestClusterAdaptiveWindowsWider(t *testing.T) {
	fixedTrace, fixedStats := runAsym(t, false)
	adptTrace, adptStats := runAsym(t, true)
	if len(fixedTrace) == 0 {
		t.Fatal("workload produced no deliveries")
	}
	if !reflect.DeepEqual(adptTrace, fixedTrace) {
		t.Fatalf("delivery schedule changed under adaptive horizons\nfixed:    %v\nadaptive: %v",
			fixedTrace, adptTrace)
	}
	if adptStats.Msgs != fixedStats.Msgs {
		t.Fatalf("cross-shard message count changed: fixed %d, adaptive %d",
			fixedStats.Msgs, adptStats.Msgs)
	}
	if 2*adptStats.Windows >= fixedStats.Windows {
		t.Fatalf("adaptive horizons did not widen windows: %d windows adaptive vs %d static",
			adptStats.Windows, fixedStats.Windows)
	}
}

// BenchmarkClusterDrain measures the barrier's k-way merge: 12 sources
// (a 4-shard full mesh) each park a sorted run of messages, and drain
// interleaves them into the destination engines. After warmup the merge
// itself must not allocate — outboxes, the active-source list and the
// engines' event pools are all reused, so allocs/op ~ 0.
func BenchmarkClusterDrain(b *testing.B) {
	const nShards, msgsPerSrc = 4, 64
	c := NewCluster(1, nShards, 1)
	c.Bound(100)
	var srcs []*PostSource
	for i := 0; i < nShards; i++ {
		for j := 0; j < nShards; j++ {
			if i != j {
				srcs = append(srcs, c.Source(c.Shard(i), c.Shard(j)))
			}
		}
	}
	nop := func(any) {}
	rng := NewRand(7)
	base := Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for _, s := range srcs {
			at := base + 100
			for k := 0; k < msgsPerSrc; k++ {
				at += Time(rng.Intn(16))
				s.Post(at, nil, nop, nil)
			}
		}
		c.drain()
		base += 100 + Time(msgsPerSrc*16)
		for i := 0; i < nShards; i++ {
			c.Shard(i).RunUntil(base)
		}
	}
}

// TestClusterStop: Stop from a control event halts the run at that
// barrier, leaving later work pending.
func TestClusterStop(t *testing.T) {
	c := NewCluster(1, 2, 2)
	c.Bound(100)
	e := c.Shard(0)
	ran := 0
	var spin func()
	spin = func() { ran++; e.After(1000, spin) }
	e.After(0, spin)
	c.At(10_000, c.Stop)
	c.RunUntil(1_000_000)
	if c.Pending() == 0 {
		t.Fatal("Stop left no pending work")
	}
	if ran == 0 || ran > 11 {
		t.Fatalf("ran %d LP events before Stop, want ~10", ran)
	}
}
