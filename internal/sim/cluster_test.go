package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// The synthetic PDES workload: nNodes logical nodes, each mapped to a
// shard, running a self-rescheduling event chain with private RNG
// draws, and posting messages to the next node over a "link" with
// linkDelay minimum latency plus jitter. A coordinator-side control
// event samples every node's counter each controlPeriod. Per-node
// traces plus the control trace must be identical for every
// (shards, workers) combination.
const (
	pdesNodes         = 4
	pdesLinkDelay     = Time(800)
	pdesControlPeriod = Time(50_000)
	pdesRunFor        = Time(500_000)
)

type pdesNode struct {
	id    int
	e     *Engine
	out   *PostSource // nil when the next node shares this engine
	rng   *Rand
	next  *pdesNode
	count uint64
	trace []string
}

// Local event times of node i are kept ≡ i (mod 8): every self-delay
// is a multiple of 8 and the start offset is i. Cross-node messages
// therefore never collide with destination-local events on both firing
// time and schedule time at once, which is the one tie the cluster
// cannot break serially (see DESIGN.md §6) — the traces below are then
// required to match exactly.
func (n *pdesNode) step() {
	n.count++
	n.trace = append(n.trace, fmt.Sprintf("step %d @%d", n.count, n.e.Now()))
	// Occasionally message the next node; arrival respects the link's
	// minimum latency, with jitter on top.
	if n.rng.Intn(3) == 0 {
		at := n.e.Now() + pdesLinkDelay + Time(n.rng.Intn(500))
		if n.out == nil {
			n.next.e.AtArg(at, pdesRecv, n.next)
		} else {
			n.out.Post(at, nil, pdesRecv, n.next)
		}
	}
	n.e.After(Time(160+8*n.rng.Intn(40)), n.step)
}

func pdesRecv(v any) {
	n := v.(*pdesNode)
	n.count += 10
	n.trace = append(n.trace, fmt.Sprintf("recv %d @%d", n.count, n.e.Now()))
}

// runPDES builds and runs the synthetic workload, returning the
// per-node traces and the control-sample trace.
func runPDES(t *testing.T, shards, workers int) ([][]string, []string) {
	t.Helper()
	c := NewCluster(1, shards, workers)
	c.Bound(pdesLinkDelay)
	nodes := make([]*pdesNode, pdesNodes)
	for i := range nodes {
		nodes[i] = &pdesNode{id: i, e: c.Shard(i), rng: c.Rand().Fork()}
	}
	for i, n := range nodes {
		n.next = nodes[(i+1)%len(nodes)]
		if n.next.e != n.e {
			n.out = c.Source(n.e, n.next.e)
		}
		n.e.After(Time(80*i+i), n.step)
	}
	var control []string
	var sample func()
	sample = func() {
		s := fmt.Sprintf("@%d:", c.Now())
		for _, n := range nodes {
			s += fmt.Sprintf(" %d", n.count)
		}
		control = append(control, s)
		c.After(pdesControlPeriod, sample)
	}
	c.After(pdesControlPeriod, sample)
	c.RunUntil(pdesRunFor)
	traces := make([][]string, len(nodes))
	for i, n := range nodes {
		traces[i] = n.trace
	}
	if got := c.Now(); got != pdesRunFor {
		t.Fatalf("shards=%d workers=%d: Now()=%v after RunUntil(%v)", shards, workers, got, pdesRunFor)
	}
	for i := 0; i < shards; i++ {
		if got := c.Shard(i).Now(); got != pdesRunFor {
			t.Fatalf("shards=%d workers=%d: shard %d clock %v, want %v", shards, workers, i, got, pdesRunFor)
		}
	}
	return traces, control
}

// TestClusterDeterminism: execution traces are byte-identical for every
// shard and worker count, including the degenerate 1-shard cluster.
func TestClusterDeterminism(t *testing.T) {
	refTraces, refControl := runPDES(t, 1, 1)
	for _, n := range refTraces {
		if len(n) == 0 {
			t.Fatal("reference run produced an empty trace")
		}
	}
	for _, cfg := range [][2]int{{2, 1}, {2, 2}, {4, 2}, {4, 4}, {8, 4}} {
		traces, control := runPDES(t, cfg[0], cfg[1])
		if !reflect.DeepEqual(traces, refTraces) {
			t.Errorf("shards=%d workers=%d: node traces diverge from serial", cfg[0], cfg[1])
		}
		if !reflect.DeepEqual(control, refControl) {
			t.Errorf("shards=%d workers=%d: control samples diverge from serial\n got %v\nwant %v",
				cfg[0], cfg[1], control, refControl)
		}
	}
}

// TestClusterHorizonGuard: posting a message that would arrive inside
// the lookahead horizon must panic — the lookahead was overestimated.
func TestClusterHorizonGuard(t *testing.T) {
	c := NewCluster(1, 2, 1)
	c.Bound(1000)
	src := c.Source(c.Shard(0), c.Shard(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected horizon-violation panic")
		}
	}()
	src.Post(999, nil, func(any) {}, nil)
}

// TestClusterPostAtHorizonOK: arrival exactly at now+lookahead is legal
// and delivered at the right time on the destination shard.
func TestClusterPostAtHorizonOK(t *testing.T) {
	c := NewCluster(1, 2, 2)
	c.Bound(1000)
	src, dst := c.Shard(0), c.Shard(1)
	out := c.Source(src, dst)
	var deliveredAt Time = -1
	src.After(0, func() {
		out.Post(src.Now()+1000, nil, func(any) {
			deliveredAt = dst.Now()
		}, nil)
	})
	c.RunUntil(10_000)
	if deliveredAt != 1000 {
		t.Fatalf("cross-shard delivery at %v, want 1000", deliveredAt)
	}
}

// TestNextAtLowerBound: NextAt never overestimates — running to just
// before the reported bound fires nothing, and repeating the
// probe-and-advance loop reaches every event.
func TestNextAtLowerBound(t *testing.T) {
	e := New(7)
	rng := NewRand(99)
	want := 0
	for i := 0; i < 200; i++ {
		// Mix wheel levels and the overflow heap.
		d := Time(rng.Intn(1 << uint(4*rng.Intn(9))))
		e.After(d, func() { want-- })
		want++
	}
	for {
		next, ok := e.NextAt()
		if !ok {
			break
		}
		if next > e.Now() {
			fired := e.Fired()
			e.RunUntil(next - 1)
			if e.Fired() != fired {
				t.Fatalf("NextAt=%v overestimated: events fired before it", next)
			}
		}
		// Fire everything at the earliest real event time (which may be
		// beyond the conservative bound).
		fired := e.Fired()
		e.RunUntil(next)
		if e.Fired() == fired && next == e.Now() {
			// Bound was a cascade boundary with nothing due: the next
			// probe must make strict progress.
			n2, ok2 := e.NextAt()
			if !ok2 || n2 <= next {
				t.Fatalf("NextAt stuck at %v", next)
			}
		}
	}
	if want != 0 {
		t.Fatalf("%d events unaccounted for", want)
	}
}

// TestClusterBudget: an event-budget overrun inside a worker-run LP
// surfaces as the usual *BudgetExceeded panic on the coordinator.
func TestClusterBudget(t *testing.T) {
	c := NewCluster(1, 2, 2)
	c.Bound(100)
	for i := 0; i < 2; i++ {
		e := c.Shard(i)
		var spin func()
		spin = func() { e.After(10, spin) }
		e.After(0, spin)
	}
	c.SetEventBudget(50)
	defer func() {
		if _, ok := recover().(*BudgetExceeded); !ok {
			t.Fatal("expected *BudgetExceeded panic")
		}
	}()
	c.RunUntil(1_000_000)
}

// TestClusterStop: Stop from a control event halts the run at that
// barrier, leaving later work pending.
func TestClusterStop(t *testing.T) {
	c := NewCluster(1, 2, 2)
	c.Bound(100)
	e := c.Shard(0)
	ran := 0
	var spin func()
	spin = func() { ran++; e.After(1000, spin) }
	e.After(0, spin)
	c.At(10_000, c.Stop)
	c.RunUntil(1_000_000)
	if c.Pending() == 0 {
		t.Fatal("Stop left no pending work")
	}
	if ran == 0 || ran > 11 {
		t.Fatalf("ran %d LP events before Stop, want ~10", ran)
	}
}
