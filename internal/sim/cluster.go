package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"
)

// Cluster is a conservative parallel discrete-event engine (PDES,
// DESIGN.md §6). The topology is partitioned into logical processes
// (LPs) — one timing-wheel Engine per shard, each owning the complete
// state of the hosts mapped to it — plus a coordinator-owned global
// engine for control-plane events (experiment samplers, fault windows,
// audit sweeps).
//
// Synchronization is a safe-horizon window barrier. Each cross-shard
// link registers its minimum sender→receiver latency (serialization of
// an empty frame + propagation delay) as a lookahead bound — per
// source endpoint via PostSource.Bound, or globally via Bound. Each
// iteration the coordinator computes the earliest pending LP event t
// and a window end E such that no cross-shard frame sent during [t, E]
// can arrive at or before E: with adaptive horizons (the default) E is
// the minimum over busy shards of (next event + that shard's minimum
// outgoing lookahead) - 1, which degenerates to the classic uniform
// [t, t+L-1] when every shard is busy and every pairwise bound equals
// the global minimum L, and widens — often dramatically — when
// cross-shard senders are idle or their pairwise bounds exceed L.
// Frames sent across a shard boundary during the window therefore
// never preempt a running LP: they park in per-source outboxes and the
// coordinator drains them into the destination engines at the barrier.
// The widening is provably safe (DESIGN.md §6) and additionally
// *checked*: Post panics if an arrival ever lands inside the window
// that produced it.
//
// Determinism, for any shard count and worker count:
//   - LPs share one construction-time root RNG (NewShared), so every
//     Fork during single-threaded topology construction consumes the
//     root stream exactly as the serial engine would. Runtime draws
//     come only from forks owned by a single LP.
//   - The barrier drain schedules cross-shard messages in (arrival,
//     send time, source id, per-source sequence) order, so
//     same-nanosecond deliveries from different shards always
//     tie-break identically.
//   - Window boundaries do not influence the merge: two runs that
//     window the same event set differently still drain every message
//     before its arrival time with the same key order, so adaptive
//     and fixed horizons produce byte-identical schedules.
//   - Global events at time g run with every LP parked at g, before
//     any LP event at g — matching the serial engine, where control
//     events are construction-scheduled and hence carry lower
//     sequence numbers than the runtime-scheduled datapath events.
type Cluster struct {
	root    *Rand
	global  *Engine // coordinator control queue; its clock is Now()
	lps     []*Engine
	look    Time // global lookahead; 0 until a cross-shard link bounds it
	workers int

	outbox []outQ  // per-PostSource send buffers, drained at barriers
	act    [][]int // per-shard ids of outboxes that went non-empty
	actScr []int   // coordinator merge scratch over active outbox ids
	nsrc   int     // PostSource ids handed out (construction order)

	// Per-shard outgoing-lookahead state for adaptive horizons.
	srcTotal []int  // sources whose sending engine is this shard
	srcBound []int  // of those, how many declared a pairwise bound
	declMin  []Time // min declared pairwise bound (0 = none yet)
	effOut   []Time // effective min outgoing lookahead (maxTime = cannot send)

	adaptive bool
	curEnd   Time // current window end; -1 outside windows (Post guard)

	nexts   []Time // per-LP NextAt cache for the window scan
	work    []int  // busy LP indices for the current window
	perr    []any  // per-LP recovered panic from the last window
	pool    *workerPool
	stats   ClusterStats
	stopped bool
}

// ClusterStats counts synchronization work — the attribution data for
// "why is the sharded run slow": too many windows, windows too narrow,
// too much cross-shard chatter, or workers starved.
type ClusterStats struct {
	Windows   uint64 // safe-horizon windows executed
	WidthSum  uint64 // total sim-ns spanned by those windows
	Msgs      uint64 // cross-shard messages drained at barriers
	BusySum   uint64 // LPs with pending work, summed over windows
	UsedSlots uint64 // min(busy LPs, workers), summed over windows
	Slots     uint64 // workers × windows (capacity for UsedSlots)
	Globals   uint64 // barrier rounds spent on global control events
}

// Stats returns the synchronization counters accumulated so far.
func (c *Cluster) Stats() ClusterStats { return c.stats }

// xmsg is one cross-shard message: run fn(arg) on dst at time at. prep,
// when set, runs on the coordinator just before scheduling — the hook
// the audit layer and the SKB arenas use to hand a packet's ledger
// record and buffer ownership from the source shard to the destination
// shard while both are parked. schedAt is the sender's clock at Post
// time and seq the send order within the source: with the source id
// they make the drain order — and hence every same-nanosecond tie at
// the destination — independent of the host-to-shard layout.
type xmsg struct {
	at      Time
	schedAt Time
	seq     uint64
	dst     *Engine
	prep    func(any)
	fn      func(any)
	arg     any
}

// outQ is one source's outbox: an array-rewind FIFO drained in full at
// every barrier. Posts from one source are usually already in (at,
// schedAt) order — links monotonize arrivals — so the queue just tracks
// whether an out-of-order append happened and sorts only then.
type outQ struct {
	items    []xmsg
	head     int // consumed prefix during the barrier merge
	unsorted bool
}

func (q *outQ) Len() int { return len(q.items) }
func (q *outQ) Less(a, b int) bool {
	x, y := &q.items[a], &q.items[b]
	if x.at != y.at {
		return x.at < y.at
	}
	if x.schedAt != y.schedAt {
		return x.schedAt < y.schedAt
	}
	return x.seq < y.seq
}
func (q *outQ) Swap(a, b int) { q.items[a], q.items[b] = q.items[b], q.items[a] }

// NewCluster returns a PDES cluster with the given number of logical
// processes. workers caps the goroutines running LPs within a window
// (<=0 selects GOMAXPROCS, clipped to shards). All LPs and the global
// engine share one root RNG seeded with seed, exactly like New(seed).
func NewCluster(seed uint64, shards, workers int) *Cluster {
	if shards < 1 {
		shards = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	c := &Cluster{root: NewRand(seed), workers: workers, adaptive: true, curEnd: -1}
	c.global = NewShared(c.root)
	c.lps = make([]*Engine, shards)
	for i := range c.lps {
		c.lps[i] = NewShared(c.root)
		c.lps[i].shard = i
	}
	c.act = make([][]int, shards)
	c.srcTotal = make([]int, shards)
	c.srcBound = make([]int, shards)
	c.declMin = make([]Time, shards)
	c.effOut = make([]Time, shards)
	c.recomputeOut()
	c.nexts = make([]Time, shards)
	c.perr = make([]any, shards)
	return c
}

// AutoShards picks a (shards, workers) pair for a topology with the
// given number of hosts on this machine: one worker per CPU (capped at
// one per host), and about two LPs per worker so window imbalance can
// be absorbed by work stealing. On a single-CPU machine it degrades to
// (1, 1): the serial engine, with zero synchronization overhead.
func AutoShards(hosts int) (shards, workers int) {
	if hosts < 1 {
		hosts = 1
	}
	workers = runtime.NumCPU()
	if workers > hosts {
		workers = hosts
	}
	if workers <= 1 {
		return 1, 1
	}
	shards = hosts
	if lim := 2 * workers; shards > lim {
		shards = lim
	}
	return shards, workers
}

// Now returns the coordinator clock.
func (c *Cluster) Now() Time { return c.global.Now() }

// Rand returns the shared root RNG (construction-time forking only).
func (c *Cluster) Rand() *Rand { return c.root }

// Shard returns the engine owning logical process i (modulo shards).
func (c *Cluster) Shard(i int) *Engine { return c.lps[i%len(c.lps)] }

// NumShards returns the number of logical processes.
func (c *Cluster) NumShards() int { return len(c.lps) }

// Lookahead returns the current global cross-shard lookahead (0:
// unbounded — no cross-shard link registered yet).
func (c *Cluster) Lookahead() Time { return c.look }

// SetAdaptive toggles adaptive safe-horizon windows. On (the default),
// window ends are derived per-window from each busy shard's next event
// and pairwise lookaheads; off, every window is clipped to the static
// global lookahead — the PR-5 behaviour, kept for A/B testing. The
// event schedule is byte-identical either way.
func (c *Cluster) SetAdaptive(on bool) { c.adaptive = on }

// Bound lowers the cluster-wide lookahead floor to d: a cross-shard
// sender that does not (or cannot) declare a pairwise bound is held to
// this floor instead. The lookahead must never overestimate the true
// minimum latency — Post enforces this at every cross-shard send.
func (c *Cluster) Bound(d Time) {
	if d < 1 {
		d = 1 // progress requires a strictly positive lookahead
	}
	if c.look == 0 || d < c.look {
		c.look = d
	}
	c.recomputeOut()
}

// recomputeOut refreshes every shard's effective minimum outgoing
// lookahead: the widest window the shard's pending work permits is
// next-event + effOut - 1. A shard with no sources cannot send at all
// (effOut = maxTime); a shard with any source that never declared a
// pairwise bound is only guaranteed the global floor.
func (c *Cluster) recomputeOut() {
	for s := range c.effOut {
		switch {
		case c.srcTotal[s] == 0:
			c.effOut[s] = maxTime
		case c.srcBound[s] < c.srcTotal[s] || c.declMin[s] == 0:
			c.effOut[s] = c.look
		default:
			c.effOut[s] = c.declMin[s]
		}
	}
}

// Control-plane scheduling: runs on the coordinator at barriers.

func (c *Cluster) At(t Time, fn func()) Timer    { return c.global.At(t, fn) }
func (c *Cluster) After(d Time, fn func()) Timer { return c.global.After(d, fn) }
func (c *Cluster) AtArg(t Time, fn func(any), arg any) Timer {
	return c.global.AtArg(t, fn, arg)
}
func (c *Cluster) AfterArg(d Time, fn func(any), arg any) Timer {
	return c.global.AfterArg(d, fn, arg)
}

// Stop halts the run loop at the next barrier. Control context only.
func (c *Cluster) Stop() {
	c.stopped = true
	c.global.Stop()
}

// SetEventBudget applies the cap to every logical process and the
// global engine individually — a runaway backstop, not an exact global
// count (a cluster may fire up to shards×n events before tripping).
func (c *Cluster) SetEventBudget(n uint64) {
	c.global.SetEventBudget(n)
	for _, lp := range c.lps {
		lp.SetEventBudget(n)
	}
}

// Fired returns the total events executed across all engines.
func (c *Cluster) Fired() uint64 {
	n := c.global.Fired()
	for _, lp := range c.lps {
		n += lp.Fired()
	}
	return n
}

// Pending returns the number of scheduled events across all engines
// plus undrained cross-shard messages.
func (c *Cluster) Pending() int {
	n := c.global.Pending()
	for _, lp := range c.lps {
		n += lp.Pending()
	}
	for i := range c.outbox {
		q := &c.outbox[i]
		n += len(q.items) - q.head
	}
	return n
}

// PostSource is one stable cross-shard send endpoint (in the overlay,
// one direction of one inter-host link). Its id is allocated in
// topology-construction order and its sequence counter advances in
// send order on the owning shard, so both are independent of how hosts
// were laid out onto shards — the property the drain merge needs for
// shard-count-invariant tie-breaking.
type PostSource struct {
	c        *Cluster
	src, dst *Engine
	id       int
	look     Time // declared pairwise lookahead (0: global floor only)
	seq      uint64
}

// Source allocates a cross-shard send endpoint from src to dst. Call
// from coordinator context only (topology construction, or a
// reconfiguration barrier) — never from a running LP.
func (c *Cluster) Source(src, dst *Engine) *PostSource {
	c.nsrc++
	c.outbox = append(c.outbox, outQ{})
	c.srcTotal[src.shard]++
	c.recomputeOut()
	return &PostSource{c: c, src: src, dst: dst, id: c.nsrc}
}

// Bound declares this endpoint's minimum sender→receiver latency: no
// Post through it will ever arrive sooner than send+d. Tighter (larger)
// pairwise bounds let the adaptive horizon widen windows beyond the
// global floor; the guard in Post holds the endpoint to its word.
func (p *PostSource) Bound(d Time) {
	if d < 1 {
		d = 1
	}
	c := p.c
	if p.look == 0 {
		c.srcBound[p.src.shard]++
	}
	if p.look == 0 || d < p.look {
		p.look = d
	}
	s := p.src.shard
	if c.declMin[s] == 0 || d < c.declMin[s] {
		c.declMin[s] = d
	}
	c.Bound(d) // keeps the global floor ≤ every declared pairwise bound
}

// Post sends a cross-shard message: fn(arg) runs on the destination
// shard at time at. Called from LP context mid-window; the message
// parks in the source's outbox until the barrier. Two invariants are
// enforced on every send:
//   - the arrival respects the endpoint's advertised lookahead — a
//     violation means a link advertised a latency it can undercut,
//     which would corrupt causality;
//   - the arrival lands strictly after the current window — the
//     adaptive horizon's safety argument, checked rather than assumed.
func (p *PostSource) Post(at Time, prep, fn func(any), arg any) {
	c := p.c
	eff := c.look
	if p.look > eff {
		eff = p.look
	}
	if at < p.src.now+eff {
		panic(fmt.Sprintf("sim: cross-shard message from shard %d at %v arrives %v, inside the lookahead horizon %v (lookahead overestimated)",
			p.src.shard, p.src.now, at, p.src.now+eff))
	}
	if end := c.curEnd; end >= 0 && at <= end {
		panic(fmt.Sprintf("sim: cross-shard message from shard %d at %v arrives %v, inside the active window ending %v (adaptive horizon unsafe)",
			p.src.shard, p.src.now, at, end))
	}
	q := &c.outbox[p.id-1]
	if n := len(q.items); n > 0 {
		if last := &q.items[n-1]; at < last.at || (at == last.at && p.src.now < last.schedAt) {
			q.unsorted = true
		}
	} else {
		s := p.src.shard
		c.act[s] = append(c.act[s], p.id-1)
	}
	p.seq++
	q.items = append(q.items, xmsg{
		at: at, schedAt: p.src.now, seq: p.seq,
		dst: p.dst, prep: prep, fn: fn, arg: arg,
	})
}

// drain moves every parked cross-shard message into its destination
// engine with an allocation-free k-way merge over the per-source
// outboxes. Messages are scheduled with the sender's clock as their
// tie-break key (Engine.atPosted), in (arrival, send time, source id,
// source sequence) order: deliveries therefore interleave with the
// destination's own same-nanosecond events exactly as on one serial
// engine, and ties between messages resolve identically for every
// shard count. Per-source runs are almost always already sorted (links
// monotonize arrivals), so the merge is a min-scan over k queue heads
// — no global re-sort, no comparator closure.
func (c *Cluster) drain() {
	act := c.actScr[:0]
	for s := range c.act {
		for _, id := range c.act[s] {
			q := &c.outbox[id]
			if q.unsorted {
				sort.Sort(q)
				q.unsorted = false
			}
			act = append(act, id)
		}
		c.act[s] = c.act[s][:0]
	}
	if len(act) == 0 {
		return
	}
	for len(act) > 0 {
		b, bq := 0, &c.outbox[act[0]]
		for j := 1; j < len(act); j++ {
			q := &c.outbox[act[j]]
			x, y := &q.items[q.head], &bq.items[bq.head]
			switch {
			case x.at != y.at:
				if x.at < y.at {
					b, bq = j, q
				}
			case x.schedAt != y.schedAt:
				if x.schedAt < y.schedAt {
					b, bq = j, q
				}
			case act[j] < act[b]:
				b, bq = j, q
			}
		}
		m := &bq.items[bq.head]
		if m.prep != nil {
			m.prep(m.arg)
		}
		m.dst.atPosted(m.at, m.schedAt, m.fn, m.arg)
		*m = xmsg{} // drop refs so drained args can be collected
		c.stats.Msgs++
		bq.head++
		if bq.head == len(bq.items) {
			bq.items, bq.head = bq.items[:0], 0
			last := len(act) - 1
			act[b] = act[last]
			act = act[:last]
		}
	}
	c.actScr = act[:0]
}

const maxTime = Time(math.MaxInt64)

// minNext fills c.nexts and returns the earliest pending LP event time.
// Engine.NextAt is O(1) for engines untouched since their last scan
// (the cached-hint fast path), so this sweep costs O(shards) loads, not
// O(shards) wheel scans.
func (c *Cluster) minNext() (Time, bool) {
	t, ok := maxTime, false
	for i, lp := range c.lps {
		if n, has := lp.NextAt(); has {
			c.nexts[i] = n
			if n < t {
				t, ok = n, true
			}
		} else {
			c.nexts[i] = maxTime
		}
	}
	return t, ok
}

// adaptiveEnd returns the widest provably safe window end: one less
// than the earliest cross-shard arrival any busy shard could produce
// (its next pending event plus its minimum outgoing lookahead). Idle
// shards cannot send mid-window (nothing can wake an LP between
// barriers), and shards with no outgoing sources cannot send at all,
// so neither constrains the window. Always ≥ the static tLP+L-1 —
// every per-shard term is ≥ tLP + L.
func (c *Cluster) adaptiveEnd() Time {
	end := maxTime
	for i := range c.lps {
		n := c.nexts[i]
		if n == maxTime {
			continue
		}
		l := c.effOut[i]
		if l >= maxTime-n {
			continue
		}
		if e := n + l - 1; e < end {
			end = e
		}
	}
	return end
}

// Run executes events until none remain anywhere or Stop is called.
func (c *Cluster) Run() { c.run(maxTime, false) }

// RunUntil executes all events with at <= deadline, then parks every
// clock at the deadline. Serial-equivalent to Engine.RunUntil.
func (c *Cluster) RunUntil(deadline Time) { c.run(deadline, true) }

func (c *Cluster) run(deadline Time, park bool) {
	c.stopped = false
	c.startWorkers()
	defer c.stopWorkers()
	for !c.stopped {
		c.drain()
		tLP, okLP := c.minNext()
		tG, okG := c.global.NextAt()
		if !okLP && !okG {
			break
		}
		t := tLP
		if !okLP || (okG && tG < t) {
			t = tG
		}
		if t > deadline {
			break
		}
		if okG && (!okLP || tG <= tLP) {
			// Global events first at any tied time (serial order:
			// control events carry lower seq). Park every LP at tG,
			// then run the coordinator queue there.
			for _, lp := range c.lps {
				lp.SetClock(tG)
			}
			c.global.RunUntil(tG)
			c.stats.Globals++
			continue
		}
		// Safe-horizon window: [tLP, end], end strictly before both the
		// earliest possible cross-shard arrival and the next global
		// event.
		end := deadline
		if c.look > 0 {
			if c.adaptive {
				if e := c.adaptiveEnd(); e < end {
					end = e
				}
			} else if tLP+c.look-1 < end {
				end = tLP + c.look - 1
			}
		}
		if okG && tG-1 < end {
			end = tG - 1
		}
		c.runWindow(end)
		c.global.SetClock(end)
		c.stats.Windows++
		c.stats.WidthSum += uint64(end - tLP + 1)
	}
	if c.stopped || !park {
		return
	}
	for _, lp := range c.lps {
		lp.SetClock(deadline)
	}
	c.global.SetClock(deadline)
}

// runWindow advances every LP to end. Busy LPs run on the persistent
// worker pool (the coordinator itself takes part); idle LPs just park
// their clocks. With at most one busy LP — the serial degenerate case,
// and the whole run on a single-CPU machine — the window runs inline on
// the coordinator: no wakeups, no atomics.
func (c *Cluster) runWindow(end Time) {
	work := c.work[:0]
	for i, lp := range c.lps {
		if c.nexts[i] <= end {
			work = append(work, i)
		} else {
			lp.SetClock(end)
		}
	}
	c.work = work
	busy := len(work)
	c.stats.BusySum += uint64(busy)
	used := busy
	if used > c.workers {
		used = c.workers
	}
	c.stats.UsedSlots += uint64(used)
	c.stats.Slots += uint64(c.workers)
	if busy == 0 {
		return
	}
	c.curEnd = end
	defer func() { c.curEnd = -1 }()
	if busy == 1 || c.workers <= 1 || c.pool == nil {
		for _, i := range work {
			c.lps[i].RunUntil(end)
		}
		return
	}
	p := c.pool
	helpers := busy - 1 // the coordinator covers one LP itself
	if helpers > len(p.wake) {
		helpers = len(p.wake)
	}
	p.next.Store(0)
	p.left.Store(int32(helpers))
	for w := 0; w < helpers; w++ {
		p.wake[w] <- end
	}
	p.runLPs(end)
	<-p.done
	// Re-raise the first (lowest-shard) panic deterministically; other
	// shards' panics from the same window are dropped, like the serial
	// engine abandoning its queue after a panic.
	for i, e := range c.perr {
		if e != nil {
			c.perr[i] = nil
			panic(e)
		}
	}
}

// runLP runs one LP to the window end, capturing a panic (event-budget
// overrun, audit abort) for deterministic re-raise on the coordinator.
func (c *Cluster) runLP(i int, end Time) {
	defer func() {
		if r := recover(); r != nil {
			c.perr[i] = r
		}
	}()
	c.lps[i].RunUntil(end)
}

// workerPool holds the cluster's long-lived window executors: workers-1
// helper goroutines parked on buffered wake channels (the coordinator
// is the remaining worker). A window costs one channel send per woken
// helper and one receive for the barrier — no goroutine launches, no
// WaitGroup. Helpers pull LP indices from a shared atomic cursor, so a
// shard that finishes early steals the next busy shard immediately.
type workerPool struct {
	c    *Cluster
	wake []chan Time   // per-helper; the payload is the window end
	done chan struct{} // buffered(1); the last helper to finish signals
	next atomic.Int32  // cursor into c.work
	left atomic.Int32  // helpers still running this window
}

// startWorkers launches the helper goroutines for one run. They live
// for the whole run (stopWorkers, deferred in run, closes them down) —
// per-window cost is wake/park only.
func (c *Cluster) startWorkers() {
	if c.pool != nil {
		return
	}
	n := c.workers - 1
	if m := len(c.lps) - 1; n > m {
		n = m
	}
	if n <= 0 {
		return
	}
	p := &workerPool{c: c, done: make(chan struct{}, 1), wake: make([]chan Time, n)}
	for i := range p.wake {
		ch := make(chan Time, 1)
		p.wake[i] = ch
		go p.helper(ch)
	}
	c.pool = p
}

func (c *Cluster) stopWorkers() {
	p := c.pool
	if p == nil {
		return
	}
	c.pool = nil
	for _, ch := range p.wake {
		close(ch)
	}
}

func (p *workerPool) helper(wake chan Time) {
	for end := range wake {
		p.runLPs(end)
		if p.left.Add(-1) == 0 {
			p.done <- struct{}{}
		}
	}
}

// runLPs drains the shared work queue: claim the next busy LP, run it
// to the window end, repeat until the queue is exhausted.
func (p *workerPool) runLPs(end Time) {
	c := p.c
	for {
		i := int(p.next.Add(1)) - 1
		if i >= len(c.work) {
			return
		}
		c.runLP(c.work[i], end)
	}
}
