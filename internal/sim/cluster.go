package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Cluster is a conservative parallel discrete-event engine (PDES,
// DESIGN.md §6). The topology is partitioned into logical processes
// (LPs) — one timing-wheel Engine per shard, each owning the complete
// state of the hosts mapped to it — plus a coordinator-owned global
// engine for control-plane events (experiment samplers, fault windows,
// audit sweeps).
//
// Synchronization is a safe-horizon window barrier. The lookahead L is
// the minimum sender→receiver latency of any cross-shard link
// (serialization of an empty frame + propagation delay), registered at
// topology construction via Bound. Each iteration the coordinator
// computes the earliest pending LP event t and runs every LP in
// parallel through the window [t, t+L-1] (further clipped below the
// next global event and the caller's deadline). Any frame an LP sends
// across a shard boundary during the window arrives at send+L or later
// — strictly after the window — so cross-shard messages never have to
// preempt a running LP: they park in per-LP outboxes and the
// coordinator drains them into the destination engines at the barrier.
//
// Determinism, for any shard count and worker count:
//   - LPs share one construction-time root RNG (NewShared), so every
//     Fork during single-threaded topology construction consumes the
//     root stream exactly as the serial engine would. Runtime draws
//     come only from forks owned by a single LP.
//   - The barrier drain schedules cross-shard messages in (arrival,
//     source shard, per-source sequence) order, so same-nanosecond
//     deliveries from different shards always tie-break identically.
//   - Global events at time g run with every LP parked at g, before
//     any LP event at g — matching the serial engine, where control
//     events are construction-scheduled and hence carry lower
//     sequence numbers than the runtime-scheduled datapath events.
type Cluster struct {
	root    *Rand
	global  *Engine // coordinator control queue; its clock is Now()
	lps     []*Engine
	look    Time // global lookahead; 0 until a cross-shard link bounds it
	workers int

	outbox  [][]xmsg // per-LP send buffers, drained at barriers
	nsrc    int      // PostSource ids handed out (construction order)
	merge   []xmsg   // coordinator scratch for the sorted drain
	nexts   []Time   // per-LP NextAt cache for the window scan
	perr    []any    // per-LP recovered panic from the last window
	stopped bool
}

// xmsg is one cross-shard message: run fn(arg) on dst at time at. prep,
// when set, runs on the coordinator just before scheduling — the hook
// the audit layer uses to hand an SKB's ledger record from the source
// shard to the destination shard while both are parked. schedAt is the
// sender's clock at Post time and src/seq identify the PostSource and
// its send order: together they make the drain order — and hence every
// same-nanosecond tie at the destination — independent of the
// host-to-shard layout.
type xmsg struct {
	at      Time
	schedAt Time
	src     int
	seq     uint64
	dst     *Engine
	prep    func(any)
	fn      func(any)
	arg     any
}

// NewCluster returns a PDES cluster with the given number of logical
// processes. workers caps the goroutines running LPs within a window
// (<=0 selects GOMAXPROCS, clipped to shards). All LPs and the global
// engine share one root RNG seeded with seed, exactly like New(seed).
func NewCluster(seed uint64, shards, workers int) *Cluster {
	if shards < 1 {
		shards = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	c := &Cluster{root: NewRand(seed), workers: workers}
	c.global = NewShared(c.root)
	c.lps = make([]*Engine, shards)
	for i := range c.lps {
		c.lps[i] = NewShared(c.root)
		c.lps[i].shard = i
	}
	c.outbox = make([][]xmsg, shards)
	c.nexts = make([]Time, shards)
	c.perr = make([]any, shards)
	return c
}

// Now returns the coordinator clock.
func (c *Cluster) Now() Time { return c.global.Now() }

// Rand returns the shared root RNG (construction-time forking only).
func (c *Cluster) Rand() *Rand { return c.root }

// Shard returns the engine owning logical process i (modulo shards).
func (c *Cluster) Shard(i int) *Engine { return c.lps[i%len(c.lps)] }

// NumShards returns the number of logical processes.
func (c *Cluster) NumShards() int { return len(c.lps) }

// Lookahead returns the current cross-shard lookahead (0: unbounded —
// no cross-shard link registered yet).
func (c *Cluster) Lookahead() Time { return c.look }

// Bound lowers the cluster lookahead to d: every cross-shard link
// registers its minimum sender→receiver latency here at construction.
// The lookahead must never overestimate the true minimum — Post
// enforces this at every cross-shard send.
func (c *Cluster) Bound(d Time) {
	if d < 1 {
		d = 1 // progress requires a strictly positive lookahead
	}
	if c.look == 0 || d < c.look {
		c.look = d
	}
}

// Control-plane scheduling: runs on the coordinator at barriers.

func (c *Cluster) At(t Time, fn func()) Timer    { return c.global.At(t, fn) }
func (c *Cluster) After(d Time, fn func()) Timer { return c.global.After(d, fn) }
func (c *Cluster) AtArg(t Time, fn func(any), arg any) Timer {
	return c.global.AtArg(t, fn, arg)
}
func (c *Cluster) AfterArg(d Time, fn func(any), arg any) Timer {
	return c.global.AfterArg(d, fn, arg)
}

// Stop halts the run loop at the next barrier. Control context only.
func (c *Cluster) Stop() {
	c.stopped = true
	c.global.Stop()
}

// SetEventBudget applies the cap to every logical process and the
// global engine individually — a runaway backstop, not an exact global
// count (a cluster may fire up to shards×n events before tripping).
func (c *Cluster) SetEventBudget(n uint64) {
	c.global.SetEventBudget(n)
	for _, lp := range c.lps {
		lp.SetEventBudget(n)
	}
}

// Fired returns the total events executed across all engines.
func (c *Cluster) Fired() uint64 {
	n := c.global.Fired()
	for _, lp := range c.lps {
		n += lp.Fired()
	}
	return n
}

// Pending returns the number of scheduled events across all engines
// plus undrained cross-shard messages.
func (c *Cluster) Pending() int {
	n := c.global.Pending()
	for _, lp := range c.lps {
		n += lp.Pending()
	}
	for _, ob := range c.outbox {
		n += len(ob)
	}
	return n
}

// PostSource is one stable cross-shard send endpoint (in the overlay,
// one direction of one inter-host link). Its id is allocated in
// topology-construction order and its sequence counter advances in
// send order on the owning shard, so both are independent of how hosts
// were laid out onto shards — the property the drain sort needs for
// shard-count-invariant tie-breaking.
type PostSource struct {
	c        *Cluster
	src, dst *Engine
	id       int
	seq      uint64
}

// Source allocates a cross-shard send endpoint from src to dst. Call
// during (single-threaded) topology construction.
func (c *Cluster) Source(src, dst *Engine) *PostSource {
	c.nsrc++
	return &PostSource{c: c, src: src, dst: dst, id: c.nsrc}
}

// Post sends a cross-shard message: fn(arg) runs on the destination
// shard at time at. Called from LP context mid-window; the message
// parks in the sending shard's outbox until the barrier. The
// conservative horizon invariant — no message may arrive inside the
// current window — is enforced on every send: an arrival earlier than
// now+lookahead means the source link advertised a lookahead larger
// than a latency it can actually produce, which would corrupt
// causality, so it panics immediately rather than diverge silently.
func (p *PostSource) Post(at Time, prep, fn func(any), arg any) {
	c := p.c
	if at < p.src.now+c.look {
		panic(fmt.Sprintf("sim: cross-shard message from shard %d at %v arrives %v, inside the lookahead horizon %v (lookahead overestimated)",
			p.src.shard, p.src.now, at, p.src.now+c.look))
	}
	p.seq++
	c.outbox[p.src.shard] = append(c.outbox[p.src.shard], xmsg{
		at: at, schedAt: p.src.now, src: p.id, seq: p.seq,
		dst: p.dst, prep: prep, fn: fn, arg: arg,
	})
}

// drain moves every parked cross-shard message into its destination
// engine. Messages are scheduled with the sender's clock as their
// tie-break key (Engine.atPosted), ordered by (arrival, send time,
// source id, source sequence): deliveries therefore interleave with
// the destination's own same-nanosecond events exactly as on one
// serial engine, and ties between messages resolve identically for
// every shard count.
func (c *Cluster) drain() {
	c.merge = c.merge[:0]
	for i := range c.outbox {
		c.merge = append(c.merge, c.outbox[i]...)
		c.outbox[i] = c.outbox[i][:0]
	}
	if len(c.merge) == 0 {
		return
	}
	sort.Slice(c.merge, func(a, b int) bool {
		ma, mb := &c.merge[a], &c.merge[b]
		if ma.at != mb.at {
			return ma.at < mb.at
		}
		if ma.schedAt != mb.schedAt {
			return ma.schedAt < mb.schedAt
		}
		if ma.src != mb.src {
			return ma.src < mb.src
		}
		return ma.seq < mb.seq
	})
	for i := range c.merge {
		m := &c.merge[i]
		if m.prep != nil {
			m.prep(m.arg)
		}
		m.dst.atPosted(m.at, m.schedAt, m.fn, m.arg)
		m.arg, m.fn, m.prep = nil, nil, nil
	}
}

const maxTime = Time(math.MaxInt64)

// minNext fills c.nexts and returns the earliest pending LP event time.
func (c *Cluster) minNext() (Time, bool) {
	t, ok := maxTime, false
	for i, lp := range c.lps {
		if n, has := lp.NextAt(); has {
			c.nexts[i] = n
			if n < t {
				t, ok = n, true
			}
		} else {
			c.nexts[i] = maxTime
		}
	}
	return t, ok
}

// Run executes events until none remain anywhere or Stop is called.
func (c *Cluster) Run() { c.run(maxTime, false) }

// RunUntil executes all events with at <= deadline, then parks every
// clock at the deadline. Serial-equivalent to Engine.RunUntil.
func (c *Cluster) RunUntil(deadline Time) { c.run(deadline, true) }

func (c *Cluster) run(deadline Time, park bool) {
	c.stopped = false
	for !c.stopped {
		c.drain()
		tLP, okLP := c.minNext()
		tG, okG := c.global.NextAt()
		if !okLP && !okG {
			break
		}
		t := tLP
		if !okLP || (okG && tG < t) {
			t = tG
		}
		if t > deadline {
			break
		}
		if okG && (!okLP || tG <= tLP) {
			// Global events first at any tied time (serial order:
			// control events carry lower seq). Park every LP at tG,
			// then run the coordinator queue there.
			for _, lp := range c.lps {
				lp.SetClock(tG)
			}
			c.global.RunUntil(tG)
			continue
		}
		// Safe-horizon window: [tLP, end] with end < tLP+L, end < tG.
		end := deadline
		if c.look > 0 && tLP+c.look-1 < end {
			end = tLP + c.look - 1
		}
		if okG && tG-1 < end {
			end = tG - 1
		}
		c.runWindow(end)
		c.global.SetClock(end)
	}
	if c.stopped || !park {
		return
	}
	for _, lp := range c.lps {
		lp.SetClock(deadline)
	}
	c.global.SetClock(deadline)
}

// runWindow advances every LP to end. LPs with pending work in the
// window run on up to c.workers goroutines; idle LPs just park their
// clocks. With at most one busy LP (the serial degenerate case) the
// window runs inline on the coordinator — no goroutines, no barrier.
func (c *Cluster) runWindow(end Time) {
	busy := 0
	for i := range c.lps {
		if c.nexts[i] <= end {
			busy++
		}
	}
	if busy <= 1 || c.workers <= 1 {
		for i, lp := range c.lps {
			if c.nexts[i] <= end {
				lp.RunUntil(end)
			} else {
				lp.SetClock(end)
			}
		}
		return
	}
	work := make([]int, 0, busy)
	for i, lp := range c.lps {
		if c.nexts[i] <= end {
			work = append(work, i)
		} else {
			lp.SetClock(end)
		}
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	n := c.workers
	if n > len(work) {
		n = len(work)
	}
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(work) {
					return
				}
				c.runLP(work[i], end)
			}
		}()
	}
	wg.Wait()
	// Re-raise the first (lowest-shard) panic deterministically; other
	// shards' panics from the same window are dropped, like the serial
	// engine abandoning its queue after a panic.
	for i, p := range c.perr {
		if p != nil {
			c.perr[i] = nil
			panic(p)
		}
	}
}

// runLP runs one LP to the window end, capturing a panic (event-budget
// overrun, audit abort) for deterministic re-raise on the coordinator.
func (c *Cluster) runLP(i int, end Time) {
	defer func() {
		if r := recover(); r != nil {
			c.perr[i] = r
		}
	}()
	c.lps[i].RunUntil(end)
}
