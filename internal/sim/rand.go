package sim

import "math"

// Rand is a small, fast, deterministic PRNG (splitmix64 core with an
// xorshift finalizer). It intentionally avoids math/rand so that the
// simulation's determinism does not depend on Go release behaviour.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
// Used for Poisson inter-arrival times in workload generators.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal (mean 0, stddev 1) value via the
// Box-Muller transform. Unlike math/rand it draws two uniforms and
// discards the second variate: a cached spare would make the stream
// depend on call parity, which breaks Fork-based stream isolation.
func (r *Rand) NormFloat64() float64 {
	for {
		u := r.Float64()
		v := r.Float64()
		if u > 0 {
			return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fork derives an independent generator from r's stream, so components can
// own private RNGs without perturbing each other's sequences.
func (r *Rand) Fork() *Rand { return NewRand(r.Uint64()) }
