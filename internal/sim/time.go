// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives every other component of the Falcon reproduction: CPU
// cores, network devices, links, workload generators and applications all
// schedule callbacks on a shared virtual clock with nanosecond resolution.
// Determinism is guaranteed by a strict (time, sequence) ordering of events
// and by seeded random number generators; the same seed always produces the
// same simulation, byte for byte.
package sim

import "fmt"

// Time is a point in virtual time, measured in nanoseconds since the start
// of the simulation.
type Time int64

// Duration constants for building virtual times.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// FromSeconds builds a Time from floating-point seconds.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }
