package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.After(30, func() { got = append(got, 3) })
	e.After(10, func() { got = append(got, 1) })
	e.After(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken events not FIFO at %d: %v", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New(1)
	var fired []Time
	e.After(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
		e.After(0, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	want := []Time{10, 10, 15}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := New(1)
	count := 0
	for i := Time(1); i <= 100; i++ {
		e.At(i*10, func() { count++ })
	}
	e.RunUntil(500)
	if count != 50 {
		t.Fatalf("count = %d, want 50", count)
	}
	if e.Now() != 500 {
		t.Fatalf("clock = %v, want 500", e.Now())
	}
	e.RunUntil(1000)
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := New(1)
	e.After(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	ran := false
	tm := e.After(10, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("first Stop returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled timer still fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := New(1)
	tm := e.After(10, func() {})
	e.Run()
	if tm.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

func TestEngineStop(t *testing.T) {
	e := New(1)
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i, func() {
			count++
			if count == 5 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5 after Stop", count)
	}
	e.Run() // resumes
	if count != 10 {
		t.Fatalf("count = %d, want 10 after resume", count)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed uint64) []uint64 {
		e := New(seed)
		rng := e.Rand()
		var trace []uint64
		var tick func()
		tick = func() {
			trace = append(trace, rng.Uint64())
			if len(trace) < 50 {
				e.After(Time(1+rng.Intn(100)), tick)
			}
		}
		e.After(1, tick)
		e.Run()
		return trace
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism violated at %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestRandIntnBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(7)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if mean < 0.98 || mean > 1.02 {
		t.Fatalf("exp mean = %v, want ~1", mean)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(64)
	seen := make([]bool, 64)
	for _, v := range p {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandForkIndependence(t *testing.T) {
	r := NewRand(9)
	a := r.Fork()
	b := r.Fork()
	if a.Uint64() == b.Uint64() {
		t.Fatal("forked generators produced identical first values")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2500, "2.500us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestPendingCount(t *testing.T) {
	e := New(1)
	t1 := e.After(10, func() {})
	e.After(20, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	t1.Stop()
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after cancel, want 1", e.Pending())
	}
}
