package sim

// Sim is the scheduling surface shared by the serial Engine and the
// multi-shard Cluster. Topology and workload code holds a Sim where it
// previously held a *Engine: construction maps each simulated host to a
// logical process with Shard, and everything scheduled at runtime goes
// through the host's own engine. Control-plane work scheduled directly
// on the Sim (experiment samplers, fault windows, audit sweeps) runs at
// cluster barriers with every logical process parked, so it may freely
// read and mutate any shard's state.
type Sim interface {
	// Now returns the current virtual time. For a Cluster this is the
	// coordinator's clock: between runs and during control events it
	// equals the last barrier time.
	Now() Time
	// Rand returns the root RNG. Components fork it during
	// (single-threaded) construction; runtime draws must come from a
	// fork owned by exactly one logical process.
	Rand() *Rand

	// At, AtArg, After and AfterArg schedule control-plane callbacks.
	// On a Cluster these run on the coordinator with all shards parked.
	At(t Time, fn func()) Timer
	AtArg(t Time, fn func(any), arg any) Timer
	After(d Time, fn func()) Timer
	AfterArg(d Time, fn func(any), arg any) Timer

	// Run executes until no events remain; RunUntil until the deadline.
	Run()
	RunUntil(deadline Time)
	// Stop halts the run loop. On a Cluster it must be called from
	// control context (a coordinator event or between runs).
	Stop()

	// SetEventBudget caps fired events (per logical process on a
	// Cluster); Fired and Pending aggregate across all of them.
	SetEventBudget(n uint64)
	Fired() uint64
	Pending() int

	// Shard returns the engine owning logical process i (mapped modulo
	// NumShards); a serial engine returns itself. Host construction
	// uses this to pin each simulated machine to one shard.
	Shard(i int) *Engine
	// NumShards returns the number of logical processes.
	NumShards() int
}

var (
	_ Sim = (*Engine)(nil)
	_ Sim = (*Cluster)(nil)
)
