package sim

import (
	"fmt"
	"math"
	"math/bits"
)

// The scheduler is a hierarchical timing wheel in front of an overflow
// heap (DESIGN.md §2 "Engine internals"). Nearly all events in the
// simulation are scheduled a short delay ahead (per-function CPU costs,
// interrupt moderation windows, timer ticks), so they land in the wheel
// and cost O(1) to schedule, cancel and fire; events beyond the wheel
// horizon (~4.3 s) park in a binary heap and fire directly from it.
//
// Events are pooled on a free list and recycled immediately after they
// fire or are cancelled. A Timer handle therefore carries a generation
// stamp: Stop on a handle whose event has been recycled (and possibly
// rescheduled for an unrelated purpose) is a safe no-op.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits // 256
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	// wheelHorizon is the first delta that no longer fits the wheel.
	wheelHorizon = uint64(1) << (wheelBits * wheelLevels)
)

// event is a scheduled callback. Events fire in (at, schedAt, seq)
// order: schedAt is the clock when the event was scheduled, so ties at
// the same firing time resolve in FIFO scheduling order. For a serial
// engine schedAt is monotone in seq and the pair degenerates to plain
// seq order; a Cluster draining cross-shard messages inserts them with
// the sender's clock as schedAt, reproducing the serial engine's
// schedule-chronology tie-break across shard boundaries.
type event struct {
	at      Time
	schedAt Time
	seq     uint64
	gen     uint64 // bumped on every recycle; stale Timer handles mismatch
	eng     *Engine

	// Exactly one of fn / afn is set while live. afn avoids a closure
	// allocation on hot paths: the argument rides in arg.
	fn  func()
	afn func(any)
	arg any

	// Intrusive doubly-linked list node while in a wheel bucket or the
	// due list (in != nil), or heap index while in the overflow heap
	// (heapIdx >= 0, in == nil). Free events link through next.
	next, prev *event
	in         *bucket
	heapIdx    int32
	dead       bool // cancelled while in the heap (lazily removed)
}

func (ev *event) live() bool { return !ev.dead && (ev.fn != nil || ev.afn != nil) }

// bucket is one seq-ordered event list: a wheel slot or the due list.
type bucket struct {
	head, tail *event
	level      int8 // wheel level, or -1 for the due list
	slot       int16
}

// firesBefore orders events with equal firing times: by schedule time,
// then by sequence number.
func (ev *event) firesBefore(o *event) bool {
	if ev.schedAt != o.schedAt {
		return ev.schedAt < o.schedAt
	}
	return ev.seq < o.seq
}

// insert places ev keeping the bucket sorted by (schedAt, seq).
// Schedule-time inserts always hit the O(1) tail fast path (both keys
// are monotonic); cascades, heap merges and cross-shard drains may walk
// backward, which is rare.
func (b *bucket) insert(ev *event) {
	ev.in = b
	if b.tail == nil {
		ev.prev, ev.next = nil, nil
		b.head, b.tail = ev, ev
		return
	}
	p := b.tail
	for p != nil && ev.firesBefore(p) {
		p = p.prev
	}
	if p == nil { // new head
		ev.prev, ev.next = nil, b.head
		b.head.prev = ev
		b.head = ev
		return
	}
	ev.prev, ev.next = p, p.next
	if p.next != nil {
		p.next.prev = ev
	} else {
		b.tail = ev
	}
	p.next = ev
}

// unlink removes ev from the bucket. O(1).
func (b *bucket) unlink(ev *event) {
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		b.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		b.tail = ev.prev
	}
	ev.next, ev.prev, ev.in = nil, nil, nil
}

// Timer is a generation-stamped handle to a scheduled event. The zero
// Timer is valid and inert. Handles stay safe after their event fires:
// the pooled event's generation is bumped on recycle, so Stop and
// Pending on a stale handle are no-ops.
type Timer struct {
	ev  *event
	gen uint64
}

// Pending reports whether the timer is scheduled and not yet fired or
// stopped.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.live()
}

// Stop cancels the timer. It reports whether the callback was prevented
// from running (false when it already fired, was already stopped, or the
// handle is stale).
func (t *Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || !ev.live() {
		return false
	}
	ev.eng.cancel(ev)
	return true
}

// Engine is the discrete-event simulation core.
type Engine struct {
	now     Time
	cur     uint64 // wheel cursor; now >= Time(cur) always
	seq     uint64
	live    int // scheduled, uncancelled events (all structures)
	rng     *Rand
	stopped bool
	fired   uint64
	budget  uint64 // max events to fire; 0 = unlimited
	shard   int    // logical-process index when owned by a Cluster

	due bucket // events at exactly cur, ready to fire, seq-ordered

	levels     [wheelLevels][wheelSlots]bucket
	occ        [wheelLevels][wheelSlots / 64]uint64
	levelCount [wheelLevels]int

	heap     []*event // overflow: at - cur >= wheelHorizon when added
	heapDead int      // cancelled events still in heap (lazily compacted)

	// nextHint caches a lower bound on the next firing boundary so a
	// Cluster's per-window NextAt sweep over idle logical processes is
	// O(1) instead of a full wheel scan. math.MaxUint64 means "dirty":
	// the next NextAt call rescans and re-caches. The invariant is
	// one-sided — the hint may go stale-low (after a cancel or fire) but
	// never stale-high, so NextAt's lower-bound contract holds; stale-low
	// hints self-heal on the next advance(), which refreshes the cache
	// with a fresh scan when it runs out of due events.
	nextHint uint64

	free *event // recycled event free list, linked via next
}

// New returns an engine with its clock at zero, seeded with seed.
func New(seed uint64) *Engine {
	e := &Engine{rng: NewRand(seed), nextHint: math.MaxUint64}
	e.due.level = -1
	return e
}

// NewShared returns an engine whose root RNG is the caller-supplied
// generator r, shared with other engines. A Cluster builds every
// logical process this way so that construction-time Fork() calls
// consume the single root stream in exactly the order the serial
// engine would — the foundation of shard-count byte-identity.
func NewShared(r *Rand) *Engine {
	e := &Engine{rng: r, nextHint: math.MaxUint64}
	e.due.level = -1
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetClock advances the clock to t without executing anything. The
// wheel cursor is untouched (advance already tolerates a cursor behind
// the clock). It is the Cluster's barrier primitive: parked logical
// processes are moved to the window boundary so relative scheduling
// (After) from coordinator context uses correct absolute times. The
// caller must guarantee no pending event is earlier than t; calling
// with t <= now is a no-op.
func (e *Engine) SetClock(t Time) {
	if t > e.now {
		e.now = t
	}
}

// NextAt returns a lower bound on the firing time of the engine's next
// event, and whether any event is pending. The bound is exact when the
// next event sits in the due list, in wheel level 0 or in the overflow
// heap; for events parked in upper wheel levels it may return the next
// cascade boundary instead (a time strictly before the event, never
// after it). Underestimation is safe for window-based synchronization:
// the window merely shrinks to the boundary and the next iteration
// makes strict progress.
func (e *Engine) NextAt() (Time, bool) {
	if e.live == 0 {
		return 0, false
	}
	if e.due.head != nil { // only after Stop mid-run
		return e.now, true
	}
	if h := e.nextHint; h != math.MaxUint64 {
		// Cached lower bound from the last scan (kept current by
		// schedule's min-updates). Cancels may have left it stale-low,
		// which only shrinks the caller's window — still correct.
		t := Time(h)
		if t < e.now {
			t = e.now
		}
		return t, true
	}
	m := uint64(math.MaxUint64)
	if e.levelCount[0] > 0 {
		if d := nextOccupied(&e.occ[0], int(e.cur&wheelMask)); d > 0 {
			m = e.cur + uint64(d)
		}
	}
	for l := 1; l < wheelLevels; l++ {
		if e.levelCount[l] == 0 {
			continue
		}
		shift := uint(wheelBits * l)
		if d := nextOccupied(&e.occ[l], int((e.cur>>shift)&wheelMask)); d > 0 {
			if b := ((e.cur >> shift) + uint64(d)) << shift; b < m {
				m = b
			}
		}
	}
	if hm, ok := e.heapMin(); ok && hm < m {
		m = hm
	}
	if m == math.MaxUint64 {
		return 0, false
	}
	e.nextHint = m
	t := Time(m)
	if t < e.now {
		t = e.now
	}
	return t, true
}

// Shard returns the engine itself: a serial engine is its own (only)
// logical process, so hosts mapped to any shard index share it.
func (e *Engine) Shard(int) *Engine { return e }

// NumShards returns 1: the serial engine is a single logical process.
func (e *Engine) NumShards() int { return 1 }

// Rand returns the engine's root RNG. Components should Fork it.
func (e *Engine) Rand() *Rand { return e.rng }

// Fired returns the number of events executed so far (for diagnostics).
func (e *Engine) Fired() uint64 { return e.fired }

// BudgetExceeded is the panic value raised when an engine passes its
// event budget — the runaway-simulation backstop behind falconsim's
// -max-events flag. Callers recover it, report the diagnostic, and exit
// nonzero instead of spinning forever.
type BudgetExceeded struct {
	Limit uint64
	Now   Time
}

func (b *BudgetExceeded) Error() string {
	return fmt.Sprintf("sim: event budget exceeded: %d events fired, sim time %v", b.Limit, b.Now)
}

// SetEventBudget caps the number of events this engine may fire; firing
// past the cap panics with *BudgetExceeded. 0 removes the cap.
func (e *Engine) SetEventBudget(n uint64) { e.budget = n }

// Pending returns the number of scheduled, uncancelled events. O(1):
// a live counter is maintained on schedule, cancel and fire.
func (e *Engine) Pending() int { return e.live }

func (e *Engine) alloc() *event {
	ev := e.free
	if ev == nil {
		ev = &event{eng: e, heapIdx: -1}
		return ev
	}
	e.free = ev.next
	ev.next = nil
	return ev
}

// recycle returns a dead, unlinked event to the pool, invalidating all
// outstanding Timer handles to it.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.afn, ev.arg = nil, nil, nil
	ev.in, ev.prev = nil, nil
	ev.heapIdx = -1
	ev.dead = false
	ev.next = e.free
	e.free = ev
}

// schedule places a freshly allocated event into the due list, wheel or
// overflow heap according to its delay.
func (e *Engine) schedule(ev *event) {
	e.live++
	x := uint64(ev.at) ^ e.cur
	if x == 0 {
		// Due events fire at the cursor, at or below every other
		// candidate boundary, so the cursor is always a safe hint.
		if e.cur < e.nextHint {
			e.nextHint = e.cur
		}
		e.due.insert(ev)
		return
	}
	// Place by the highest digit in which the event time differs from the
	// cursor: its slot at that level is strictly ahead of the cursor, and
	// the cascade at each window boundary re-places it one level down
	// until it reaches the due list at exactly its firing time.
	l := (bits.Len64(x) - 1) / wheelBits
	if l >= wheelLevels {
		if e.nextHint != math.MaxUint64 && uint64(ev.at) < e.nextHint {
			e.nextHint = uint64(ev.at)
		}
		e.heapPush(ev)
		return
	}
	// The new event's scan candidate at level l is its firing time with
	// the sub-level digits cleared. Min-merging it keeps the cached hint
	// a valid lower bound; when the hint is dirty (MaxUint64) it stays
	// dirty — a partial min over new events only would overestimate.
	if e.nextHint != math.MaxUint64 {
		if f := uint64(ev.at) &^ (uint64(1)<<(wheelBits*l) - 1); f < e.nextHint {
			e.nextHint = f
		}
	}
	slot := int(uint64(ev.at)>>(wheelBits*l)) & wheelMask
	b := &e.levels[l][slot]
	if b.head == nil {
		b.level, b.slot = int8(l), int16(slot)
		e.occ[l][slot>>6] |= 1 << (slot & 63)
	}
	b.insert(ev)
	e.levelCount[l]++
}

// cancel removes a live event: O(1) unlink for wheel/due events, lazy
// mark-dead for heap events (compacted when the dead fraction passes
// one half, so long runs with heavy timer churn don't grow the heap
// unboundedly).
func (e *Engine) cancel(ev *event) {
	e.live--
	if ev.in != nil {
		b := ev.in
		b.unlink(ev)
		if b.level >= 0 {
			e.levelCount[b.level]--
			if b.head == nil {
				e.occ[b.level][b.slot>>6] &^= 1 << (b.slot & 63)
			}
		}
		e.recycle(ev)
		return
	}
	// In the overflow heap: mark dead, remove lazily.
	ev.fn, ev.afn, ev.arg = nil, nil, nil
	ev.dead = true
	e.heapDead++
	if e.heapDead >= 64 && e.heapDead*2 > len(e.heap) {
		e.compactHeap()
	}
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it is always a simulation bug.
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.at, ev.schedAt, ev.seq, ev.fn = t, e.now, e.seq, fn
	e.seq++
	e.schedule(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// AtArg schedules fn(arg) at absolute time t. Unlike At it needs no
// closure: hot paths pass a package-level function and carry their state
// in arg, making the schedule allocation-free.
func (e *Engine) AtArg(t Time, fn func(any), arg any) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.at, ev.schedAt, ev.seq, ev.afn, ev.arg = t, e.now, e.seq, fn, arg
	e.seq++
	e.schedule(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// atPosted schedules fn(arg) at absolute time t with an explicit
// schedule-time tie-break key — the Cluster's barrier drain uses the
// sending shard's clock here, so a cross-shard delivery interleaves
// with the destination's same-nanosecond events exactly as it would
// have on a single serial engine.
func (e *Engine) atPosted(t, schedAt Time, fn func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.at, ev.schedAt, ev.seq, ev.afn, ev.arg = t, schedAt, e.seq, fn, arg
	e.seq++
	e.schedule(ev)
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// AfterArg schedules fn(arg) d nanoseconds from now, without a closure.
func (e *Engine) AfterArg(d Time, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return e.AtArg(e.now+d, fn, arg)
}

// Stop halts the run loop after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for e.live > 0 && !e.stopped {
		if e.due.head == nil {
			if !e.advance(math.MaxUint64) {
				return
			}
			continue
		}
		e.fireOne()
	}
}

// RunUntil executes events with at <= deadline, then sets the clock to
// deadline. Events scheduled beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for e.live > 0 && !e.stopped {
		if e.due.head == nil {
			if !e.advance(uint64(deadline)) {
				break
			}
			continue
		}
		e.fireOne()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// fireOne pops the head of the due list and runs it. The event is
// recycled before the callback executes, so callbacks can schedule new
// work that reuses it, and stale Stop calls are already no-ops.
func (e *Engine) fireOne() {
	ev := e.due.head
	e.due.unlink(ev)
	if ev.at > e.now {
		e.now = ev.at
	}
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	e.recycle(ev)
	e.live--
	e.fired++
	if e.budget > 0 && e.fired > e.budget {
		panic(&BudgetExceeded{Limit: e.budget, Now: e.now})
	}
	if fn != nil {
		fn()
	} else {
		afn(arg)
	}
}

// nextOccupied returns the circular distance (1..255) from slot `from`
// to the next occupied slot in bm, or 0 when the level is empty. The
// caller guarantees slot `from` itself holds no pending events.
func nextOccupied(bm *[wheelSlots / 64]uint64, from int) int {
	for step := 1; step <= wheelMask; {
		idx := (from + step) & wheelMask
		rem := bm[idx>>6] >> (idx & 63)
		if rem != 0 {
			d := step + bits.TrailingZeros64(rem)
			if d > wheelMask {
				return 0
			}
			return d
		}
		step += 64 - (idx & 63)
	}
	return 0
}

// advance jumps the wheel cursor to the next event time (or cascade
// boundary on the way to it) at or before deadline, filling the due
// list. It reports false when nothing fires at or before the deadline.
func (e *Engine) advance(deadline uint64) bool {
	for e.due.head == nil {
		m := uint64(math.MaxUint64)
		if e.levelCount[0] > 0 {
			if d := nextOccupied(&e.occ[0], int(e.cur&wheelMask)); d > 0 {
				m = e.cur + uint64(d)
			}
		}
		for l := 1; l < wheelLevels; l++ {
			if e.levelCount[l] == 0 {
				continue
			}
			shift := uint(wheelBits * l)
			if d := nextOccupied(&e.occ[l], int((e.cur>>shift)&wheelMask)); d > 0 {
				if b := ((e.cur >> shift) + uint64(d)) << shift; b < m {
					m = b
				}
			}
		}
		if hm, ok := e.heapMin(); ok && hm < m {
			m = hm
		}
		if m == math.MaxUint64 || m > deadline {
			e.nextHint = m // fresh scan: exact boundary (or dirty if empty)
			return false
		}
		e.cur = m
		// Cursor moved: every cached candidate is relative to the old
		// cursor position. Dirty the hint; the exit path above re-caches.
		e.nextHint = math.MaxUint64
		if t := Time(m); t > e.now {
			e.now = t
		}
		// Cascade every level whose window boundary we just landed on,
		// highest first so freshly cascaded events redistribute in turn.
		for l := wheelLevels - 1; l >= 1; l-- {
			shift := uint(wheelBits * l)
			if e.cur&((1<<shift)-1) == 0 {
				e.cascade(l, int((e.cur>>shift)&wheelMask))
			}
		}
		// Collect the level-0 slot: every event in it is due exactly now.
		slot := int(e.cur & wheelMask)
		if b := &e.levels[0][slot]; b.head != nil {
			for ev := b.head; ev != nil; {
				next := ev.next
				ev.next, ev.prev, ev.in = nil, nil, nil
				e.levelCount[0]--
				e.due.insert(ev)
				ev = next
			}
			b.head, b.tail = nil, nil
			e.occ[0][slot>>6] &^= 1 << (slot & 63)
		}
		// Merge overflow-heap events due exactly now.
		for len(e.heap) > 0 && uint64(e.heap[0].at) == e.cur {
			ev := e.heapPop()
			if ev.dead {
				e.heapDead--
				e.recycle(ev)
				continue
			}
			e.due.insert(ev)
		}
	}
	return true
}

// cascade redistributes one upper-level slot into the levels below (or
// the due list, for events landing exactly on the boundary).
func (e *Engine) cascade(l, slot int) {
	b := &e.levels[l][slot]
	if b.head == nil {
		return
	}
	e.occ[l][slot>>6] &^= 1 << (slot & 63)
	ev := b.head
	b.head, b.tail = nil, nil
	for ev != nil {
		next := ev.next
		ev.next, ev.prev, ev.in = nil, nil, nil
		e.levelCount[l]--
		e.live-- // schedule re-increments
		e.schedule(ev)
		ev = next
	}
}

// Overflow heap: a plain binary min-heap on (at, schedAt, seq).

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.firesBefore(b)
}

func (e *Engine) heapPush(ev *event) {
	ev.heapIdx = int32(len(e.heap))
	e.heap = append(e.heap, ev)
	e.heapUp(len(e.heap) - 1)
}

func (e *Engine) heapPop() *event {
	ev := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap[0].heapIdx = 0
	e.heap[n] = nil
	e.heap = e.heap[:n]
	if n > 0 {
		e.heapDown(0)
	}
	ev.heapIdx = -1
	return ev
}

func (e *Engine) heapUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(e.heap[i], e.heap[p]) {
			break
		}
		e.heapSwap(i, p)
		i = p
	}
}

func (e *Engine) heapDown(i int) {
	n := len(e.heap)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && eventLess(e.heap[r], e.heap[c]) {
			c = r
		}
		if !eventLess(e.heap[c], e.heap[i]) {
			return
		}
		e.heapSwap(i, c)
		i = c
	}
}

func (e *Engine) heapSwap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.heap[i].heapIdx = int32(i)
	e.heap[j].heapIdx = int32(j)
}

// heapMin returns the earliest live heap event's time, lazily discarding
// cancelled events off the top.
func (e *Engine) heapMin() (uint64, bool) {
	for len(e.heap) > 0 {
		if ev := e.heap[0]; ev.dead {
			e.heapPop()
			e.heapDead--
			e.recycle(ev)
			continue
		}
		return uint64(e.heap[0].at), true
	}
	return 0, false
}

// compactHeap rebuilds the heap without its dead entries — called when
// more than half the heap is cancelled timers, so heavy Stop churn
// (e.g. per-segment TCP retransmit timers) cannot grow it unboundedly.
func (e *Engine) compactHeap() {
	alive := e.heap[:0]
	for _, ev := range e.heap {
		if ev.dead {
			e.recycle(ev)
			continue
		}
		alive = append(alive, ev)
	}
	for i := len(alive); i < len(e.heap); i++ {
		e.heap[i] = nil
	}
	e.heap = alive
	e.heapDead = 0
	for i := len(e.heap)/2 - 1; i >= 0; i-- {
		e.heapDown(i)
	}
	for i, ev := range e.heap {
		ev.heapIdx = int32(i)
	}
}
