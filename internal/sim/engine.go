package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. Events fire in (at, seq) order; seq breaks
// ties deterministically in FIFO scheduling order.
type event struct {
	at     Time
	seq    uint64
	fn     func()
	cancel *Timer
	index  int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	ev      *event
	stopped bool
}

// Stop cancels the timer. It reports whether the callback was prevented
// from running (false when it already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.stopped || t.ev == nil || t.ev.fn == nil {
		return false
	}
	t.stopped = true
	t.ev.fn = nil
	return true
}

// Engine is the discrete-event simulation core.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *Rand
	stopped bool
	fired   uint64
}

// New returns an engine with its clock at zero, seeded with seed.
func New(seed uint64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's root RNG. Components should Fork it.
func (e *Engine) Rand() *Rand { return e.rng }

// Fired returns the number of events executed so far (for diagnostics).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if ev.fn != nil {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a simulation bug.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop halts the run loop after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		e.step()
	}
}

// RunUntil executes events with at <= deadline, then sets the clock to
// deadline. Events scheduled beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped && e.events[0].at <= deadline {
		e.step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

func (e *Engine) step() {
	ev := heap.Pop(&e.events).(*event)
	if ev.fn == nil { // cancelled
		return
	}
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	e.fired++
	fn()
}
