package sim

import "testing"

// TestStaleStopIsNoOp pins the generation-stamp contract: once a timer
// fires, its pooled event may be recycled for unrelated work, and Stop
// through the old handle must not cancel the new event.
func TestStaleStopIsNoOp(t *testing.T) {
	e := New(1)
	var fired1, fired2 bool
	t1 := e.After(10, func() { fired1 = true })
	e.Run()
	if !fired1 {
		t.Fatal("first timer did not fire")
	}
	// The freed event is at the head of the pool: this reuses it.
	t2 := e.After(10, func() { fired2 = true })
	if t1.Stop() {
		t.Fatal("stale Stop reported success")
	}
	if !t2.Pending() {
		t.Fatal("stale Stop cancelled the recycled event")
	}
	e.Run()
	if !fired2 {
		t.Fatal("recycled event did not fire")
	}
	if t1.Pending() || t2.Pending() {
		t.Fatal("fired timers still pending")
	}
}

// TestStopAfterStopIsNoOp verifies double-Stop and Stop-then-reuse.
func TestStopAfterStopIsNoOp(t *testing.T) {
	e := New(1)
	tm := e.After(10, func() { t.Fatal("stopped timer fired") })
	if !tm.Stop() {
		t.Fatal("first Stop failed")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported success")
	}
	// Cancellation recycles immediately; the next schedule reuses the
	// event and the old handle must stay inert against it too.
	ok := false
	e.After(5, func() { ok = true })
	if tm.Stop() {
		t.Fatal("stale Stop after cancel reported success")
	}
	e.Run()
	if !ok {
		t.Fatal("reused event did not fire")
	}
}

// TestTimerStressSmallPool hammers schedule/fire/stop so every event
// struct is recycled many times, checking that exactly the un-stopped
// callbacks run, in non-decreasing time order, with Pending consistent.
func TestTimerStressSmallPool(t *testing.T) {
	e := New(42)
	rng := NewRand(7)
	var fired, stopped, scheduled int
	var last Time
	var timers []Timer
	var tick func()
	tick = func() {
		if e.Now() < last {
			t.Fatalf("time went backwards: %v after %v", e.Now(), last)
		}
		last = e.Now()
		fired++
		if scheduled >= 5000 {
			return
		}
		// Schedule a small burst; randomly stop some older handles
		// (many of which are stale by now).
		for i := 0; i < 3; i++ {
			scheduled++
			d := Time(rng.Intn(2000)) // spans level-0 and level-1 slots
			timers = append(timers, e.After(d, tick))
		}
		for i := 0; i < 2 && len(timers) > 0; i++ {
			j := rng.Intn(len(timers))
			if timers[j].Stop() {
				stopped++
				fired++ // account: this callback will never run
			}
			timers[j] = timers[len(timers)-1]
			timers = timers[:len(timers)-1]
		}
	}
	scheduled++
	e.After(0, tick)
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after drain", e.Pending())
	}
	if fired != scheduled {
		t.Fatalf("fired+stopped = %d, scheduled = %d", fired, scheduled)
	}
	if stopped == 0 {
		t.Fatal("stress never exercised Stop on a live timer")
	}
}

// TestWheelAndHeapOrdering schedules events across every wheel level and
// the overflow heap in shuffled order and verifies global (at, seq)
// firing order.
func TestWheelAndHeapOrdering(t *testing.T) {
	e := New(1)
	delays := []Time{
		0, 1, 2, 255, 256, 257, // level 0 → 1 boundary
		65535, 65536, 70000, // level 1 → 2 boundary
		1 << 24, 1<<24 + 3, // level 3
		1 << 32, 1<<32 + 1, 1 << 33, // beyond the horizon: heap
	}
	perm := NewRand(9).Perm(len(delays))
	type rec struct {
		at  Time
		idx int
	}
	var got []rec
	for i, pi := range perm {
		d := delays[pi]
		i := i
		e.At(d, func() { got = append(got, rec{e.Now(), i}) })
	}
	e.Run()
	if len(got) != len(delays) {
		t.Fatalf("fired %d of %d", len(got), len(delays))
	}
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("out of time order at %d: %v < %v", i, got[i].at, got[i-1].at)
		}
		if got[i].at == got[i-1].at && got[i].idx < got[i-1].idx {
			t.Fatalf("FIFO tie-break violated at %v", got[i].at)
		}
	}
}

// TestHeapEventCrossesIntoWheel checks that a far-future event parked in
// the overflow heap still fires at exactly its scheduled time.
func TestHeapEventCrossesIntoWheel(t *testing.T) {
	e := New(1)
	const far = Time(5) << 32 // well past the wheel horizon
	var at Time
	e.At(far, func() { at = e.Now() })
	// Keep the wheel busy on the way there.
	n := 0
	var hop func()
	hop = func() {
		n++
		if n < 100 {
			e.After(1<<20, hop)
		}
	}
	e.After(0, hop)
	e.Run()
	if at != far {
		t.Fatalf("heap event fired at %v, want %v", at, far)
	}
}
