package reconfig

import (
	"fmt"

	falconcore "falcon/internal/core"
	"falcon/internal/devices"
	"falcon/internal/overlay"
	"falcon/internal/proto"
	"falcon/internal/sim"
)

// Quiesce-ladder parameters: after a drain's effective time the manager
// re-checks the drained host's datapath at a fixed period until it is
// empty (or the ladder runs out, leaving the host attached — a bug the
// record makes visible). The ladder is bounded and every check is an
// ordinary coordinator event, so the schedule's event set is identical
// at every shard count.
const (
	quiescePeriod    = 100 * sim.Microsecond
	quiesceMaxChecks = 200
)

// DropSnapshot is a cumulative host-datapath drop census at one instant:
// the per-generation drop buckets of the convergence report come from
// deltas between consecutive snapshots.
type DropSnapshot struct {
	Resolve     uint64 // tx resolution failures (KV miss during transit)
	Build       uint64 // tx frame-build failures
	NIC         uint64 // NIC ring/frame drops
	Backlog     uint64 // softirq backlog overflow
	Path        uint64 // rx-path discards (unparsable, unknown MAC)
	L4          uint64 // no bound endpoint
	LinkLost    uint64 // random wire loss
	LinkDropped uint64 // link tx-queue overflow
	Crash       uint64 // packets destroyed by a host crash (purged + blackholed)
}

// Total sums every bucket.
func (d DropSnapshot) Total() uint64 {
	return d.Resolve + d.Build + d.NIC + d.Backlog + d.Path + d.L4 +
		d.LinkLost + d.LinkDropped + d.Crash
}

// Sub returns the per-bucket difference d - prev.
func (d DropSnapshot) Sub(prev DropSnapshot) DropSnapshot {
	return DropSnapshot{
		Resolve: d.Resolve - prev.Resolve, Build: d.Build - prev.Build,
		NIC: d.NIC - prev.NIC, Backlog: d.Backlog - prev.Backlog,
		Path: d.Path - prev.Path, L4: d.L4 - prev.L4,
		LinkLost: d.LinkLost - prev.LinkLost, LinkDropped: d.LinkDropped - prev.LinkDropped,
		Crash: d.Crash - prev.Crash,
	}
}

// GenRecord documents one applied generation: the action, when it took
// effect, the drop census at its boundary (counters the instant before
// application), and — for drains — when the host's datapath quiesced
// and whether its LP detached.
type GenRecord struct {
	Gen     uint64
	Action  Action
	Applied sim.Time
	// Drops is the cumulative snapshot at the generation boundary; the
	// drops attributed to this generation are the next boundary's
	// snapshot minus this one.
	Drops DropSnapshot
	// QuiescedAt is when the drained host's datapath emptied (-1 while
	// pending or for non-drain actions); Detached reports the LP's
	// ticker was stopped, Reattached that an add restarted it.
	QuiescedAt sim.Time
	Detached   bool
	Reattached bool
}

// Manager arms a validated schedule against a live network. All
// application happens through pre-declared simulation events; after Arm
// the manager is driven entirely by the event queue.
type Manager struct {
	Net   *overlay.Network
	Sched *Schedule

	// OnGeneration, when set, observes each record the instant its
	// generation applies (drain records are still mutating: quiesce
	// fields fill in later).
	OnGeneration func(*GenRecord)

	records  []*GenRecord
	falcons  map[string]*falconcore.Falcon
	draining map[string]*GenRecord
	armed    bool
	det      *detector
}

// New builds a manager for the network and schedule.
func New(net *overlay.Network, sched *Schedule) *Manager {
	return &Manager{
		Net:      net,
		Sched:    sched,
		falcons:  make(map[string]*falconcore.Falcon),
		draining: make(map[string]*GenRecord),
	}
}

// Records returns the per-generation records in application order.
func (m *Manager) Records() []*GenRecord { return m.records }

// Snapshot takes a drop census over every host and link right now.
func (m *Manager) Snapshot() DropSnapshot {
	var s DropSnapshot
	for _, h := range m.Net.Hosts() {
		s.Resolve += h.TxResolveDrops.Value()
		s.Build += h.TxBuildDrops.Value()
		s.NIC += h.NIC.Drops.Value()
		s.Backlog += h.St.Drops.Value()
		s.Path += h.Rx.PathDrops.Value()
		s.L4 += h.L4Drops.Value()
		s.Crash += h.CrashDrops.Value()
		h.EachLink(func(_ proto.IPv4Addr, l *devices.Link) {
			s.LinkLost += l.Lost.Value()
			s.LinkDropped += l.Dropped.Value()
		})
	}
	return s
}

// Arm resolves the schedule against the network and pre-schedules every
// action at base + AtMs. Must run before the simulation starts (or at
// least before the first effective time); it captures each host's
// Falcon instance so steer-flips restore the exact engine rather than
// constructing a second one (falconcore.New subscribes to the machine
// tick — building twice would double-subscribe).
func (m *Manager) Arm(base sim.Time) error {
	if m.armed {
		return fmt.Errorf("reconfig: schedule armed twice")
	}
	if err := m.Sched.Validate(); err != nil {
		return err
	}
	for _, h := range m.Net.Hosts() {
		if h.Falcon != nil {
			m.falcons[h.Name] = h.Falcon
		}
	}
	for i := range m.Sched.Actions {
		a := m.Sched.Actions[i]
		h := m.hostByName(a.Host)
		if h == nil {
			return fmt.Errorf("reconfig: action %d: unknown host %q", i, a.Host)
		}
		switch a.Kind {
		case KindSteerFlip:
			if m.falcons[a.Host] == nil {
				return fmt.Errorf("reconfig: action %d: steer-flip on %q, which has no Falcon attached", i, a.Host)
			}
		case KindDrain:
			dst := m.hostByName(a.To)
			if dst == nil {
				return fmt.Errorf("reconfig: action %d: unknown drain target %q", i, a.To)
			}
			for _, c := range h.Containers() {
				if dst.ContainerByIP(c.IP) == nil {
					return fmt.Errorf("reconfig: action %d: drain target %q has no standby twin for container %v", i, a.To, c.IP)
				}
			}
		}
		t := base + sim.Time(a.AtMs)*sim.Millisecond
		m.Net.E.At(t, func() { m.apply(a, h, t) })
	}
	m.armed = true
	return nil
}

func (m *Manager) hostByName(name string) *overlay.Host {
	for _, h := range m.Net.Hosts() {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// apply executes one action at its effective time. The drop snapshot is
// taken before the action mutates anything, so it marks the generation
// boundary exactly.
func (m *Manager) apply(a Action, h *overlay.Host, t sim.Time) {
	rec := &GenRecord{
		Gen:        m.Net.BumpGeneration(),
		Action:     a,
		Applied:    t,
		Drops:      m.Snapshot(),
		QuiescedAt: -1,
	}
	switch a.Kind {
	case KindKernelUpgrade:
		h.SetKernel(a.Kernel)
	case KindSteerFlip:
		if *a.Enable {
			f := m.falcons[a.Host]
			h.Falcon = f
			h.Rx.Falcon = f
		} else {
			h.DisableFalcon()
		}
	case KindRPSFlip:
		h.Rx.RPS.Enabled = *a.Enable
	case KindDrain:
		m.beginDrain(a, h, rec)
	case KindAdd:
		delete(m.draining, h.Name) // cancels a still-running quiesce ladder
		h.M.StartTicker()
		rec.Reattached = true
	}
	m.records = append(m.records, rec)
	if m.OnGeneration != nil {
		m.OnGeneration(rec)
	}
}

// beginDrain unpublishes the host's containers, schedules their landing
// on the target's standby twins after the transit gap, and starts the
// quiesce ladder. Senders hit definitive KV misses during the gap —
// counted resolve drops, never silent loss — and the Put bumps the KV
// version, which purges the negative-cache entries those misses left
// behind.
func (m *Manager) beginDrain(a Action, h *overlay.Host, rec *GenRecord) {
	dst := m.hostByName(a.To)
	for _, c := range h.Containers() {
		m.Net.KV.Delete(c.IP)
	}
	land := func() {
		for _, c := range h.Containers() {
			if twin := dst.ContainerByIP(c.IP); twin != nil {
				m.Net.KV.Put(c.IP, twin.Endpoint())
			}
		}
	}
	if transit := sim.Time(a.TransitUs) * sim.Microsecond; transit > 0 {
		m.Net.E.After(transit, land)
	} else {
		land()
	}
	m.draining[h.Name] = rec
	for i := 1; i <= quiesceMaxChecks; i++ {
		m.Net.E.After(sim.Time(i)*quiescePeriod, func() { m.quiesceCheck(h, rec) })
	}
}

// quiesceCheck is one rung of the drain ladder: once the host's own
// datapath is empty AND every peer's link toward it carries nothing,
// the host detaches (ticker stopped — its LP schedules no further
// recurring work). Checks after detach, or after an add superseded the
// drain, are no-ops.
func (m *Manager) quiesceCheck(h *overlay.Host, rec *GenRecord) {
	if rec.Detached || m.draining[h.Name] != rec {
		return
	}
	if rec.Action.Kind == KindFailover && !h.Crashed() {
		// The host rebooted before its fail-over ladder finished:
		// detaching now would stop the rebooted ticker and starve the
		// detector of the heartbeats re-admission needs. The rejoin
		// record cancels the remaining rungs.
		return
	}
	if !h.Quiesced() {
		return
	}
	for _, p := range m.Net.Hosts() {
		if p == h {
			continue
		}
		if l := p.LinkTo(h.IP); l != nil && l.QueueLen() > 0 {
			return
		}
	}
	rec.QuiescedAt = m.Net.E.Now()
	rec.Detached = true
	h.M.StopTicker()
}
