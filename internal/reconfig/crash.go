package reconfig

import (
	"encoding/json"
	"fmt"
	"os"
)

// CrashEvent kills one host at an absolute offset from the schedule
// base and optionally reboots it later. Unlike reconfig Actions, a
// crash is a fault: nothing is drained first — the host dies with
// packets in its rings, and recovery is the failure detector's job.
type CrashEvent struct {
	Host string `json:"host"`
	AtMs int    `json:"at_ms"`
	// RebootMs, when positive, reboots the host at that offset (must be
	// after AtMs). Zero means the host stays dead.
	RebootMs int `json:"reboot_ms,omitempty"`
}

// PartitionEvent cuts one host off from the KV control plane for a
// window: the host serves stale flow-cache mappings (bounded staleness)
// and retries misses with backoff until the partition heals, at which
// point its caches reconcile.
type PartitionEvent struct {
	Host string `json:"host"`
	AtMs int    `json:"at_ms"`
	// HealMs, when positive, heals the partition at that offset (must be
	// after AtMs). Zero means the partition lasts the rest of the run.
	HealMs int `json:"heal_ms,omitempty"`
}

// CrashSchedule is the declarative input of the -crash flag: host
// crash/reboot windows and control-plane partitions, applied at
// deterministic sim-times.
type CrashSchedule struct {
	Crashes    []CrashEvent     `json:"crashes"`
	Partitions []PartitionEvent `json:"partitions,omitempty"`
}

// Validate checks structural well-formedness: named hosts, non-negative
// time-ordered offsets, reboot/heal after the event they end, and at
// most one crash per host (a second crash of the same host would race
// its own detector ladder). Host-name resolution happens when the
// schedule is installed against a concrete network.
func (s *CrashSchedule) Validate() error {
	if len(s.Crashes) == 0 && len(s.Partitions) == 0 {
		return fmt.Errorf("reconfig: crash schedule has no events")
	}
	lastAt := 0
	crashed := map[string]bool{}
	for i, c := range s.Crashes {
		if c.Host == "" {
			return fmt.Errorf("reconfig: crash %d: missing host", i)
		}
		if c.AtMs < 0 {
			return fmt.Errorf("reconfig: crash %d: negative at_ms %d", i, c.AtMs)
		}
		if c.AtMs < lastAt {
			return fmt.Errorf("reconfig: crash %d: at_ms %d before previous %d (crashes must be time-ordered)", i, c.AtMs, lastAt)
		}
		lastAt = c.AtMs
		if c.RebootMs != 0 && c.RebootMs <= c.AtMs {
			return fmt.Errorf("reconfig: crash %d: reboot_ms %d not after at_ms %d", i, c.RebootMs, c.AtMs)
		}
		if crashed[c.Host] {
			return fmt.Errorf("reconfig: crash %d: host %q crashed twice", i, c.Host)
		}
		crashed[c.Host] = true
	}
	lastAt = 0
	for i, p := range s.Partitions {
		if p.Host == "" {
			return fmt.Errorf("reconfig: partition %d: missing host", i)
		}
		if p.AtMs < 0 {
			return fmt.Errorf("reconfig: partition %d: negative at_ms %d", i, p.AtMs)
		}
		if p.AtMs < lastAt {
			return fmt.Errorf("reconfig: partition %d: at_ms %d before previous %d (partitions must be time-ordered)", i, p.AtMs, lastAt)
		}
		lastAt = p.AtMs
		if p.HealMs != 0 && p.HealMs <= p.AtMs {
			return fmt.Errorf("reconfig: partition %d: heal_ms %d not after at_ms %d", i, p.HealMs, p.AtMs)
		}
	}
	return nil
}

// CrashFromJSON parses a crash schedule and validates it.
func CrashFromJSON(data []byte) (*CrashSchedule, error) {
	var s CrashSchedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("reconfig: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadCrashFile reads a crash schedule from a JSON file (the -crash
// flag).
func LoadCrashFile(path string) (*CrashSchedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reconfig: %w", err)
	}
	return CrashFromJSON(data)
}
