package reconfig

import (
	"fmt"
	"sort"

	"falcon/internal/overlay"
	"falcon/internal/proto"
	"falcon/internal/sim"
)

// Failure-detector defaults. The hysteresis is the core-health
// tracker's, lifted a level: declare death fast (a corpse bounds the
// packets blackholed at its NIC), re-admit slowly (a host flapping
// across its reboot must not oscillate the KV mappings).
const (
	// DefaultDetectPeriod is the heartbeat scan cadence.
	DefaultDetectPeriod = 500 * sim.Microsecond
	// DefaultDetectTimeout is the heartbeat age past which a scan counts
	// the host sick. Heartbeats ride the 1ms machine tick, so the
	// timeout must exceed one tick period.
	DefaultDetectTimeout = 2 * sim.Millisecond
	// DefaultDetectSickAfter is how many consecutive sick scans declare
	// a host dead (fail-over fires).
	DefaultDetectSickAfter = 2
	// DefaultDetectWellAfter is how many consecutive fresh-heartbeat
	// scans re-admit a rebooted host (rejoin fires).
	DefaultDetectWellAfter = 4
)

// DetectorConfig tunes the deterministic failure detector.
type DetectorConfig struct {
	// Period is the scan cadence (0 → DefaultDetectPeriod).
	Period sim.Time
	// Timeout is the heartbeat age that marks a host sick (0 →
	// DefaultDetectTimeout).
	Timeout sim.Time
	// SickAfter / WellAfter are the hysteresis streak lengths in scans
	// (0 → defaults).
	SickAfter, WellAfter int
	// TransitUs is the fail-over remap's transit gap: the window between
	// the dead host's mappings being deleted and the standby twins'
	// publication.
	TransitUs int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Period == 0 {
		c.Period = DefaultDetectPeriod
	}
	if c.Timeout == 0 {
		c.Timeout = DefaultDetectTimeout
	}
	if c.SickAfter == 0 {
		c.SickAfter = DefaultDetectSickAfter
	}
	if c.WellAfter == 0 {
		c.WellAfter = DefaultDetectWellAfter
	}
	return c
}

// hostMonitor is the detector's per-host tracker state.
type hostMonitor struct {
	host *overlay.Host
	twin *overlay.Host
	// beatAt is the host's latest heartbeat. It is written only by the
	// monitored host's own shard (an OnTick callback) and read only by
	// the coordinator at barriers, where every shard is parked — the
	// worker pool's park/wake edges order the accesses.
	beatAt     sim.Time
	sickStreak int
	wellStreak int
	dead       bool
}

// detector is the failure-driven half of the Manager: a deterministic
// sim-time heartbeat detector whose declarations produce generation
// bumps exactly like scheduled actions do.
type detector struct {
	cfg      DetectorConfig
	monitors map[string]*hostMonitor
	order    []string // sorted monitor names: scan order is deterministic
}

// StartDetector arms a failure detector over the given hosts. twins
// maps each monitored host's name to the standby host that receives its
// containers on fail-over (every container needs a standby twin there,
// as with a scheduled drain). Scans are pre-declared coordinator events
// at every Period in (from, until] — the event set is fixed up front,
// so the schedule is identical at every shard count. Heartbeats ride
// each host's machine tick; a crashed host stops beating and, after
// Timeout + SickAfter scans, the detector deletes its KV mappings,
// purges every survivor's cached routes to it, lands the mappings on
// the twins TransitUs later, and detaches the corpse's LP through the
// quiesce ladder. A rebooted host beats again and is re-admitted after
// WellAfter fresh scans (its containers stay on the twins, as after a
// drain+add).
func (m *Manager) StartDetector(cfg DetectorConfig, twins map[string]string, from, until sim.Time) error {
	if m.det != nil {
		return fmt.Errorf("reconfig: detector started twice")
	}
	if until <= from {
		return fmt.Errorf("reconfig: detector window [%v,%v) is empty", from, until)
	}
	cfg = cfg.withDefaults()
	d := &detector{cfg: cfg, monitors: make(map[string]*hostMonitor)}
	for name, twinName := range twins {
		h := m.hostByName(name)
		if h == nil {
			return fmt.Errorf("reconfig: detector: unknown host %q", name)
		}
		tw := m.hostByName(twinName)
		if tw == nil {
			return fmt.Errorf("reconfig: detector: unknown twin %q for host %q", twinName, name)
		}
		for _, c := range h.Containers() {
			if tw.ContainerByIP(c.IP) == nil {
				return fmt.Errorf("reconfig: detector: twin %q has no standby for container %v", twinName, c.IP)
			}
		}
		mon := &hostMonitor{host: h, twin: tw, beatAt: from}
		d.monitors[name] = mon
		d.order = append(d.order, name)
		h.M.OnTick(func(now sim.Time) {
			if !mon.host.Crashed() {
				mon.beatAt = now
			}
		})
	}
	sort.Strings(d.order)
	m.det = d
	for t := from + cfg.Period; t <= until; t += cfg.Period {
		m.Net.E.At(t, m.detectorScan)
	}
	return nil
}

// detectorScan is one coordinator-time sweep over every monitor, in
// sorted host order. It reads heartbeat ages, applies the hysteresis,
// and fires fail-over / rejoin transitions. Like the core-health scan,
// it draws no randomness and schedules nothing on a healthy pass.
func (m *Manager) detectorScan() {
	d := m.det
	now := m.Net.E.Now()
	for _, name := range d.order {
		mon := d.monitors[name]
		if now-mon.beatAt > d.cfg.Timeout {
			mon.wellStreak = 0
			mon.sickStreak++
			if !mon.dead && mon.sickStreak >= d.cfg.SickAfter {
				mon.dead = true
				m.failover(mon, now)
			}
			continue
		}
		mon.sickStreak = 0
		mon.wellStreak++
		if mon.dead && mon.wellStreak >= d.cfg.WellAfter {
			mon.dead = false
			m.rejoin(mon, now)
		}
	}
}

// failover is the failure-driven generation bump: the detector declared
// mon's host dead. Every survivor's cached route to the corpse is
// purged immediately (flow cache + negative cache), then the host's
// containers remap onto the twin's standbys through the same
// delete/transit/land sequence a scheduled drain uses, and the quiesce
// ladder detaches the dead LP once nothing is left in flight toward it.
func (m *Manager) failover(mon *hostMonitor, t sim.Time) {
	h := mon.host
	a := Action{
		Kind:      KindFailover,
		AtMs:      int(t / sim.Millisecond),
		Host:      h.Name,
		To:        mon.twin.Name,
		TransitUs: m.det.cfg.TransitUs,
	}
	rec := &GenRecord{
		Gen:        m.Net.BumpGeneration(),
		Action:     a,
		Applied:    t,
		Drops:      m.Snapshot(),
		QuiescedAt: -1,
	}
	ips := make([]proto.IPv4Addr, 0, len(h.Containers()))
	for _, c := range h.Containers() {
		ips = append(ips, c.IP)
	}
	for _, p := range m.Net.Hosts() {
		if p != h {
			p.PurgeDeadHost(h.IP, ips)
		}
	}
	m.beginDrain(a, h, rec)
	m.records = append(m.records, rec)
	if m.OnGeneration != nil {
		m.OnGeneration(rec)
	}
}

// rejoin re-admits a rebooted host: a generation bump records the
// recovery and cancels any fail-over quiesce ladder still running. The
// host's ticker was restarted by the reboot itself (that is where the
// fresh heartbeats came from); its containers stay on the twins.
func (m *Manager) rejoin(mon *hostMonitor, t sim.Time) {
	h := mon.host
	rec := &GenRecord{
		Gen:        m.Net.BumpGeneration(),
		Action:     Action{Kind: KindRejoin, AtMs: int(t / sim.Millisecond), Host: h.Name},
		Applied:    t,
		Drops:      m.Snapshot(),
		QuiescedAt: -1,
		Reattached: true,
	}
	delete(m.draining, h.Name)
	m.records = append(m.records, rec)
	if m.OnGeneration != nil {
		m.OnGeneration(rec)
	}
}
