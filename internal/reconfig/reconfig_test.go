package reconfig_test

import (
	"testing"

	falconcore "falcon/internal/core"
	"falcon/internal/devices"
	"falcon/internal/reconfig"
	"falcon/internal/sim"
	"falcon/internal/workload"
)

func boolp(v bool) *bool { return &v }

func TestScheduleValidate(t *testing.T) {
	ok := func(acts ...reconfig.Action) *reconfig.Schedule { return &reconfig.Schedule{Actions: acts} }
	valid := []*reconfig.Schedule{
		ok(),
		ok(reconfig.Action{Kind: reconfig.KindKernelUpgrade, AtMs: 0, Host: "server", Kernel: "linux-5.4"}),
		ok(reconfig.Action{Kind: reconfig.KindDrain, AtMs: 1, Host: "server", To: "spare", TransitUs: 200},
			reconfig.Action{Kind: reconfig.KindAdd, AtMs: 3, Host: "server"}),
		ok(reconfig.Action{Kind: reconfig.KindRPSFlip, AtMs: 2, Host: "server", Enable: boolp(false)},
			reconfig.Action{Kind: reconfig.KindRPSFlip, AtMs: 2, Host: "server", Enable: boolp(true)}),
	}
	for i, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("valid schedule %d rejected: %v", i, err)
		}
	}

	invalid := map[string]*reconfig.Schedule{
		"negative-at": ok(reconfig.Action{Kind: reconfig.KindKernelUpgrade, AtMs: -1, Host: "h", Kernel: "5.4"}),
		"time-disordered": ok(
			reconfig.Action{Kind: reconfig.KindKernelUpgrade, AtMs: 3, Host: "h", Kernel: "5.4"},
			reconfig.Action{Kind: reconfig.KindKernelUpgrade, AtMs: 1, Host: "h", Kernel: "5.4"}),
		"missing-host":          ok(reconfig.Action{Kind: reconfig.KindKernelUpgrade, AtMs: 0, Kernel: "5.4"}),
		"upgrade-sans-kernel":   ok(reconfig.Action{Kind: reconfig.KindKernelUpgrade, AtMs: 0, Host: "h"}),
		"flip-sans-enable":      ok(reconfig.Action{Kind: reconfig.KindRPSFlip, AtMs: 0, Host: "h"}),
		"steer-sans-enable":     ok(reconfig.Action{Kind: reconfig.KindSteerFlip, AtMs: 0, Host: "h"}),
		"drain-sans-target":     ok(reconfig.Action{Kind: reconfig.KindDrain, AtMs: 0, Host: "h"}),
		"drain-onto-self":       ok(reconfig.Action{Kind: reconfig.KindDrain, AtMs: 0, Host: "h", To: "h"}),
		"drain-negative-transit": ok(reconfig.Action{Kind: reconfig.KindDrain, AtMs: 0, Host: "h", To: "s", TransitUs: -1}),
		"double-drain": ok(
			reconfig.Action{Kind: reconfig.KindDrain, AtMs: 0, Host: "h", To: "s"},
			reconfig.Action{Kind: reconfig.KindDrain, AtMs: 1, Host: "h", To: "s"}),
		"add-sans-drain": ok(reconfig.Action{Kind: reconfig.KindAdd, AtMs: 0, Host: "h"}),
		"unknown-kind":   ok(reconfig.Action{Kind: "reboot", AtMs: 0, Host: "h"}),
	}
	for name, s := range invalid {
		if s.Validate() == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestFromJSONRejectsGarbage(t *testing.T) {
	if _, err := reconfig.FromJSON([]byte("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := reconfig.FromJSON([]byte(`{"actions":[{"kind":"warp","at_ms":0,"host":"h"}]}`)); err == nil {
		t.Fatal("unknown kind accepted via JSON")
	}
	s, err := reconfig.FromJSON([]byte(`{"actions":[{"kind":"drain","at_ms":1,"host":"server","to":"spare","transit_us":200},{"kind":"add","at_ms":2,"host":"server"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Actions) != 2 || s.Actions[0].Kind != reconfig.KindDrain {
		t.Fatalf("parsed schedule mangled: %+v", s)
	}
}

// newDrainTestbed is the three-host bed the manager tests drive: one
// fixed-rate overlay UDP flow, Falcon attached to the server, drain at
// 1 ms, add at 4 ms.
func newDrainTestbed(t *testing.T) (*workload.Testbed, *reconfig.Manager, *workload.UDPFlow) {
	t.Helper()
	tb := workload.NewTestbed(workload.TestbedConfig{
		LinkRate: 100 * devices.Gbps, Cores: 12, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1},
		GRO: true, InnerGRO: true, Seed: 1, Spare: true,
	})
	tb.EnableFalconOnServer(falconcore.DefaultConfig([]int{3, 4, 5}))
	sched := &reconfig.Schedule{Actions: []reconfig.Action{
		{Kind: reconfig.KindDrain, AtMs: 1, Host: "server", To: "spare", TransitUs: 200},
		{Kind: reconfig.KindAdd, AtMs: 4, Host: "server"},
	}}
	mgr := reconfig.New(tb.Net, sched)
	if err := mgr.Arm(0); err != nil {
		t.Fatal(err)
	}
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 64, 2, 2, 1)
	return tb, mgr, f
}

// TestDrainQuiescesAndDetaches drives a drain under live traffic and
// asserts the full drain protocol: every generation recorded, the
// drained host's datapath quiesced within the ladder, its LP detached,
// and the add reattached it.
func TestDrainQuiescesAndDetaches(t *testing.T) {
	tb, mgr, f := newDrainTestbed(t)
	spareSock := tb.Spare.OpenUDP(tb.ServerCtrs[0].IP, 5001, 2)
	f.SendAtRate(100_000, 6*sim.Millisecond)
	tb.Run(8 * sim.Millisecond)

	recs := mgr.Records()
	if len(recs) != 2 {
		t.Fatalf("%d generation records, want 2", len(recs))
	}
	drain, add := recs[0], recs[1]
	if drain.Gen != 1 || add.Gen != 2 {
		t.Fatalf("generation numbering: drain=%d add=%d", drain.Gen, add.Gen)
	}
	if !drain.Detached {
		t.Fatal("drained host never detached")
	}
	if drain.QuiescedAt < drain.Applied {
		t.Fatalf("quiesce time %v before drain applied at %v", drain.QuiescedAt, drain.Applied)
	}
	if budget := drain.Applied + 200*100*sim.Microsecond; drain.QuiescedAt > budget {
		t.Fatalf("quiesce at %v exceeds the ladder budget %v", drain.QuiescedAt, budget)
	}
	if !add.Reattached {
		t.Fatal("add did not reattach the host")
	}
	if spareSock.Delivered.Value() == 0 {
		t.Fatal("no packets delivered on the spare twin after the drain")
	}

	// Conservation across the swaps: every send is delivered on one of
	// the two sockets, counted in a drop bucket, or still in the TX path.
	snap := mgr.Snapshot()
	delivered := f.Sock.Delivered.Value() + spareSock.Delivered.Value()
	sockDrops := f.Sock.SocketDrops.Value() + spareSock.SocketDrops.Value()
	unaccounted := int64(f.Sent()) - int64(delivered) - int64(sockDrops) -
		int64(snap.Total()) - int64(tb.Client.TxPending())
	if unaccounted != 0 {
		t.Fatalf("%d packets unaccounted across the drain/add (sent=%d delivered=%d drops=%d)",
			unaccounted, f.Sent(), delivered, snap.Total())
	}
}

// TestHealthStableThroughDrain: the draining host's Falcon health
// tracker must not flap — going idle during a drain (no traffic, then
// no ticks at all) is not sickness, so the healthy set stays at the
// full FALCON_CPU set through drain, detach, and re-add.
func TestHealthStableThroughDrain(t *testing.T) {
	tb, mgr, f := newDrainTestbed(t)
	tb.Spare.OpenUDP(tb.ServerCtrs[0].IP, 5001, 2)
	f.SendAtRate(100_000, 6*sim.Millisecond)

	const cpus = 3
	bad := 0
	for i := 0; i < 16; i++ {
		at := sim.Time(i) * 500 * sim.Microsecond
		tb.E.At(at, func() {
			if got := len(tb.Server.Falcon.HealthyCPUs()); got != cpus {
				bad++
				t.Errorf("at %v: healthy set has %d cpus, want %d", at, got, cpus)
			}
		})
	}
	tb.Run(8 * sim.Millisecond)
	if got := len(tb.Server.Falcon.HealthyCPUs()); got != cpus {
		t.Fatalf("final healthy set has %d cpus, want %d", got, cpus)
	}
	if recs := mgr.Records(); !recs[0].Detached {
		t.Fatal("drain never detached (health samples would be vacuous)")
	}
	_ = bad
}
