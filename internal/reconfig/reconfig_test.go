package reconfig_test

import (
	"testing"

	falconcore "falcon/internal/core"
	"falcon/internal/devices"
	"falcon/internal/faults"
	"falcon/internal/reconfig"
	"falcon/internal/sim"
	"falcon/internal/socket"
	"falcon/internal/workload"
)

func boolp(v bool) *bool { return &v }

func TestScheduleValidate(t *testing.T) {
	ok := func(acts ...reconfig.Action) *reconfig.Schedule { return &reconfig.Schedule{Actions: acts} }
	valid := []*reconfig.Schedule{
		ok(),
		ok(reconfig.Action{Kind: reconfig.KindKernelUpgrade, AtMs: 0, Host: "server", Kernel: "linux-5.4"}),
		ok(reconfig.Action{Kind: reconfig.KindDrain, AtMs: 1, Host: "server", To: "spare", TransitUs: 200},
			reconfig.Action{Kind: reconfig.KindAdd, AtMs: 3, Host: "server"}),
		ok(reconfig.Action{Kind: reconfig.KindRPSFlip, AtMs: 2, Host: "server", Enable: boolp(false)},
			reconfig.Action{Kind: reconfig.KindRPSFlip, AtMs: 2, Host: "server", Enable: boolp(true)}),
	}
	for i, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("valid schedule %d rejected: %v", i, err)
		}
	}

	invalid := map[string]*reconfig.Schedule{
		"negative-at": ok(reconfig.Action{Kind: reconfig.KindKernelUpgrade, AtMs: -1, Host: "h", Kernel: "5.4"}),
		"time-disordered": ok(
			reconfig.Action{Kind: reconfig.KindKernelUpgrade, AtMs: 3, Host: "h", Kernel: "5.4"},
			reconfig.Action{Kind: reconfig.KindKernelUpgrade, AtMs: 1, Host: "h", Kernel: "5.4"}),
		"missing-host":           ok(reconfig.Action{Kind: reconfig.KindKernelUpgrade, AtMs: 0, Kernel: "5.4"}),
		"upgrade-sans-kernel":    ok(reconfig.Action{Kind: reconfig.KindKernelUpgrade, AtMs: 0, Host: "h"}),
		"flip-sans-enable":       ok(reconfig.Action{Kind: reconfig.KindRPSFlip, AtMs: 0, Host: "h"}),
		"steer-sans-enable":      ok(reconfig.Action{Kind: reconfig.KindSteerFlip, AtMs: 0, Host: "h"}),
		"drain-sans-target":      ok(reconfig.Action{Kind: reconfig.KindDrain, AtMs: 0, Host: "h"}),
		"drain-onto-self":        ok(reconfig.Action{Kind: reconfig.KindDrain, AtMs: 0, Host: "h", To: "h"}),
		"drain-negative-transit": ok(reconfig.Action{Kind: reconfig.KindDrain, AtMs: 0, Host: "h", To: "s", TransitUs: -1}),
		"double-drain": ok(
			reconfig.Action{Kind: reconfig.KindDrain, AtMs: 0, Host: "h", To: "s"},
			reconfig.Action{Kind: reconfig.KindDrain, AtMs: 1, Host: "h", To: "s"}),
		"add-sans-drain": ok(reconfig.Action{Kind: reconfig.KindAdd, AtMs: 0, Host: "h"}),
		"unknown-kind":   ok(reconfig.Action{Kind: "reboot", AtMs: 0, Host: "h"}),
	}
	for name, s := range invalid {
		if s.Validate() == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestFromJSONRejectsGarbage(t *testing.T) {
	if _, err := reconfig.FromJSON([]byte("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := reconfig.FromJSON([]byte(`{"actions":[{"kind":"warp","at_ms":0,"host":"h"}]}`)); err == nil {
		t.Fatal("unknown kind accepted via JSON")
	}
	s, err := reconfig.FromJSON([]byte(`{"actions":[{"kind":"drain","at_ms":1,"host":"server","to":"spare","transit_us":200},{"kind":"add","at_ms":2,"host":"server"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Actions) != 2 || s.Actions[0].Kind != reconfig.KindDrain {
		t.Fatalf("parsed schedule mangled: %+v", s)
	}
}

// newDrainTestbed is the three-host bed the manager tests drive: one
// fixed-rate overlay UDP flow, Falcon attached to the server, drain at
// 1 ms, add at 4 ms.
func newDrainTestbed(t *testing.T) (*workload.Testbed, *reconfig.Manager, *workload.UDPFlow) {
	t.Helper()
	tb := workload.NewTestbed(workload.TestbedConfig{
		LinkRate: 100 * devices.Gbps, Cores: 12, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1},
		GRO: true, InnerGRO: true, Seed: 1, Spare: true,
	})
	tb.EnableFalconOnServer(falconcore.DefaultConfig([]int{3, 4, 5}))
	sched := &reconfig.Schedule{Actions: []reconfig.Action{
		{Kind: reconfig.KindDrain, AtMs: 1, Host: "server", To: "spare", TransitUs: 200},
		{Kind: reconfig.KindAdd, AtMs: 4, Host: "server"},
	}}
	mgr := reconfig.New(tb.Net, sched)
	if err := mgr.Arm(0); err != nil {
		t.Fatal(err)
	}
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 64, 2, 2, 1)
	return tb, mgr, f
}

// TestDrainQuiescesAndDetaches drives a drain under live traffic and
// asserts the full drain protocol: every generation recorded, the
// drained host's datapath quiesced within the ladder, its LP detached,
// and the add reattached it.
func TestDrainQuiescesAndDetaches(t *testing.T) {
	tb, mgr, f := newDrainTestbed(t)
	spareSock := tb.Spare.OpenUDP(tb.ServerCtrs[0].IP, 5001, 2)
	f.SendAtRate(100_000, 6*sim.Millisecond)
	tb.Run(8 * sim.Millisecond)

	recs := mgr.Records()
	if len(recs) != 2 {
		t.Fatalf("%d generation records, want 2", len(recs))
	}
	drain, add := recs[0], recs[1]
	if drain.Gen != 1 || add.Gen != 2 {
		t.Fatalf("generation numbering: drain=%d add=%d", drain.Gen, add.Gen)
	}
	if !drain.Detached {
		t.Fatal("drained host never detached")
	}
	if drain.QuiescedAt < drain.Applied {
		t.Fatalf("quiesce time %v before drain applied at %v", drain.QuiescedAt, drain.Applied)
	}
	if budget := drain.Applied + 200*100*sim.Microsecond; drain.QuiescedAt > budget {
		t.Fatalf("quiesce at %v exceeds the ladder budget %v", drain.QuiescedAt, budget)
	}
	if !add.Reattached {
		t.Fatal("add did not reattach the host")
	}
	if spareSock.Delivered.Value() == 0 {
		t.Fatal("no packets delivered on the spare twin after the drain")
	}

	// Conservation across the swaps: every send is delivered on one of
	// the two sockets, counted in a drop bucket, or still in the TX path.
	snap := mgr.Snapshot()
	delivered := f.Sock.Delivered.Value() + spareSock.Delivered.Value()
	sockDrops := f.Sock.SocketDrops.Value() + spareSock.SocketDrops.Value()
	unaccounted := int64(f.Sent()) - int64(delivered) - int64(sockDrops) -
		int64(snap.Total()) - int64(tb.Client.TxPending())
	if unaccounted != 0 {
		t.Fatalf("%d packets unaccounted across the drain/add (sent=%d delivered=%d drops=%d)",
			unaccounted, f.Sent(), delivered, snap.Total())
	}
}

func TestCrashScheduleValidate(t *testing.T) {
	valid := []*reconfig.CrashSchedule{
		{Crashes: []reconfig.CrashEvent{{Host: "server", AtMs: 1}}},
		{Crashes: []reconfig.CrashEvent{{Host: "server", AtMs: 1, RebootMs: 4}}},
		{Crashes: []reconfig.CrashEvent{
			{Host: "server", AtMs: 1, RebootMs: 4},
			{Host: "client", AtMs: 2}}},
		{Partitions: []reconfig.PartitionEvent{{Host: "client", AtMs: 0, HealMs: 3}}},
	}
	for i, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("valid crash schedule %d rejected: %v", i, err)
		}
	}
	invalid := map[string]*reconfig.CrashSchedule{
		"empty":          {},
		"missing-host":   {Crashes: []reconfig.CrashEvent{{AtMs: 1}}},
		"negative-at":    {Crashes: []reconfig.CrashEvent{{Host: "h", AtMs: -1}}},
		"reboot-before":  {Crashes: []reconfig.CrashEvent{{Host: "h", AtMs: 3, RebootMs: 2}}},
		"reboot-equal":   {Crashes: []reconfig.CrashEvent{{Host: "h", AtMs: 3, RebootMs: 3}}},
		"double-crash":   {Crashes: []reconfig.CrashEvent{{Host: "h", AtMs: 1}, {Host: "h", AtMs: 2}}},
		"disordered":     {Crashes: []reconfig.CrashEvent{{Host: "a", AtMs: 3}, {Host: "b", AtMs: 1}}},
		"part-no-host":   {Partitions: []reconfig.PartitionEvent{{AtMs: 1}}},
		"heal-before-at": {Partitions: []reconfig.PartitionEvent{{Host: "h", AtMs: 3, HealMs: 1}}},
	}
	for name, s := range invalid {
		if s.Validate() == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := reconfig.CrashFromJSON([]byte("{")); err == nil {
		t.Fatal("malformed crash JSON accepted")
	}
	s, err := reconfig.CrashFromJSON([]byte(`{"crashes":[{"host":"server","at_ms":2,"reboot_ms":6}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Crashes) != 1 || s.Crashes[0].RebootMs != 6 {
		t.Fatalf("parsed crash schedule mangled: %+v", s)
	}
}

// newCrashTestbed builds the three-host bed with the failure detector
// armed (server → spare twins) and a server crash window [1.5ms, 8ms).
func newCrashTestbed(t *testing.T, shards int) (*workload.Testbed, *reconfig.Manager, *workload.UDPFlow, sim.Time) {
	t.Helper()
	tb := workload.NewTestbed(workload.TestbedConfig{
		LinkRate: 100 * devices.Gbps, Cores: 12, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1},
		GRO: true, InnerGRO: true, Seed: 1, Spare: true, Shards: shards,
	})
	mgr := reconfig.New(tb.Net, &reconfig.Schedule{})
	if err := mgr.StartDetector(reconfig.DetectorConfig{TransitUs: 200},
		map[string]string{"server": "spare"}, 0, 16*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	crashAt := 1500 * sim.Microsecond
	faults.NewInjector(tb.E).Install(faults.Single(
		crashAt, 8*sim.Millisecond-crashAt, &faults.HostCrash{Host: tb.Server}))
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 64, 2, 2, 1)
	return tb, mgr, f, crashAt
}

// crashTimeline runs a crash bed to completion and reduces it to the
// values the invariance test compares byte-for-byte.
type crashTimeline struct {
	kinds     []string
	applied   []sim.Time
	delivered uint64
	crashed   uint64
}

func runCrashBed(t *testing.T, shards int) (*workload.Testbed, *reconfig.Manager, *workload.UDPFlow, *socket.Socket, sim.Time, crashTimeline) {
	t.Helper()
	tb, mgr, f, crashAt := newCrashTestbed(t, shards)
	spareSock := tb.Spare.OpenUDP(tb.ServerCtrs[0].IP, 5001, 2)
	f.SendAtRate(100_000, 14*sim.Millisecond)
	tb.Run(16 * sim.Millisecond)
	tl := crashTimeline{
		delivered: f.Sock.Delivered.Value() + spareSock.Delivered.Value(),
		crashed:   mgr.Snapshot().Crash,
	}
	for _, rec := range mgr.Records() {
		tl.kinds = append(tl.kinds, rec.Action.Kind)
		tl.applied = append(tl.applied, rec.Applied)
	}
	return tb, mgr, f, spareSock, crashAt, tl
}

// TestDetectorFailoverAndRejoin drives the full crash–recover fault
// domain: heartbeats stop, the detector declares death within its
// bound, containers remap onto the spare's standby twin, the corpse's
// LP detaches, the reboot is re-admitted — and not one packet goes
// unaccounted.
func TestDetectorFailoverAndRejoin(t *testing.T) {
	tb, mgr, f, spareSock, crashAt, tl := runCrashBed(t, 0)

	recs := mgr.Records()
	if len(recs) != 2 {
		t.Fatalf("%d generation records, want 2 (fail-over + rejoin): %v", len(recs), tl.kinds)
	}
	fo, rj := recs[0], recs[1]
	if fo.Action.Kind != reconfig.KindFailover || fo.Action.To != "spare" {
		t.Fatalf("first record is %+v, want fail-over onto spare", fo.Action)
	}
	// Detection bound: timeout (2ms) + SickAfter scans (2 x 0.5ms) +
	// heartbeat age at death (< one 1ms tick).
	if lat := fo.Applied - crashAt; lat > 4*sim.Millisecond {
		t.Fatalf("detection latency %v exceeds the detector bound", lat)
	}
	if !fo.Detached {
		t.Fatal("the corpse's LP never detached")
	}
	if fo.QuiescedAt < fo.Applied {
		t.Fatalf("quiesce at %v before fail-over at %v", fo.QuiescedAt, fo.Applied)
	}
	if rj.Action.Kind != reconfig.KindRejoin || !rj.Reattached {
		t.Fatalf("second record is %+v, want rejoin", rj.Action)
	}
	if rj.Applied < 8*sim.Millisecond {
		t.Fatalf("rejoin at %v precedes the reboot", rj.Applied)
	}

	// Delivery moved to the twin and the crash destroyed real packets —
	// all of them accounted.
	if spareSock.Delivered.Value() == 0 {
		t.Fatal("no packets delivered on the spare twin after fail-over")
	}
	snap := mgr.Snapshot()
	if snap.Crash == 0 {
		t.Fatal("crash drop bucket empty — the blackout destroyed nothing?")
	}
	delivered := f.Sock.Delivered.Value() + spareSock.Delivered.Value()
	sockDrops := f.Sock.SocketDrops.Value() + spareSock.SocketDrops.Value()
	unaccounted := int64(f.Sent()) - int64(delivered) - int64(sockDrops) -
		int64(snap.Total()) - int64(tb.Client.TxPending())
	if unaccounted != 0 {
		t.Fatalf("%d packets unaccounted across crash+reboot (sent=%d delivered=%d crash=%d)",
			unaccounted, f.Sent(), delivered, snap.Crash)
	}
}

// TestCrashFailoverShardInvariance: the crash, the detector's scans and
// the fail-over/rejoin generations are coordinator events with fixed
// schedules, so the sharded cluster must produce the exact serial
// timeline — same record kinds, same application times, same delivery
// and crash-drop counts.
func TestCrashFailoverShardInvariance(t *testing.T) {
	_, _, _, _, _, serial := runCrashBed(t, 0)
	_, _, _, _, _, sharded := runCrashBed(t, 4)
	if len(serial.kinds) != len(sharded.kinds) {
		t.Fatalf("record counts differ: serial %v, sharded %v", serial.kinds, sharded.kinds)
	}
	for i := range serial.kinds {
		if serial.kinds[i] != sharded.kinds[i] || serial.applied[i] != sharded.applied[i] {
			t.Fatalf("record %d differs: serial %s@%v, sharded %s@%v", i,
				serial.kinds[i], serial.applied[i], sharded.kinds[i], sharded.applied[i])
		}
	}
	if serial.delivered != sharded.delivered {
		t.Fatalf("delivered differs: serial %d, sharded %d", serial.delivered, sharded.delivered)
	}
	if serial.crashed != sharded.crashed {
		t.Fatalf("crash drops differ: serial %d, sharded %d", serial.crashed, sharded.crashed)
	}
}

// TestHealthStableThroughDrain: the draining host's Falcon health
// tracker must not flap — going idle during a drain (no traffic, then
// no ticks at all) is not sickness, so the healthy set stays at the
// full FALCON_CPU set through drain, detach, and re-add.
func TestHealthStableThroughDrain(t *testing.T) {
	tb, mgr, f := newDrainTestbed(t)
	tb.Spare.OpenUDP(tb.ServerCtrs[0].IP, 5001, 2)
	f.SendAtRate(100_000, 6*sim.Millisecond)

	const cpus = 3
	bad := 0
	for i := 0; i < 16; i++ {
		at := sim.Time(i) * 500 * sim.Microsecond
		tb.E.At(at, func() {
			if got := len(tb.Server.Falcon.HealthyCPUs()); got != cpus {
				bad++
				t.Errorf("at %v: healthy set has %d cpus, want %d", at, got, cpus)
			}
		})
	}
	tb.Run(8 * sim.Millisecond)
	if got := len(tb.Server.Falcon.HealthyCPUs()); got != cpus {
		t.Fatalf("final healthy set has %d cpus, want %d", got, cpus)
	}
	if recs := mgr.Records(); !recs[0].Detached {
		t.Fatal("drain never detached (health samples would be vacuous)")
	}
	_ = bad
}
