package reconfig

import "falcon/internal/sim"

// recoverFrac is the fraction of baseline per-bucket throughput a bucket
// must reach to count as recovered (same threshold the chaos experiments
// use for time-to-recovery).
const recoverFrac = 0.8

// Convergence is the SLO readout for one generation: how long delivery
// blacked out, how many packets dropped in the transition window, and
// how long until throughput returned to steady state.
type Convergence struct {
	Gen  uint64
	Kind string
	// AtMs is the generation's effective time in window-relative ms.
	AtMs int
	// BlackoutMs is the longest run of consecutive zero-delivery
	// millisecond buckets in this generation's window.
	BlackoutMs int
	// LossPkts is the drop-census delta across the generation's window
	// (this boundary to the next), bucketed in Drops.
	LossPkts uint64
	Drops    DropSnapshot
	// RecoverMs is the time from the effective instant to the first
	// bucket at ≥80% of pre-reconfig throughput (-1: never recovered
	// inside the window).
	RecoverMs int
}

// Analyze derives per-generation convergence SLOs from cumulative
// delivery samples. samples[i] is total packets delivered by time
// base + i*1ms (so bucket i, the delta samples[i+1]-samples[i], is the
// throughput of millisecond i); recs are the manager's records with
// effective times ≥ base; final is the drop census at the end of the
// run.
//
// ref, when non-nil, is the same sampling from a no-reconfig run of the
// identical bed and seed: recovery compares each bucket against the
// reference's SAME bucket, so sender-side Poisson noise (identical in
// both runs) cancels and only datapath divergence counts. Without a
// reference the baseline is the mean bucket before the first
// generation's effective time.
func Analyze(samples, ref []uint64, recs []*GenRecord, base sim.Time, final DropSnapshot) []Convergence {
	nb := len(samples) - 1
	if nb <= 0 || len(recs) == 0 {
		return nil
	}
	bucket := func(i int) uint64 { return samples[i+1] - samples[i] }
	refBucket := func(i int) float64 {
		if ref != nil && len(ref) == len(samples) {
			return float64(ref[i+1] - ref[i])
		}
		return -1
	}
	evMs := func(r *GenRecord) int {
		ms := int((r.Applied - base) / sim.Millisecond)
		if ms < 0 {
			ms = 0
		}
		if ms > nb {
			ms = nb
		}
		return ms
	}

	baseline := 0.0
	if first := evMs(recs[0]); first > 0 {
		var sum uint64
		for i := 0; i < first; i++ {
			sum += bucket(i)
		}
		baseline = float64(sum) / float64(first)
	}

	out := make([]Convergence, 0, len(recs))
	for i, r := range recs {
		start := evMs(r)
		end := nb
		var nextSnap DropSnapshot
		if i+1 < len(recs) {
			end = evMs(recs[i+1])
			nextSnap = recs[i+1].Drops
		} else {
			nextSnap = final
		}
		delta := nextSnap.Sub(r.Drops)
		c := Convergence{
			Gen: r.Gen, Kind: r.Action.Kind, AtMs: r.Action.AtMs,
			LossPkts: delta.Total(), Drops: delta, RecoverMs: -1,
		}
		run := 0
		for b := start; b < end; b++ {
			// A zero bucket only counts as blackout when delivery was
			// expected there (the reference delivered, or no reference).
			if bucket(b) == 0 && refBucket(b) != 0 {
				run++
				if run > c.BlackoutMs {
					c.BlackoutMs = run
				}
			} else {
				run = 0
			}
			want := recoverFrac * baseline
			if r := refBucket(b); r >= 0 {
				want = recoverFrac * r
			}
			if c.RecoverMs < 0 && float64(bucket(b)) >= want {
				c.RecoverMs = b - start
			}
		}
		out = append(out, c)
	}
	return out
}
