// Package reconfig implements generation-based hot reconfiguration of a
// running overlay network: immutable configuration generations covering
// topology membership (host drain/add with container remap), steering
// policy (Falcon/RPS flips), and cost profile (kernel upgrades), applied
// at deterministic effective sim-times from a declarative schedule.
//
// Swaps are RCU-style: a generation bump invalidates every TX flow-cache
// entry, so new transmissions resolve against the new configuration,
// while packets already inside the datapath finish on the state they
// were built with — the audit ledger accounts every one of them, so no
// transition loses a packet silently. All control events run through the
// simulation's coordinator-time API (Sim.At/After), which on a sharded
// cluster executes at barriers with every logical process parked; the
// same schedule therefore produces byte-identical runs at -shards 1 and
// -shards N.
package reconfig

import (
	"encoding/json"
	"fmt"
	"os"
)

// Action kinds.
const (
	// KindKernelUpgrade swaps a host's cost profile (the Kernel field
	// names it, e.g. "linux-5.4") — a rolling kernel upgrade.
	KindKernelUpgrade = "kernel-upgrade"
	// KindSteerFlip enables (Enable=true) or disables Falcon steering on
	// a host. The host must have Falcon attached when the schedule is
	// armed; disable detaches it from the receive path, enable restores
	// the same instance (its tick subscription persists either way).
	KindSteerFlip = "steer-flip"
	// KindRPSFlip toggles the host's rps_cpus mask on or off.
	KindRPSFlip = "rps-flip"
	// KindDrain removes a host from service: its containers' KV mappings
	// are deleted at the effective time and re-published on the To
	// host's standby twins TransitUs later; a quiesce ladder then waits
	// for the datapath to empty before detaching the host's LP (timer
	// ticker stopped).
	KindDrain = "drain"
	// KindAdd reverses a drain: the host's ticker restarts and it
	// rejoins the cluster. Container mappings stay wherever the drain
	// put them (rebalancing back is a second drain the other way).
	KindAdd = "add"

	// KindFailover and KindRejoin are failure-driven generations: the
	// Manager's failure detector emits them when heartbeats stop
	// (containers remap onto standby twins) and when a rebooted host
	// beats again. They appear in GenRecords but are NOT valid in a
	// declarative Schedule — failures are detected, never scheduled
	// (Validate rejects them as unknown kinds).
	KindFailover = "fail-over"
	KindRejoin   = "rejoin"
)

// Action is one scheduled reconfiguration step. Effective times are
// relative to the base time the schedule is armed with (experiments use
// their warmup end), in whole milliseconds.
type Action struct {
	Kind string `json:"kind"`
	AtMs int    `json:"at_ms"`
	// Host names the target host.
	Host string `json:"host"`
	// To names the host receiving the drained containers (drain only).
	To string `json:"to,omitempty"`
	// Kernel is the cost profile to swap to (kernel-upgrade only).
	Kernel string `json:"kernel,omitempty"`
	// Enable is the flip direction (steer-flip/rps-flip only).
	Enable *bool `json:"enable,omitempty"`
	// TransitUs is the container migration gap for a drain: the window
	// between the old mapping's deletion and the new one's publication,
	// during which senders see definitive KV misses (the measurable
	// blackout).
	TransitUs int `json:"transit_us,omitempty"`
}

// Schedule is an ordered list of reconfiguration actions.
type Schedule struct {
	Actions []Action `json:"actions"`
}

// Validate checks structural well-formedness: known kinds, required
// per-kind fields, non-decreasing effective times, and add-follows-drain
// pairing. Host-name resolution happens when a Manager arms the
// schedule against a concrete network.
func (s *Schedule) Validate() error {
	lastAt := 0
	draining := map[string]bool{}
	for i, a := range s.Actions {
		if a.AtMs < 0 {
			return fmt.Errorf("reconfig: action %d: negative at_ms %d", i, a.AtMs)
		}
		if a.AtMs < lastAt {
			return fmt.Errorf("reconfig: action %d: at_ms %d before previous %d (schedule must be time-ordered)", i, a.AtMs, lastAt)
		}
		lastAt = a.AtMs
		if a.Host == "" {
			return fmt.Errorf("reconfig: action %d (%s): missing host", i, a.Kind)
		}
		switch a.Kind {
		case KindKernelUpgrade:
			if a.Kernel == "" {
				return fmt.Errorf("reconfig: action %d: kernel-upgrade without kernel", i)
			}
		case KindSteerFlip, KindRPSFlip:
			if a.Enable == nil {
				return fmt.Errorf("reconfig: action %d: %s without enable", i, a.Kind)
			}
		case KindDrain:
			if a.To == "" || a.To == a.Host {
				return fmt.Errorf("reconfig: action %d: drain of %q needs a distinct to-host", i, a.Host)
			}
			if a.TransitUs < 0 {
				return fmt.Errorf("reconfig: action %d: negative transit_us", i)
			}
			if draining[a.Host] {
				return fmt.Errorf("reconfig: action %d: host %q drained twice without add", i, a.Host)
			}
			draining[a.Host] = true
		case KindAdd:
			if !draining[a.Host] {
				return fmt.Errorf("reconfig: action %d: add of %q without a preceding drain", i, a.Host)
			}
			delete(draining, a.Host)
		default:
			return fmt.Errorf("reconfig: action %d: unknown kind %q", i, a.Kind)
		}
	}
	return nil
}

// FromJSON parses a schedule and validates it.
func FromJSON(data []byte) (*Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("reconfig: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads a schedule from a JSON file (the -reconfig flag).
func LoadFile(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reconfig: %w", err)
	}
	return FromJSON(data)
}
