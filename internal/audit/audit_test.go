package audit

import (
	"strings"
	"testing"

	"falcon/internal/sim"
	"falcon/internal/skb"
)

// collector builds an auditor in collect mode over a fresh engine and
// returns both plus the violation slice (filled as they happen).
func collector(t *testing.T, cfg Config) (*sim.Engine, *Auditor, *[]Violation) {
	t.Helper()
	e := sim.New(1)
	var got []Violation
	cfg.OnViolation = func(v *Violation) { got = append(got, *v) }
	a := New(e, cfg)
	a.Start()
	return e, a, &got
}

func kinds(vs []Violation) []string {
	out := make([]string, len(vs))
	for i := range vs {
		out[i] = vs[i].Kind
	}
	return out
}

func TestLeakDetectedAtFinal(t *testing.T) {
	e, a, got := collector(t, Config{})
	s := skb.NewTx(64, 0)
	s.Audit(a, "test:leak-site")
	s.Stage("test:limbo")
	e.RunUntil(3 * sim.Millisecond)
	if len(*got) != 0 {
		t.Fatalf("violations before Final: %v", *got)
	}
	a.Final()
	if len(*got) != 1 || (*got)[0].Kind != "leak" {
		t.Fatalf("want one leak violation, got %v", kinds(*got))
	}
	d := (*got)[0].Detail
	if !strings.Contains(d, "test:leak-site") || !strings.Contains(d, "test:limbo") {
		t.Fatalf("leak violation lacks site/history attribution: %s", d)
	}
	s.Free() // unpoison the pool for other tests
}

func TestDoubleFreeAttribution(t *testing.T) {
	_, a, got := collector(t, Config{})
	s := skb.NewTx(64, 0)
	s.Audit(a, "test:df-site")
	s.Stage("test:df-stage")
	s.Free()
	s.Free()
	if len(*got) != 1 || (*got)[0].Kind != "double-free" {
		t.Fatalf("want one double-free violation, got %v", kinds(*got))
	}
	d := (*got)[0].Detail
	if !strings.Contains(d, "test:df-site") || !strings.Contains(d, "test:df-stage") {
		t.Fatalf("double-free lacks alloc-site/history attribution: %s", d)
	}
}

func TestStaleHandleFree(t *testing.T) {
	_, a, got := collector(t, Config{})
	s := skb.NewTx(64, 0)
	s.Audit(a, "test:stale-site")
	h := s.Handle()
	s.Free()
	if h.Valid() || h.Get() != nil {
		t.Fatal("handle still valid after free")
	}
	if h.Free() {
		t.Fatal("stale handle free reported success")
	}
	if len(*got) != 1 || (*got)[0].Kind != "stale-free" {
		t.Fatalf("want one stale-free violation, got %v", kinds(*got))
	}
	if !strings.Contains((*got)[0].Detail, "test:stale-site") {
		t.Fatalf("stale-free lacks alloc-site attribution: %s", (*got)[0].Detail)
	}
}

func TestStageAfterFreeIsUseAfterFree(t *testing.T) {
	_, a, got := collector(t, Config{})
	s := skb.NewTx(64, 0)
	s.Audit(a, "test:uaf")
	s.Free()
	s.Stage("test:too-late")
	if len(*got) != 1 || (*got)[0].Kind != "use-after-free" {
		t.Fatalf("want one use-after-free violation, got %v", kinds(*got))
	}
}

func TestConservationBreachNamesTerms(t *testing.T) {
	e, a, got := collector(t, Config{})
	var injected, delivered uint64
	a.Balance("pkts",
		[]Term{T("injected", func() uint64 { return injected })},
		[]Term{T("delivered", func() uint64 { return delivered })})
	// First sweep primes; matched increments stay silent.
	e.RunUntil(sim.Millisecond)
	injected, delivered = 10, 10
	e.RunUntil(2 * sim.Millisecond)
	if len(*got) != 0 {
		t.Fatalf("balanced counters violated: %v", *got)
	}
	injected = 15 // 5 packets vanish
	e.RunUntil(3 * sim.Millisecond)
	if len(*got) == 0 || (*got)[0].Kind != "conservation" {
		t.Fatalf("want conservation violation, got %v", kinds(*got))
	}
	d := (*got)[0].Detail
	if !strings.Contains(d, `balance "pkts"`) || !strings.Contains(d, "missing 5") ||
		!strings.Contains(d, "injected=") {
		t.Fatalf("conservation breach not attributed per-term: %s", d)
	}
}

func TestNoteResetRebasesInsteadOfComparing(t *testing.T) {
	e, a, got := collector(t, Config{})
	var injected, delivered uint64
	a.Balance("pkts",
		[]Term{T("injected", func() uint64 { return injected })},
		[]Term{T("delivered", func() uint64 { return delivered })})
	e.RunUntil(sim.Millisecond)
	// External measurement reset: one side rewinds to zero mid-run.
	injected, delivered = 7, 7
	delivered = 0
	a.NoteReset()
	e.RunUntil(2 * sim.Millisecond)
	if len(*got) != 0 {
		t.Fatalf("rebase sweep still compared across the reset: %v", *got)
	}
	// After the rebase the equation must hold again from the new base.
	injected, delivered = 9, 2
	e.RunUntil(3 * sim.Millisecond)
	if len(*got) != 0 {
		t.Fatalf("post-rebase balanced deltas violated: %v", *got)
	}
}

func TestWatchdogFiresOnStall(t *testing.T) {
	e, a, got := collector(t, Config{})
	a.Watch("core7", func() WatchState {
		return WatchState{Queued: 12, Progress: 42} // work queued, frozen progress
	})
	e.RunUntil(4 * sim.Millisecond) // armed at 1ms; window is 5ms
	if len(*got) != 0 {
		t.Fatalf("watchdog fired before the window elapsed: %v", *got)
	}
	e.RunUntil(7 * sim.Millisecond)
	if len(*got) == 0 || (*got)[0].Kind != "watchdog" {
		t.Fatalf("want watchdog violation, got %v", kinds(*got))
	}
	d := (*got)[0].Detail
	if !strings.Contains(d, "core7") || !strings.Contains(d, "12 queued") {
		t.Fatalf("watchdog violation lacks per-core state: %s", d)
	}
}

func TestWatchdogProgressAndDrainSuppress(t *testing.T) {
	e, a, got := collector(t, Config{})
	var progress uint64
	a.Watch("busy", func() WatchState {
		progress++ // advances every sweep: never hung
		return WatchState{Queued: 5, Progress: progress}
	})
	queued := 100
	a.Watch("draining", func() WatchState {
		queued-- // queue shrinking counts as progress too
		return WatchState{Queued: queued, Progress: 1}
	})
	e.RunUntil(20 * sim.Millisecond)
	if len(*got) != 0 {
		t.Fatalf("watchdog fired on units making progress: %v", *got)
	}
}

func TestWatchdogExemptsFrozenUnlessConfigured(t *testing.T) {
	e, a, got := collector(t, Config{})
	a.Watch("chaos-core", func() WatchState {
		return WatchState{Queued: 9, Progress: 1, Frozen: true}
	})
	e.RunUntil(20 * sim.Millisecond)
	if len(*got) != 0 {
		t.Fatalf("watchdog fired on a deliberately frozen core: %v", *got)
	}

	e2 := sim.New(1)
	var got2 []Violation
	a2 := New(e2, Config{WatchFrozen: true, OnViolation: func(v *Violation) { got2 = append(got2, *v) }})
	a2.Start()
	a2.Watch("chaos-core", func() WatchState {
		return WatchState{Queued: 9, Progress: 1, Frozen: true}
	})
	e2.RunUntil(20 * sim.Millisecond)
	if len(got2) == 0 || got2[0].Kind != "watchdog" {
		t.Fatalf("WatchFrozen did not include frozen cores: %v", kinds(got2))
	}
}

func TestQueueValidationCleanAndLedgerCoherence(t *testing.T) {
	e, a, got := collector(t, Config{})
	q := skb.NewQueue(8)
	a.AddQueue("test-ring", q)
	for i := 0; i < 4; i++ {
		s := skb.NewTx(64, 0)
		s.Audit(a, "test:q")
		q.Enqueue(s)
	}
	e.RunUntil(2 * sim.Millisecond)
	for q.Len() > 0 {
		q.Dequeue().Free()
	}
	a.Final()
	if len(*got) != 0 {
		t.Fatalf("clean queue/ledger produced violations: %v", *got)
	}
	if a.Created() != 4 || a.LiveCount() != 0 {
		t.Fatalf("ledger miscounted: created=%d live=%d", a.Created(), a.LiveCount())
	}
}

func TestAbortPanicsWithoutCollector(t *testing.T) {
	e := sim.New(1)
	a := New(e, Config{}) // no OnViolation: violations abort
	a.Start()
	s := skb.NewTx(64, 0)
	s.Audit(a, "test:abort")
	s.Free()
	defer func() {
		r := recover()
		ab, ok := r.(*Abort)
		if !ok {
			t.Fatalf("want *Abort panic, got %T (%v)", r, r)
		}
		if ab.V.Kind != "double-free" || ab.A != a {
			t.Fatalf("abort carries wrong violation/auditor: %v", ab.V)
		}
	}()
	s.Free()
}

func TestDumpHeaderRoundTrip(t *testing.T) {
	for _, info := range []RunInfo{
		{Exp: "fig10", Seed: 1, Kernel: "", Quick: true},
		{Exp: "abl-chaos", Seed: 99, Kernel: "5.4", Quick: false},
	} {
		var b strings.Builder
		WriteDump(&b, info, &Violation{Kind: "leak", Detail: "x"}, nil)
		parsed, err := ParseDumpHeader(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("parse %+v: %v", info, err)
		}
		if parsed != info {
			t.Fatalf("round trip mangled RunInfo: want %+v got %+v", info, parsed)
		}
	}
	if _, err := ParseDumpHeader(strings.NewReader("not a dump\n")); err == nil {
		t.Fatal("foreign file parsed as an audit dump")
	}
}

func TestDumpIncludesStateAndRing(t *testing.T) {
	e, a, _ := collector(t, Config{})
	s := skb.NewTx(64, 0)
	s.Audit(a, "test:dump")
	s.Stage("test:stage-a")
	s.Free()
	e.RunUntil(sim.Millisecond)
	var b strings.Builder
	WriteDump(&b, RunInfo{Exp: "x", Seed: 1}, nil, a)
	out := b.String()
	for _, want := range []string{"ledger: created=1 freed=1 live=0",
		"disposed test:stage-a", "trace ring", "test:dump"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}
