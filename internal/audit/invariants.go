package audit

import (
	"fmt"
	"io"
	"strings"

	"falcon/internal/sim"
	"falcon/internal/skb"
)

// Term is one named counter in a conservation equation. Fn is sampled
// at every sweep; the balance compares deltas since its baseline so
// external counter resets (MeasureWindow) only need a re-base, never a
// restart.
type Term struct {
	Name string
	Fn   func() uint64
}

// T builds a Term.
func T(name string, fn func() uint64) Term { return Term{Name: name, Fn: fn} }

// Balance is one packet-conservation equation: sum(LHS) == sum(RHS),
// compared as deltas from the last prime. The canonical instance is
// injected == delivered + every named drop bucket.
type Balance struct {
	Name     string
	LHS, RHS []Term
	baseL    []uint64
	baseR    []uint64
	primed   bool
}

// Balance registers a conservation equation. Terms may be appended to
// the returned value until the first sweep.
func (a *Auditor) Balance(name string, lhs, rhs []Term) *Balance {
	b := &Balance{Name: name, LHS: lhs, RHS: rhs}
	a.balances = append(a.balances, b)
	return b
}

// AddLHS / AddRHS append terms (used by OpenUDP to register per-socket
// delivery counters after the balance already exists).
func (b *Balance) AddLHS(t Term) { b.LHS = append(b.LHS, t); b.primed = false }
func (b *Balance) AddRHS(t Term) { b.RHS = append(b.RHS, t); b.primed = false }

func (b *Balance) prime() {
	b.baseL = sample(b.LHS, b.baseL)
	b.baseR = sample(b.RHS, b.baseR)
	b.primed = true
}

func sample(ts []Term, into []uint64) []uint64 {
	into = into[:0]
	for _, t := range ts {
		into = append(into, t.Fn())
	}
	return into
}

// check returns "" when balanced, else a rendered discrepancy with
// every term's delta so the mismatch is attributed to a stage.
func (b *Balance) check() string {
	if !b.primed {
		b.prime()
		return ""
	}
	// Deltas are signed: gauge terms (in-flight counts) may sit below
	// their baseline at check time.
	var sumL, sumR int64
	curL := make([]int64, len(b.LHS))
	curR := make([]int64, len(b.RHS))
	for i, t := range b.LHS {
		curL[i] = int64(t.Fn()) - int64(b.baseL[i])
		sumL += curL[i]
	}
	for i, t := range b.RHS {
		curR[i] = int64(t.Fn()) - int64(b.baseR[i])
		sumR += curR[i]
	}
	if sumL == sumR {
		return ""
	}
	var s strings.Builder
	fmt.Fprintf(&s, "balance %q broken: lhs %d != rhs %d (missing %d);", b.Name, sumL, sumR, sumL-sumR)
	for i, t := range b.LHS {
		fmt.Fprintf(&s, " %s=%d", t.Name, curL[i])
	}
	s.WriteString(" |")
	for i, t := range b.RHS {
		fmt.Fprintf(&s, " %s=%d", t.Name, curR[i])
	}
	return s.String()
}

// queueSrc is one registered queue whose linked-list length must always
// equal enqueues − dequeues (skb.Queue.Validate).
type queueSrc struct {
	name string
	q    *skb.Queue
}

// AddQueue registers a queue for per-sweep structural validation.
func (a *Auditor) AddQueue(name string, q *skb.Queue) {
	if q == nil {
		return
	}
	a.queues = append(a.queues, queueSrc{name: name, q: q})
}

// AddQueues registers queues discovered lazily: each sweep calls visit,
// which yields (name, queue) pairs live at that moment — used for NIC
// rings that RSS reconfiguration creates mid-run.
func (a *Auditor) AddQueues(visit func(yield func(name string, q *skb.Queue))) {
	a.lazyQueues = append(a.lazyQueues, visit)
}

func (a *Auditor) checkQueues() {
	for _, qs := range a.queues {
		a.checkQueue(qs.name, qs.q)
	}
	for _, visit := range a.lazyQueues {
		visit(a.checkQueue)
	}
}

func (a *Auditor) checkQueue(name string, q *skb.Queue) {
	if q == nil {
		return
	}
	if walk, ok := q.Validate(); !ok {
		a.violate("queue", "queue %q corrupt: walked %d, len %d, enq %d, deq %d",
			name, walk, q.Len(), q.Enqueued(), q.Dequeued())
	}
}

// WatchState is one watchdog sample for a watched unit (a core's
// softirq/NAPI machinery). Progress is any monotonic activity counter;
// Queued is the pending work the unit should be draining; Frozen marks
// units deliberately halted by fault injection.
type WatchState struct {
	Queued   int
	Progress uint64
	Frozen   bool
}

type watch struct {
	name  string
	probe func() WatchState
	last  WatchState
	since sim.Time
	armed bool
}

// Watch registers a stall probe. The watchdog fires when a probe
// reports queued work with no progress (no Progress movement, no queue
// shrink) for a full WatchdogWindow.
func (a *Auditor) Watch(name string, probe func() WatchState) {
	a.watches = append(a.watches, &watch{name: name, probe: probe})
}

func (a *Auditor) scanWatches() {
	now := a.E.Now()
	for _, w := range a.watches {
		st := w.probe()
		if st.Queued == 0 || (st.Frozen && !a.cfg.WatchFrozen) {
			w.armed = false
			w.last = st
			continue
		}
		progressed := !w.armed || st.Progress != w.last.Progress || st.Queued < w.last.Queued
		if progressed {
			w.armed = true
			w.last = st
			w.since = now
			continue
		}
		if now-w.since >= a.cfg.WatchdogWindow {
			a.violate("watchdog", "%s hung: %d queued, no progress for %v (progress=%d frozen=%t)\n%s",
				w.name, st.Queued, now-w.since, st.Progress, st.Frozen, a.stateString())
			// In collect mode re-arm so one stall yields one violation
			// per window, not one per sweep.
			w.since = now
		}
	}
}

// AddDump registers a per-core state renderer included in every
// failure dump and watchdog report.
func (a *Auditor) AddDump(fn func(w io.Writer)) {
	a.dumps = append(a.dumps, fn)
}
