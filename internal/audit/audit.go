// Package audit is the datapath's opt-in runtime verification
// subsystem: an SKB lifecycle ledger over the pooled hot path,
// packet-conservation invariants checked on a sim-time cadence, a
// softirq/NAPI watchdog mirroring the kernel's hung-softirq detection,
// and a fixed-size trace ring dumped on any breach for deterministic
// seed replay (falconsim -replay).
//
// The auditor is a pure observer: it reads counters and queue state,
// draws no randomness, and mutates nothing on the datapath, so enabling
// it leaves a run's stdout byte-identical. With auditing off the entire
// subsystem costs one nil-check per lifecycle hook (see skb.Auditor).
package audit

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"falcon/internal/sim"
	"falcon/internal/skb"
)

// Defaults for Config zero values.
const (
	DefaultCheckEvery     = sim.Millisecond
	DefaultWatchdogWindow = 5 * sim.Millisecond
	DefaultRingSize       = 256
)

// Config tunes one auditor.
type Config struct {
	// CheckEvery is the sim-time cadence of the periodic invariant
	// sweep (conservation balances, queue validation, watchdog scan).
	CheckEvery sim.Time
	// WatchdogWindow is how long a watch may hold queued work without
	// progress before the watchdog aborts the run.
	WatchdogWindow sim.Time
	// RingSize bounds the trace ring (recent lifecycle events kept for
	// the failure dump).
	RingSize int
	// WatchFrozen includes cores that fault injection deliberately
	// froze (Stalled/Offline) in watchdog stall detection. Off by
	// default: the chaos harness stalls cores on purpose and the
	// simulator's ground truth exempts them.
	WatchFrozen bool
	// OnViolation, when non-nil, collects violations instead of
	// aborting the run — negative tests use it to assert attribution.
	// When nil, the first violation panics with *Abort.
	OnViolation func(*Violation)
}

func (c Config) withDefaults() Config {
	if c.CheckEvery <= 0 {
		c.CheckEvery = DefaultCheckEvery
	}
	if c.WatchdogWindow <= 0 {
		c.WatchdogWindow = DefaultWatchdogWindow
	}
	if c.RingSize <= 0 {
		c.RingSize = DefaultRingSize
	}
	return c
}

// Violation is one detected invariant breach.
type Violation struct {
	// Kind classifies the breach: "leak", "double-free", "stale-free",
	// "use-after-free", "conservation", "queue", "watchdog", "ledger".
	Kind   string
	At     sim.Time
	Detail string
}

func (v *Violation) String() string {
	return fmt.Sprintf("audit: [%s] at %v: %s", v.Kind, v.At, v.Detail)
}

// Abort is the panic value raised on a violation when no collector is
// installed. It carries the auditor so the recovery site (falconsim)
// can write the full diagnostic dump for -replay.
type Abort struct {
	V *Violation
	A *Auditor
}

func (ab *Abort) Error() string { return ab.V.String() }

// Auditor verifies one simulation run. It implements skb.Auditor (the
// lifecycle ledger) and drives the conservation, queue and watchdog
// sweeps off a periodic engine timer. One auditor audits one engine;
// concurrent experiment runs each build their own.
type Auditor struct {
	E   *sim.Engine
	cfg Config

	// Ledger state (ledger.go).
	live     map[*skb.SKB]*record
	recent   []*record // ring of recently freed records, newest last
	recentAt int
	freeRecs []*record // record pool
	seq      uint64
	created  uint64
	freedCnt uint64
	sites    map[string]uint64 // allocations per site
	disposed map[string]uint64 // frees per terminal stage

	// Invariants (balance.go) and watchdog (watchdog.go).
	balances   []*Balance
	queues     []queueSrc
	lazyQueues []func(yield func(name string, q *skb.Queue))
	watches    []*watch
	dumps      []func(w io.Writer)
	rebase     bool

	// Trace ring (trace.go).
	ring    []traceEv
	ringAt  int
	ringLen int

	violations []Violation
	timer      sim.Timer
	finalized  bool
}

// New builds an auditor over engine e. Call the registration methods
// (Balance, AddQueue(s), Watch, AddDump), then Start.
func New(e *sim.Engine, cfg Config) *Auditor {
	return &Auditor{
		E:        e,
		cfg:      cfg.withDefaults(),
		live:     make(map[*skb.SKB]*record),
		sites:    make(map[string]uint64),
		disposed: make(map[string]uint64),
	}
}

// Start arms the periodic invariant sweep.
func (a *Auditor) Start() {
	a.timer = a.E.AfterArg(a.cfg.CheckEvery, auditTick, a)
}

func auditTick(v any) {
	a := v.(*Auditor)
	if a.finalized {
		return
	}
	a.runChecks()
	a.timer = a.E.AfterArg(a.cfg.CheckEvery, auditTick, a)
}

// NoteReset tells the auditor that external measurement counters are
// being reset (MeasureWindow / Host.ResetMeasurement). The next sweep
// re-bases every balance instead of comparing across the discontinuity.
func (a *Auditor) NoteReset() {
	a.rebase = true
	a.traceNote("external-reset")
}

// runChecks is one periodic sweep: queue validation, conservation
// balances (or a re-base after an external counter reset), then the
// watchdog scan.
func (a *Auditor) runChecks() {
	a.traceNote("check")
	a.checkQueues()
	if a.rebase {
		a.rebase = false
		for _, b := range a.balances {
			b.prime()
		}
	} else {
		for _, b := range a.balances {
			if msg := b.check(); msg != "" {
				a.violate("conservation", "%s", msg)
			}
		}
	}
	a.scanWatches()
}

// Final stops the sweep and runs the teardown checks: a last sweep, the
// ledger's structural conservation, and the end-of-run leak check (every
// SKB still live in the ledger is a leak, reported in allocation order
// with its full stage history). It returns all collected violations; in
// abort mode the first teardown violation panics.
func (a *Auditor) Final() []Violation {
	a.finalized = true
	a.timer.Stop()
	a.runChecks()
	if a.created != a.freedCnt+uint64(len(a.live)) {
		a.violate("ledger", "created %d != freed %d + live %d", a.created, a.freedCnt, len(a.live))
	}
	if len(a.live) > 0 {
		recs := make([]*record, 0, len(a.live))
		for _, r := range a.live {
			recs = append(recs, r)
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
		for _, r := range recs {
			a.violate("leak", "skb#%d (alloc %q at %v, gen %d) never freed; age %v; history: %s",
				r.seq, r.site, r.at, r.gen, a.E.Now()-r.at, r.history())
		}
	}
	return a.violations
}

// Violations returns everything collected so far (collect mode).
func (a *Auditor) Violations() []Violation { return a.violations }

// LiveCount returns the number of SKBs currently tracked as live — the
// teardown drain loop polls it before running the leak check.
func (a *Auditor) LiveCount() int { return len(a.live) }

// Created returns lifetime SKB attachments to the ledger.
func (a *Auditor) Created() uint64 { return a.created }

func (a *Auditor) violate(kind, format string, args ...any) {
	v := Violation{Kind: kind, At: a.E.Now(), Detail: fmt.Sprintf(format, args...)}
	a.violations = append(a.violations, v)
	if a.cfg.OnViolation != nil {
		a.cfg.OnViolation(&v)
		return
	}
	panic(&Abort{V: &v, A: a})
}

// WriteState renders the auditor's full diagnostic state: ledger
// counters, dispositions, registered dump callbacks (per-core state)
// and the trace ring. It is the body of every failure dump.
func (a *Auditor) WriteState(w io.Writer) {
	fmt.Fprintf(w, "ledger: created=%d freed=%d live=%d pool-misuses=%d\n",
		a.created, a.freedCnt, len(a.live), skb.PoolMisuses())
	keys := make([]string, 0, len(a.disposed))
	for k := range a.disposed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  disposed %-20s %d\n", k, a.disposed[k])
	}
	for _, fn := range a.dumps {
		fn(w)
	}
	a.writeRing(w)
}

// stateString is WriteState into a string (for panic messages).
func (a *Auditor) stateString() string {
	var b strings.Builder
	a.WriteState(&b)
	return b.String()
}
