// Package audit is the datapath's opt-in runtime verification
// subsystem: an SKB lifecycle ledger over the pooled hot path,
// packet-conservation invariants checked on a sim-time cadence, a
// softirq/NAPI watchdog mirroring the kernel's hung-softirq detection,
// and a fixed-size trace ring dumped on any breach for deterministic
// seed replay (falconsim -replay).
//
// The auditor is a pure observer: it reads counters and queue state,
// draws no randomness, and mutates nothing on the datapath, so enabling
// it leaves a run's stdout byte-identical. With auditing off the entire
// subsystem costs one nil-check per lifecycle hook (see skb.Auditor).
package audit

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"falcon/internal/sim"
	"falcon/internal/skb"
)

// Defaults for Config zero values.
const (
	DefaultCheckEvery     = sim.Millisecond
	DefaultWatchdogWindow = 5 * sim.Millisecond
	DefaultRingSize       = 256
)

// Config tunes one auditor.
type Config struct {
	// CheckEvery is the sim-time cadence of the periodic invariant
	// sweep (conservation balances, queue validation, watchdog scan).
	CheckEvery sim.Time
	// WatchdogWindow is how long a watch may hold queued work without
	// progress before the watchdog aborts the run.
	WatchdogWindow sim.Time
	// RingSize bounds the trace ring (recent lifecycle events kept for
	// the failure dump).
	RingSize int
	// WatchFrozen includes cores that fault injection deliberately
	// froze (Stalled/Offline) in watchdog stall detection. Off by
	// default: the chaos harness stalls cores on purpose and the
	// simulator's ground truth exempts them.
	WatchFrozen bool
	// OnViolation, when non-nil, collects violations instead of
	// aborting the run — negative tests use it to assert attribution.
	// When nil, the first violation panics with *Abort.
	OnViolation func(*Violation)
}

func (c Config) withDefaults() Config {
	if c.CheckEvery <= 0 {
		c.CheckEvery = DefaultCheckEvery
	}
	if c.WatchdogWindow <= 0 {
		c.WatchdogWindow = DefaultWatchdogWindow
	}
	if c.RingSize <= 0 {
		c.RingSize = DefaultRingSize
	}
	return c
}

// Violation is one detected invariant breach.
type Violation struct {
	// Kind classifies the breach: "leak", "double-free", "stale-free",
	// "use-after-free", "conservation", "queue", "watchdog", "ledger".
	Kind   string
	At     sim.Time
	Detail string
}

func (v *Violation) String() string {
	return fmt.Sprintf("audit: [%s] at %v: %s", v.Kind, v.At, v.Detail)
}

// Abort is the panic value raised on a violation when no collector is
// installed. It carries the auditor so the recovery site (falconsim)
// can write the full diagnostic dump for -replay.
type Abort struct {
	V *Violation
	A *Auditor
}

func (ab *Abort) Error() string { return ab.V.String() }

// Auditor verifies one simulation run. The SKB lifecycle ledger is
// partitioned per PDES shard (LedgerFor); the auditor itself drives
// the conservation, queue and watchdog sweeps off a periodic timer on
// the Sim's control queue — on a cluster those fire at barriers with
// every shard parked, so sweeps read shard state safely. One auditor
// audits one simulation; concurrent experiment runs each build their
// own. The Auditor still implements skb.Auditor directly (through a
// default ledger) for tests and single-engine callers.
type Auditor struct {
	E   sim.Sim
	cfg Config

	// Ledger state (ledger.go): one shard-local slice per engine, plus
	// a lazily built default for direct Auditor use.
	ledgers  []*Ledger
	byEngine map[*sim.Engine]*Ledger
	def      *Ledger

	// Invariants (balance.go) and watchdog (watchdog.go).
	balances   []*Balance
	queues     []queueSrc
	lazyQueues []func(yield func(name string, q *skb.Queue))
	watches    []*watch
	dumps      []func(w io.Writer)
	rebase     bool

	// mu orders violation reporting: per-packet hooks on different
	// shards may violate concurrently (cold path — every report is
	// already a failed run).
	mu         sync.Mutex
	violations []Violation
	timer      sim.Timer
	finalized  bool
}

// New builds an auditor over simulation e (a serial *sim.Engine or a
// *sim.Cluster). Call the registration methods (Balance, AddQueue(s),
// Watch, AddDump), then Start.
func New(e sim.Sim, cfg Config) *Auditor {
	return &Auditor{
		E:        e,
		cfg:      cfg.withDefaults(),
		byEngine: make(map[*sim.Engine]*Ledger),
	}
}

// LedgerFor returns the shard-local ledger owning engine e, creating it
// on first use. Hosts attach the ledger of their own engine, so the
// per-packet hooks never touch another shard's state.
func (a *Auditor) LedgerFor(e *sim.Engine) *Ledger {
	if l, ok := a.byEngine[e]; ok {
		return l
	}
	l := newLedger(a, e)
	a.byEngine[e] = l
	a.ledgers = append(a.ledgers, l)
	return l
}

// defLedger is the ledger behind the Auditor's own skb.Auditor methods.
func (a *Auditor) defLedger() *Ledger {
	if a.def == nil {
		if e, ok := a.E.(*sim.Engine); ok {
			a.def = a.LedgerFor(e)
		} else {
			a.def = newLedger(a, a.E)
			a.ledgers = append(a.ledgers, a.def)
		}
	}
	return a.def
}

// skb.Auditor delegation to the default ledger.

func (a *Auditor) SKBGet(s *skb.SKB, site string)    { a.defLedger().SKBGet(s, site) }
func (a *Auditor) SKBStage(s *skb.SKB, stage string) { a.defLedger().SKBStage(s, stage) }
func (a *Auditor) SKBFree(s *skb.SKB)                { a.defLedger().SKBFree(s) }
func (a *Auditor) SKBMisuse(s *skb.SKB, kind string) { a.defLedger().SKBMisuse(s, kind) }

// Start arms the periodic invariant sweep.
func (a *Auditor) Start() {
	a.timer = a.E.AfterArg(a.cfg.CheckEvery, auditTick, a)
}

func auditTick(v any) {
	a := v.(*Auditor)
	if a.finalized {
		return
	}
	a.runChecks()
	a.timer = a.E.AfterArg(a.cfg.CheckEvery, auditTick, a)
}

// NoteReset tells the auditor that external measurement counters are
// being reset (MeasureWindow / Host.ResetMeasurement). The next sweep
// re-bases every balance instead of comparing across the discontinuity.
func (a *Auditor) NoteReset() {
	a.rebase = true
	a.traceNote("external-reset")
}

// runChecks is one periodic sweep: queue validation, conservation
// balances (or a re-base after an external counter reset), then the
// watchdog scan.
func (a *Auditor) runChecks() {
	a.traceNote("check")
	a.checkQueues()
	if a.rebase {
		a.rebase = false
		for _, b := range a.balances {
			b.prime()
		}
	} else {
		for _, b := range a.balances {
			if msg := b.check(); msg != "" {
				a.violate("conservation", "%s", msg)
			}
		}
	}
	a.scanWatches()
}

// Final stops the sweep and runs the teardown checks: a last sweep, the
// ledger's structural conservation (summed across shard ledgers — SKB
// handoffs allocate on one shard and free on another, so only the sum
// is invariant), and the end-of-run leak check (every SKB still live in
// any ledger is a leak, reported in allocation order with its full
// stage history). It returns all collected violations; in abort mode
// the first teardown violation panics.
func (a *Auditor) Final() []Violation {
	a.finalized = true
	a.timer.Stop()
	a.runChecks()
	created, freed, live := a.ledgerTotals()
	if created != freed+uint64(live) {
		a.violate("ledger", "created %d != freed %d + live %d", created, freed, live)
	}
	if live > 0 {
		recs := make([]*record, 0, live)
		for _, l := range a.ledgers {
			for _, r := range l.live {
				recs = append(recs, r)
			}
		}
		// Allocation-time order; per-ledger seq breaks same-nanosecond
		// ties (exact serial order for a single ledger).
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].at != recs[j].at {
				return recs[i].at < recs[j].at
			}
			return recs[i].seq < recs[j].seq
		})
		for _, r := range recs {
			a.violate("leak", "skb#%d (alloc %q at %v, gen %d) never freed; age %v; history: %s",
				r.seq, r.site, r.at, r.gen, a.E.Now()-r.at, r.history())
		}
	}
	return a.violations
}

// ledgerTotals sums the structural counters across shard ledgers.
func (a *Auditor) ledgerTotals() (created, freed uint64, live int) {
	for _, l := range a.ledgers {
		created += l.created
		freed += l.freedCnt
		live += len(l.live)
	}
	return
}

// Violations returns everything collected so far (collect mode).
func (a *Auditor) Violations() []Violation { return a.violations }

// LiveCount returns the number of SKBs currently tracked as live in any
// ledger — the teardown drain loop polls it before running the leak
// check.
func (a *Auditor) LiveCount() int {
	n := 0
	for _, l := range a.ledgers {
		n += len(l.live)
	}
	return n
}

// Created returns lifetime SKB attachments across all ledgers.
func (a *Auditor) Created() uint64 {
	var n uint64
	for _, l := range a.ledgers {
		n += l.created
	}
	return n
}

func (a *Auditor) violate(kind, format string, args ...any) {
	a.violateAt(a.E.Now(), kind, format, args...)
}

// violateAt reports a breach stamped with the detecting shard's clock.
// Per-packet hooks on different shards may report concurrently, so the
// record-and-collect step is mutex-ordered (cold path: any report means
// the run already failed); in abort mode the panic unwinds the calling
// shard and the cluster re-raises it deterministically.
func (a *Auditor) violateAt(at sim.Time, kind, format string, args ...any) {
	v := Violation{Kind: kind, At: at, Detail: fmt.Sprintf(format, args...)}
	a.mu.Lock()
	a.violations = append(a.violations, v)
	abort := a.cfg.OnViolation == nil
	if !abort {
		a.cfg.OnViolation(&v)
	}
	a.mu.Unlock()
	if abort {
		panic(&Abort{V: &v, A: a})
	}
}

// WriteState renders the auditor's full diagnostic state: ledger
// counters and dispositions (summed across shard ledgers), registered
// dump callbacks (per-core state) and the trace ring(s). It is the
// body of every failure dump.
func (a *Auditor) WriteState(w io.Writer) {
	created, freed, live := a.ledgerTotals()
	fmt.Fprintf(w, "ledger: created=%d freed=%d live=%d pool-misuses=%d\n",
		created, freed, live, skb.PoolMisuses())
	sum := make(map[string]uint64)
	for _, l := range a.ledgers {
		for k, n := range l.disposed {
			sum[k] += n
		}
	}
	keys := make([]string, 0, len(sum))
	for k := range sum {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  disposed %-20s %d\n", k, sum[k])
	}
	for _, fn := range a.dumps {
		fn(w)
	}
	if len(a.ledgers) == 1 {
		a.ledgers[0].writeRing(w)
		return
	}
	for i, l := range a.ledgers {
		fmt.Fprintf(w, "shard ledger %d:\n", i)
		l.writeRing(w)
	}
}

// stateString is WriteState into a string (for panic messages).
func (a *Auditor) stateString() string {
	var b strings.Builder
	a.WriteState(&b)
	return b.String()
}
