package audit

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"falcon/internal/sim"
)

// traceEv is one entry in the fixed-size ring of recent lifecycle
// events. Labels are the static stage/site strings the datapath already
// interns, so recording is allocation-free in steady state.
type traceEv struct {
	at    sim.Time
	kind  byte // 'G'et, 'S'tage, 'F'ree, 'M'isuse, 'N'ote
	label string
	seq   uint64
	gen   uint32
}

func (l *Ledger) trace(kind byte, label string, seq uint64, gen uint32) {
	if l.ring == nil {
		l.ring = make([]traceEv, l.a.cfg.RingSize)
	}
	l.ring[l.ringAt] = traceEv{at: l.E.Now(), kind: kind, label: label, seq: seq, gen: gen}
	l.ringAt = (l.ringAt + 1) % len(l.ring)
	if l.ringLen < len(l.ring) {
		l.ringLen++
	}
}

// traceNote records a coordinator-side note (sweeps, resets). It lands
// in the first ledger's ring so a serial run's dump stays byte-for-byte
// what it was before sharding.
func (a *Auditor) traceNote(label string) {
	l := a.def
	if l == nil {
		if len(a.ledgers) > 0 {
			l = a.ledgers[0]
		} else {
			l = a.defLedger()
		}
	}
	l.trace('N', label, 0, 0)
}

// writeRing renders the trace ring oldest-first.
func (l *Ledger) writeRing(w io.Writer) {
	fmt.Fprintf(w, "trace ring (%d most recent events):\n", l.ringLen)
	n := len(l.ring)
	for i := l.ringLen; i >= 1; i-- {
		ev := l.ring[(l.ringAt-i+n)%n]
		switch ev.kind {
		case 'N':
			fmt.Fprintf(w, "  %12v %c %s\n", ev.at, ev.kind, ev.label)
		default:
			fmt.Fprintf(w, "  %12v %c skb#%d gen=%d %s\n", ev.at, ev.kind, ev.seq, ev.gen, ev.label)
		}
	}
}

// RunInfo identifies the exact run a dump came from; the header line it
// renders is everything -replay needs to reproduce the failure.
type RunInfo struct {
	Exp    string
	Seed   int64
	Kernel string
	Quick  bool
	// Scenario, when non-empty, embeds a fuzz scenario's compact JSON:
	// the dump then replays through the oracle battery (falconsim
	// routes -replay to the scenario runner) instead of an experiment.
	Scenario string
}

const dumpMagic = "FALCON-AUDIT-DUMP v1"

// WriteDump writes a replayable failure dump: a machine-parsable header
// naming the experiment/seed/config, the violation, and the auditor's
// full state (ledger, dispositions, per-core dumps, trace ring).
func WriteDump(w io.Writer, info RunInfo, v *Violation, a *Auditor) {
	fmt.Fprintf(w, "%s exp=%s seed=%d kernel=%q quick=%t", dumpMagic, info.Exp, info.Seed, info.Kernel, info.Quick)
	if info.Scenario != "" {
		fmt.Fprintf(w, " scenario=%q", info.Scenario)
	}
	fmt.Fprintln(w)
	if v != nil {
		fmt.Fprintf(w, "violation: %s\n", v)
	}
	if a != nil {
		a.WriteState(w)
	}
}

// WriteDumpFile is WriteDump to a file path.
func WriteDumpFile(path string, info RunInfo, v *Violation, a *Auditor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	WriteDump(bw, info, v, a)
	return bw.Flush()
}

// ParseDumpHeader reads the first line of a dump and recovers the
// RunInfo, so `falconsim -replay <dump>` can re-run the exact
// seed/config in one command.
func ParseDumpHeader(r io.Reader) (RunInfo, error) {
	var info RunInfo
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil && line == "" {
		return info, fmt.Errorf("audit: reading dump header: %w", err)
	}
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, dumpMagic+" ") {
		return info, fmt.Errorf("audit: not an audit dump (want %q header)", dumpMagic)
	}
	for _, f := range strings.Fields(strings.TrimPrefix(line, dumpMagic+" ")) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return info, fmt.Errorf("audit: malformed dump header field %q", f)
		}
		var err error
		switch k {
		case "exp":
			info.Exp = v
		case "seed":
			_, err = fmt.Sscanf(v, "%d", &info.Seed)
		case "kernel":
			info.Kernel, err = strconv.Unquote(v)
		case "quick":
			info.Quick = v == "true"
		case "scenario":
			info.Scenario, err = strconv.Unquote(v)
		}
		if err != nil {
			return info, fmt.Errorf("audit: malformed dump header field %q: %w", f, err)
		}
	}
	if info.Exp == "" {
		return info, fmt.Errorf("audit: dump header %q names no experiment", line)
	}
	return info, nil
}

// ParseDumpFile is ParseDumpHeader over a file path.
func ParseDumpFile(path string) (RunInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return RunInfo{}, err
	}
	defer f.Close()
	return ParseDumpHeader(f)
}
