package audit

import (
	"fmt"
	"strings"

	"falcon/internal/sim"
	"falcon/internal/skb"
)

// historyDepth is the per-SKB stage ring: the last historyDepth stages
// an SKB visited, enough to reconstruct a full datapath traversal
// (tx → wire → nic-ring → napi-poll → backlog → decap → bridge →
// sock-queue → delivered is 9 hops).
const historyDepth = 16

// record is the ledger entry for one SKB incarnation (one Get..Free
// span). Records are pooled; a fixed ring of recently freed records is
// retained so double-free and stale-free violations can report the
// victim's full stage history.
type record struct {
	seq    uint64 // allocation sequence number within its ledger, 1-based
	gen    uint32 // skb generation at allocation
	site   string // allocation site ("tx:fast", "tx:frag", ...)
	at     sim.Time
	freeAt sim.Time
	n      int // stages recorded (may exceed historyDepth)
	stages [historyDepth]string
	times  [historyDepth]sim.Time
}

func (r *record) push(stage string, at sim.Time) {
	r.stages[r.n%historyDepth] = stage
	r.times[r.n%historyDepth] = at
	r.n++
}

func (r *record) last() string {
	if r.n == 0 {
		return r.site
	}
	return r.stages[(r.n-1)%historyDepth]
}

// history renders the stage trail oldest-first; a truncated ring is
// prefixed with the count of elided stages.
func (r *record) history() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%v", r.site, r.at)
	start, elided := 0, 0
	if r.n > historyDepth {
		start = r.n - historyDepth
		elided = start
	}
	if elided > 0 {
		fmt.Fprintf(&b, " ..(%d elided)..", elided)
	}
	for i := start; i < r.n; i++ {
		fmt.Fprintf(&b, " -> %s@%v", r.stages[i%historyDepth], r.times[i%historyDepth])
	}
	return b.String()
}

// Ledger is the shard-local slice of the auditor's SKB lifecycle
// state: the live map, the recently-freed ring, allocation/disposition
// counters and the trace ring. The serial engine uses a single ledger;
// a PDES cluster gets one per shard (Auditor.LedgerFor), so the
// per-packet hooks touch only state owned by the calling logical
// process and need no locks. The invariant sweeps — which run on the
// coordinator with every shard parked — and the teardown checks sum
// across ledgers.
type Ledger struct {
	a *Auditor
	// E is the owning shard's engine (or the whole Sim for the default
	// ledger): the clock the ledger stamps records and traces with.
	E sim.Sim

	live     map[*skb.SKB]*record
	recent   []*record // ring of recently freed records, newest last
	recentAt int
	freeRecs []*record // record pool
	seq      uint64
	created  uint64
	freedCnt uint64
	sites    map[string]uint64 // allocations per site
	disposed map[string]uint64 // frees per terminal stage

	// Trace ring (trace.go).
	ring    []traceEv
	ringAt  int
	ringLen int
}

func newLedger(a *Auditor, e sim.Sim) *Ledger {
	return &Ledger{
		a: a, E: e,
		live:     make(map[*skb.SKB]*record),
		sites:    make(map[string]uint64),
		disposed: make(map[string]uint64),
	}
}

func (l *Ledger) getRecord() *record {
	if n := len(l.freeRecs); n > 0 {
		r := l.freeRecs[n-1]
		l.freeRecs = l.freeRecs[:n-1]
		*r = record{}
		return r
	}
	return &record{}
}

// retire moves a freed record into the recently-freed ring, recycling
// whatever it displaces.
func (l *Ledger) retire(r *record) {
	if l.recent == nil {
		l.recent = make([]*record, l.a.cfg.RingSize)
	}
	if old := l.recent[l.recentAt]; old != nil {
		l.freeRecs = append(l.freeRecs, old)
	}
	l.recent[l.recentAt] = r
	l.recentAt = (l.recentAt + 1) % len(l.recent)
}

// recentFor finds the newest retired record for s (by pointer identity
// and generation), for misuse attribution.
func (l *Ledger) recentFor(s *skb.SKB) *record {
	if l.recent == nil {
		return nil
	}
	n := len(l.recent)
	for i := 1; i <= n; i++ {
		r := l.recent[(l.recentAt-i+n)%n]
		if r == nil {
			return nil
		}
		if r.gen == s.Gen()-1 || r.gen == s.Gen() {
			if _, live := l.live[s]; !live {
				return r
			}
		}
	}
	return nil
}

// SKBGet implements skb.Auditor: a fresh SKB entered the datapath.
func (l *Ledger) SKBGet(s *skb.SKB, site string) {
	if prev, ok := l.live[s]; ok {
		l.a.violateAt(l.E.Now(), "ledger", "skb#%d re-issued while live (alloc %q at %v); history: %s",
			prev.seq, prev.site, prev.at, prev.history())
		delete(l.live, s)
		l.freedCnt++ // keep created == freed + live coherent in collect mode
	}
	l.seq++
	l.created++
	r := l.getRecord()
	r.seq, r.gen, r.site, r.at = l.seq, s.Gen(), site, l.E.Now()
	l.live[s] = r
	l.sites[site]++
	l.trace('G', site, r.seq, s.Gen())
}

// SKBStage implements skb.Auditor: a live SKB crossed a device stage.
func (l *Ledger) SKBStage(s *skb.SKB, stage string) {
	r, ok := l.live[s]
	if !ok {
		l.a.violateAt(l.E.Now(), "use-after-free", "stage %q on untracked/freed skb (gen %d)", stage, s.Gen())
		return
	}
	r.push(stage, l.E.Now())
	l.trace('S', stage, r.seq, s.Gen())
}

// SKBFree implements skb.Auditor: a live SKB left the datapath. Its
// last stamped stage becomes the disposition bucket the conservation
// balances count against.
func (l *Ledger) SKBFree(s *skb.SKB) {
	r, ok := l.live[s]
	if !ok {
		l.a.violateAt(l.E.Now(), "double-free", "free of untracked skb (gen %d) — never issued or already freed", s.Gen())
		return
	}
	delete(l.live, s)
	l.freedCnt++
	r.freeAt = l.E.Now()
	l.disposed[r.last()]++
	l.trace('F', r.last(), r.seq, s.Gen())
	l.retire(r)
}

// SKBMisuse implements skb.Auditor: the pool itself rejected an
// operation (double-free or stale-generation free caught by skb.Free /
// Handle.Free). The retired record, if still in the ring, pins the
// misuse to the allocation site and full stage trail of the victim.
func (l *Ledger) SKBMisuse(s *skb.SKB, kind string) {
	l.trace('M', kind, 0, s.Gen())
	if r := l.recentFor(s); r != nil {
		l.a.violateAt(l.E.Now(), kind, "%s of skb#%d (alloc %q at %v, gen %d, freed at %v); history: %s",
			kind, r.seq, r.site, r.at, r.gen, r.freeAt, r.history())
		return
	}
	l.a.violateAt(l.E.Now(), kind, "%s of skb gen %d (record evicted from ring; raise Config.RingSize to retain history)",
		kind, s.Gen())
}

// SKBHandoff implements skb.Handoffer: a frame crossed a shard
// boundary, so its live record migrates to the ledger owning the
// receiving shard. Runs on the cluster coordinator with both shards
// parked. The allocation stays counted where it happened and the
// eventual free counts at the destination; the teardown conservation
// check sums both sides, so handoffs conserve by construction.
func (l *Ledger) SKBHandoff(s *skb.SKB, to skb.Auditor) {
	t := resolveLedger(to)
	if t == nil || t == l {
		return
	}
	r, ok := l.live[s]
	if !ok {
		// Untracked here (e.g. attached mid-flight); the destination
		// hooks will attribute any misuse.
		return
	}
	delete(l.live, s)
	t.live[s] = r
}

// resolveLedger maps an skb.Auditor back to its concrete ledger.
func resolveLedger(a skb.Auditor) *Ledger {
	switch v := a.(type) {
	case *Ledger:
		return v
	case *Auditor:
		return v.defLedger()
	}
	return nil
}

// Disposed returns a closure summing, across all shard ledgers, the
// frees whose terminal stage was any of stages — the RHS terms of
// conservation balances.
func (a *Auditor) Disposed(stages ...string) func() uint64 {
	return func() uint64 {
		var n uint64
		for _, l := range a.ledgers {
			for _, st := range stages {
				n += l.disposed[st]
			}
		}
		return n
	}
}

// CreatedAt returns a closure summing, across all shard ledgers, the
// allocations at the given sites — the LHS "injected" terms of
// conservation balances.
func (a *Auditor) CreatedAt(sites ...string) func() uint64 {
	return func() uint64 {
		var n uint64
		for _, l := range a.ledgers {
			for _, s := range sites {
				n += l.sites[s]
			}
		}
		return n
	}
}
