package audit

import (
	"fmt"
	"strings"

	"falcon/internal/sim"
	"falcon/internal/skb"
)

// historyDepth is the per-SKB stage ring: the last historyDepth stages
// an SKB visited, enough to reconstruct a full datapath traversal
// (tx → wire → nic-ring → napi-poll → backlog → decap → bridge →
// sock-queue → delivered is 9 hops).
const historyDepth = 16

// record is the ledger entry for one SKB incarnation (one Get..Free
// span). Records are pooled; a fixed ring of recently freed records is
// retained so double-free and stale-free violations can report the
// victim's full stage history.
type record struct {
	seq    uint64 // allocation sequence number, 1-based
	gen    uint32 // skb generation at allocation
	site   string // allocation site ("tx:fast", "tx:frag", ...)
	at     sim.Time
	freeAt sim.Time
	n      int // stages recorded (may exceed historyDepth)
	stages [historyDepth]string
	times  [historyDepth]sim.Time
}

func (r *record) push(stage string, at sim.Time) {
	r.stages[r.n%historyDepth] = stage
	r.times[r.n%historyDepth] = at
	r.n++
}

func (r *record) last() string {
	if r.n == 0 {
		return r.site
	}
	return r.stages[(r.n-1)%historyDepth]
}

// history renders the stage trail oldest-first; a truncated ring is
// prefixed with the count of elided stages.
func (r *record) history() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%v", r.site, r.at)
	start, elided := 0, 0
	if r.n > historyDepth {
		start = r.n - historyDepth
		elided = start
	}
	if elided > 0 {
		fmt.Fprintf(&b, " ..(%d elided)..", elided)
	}
	for i := start; i < r.n; i++ {
		fmt.Fprintf(&b, " -> %s@%v", r.stages[i%historyDepth], r.times[i%historyDepth])
	}
	return b.String()
}

func (a *Auditor) getRecord() *record {
	if n := len(a.freeRecs); n > 0 {
		r := a.freeRecs[n-1]
		a.freeRecs = a.freeRecs[:n-1]
		*r = record{}
		return r
	}
	return &record{}
}

// retire moves a freed record into the recently-freed ring, recycling
// whatever it displaces.
func (a *Auditor) retire(r *record) {
	if a.recent == nil {
		a.recent = make([]*record, a.cfg.RingSize)
	}
	if old := a.recent[a.recentAt]; old != nil {
		a.freeRecs = append(a.freeRecs, old)
	}
	a.recent[a.recentAt] = r
	a.recentAt = (a.recentAt + 1) % len(a.recent)
}

// recentFor finds the newest retired record for s (by pointer identity
// and generation), for misuse attribution.
func (a *Auditor) recentFor(s *skb.SKB) *record {
	if a.recent == nil {
		return nil
	}
	n := len(a.recent)
	for i := 1; i <= n; i++ {
		r := a.recent[(a.recentAt-i+n)%n]
		if r == nil {
			return nil
		}
		if r.gen == s.Gen()-1 || r.gen == s.Gen() {
			if _, live := a.live[s]; !live {
				return r
			}
		}
	}
	return nil
}

// SKBGet implements skb.Auditor: a fresh SKB entered the datapath.
func (a *Auditor) SKBGet(s *skb.SKB, site string) {
	if prev, ok := a.live[s]; ok {
		a.violate("ledger", "skb#%d re-issued while live (alloc %q at %v); history: %s",
			prev.seq, prev.site, prev.at, prev.history())
		delete(a.live, s)
		a.freedCnt++ // keep created == freed + live coherent in collect mode
	}
	a.seq++
	a.created++
	r := a.getRecord()
	r.seq, r.gen, r.site, r.at = a.seq, s.Gen(), site, a.E.Now()
	a.live[s] = r
	a.sites[site]++
	a.trace('G', site, r.seq, s.Gen())
}

// SKBStage implements skb.Auditor: a live SKB crossed a device stage.
func (a *Auditor) SKBStage(s *skb.SKB, stage string) {
	r, ok := a.live[s]
	if !ok {
		a.violate("use-after-free", "stage %q on untracked/freed skb (gen %d)", stage, s.Gen())
		return
	}
	r.push(stage, a.E.Now())
	a.trace('S', stage, r.seq, s.Gen())
}

// SKBFree implements skb.Auditor: a live SKB left the datapath. Its
// last stamped stage becomes the disposition bucket the conservation
// balances count against.
func (a *Auditor) SKBFree(s *skb.SKB) {
	r, ok := a.live[s]
	if !ok {
		a.violate("double-free", "free of untracked skb (gen %d) — never issued or already freed", s.Gen())
		return
	}
	delete(a.live, s)
	a.freedCnt++
	r.freeAt = a.E.Now()
	a.disposed[r.last()]++
	a.trace('F', r.last(), r.seq, s.Gen())
	a.retire(r)
}

// SKBMisuse implements skb.Auditor: the pool itself rejected an
// operation (double-free or stale-generation free caught by skb.Free /
// Handle.Free). The retired record, if still in the ring, pins the
// misuse to the allocation site and full stage trail of the victim.
func (a *Auditor) SKBMisuse(s *skb.SKB, kind string) {
	a.trace('M', kind, 0, s.Gen())
	if r := a.recentFor(s); r != nil {
		a.violate(kind, "%s of skb#%d (alloc %q at %v, gen %d, freed at %v); history: %s",
			kind, r.seq, r.site, r.at, r.gen, r.freeAt, r.history())
		return
	}
	a.violate(kind, "%s of skb gen %d (record evicted from ring; raise Config.RingSize to retain history)",
		kind, s.Gen())
}

// Disposed returns a closure summing the frees whose terminal stage was
// any of stages — the RHS terms of conservation balances.
func (a *Auditor) Disposed(stages ...string) func() uint64 {
	return func() uint64 {
		var n uint64
		for _, st := range stages {
			n += a.disposed[st]
		}
		return n
	}
}

// CreatedAt returns a closure summing allocations at the given sites —
// the LHS "injected" terms of conservation balances.
func (a *Auditor) CreatedAt(sites ...string) func() uint64 {
	return func() uint64 {
		var n uint64
		for _, s := range sites {
			n += a.sites[s]
		}
		return n
	}
}
