package socket

import (
	"testing"

	"falcon/internal/costmodel"
	"falcon/internal/cpu"
	"falcon/internal/sim"
	"falcon/internal/skb"
)

func newSock(cores, appCore int) (*sim.Engine, *cpu.Machine, *Socket) {
	e := sim.New(1)
	m := cpu.NewMachine(e, costmodel.Kernel419(), cores, sim.Millisecond)
	return e, m, New(m, appCore)
}

func pkt(flow, seq uint64, n int) *skb.SKB {
	s := skb.New(make([]byte, n))
	s.FlowID = flow
	s.Seq = seq
	return s
}

func TestDeliverAndConsume(t *testing.T) {
	e, m, sk := newSock(2, 1)
	s := pkt(1, 1, 100)
	s.WireTime = 0
	if !sk.Deliver(m.Core(0), s) {
		t.Fatal("deliver failed")
	}
	e.Run()
	if sk.Delivered.Value() != 1 {
		t.Fatalf("delivered = %d", sk.Delivered.Value())
	}
	if sk.Bytes.Value() != 100 {
		t.Fatalf("bytes = %d", sk.Bytes.Value())
	}
	if sk.Latency.Count() != 1 || sk.Latency.Max() <= 0 {
		t.Fatal("latency not recorded")
	}
	// s is owned (and recycled) by the socket once consumed; the recorded
	// latency above is the observable proof the timestamp was set.
}

func TestConsumeRunsOnAppCore(t *testing.T) {
	e, m, sk := newSock(2, 1)
	sk.Deliver(m.Core(0), pkt(1, 1, 64))
	e.Run()
	if m.Acct.TotalBusy(1) == 0 {
		t.Fatal("app core did no work")
	}
}

func TestGROSegsCountedIndividually(t *testing.T) {
	e, m, sk := newSock(1, 0)
	s := pkt(1, 5, 3000)
	s.Segs = 3
	sk.Deliver(m.Core(0), s)
	e.Run()
	if sk.Delivered.Value() != 3 {
		t.Fatalf("delivered = %d, want 3 (GRO segments)", sk.Delivered.Value())
	}
	if sk.Latency.Count() != 3 {
		t.Fatalf("latency samples = %d, want 3", sk.Latency.Count())
	}
}

func TestSocketDropWhenFull(t *testing.T) {
	e, m, sk := newSock(1, 0)
	// Stuff more packets than the buffer holds before the app can run.
	for i := 0; i < DefaultRcvBuf+100; i++ {
		sk.Deliver(m.Core(0), pkt(1, uint64(i), 16))
	}
	if sk.SocketDrops.Value() == 0 {
		t.Fatal("no socket drops despite overflow")
	}
	e.Run()
	if sk.Delivered.Value() == 0 {
		t.Fatal("nothing consumed")
	}
}

func TestOrderViolationDetected(t *testing.T) {
	e, m, sk := newSock(1, 0)
	sk.Deliver(m.Core(0), pkt(7, 2, 16))
	sk.Deliver(m.Core(0), pkt(7, 1, 16)) // out of order
	sk.Deliver(m.Core(0), pkt(7, 3, 16))
	e.Run()
	if sk.OrderViols != 1 {
		t.Fatalf("order violations = %d, want 1", sk.OrderViols)
	}
}

func TestInOrderNoViolations(t *testing.T) {
	e, m, sk := newSock(1, 0)
	for i := uint64(1); i <= 50; i++ {
		sk.Deliver(m.Core(0), pkt(3, i, 16))
	}
	e.Run()
	if sk.OrderViols != 0 {
		t.Fatalf("order violations = %d", sk.OrderViols)
	}
}

func TestMigratedPacketCostsMore(t *testing.T) {
	run := func(migrations bool) sim.Time {
		e, m, sk := newSock(4, 0)
		s := pkt(1, 1, 64)
		if migrations {
			s.LastCore = 1
			s.Migrations = 2
		} else {
			s.LastCore = 0
		}
		sk.Deliver(m.Core(0), s)
		e.Run()
		return e.Now()
	}
	cold := run(true)
	warm := run(false)
	if cold <= warm {
		t.Fatalf("migrated packet not slower: cold=%v warm=%v", cold, warm)
	}
}

func TestOnDeliverCallback(t *testing.T) {
	e, m, sk := newSock(1, 0)
	var got []uint64
	sk.OnDeliver = func(s *skb.SKB) { got = append(got, s.Seq) }
	sk.Deliver(m.Core(0), pkt(1, 11, 16))
	sk.Deliver(m.Core(0), pkt(1, 12, 16))
	e.Run()
	if len(got) != 2 || got[0] != 11 || got[1] != 12 {
		t.Fatalf("callback order: %v", got)
	}
}

func TestAppWorkExtendsProcessing(t *testing.T) {
	runWith := func(extra sim.Time) sim.Time {
		e, m, sk := newSock(1, 0)
		sk.AppWork = extra
		sk.Deliver(m.Core(0), pkt(1, 1, 16))
		e.Run()
		return e.Now()
	}
	if runWith(10*sim.Microsecond)-runWith(0) != 10*sim.Microsecond {
		t.Fatal("AppWork not applied")
	}
}

func TestResetMeasurement(t *testing.T) {
	e, m, sk := newSock(1, 0)
	sk.Deliver(m.Core(0), pkt(1, 1, 16))
	e.Run()
	sk.ResetMeasurement()
	if sk.Delivered.Value() != 0 || sk.Latency.Count() != 0 || sk.Bytes.Value() != 0 {
		t.Fatal("reset incomplete")
	}
	// Order state survives reset.
	sk.Deliver(m.Core(0), pkt(1, 1, 16)) // duplicate seq
	e.Run()
	if sk.OrderViols != 1 {
		t.Fatal("order state lost across reset")
	}
}
