// Package socket models the top of the receive path: per-socket receive
// queues with rmem limits, the user-space copy, application wakeups, and
// the delivery-order and latency instrumentation the experiments read.
// It is where the paper's "core-2" bottleneck lives: copying received
// packets to user space and running the application thread, which bounds
// both host and Falcon throughput in the single-flow UDP stress test
// (Fig. 11).
package socket

import (
	"falcon/internal/costmodel"
	"falcon/internal/cpu"
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/stats"
)

// DefaultRcvBuf is the receive queue limit in packets (a stand-in for
// net.core.rmem_default's byte budget).
const DefaultRcvBuf = 1024

// Socket is a receiving endpoint bound to an application thread pinned
// on one core.
type Socket struct {
	m *cpu.Machine

	// AppCore is the core the consuming application thread runs on.
	AppCore int
	// AppWork is extra per-message application processing beyond the
	// model's base app cost (0 for sink-style benchmarks).
	AppWork sim.Time
	// OnDeliver, if non-nil, runs in task context when the application
	// consumes a message (used by memcached/web servers to respond).
	OnDeliver func(s *skb.SKB)

	rcvQ      *skb.Queue
	appActive bool

	// cur is the message currently being copied/processed by the app
	// thread; copyDone/workDone are the cached consume-loop continuations
	// (built once in New) so steady-state consumption allocates nothing.
	cur      *skb.SKB
	copyDone func()
	workDone func()

	// Measurements.
	Latency     *stats.Histogram // wire-to-application per original packet
	Delivered   stats.Counter    // original packets (GRO segments) consumed
	Bytes       stats.Counter    // payload bytes consumed
	SocketDrops stats.Counter    // packets rejected by a full receive queue
	// Consumed counts skbs (not GRO-expanded segments) handed to the
	// application — the audit ledger's unit. Unlike Delivered it is
	// never reset mid-run: conservation balances compare deltas.
	Consumed stats.Counter

	// Order verification: highest Seq consumed per FlowID.
	lastSeq    map[uint64]uint64
	OrderViols uint64
}

// New returns a socket on machine m consumed by a thread on appCore.
func New(m *cpu.Machine, appCore int) *Socket {
	sk := &Socket{
		m:       m,
		AppCore: appCore,
		rcvQ:    skb.NewQueue(DefaultRcvBuf),
		Latency: stats.NewHistogram(),
		lastSeq: make(map[uint64]uint64),
	}
	core := m.Core(appCore)
	sk.copyDone = func() {
		work := sk.m.Model.Cost(costmodel.FnAppWork, 0) + sk.AppWork
		core.Submit(stats.CtxTask, costmodel.FnAppWork, work, sk.workDone)
	}
	sk.workDone = func() {
		s := sk.cur
		sk.cur = nil
		sk.account(s)
		if sk.OnDeliver != nil {
			sk.OnDeliver(s)
		}
		s.Stage("delivered")
		s.Free()
		sk.consumeNext()
	}
	return sk
}

// QueueLen returns the current receive-queue depth.
func (sk *Socket) QueueLen() int { return sk.rcvQ.Len() }

// RcvQueue exposes the receive queue for audit registration.
func (sk *Socket) RcvQueue() *skb.Queue { return sk.rcvQ }

// Deliver is called from softirq context (on core c) when the protocol
// stack hands a packet to the socket. It charges the socket-delivery
// cost, enqueues, and wakes the application thread. It reports false on
// a full receive queue (packet dropped).
func (sk *Socket) Deliver(c *cpu.Core, s *skb.SKB) bool {
	if !sk.rcvQ.Enqueue(s) {
		sk.SocketDrops.Inc()
		s.Stage("drop:sock-overflow")
		s.Free()
		return false
	}
	s.Stage("sock-queue")
	sk.wakeApp(c)
	return true
}

// wakeApp schedules the application consume loop on the app core. A
// cross-core wakeup from softirq context is what the RES rescheduling
// IPIs in the paper's Fig. 4 are.
func (sk *Socket) wakeApp(c *cpu.Core) {
	if sk.appActive {
		return
	}
	sk.appActive = true
	if c != nil && c.ID() != sk.AppCore {
		sk.m.IRQ.Inc(sk.AppCore, stats.IRQRES)
	}
	sk.consumeNext()
}

// consumeNext runs one recvmsg iteration: copy one message to user space
// and do the application's per-message work, then loop while the queue
// is non-empty.
func (sk *Socket) consumeNext() {
	s := sk.rcvQ.Dequeue()
	if s == nil {
		sk.appActive = false
		return
	}
	core := sk.m.Core(sk.AppCore)
	copyCost := sk.m.Model.Cost(costmodel.FnUserCopy, s.Len())
	if s.Touch(sk.AppCore) {
		// Cache-cold packet: the locality penalty scales with how many
		// cores handled the packet before the copy (paper Section 6.3).
		copyCost += sim.Time(s.Migrations) * sk.m.Model.Migration()
	}
	sk.cur = s
	core.Submit(stats.CtxTask, costmodel.FnUserCopy, copyCost, sk.copyDone)
}

func (sk *Socket) account(s *skb.SKB) {
	now := sk.m.E.Now()
	s.Delivered = now
	// End-to-end latency origin: the sender's SendUDP/SendTCP entry when
	// stamped (counts sender-side CPU queueing and tx-path stalls), else
	// the NIC wire-out time for frames injected below the overlay API.
	origin := s.WireTime
	if s.SendTime != 0 {
		origin = s.SendTime
	}
	lat := int64(now - origin)
	segs := s.Segs
	if segs < 1 {
		segs = 1
	}
	for i := 0; i < segs; i++ {
		sk.Latency.Record(lat)
	}
	sk.Delivered.Add(uint64(segs))
	sk.Consumed.Inc()
	sk.Bytes.Add(uint64(s.Len()))
	if last, ok := sk.lastSeq[s.FlowID]; ok && s.Seq <= last {
		sk.OrderViols++
	}
	sk.lastSeq[s.FlowID] = s.Seq
}

// ResetMeasurement clears counters and histograms (keeps order state so
// cross-window ordering is still verified).
func (sk *Socket) ResetMeasurement() {
	sk.Latency.Reset()
	sk.Delivered.Reset()
	sk.Bytes.Reset()
	sk.SocketDrops.Reset()
}
