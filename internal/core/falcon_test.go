package core

import (
	"testing"

	"falcon/internal/costmodel"
	"falcon/internal/cpu"
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/stats"
)

func newFalcon(cores int, cfg Config) (*sim.Engine, *cpu.Machine, *Falcon) {
	e := sim.New(1)
	m := cpu.NewMachine(e, costmodel.Kernel419(), cores, sim.Millisecond)
	f := New(m, cfg)
	return e, m, f
}

func testSKB(flow uint16) *skb.SKB {
	s := skb.New(nil)
	s.Hash = skb.FlowKey{SrcPort: flow, DstPort: 80, Proto: 17}.Hash()
	s.HashValid = true
	return s
}

func TestDisabledWithoutCPUs(t *testing.T) {
	_, _, f := newFalcon(4, Config{})
	if f.Enabled() {
		t.Fatal("falcon enabled with no CPUs")
	}
	if _, ok := f.GetCPU(testSKB(1), 1); ok {
		t.Fatal("placement succeeded with no CPUs")
	}
}

func TestStagesMapToDistinctCores(t *testing.T) {
	// The core property (Section 4.1): the same flow at different
	// devices should generally land on different cores.
	_, _, f := newFalcon(8, DefaultConfig([]int{0, 1, 2, 3, 4, 5, 6, 7}))
	s := testSKB(42)
	c1, ok1 := f.GetCPU(s, 1) // pNIC
	c2, ok2 := f.GetCPU(s, 2) // VXLAN
	c3, ok3 := f.GetCPU(s, 3) // veth
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("placement failed")
	}
	distinct := map[int]bool{c1: true, c2: true, c3: true}
	if len(distinct) < 2 {
		t.Fatalf("all stages on one core (%d); device hash ineffective", c1)
	}
}

func TestSameStageSameCore(t *testing.T) {
	// In-order guarantee: same flow + same device is always the same
	// core (when the first choice is not overloaded).
	_, _, f := newFalcon(8, DefaultConfig([]int{0, 1, 2, 3, 4, 5, 6, 7}))
	s := testSKB(7)
	c0, _ := f.GetCPU(s, 2)
	for i := 0; i < 100; i++ {
		if c, _ := f.GetCPU(s, 2); c != c0 {
			t.Fatal("placement not stable for same flow+device")
		}
	}
}

func TestPlacementWithinCPUSet(t *testing.T) {
	set := []int{2, 5, 7}
	_, _, f := newFalcon(8, DefaultConfig(set))
	allowed := map[int]bool{2: true, 5: true, 7: true}
	for flow := uint16(0); flow < 200; flow++ {
		for dev := 1; dev <= 3; dev++ {
			if c, ok := f.GetCPU(testSKB(flow), dev); ok && !allowed[c] {
				t.Fatalf("placed on core %d outside FALCON_CPUS", c)
			}
		}
	}
}

func TestLoadGateDisables(t *testing.T) {
	e, m, f := newFalcon(2, DefaultConfig([]int{0, 1}))
	m.StartTicker()
	// Saturate both cores so L_avg exceeds the threshold.
	var feed func(c int) func()
	feed = func(c int) func() {
		return func() {
			if e.Now() < 20*sim.Millisecond {
				m.Core(c).Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 500*sim.Microsecond, feed(c))
			}
		}
	}
	feed(0)()
	feed(1)()
	e.RunUntil(20 * sim.Millisecond)
	m.StopTicker()
	if f.LAvg() < 0.9 {
		t.Fatalf("lavg = %v, want ~1", f.LAvg())
	}
	if f.Enabled() {
		t.Fatal("falcon enabled on an overloaded system")
	}
	if _, ok := f.GetCPU(testSKB(1), 1); ok {
		t.Fatal("placement served while gated off")
	}
	_, _, gated := f.Stats()
	if gated == 0 {
		t.Fatal("gate diagnostics not counted")
	}
}

func TestAlwaysOnIgnoresGate(t *testing.T) {
	cfg := DefaultConfig([]int{0, 1})
	cfg.AlwaysOn = true
	e, m, f := newFalcon(2, cfg)
	m.StartTicker()
	var feed func(c int) func()
	feed = func(c int) func() {
		return func() {
			if e.Now() < 10*sim.Millisecond {
				m.Core(c).Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 500*sim.Microsecond, feed(c))
			}
		}
	}
	feed(0)()
	feed(1)()
	e.RunUntil(10 * sim.Millisecond)
	m.StopTicker()
	if !f.Enabled() {
		t.Fatal("always-on falcon disabled under load")
	}
}

func TestTwoChoiceAvoidsHotCore(t *testing.T) {
	e, m, f := newFalcon(4, DefaultConfig([]int{0, 1, 2, 3}))
	m.StartTicker()

	// Find which core flow 9/device 1 maps to, then saturate only it.
	s := testSKB(9)
	hot, _ := f.GetCPU(s, 1)

	var feed func()
	feed = func() {
		if e.Now() < 10*sim.Millisecond {
			m.Core(hot).Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 200*sim.Microsecond, feed)
		}
	}
	feed()
	e.RunUntil(10 * sim.Millisecond)
	m.StopTicker()

	// L_avg is ~0.25 (one of four cores busy): falcon stays enabled, but
	// the first choice is hot, so the second choice must divert.
	if !f.Enabled() {
		t.Fatalf("falcon should remain enabled, lavg=%v", f.LAvg())
	}
	got, ok := f.GetCPU(s, 1)
	if !ok {
		t.Fatal("placement failed")
	}
	if got == hot {
		t.Fatalf("two-choice kept the hot core %d", hot)
	}
	_, second, _ := f.Stats()
	if second == 0 {
		t.Fatal("second-choice counter not incremented")
	}
}

func TestStaticBalancerSticksToHotCore(t *testing.T) {
	cfg := DefaultConfig([]int{0, 1, 2, 3})
	cfg.TwoChoice = false // the "static" variant of Fig. 16
	e, m, f := newFalcon(4, cfg)
	m.StartTicker()
	s := testSKB(9)
	hot, _ := f.GetCPU(s, 1)
	var feed func()
	feed = func() {
		if e.Now() < 10*sim.Millisecond {
			m.Core(hot).Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 200*sim.Microsecond, feed)
		}
	}
	feed()
	e.RunUntil(10 * sim.Millisecond)
	m.StopTicker()
	if got, _ := f.GetCPU(s, 1); got != hot {
		t.Fatal("static balancer should not divert from hot core")
	}
}

func TestUpdateEveryThrottlesLavg(t *testing.T) {
	cfg := DefaultConfig([]int{0})
	cfg.UpdateEvery = 5
	e, m, f := newFalcon(1, cfg)
	m.StartTicker()
	var feed func()
	feed = func() {
		if e.Now() < 4*sim.Millisecond {
			m.Core(0).Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 500*sim.Microsecond, feed)
		}
	}
	feed()
	// After 4 ticks (ticks at 1ms), L_avg must not have refreshed yet.
	e.RunUntil(4*sim.Millisecond + 1)
	if f.LAvg() != 0 {
		t.Fatalf("lavg refreshed early: %v", f.LAvg())
	}
	e.RunUntil(6 * sim.Millisecond)
	m.StopTicker()
	if f.LAvg() == 0 {
		t.Fatal("lavg never refreshed")
	}
}

func TestDefaultThresholdApplied(t *testing.T) {
	_, _, f := newFalcon(1, Config{CPUs: []int{0}})
	if f.Config().LoadThreshold != DefaultLoadThreshold {
		t.Fatalf("threshold = %v", f.Config().LoadThreshold)
	}
	if f.String() == "" {
		t.Fatal("empty string form")
	}
}

func TestPlacementSpreadsAcrossCPUSet(t *testing.T) {
	_, _, f := newFalcon(8, DefaultConfig([]int{0, 1, 2, 3, 4, 5, 6, 7}))
	seen := map[int]int{}
	for flow := uint16(0); flow < 400; flow++ {
		c, ok := f.GetCPU(testSKB(flow), 2)
		if !ok {
			t.Fatal("placement failed")
		}
		seen[c]++
	}
	if len(seen) != 8 {
		t.Fatalf("placements hit %d cores, want 8", len(seen))
	}
	for c, n := range seen {
		if n < 20 || n > 90 {
			t.Fatalf("core %d skewed: %d placements", c, n)
		}
	}
}

func TestLeastLoadedBalancerHerdsAndUnpins(t *testing.T) {
	cfg := DefaultConfig([]int{0, 1, 2, 3})
	cfg.LeastLoaded = true
	e, m, f := newFalcon(4, cfg)
	m.StartTicker()
	// With all loads equal (zero), every placement herds onto the same
	// (first) core regardless of flow or device — no hashing spread.
	for flow := uint16(0); flow < 50; flow++ {
		for dev := 1; dev <= 3; dev++ {
			if c, ok := f.GetCPU(testSKB(flow), dev); !ok || c != 0 {
				t.Fatalf("least-loaded did not herd: core %d", c)
			}
		}
	}
	// Load up core 0; after a tick the herd moves wholesale to another
	// core (the fluctuation the paper describes).
	var feed func()
	feed = func() {
		if e.Now() < 3*sim.Millisecond {
			m.Core(0).Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 500*sim.Microsecond, feed)
		}
	}
	feed()
	e.RunUntil(3 * sim.Millisecond)
	m.StopTicker()
	c, ok := f.GetCPU(testSKB(1), 1)
	if !ok || c == 0 {
		t.Fatalf("herd did not move off the hot core: core %d", c)
	}
	// Same flow+device now maps to a different core than before: the
	// in-order pin is gone.
	if c2, _ := f.GetCPU(testSKB(1), 1); c2 != c {
		t.Fatal("inconsistent within a tick")
	}
}
