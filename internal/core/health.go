package core

import (
	"falcon/internal/sim"
	"falcon/internal/stats"
)

// Health-tracking defaults. Detection is deliberately asymmetric:
// blacklisting fast bounds the packets parked behind a wedged core,
// while reinstating slowly prevents a flapping core from oscillating
// placement (the hysteresis the two-choice balancer needs to stay
// stable).
const (
	// DefaultSickAfter is how many consecutive sick ticks blacklist a
	// core.
	DefaultSickAfter = 2
	// DefaultWellAfter is how many consecutive healthy ticks reinstate
	// a blacklisted core.
	DefaultWellAfter = 4
	// DefaultMinHealthy is the healthy-set floor: fewer healthy
	// FALCON_CPUS than this and Falcon declines placement, falling back
	// to the vanilla same-core path.
	DefaultMinHealthy = 2
)

// HealthConfig tunes the per-core health tracker.
type HealthConfig struct {
	// Disabled turns tracking off entirely (every core permanently
	// healthy), the pre-chaos behaviour.
	Disabled bool
	// SickAfter / WellAfter are the hysteresis streak lengths in timer
	// ticks (0 → defaults).
	SickAfter, WellAfter int
	// MinHealthy is the healthy-set floor (0 → default).
	MinHealthy int
}

func (h HealthConfig) withDefaults() HealthConfig {
	if h.SickAfter == 0 {
		h.SickAfter = DefaultSickAfter
	}
	if h.WellAfter == 0 {
		h.WellAfter = DefaultWellAfter
	}
	if h.MinHealthy == 0 {
		h.MinHealthy = DefaultMinHealthy
	}
	return h
}

// coreHealth is one FALCON_CPU's tracker state.
type coreHealth struct {
	sick       bool
	sickStreak int
	wellStreak int
	lastBusy   int64 // Acct.TotalBusy at the previous tick
}

func (f *Falcon) initHealth() {
	f.health = make([]coreHealth, len(f.cfg.CPUs))
	f.healthy = append([]int(nil), f.cfg.CPUs...)
}

// isHealthy reports whether a FALCON_CPU is currently in the healthy
// set. Non-FALCON cores are never consulted.
func (f *Falcon) isHealthy(core int) bool {
	for i, c := range f.cfg.CPUs {
		if c == core {
			return !f.health[i].sick
		}
	}
	return true
}

// HealthyCPUs returns the current healthy subset of FALCON_CPUS (in
// configuration order).
func (f *Falcon) HealthyCPUs() []int { return f.healthy }

// Degraded reports whether the healthy set is below the floor (Falcon
// is declining placement and the datapath runs vanilla).
func (f *Falcon) Degraded() bool { return f.degraded }

// updateHealth runs on every timer tick: it classifies each FALCON_CPU
// as sick or healthy with hysteresis, rebuilds the healthy set, and
// accounts degraded-mode time. A core is sick when it is offlined
// (visible hotplug state) or when it has queued work but made no
// execution progress since the previous tick — the soft-lockup
// watchdog's signal. The scan only reads existing accounting, schedules
// nothing, and draws no randomness, so it cannot perturb a healthy run.
func (f *Falcon) updateHealth(now sim.Time) {
	if f.cfg.Health.Disabled || len(f.cfg.CPUs) == 0 {
		return
	}
	changed := false
	for i, id := range f.cfg.CPUs {
		c := f.m.Core(id)
		h := &f.health[i]
		busy := f.m.Acct.TotalBusy(id)
		// A measurement reset rewinds the account; treat any change —
		// forward or backward — as progress.
		progressed := busy != h.lastBusy
		h.lastBusy = busy
		queued := c.QueueLen(stats.CtxHardIRQ) +
			c.QueueLen(stats.CtxSoftIRQ) +
			c.QueueLen(stats.CtxTask)
		sickSignal := c.Offline() || (queued > 0 && !progressed)
		if sickSignal {
			h.wellStreak = 0
			h.sickStreak++
			// Offlining is an explicit notification: blacklist at once.
			if !h.sick && (c.Offline() || h.sickStreak >= f.cfg.Health.SickAfter) {
				h.sick = true
				changed = true
			}
		} else {
			h.sickStreak = 0
			h.wellStreak++
			if h.sick && h.wellStreak >= f.cfg.Health.WellAfter {
				h.sick = false
				changed = true
			}
		}
	}
	if changed {
		f.healthy = f.healthy[:0]
		for i, id := range f.cfg.CPUs {
			if !f.health[i].sick {
				f.healthy = append(f.healthy, id)
			}
		}
	}
	below := len(f.healthy) < f.cfg.Health.MinHealthy
	switch {
	case below && !f.degraded:
		f.degraded = true
		f.degradedSince = now
	case !below && f.degraded:
		f.degraded = false
		f.Faults.DegradedNs.Add(uint64(now - f.degradedSince))
	}
}
