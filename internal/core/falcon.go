// Package core implements Falcon — the paper's contribution: fast and
// balanced container networking via software-interrupt pipelining,
// splitting, and dynamic two-choice balancing (Sections 4 and 5,
// Algorithm 1).
//
// Falcon's key idea: the overlay receive path runs three softirqs per
// packet (pNIC, VXLAN, veth). RPS hashes only the flow key, so all three
// land on one core and serialize. Falcon mixes the *device index* into
// the hash (hash_32(skb.hash + ifindex)), giving each stage of the same
// flow its own core while keeping each stage pinned (in-order delivery
// per device). A load-threshold gate disables Falcon when there are no
// idle cycles to exploit, and a two-choice rehash steers softirqs away
// from transiently hot cores without load-tracking churn.
package core

import (
	"fmt"

	"falcon/internal/cpu"
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/stats"
)

// DefaultLoadThreshold is FALCON_LOAD_THRESHOLD: the paper's sensitivity
// study (Fig. 15) finds 80–90% performs best; we default to 85%.
const DefaultLoadThreshold = 0.85

// Config selects Falcon's features. The zero value is "everything off";
// use DefaultConfig for the paper's full system.
type Config struct {
	// CPUs is FALCON_CPUS: the set of cores eligible to run pipelined
	// softirqs. Empty disables Falcon entirely.
	CPUs []int

	// LoadThreshold is FALCON_LOAD_THRESHOLD for both the global enable
	// gate (Algorithm 1 line 6) and the per-core first-choice busy test
	// (line 21). Zero means DefaultLoadThreshold.
	LoadThreshold float64

	// AlwaysOn bypasses the L_avg gate (the "always-on" configuration
	// of the paper's Fig. 15 sensitivity study).
	AlwaysOn bool

	// TwoChoice enables the second hashed choice when the first core is
	// busy. Disabling it yields the "static" balancer of Fig. 16.
	TwoChoice bool

	// LeastLoaded replaces hashing entirely with per-packet least-loaded
	// CPU selection — the aggressive strategy the paper rejects
	// (Section 4.3): stale per-tick load makes packets herd onto one
	// core between refreshes, and ignoring the flow/device pin breaks
	// in-order delivery. Kept as an ablation.
	LeastLoaded bool

	// GROSplit enables softirq splitting of the pNIC stage: skb
	// allocation stays on the NAPI core while napi_gro_receive and
	// everything after move to a Falcon core (Section 4.2).
	GROSplit bool

	// UpdateEvery sets how many timer ticks pass between L_avg
	// refreshes (the paper updates "every N timer interrupts").
	// Zero means every tick.
	UpdateEvery int

	// Health configures the per-core health tracker (health.go). The
	// zero value enables tracking with defaults; tracking is passive
	// (tick-driven reads of existing accounting) and changes placement
	// only when a core actually sickens.
	Health HealthConfig
}

// DefaultConfig returns the full Falcon configuration over the given
// cores.
func DefaultConfig(cpus []int) Config {
	return Config{
		CPUs:          cpus,
		LoadThreshold: DefaultLoadThreshold,
		TwoChoice:     true,
		GROSplit:      true,
	}
}

// Falcon is one host's Falcon instance.
type Falcon struct {
	cfg Config
	m   *cpu.Machine

	lavg      float64
	tickCount int

	// Dynamic GRO-split controller state (dynsplit.go).
	dynEnabled bool
	dynActive  bool
	dynWatch   []*dynSplitState

	// Per-core health tracking (health.go).
	health        []coreHealth
	healthy       []int // healthy subset of cfg.CPUs, in cfg order
	degraded      bool
	degradedSince sim.Time

	// Faults makes degradation observable: reroutes off sick cores,
	// below-floor fallbacks, time spent degraded.
	Faults stats.FaultCounters

	// Diagnostics.
	firstChoice  uint64 // placements served by the first hash
	secondChoice uint64 // placements that needed the double hash
	gatedOff     uint64 // placements declined because L_avg was high
}

// New attaches Falcon to machine m and registers its periodic L_avg
// refresh on the machine's timer tick.
func New(m *cpu.Machine, cfg Config) *Falcon {
	if cfg.LoadThreshold == 0 {
		cfg.LoadThreshold = DefaultLoadThreshold
	}
	cfg.Health = cfg.Health.withDefaults()
	f := &Falcon{cfg: cfg, m: m}
	f.initHealth()
	m.OnTick(func(now sim.Time) {
		f.tickCount++
		if cfg.UpdateEvery <= 1 || f.tickCount%cfg.UpdateEvery == 0 {
			f.lavg = f.falconLoad()
		}
		f.updateHealth(now)
	})
	return f
}

// falconLoad averages the load of the FALCON_CPUS — the cores whose
// spare cycles parallelization would consume. (Measuring over every
// core would dilute the signal on large machines where most cores never
// process packets, and the gate would never trigger.)
func (f *Falcon) falconLoad() float64 {
	if len(f.cfg.CPUs) == 0 {
		return f.m.Load.SystemAvg()
	}
	s := 0.0
	for _, c := range f.cfg.CPUs {
		s += f.m.Load.Load(c)
	}
	return s / float64(len(f.cfg.CPUs))
}

// Config returns the active configuration.
func (f *Falcon) Config() Config { return f.cfg }

// LAvg returns the current (periodically refreshed) system load average.
func (f *Falcon) LAvg() float64 { return f.lavg }

// Enabled implements Algorithm 1 line 6: Falcon parallelizes only while
// the system has room (L_avg below the threshold), unless AlwaysOn.
func (f *Falcon) Enabled() bool {
	if len(f.cfg.CPUs) == 0 {
		return false
	}
	if f.cfg.AlwaysOn {
		return true
	}
	return f.lavg < f.cfg.LoadThreshold
}

// placementDefect, when non-nil, transforms the candidate CPU mask
// right before placement. It exists for the scenario fuzzer's
// self-tests: seeding a known steering defect (such as dropping a core
// from the mask) proves the oracle battery catches real bugs. Never
// set in production paths.
var placementDefect func(cpus []int) []int

// SeedPlacementDefect installs (or, with nil, clears) a deliberate
// placement-mask defect. Install before any engine runs and clear after
// — the hook is a plain global read on the placement hot path.
func SeedPlacementDefect(f func(cpus []int) []int) { placementDefect = f }

// GetCPU is get_falcon_cpu (Algorithm 1 lines 17–27): it returns the
// core that should process the next stage of s at device ifindex, and
// whether Falcon placement applies (false → caller keeps the original
// path, line 11). The first choice is the device-aware hash; if that
// core is above the load threshold and two-choice is enabled, a double
// hash picks the second choice, which is used regardless of its load
// (committing avoids the fluctuation of chasing the least-loaded core).
func (f *Falcon) GetCPU(s *skb.SKB, ifindex int) (int, bool) {
	if !f.Enabled() {
		f.gatedOff++
		return 0, false
	}
	cpus := f.cfg.CPUs
	if len(f.healthy) != len(cpus) {
		// Some FALCON_CPUS are blacklisted. Below the floor, decline
		// placement entirely: the caller keeps the vanilla same-core
		// path, which needs no healthy spare cores at all.
		if len(f.healthy) < f.cfg.Health.MinHealthy {
			f.Faults.Fallbacks.Inc()
			return 0, false
		}
		if first := cpus[int(skb.DeviceFlowHash(s.Hash, ifindex))%len(cpus)]; !f.isHealthy(first) {
			f.Faults.Rerouted.Inc()
		}
		cpus = f.healthy
	}
	if placementDefect != nil {
		cpus = placementDefect(cpus)
	}
	n := len(cpus)
	if f.cfg.LeastLoaded {
		best := cpus[0]
		bestLoad := f.m.Load.Load(best)
		for _, c := range cpus[1:] {
			if l := f.m.Load.Load(c); l < bestLoad {
				best, bestLoad = c, l
			}
		}
		f.firstChoice++
		return best, true
	}
	hash := skb.DeviceFlowHash(s.Hash, ifindex)
	cpu1 := cpus[int(hash)%n]
	if f.m.Load.Load(cpu1) < f.cfg.LoadThreshold || !f.cfg.TwoChoice {
		f.firstChoice++
		return cpu1, true
	}
	hash = skb.Hash32(hash)
	f.secondChoice++
	return cpus[int(hash)%n], true
}

// GROSplitOn reports whether softirq splitting of the pNIC stage should
// apply right now: the static configuration flag, or — when the dynamic
// controller is enabled — its runtime decision (it still only takes
// effect while Falcon is enabled).
func (f *Falcon) GROSplitOn() bool {
	if f.dynEnabled {
		return f.dynActive
	}
	return f.cfg.GROSplit
}

// Stats reports placement diagnostics: first-choice placements,
// second-choice (rehash) placements, and placements declined by the
// load gate.
func (f *Falcon) Stats() (first, second, gated uint64) {
	return f.firstChoice, f.secondChoice, f.gatedOff
}

// String summarizes the configuration.
func (f *Falcon) String() string {
	return fmt.Sprintf("falcon{cpus=%v thr=%.2f twoChoice=%v groSplit=%v alwaysOn=%v}",
		f.cfg.CPUs, f.cfg.LoadThreshold, f.cfg.TwoChoice, f.cfg.GROSplit, f.cfg.AlwaysOn)
}
