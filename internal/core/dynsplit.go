package core

import (
	"falcon/internal/costmodel"
	"falcon/internal/sim"
)

// Dynamic softirq splitting — the extension the paper leaves as future
// work (Section 6.4): the static GRO split must be chosen offline and
// "certain workloads may experience suboptimal performance under GRO
// splitting" when it does not apply. This implementation toggles the
// split at runtime from the same signals the paper's offline profiling
// used: the NAPI core's load and the share of its cycles spent in the
// split candidates (skb_allocation + napi_gro_receive, Fig. 9a).
//
// The controller samples per-core function time deltas on every load
// tick and applies hysteresis so the split does not flap: it engages
// when a watched core is saturated and the candidates dominate it, and
// disengages when the core has clear headroom.

// Dynamic-split thresholds.
const (
	// dynSplitOnLoad engages splitting when a NAPI core's load exceeds
	// this while the split candidates dominate its cycles.
	dynSplitOnLoad = 0.92
	// dynSplitOffLoad disengages below this (hysteresis band).
	dynSplitOffLoad = 0.70
	// dynSplitShare is the minimum fraction of the core's busy cycles
	// napi_gro_receive must contribute: splitting relocates GRO, so a
	// core saturated by anything else gains nothing from it.
	dynSplitShare = 0.30
)

// dynSplitState tracks one watched NAPI core.
type dynSplitState struct {
	core      int
	lastCand  int64 // candidate function ns at the previous tick
	lastTotal int64 // total busy ns at the previous tick
}

// EnableDynamicGROSplit turns on runtime control of GRO splitting over
// the given NAPI cores (the cores NIC queues are affined to). It
// overrides the static Config.GROSplit flag: splitting happens only
// while the controller deems it profitable.
func (f *Falcon) EnableDynamicGROSplit(napiCores []int) {
	f.dynEnabled = true
	f.dynActive = false
	for _, c := range napiCores {
		f.dynWatch = append(f.dynWatch, &dynSplitState{core: c})
	}
	f.m.OnTick(func(now sim.Time) { f.dynTick() })
}

// DynamicSplitActive reports whether the controller currently has the
// split engaged.
func (f *Falcon) DynamicSplitActive() bool { return f.dynActive }

// dynTick re-evaluates the split decision from the last tick window.
func (f *Falcon) dynTick() {
	engage := false
	clear := true
	for _, w := range f.dynWatch {
		cand := f.m.Prof.CoreTime(w.core, costmodel.FnGROReceive)
		total := f.m.Acct.TotalBusy(w.core)
		dCand := cand - w.lastCand
		dTotal := total - w.lastTotal
		// Profile resets (measurement windows) rewind the counters;
		// resynchronize without acting on garbage deltas.
		if dCand < 0 || dTotal < 0 {
			w.lastCand, w.lastTotal = cand, total
			continue
		}
		w.lastCand, w.lastTotal = cand, total

		load := f.m.Load.Load(w.core)
		share := 0.0
		if dTotal > 0 {
			share = float64(dCand) / float64(dTotal)
		}
		if load >= dynSplitOnLoad && share >= dynSplitShare {
			engage = true
		}
		if load >= dynSplitOffLoad {
			clear = false
		}
	}
	switch {
	case engage:
		f.dynActive = true
	case clear:
		f.dynActive = false
	}
}
