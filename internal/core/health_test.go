package core

import (
	"testing"

	"falcon/internal/costmodel"
	"falcon/internal/sim"
	"falcon/internal/stats"
)

// healthBed builds a machine with Falcon on cores 2..2+n-1 and a
// running ticker (health scans ride the timer tick).
func healthBed(n int) (*sim.Engine, *Falcon, []int) {
	cpus := make([]int, n)
	for i := range cpus {
		cpus[i] = 2 + i
	}
	e, m, f := newFalcon(2+n, DefaultConfig(cpus))
	m.StartTicker()
	return e, f, cpus
}

// wedge parks work on a core and freezes it, producing the queued-but-
// no-progress signal the tracker looks for.
func wedge(f *Falcon, core int) {
	c := f.m.Core(core)
	c.Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 100, nil)
	c.Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 100, nil)
	c.SetStalled(true)
}

func TestHealthBlacklistsStalledCoreWithHysteresis(t *testing.T) {
	e, f, cpus := healthBed(3)
	if len(f.HealthyCPUs()) != 3 {
		t.Fatal("not all cores healthy at start")
	}
	wedge(f, cpus[0])
	// Tick 1 still sees the pre-stall execution as progress, and a
	// single no-progress tick is below SickAfter (2): not blacklisted.
	e.RunUntil(2*sim.Millisecond + 1)
	if len(f.HealthyCPUs()) != 3 {
		t.Fatal("blacklisted before the sick streak completed")
	}
	e.RunUntil(3*sim.Millisecond + 1)
	if len(f.HealthyCPUs()) != 2 {
		t.Fatalf("healthy = %v after SickAfter ticks", f.HealthyCPUs())
	}
	if f.isHealthy(cpus[0]) {
		t.Fatal("wedged core still marked healthy")
	}
	if f.Degraded() {
		t.Fatal("degraded with 2 healthy cores (floor is 2)")
	}
}

func TestHealthReinstatesAfterWellStreak(t *testing.T) {
	e, f, cpus := healthBed(3)
	wedge(f, cpus[1])
	e.RunUntil(3 * sim.Millisecond)
	if len(f.HealthyCPUs()) != 2 {
		t.Fatalf("healthy = %v", f.HealthyCPUs())
	}
	f.m.Core(cpus[1]).SetStalled(false)
	// Reinstatement needs WellAfter (4) consecutive healthy ticks.
	e.RunUntil(5 * sim.Millisecond)
	if len(f.HealthyCPUs()) == 3 {
		t.Fatal("reinstated before the well streak completed")
	}
	e.RunUntil(10 * sim.Millisecond)
	if len(f.HealthyCPUs()) != 3 {
		t.Fatalf("healthy = %v after recovery", f.HealthyCPUs())
	}
	// Reinstatement preserves configuration order.
	for i, c := range f.HealthyCPUs() {
		if c != 2+i {
			t.Fatalf("healthy order %v", f.HealthyCPUs())
		}
	}
}

func TestHealthNoFlapUnderRepeatedStalls(t *testing.T) {
	// Back-to-back stall faults: the core recovers for two ticks (below
	// WellAfter = 4) and wedges again, five times in a row. The
	// hysteresis must hold the core blacklisted through the whole churn —
	// one transition out, zero flaps — and reinstate exactly once after
	// the faults genuinely stop.
	e, f, cpus := healthBed(3)
	target := cpus[0]
	wedge(f, target)
	e.RunUntil(3*sim.Millisecond + 1)
	if f.isHealthy(target) {
		t.Fatal("stalled core not blacklisted")
	}

	for k := 0; k < 5; k++ {
		at := sim.Time(4+4*k) * sim.Millisecond
		e.At(at+100*sim.Microsecond, func() { f.m.Core(target).SetStalled(false) })
		e.At(at+2*sim.Millisecond+100*sim.Microsecond, func() { wedge(f, target) })
	}
	flips := 0
	for ms := 4; ms <= 23; ms++ {
		e.At(sim.Time(ms)*sim.Millisecond+500*sim.Microsecond, func() {
			if f.isHealthy(target) {
				flips++
			}
		})
	}
	e.RunUntil(24 * sim.Millisecond)
	if flips != 0 {
		t.Fatalf("blacklist flapped: core read healthy on %d mid-churn ticks", flips)
	}
	if f.Degraded() {
		t.Fatal("degraded with 2 healthy cores through the churn (floor is 2)")
	}

	// The faults stop for real: reinstatement after WellAfter clean ticks.
	e.At(24*sim.Millisecond+100*sim.Microsecond, func() { f.m.Core(target).SetStalled(false) })
	e.RunUntil(32 * sim.Millisecond)
	if !f.isHealthy(target) {
		t.Fatal("core never reinstated after the stalls stopped")
	}
	if len(f.HealthyCPUs()) != 3 {
		t.Fatalf("healthy = %v after recovery", f.HealthyCPUs())
	}
}

func TestHealthOfflineBlacklistsImmediately(t *testing.T) {
	e, f, cpus := healthBed(3)
	f.m.Core(cpus[2]).SetOffline(true)
	// Hotplug is a visible notification: one tick suffices.
	e.RunUntil(sim.Millisecond + 1)
	if len(f.HealthyCPUs()) != 2 {
		t.Fatalf("healthy = %v after offline tick", f.HealthyCPUs())
	}
}

func TestHealthBelowFloorDegradesAndRecovers(t *testing.T) {
	e, f, cpus := healthBed(3)
	f.m.Core(cpus[0]).SetOffline(true)
	f.m.Core(cpus[1]).SetOffline(true)
	e.RunUntil(sim.Millisecond + 1)
	if !f.Degraded() {
		t.Fatal("1 healthy core of floor 2: not degraded")
	}
	// Placement is declined while below the floor.
	if _, ok := f.GetCPU(testSKB(7), 1); ok {
		t.Fatal("placed a packet while degraded")
	}
	if f.Faults.Fallbacks.Value() == 0 {
		t.Fatal("fallback not counted")
	}
	f.m.Core(cpus[0]).SetOffline(false)
	f.m.Core(cpus[1]).SetOffline(false)
	e.RunUntil(20 * sim.Millisecond)
	if f.Degraded() {
		t.Fatal("still degraded after cores returned")
	}
	if f.Faults.DegradedNs.Value() == 0 {
		t.Fatal("degraded time not accounted")
	}
}

func TestHealthIdleCoresStayHealthy(t *testing.T) {
	// An idle core makes no progress but has nothing queued: that must
	// never read as sickness (the pre-chaos steady state).
	e, f, _ := healthBed(3)
	e.RunUntil(10 * sim.Millisecond)
	if len(f.HealthyCPUs()) != 3 || f.Degraded() {
		t.Fatalf("idle machine degraded: healthy=%v", f.HealthyCPUs())
	}
}

func TestHealthDisabledConfigSkipsTracking(t *testing.T) {
	cpus := []int{2, 3, 4}
	cfg := DefaultConfig(cpus)
	cfg.Health.Disabled = true
	e, m, f := newFalcon(5, cfg)
	m.StartTicker()
	wedge(f, 2)
	m.Core(3).SetOffline(true)
	e.RunUntil(10 * sim.Millisecond)
	if len(f.HealthyCPUs()) != 3 {
		t.Fatalf("disabled tracker blacklisted: %v", f.HealthyCPUs())
	}
}
