package core

import (
	"testing"

	"falcon/internal/costmodel"
	"falcon/internal/sim"
	"falcon/internal/stats"
)

// driveCore keeps a core busy with the given function at the given duty
// cycle for the run duration.
func driveCore(e *sim.Engine, m *machineIface, core int, fn costmodel.Func, busyFrac float64, until sim.Time) {
	period := 100 * sim.Microsecond
	busy := sim.Time(float64(period) * busyFrac)
	var loop func()
	loop = func() {
		if e.Now() >= until {
			return
		}
		m.core(core).Submit(stats.CtxSoftIRQ, fn, busy, func() {
			e.After(period-busy, loop)
		})
	}
	loop()
}

// machineIface narrows cpu.Machine for the helper.
type machineIface struct {
	f *Falcon
}

func (mi *machineIface) core(i int) coreIface { return mi.f.m.Core(i) }

type coreIface interface {
	Submit(ctx stats.CPUContext, fn costmodel.Func, cost sim.Time, done func())
}

func TestDynamicSplitEngagesUnderGROSaturation(t *testing.T) {
	e, m, f := newFalcon(4, DefaultConfig([]int{1, 2, 3}))
	f.cfg.GROSplit = false // dynamic controller overrides statics anyway
	f.EnableDynamicGROSplit([]int{0})
	m.StartTicker()

	// Saturate core 0 with GRO-dominated work (the TCP-4K shape).
	mi := &machineIface{f: f}
	driveCore(e, mi, 0, costmodel.FnGROReceive, 0.97, 40*sim.Millisecond)
	e.RunUntil(40 * sim.Millisecond)
	m.StopTicker()

	if !f.DynamicSplitActive() {
		t.Fatal("dynamic split did not engage under GRO saturation")
	}
	if !f.GROSplitOn() {
		t.Fatal("GROSplitOn should reflect the dynamic decision")
	}
}

func TestDynamicSplitStaysOffForNonGROLoad(t *testing.T) {
	e, m, f := newFalcon(4, DefaultConfig([]int{1, 2, 3}))
	f.EnableDynamicGROSplit([]int{0})
	m.StartTicker()

	// Saturate core 0 with allocation-dominated work (the UDP shape:
	// GRO is not the bottleneck, so splitting would relocate nothing).
	mi := &machineIface{f: f}
	driveCore(e, mi, 0, costmodel.FnSKBAlloc, 0.97, 40*sim.Millisecond)
	e.RunUntil(40 * sim.Millisecond)
	m.StopTicker()

	if f.DynamicSplitActive() {
		t.Fatal("dynamic split engaged without GRO dominance")
	}
	if f.GROSplitOn() {
		t.Fatal("dynamic controller must override the static flag")
	}
}

func TestDynamicSplitDisengagesWhenIdle(t *testing.T) {
	e, m, f := newFalcon(4, DefaultConfig([]int{1, 2, 3}))
	f.EnableDynamicGROSplit([]int{0})
	m.StartTicker()

	mi := &machineIface{f: f}
	driveCore(e, mi, 0, costmodel.FnGROReceive, 0.97, 30*sim.Millisecond)
	e.RunUntil(30 * sim.Millisecond)
	if !f.DynamicSplitActive() {
		t.Fatal("split never engaged")
	}
	// Load vanishes; the controller must release the split.
	e.RunUntil(60 * sim.Millisecond)
	m.StopTicker()
	if f.DynamicSplitActive() {
		t.Fatal("split did not disengage after load dropped")
	}
}

func TestDynamicSplitHysteresisMidLoad(t *testing.T) {
	// Between the off and on thresholds, the current state holds.
	e, m, f := newFalcon(4, DefaultConfig([]int{1, 2, 3}))
	f.EnableDynamicGROSplit([]int{0})
	m.StartTicker()
	mi := &machineIface{f: f}
	// Engage first.
	driveCore(e, mi, 0, costmodel.FnGROReceive, 0.97, 30*sim.Millisecond)
	e.RunUntil(30 * sim.Millisecond)
	if !f.DynamicSplitActive() {
		t.Fatal("split never engaged")
	}
	// Mid load (0.8): above off-threshold, below on-threshold → hold.
	driveCore(e, mi, 0, costmodel.FnGROReceive, 0.80, 60*sim.Millisecond)
	e.RunUntil(60 * sim.Millisecond)
	m.StopTicker()
	if !f.DynamicSplitActive() {
		t.Fatal("hysteresis failed: split released in the hold band")
	}
}

func TestDynamicSplitSurvivesProfileReset(t *testing.T) {
	e, m, f := newFalcon(4, DefaultConfig([]int{1, 2, 3}))
	f.EnableDynamicGROSplit([]int{0})
	m.StartTicker()
	mi := &machineIface{f: f}
	driveCore(e, mi, 0, costmodel.FnGROReceive, 0.97, 50*sim.Millisecond)
	e.RunUntil(20 * sim.Millisecond)
	m.ResetMeasurement() // rewinds profile counters mid-run
	e.RunUntil(50 * sim.Millisecond)
	m.StopTicker()
	if !f.DynamicSplitActive() {
		t.Fatal("controller lost the split across a measurement reset")
	}
}
