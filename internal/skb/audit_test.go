package skb

import "testing"

// The pool-misuse guards must hold with no auditor attached: a released
// SKB is never re-inserted into the free list, and the attempt is
// visible in the process-wide PoolMisuses counter.

func TestDoubleFreeSuppressedAndCounted(t *testing.T) {
	base := PoolMisuses()
	s := NewTx(64, 0)
	gen := s.Gen()
	s.Free()
	s.Free()
	if got := PoolMisuses() - base; got != 1 {
		t.Fatalf("double free counted %d misuses, want 1", got)
	}
	if s.Gen() != gen+1 {
		t.Fatalf("second free advanced the generation: %d -> %d", gen, s.Gen())
	}
}

func TestHandleGoesStaleOnFree(t *testing.T) {
	s := NewTx(64, 0)
	h := s.Handle()
	if !h.Valid() || h.Get() != s {
		t.Fatal("fresh handle invalid")
	}
	s.Free()
	if h.Valid() {
		t.Fatal("handle valid after free")
	}
	if h.Get() != nil {
		t.Fatal("stale handle still dereferences")
	}
	base := PoolMisuses()
	if h.Free() {
		t.Fatal("stale handle free reported success")
	}
	if got := PoolMisuses() - base; got != 1 {
		t.Fatalf("stale free counted %d misuses, want 1", got)
	}
}

func TestHandleFreeWorksWhileLive(t *testing.T) {
	s := NewTx(64, 0)
	h := s.Handle()
	if !h.Free() {
		t.Fatal("live handle free failed")
	}
	if h.Valid() {
		t.Fatal("handle survived its own free")
	}
}

func TestHandleSurvivesReincarnation(t *testing.T) {
	// After a free the pool may hand the same *SKB out again with a
	// bumped generation; the old handle must not free the new owner's
	// packet out from under it.
	s := NewTx(64, 0)
	h := s.Handle()
	s.Free()
	s2 := NewTx(64, 0) // likely the same pooled object, next generation
	if h.Valid() {
		t.Fatal("handle valid across incarnations")
	}
	h.Free() // must be a no-op whoever owns the object now
	if s2.Gen() == h.gen && s2 == h.s {
		t.Fatal("stale handle freed a reincarnated SKB")
	}
	s2.Free()
}

func TestQueueCountersAndValidate(t *testing.T) {
	q := NewQueue(4)
	for i := 0; i < 6; i++ {
		q.Enqueue(NewTx(16, 0))
	}
	if q.Enqueued() != 4 || q.Dropped() != 2 {
		t.Fatalf("enq=%d dropped=%d, want 4/2", q.Enqueued(), q.Dropped())
	}
	if walk, ok := q.Validate(); !ok || walk != 4 {
		t.Fatalf("validate: walk=%d ok=%t", walk, ok)
	}
	n := 0
	for s := q.Dequeue(); s != nil; s = q.Dequeue() {
		s.Free()
		n++
	}
	if n != 4 || q.Dequeued() != 4 {
		t.Fatalf("dequeued %d (counter %d), want 4", n, q.Dequeued())
	}
	if walk, ok := q.Validate(); !ok || walk != 0 {
		t.Fatalf("validate after drain: walk=%d ok=%t", walk, ok)
	}
	if int(q.Enqueued()-q.Dequeued()) != q.Len() {
		t.Fatalf("depth %d != enq-deq %d", q.Len(), q.Enqueued()-q.Dequeued())
	}
}

// recordingAuditor asserts the hook call sequence without pulling the
// audit package into skb's tests (the real implementation lives there).
type recordingAuditor struct {
	events []string
}

func (r *recordingAuditor) SKBGet(s *SKB, site string) { r.events = append(r.events, "get:"+site) }
func (r *recordingAuditor) SKBStage(s *SKB, stage string) {
	r.events = append(r.events, "stage:"+stage)
}
func (r *recordingAuditor) SKBFree(s *SKB) { r.events = append(r.events, "free") }
func (r *recordingAuditor) SKBMisuse(s *SKB, kind string) {
	r.events = append(r.events, "misuse:"+kind)
}

func TestAuditorHookSequence(t *testing.T) {
	rec := &recordingAuditor{}
	s := NewTx(64, 0)
	s.Audit(rec, "site-a")
	s.Stage("stage-1")
	s.Stage("stage-2")
	s.Free()
	s.Free() // misuse: reported to the still-attached auditor
	want := []string{"get:site-a", "stage:stage-1", "stage:stage-2", "free", "misuse:double-free"}
	if len(rec.events) != len(want) {
		t.Fatalf("events %v, want %v", rec.events, want)
	}
	for i := range want {
		if rec.events[i] != want[i] {
			t.Fatalf("event[%d] = %q, want %q (all: %v)", i, rec.events[i], want[i], rec.events)
		}
	}
}

func TestStageWithoutAuditorIsNoop(t *testing.T) {
	s := NewTx(64, 0)
	s.Stage("anything") // must not panic or allocate
	s.Free()
}
