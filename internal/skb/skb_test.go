package skb

import (
	"testing"
	"testing/quick"

	"falcon/internal/proto"
)

func udpFrame(srcPort, dstPort uint16) []byte {
	return proto.BuildUDPFrame(proto.MACFromUint64(1), proto.MACFromUint64(2),
		proto.IP4(10, 0, 0, 1), proto.IP4(10, 0, 0, 2), srcPort, dstPort, 0, []byte("x"))
}

func TestFlowKeyOf(t *testing.T) {
	k, err := FlowKeyOf(udpFrame(1111, 2222))
	if err != nil {
		t.Fatal(err)
	}
	if k.SrcPort != 1111 || k.DstPort != 2222 || k.Proto != proto.ProtoUDP {
		t.Fatalf("key = %+v", k)
	}
	if k.String() == "" {
		t.Fatal("empty key string")
	}
}

func TestFlowKeyHashStable(t *testing.T) {
	k := FlowKey{SrcIP: proto.IP4(10, 0, 0, 1), DstIP: proto.IP4(10, 0, 0, 2),
		SrcPort: 5, DstPort: 6, Proto: proto.ProtoUDP}
	if k.Hash() != k.Hash() {
		t.Fatal("hash not deterministic")
	}
}

func TestFlowHashDistinguishesFlows(t *testing.T) {
	// Across many synthetic flows, collisions must be rare.
	seen := map[uint32]int{}
	n := 0
	for p := uint16(1000); p < 1200; p++ {
		k := FlowKey{SrcIP: proto.IP4(10, 0, 0, 1), DstIP: proto.IP4(10, 0, 0, 2),
			SrcPort: p, DstPort: 80, Proto: proto.ProtoTCP}
		seen[k.Hash()]++
		n++
	}
	if len(seen) < n-2 {
		t.Fatalf("too many hash collisions: %d distinct of %d", len(seen), n)
	}
}

func TestSetFlowHashOnce(t *testing.T) {
	s := &SKB{Data: udpFrame(100, 200), Segs: 1}
	if err := s.SetFlowHash(); err != nil {
		t.Fatal(err)
	}
	h := s.Hash
	// Change the frame; hash must stay pinned until reset.
	s.SetData(udpFrame(300, 400))
	if err := s.SetFlowHash(); err != nil {
		t.Fatal(err)
	}
	if s.Hash != h {
		t.Fatal("pinned hash recomputed")
	}
	s.ResetFlowHash()
	if err := s.SetFlowHash(); err != nil {
		t.Fatal(err)
	}
	if s.Hash == h {
		t.Fatal("hash not recomputed after reset")
	}
}

func TestSetFlowHashBadFrame(t *testing.T) {
	s := &SKB{Data: []byte{1, 2, 3}}
	if err := s.SetFlowHash(); err == nil {
		t.Fatal("bad frame hashed")
	}
}

func TestDeviceFlowHashSeparatesStages(t *testing.T) {
	flow := FlowKey{SrcIP: proto.IP4(10, 0, 0, 1), DstIP: proto.IP4(10, 0, 0, 2),
		SrcPort: 9, DstPort: 10, Proto: proto.ProtoUDP}.Hash()
	// The same flow at different devices must map to different hashes
	// (this is the paper's core enabling observation, Section 4.1).
	h1 := DeviceFlowHash(flow, 1)
	h2 := DeviceFlowHash(flow, 2)
	h3 := DeviceFlowHash(flow, 3)
	if h1 == h2 || h2 == h3 || h1 == h3 {
		t.Fatalf("device hashes collide: %x %x %x", h1, h2, h3)
	}
	// Same flow, same device → same hash (in-order guarantee).
	if DeviceFlowHash(flow, 2) != h2 {
		t.Fatal("device hash not deterministic")
	}
}

func TestHash32Distribution(t *testing.T) {
	// hash_32 over sequential inputs must spread across 8 buckets.
	var buckets [8]int
	for i := uint32(0); i < 8000; i++ {
		buckets[Hash32(i)%8]++
	}
	for i, c := range buckets {
		if c < 500 || c > 1500 {
			t.Fatalf("bucket %d badly skewed: %d", i, c)
		}
	}
}

func TestJhash3Avalanche(t *testing.T) {
	if err := quick.Check(func(a, b, c uint32) bool {
		h1 := jhash3(a, b, c)
		h2 := jhash3(a^1, b, c)
		return h1 != h2 // single-bit input flip must change the hash
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(0)
	a, b, c := &SKB{Seq: 1}, &SKB{Seq: 2}, &SKB{Seq: 3}
	q.Enqueue(a)
	q.Enqueue(b)
	q.Enqueue(c)
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
	if q.Peek() != a {
		t.Fatal("peek != head")
	}
	for want := uint64(1); want <= 3; want++ {
		if got := q.Dequeue(); got == nil || got.Seq != want {
			t.Fatalf("dequeue got %v, want seq %d", got, want)
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("dequeue from empty queue returned skb")
	}
}

func TestQueueLimitDrops(t *testing.T) {
	q := NewQueue(2)
	if !q.Enqueue(&SKB{}) || !q.Enqueue(&SKB{}) {
		t.Fatal("enqueue under limit failed")
	}
	if q.Enqueue(&SKB{}) {
		t.Fatal("enqueue over limit succeeded")
	}
	if q.Dropped() != 1 {
		t.Fatalf("dropped = %d", q.Dropped())
	}
	q.Dequeue()
	if !q.Enqueue(&SKB{}) {
		t.Fatal("enqueue after drain failed")
	}
}

func TestQueueInterleaved(t *testing.T) {
	// Property: a queue preserves FIFO order under any interleaving of
	// enqueues and dequeues.
	if err := quick.Check(func(ops []bool) bool {
		q := NewQueue(0)
		next := uint64(0)
		expect := uint64(0)
		for _, enq := range ops {
			if enq {
				q.Enqueue(&SKB{Seq: next})
				next++
			} else if s := q.Dequeue(); s != nil {
				if s.Seq != expect {
					return false
				}
				expect++
			}
		}
		for s := q.Dequeue(); s != nil; s = q.Dequeue() {
			if s.Seq != expect {
				return false
			}
			expect++
		}
		return expect == next
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
