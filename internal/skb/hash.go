package skb

// Kernel hashing primitives. RSS/RPS use the flow hash to pick a CPU;
// Falcon additionally mixes the device index through Hash32 so that the
// same flow maps to different cores at different pipeline stages
// (Algorithm 1, line 19: hash_32(skb.hash + ifindex)).

// goldenRatio32 is the kernel's GOLDEN_RATIO_32 multiplier.
const goldenRatio32 = 0x61C88647

// Hash32 mixes a 32-bit value, mirroring the kernel's hash_32().
func Hash32(v uint32) uint32 {
	return v * goldenRatio32
}

// jhash constants (Bob Jenkins' lookup3, as used by the kernel).
const jhashInitval = 0xdeadbeef

func rol32(x uint32, k uint) uint32 { return x<<k | x>>(32-k) }

// jhash3 hashes three 32-bit words — the kernel's jhash_3words, used by
// flow_hash_from_keys on the 5-tuple.
func jhash3(a, b, c uint32) uint32 {
	a += jhashInitval
	b += jhashInitval
	c += jhashInitval

	c ^= b
	c -= rol32(b, 14)
	a ^= c
	a -= rol32(c, 11)
	b ^= a
	b -= rol32(a, 25)
	c ^= b
	c -= rol32(b, 16)
	a ^= c
	a -= rol32(c, 4)
	b ^= a
	b -= rol32(a, 14)
	c ^= b
	c -= rol32(b, 24)
	return c
}

// DeviceFlowHash combines a flow hash with a device index — Falcon's
// per-stage hash. Distinct devices yield distinct values for the same
// flow, which is what lets Falcon pipeline one flow's stages across
// cores while keeping each stage pinned to a single core.
func DeviceFlowHash(flowHash uint32, ifindex int) uint32 {
	return Hash32(flowHash + uint32(ifindex))
}
