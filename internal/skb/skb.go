// Package skb models the kernel's socket buffer (sk_buff): the unit of
// work that flows through every device, queue and softirq in the
// simulation. It also provides the kernel's flow-hashing primitives
// (jhash over the flow key, hash_32 mixing) that RSS, RPS and Falcon's
// get_falcon_cpu all build on.
package skb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"falcon/internal/proto"
	"falcon/internal/sim"
)

// Auditor observes SKB lifecycle events. The datapath never depends on a
// concrete implementation (internal/audit provides one); when no auditor
// is attached every hook is a single nil-check, so the audit-off hot path
// stays allocation- and branch-predictable.
type Auditor interface {
	// SKBGet records that s entered the auditor's scope at the named
	// allocation site.
	SKBGet(s *SKB, site string)
	// SKBStage records that s reached the named device stage.
	SKBStage(s *SKB, stage string)
	// SKBFree records that s was legitimately freed.
	SKBFree(s *SKB)
	// SKBMisuse reports a pool-misuse attempt ("double-free" or
	// "stale-free") that the pool suppressed.
	SKBMisuse(s *SKB, kind string)
}

// FlowKey identifies a network flow — the kernel's struct flow_keys
// reduced to the fields the hash uses: the 5-tuple.
type FlowKey struct {
	SrcIP, DstIP     proto.IPv4Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

// String renders the flow key for diagnostics.
func (k FlowKey) String() string {
	p := "udp"
	if k.Proto == proto.ProtoTCP {
		p = "tcp"
	}
	return fmt.Sprintf("%s:%d->%s:%d/%s", k.SrcIP, k.SrcPort, k.DstIP, k.DstPort, p)
}

// FlowKeyOf dissects a frame into its flow key, as the kernel's flow
// dissector does when computing skb->hash. IP fragments hash on the
// 3-tuple only (ports are unavailable or must match across fragments so
// they land on the same core for reassembly).
func FlowKeyOf(frame []byte) (FlowKey, error) {
	f, err := proto.ParseFrame(frame)
	if err != nil {
		return FlowKey{}, err
	}
	k := FlowKey{
		SrcIP: f.IP.Src,
		DstIP: f.IP.Dst,
		Proto: f.IP.Protocol,
	}
	if !f.IP.IsFragment() {
		k.SrcPort = f.SrcPort()
		k.DstPort = f.DstPort()
	}
	return k, nil
}

// Hash computes the flow hash over the key, mirroring the kernel's
// flow_hash_from_keys (jhash over the flow words).
func (k FlowKey) Hash() uint32 {
	return jhash3(uint32(k.SrcIP), uint32(k.DstIP),
		uint32(k.SrcPort)<<16|uint32(k.DstPort)|uint32(k.Proto)<<8)
}

// SKB is the simulation's sk_buff. It carries the real frame bytes plus
// the metadata the datapath needs: the flow hash, the current device
// (skb->dev), GRO segment count, and timestamps for latency measurement.
type SKB struct {
	Data []byte // current frame bytes (outer headers while encapsulated)

	// Hash is the flow hash, computed once when the packet first enters
	// the stack (HashValid) and preserved across decapsulation updates.
	Hash      uint32
	HashValid bool

	// IfIndex is the index of the device currently processing the
	// packet — the dev->ifindex the paper mixes into Falcon's hash.
	IfIndex int

	// Segs counts the original packets coalesced into this skb by GRO
	// (1 for a non-merged packet).
	Segs int

	// FlowID and Seq identify the application-level flow and the
	// packet's position in it, used by tests to verify in-order,
	// exactly-once delivery. They are simulation instrumentation, not
	// header fields.
	FlowID uint64
	Seq    uint64

	// SendTime is when the sending application handed the payload to the
	// stack (the open-loop latency origin: sender-side CPU queueing and
	// tx-path stalls count). WireTime is when the frame left the sender's
	// NIC; Delivered is when the receiving application consumed it.
	SendTime  sim.Time
	WireTime  sim.Time
	Delivered sim.Time

	// LastCore is the core that last touched this packet (-1 initially);
	// Migrations counts cross-core hops. Consumers charge the model's
	// migration penalty when resuming on a new core (loss of locality,
	// paper Section 6.3).
	LastCore   int
	Migrations int

	// next links skbs inside intrusive queues (rx rings, backlogs).
	next *SKB

	// Buffer ownership. buf is the pooled backing buffer (nil when Data
	// wraps externally owned bytes); back is the full backing slice
	// including unused headroom, with Data starting at back[off]. Push
	// grows Data into the headroom (the kernel's skb_push, used for
	// in-place VXLAN encapsulation).
	buf   *[pooledBufCap]byte
	jumbo *[jumboBufCap]byte
	back  []byte
	off   int

	// Parsed-header cache: the flow dissector output for the current
	// Data, carried across device stages so each hop does not re-parse
	// the frame, plus the VXLAN inner dissect for tunnel GRO. Both are
	// invalidated whenever Data changes (SetData / Push).
	frame      proto.Frame
	frameState uint8 // 0 unparsed, 1 valid, 2 unparsable
	inner      proto.Frame
	innerState uint8 // 0 unknown, 1 VXLAN inner valid, 2 not VXLAN TCP-carrying

	// Lifecycle state. gen counts pool recycles of this SKB (a Handle
	// taken on one incarnation goes stale on the next); freed marks an
	// SKB sitting in the pool, letting Free reject double-frees instead
	// of corrupting the free list. aud, when non-nil, observes the
	// lifecycle; it survives Free (so misuse after free is still
	// attributed to the run that owned the SKB) and is cleared when the
	// pool re-issues the SKB.
	gen   uint32
	freed bool
	aud   Auditor

	// arena, when non-nil, is the shard-local allocator that owns this
	// SKB: Free returns the SKB and its buffer there instead of the
	// global pools, so hot-path recycling never contends with other
	// shards' worker goroutines. It survives Free (the arena owns the
	// pooled object) and moves at cluster barriers when the packet
	// crosses a shard boundary (Rehome).
	arena *Arena
}

// pooledBufCap is the frame-buffer pool's small size class: an MTU
// frame plus VXLAN overhead and headroom with room to spare.
// jumboBufCap is the large class, sized for a maximum IP datagram plus
// encapsulation headroom (the jumbo-frame sends of the large-message
// experiments previously heap-allocated a fresh 64 KB buffer per
// packet). Frames beyond both fall back to plain allocation.
const (
	pooledBufCap = 2048
	jumboBufCap  = 65536 + 128
)

// ErrBadFrame is returned by Frame for unparsable frames.
var ErrBadFrame = errors.New("skb: unparsable frame")

var (
	skbPool   = sync.Pool{New: func() any { return new(SKB) }}
	bufPool   = sync.Pool{New: func() any { return new([pooledBufCap]byte) }}
	jumboPool = sync.Pool{New: func() any { return new([jumboBufCap]byte) }}
)

func getSKB() *SKB {
	s := skbPool.Get().(*SKB)
	s.Segs = 1
	s.LastCore = -1
	s.freed = false
	s.aud = nil
	return s
}

// poolMisuses counts Free calls the pool rejected (double-free or
// stale-generation free). Process-global and atomic: the SKB pool is
// shared across concurrently running simulations.
var poolMisuses atomic.Uint64

// PoolMisuses returns the number of pool-misuse attempts (double-frees
// and stale-generation frees) suppressed since process start.
func PoolMisuses() uint64 { return poolMisuses.Load() }

// Audit attaches auditor a to the SKB and records site as its allocation
// site. Call immediately after New/NewTx, before the SKB enters the
// datapath.
func (s *SKB) Audit(a Auditor, site string) {
	if a == nil {
		return
	}
	s.aud = a
	a.SKBGet(s, site)
}

// Handoffer is implemented by auditors whose tracking state is
// partitioned (per PDES shard): SKBHandoff moves the SKB's ledger
// record from the implementing auditor to the destination auditor.
type Handoffer interface {
	SKBHandoff(s *SKB, to Auditor)
}

// AuditHandoff re-homes the SKB's audit tracking onto auditor `to` —
// called at a cluster barrier when a frame crosses a shard boundary, so
// subsequent Stage/Free hooks run against the shard-local ledger that
// owns the receiving host. A no-op when untracked, already home, or
// `to` is nil; if the current auditor implements Handoffer its ledger
// record migrates along.
func (s *SKB) AuditHandoff(to Auditor) {
	if s.aud == nil || s.aud == to || to == nil {
		return
	}
	if h, ok := s.aud.(Handoffer); ok {
		h.SKBHandoff(s, to)
	}
	s.aud = to
}

// Stage records that the packet reached the named device stage. A no-op
// (one nil-check) when no auditor is attached. Stage names should be
// static string literals so auditing adds no per-packet allocation.
func (s *SKB) Stage(name string) {
	if s.aud != nil {
		s.aud.SKBStage(s, name)
	}
}

// Gen returns the SKB's pool generation (bumped on every Free).
func (s *SKB) Gen() uint32 { return s.gen }

// NewTx returns an SKB with a writable frame buffer of size bytes and
// the given headroom in front of it (for later in-place encapsulation).
// The buffer comes from a pool when it fits; callers MUST overwrite all
// size bytes — the buffer is not zeroed.
func NewTx(size, headroom int) *SKB {
	s := getSKB()
	total := size + headroom
	if total <= pooledBufCap {
		s.buf = bufPool.Get().(*[pooledBufCap]byte)
		s.back = s.buf[:]
	} else if total <= jumboBufCap {
		s.jumbo = jumboPool.Get().(*[jumboBufCap]byte)
		s.back = s.jumbo[:]
	} else {
		s.back = make([]byte, total)
	}
	s.off = headroom
	s.Data = s.back[headroom : headroom+size]
	return s
}

// Push extends Data n bytes backward into the headroom and reports
// whether there was room. The parse caches are invalidated.
func (s *SKB) Push(n int) bool {
	if s.back == nil || s.off < n {
		return false
	}
	s.off -= n
	s.Data = s.back[s.off : s.off+n+len(s.Data)]
	s.frameState, s.innerState = 0, 0
	return true
}

// SetData replaces the frame bytes and invalidates the parse caches.
// Buffer ownership is retained (Free still recycles the pooled buffer),
// but headroom is gone: the new bytes need not alias the old buffer.
func (s *SKB) SetData(b []byte) {
	s.Data = b
	s.back = nil
	s.frameState, s.innerState = 0, 0
}

// DisownBuf releases the SKB's claim on its backing buffer without
// recycling it — for frames whose payload bytes were retained by a
// longer-lived structure (e.g. the IP reassembler).
func (s *SKB) DisownBuf() {
	s.buf = nil
	s.jumbo = nil
	s.back = nil
}

// Free returns the SKB (and its owned buffer, if pooled) for reuse.
// Callers must hold no references to the SKB or its Data afterwards.
// Terminal points on the datapath — application consume, drops, loss,
// GRO absorption — free their packets so steady flows recycle a small
// working set instead of allocating per packet.
// A double Free (the SKB is already sitting in the pool) is dropped
// rather than re-inserted — re-inserting would hand the same SKB to two
// owners and corrupt the free list silently. The attempt is counted in
// PoolMisuses and reported to the attached auditor, if any.
func (s *SKB) Free() {
	if s.freed {
		poolMisuses.Add(1)
		if s.aud != nil {
			s.aud.SKBMisuse(s, "double-free")
		}
		return
	}
	if s.aud != nil {
		s.aud.SKBFree(s)
	}
	if a := s.arena; a != nil {
		a.put(s)
		return
	}
	if s.buf != nil {
		bufPool.Put(s.buf)
	}
	if s.jumbo != nil {
		jumboPool.Put(s.jumbo)
	}
	aud, gen := s.aud, s.gen
	*s = SKB{}
	s.aud, s.gen, s.freed = aud, gen+1, true
	skbPool.Put(s)
}

// Handle is a generation-stamped reference to an SKB, for holders that
// may outlive the packet (retry queues, in-flight tables). A Handle goes
// stale the moment the SKB is freed: Get returns nil and Free becomes a
// counted no-op instead of corrupting the pool's free list.
type Handle struct {
	s   *SKB
	gen uint32
}

// Handle returns a generation-stamped reference to s.
func (s *SKB) Handle() Handle { return Handle{s: s, gen: s.gen} }

// Valid reports whether the handle still refers to the live incarnation.
func (h Handle) Valid() bool { return h.s != nil && !h.s.freed && h.s.gen == h.gen }

// Get returns the SKB, or nil when the handle is stale.
func (h Handle) Get() *SKB {
	if h.Valid() {
		return h.s
	}
	return nil
}

// Free frees the SKB through the handle. Freeing through a stale handle
// (the SKB was already freed, possibly recycled into a new incarnation)
// is suppressed, counted in PoolMisuses, and reported to the auditor. It
// reports whether the free actually happened.
func (h Handle) Free() bool {
	if h.s == nil {
		return false
	}
	if h.s.freed || h.s.gen != h.gen {
		poolMisuses.Add(1)
		if h.s.aud != nil {
			h.s.aud.SKBMisuse(h.s, "stale-free")
		}
		return false
	}
	h.s.Free()
	return true
}

// Frame returns the parsed headers of the current Data, dissecting on
// first use and serving the cached result on every later stage.
func (s *SKB) Frame() (*proto.Frame, error) {
	switch s.frameState {
	case 1:
		return &s.frame, nil
	case 2:
		return nil, ErrBadFrame
	}
	f, err := proto.ParseFrame(s.Data)
	if err != nil {
		s.frameState = 2
		return nil, ErrBadFrame
	}
	s.frame = f
	s.frameState = 1
	return &s.frame, nil
}

// IsVXLAN reports whether the frame is VXLAN-in-UDP, using the cached
// dissect (the check udp_rcv performs before vxlan_rcv).
func (s *SKB) IsVXLAN() bool {
	f, err := s.Frame()
	return err == nil && !f.IP.IsFragment() &&
		f.IP.Protocol == proto.ProtoUDP && f.UDP.DstPort == proto.VXLANPort
}

// VXLANInner returns the parsed inner frame of a VXLAN packet (cached).
// ok is false for non-VXLAN frames or invalid encapsulations.
func (s *SKB) VXLANInner() (*proto.Frame, bool) {
	switch s.innerState {
	case 1:
		return &s.inner, true
	case 2:
		return nil, false
	}
	if !s.IsVXLAN() {
		s.innerState = 2
		return nil, false
	}
	f, _ := s.Frame()
	if _, err := proto.ParseVXLAN(f.Payload); err != nil {
		s.innerState = 2
		return nil, false
	}
	fi, err := proto.ParseFrame(f.Payload[proto.VXLANLen:])
	if err != nil {
		s.innerState = 2
		return nil, false
	}
	s.inner = fi
	s.innerState = 1
	return &s.inner, true
}

// DecapVXLAN strips the outer headers in place (vxlan_rcv): Data becomes
// the inner frame and the already-parsed inner dissect becomes the
// current frame cache, so downstream stages skip the re-parse. Reports
// false when the frame is not a valid VXLAN packet.
func (s *SKB) DecapVXLAN() bool {
	fi, ok := s.VXLANInner()
	if !ok {
		return false
	}
	f, _ := s.Frame()
	s.Data = f.Payload[proto.VXLANLen:]
	s.back = nil // headroom is gone; buffer ownership retained
	s.frame = *fi
	s.frameState = 1
	s.innerState = 0
	return true
}

// Touch records that core is about to process the packet and reports
// whether this is a cross-core migration (the packet was previously
// processed on a different core).
func (s *SKB) Touch(core int) bool {
	if s.LastCore == core {
		return false
	}
	migrated := s.LastCore >= 0
	s.LastCore = core
	if migrated {
		s.Migrations++
	}
	return migrated
}

// New returns an SKB wrapping the given frame bytes, with one segment
// and no core affinity yet. The bytes are externally owned (never
// recycled by Free).
func New(data []byte) *SKB {
	s := getSKB()
	s.Data = data
	return s
}

// Len returns the frame length in bytes.
func (s *SKB) Len() int { return len(s.Data) }

// SetFlowHash computes and pins the flow hash from the current frame
// bytes. Like the kernel, the hash is computed only once per packet; the
// overlay path recomputes it for the inner flow after decapsulation by
// calling ResetFlowHash.
func (s *SKB) SetFlowHash() error {
	if s.HashValid {
		return nil
	}
	f, err := s.Frame()
	if err != nil {
		return err
	}
	k := FlowKey{SrcIP: f.IP.Src, DstIP: f.IP.Dst, Proto: f.IP.Protocol}
	if !f.IP.IsFragment() {
		k.SrcPort = f.SrcPort()
		k.DstPort = f.DstPort()
	}
	s.Hash = k.Hash()
	s.HashValid = true
	return nil
}

// ResetFlowHash invalidates the pinned hash, forcing recomputation from
// the (now inner) frame on the next SetFlowHash.
func (s *SKB) ResetFlowHash() { s.HashValid = false }

// Queue is an intrusive FIFO of SKBs with O(1) enqueue/dequeue and a
// byte/packet budget — the shape of every packet queue in the kernel
// (rx_ring, input_pkt_queue, gro_cells, socket backlog).
type Queue struct {
	head, tail *SKB
	n          int
	limit      int // max packets; 0 means unlimited
	dropped    uint64
	enq, deq   uint64 // lifetime admissions/removals (conservation audit)
}

// NewQueue returns a queue holding at most limit packets (0 = unlimited).
func NewQueue(limit int) *Queue { return &Queue{limit: limit} }

// Len returns the number of queued packets.
func (q *Queue) Len() int { return q.n }

// Dropped returns the number of packets rejected because the queue was
// full — the simulation's packet-drop counter.
func (q *Queue) Dropped() uint64 { return q.dropped }

// Enqueued returns lifetime successful admissions.
func (q *Queue) Enqueued() uint64 { return q.enq }

// Dequeued returns lifetime removals.
func (q *Queue) Dequeued() uint64 { return q.deq }

// Validate walks the intrusive list and checks the queue's structural
// invariants: the walked length matches the depth counter, and depth ==
// enqueues − dequeues. It returns the walked length and whether both
// hold. The walk is bounded by n+1 so a corrupted cycle terminates.
func (q *Queue) Validate() (walk int, ok bool) {
	for s := q.head; s != nil; s = s.next {
		walk++
		if walk > q.n {
			break
		}
	}
	return walk, walk == q.n && uint64(q.n) == q.enq-q.deq
}

// Enqueue appends s. It reports false (and counts a drop) when full.
func (q *Queue) Enqueue(s *SKB) bool {
	if q.limit > 0 && q.n >= q.limit {
		q.dropped++
		return false
	}
	s.next = nil
	if q.tail == nil {
		q.head = s
	} else {
		q.tail.next = s
	}
	q.tail = s
	q.n++
	q.enq++
	return true
}

// Dequeue removes and returns the head, or nil when empty.
func (q *Queue) Dequeue() *SKB {
	s := q.head
	if s == nil {
		return nil
	}
	q.head = s.next
	if q.head == nil {
		q.tail = nil
	}
	s.next = nil
	q.n--
	q.deq++
	return s
}

// Peek returns the head without removing it.
func (q *Queue) Peek() *SKB { return q.head }
