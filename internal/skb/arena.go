package skb

// Arena is a shard-local SKB and buffer allocator. The global
// sync.Pools are safe but pay per-operation atomics and bounce cache
// lines between the PDES worker goroutines that run different shards;
// an Arena is plain single-owner free lists — each simulated host gets
// one, and a host's entire datapath runs on one logical process, so
// gets and puts never race. Cross-shard packets move their pool
// affinity at the cluster barrier (SKB.Rehome, with every LP parked),
// so a frame always recycles into the arena of the shard that freed
// it.
//
// The lists are capped: overflow spills to the global pools (which
// also serve as the miss path), so a bursty host cannot strand
// unbounded memory in its arena.
type Arena struct {
	skbs   []*SKB
	bufs   []*[pooledBufCap]byte
	jumbos []*[jumboBufCap]byte
}

// Arena free-list caps: enough to cover a host's steady-state in-flight
// window (ring + backlog + GRO holds) without stranding memory.
const (
	arenaSKBCap   = 512
	arenaBufCap   = 512
	arenaJumboCap = 16
)

// NewArena returns an empty arena. It fills lazily from the global
// pools as traffic flows.
func NewArena() *Arena { return &Arena{} }

// NewTx is Arena-affine NewTx: the SKB and its backing buffer come from
// (and will recycle into) this arena. A nil arena falls back to the
// global pools.
func (a *Arena) NewTx(size, headroom int) *SKB {
	if a == nil {
		return NewTx(size, headroom)
	}
	var s *SKB
	if n := len(a.skbs); n > 0 {
		s = a.skbs[n-1]
		a.skbs[n-1] = nil
		a.skbs = a.skbs[:n-1]
		s.Segs = 1
		s.LastCore = -1
		s.freed = false
		s.aud = nil
	} else {
		s = getSKB()
		s.arena = a
	}
	total := size + headroom
	if total <= pooledBufCap {
		if n := len(a.bufs); n > 0 {
			s.buf = a.bufs[n-1]
			a.bufs[n-1] = nil
			a.bufs = a.bufs[:n-1]
		} else {
			s.buf = bufPool.Get().(*[pooledBufCap]byte)
		}
		s.back = s.buf[:]
	} else if total <= jumboBufCap {
		if n := len(a.jumbos); n > 0 {
			s.jumbo = a.jumbos[n-1]
			a.jumbos[n-1] = nil
			a.jumbos = a.jumbos[:n-1]
		} else {
			s.jumbo = jumboPool.Get().(*[jumboBufCap]byte)
		}
		s.back = s.jumbo[:]
	} else {
		s.back = make([]byte, total)
	}
	s.off = headroom
	s.Data = s.back[headroom : headroom+size]
	return s
}

// put recycles a freed SKB and its buffer into the arena (overflow
// spills to the global pools). Called from Free with s.arena == a.
func (a *Arena) put(s *SKB) {
	if s.buf != nil {
		if len(a.bufs) < arenaBufCap {
			a.bufs = append(a.bufs, s.buf)
		} else {
			bufPool.Put(s.buf)
		}
	}
	if s.jumbo != nil {
		if len(a.jumbos) < arenaJumboCap {
			a.jumbos = append(a.jumbos, s.jumbo)
		} else {
			jumboPool.Put(s.jumbo)
		}
	}
	aud, gen := s.aud, s.gen
	*s = SKB{}
	s.aud, s.gen, s.freed = aud, gen+1, true
	if len(a.skbs) < arenaSKBCap {
		s.arena = a
		a.skbs = append(a.skbs, s)
	} else {
		skbPool.Put(s)
	}
}

// Rehome moves the SKB's pool affinity to arena a (nil: the global
// pools), so the eventual Free recycles into the shard that ran it.
// Only call while the simulation is quiescent for this SKB — in
// practice, from a cluster barrier's cross-shard drain, where both the
// sending and receiving LPs are parked.
func (s *SKB) Rehome(a *Arena) { s.arena = a }
