package experiments

import (
	"fmt"

	"falcon/internal/devices"
	"falcon/internal/faults"
	"falcon/internal/sim"
	"falcon/internal/socket"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

// abl-chaos: the robustness harness. Every scenario schedules one fault
// window in the middle of the measurement window and drives the same
// fixed-rate UDP flow through Host / Con / Falcon. The property under
// test is the paper's never-worse claim (Figs. 14-15) extended to
// faulty conditions: Falcon with health tracking must stay within 2% of
// the vanilla overlay under every shipped fault, and delivery must
// recover within a bounded time of the fault clearing.

func init() {
	register("abl-chaos", "Robustness: fault injection + graceful degradation", ablChaos)
}

// chaosRate is the offered load: high enough that a wedged core visibly
// dents per-ms delivery, low enough that the healthy system is not
// saturated (so "recovered" has a crisp meaning).
const chaosRate = 100_000

// chaosScenario is one named fault plan, built against a concrete
// testbed with the fault window [at, at+dur].
type chaosScenario struct {
	key  string
	desc string
	plan func(tb *workload.Testbed, at, dur sim.Time) faults.Plan
}

// chaosScenarios ships the fault matrix: wire, NIC, CPU and
// control-plane impairments, plus the empty control plan.
func chaosScenarios() []chaosScenario {
	item := faults.Single
	return []chaosScenario{
		{"none", "control: empty plan",
			func(tb *workload.Testbed, at, dur sim.Time) faults.Plan {
				return faults.Plan{Name: "none"}
			}},
		{"link-loss", "5% frame loss on the inter-host wire",
			func(tb *workload.Testbed, at, dur sim.Time) faults.Plan {
				return item(at, dur, &faults.LinkLossBurst{
					Link: tb.Client.LinkTo(workload.ServerIP), Rate: 0.05})
			}},
		{"link-jitter", "30us uniform jitter on the inter-host wire",
			func(tb *workload.Testbed, at, dur sim.Time) faults.Plan {
				return item(at, dur, &faults.LinkJitterBurst{
					Link: tb.Client.LinkTo(workload.ServerIP), Jitter: 30 * sim.Microsecond})
			}},
		{"ring-shrink", "server rx rings capped at 2 slots",
			func(tb *workload.Testbed, at, dur sim.Time) faults.Plan {
				return item(at, dur, &faults.RingShrink{NIC: tb.Server.NIC, Limit: 2})
			}},
		{"core-stall", "silent stall of FALCON_CPU 4",
			func(tb *workload.Testbed, at, dur sim.Time) faults.Plan {
				return item(at, dur, &faults.CoreStall{M: tb.Server.M, Cores: []int{4}})
			}},
		{"cpu-offline", "hotplug removal of FALCON_CPUs 3+4 (below floor)",
			func(tb *workload.Testbed, at, dur sim.Time) faults.Plan {
				return item(at, dur, &faults.CoreOffline{M: tb.Server.M, Cores: []int{3, 4}})
			}},
		{"kv-flaky", "KV lookups +50us, 30% transient failure",
			func(tb *workload.Testbed, at, dur sim.Time) faults.Plan {
				return item(at, dur, &faults.KVFlaky{
					KV: tb.Net.KV, Latency: 50 * sim.Microsecond, FailRate: 0.3})
			}},
		{"noisy-neighbor", "60% softirq antagonist on all FALCON_CPUs",
			func(tb *workload.Testbed, at, dur sim.Time) faults.Plan {
				return item(at, dur, &faults.NoisyNeighbor{
					M: tb.Server.M, Cores: []int{3, 4, 5}, Utilization: 0.6})
			}},
	}
}

// chaosOutcome is one (scenario, mode) run.
type chaosOutcome struct {
	Res workload.Result
	// RecoverMs is how long after the fault cleared per-ms delivery
	// returned to >=80% of the pre-fault baseline (-1: not within the
	// window; 0 for the control scenario).
	RecoverMs float64
	// Drops aggregates every loss class, including resolution drops.
	Drops uint64
	// KVRetries counts the client's backoff retries of transiently
	// failed KV lookups during the window.
	KVRetries uint64
	// Falcon degradation observables (zero for Host/Con).
	Rerouted, Fallbacks uint64
	DegradedMs          float64
}

// runChaosScenario builds the standard single-flow bed, installs the
// scenario's plan over the middle half of the measurement window, and
// measures one fixed-rate UDP window with per-ms delivery sampling.
func runChaosScenario(mode workload.Mode, opt Options, sc chaosScenario) chaosOutcome {
	tb := newSingleFlowBed(mode, opt, 100*devices.Gbps, false)
	// Fault window: [warmup + window/4, warmup + window/2].
	fStart := opt.window() / 4
	fDur := opt.window() / 4
	in := faults.NewInjector(tb.E)
	in.Install(sc.plan(tb, opt.warmup()+fStart, fDur))

	until := opt.warmup() + opt.window() + 5*sim.Millisecond
	var f *workload.UDPFlow
	if mode == workload.ModeHost {
		f = tb.NewUDPFlow(nil, workload.ServerIP, 7000, 5001, 64, 2, singleFlowAppCore, 1)
	} else {
		f = tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 64, 2, singleFlowAppCore, 1)
	}
	f.SendAtRate(chaosRate, until)

	// Per-ms delivery snapshots across the measurement window. The
	// sampler only reads a counter: it cannot perturb the datapath.
	msCount := int(opt.window() / sim.Millisecond)
	samples := make([]uint64, msCount+1)
	for i := 1; i <= msCount; i++ {
		i := i
		tb.E.At(opt.warmup()+sim.Time(i)*sim.Millisecond, func() {
			samples[i] = f.Sock.Delivered.Value()
		})
	}

	res := workload.MeasureWindow(tb, []*socket.Socket{f.Sock}, opt.warmup(), opt.window())
	out := chaosOutcome{
		Res: res,
		Drops: res.NICDrops + res.BacklogDrops + res.SocketDrops +
			tb.Client.TxResolveDrops.Value(),
		KVRetries: tb.Client.KVRetries.Value(),
	}
	if sc.key != "none" {
		out.RecoverMs = chaosRecoveryMs(samples, fStart, fStart+fDur)
	}
	if fal := tb.Server.Falcon; fal != nil {
		out.Rerouted = fal.Faults.Rerouted.Value()
		out.Fallbacks = fal.Faults.Fallbacks.Value()
		out.DegradedMs = float64(fal.Faults.DegradedNs.Value()) / 1e6
	}
	finishAudit(tb, until)
	return out
}

// chaosRecoveryMs locates the first per-ms bucket at or after the fault
// end whose delivery is back to >=80% of the pre-fault per-ms mean, and
// returns its distance from the fault end in ms (-1: none in window).
// Offsets are relative to the start of the measurement window.
func chaosRecoveryMs(samples []uint64, fStart, fEnd sim.Time) float64 {
	msCount := len(samples) - 1
	delta := func(i int) float64 { return float64(samples[i] - samples[i-1]) }
	base, n := 0.0, 0
	for i := 1; i <= msCount; i++ {
		if sim.Time(i)*sim.Millisecond <= fStart {
			base += delta(i)
			n++
		}
	}
	if n == 0 || base == 0 {
		return 0
	}
	base /= float64(n)
	for i := 1; i <= msCount; i++ {
		if sim.Time(i-1)*sim.Millisecond < fEnd {
			continue
		}
		if delta(i) >= 0.8*base {
			return float64(sim.Time(i)*sim.Millisecond-fEnd) / 1e6
		}
	}
	return -1
}

func ablChaos(opt Options) []*stats.Table {
	detail := &stats.Table{
		Title: "Robustness: 64B UDP at 100Kpps through fault windows (100G)",
		Columns: []string{"scenario", "mode", "delivered(Kpps)", "p99(us)", "drops",
			"kv-retry", "recover(ms)", "rerouted", "fallback", "degraded(ms)"},
	}
	verdict := &stats.Table{
		Title:   "Robustness verdicts: Falcon vs vanilla overlay under faults",
		Columns: []string{"scenario", "Con(Kpps)", "Falcon(Kpps)", "Falcon/Con", "Falcon recover(ms)", "verdict"},
	}
	fRecover := func(ms float64) string {
		if ms < 0 {
			return ">window"
		}
		return fmt.Sprintf("%.1f", ms)
	}
	for _, sc := range chaosScenarios() {
		var con, fal chaosOutcome
		for _, mode := range []workload.Mode{workload.ModeHost, workload.ModeCon, workload.ModeFalcon} {
			out := runChaosScenario(mode, opt, sc)
			switch mode {
			case workload.ModeCon:
				con = out
			case workload.ModeFalcon:
				fal = out
			}
			detail.AddRow(sc.key, mode.String(), fKpps(out.Res.PPS), fUs(out.Res.Latency.P99),
				fmt.Sprintf("%d", out.Drops), fmt.Sprintf("%d", out.KVRetries),
				fRecover(out.RecoverMs),
				fmt.Sprintf("%d", out.Rerouted), fmt.Sprintf("%d", out.Fallbacks),
				fmt.Sprintf("%.1f", out.DegradedMs))
		}
		ratio := 0.0
		if con.Res.PPS > 0 {
			ratio = fal.Res.PPS / con.Res.PPS
		}
		v := "OK"
		if ratio < 0.98 || fal.RecoverMs < 0 {
			v = "FAIL"
		}
		verdict.AddRow(sc.key, fKpps(con.Res.PPS), fKpps(fal.Res.PPS),
			fRatio(ratio), fRecover(fal.RecoverMs), v)
	}
	return []*stats.Table{detail, verdict}
}
