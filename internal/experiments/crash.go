package experiments

import (
	"fmt"

	"falcon/internal/faults"
	"falcon/internal/overlay"
	"falcon/internal/reconfig"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

// abl-crash: host crash and recovery under load. The same fixed-rate UDP
// flow and client/server/spare bed as abl-reconfig, but the server is
// killed mid-window with packets in its rings — no drain, no warning.
// The failure detector must notice the silenced heartbeats, remap the
// dead host's container onto the spare's standby twin, and detach the
// corpse's LP; the reboot must re-admit it. The properties under test:
// zero packets unaccounted across the crash (everything the corpse
// destroyed lands in the crash drop bucket), blackout bounded by
// detection latency plus the remap transit gap, and steady-state
// goodput within 2% of an undisturbed baseline after recovery.

func init() {
	register("abl-crash", "Host crash/recovery: fail-over, blackout and conservation SLOs", ablCrash)
}

// crashBlackoutBudgetMs bounds any full-blackout stretch: detector
// timeout (2ms) + SickAfter scans (2 x 0.5ms) + remap transit (0.2ms) +
// heartbeat age at death (<= one 1ms tick), rounded to whole buckets.
const crashBlackoutBudgetMs = 4

// crashTransitUs is the fail-over remap's transit gap (matches the
// default drain schedule).
const crashTransitUs = 200

// defaultCrashSchedule kills the server early enough that detection,
// fail-over and reboot all land inside the window: times are in units of
// windowMs/10 so quick and full runs exercise the same shape.
func defaultCrashSchedule(windowMs int) *reconfig.CrashSchedule {
	u := windowMs / 10
	if u < 1 {
		u = 1
	}
	return &reconfig.CrashSchedule{
		Crashes: []reconfig.CrashEvent{
			{Host: "server", AtMs: 2 * u, RebootMs: 6 * u},
		},
	}
}

// installCrashFaults turns the declarative schedule into injector
// windows. A crash without a reboot (and a partition without a heal)
// gets a window ending past any possible run end, so Revert never fires.
func installCrashFaults(tb *workload.Testbed, cs *reconfig.CrashSchedule, base, until sim.Time) {
	hostByName := func(name string) *overlay.Host {
		for _, h := range tb.Hosts() {
			if h.Name == name {
				return h
			}
		}
		panic(fmt.Sprintf("abl-crash: unknown host %q in crash schedule", name))
	}
	never := until + sim.Second // run end + straggler flush headroom
	plan := faults.Plan{Name: "crash-schedule"}
	for _, c := range cs.Crashes {
		at := base + sim.Time(c.AtMs)*sim.Millisecond
		end := never
		if c.RebootMs > 0 {
			end = base + sim.Time(c.RebootMs)*sim.Millisecond
		}
		plan.Items = append(plan.Items, faults.Item{
			At: at, For: end - at,
			Fault: &faults.HostCrash{Host: hostByName(c.Host)},
		})
	}
	for _, p := range cs.Partitions {
		at := base + sim.Time(p.AtMs)*sim.Millisecond
		end := never
		if p.HealMs > 0 {
			end = base + sim.Time(p.HealMs)*sim.Millisecond
		}
		plan.Items = append(plan.Items, faults.Item{
			At: at, For: end - at,
			Fault: &faults.KVPartition{KV: tb.Net.KV, Host: hostByName(p.Host)},
		})
	}
	faults.NewInjector(tb.E).Install(plan)
}

// runCrash drives one bed for warmup + window + tail. cs == nil is the
// undisturbed baseline; the sender's RNG draws are independent of the
// datapath, so baseline and crash runs see an identical send schedule
// and their per-ms buckets compare packet-for-packet.
func runCrash(mode workload.Mode, opt Options, cs *reconfig.CrashSchedule) reconfigRun {
	tb := newReconfigBed(mode, opt)
	until := opt.warmup() + opt.window() + 5*sim.Millisecond
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 64, 2, singleFlowAppCore, 1)
	// The spare's twin socket: same overlay IP and port as the primary,
	// live the moment the fail-over lands the container there.
	spareSock := tb.Spare.OpenUDP(tb.ServerCtrs[0].IP, 5001, singleFlowAppCore)

	var mgr *reconfig.Manager
	if cs != nil {
		mgr = reconfig.New(tb.Net, &reconfig.Schedule{})
		twins := map[string]string{}
		for _, c := range cs.Crashes {
			if c.Host == "spare" {
				panic("abl-crash: the spare is the standby target and cannot crash")
			}
			twins[c.Host] = "spare"
		}
		if err := mgr.StartDetector(reconfig.DetectorConfig{TransitUs: crashTransitUs},
			twins, opt.warmup(), until); err != nil {
			panic(fmt.Sprintf("abl-crash: %v", err))
		}
		installCrashFaults(tb, cs, opt.warmup(), until)
	}
	f.SendAtRate(reconfigRate, until)

	msCount := int(opt.window()/sim.Millisecond) + reconfigTailMs
	samples := make([]uint64, msCount+1)
	for i := 0; i <= msCount; i++ {
		i := i
		tb.E.At(opt.warmup()+sim.Time(i)*sim.Millisecond, func() {
			samples[i] = f.Sock.Delivered.Value() + spareSock.Delivered.Value()
		})
	}

	tb.Run(until)
	// Flush transmit stragglers so the conservation equation closes.
	for i := 0; i < 10 && tb.Client.TxPending() > 0; i++ {
		until += 2 * sim.Millisecond
		tb.Run(until)
	}
	finishAudit(tb, until)

	r := reconfigRun{
		samples:   samples,
		sent:      f.Sent(),
		delivered: f.Sock.Delivered.Value() + spareSock.Delivered.Value(),
		sockDrops: f.Sock.SocketDrops.Value() + spareSock.SocketDrops.Value(),
		txPending: tb.Client.TxPending() + tb.Server.TxPending() + tb.Spare.TxPending(),
		quiesceUs: -1,
	}
	if mgr != nil {
		r.recs = mgr.Records()
		r.final = mgr.Snapshot()
	} else {
		r.final = reconfig.New(tb.Net, &reconfig.Schedule{}).Snapshot()
	}
	return r
}

// crashBlackout scans every per-ms bucket pair for the longest stretch
// where the crash run delivered nothing while the baseline delivered
// something. Unlike reconfig.Analyze it is not anchored to generation
// records: the blackout starts at the crash itself, which precedes the
// fail-over record by the whole detection latency.
func crashBlackout(run, base []uint64) int {
	longest, streak := 0, 0
	for b := 1; b < len(run) && b < len(base); b++ {
		if run[b]-run[b-1] == 0 && base[b]-base[b-1] != 0 {
			streak++
			if streak > longest {
				longest = streak
			}
		} else {
			streak = 0
		}
	}
	return longest
}

// crashRecover returns how many ms after the first crash the run's
// per-ms delivery first came back to >= 80% of the baseline bucket (-1:
// never).
func crashRecover(run, base []uint64, crashMs int) int {
	for b := crashMs + 1; b < len(run) && b < len(base); b++ {
		rd, bd := run[b]-run[b-1], base[b]-base[b-1]
		if bd == 0 || float64(rd) >= 0.8*float64(bd) {
			return b - crashMs
		}
	}
	return -1
}

func ablCrash(opt Options) []*stats.Table {
	windowMs := int(opt.window() / sim.Millisecond)
	detail := &stats.Table{
		Title: "Host crash: failure-driven generations (64B UDP at 100Kpps, 100G)",
		Columns: []string{"mode", "gen", "action", "at(ms)", "blackout(ms)",
			"loss(pkts)", "crash/resolve/nic", "recover(ms)"},
	}
	verdict := &stats.Table{
		Title: "Host crash verdicts: blackout, conservation, recovery",
		Columns: []string{"mode", "base(Kpps)", "crash(Kpps)", "ratio", "unaccounted",
			"detect(ms)", "blackout(ms)", "recover(ms)", "verdict"},
	}
	fRecover := func(ms int) string {
		if ms < 0 {
			return ">window"
		}
		return fmt.Sprintf("%d", ms)
	}
	for _, mode := range []workload.Mode{workload.ModeCon, workload.ModeFalcon} {
		cs := opt.Crash
		if cs == nil {
			cs = defaultCrashSchedule(windowMs)
		}

		base := runCrash(mode, opt, nil)
		run := runCrash(mode, opt, cs)
		conv := reconfig.Analyze(run.samples, base.samples, run.recs, opt.warmup(), run.final)
		for i, rec := range run.recs {
			c := conv[i]
			detail.AddRow(mode.String(), fmt.Sprintf("%d", rec.Gen), c.Kind,
				fmt.Sprintf("%d", c.AtMs), fmt.Sprintf("%d", c.BlackoutMs),
				fmt.Sprintf("%d", c.LossPkts),
				fmt.Sprintf("%d/%d/%d", c.Drops.Crash, c.Drops.Resolve, c.Drops.NIC),
				fRecover(c.RecoverMs))
		}

		// Steady state starts after the last scheduled event has settled.
		lastMs := 0
		for _, c := range cs.Crashes {
			if c.AtMs > lastMs {
				lastMs = c.AtMs
			}
			if c.RebootMs > lastMs {
				lastMs = c.RebootMs
			}
		}
		for _, p := range cs.Partitions {
			if p.AtMs > lastMs {
				lastMs = p.AtMs
			}
			if p.HealMs > lastMs {
				lastMs = p.HealMs
			}
		}
		steadyFrom := lastMs + 2
		baseSteady := steadyMean(base.samples, steadyFrom)
		runSteady := steadyMean(run.samples, steadyFrom)
		ratio := 0.0
		if baseSteady > 0 {
			ratio = runSteady / baseSteady
		}

		// The crash run's SLOs are measured directly against the baseline
		// buckets: the blackout starts at the (unrecorded) crash instant,
		// not at the fail-over generation the detector declares later.
		firstCrashMs := cs.Crashes[0].AtMs
		blackout := crashBlackout(run.samples, base.samples)
		recover := crashRecover(run.samples, base.samples, firstCrashMs)

		// Detection latency and the fail-over/rejoin records themselves.
		detectMs := -1.0
		detached := false
		rejoined := false
		wantRejoin := false
		for _, c := range cs.Crashes {
			if c.RebootMs > 0 {
				wantRejoin = true
			}
		}
		for _, rec := range run.recs {
			switch rec.Action.Kind {
			case reconfig.KindFailover:
				if detectMs < 0 {
					crashAt := opt.warmup() + sim.Time(firstCrashMs)*sim.Millisecond
					detectMs = float64(rec.Applied-crashAt) / 1e6
				}
				if rec.Detached {
					detached = true
				}
			case reconfig.KindRejoin:
				rejoined = true
			}
		}

		v := "OK"
		if ratio < 0.98 || run.unaccounted() != 0 || detectMs < 0 || !detached ||
			recover < 0 || blackout > crashBlackoutBudgetMs || (wantRejoin && !rejoined) {
			v = "FAIL"
		}
		verdict.AddRow(mode.String(),
			fKpps(baseSteady*1e3), fKpps(runSteady*1e3), fRatio(ratio),
			fmt.Sprintf("%d", run.unaccounted()),
			fmt.Sprintf("%.1f", detectMs),
			fmt.Sprintf("%d", blackout), fRecover(recover), v)
	}
	return []*stats.Table{detail, verdict}
}
