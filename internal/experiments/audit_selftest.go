package experiments

import (
	"falcon/internal/audit"
	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

// Hidden audit selftests: each seeds one deliberate datapath defect and
// relies on the auditor to abort the run with the right attribution.
// They are the negative coverage for the audit subsystem and the
// concrete failures `falconsim -replay` reproduces — excluded from
// All() so -all runs stay green.

func init() {
	registerHidden("audit-leak", "Audit selftest: seeded SKB leak (must abort)", auditLeak)
	registerHidden("audit-double-free", "Audit selftest: seeded double-free (must abort)", auditDoubleFree)
	registerHidden("audit-stall", "Audit selftest: stalled NAPI/softirq core (must abort)", auditStall)
}

// auditSelftestBed is the single-flow bed with auditing always on
// (selftests are meaningless without it).
func auditSelftestBed(opt Options, cfg audit.Config) *workload.Testbed {
	tb := workload.NewTestbed(workload.TestbedConfig{
		Kernel: opt.Kernel, LinkRate: 100 * devices.Gbps, Cores: 12, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1},
		GRO: true, InnerGRO: true, Seed: opt.seed(),
	})
	if opt.MaxEvents > 0 {
		tb.E.SetEventBudget(opt.MaxEvents)
	}
	tb.EnableAudit(cfg)
	return tb
}

// auditLeak acquires one ledgered SKB mid-run and never frees it: the
// teardown leak check must abort naming site "selftest:leak".
func auditLeak(opt Options) []*stats.Table {
	tb := auditSelftestBed(opt, audit.Config{})
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 64, 2, singleFlowAppCore, 1)
	until := opt.warmup()
	f.SendAtRate(20_000, until)
	tb.E.At(opt.warmup()/2, func() {
		s := skb.NewTx(64, 0)
		s.Audit(tb.Audit, "selftest:leak")
		s.Stage("selftest:limbo")
	})
	tb.Run(until + 5*sim.Millisecond)
	finishAudit(tb, until+5*sim.Millisecond)
	return nil
}

// auditDoubleFree frees one ledgered SKB twice: the pool rejects the
// second free and the auditor must abort with kind "double-free".
func auditDoubleFree(opt Options) []*stats.Table {
	tb := auditSelftestBed(opt, audit.Config{})
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 64, 2, singleFlowAppCore, 1)
	until := opt.warmup()
	f.SendAtRate(20_000, until)
	tb.E.At(opt.warmup()/2, func() {
		s := skb.NewTx(64, 0)
		s.Audit(tb.Audit, "selftest:double-free")
		s.Stage("selftest:used")
		s.Free()
		s.Free() // the seeded defect
	})
	tb.Run(until + 5*sim.Millisecond)
	finishAudit(tb, until+5*sim.Millisecond)
	return nil
}

// auditStall wedges the RPS core mid-run and never revives it: packets
// pile up on its backlog with zero progress, and the watchdog must
// abort with the per-core state dump. WatchFrozen is on because the
// stall is injected through the same fault mechanism the chaos harness
// uses (which the watchdog exempts by default).
func auditStall(opt Options) []*stats.Table {
	tb := auditSelftestBed(opt, audit.Config{WatchFrozen: true})
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 64, 2, singleFlowAppCore, 1)
	until := opt.warmup() + opt.window()
	f.SendAtRate(100_000, until)
	tb.E.At(opt.warmup(), func() {
		tb.Server.M.Core(1).SetStalled(true) // the seeded defect: never unstalled
	})
	tb.Run(until + 5*sim.Millisecond)
	finishAudit(tb, until+5*sim.Millisecond)
	return nil
}
