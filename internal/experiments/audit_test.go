package experiments

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"falcon/internal/audit"
)

// runExpectingAbort runs a hidden selftest and returns the *audit.Abort
// it must panic with.
func runExpectingAbort(t *testing.T, id string) *audit.Abort {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("selftest %q not registered", id)
	}
	var ab *audit.Abort
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s completed without aborting — the seeded defect went undetected", id)
			}
			var isAbort bool
			ab, isAbort = r.(*audit.Abort)
			if !isAbort {
				t.Fatalf("%s panicked with %T (%v), want *audit.Abort", id, r, r)
			}
		}()
		e.Run(Options{Quick: true, Seed: 1})
	}()
	return ab
}

// TestAuditSelftestsAbortWithAttribution is the negative coverage for
// the audit subsystem: each hidden selftest seeds exactly one defect and
// the auditor must catch it with the right kind and attribution.
func TestAuditSelftestsAbortWithAttribution(t *testing.T) {
	cases := []struct {
		id, kind string
		detail   []string // substrings the violation must attribute
	}{
		{"audit-leak", "leak", []string{"selftest:leak", "selftest:limbo", "never freed"}},
		{"audit-double-free", "double-free", []string{"selftest:double-free", "selftest:used"}},
		{"audit-stall", "watchdog", []string{"server:core1", "queued", "no progress"}},
	}
	for _, tc := range cases {
		t.Run(tc.id, func(t *testing.T) {
			ab := runExpectingAbort(t, tc.id)
			if ab.V.Kind != tc.kind {
				t.Fatalf("violation kind %q, want %q (%s)", ab.V.Kind, tc.kind, ab.V)
			}
			for _, want := range tc.detail {
				if !strings.Contains(ab.V.Detail, want) {
					t.Fatalf("violation not attributed (missing %q): %s", want, ab.V)
				}
			}
			if ab.A == nil {
				t.Fatal("abort carries no auditor (nothing to dump)")
			}
		})
	}
}

// TestAuditSelftestDumpReplays closes the replay loop at the experiments
// layer: the dump header written from a selftest abort parses back to a
// RunInfo that re-runs the same experiment and reproduces the violation.
func TestAuditSelftestDumpReplays(t *testing.T) {
	ab := runExpectingAbort(t, "audit-double-free")
	path := filepath.Join(t.TempDir(), "repro.dump")
	info := audit.RunInfo{Exp: "audit-double-free", Seed: 1, Quick: true}
	if err := audit.WriteDumpFile(path, info, ab.V, ab.A); err != nil {
		t.Fatalf("write dump: %v", err)
	}
	parsed, err := audit.ParseDumpFile(path)
	if err != nil {
		t.Fatalf("parse dump: %v", err)
	}
	if parsed != info {
		t.Fatalf("dump round trip mangled RunInfo: %+v -> %+v", info, parsed)
	}
	ab2 := runExpectingAbort(t, parsed.Exp)
	// Pool generations are process-global (they keep counting across
	// runs), so they are masked; everything simulation-derived — kind,
	// ledger seq, times, sites, stage history — must match exactly.
	mask := regexp.MustCompile(`gen \d+`)
	first := mask.ReplaceAllString(ab.V.Detail, "gen N")
	second := mask.ReplaceAllString(ab2.V.Detail, "gen N")
	if ab2.V.Kind != ab.V.Kind || first != second {
		t.Fatalf("replay diverged:\n first: %s\nreplay: %s", ab.V, ab2.V)
	}
}

// TestHiddenSelftestsExcludedFromAll keeps `falconsim -all` green: the
// deliberately failing selftests must stay out of the public registry
// while remaining reachable by id for -replay.
func TestHiddenSelftestsExcludedFromAll(t *testing.T) {
	for _, e := range All() {
		if strings.HasPrefix(e.ID, "audit-") {
			t.Fatalf("hidden selftest %q leaked into All()", e.ID)
		}
	}
	for _, id := range []string{"audit-leak", "audit-double-free", "audit-stall"} {
		if _, ok := ByID(id); !ok {
			t.Fatalf("selftest %q not reachable by id", id)
		}
	}
}

// TestGoldenUnchangedWithAuditEnabled is the observer-purity contract:
// full auditing (ledger, balances, watchdog, trace ring) must leave
// experiment stdout byte-identical to the audit-off goldens. fig10
// covers the steady datapath, abl-chaos the fault-injected one.
func TestGoldenUnchangedWithAuditEnabled(t *testing.T) {
	for _, id := range []string{"fig10", "abl-chaos"} {
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden_"+id+"_quick_seed1.txt"))
			if err != nil {
				t.Fatalf("read golden: %v", err)
			}
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			got := ""
			for _, tbl := range e.Run(Options{Quick: true, Seed: 1, Audit: true}) {
				got += tbl.String() + "\n"
			}
			if got != string(want) {
				t.Fatalf("audit-on output diverged from the audit-off golden.\n--- want ---\n%s\n--- got ---\n%s",
					want, got)
			}
		})
	}
}
