package experiments

import (
	"falcon/internal/overlay"
	"falcon/internal/proto"
	"falcon/internal/sim"
)

// fabricConfig sizes a multi-host overlay fabric: N identical hosts with
// one container each, wired by a declarative topology. It decouples
// datapath construction from experiment logic — mesh8 and any future
// multi-host experiment share this builder instead of each hand-wiring
// engines, shards, hosts, links and KV state.
type fabricConfig struct {
	Hosts              int
	Cores              int
	RSSCores, RPSCores []int
	GRO, InnerGRO      bool
	LinkRate           float64
	LinkDelay          sim.Time

	// HostName/HostIP/CtrIP address host i and its container.
	HostName func(i int) string
	HostIP   func(i int) proto.IPv4Addr
	CtrIP    func(i int) proto.IPv4Addr

	// Links yields the topology as (a, b) host-index pairs, each
	// connected full-duplex in yield order (link construction forks
	// RNGs, so the order is part of the deterministic schedule).
	Links func(yield func(a, b int))

	// OnHost, when set, observes each host right after it and its
	// container are built — the hook experiments use to attach per-host
	// driver state at the exact construction point (again: RNG forks
	// made here must keep their position in the draw order).
	OnHost func(i int, h *overlay.Host, ctr *overlay.Container)
}

// ringLinks is the standard topology: host i connects to host (i+1)%n.
func ringLinks(n int) func(yield func(a, b int)) {
	return func(yield func(a, b int)) {
		for i := 0; i < n; i++ {
			yield(i, (i+1)%n)
		}
	}
}

// fabric is a built multi-host datapath.
type fabric struct {
	E     sim.Sim
	Net   *overlay.Network
	Hosts []*overlay.Host
	Ctrs  []*overlay.Container
}

// buildFabric constructs the fabric on a serial engine (Shards <= 1) or
// a PDES cluster with host i pinned to shard i%Shards. Everything a host
// owns runs on its own shard; only the inter-host wires cross shards.
func buildFabric(opt Options, cfg fabricConfig) *fabric {
	var e sim.Sim
	if shards, workers := resolveShards(opt.Shards, cfg.Hosts); shards > 1 {
		cl := sim.NewCluster(opt.seed(), shards, workers)
		cl.SetAdaptive(!opt.FixedHorizon)
		e = cl
	} else {
		e = sim.New(opt.seed())
	}
	net := overlay.NewNetwork(e)
	fb := &fabric{E: e, Net: net}
	for i := 0; i < cfg.Hosts; i++ {
		h := net.AddHost(overlay.HostConfig{
			Name: cfg.HostName(i), IP: cfg.HostIP(i),
			Cores: cfg.Cores, RSSCores: cfg.RSSCores, RPSCores: cfg.RPSCores,
			GRO: cfg.GRO, InnerGRO: cfg.InnerGRO, Kernel: opt.Kernel,
			Shard: i,
		})
		if opt.RxCache {
			h.EnableRxCache()
		}
		ctr := h.AddContainer(cfg.HostName(i)+"-c1", cfg.CtrIP(i))
		fb.Hosts = append(fb.Hosts, h)
		fb.Ctrs = append(fb.Ctrs, ctr)
		if cfg.OnHost != nil {
			cfg.OnHost(i, h, ctr)
		}
	}
	cfg.Links(func(a, b int) {
		net.Connect(fb.Hosts[a], fb.Hosts[b], cfg.LinkRate, cfg.LinkDelay)
	})
	if opt.MaxEvents > 0 {
		e.SetEventBudget(opt.MaxEvents)
	}
	return fb
}
