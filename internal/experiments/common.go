package experiments

import (
	"strconv"

	"falcon/internal/apps"
	"falcon/internal/audit"
	falconcore "falcon/internal/core"
	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/socket"
	"falcon/internal/stats"
	"falcon/internal/transport"
	"falcon/internal/workload"
)

// Core-layout conventions shared by the single-flow experiments (they
// mirror the paper's Fig. 11 layout): RSS pins NIC queues to core 0, RPS
// steers softirqs to core 1, the application thread runs on core 2, and
// FALCON_CPUS are cores 3–5.
var (
	singleFlowFalconCPUs = []int{3, 4, 5}
	singleFlowAppCore    = 2
)

// newSingleFlowBed builds the standard single-flow testbed. colocate
// forces both hosts onto one PDES shard when Options.Shards > 1 — TCP
// beds need it because a transport.Conn shares state between its two
// endpoints (transport.Dial rejects split endpoints).
func newSingleFlowBed(mode workload.Mode, opt Options, link float64, colocate bool) *workload.Testbed {
	tb := workload.NewTestbed(workload.TestbedConfig{
		Kernel: opt.Kernel, LinkRate: link, Cores: 12, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1},
		GRO: true, InnerGRO: true, Seed: opt.seed(),
		Shards: opt.Shards, Colocate: colocate, FixedHorizon: opt.FixedHorizon,
		RxCache: opt.RxCache,
	})
	if opt.MaxEvents > 0 {
		tb.E.SetEventBudget(opt.MaxEvents)
	}
	if opt.Audit {
		tb.EnableAudit(audit.Config{})
	}
	if mode == workload.ModeFalcon {
		tb.EnableFalconOnServer(falconcore.DefaultConfig(singleFlowFalconCPUs))
	}
	return tb
}

// finishAudit drains the simulation until every ledgered SKB is freed
// (bounded: traffic has stopped by `until`, so a handful of extra
// 2 ms slices flushes stragglers), then runs the auditor's teardown
// checks — the end-of-run leak check included. No-op without audit.
func finishAudit(tb *workload.Testbed, until sim.Time) {
	a := tb.Audit
	if a == nil {
		return
	}
	deadline := until
	for i := 0; i < 10 && a.LiveCount() > 0; i++ {
		deadline += 2 * sim.Millisecond
		tb.Run(deadline)
	}
	a.Final()
}

// udpStress runs the 3-client single-flow UDP stress (Fig. 10's
// workload) and returns the measured window.
func udpStress(mode workload.Mode, opt Options, link float64, size int) workload.Result {
	tb := newSingleFlowBed(mode, opt, link, false)
	until := opt.warmup() + opt.window() + 5*sim.Millisecond
	sock, _ := tb.StressFlood(mode != workload.ModeHost, 3, size, singleFlowAppCore, until)
	res := workload.MeasureWindow(tb, []*socket.Socket{sock}, opt.warmup(), opt.window())
	finishAudit(tb, until)
	return res
}

// udpFixedRate runs one single flow at a fixed packet rate.
func udpFixedRate(mode workload.Mode, opt Options, link float64, size int, pps float64) workload.Result {
	tb := newSingleFlowBed(mode, opt, link, false)
	until := opt.warmup() + opt.window() + 5*sim.Millisecond
	var f *workload.UDPFlow
	if mode == workload.ModeHost {
		f = tb.NewUDPFlow(nil, workload.ServerIP, 7000, 5001, size, 2, singleFlowAppCore, 1)
	} else {
		f = tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, size, 2, singleFlowAppCore, 1)
	}
	f.SendAtRate(pps, until)
	res := workload.MeasureWindow(tb, []*socket.Socket{f.Sock}, opt.warmup(), opt.window())
	finishAudit(tb, until)
	return res
}

// tcpResult is a measured TCP window.
type tcpResult struct {
	PPS     float64 // delivered messages (segments) per second
	Gbps    float64 // goodput
	Latency stats.Summary
	Result  workload.Result
}

// tcpBulk runs n continuous TCP connections of the given message size
// and measures the window. hostPlus enables GRO splitting for the host
// network (the paper's "Host+" configuration in Fig. 13).
func tcpBulk(mode workload.Mode, opt Options, link float64, msgSize, conns int, hostPlus bool) tcpResult {
	tb := newSingleFlowBed(mode, opt, link, true)
	if hostPlus && mode == workload.ModeHost {
		cfg := falconcore.DefaultConfig(singleFlowFalconCPUs)
		cfg.GROSplit = true
		tb.EnableFalconOnServer(cfg)
	}

	var cs []*transport.Conn
	for i := 0; i < conns; i++ {
		c := mustDial(tb, newTCPConfig(tb, mode, msgSize, i))
		c.StartContinuous()
		cs = append(cs, c)
	}

	tb.Run(opt.warmup())
	var socks []*socket.Socket
	base := uint64(0)
	for _, c := range cs {
		socks = append(socks, c.Socket())
		base += c.BytesAssembled.Value()
	}
	res := workload.MeasureWindow(tb, socks, opt.warmup(), opt.window())
	var bytes uint64
	for _, c := range cs {
		bytes += c.BytesAssembled.Value()
	}
	bytes -= base
	g := float64(bytes) * 8 / opt.window().Seconds() / 1e9
	for _, c := range cs {
		c.Close()
	}
	return tcpResult{
		PPS:     stats.Rate(bytes/uint64(msgSize), int64(opt.window())),
		Gbps:    g,
		Latency: res.Latency,
		Result:  res,
	}
}

// newTCPConfig builds the standard single-flow TCP config (connection
// idx when running several).
func newTCPConfig(tb *workload.Testbed, mode workload.Mode, msgSize, idx int) transport.Config {
	cfg := transport.Config{
		Net:        tb.Net,
		SenderHost: tb.Client, SenderCore: 2 + idx%3, SrcPort: uint16(40000 + idx),
		ReceiverHost: tb.Server, AppCore: singleFlowAppCore, DstPort: uint16(5200 + idx),
		MsgSize: msgSize, FlowID: uint64(idx + 1),
	}
	if mode != workload.ModeHost {
		cfg.SenderCtr = tb.ClientCtrs[0]
		cfg.ReceiverCtr = tb.ServerCtrs[0]
	}
	return cfg
}

// mustDial dials or panics (experiment configs are static).
func mustDial(tb *workload.Testbed, cfg transport.Config) *transport.Conn {
	c, err := transport.Dial(cfg, 0)
	if err != nil {
		panic(err)
	}
	return c
}

// measureFlows measures one window over the union of the flows' sockets
// (flows may share a socket).
func measureFlows(tb *workload.Testbed, flows []*workload.UDPFlow, opt Options) workload.Result {
	var socks []*socket.Socket
	seen := map[*socket.Socket]bool{}
	for _, f := range flows {
		if !seen[f.Sock] {
			seen[f.Sock] = true
			socks = append(socks, f.Sock)
		}
	}
	return workload.MeasureWindow(tb, socks, opt.warmup(), opt.window())
}

// startMemcachedOn deploys the standard data-caching setup on a testbed:
// the memcached container on the server (app core 6), clients from the
// client container across `threads` cores.
func startMemcachedOn(tb *workload.Testbed, threads, conns int, think sim.Time, until sim.Time) *apps.Memcached {
	// Client threads spread over the client cores that exist (the think
	// time already reflects the requested thread count).
	coreSpread := threads
	if max := tb.Client.M.NumCores() - 6; coreSpread > max {
		coreSpread = max
	}
	return apps.StartMemcached(apps.MemcachedConfig{
		ServerHost: tb.Server, ServerCtr: tb.ServerCtrs[0],
		ServerCores: []int{8, 9, 10, 11}, Port: 11211,
		ClientHost: tb.Client, ClientCtr: tb.ClientCtrs[0],
		ClientThreads: coreSpread, ClientCoreBase: 6, Connections: conns,
		ThinkTime: think,
	}, until)
}

// linkName labels a rate like the paper.
func linkName(rate float64) string {
	if rate >= 100*devices.Gbps {
		return "100G"
	}
	return "10G"
}

// sizeLabel renders packet sizes as the paper's axis labels.
func sizeLabel(size int) string {
	switch {
	case size >= 64000:
		return "64K"
	case size >= 1024 && size%1024 == 0:
		return strconv.Itoa(size/1024) + "K"
	default:
		return strconv.Itoa(size) + "B"
	}
}
