package experiments

import (
	"fmt"

	"falcon/internal/devices"
	"falcon/internal/overlay"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/socket"
	"falcon/internal/stats"
)

func init() {
	register("mesh8", "Mesh: 8-host UDP ring over VXLAN (multi-host PDES showcase)", mesh8)
}

// Mesh topology parameters. Eight hosts in a ring is the smallest
// topology where every PDES shard both sends and receives cross-shard
// traffic and no shard is idle; the 20 µs inter-host delay is a
// rack-scale RTT that gives the cluster a generous lookahead window
// (thousands of per-host events per synchronization barrier).
const (
	meshHosts     = 8
	meshPayload   = 256
	meshRatePPS   = 150_000
	meshLinkDelay = 20 * sim.Microsecond
	meshLinkRate  = 10 * devices.Gbps
	meshPort      = 5001
)

// meshNode is one host of the ring plus its traffic driver state.
type meshNode struct {
	host *overlay.Host
	ctr  *overlay.Container
	sock *socket.Socket

	// Sender side: Poisson process toward the next host's container.
	dst     proto.IPv4Addr
	rng     *sim.Rand
	seq     uint64
	stopped bool
	until   sim.Time
}

func (n *meshNode) start(until sim.Time) {
	n.until = until
	n.tick()
}

func (n *meshNode) tick() {
	if n.stopped || n.host.E.Now() >= n.until {
		return
	}
	n.seq++
	n.host.SendUDP(overlay.SendParams{
		From: n.ctr, SrcPort: 7000, DstIP: n.dst, DstPort: meshPort,
		Payload: meshPayload, Core: 2, FlowID: uint64(n.ctr.Host.IP), Seq: n.seq,
	})
	gap := sim.Time(n.rng.ExpFloat64() * 1e9 / meshRatePPS)
	if gap < 1 {
		gap = 1
	}
	n.host.E.After(gap, n.tick)
}

// buildMesh constructs the ring via the shared fabric builder: host i is
// pinned to shard i%shards (serial engine when shards <= 1), and each
// node's traffic-driver RNG forks at the host's construction point so
// the draw order — and thus the golden output — matches the pre-fabric
// wiring exactly.
func buildMesh(opt Options) (sim.Sim, []*meshNode) {
	nodes := make([]*meshNode, meshHosts)
	fb := buildFabric(opt, fabricConfig{
		Hosts: meshHosts,
		// 8 cores: RSS on 0, RPS to 1, app on 2 — the single-flow layout
		// scaled down to a rack node.
		Cores: 8, RSSCores: []int{0}, RPSCores: []int{1},
		GRO: true, InnerGRO: true,
		LinkRate: meshLinkRate, LinkDelay: meshLinkDelay,
		HostName: func(i int) string { return fmt.Sprintf("m%d", i) },
		HostIP:   func(i int) proto.IPv4Addr { return proto.IP4(192, 168, 2, byte(10+i)) },
		CtrIP:    func(i int) proto.IPv4Addr { return proto.IP4(10, 33, byte(i), 1) },
		Links:    ringLinks(meshHosts),
		OnHost: func(i int, h *overlay.Host, ctr *overlay.Container) {
			nodes[i] = &meshNode{host: h, ctr: ctr, rng: h.Net.E.Rand().Fork()}
		},
	})
	for i, n := range nodes {
		n.dst = nodes[(i+1)%meshHosts].ctr.IP
	}
	// Open sockets after all links exist so rings and KV are complete.
	for _, n := range nodes {
		n.sock = n.host.OpenUDP(n.ctr.IP, meshPort, 2)
	}
	return fb.E, nodes
}

// mesh8 runs the ring for one measured window and reports per-host
// delivery and latency plus the aggregate. With -shards N the same
// byte-identical table is produced by N-way parallel execution — the
// multi-host experiment the sharded-vs-serial benchmark times.
func mesh8(opt Options) []*stats.Table {
	e, nodes := buildMesh(opt)
	warmup, window := opt.warmup(), opt.window()
	until := warmup + window + 5*sim.Millisecond
	for _, n := range nodes {
		n.start(until)
	}
	e.RunUntil(warmup)
	for _, n := range nodes {
		n.host.ResetMeasurement()
		n.sock.ResetMeasurement()
	}
	e.RunUntil(warmup + window)

	t := &stats.Table{
		Title:   fmt.Sprintf("Mesh: %d-host UDP ring, %dB at %dKpps/host over VXLAN (10G, 20us links)", meshHosts, meshPayload, meshRatePPS/1000),
		Columns: []string{"host", "delivered(Kpps)", "p50(us)", "p99(us)", "p99.9(us)", "sock-drops"},
	}
	var total uint64
	agg := stats.NewHistogram()
	for i, n := range nodes {
		s := n.sock.Latency.Summarize()
		d := n.sock.Delivered.Value()
		total += d
		agg.Merge(n.sock.Latency)
		t.AddRow(fmt.Sprintf("m%d", i),
			fKpps(stats.Rate(d, int64(window))), fUs(s.P50), fUs(s.P99), fUs(s.P999),
			fmt.Sprintf("%d", n.sock.SocketDrops.Value()))
	}
	a := agg.Summarize()
	t.AddRow("aggregate", fKpps(stats.Rate(total, int64(window))), fUs(a.P50), fUs(a.P99), fUs(a.P999), "-")
	if opt.TailLatency != nil {
		opt.TailLatency.Merge(agg)
	}

	captureWindowStats(opt, e)
	return []*stats.Table{t}
}
