package experiments

import (
	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/socket"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

func init() {
	register("fig12", "Per-packet latency: UDP/TCP, underloaded/overloaded", fig12)
}

// fig12: the four latency panels. (a) underloaded UDP 16B, (b)
// underloaded TCP 4K (GRO splitting matters), (c) overloaded UDP 16B,
// (d) overloaded TCP 16B. Paper: Falcon approaches native latency and
// the gain is largest in overloaded runs where queueing dominates.
func fig12(opt Options) []*stats.Table {
	link := 100 * devices.Gbps
	modes := []workload.Mode{workload.ModeHost, workload.ModeCon, workload.ModeFalcon}
	var tables []*stats.Table

	addRows := func(t *stats.Table, mode workload.Mode, s stats.Summary) {
		t.AddRow(mode.String(), fUs(int64(s.Mean)), fUs(s.P50), fUs(s.P90), fUs(s.P99), fUs(s.P999))
	}
	newT := func(title string) *stats.Table {
		return &stats.Table{Title: title,
			Columns: []string{"mode", "avg(us)", "p50", "p90", "p99", "p99.9"}}
	}

	// (a) underloaded UDP 16B at a gentle fixed rate.
	ta := newT("Fig 12(a): underloaded UDP 16B latency")
	for _, m := range modes {
		r := udpFixedRate(m, opt, link, 16, 100_000)
		addRows(ta, m, r.Latency)
	}
	tables = append(tables, ta)

	// (b) underloaded TCP 4K: paced messages; GRO splitting active for
	// Falcon.
	tb := newT("Fig 12(b): underloaded TCP 4K latency")
	for _, m := range modes {
		s := tcpPaced(m, opt, link, 4096, 25*sim.Microsecond)
		addRows(tb, m, s)
	}
	tables = append(tables, tb)

	// (c) overloaded UDP 16B: each mode is driven to ~90% of its own
	// maximum rate ("driven to its respective maximum throughput before
	// packet drop occurs"), so latency reflects near-saturation queueing
	// rather than full queues.
	// All modes receive the same high rate — just under the host's
	// capacity. It overloads the vanilla overlay's serialized core
	// (queues saturate), while Falcon's pipelined stages absorb it.
	tc := newT("Fig 12(c): overloaded UDP 16B latency (common high rate)")
	hostCap := udpStress(workload.ModeHost, opt, link, 16).PPS
	for _, m := range modes {
		r := udpFixedRate(m, opt, link, 16, 0.8*hostCap)
		addRows(tc, m, r.Latency)
	}
	tables = append(tables, tc)

	// (d) overloaded TCP 16B: continuous bulk with small messages.
	td := newT("Fig 12(d): overloaded TCP 16B latency")
	for _, m := range modes {
		r := tcpBulk(m, opt, link, 16, 1, false)
		addRows(td, m, r.Latency)
	}
	tables = append(tables, td)
	return tables
}

// tcpPaced measures latency of a TCP flow paced below saturation.
func tcpPaced(mode workload.Mode, opt Options, link float64, msgSize int, gap sim.Time) stats.Summary {
	tb := newSingleFlowBed(mode, opt, link, true)
	c := mustDial(tb, newTCPConfig(tb, mode, msgSize, 0))
	until := opt.warmup() + opt.window() + 5*sim.Millisecond
	var tick func()
	tick = func() {
		if tb.Client.E.Now() >= until {
			return
		}
		c.Send(1)
		tb.Client.E.After(gap, tick)
	}
	tick()
	res := workload.MeasureWindow(tb, []*socket.Socket{c.Socket()}, opt.warmup(), opt.window())
	c.Close()
	return res.Latency
}
