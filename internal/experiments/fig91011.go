package experiments

import (
	"fmt"

	"falcon/internal/costmodel"
	"falcon/internal/devices"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

func init() {
	register("fig9a", "Stage-1 saturation under TCP 4K (skb_alloc + GRO)", fig9a)
	register("fig10", "UDP stress packet rates: Host/Con/Falcon x kernels x links", fig10)
	register("fig11", "Per-core CPU breakdown, 16B single-flow UDP", fig11)
}

// fig9a: under bulk TCP with 4 KB segments, the pNIC stage saturates one
// core with skb_allocation and napi_gro_receive contributing ~45% each —
// the motivation for softirq splitting.
func fig9a(opt Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Fig 9(a): pNIC-stage functions under TCP bulk (100G)",
		Columns: []string{"size", "napi-core busy", "skb_alloc share", "gro share", "alloc+gro"},
	}
	for _, size := range []int{1024, 4096} {
		tb := newSingleFlowBed(workload.ModeCon, opt, 100*devices.Gbps, true)
		c := mustDial(tb, newTCPConfig(tb, workload.ModeCon, size, 0))
		c.StartContinuous()
		tb.Run(opt.warmup())
		tb.Server.ResetMeasurement()
		tb.Run(opt.warmup() + opt.window())
		prof := tb.Server.M.Prof
		// Shares of the NAPI core's softirq time.
		napiBusy := tb.Server.M.Acct.Utilization(0)
		coreTotal := float64(tb.Server.M.Acct.TotalBusy(0))
		alloc := float64(prof.CoreTime(0, costmodel.FnSKBAlloc)) / maxf(coreTotal, 1)
		gro := float64(prof.CoreTime(0, costmodel.FnGROReceive)) / maxf(coreTotal, 1)
		t.AddRow(sizeLabel(size), fPct(napiBusy), fPct(alloc), fPct(gro), fPct(alloc+gro))
		c.Close()
	}
	return []*stats.Table{t}
}

// fig10: the headline single-flow UDP stress across kernels, links and
// packet sizes. Paper: Falcon near-native at 10G and up to 87% of host
// at 100G, with the residual gap below-MTU sizes.
func fig10(opt Options) []*stats.Table {
	var tables []*stats.Table
	sizes := []int{16, 1024, 4096, 65000}
	if opt.Quick {
		sizes = []int{16, 4096}
	}
	kernels := []string{"linux-4.19", "linux-5.4"}
	links := []float64{10 * devices.Gbps, 100 * devices.Gbps}
	for _, kernel := range kernels {
		for _, link := range links {
			t := &stats.Table{
				Title:   fmt.Sprintf("Fig 10: UDP stress packet rate (Kpps), %s, %s", kernel, linkName(link)),
				Columns: []string{"size", "Host", "Con", "Falcon", "Con/Host", "Falcon/Host"},
			}
			lt := &stats.Table{
				Title:   fmt.Sprintf("Fig 10 latency, p50/p99/p99.9 (us), %s, %s", kernel, linkName(link)),
				Columns: []string{"size", "Host", "Con", "Falcon"},
			}
			kopt := opt
			kopt.Kernel = kernel
			for _, size := range sizes {
				host := udpStress(workload.ModeHost, kopt, link, size)
				con := udpStress(workload.ModeCon, kopt, link, size)
				fal := udpStress(workload.ModeFalcon, kopt, link, size)
				t.AddRow(sizeLabel(size), fKpps(host.PPS), fKpps(con.PPS), fKpps(fal.PPS),
					fRatio(con.PPS/host.PPS), fRatio(fal.PPS/host.PPS))
				lt.AddRow(sizeLabel(size), fP3(host.Latency), fP3(con.Latency), fP3(fal.Latency))
				if opt.TailLatency != nil {
					opt.TailLatency.Merge(host.LatencyHist)
					opt.TailLatency.Merge(con.LatencyHist)
					opt.TailLatency.Merge(fal.LatencyHist)
				}
			}
			tables = append(tables, t, lt)
		}
	}
	return tables
}

// fP3 renders a latency summary as "p50/p99/p99.9" in µs.
func fP3(s stats.Summary) string {
	return fUs(s.P50) + "/" + fUs(s.P99) + "/" + fUs(s.P999)
}

// fig11: per-core CPU breakdown for the 16B single-flow stress. Paper:
// host uses cores 0 (irq+steer), 1 (softirq) and 2 (user); the vanilla
// overlay overloads core 1 with three softirqs; Falcon recruits two
// extra cores and shifts the bottleneck to user-space receive.
func fig11(opt Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Fig 11: per-core CPU% (hardirq/softirq/task), 16B UDP stress, 100G",
		Columns: []string{"mode", "core", "busy", "hardirq", "softirq", "task"},
	}
	for _, mode := range []workload.Mode{workload.ModeHost, workload.ModeCon, workload.ModeFalcon} {
		r := udpStress(mode, opt, 100*devices.Gbps, 16)
		for c := 0; c <= 5; c++ {
			if r.CoreBusy[c] < 0.02 {
				continue
			}
			hard := r.CoreBusy[c] - r.CoreSoftirq[c] - r.CoreTask[c]
			if hard < 0 {
				hard = 0
			}
			t.AddRow(mode.String(), fmt.Sprintf("core%d", c),
				fPct(r.CoreBusy[c]), fPct(hard), fPct(r.CoreSoftirq[c]), fPct(r.CoreTask[c]))
		}
	}
	return []*stats.Table{t}
}
