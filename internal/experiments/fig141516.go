package experiments

import (
	"fmt"

	falconcore "falcon/internal/core"
	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

func init() {
	register("fig14", "Multi-container throughput in busy systems", fig14)
	register("fig15", "FALCON_LOAD_THRESHOLD sensitivity", fig15)
	register("fig16", "Adaptability: dynamic two-choice vs static hashing", fig16)
	register("abl-balancer", "Ablation: static vs two-choice vs least-loaded balancing", ablBalancer)
}

// ablBalancer runs the hotspot workload under all three balancing
// strategies. The paper's Section 4.3 rationale reproduces directly:
// static hashing cannot move softirqs off a hot core; per-packet
// least-loaded selection herds packets onto whichever core the (stale,
// tick-refreshed) load estimate names — and, because it abandons the
// flow/device pin, it delivers packets out of order; the two-choice
// design gets the throughput without either pathology.
func ablBalancer(opt Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Ablation: balancer strategies under a hotspot (100G)",
		Columns: []string{"balancer", "throughput(Kpps)", "vs static", "order violations"},
	}
	run := func(twoChoice, leastLoaded bool, seed uint64) (float64, uint64) {
		o := opt
		o.Seed = seed
		cfg := falconcore.DefaultConfig([]int{0, 1, 2, 3, 4, 5})
		cfg.TwoChoice = twoChoice
		cfg.LeastLoaded = leastLoaded
		tb := busySystemBed(o, &cfg)
		stop := o.warmup() + o.window() + 5*sim.Millisecond
		var list []*workload.UDPFlow
		for i := 0; i < 8; i++ {
			f := tb.NewUDPFlow(tb.ClientCtrs[i], tb.ServerCtrs[i].IP,
				uint16(7000+i), 5001, 1024, 2+i%6, 6+i%10, uint64(i+1))
			f.SendAtRate(60_000, stop)
			list = append(list, f)
		}
		tb.E.At(o.warmup()/2, func() { list[0].SetRate(400_000) })
		res := measureFlows(tb, list, o)
		var viols uint64
		for _, f := range list {
			viols += f.Sock.OrderViols
		}
		return res.PPS, viols
	}
	seeds := []uint64{1, 2}
	if opt.Quick {
		seeds = []uint64{1}
	}
	type row struct {
		label                  string
		twoChoice, leastLoaded bool
	}
	rows := []row{
		{"static hash", false, false},
		{"two-choice (falcon)", true, false},
		{"least-loaded per packet", false, true},
	}
	var static float64
	for _, r := range rows {
		var pps float64
		var viols uint64
		for _, seed := range seeds {
			p, v := run(r.twoChoice, r.leastLoaded, seed)
			pps += p
			viols += v
		}
		pps /= float64(len(seeds))
		if r.label == "static hash" {
			static = pps
		}
		t.AddRow(r.label, fKpps(pps), fRatio(pps/maxf(static, 1)),
			fmt.Sprintf("%d", viols))
	}
	return []*stats.Table{t}
}

// busySystemBed: the fig 14–15 configuration — packet receiving limited
// to six cores (0–5) which are also FALCON_CPUS, applications on the
// remaining cores. Falcon must find idle cycles among the receiving
// cores themselves.
func busySystemBed(opt Options, falconCfg *falconcore.Config) *workload.Testbed {
	tb := workload.NewTestbed(workload.TestbedConfig{
		Kernel: opt.Kernel, LinkRate: 100 * devices.Gbps, Cores: 16, Containers: 40,
		RSSCores: []int{0, 1, 2, 3, 4, 5}, RPSCores: []int{0, 1, 2, 3, 4, 5},
		GRO: true, InnerGRO: true, Seed: opt.seed(),
	})
	if falconCfg != nil {
		tb.EnableFalconOnServer(*falconCfg)
	}
	return tb
}

// runBusy drives one fixed-rate flow per container and measures.
func runBusy(tb *workload.Testbed, opt Options, containers int, pps float64) workload.Result {
	stop := opt.warmup() + opt.window() + 5*sim.Millisecond
	var list []*workload.UDPFlow
	for i := 0; i < containers; i++ {
		f := tb.NewUDPFlow(tb.ClientCtrs[i], tb.ServerCtrs[i].IP,
			uint16(7000+i), 5001, 1024, 2+i%6, 6+i%10, uint64(i+1))
		f.SendAtRate(pps, stop)
		list = append(list, f)
	}
	return measureFlows(tb, list, opt)
}

// perContainerRate drives the six receiving cores from ~70% busy at 6
// containers toward overload at 40.
const perContainerRate = 225_000

// fig14: paper: Falcon gains up to 27% (UDP) with idle headroom, the
// gain diminishes as utilization climbs, and Falcon never underperforms
// RSS/RPS because the load gate disables it when the system saturates.
func fig14(opt Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Fig 14: multi-container UDP throughput (Kpps) on 6 rx cores",
		Columns: []string{"containers", "Con", "Falcon", "gain", "rx-util(Con)", "rx-util(Falcon)"},
	}
	counts := []int{6, 10, 20, 30, 40}
	if opt.Quick {
		counts = []int{6, 20}
	}
	for _, n := range counts {
		con := runBusy(busySystemBed(opt, nil), opt, n, perContainerRate)
		cfg := falconcore.DefaultConfig([]int{0, 1, 2, 3, 4, 5})
		fal := runBusy(busySystemBed(opt, &cfg), opt, n, perContainerRate)
		rxUtil := func(r workload.Result) float64 {
			s := 0.0
			for c := 0; c < 6; c++ {
				s += r.CoreBusy[c]
			}
			return s / 6
		}
		t.AddRow(fmt.Sprintf("%d", n), fKpps(con.PPS), fKpps(fal.PPS),
			fPct(fal.PPS/con.PPS-1), fPct(rxUtil(con)), fPct(rxUtil(fal)))
	}
	return []*stats.Table{t}
}

// fig15: sweep FALCON_LOAD_THRESHOLD on the busy system at two load
// levels. Paper: a low threshold (<=70%) turns Falcon off while idle
// cycles still exist (missing the gains visible at moderate load);
// always-on keeps paying pipelining overhead after the system
// saturates; 80-90% captures both regimes.
func fig15(opt Options) []*stats.Table {
	var tables []*stats.Table
	type setting struct {
		label    string
		thr      float64
		alwaysOn bool
	}
	settings := []setting{
		{"always-on", 0, true},
		{"50%", 0.5, false},
		{"70%", 0.7, false},
		{"80%", 0.8, false},
		{"90%", 0.9, false},
	}
	if opt.Quick {
		settings = []setting{{"always-on", 0, true}, {"50%", 0.5, false}, {"90%", 0.9, false}}
	}
	loads := []struct {
		label      string
		containers int
	}{
		{"moderate (8 containers)", 8},
		{"saturated (32 containers)", 32},
	}
	for _, load := range loads {
		t := &stats.Table{
			Title:   "Fig 15: threshold sensitivity, " + load.label,
			Columns: []string{"threshold", "throughput(Kpps)", "vs Con"},
		}
		base := runBusy(busySystemBed(opt, nil), opt, load.containers, perContainerRate)
		t.AddRow("Con (no falcon)", fKpps(base.PPS), "1.00x")
		for _, s := range settings {
			cfg := falconcore.DefaultConfig([]int{0, 1, 2, 3, 4, 5})
			cfg.AlwaysOn = s.alwaysOn
			if s.thr > 0 {
				cfg.LoadThreshold = s.thr
			}
			r := runBusy(busySystemBed(opt, &cfg), opt, load.containers, perContainerRate)
			t.AddRow(s.label, fKpps(r.PPS), fRatio(r.PPS/base.PPS))
		}
		tables = append(tables, t)
	}
	return tables
}

// fig16: hotspot adaptability. Several fixed-rate flows share the rx
// cores; mid-run one flow's intensity jumps, overloading its hashed
// core. The static balancer (no second choice) cannot move softirqs
// away; the dynamic two-choice balancer re-steers and recovers. Paper:
// +18% UDP throughput, consistent across runs.
func fig16(opt Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Fig 16: hotspot adaptability (Kpps after intensity shift)",
		Columns: []string{"balancer", "throughput", "vs static"},
	}
	run := func(twoChoice bool, seed uint64) float64 {
		o := opt
		o.Seed = seed
		cfg := falconcore.DefaultConfig([]int{0, 1, 2, 3, 4, 5})
		cfg.TwoChoice = twoChoice
		tb := busySystemBed(o, &cfg)
		stop := o.warmup() + o.window() + 5*sim.Millisecond
		var list []*workload.UDPFlow
		for i := 0; i < 8; i++ {
			f := tb.NewUDPFlow(tb.ClientCtrs[i], tb.ServerCtrs[i].IP,
				uint16(7000+i), 5001, 1024, 2+i%6, 6+i%10, uint64(i+1))
			f.SendAtRate(60_000, stop)
			list = append(list, f)
		}
		// Mid-warmup, one flow becomes an elephant.
		tb.E.At(o.warmup()/2, func() { list[0].SetRate(400_000) })
		return measureFlows(tb, list, o).PPS
	}
	seeds := []uint64{1, 2, 3}
	if opt.Quick {
		seeds = []uint64{1}
	}
	var stat, dyn float64
	for _, s := range seeds {
		stat += run(false, s)
		dyn += run(true, s)
	}
	stat /= float64(len(seeds))
	dyn /= float64(len(seeds))
	t.AddRow("static (first choice only)", fKpps(stat), "1.00x")
	t.AddRow("dynamic (two-choice)", fKpps(dyn), fRatio(dyn/stat))
	return []*stats.Table{t}
}
