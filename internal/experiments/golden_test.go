package experiments

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// renderExperiment runs an experiment and renders its tables exactly the
// way the testdata goldens were captured: quick windows, seed 1.
func renderExperiment(t testing.TB, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	out := ""
	for _, tbl := range e.Run(Options{Quick: true, Seed: 1}) {
		out += tbl.String() + "\n"
	}
	return out
}

// TestGoldenDeterminism asserts experiment output is byte-identical to
// the goldens captured before the scheduler/pool/cache fast path landed.
// This is the determinism contract of the PR: pooled events and SKBs,
// the timing wheel, and the overlay flow cache must not change a single
// simulated result. fig10 covers the steady UDP datapath; abl-chaos
// covers fault injection, retries and RNG-heavy degraded paths.
func TestGoldenDeterminism(t *testing.T) {
	for _, id := range []string{"fig10", "abl-chaos"} {
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden_"+id+"_quick_seed1.txt"))
			if err != nil {
				t.Fatalf("read golden: %v", err)
			}
			got := renderExperiment(t, id)
			if got != string(want) {
				t.Fatalf("%s output diverged from pre-fast-path golden.\n--- want ---\n%s\n--- got ---\n%s",
					id, want, got)
			}
		})
	}
}

// TestParallelRunsIdentical asserts that experiments produce identical
// output whether run alone or concurrently with others — each run owns
// its engine, RNG and pools, so concurrent execution (test shuffling,
// sharded workers inside one run) cannot perturb results.
func TestParallelRunsIdentical(t *testing.T) {
	ids := []string{"fig10", "abl-chaos"}
	sequential := make(map[string]string)
	for _, id := range ids {
		sequential[id] = renderExperiment(t, id)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers*len(ids))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, id := range ids {
				if got := renderExperiment(t, id); got != sequential[id] {
					errs <- id
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for id := range errs {
		t.Errorf("%s output changed under concurrent execution", id)
	}
}
