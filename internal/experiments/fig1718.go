package experiments

import (
	"fmt"

	"falcon/internal/apps"
	falconcore "falcon/internal/core"
	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

func init() {
	register("fig17", "Web serving: op rate, response time, delay (Con vs Falcon)", fig17)
	register("fig18", "Data caching: memcached avg and p99 latency", fig18)
}

// appsBed: the application testbed. As on the paper's testbed, the
// server's application threads and its packet processing share the same
// pool of cores (RPS hashes flows across all of them): under load,
// softirqs of colliding flows pile onto cores that are also running
// application threads. Falcon's device-aware two-choice placement
// steers softirqs toward less-loaded cores, which is where its large
// application-level gains come from (Section 6.2).
func appsBed(opt Options, falconOn bool) *workload.Testbed {
	tb := workload.NewTestbed(workload.TestbedConfig{
		Kernel: opt.Kernel, LinkRate: 100 * devices.Gbps, Cores: 12, Containers: 4,
		RSSCores: []int{0}, RPSCores: []int{0},
		GRO: true, InnerGRO: true, Seed: opt.seed(),
	})
	if falconOn {
		tb.EnableFalconOnServer(falconcore.DefaultConfig([]int{0, 1, 2, 3, 4, 5}))
		// Falcon also helps the client host's receive path (responses).
		tb.Client.EnableFalcon(falconcore.DefaultConfig([]int{0, 1, 2, 3, 4, 5}))
	}
	return tb
}

// fig17: CloudSuite Web Serving with 200 users. Paper: Falcon raises
// per-op success rates by up to 300% and cuts response/delay times by up
// to 63%/53%.
func fig17(opt Options) []*stats.Table {
	users := 250
	think := 500 * sim.Microsecond
	if opt.Quick {
		users = 200
	}
	run := func(falconOn bool) *apps.Web {
		tb := appsBed(opt, falconOn)
		stop := 3*opt.warmup() + 3*opt.window()
		w := apps.StartWeb(apps.WebConfig{
			ServerHost: tb.Server,
			WebCtr:     tb.ServerCtrs[0], CacheCtr: tb.ServerCtrs[1], DBCtr: tb.ServerCtrs[2],
			WebCores: []int{8, 9}, CacheCore: 10, DBCore: 11,
			WorkScale:  0.05,
			ClientHost: tb.Client, ClientCtr: tb.ClientCtrs[0],
			Users: users, ClientCores: []int{6, 7, 8, 9},
			ThinkTime: think,
		}, stop)
		tb.Run(opt.warmup() * 3)
		w.ResetMeasurement()
		tb.Run(3*opt.warmup() + 3*opt.window())
		return w
	}
	con := run(false)
	fal := run(true)

	rate := &stats.Table{
		Title:   "Fig 17(a): successful operations per second",
		Columns: []string{"operation", "Con", "Falcon", "gain"},
	}
	resp := &stats.Table{
		Title:   "Fig 17(b): average response time (us)",
		Columns: []string{"operation", "Con", "Falcon", "reduction"},
	}
	delay := &stats.Table{
		Title:   "Fig 17(c): average delay over target (us)",
		Columns: []string{"operation", "Con", "Falcon", "reduction"},
	}
	secs := (3 * opt.window()).Seconds()
	for i := range con.Stats {
		c, f := con.Stats[i], fal.Stats[i]
		if c.Completed.Value() == 0 && f.Completed.Value() == 0 {
			continue
		}
		cr := float64(c.Completed.Value()) / secs
		fr := float64(f.Completed.Value()) / secs
		rate.AddRow(c.Op.Name, fmt.Sprintf("%.1f", cr), fmt.Sprintf("%.1f", fr),
			fPct(fr/maxf(cr, 0.001)-1))
		cm, fm := c.Resp.Mean(), f.Resp.Mean()
		resp.AddRow(c.Op.Name, fUs(int64(cm)), fUs(int64(fm)), fPct(1-fm/maxf(cm, 1)))
		cd, fd := c.Delay.Mean(), f.Delay.Mean()
		delay.AddRow(c.Op.Name, fUs(int64(cd)), fUs(int64(fd)), fPct(1-fd/maxf(cd, 1)))
	}
	return []*stats.Table{rate, resp, delay}
}

// fig18: memcached latency at 1 and 10 client threads (100 connections,
// 550-byte objects). Paper: −7% p99 with one client, −51%/−53% avg/p99
// with ten.
func fig18(opt Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Fig 18: memcached latency (us), 100 connections",
		Columns: []string{"clients", "mode", "avg", "p99", "ops/s"},
	}
	think := 1500 * sim.Microsecond
	for _, threads := range []int{1, 10} {
		for _, falconOn := range []bool{false, true} {
			tb := appsBed(opt, falconOn)
			stop := 2*opt.warmup() + 2*opt.window()
			m := startMemcachedOn(tb, threads, 100, think/sim.Time(threads), stop)
			tb.Run(2 * opt.warmup())
			m.ResetMeasurement()
			tb.Run(2*opt.warmup() + 2*opt.window())
			lat := m.Latency()
			mode := workload.ModeCon
			if falconOn {
				mode = workload.ModeFalcon
			}
			ops := float64(m.Completed()) / (2 * opt.window()).Seconds()
			t.AddRow(fmt.Sprintf("%d", threads), mode.String(),
				fUs(int64(lat.Mean)), fUs(lat.P99), fmt.Sprintf("%.0f", ops))
		}
	}
	return []*stats.Table{t}
}
