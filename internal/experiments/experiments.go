// Package experiments regenerates every table and figure in the paper's
// evaluation (Section 2.2 motivation and Section 6). Each experiment is
// a named harness that builds the right testbed, drives the paper's
// workload, and emits stats.Tables shaped like the figure's rows/series.
// EXPERIMENTS.md records paper-vs-measured for each id.
package experiments

import (
	"fmt"
	"sort"

	"falcon/internal/reconfig"
	"falcon/internal/sim"
	"falcon/internal/stats"
)

// Options tunes a run.
type Options struct {
	// Kernel selects the cost profile ("linux-4.19" default).
	Kernel string
	// Quick shortens measurement windows (used by tests; benchmarks and
	// the CLI use full windows).
	Quick bool
	// Seed for determinism (0 → 1).
	Seed uint64
	// Audit enables the runtime verification subsystem (internal/audit)
	// on experiments that support it; an invariant breach aborts the run
	// with an *audit.Abort panic.
	Audit bool
	// MaxEvents, when positive, aborts the run with *sim.BudgetExceeded
	// after firing that many engine events (a runaway-simulation guard).
	MaxEvents uint64
	// Shards > 1 runs each experiment's simulation on a conservative
	// PDES cluster with that many shards (one logical process per
	// simulated host; see DESIGN.md §6). Results are byte-identical to
	// the serial engine for every value. Beds whose endpoints share
	// cross-host state (TCP, closed-loop RPC apps) colocate their hosts
	// on one shard; the memcached beds stay serial.
	Shards int
	// Reconfig, when non-nil, replaces abl-reconfig's built-in
	// generation schedule (the -reconfig flag loads one from JSON; host
	// names must match the reconfig bed: client/server/spare).
	Reconfig *reconfig.Schedule
	// Crash, when non-nil, replaces abl-crash's built-in crash/partition
	// schedule (the -crash flag loads one from JSON; host names must
	// match the reconfig bed: client/server — the spare is the standby
	// twin target and cannot itself crash).
	Crash *reconfig.CrashSchedule
	// RxCache enables the ONCache-style RX decap fast path (per-core
	// flow caches, internal/overlay/rxcache.go) on every host of the
	// experiments built from the standard beds. Off by default: the
	// cache is the abl-cache ablation's subject, and the goldens pin
	// the uncached behavior.
	RxCache bool
	// FixedHorizon disables adaptive safe-horizon windows on sharded
	// runs (every window is clipped to the static global lookahead) —
	// the A/B switch the shard-invariance tests sweep. Results are
	// byte-identical either way; only synchronization counts change.
	FixedHorizon bool
	// WindowStats, when non-nil, receives the PDES cluster's
	// synchronization counters after the run (zeroed for serial runs).
	// Supported by the fabric-based experiments (mesh8).
	WindowStats *sim.ClusterStats
	// TailLatency, when non-nil, accumulates the run's end-to-end
	// latency samples across its measured windows. Supported by fig10,
	// mesh8, and abl-tail — the experiments the bench report's latency
	// section tracks.
	TailLatency *stats.Histogram
}

// ShardsAuto is the Options.Shards sentinel for "pick shard and worker
// counts from the topology size and runtime.NumCPU()" (the CLI's
// -shards auto). Each bed resolves it against its own host count via
// sim.AutoShards at construction time.
const ShardsAuto = -1

// resolveShards maps the auto sentinel to a concrete (shards, workers)
// pair for a bed with the given host count. Explicit shard counts pass
// through with workers 0 (GOMAXPROCS-derived).
func resolveShards(shards, hosts int) (int, int) {
	if shards == ShardsAuto {
		return sim.AutoShards(hosts)
	}
	return shards, 0
}

// captureWindowStats fills opt.WindowStats from a finished run's engine.
func captureWindowStats(opt Options, e sim.Sim) {
	if opt.WindowStats == nil {
		return
	}
	if cl, ok := e.(*sim.Cluster); ok {
		*opt.WindowStats = cl.Stats()
	} else {
		*opt.WindowStats = sim.ClusterStats{}
	}
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// warmup/window return the measurement phases.
func (o Options) warmup() sim.Time {
	if o.Quick {
		return 5 * sim.Millisecond
	}
	return 15 * sim.Millisecond
}

func (o Options) window() sim.Time {
	if o.Quick {
		return 10 * sim.Millisecond
	}
	return 40 * sim.Millisecond
}

// Experiment is one reproducible figure/table.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) []*stats.Table
	// Hidden experiments are excluded from All() (and thus -all runs):
	// they deliberately violate invariants to exercise the auditor and
	// exist so `falconsim -replay` has concrete failures to reproduce.
	Hidden bool
}

var registry []Experiment

func register(id, title string, run func(Options) []*stats.Table) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

func registerHidden(id, title string, run func(Options) []*stats.Table) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run, Hidden: true})
}

// All returns every non-hidden experiment, sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		if !e.Hidden {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Formatting helpers shared by the harnesses.

func fKpps(pps float64) string { return fmt.Sprintf("%.1f", pps/1e3) }

func fGbps(g float64) string { return fmt.Sprintf("%.2f", g) }

func fUs(ns int64) string { return fmt.Sprintf("%.1f", float64(ns)/1e3) }

func fPct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

func fRatio(x float64) string { return fmt.Sprintf("%.2fx", x) }
