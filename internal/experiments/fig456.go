package experiments

import (
	"fmt"

	"falcon/internal/costmodel"
	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/trace"
	"falcon/internal/workload"
)

// Figures 4–6: the root-cause analysis — interrupt inflation, softirq
// serialization, and per-function CPU shares.

func init() {
	register("fig4", "Interrupt rates, native vs overlay", fig4)
	register("fig5", "Per-core CPU%: softirq serialization and imbalance", fig5)
	register("fig6", "Flamegraph shares: sockperf vs memcached", fig6)
}

// fig4: hardware and software interrupt counts for the same fixed
// traffic. Paper: NET_RX 3.6x in the overlay, plus elevated RES from
// rebalancing attempts.
func fig4(opt Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Fig 4: interrupts per second, 100Kpps UDP fixed rate, 100G",
		Columns: []string{"irq", "Host", "Con", "Con/Host"},
	}
	link := 100 * devices.Gbps
	host := udpFixedRate(workload.ModeHost, opt, link, 1024, 100_000)
	con := udpFixedRate(workload.ModeCon, opt, link, 1024, 100_000)
	secs := opt.window().Seconds()
	row := func(name string, h, c uint64) {
		hr, cr := float64(h)/secs, float64(c)/secs
		ratio := "-"
		if hr > 0 {
			ratio = fRatio(cr / hr)
		}
		t.AddRow(name, fmt.Sprintf("%.0f", hr), fmt.Sprintf("%.0f", cr), ratio)
	}
	row("HW", host.HardIRQs, con.HardIRQs)
	row("NET_RX", host.NetRX, con.NetRX)
	row("RES", host.RES, con.RES)
	return []*stats.Table{t}
}

// fig5: per-core utilization for single-flow and multi-flow fixed-rate
// tests. Paper: overlay softirqs stack on one core; multi-flow uses no
// more cores than flows, with visible imbalance.
func fig5(opt Options) []*stats.Table {
	var tables []*stats.Table
	link := 100 * devices.Gbps

	single := func(mode workload.Mode) workload.Result {
		return udpFixedRate(mode, opt, link, 1024, 250_000)
	}
	t1 := &stats.Table{
		Title:   "Fig 5 (single flow, 250Kpps): per-core busy%",
		Columns: []string{"mode", "c0", "c1", "c2", "c3", "c4", "c5", "softirq-max-core"},
	}
	for _, mode := range []workload.Mode{workload.ModeHost, workload.ModeCon} {
		r := single(mode)
		maxCore, maxV := 0, 0.0
		for c, v := range r.CoreSoftirq {
			if v > maxV {
				maxV, maxCore = v, c
			}
		}
		t1.AddRow(mode.String(),
			fPct(r.CoreBusy[0]), fPct(r.CoreBusy[1]), fPct(r.CoreBusy[2]),
			fPct(r.CoreBusy[3]), fPct(r.CoreBusy[4]), fPct(r.CoreBusy[5]),
			fmt.Sprintf("core%d=%s", maxCore, fPct(maxV)))
	}
	tables = append(tables, t1)

	multi := func(mode workload.Mode) workload.Result {
		tb := workload.NewTestbed(workload.TestbedConfig{
			Kernel: opt.Kernel, LinkRate: link, Cores: 16, Containers: 1,
			RSSCores: []int{0}, RPSCores: []int{1, 2, 3, 4, 5},
			GRO: true, InnerGRO: true, Seed: opt.seed(),
		})
		until := opt.warmup() + opt.window() + 5*sim.Millisecond
		var list []*workload.UDPFlow
		for i := 0; i < 5; i++ {
			var f *workload.UDPFlow
			if mode == workload.ModeHost {
				f = tb.NewUDPFlow(nil, workload.ServerIP, uint16(7000+i), uint16(5001+i),
					1024, 2+i%3, 10+i, uint64(i+1))
			} else {
				f = tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, uint16(7000+i), uint16(5001+i),
					1024, 2+i%3, 10+i, uint64(i+1))
			}
			f.SendAtRate(120_000, until)
			list = append(list, f)
		}
		return measureFlows(tb, list, opt)
	}
	t2 := &stats.Table{
		Title:   "Fig 5 (5 flows, 120Kpps each): busy cores and imbalance",
		Columns: []string{"mode", "busy-cores(>10%)", "max-core", "min-busy-core", "imbalance"},
	}
	for _, mode := range []workload.Mode{workload.ModeHost, workload.ModeCon} {
		r := multi(mode)
		busy := 0
		maxV, minV := 0.0, 1.0
		for c := 0; c < 8; c++ {
			u := r.CoreBusy[c]
			if u > 0.10 {
				busy++
				if u > maxV {
					maxV = u
				}
				if u < minV {
					minV = u
				}
			}
		}
		if busy == 0 {
			minV = 0
		}
		t2.AddRow(mode.String(), fmt.Sprintf("%d", busy), fPct(maxV), fPct(minV),
			fRatio(maxV/maxf(minV, 0.01)))
	}
	tables = append(tables, t2)
	return tables
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// fig6: per-function CPU shares (the flamegraph annotations). Paper:
// sockperf spreads across roughly equal softirqs; memcached's realistic
// mix makes some softirqs far more expensive.
func fig6(opt Options) []*stats.Table {
	var tables []*stats.Table
	link := 100 * devices.Gbps

	// sockperf: uniform single-size UDP stress.
	tb := newSingleFlowBed(workload.ModeCon, opt, link, false)
	until := opt.warmup() + opt.window() + 5*sim.Millisecond
	sock, _ := tb.StressFlood(true, 3, 1024, singleFlowAppCore, until)
	_ = sock
	tb.Run(opt.warmup())
	tb.Server.ResetMeasurement()
	tb.Run(opt.warmup() + opt.window())
	tables = append(tables, tb.Server.M.Prof.Table("Fig 6 (sockperf, overlay): CPU share by function", 10))
	tables = append(tables, inclusiveStageShares(tb.Server.M.Prof,
		"Fig 6 (sockperf): inclusive poll-subtree shares (flamegraph view)"))

	// memcached: mixed sizes and bidirectional traffic.
	tbm := workload.NewTestbed(workload.TestbedConfig{
		Kernel: opt.Kernel, LinkRate: link, Cores: 12, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1},
		GRO: true, InnerGRO: true, Seed: opt.seed(),
	})
	m := startMemcachedOn(tbm, 10, 100, 200*sim.Microsecond, until)
	_ = m
	tbm.Run(opt.warmup())
	tbm.Server.ResetMeasurement()
	tbm.Run(opt.warmup() + opt.window())
	tables = append(tables, tbm.Server.M.Prof.Table("Fig 6 (memcached, overlay): CPU share by function", 10))
	tables = append(tables, inclusiveStageShares(tbm.Server.M.Prof,
		"Fig 6 (memcached): inclusive poll-subtree shares (flamegraph view)"))
	return tables
}

// inclusiveStageShares renders flamegraph-style *inclusive* shares for
// the three poll functions the paper annotates: everything executed
// under mlx5e_napi_poll, gro_cell_poll, and process_backlog.
func inclusiveStageShares(p *trace.Profile, title string) *stats.Table {
	t := &stats.Table{Title: title, Columns: []string{"subtree", "inclusive share"}}
	sum := func(fns ...costmodel.Func) float64 {
		s := 0.0
		for _, fn := range fns {
			s += p.Share(fn)
		}
		return s
	}
	// pNIC napi subtree: poll, alloc, GRO (outer), plus the netif/RPS
	// demux it calls.
	napi := sum(costmodel.FnNAPIPoll, costmodel.FnSKBAlloc, costmodel.FnGROReceive,
		costmodel.FnRPS)
	// gro_cell subtree: the VXLAN device stage through bridge and veth.
	groCell := sum(costmodel.FnGROCellPoll, costmodel.FnBridge, costmodel.FnVethXmit)
	// backlog subtree: process_backlog plus the L3/L4 receive it drives.
	backlog := sum(costmodel.FnBacklog, costmodel.FnIPRcv, costmodel.FnUDPRcv,
		costmodel.FnTCPRcv, costmodel.FnVXLANRcv, costmodel.FnSocketDeliver)
	t.AddRow("mlx5e_napi_poll", fPct(napi))
	t.AddRow("gro_cell_poll", fPct(groCell))
	t.AddRow("process_backlog", fPct(backlog))
	return t
}
