package experiments

import (
	"fmt"

	falconcore "falcon/internal/core"
	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/socket"
	"falcon/internal/stats"
	"falcon/internal/transport"
	"falcon/internal/workload"
)

// Ablations beyond the paper's figures, probing the design choices
// DESIGN.md calls out.

func init() {
	register("abl-grosplit", "Ablation: GRO splitting per workload", ablGROSplit)
	register("abl-locality", "Ablation: migration-penalty sweep", ablLocality)
	register("abl-stages", "Ablation: pipelining-only vs full Falcon", ablStages)
	register("abl-dynsplit", "Extension: dynamic GRO splitting (paper §6.4 future work)", ablDynSplit)
	register("abl-slim", "Baseline: Slim-style connection redirection vs Falcon", ablSlim)
	register("abl-mtu", "Extension: MTU-1500 fragmentation vs jumbo frames", ablMTU)
}

// ablMTU contrasts the default jumbo/GSO wire model with real MTU-1500
// IP fragmentation at a fixed offered rate: a large UDP datagram becomes
// several wire packets, each paying NIC and lower-stack costs before
// reassembly, multiplying CPU consumption — and the overlay pays it on
// its serialized core. (Under overload, fragmented UDP collapses
// entirely: one lost fragment voids the datagram — which is why the
// paper's jumbo/GSO regime is the interesting one for peak rates.)
func ablMTU(opt Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Extension: 9000B UDP at 40Kpps — jumbo vs MTU-1500 wire",
		Columns: []string{"wire", "mode", "delivered(Kpps)", "wire frames/s", "server CPU (cores)", "p99(us)"},
	}
	run := func(mode workload.Mode, mtu int) (workload.Result, float64) {
		tb := workload.NewTestbed(workload.TestbedConfig{
			Kernel: opt.Kernel, LinkRate: 100 * devices.Gbps, Cores: 12, Containers: 1,
			RSSCores: []int{0}, RPSCores: []int{1},
			GRO: true, InnerGRO: true, Seed: opt.seed(), MTU: mtu,
		})
		if mode == workload.ModeFalcon {
			tb.EnableFalconOnServer(falconcore.DefaultConfig(singleFlowFalconCPUs))
		}
		until := opt.warmup() + opt.window() + 5*sim.Millisecond
		var f *workload.UDPFlow
		if mode == workload.ModeHost {
			f = tb.NewUDPFlow(nil, workload.ServerIP, 7000, 5001, 9000, 2, singleFlowAppCore, 1)
		} else {
			f = tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 9000, 2, singleFlowAppCore, 1)
		}
		wireBefore := tb.Client.LinkTo(workload.ServerIP).Sent.Value()
		f.SendAtRate(40_000, until)
		res := workload.MeasureWindow(tb, []*socket.Socket{f.Sock}, opt.warmup(), opt.window())
		wire := float64(tb.Client.LinkTo(workload.ServerIP).Sent.Value()-wireBefore) /
			(opt.warmup() + opt.window()).Seconds()
		return res, wire
	}
	for _, mtu := range []int{0, 1500} {
		wireName := "jumbo"
		if mtu > 0 {
			wireName = "MTU1500"
		}
		for _, mode := range []workload.Mode{workload.ModeHost, workload.ModeCon, workload.ModeFalcon} {
			res, wire := run(mode, mtu)
			cpuCores := 0.0
			for _, u := range res.CoreBusy {
				cpuCores += u
			}
			t.AddRow(wireName, mode.String(), fKpps(res.PPS),
				fmt.Sprintf("%.0f", wire), fmt.Sprintf("%.2f", cpuCores), fUs(res.Latency.P99))
		}
	}
	return []*stats.Table{t}
}

// ablSlim compares against a Slim-style overlay (NSDI'19), the paper's
// main point of comparison in related work: Slim redirects connections
// so containers use private IPs only at setup while packets travel with
// host IPs — the per-packet data path IS the host path, so it reaches
// near-native TCP throughput. Its limitation, which Falcon avoids, is
// that it only works for connection-oriented protocols: the UDP column
// simply cannot run over Slim.
func ablSlim(opt Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Baseline: Slim-style redirection vs overlay vs Falcon (100G)",
		Columns: []string{"configuration", "TCP 4K (Gbps)", "UDP 16B (Kpps)"},
	}
	tcp := func(mode workload.Mode) float64 {
		tb := newSingleFlowBed(mode, opt, 100*devices.Gbps, true)
		return runTCPBulkConns(tb, 3, opt)
	}
	udp := func(mode workload.Mode) string {
		r := udpStress(mode, opt, 100*devices.Gbps, 16)
		return fKpps(r.PPS)
	}
	t.AddRow("Host", fGbps(tcp(workload.ModeHost)), udp(workload.ModeHost))
	t.AddRow("Con (vanilla overlay)", fGbps(tcp(workload.ModeCon)), udp(workload.ModeCon))
	t.AddRow("Falcon overlay", fGbps(tcp(workload.ModeFalcon)), udp(workload.ModeFalcon))
	// Slim: container endpoints, host-path wire traffic. In this
	// simulator that is precisely a host-path TCP connection (the
	// one-time connection-setup redirection amortizes to zero).
	slim := func() float64 {
		tb := newSingleFlowBed(workload.ModeCon, opt, 100*devices.Gbps, true)
		var cs []*transport.Conn
		for i := 0; i < 3; i++ {
			c := mustDial(tb, newTCPConfig(tb, workload.ModeHost, 4096, i))
			c.StartContinuous()
			cs = append(cs, c)
		}
		tb.Run(opt.warmup())
		var base uint64
		for _, c := range cs {
			base += c.BytesAssembled.Value()
		}
		tb.Run(opt.warmup() + opt.window())
		var bytes uint64
		for _, c := range cs {
			bytes += c.BytesAssembled.Value()
			c.Close()
		}
		return float64(bytes-base) * 8 / opt.window().Seconds() / 1e9
	}
	t.AddRow("Slim-style redirection", fGbps(slim()), "unsupported (connection-less)")
	return []*stats.Table{t}
}

// ablDynSplit evaluates the dynamic function-level splitting controller
// the paper names as future work: it should match static-on for the
// GRO-bound TCP 4K workload and static-off for small-packet UDP,
// without any offline profiling decision.
func ablDynSplit(opt Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Extension: dynamic GRO splitting vs static (100G)",
		Columns: []string{"workload", "split-off", "split-on", "dynamic", "dyn engaged"},
	}
	type outcome struct {
		value   float64
		engaged bool
	}
	run := func(tcp bool, mode string) outcome {
		tb := newSingleFlowBed(workload.ModeCon, opt, 100*devices.Gbps, tcp)
		cfg := falconcore.DefaultConfig(singleFlowFalconCPUs)
		cfg.GROSplit = mode == "on"
		fal := tb.EnableFalconOnServer(cfg)
		if mode == "dyn" {
			fal.EnableDynamicGROSplit([]int{0})
		}
		if tcp {
			g := runTCPBulkConns(tb, 3, opt)
			return outcome{value: g, engaged: fal.DynamicSplitActive()}
		}
		sock, _ := tb.StressFlood(true, 3, 16, singleFlowAppCore,
			opt.warmup()+opt.window()+5*sim.Millisecond)
		res := workload.MeasureWindow(tb, []*socket.Socket{sock}, opt.warmup(), opt.window())
		return outcome{value: res.PPS / 1e3, engaged: fal.DynamicSplitActive()}
	}
	for _, w := range []struct {
		label string
		tcp   bool
	}{{"TCP 4K (Gbps)", true}, {"UDP 16B (Kpps)", false}} {
		off := run(w.tcp, "off")
		on := run(w.tcp, "on")
		dyn := run(w.tcp, "dyn")
		t.AddRow(w.label,
			fGbpsOrKpps(off.value), fGbpsOrKpps(on.value), fGbpsOrKpps(dyn.value),
			fmt.Sprintf("%v", dyn.engaged))
	}
	return []*stats.Table{t}
}

func fGbpsOrKpps(v float64) string { return fmt.Sprintf("%.2f", v) }

// runTCPBulkConns drives n continuous TCP connections on an existing
// testbed and returns aggregate goodput in Gb/s. Three connections
// saturate the NAPI core — the regime where GRO splitting matters.
func runTCPBulkConns(tb *workload.Testbed, n int, opt Options) float64 {
	var cs []*transport.Conn
	for i := 0; i < n; i++ {
		c := mustDial(tb, newTCPConfig(tb, workload.ModeCon, 4096, i))
		c.StartContinuous()
		cs = append(cs, c)
	}
	tb.Run(opt.warmup())
	var base uint64
	for _, c := range cs {
		base += c.BytesAssembled.Value()
	}
	tb.Run(opt.warmup() + opt.window())
	var bytes uint64
	for _, c := range cs {
		bytes += c.BytesAssembled.Value()
		c.Close()
	}
	bytes -= base
	return float64(bytes) * 8 / opt.window().Seconds() / 1e9
}

// ablGROSplit: the Section 6.4 discussion — splitting helps TCP with
// large segments but is useless (or slightly harmful) for small-packet
// UDP, which is why a static split needs discretion.
func ablGROSplit(opt Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Ablation: GRO splitting on/off (100G)",
		Columns: []string{"workload", "no-split", "split", "effect"},
	}
	run := func(groSplit bool, tcp bool) float64 {
		o := opt
		link := 100 * devices.Gbps
		if tcp {
			tb := newSingleFlowBed(workload.ModeCon, o, link, true)
			cfg := falconcore.DefaultConfig(singleFlowFalconCPUs)
			cfg.GROSplit = groSplit
			tb.EnableFalconOnServer(cfg)
			return runTCPBulkConns(tb, 3, o)
		}
		tb := newSingleFlowBed(workload.ModeCon, o, link, false)
		cfg := falconcore.DefaultConfig(singleFlowFalconCPUs)
		cfg.GROSplit = groSplit
		tb.EnableFalconOnServer(cfg)
		sock, _ := tb.StressFlood(true, 3, 16, singleFlowAppCore, o.warmup()+o.window()+5*sim.Millisecond)
		return workload.MeasureWindow(tb, []*socket.Socket{sock}, o.warmup(), o.window()).PPS
	}
	tcpOff := run(false, true)
	tcpOn := run(true, true)
	t.AddRow("TCP 4K (Gbps)", fGbps(tcpOff), fGbps(tcpOn), fRatio(tcpOn/tcpOff))
	udpOff := run(false, false)
	udpOn := run(true, false)
	t.AddRow("UDP 16B (Kpps)", fKpps(udpOff), fKpps(udpOn), fRatio(udpOn/udpOff))
	return []*stats.Table{t}
}

// ablLocality: sweep the cross-core migration penalty to find where
// pipelining stops paying (the Section 6.3 locality trade-off).
func ablLocality(opt Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Ablation: migration penalty vs Falcon gain (16B UDP stress)",
		Columns: []string{"penalty(ns)", "Con(Kpps)", "Falcon(Kpps)", "Falcon/Con"},
	}
	penalties := []float64{0, 130, 500, 1500}
	if opt.Quick {
		penalties = []float64{130, 1500}
	}
	for _, p := range penalties {
		run := func(mode workload.Mode) float64 {
			tb := newSingleFlowBed(mode, opt, 100*devices.Gbps, false)
			tb.Server.M.Model.MigrationPenalty = p
			tb.Client.M.Model.MigrationPenalty = p
			sock, _ := tb.StressFlood(true, 3, 16, singleFlowAppCore,
				opt.warmup()+opt.window()+5*sim.Millisecond)
			return workload.MeasureWindow(tb, []*socket.Socket{sock}, opt.warmup(), opt.window()).PPS
		}
		con := run(workload.ModeCon)
		fal := run(workload.ModeFalcon)
		t.AddRow(fmt.Sprintf("%.0f", p), fKpps(con), fKpps(fal), fRatio(fal/con))
	}
	return []*stats.Table{t}
}

// ablStages: isolate the contribution of each Falcon mechanism on the
// TCP 4K bulk workload: pipelining only, pipelining + splitting, and
// full Falcon with the two-choice balancer.
func ablStages(opt Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Ablation: Falcon mechanisms on TCP 4K bulk (Gbps)",
		Columns: []string{"configuration", "goodput", "vs vanilla"},
	}
	run := func(cfg *falconcore.Config) float64 {
		tb := newSingleFlowBed(workload.ModeCon, opt, 100*devices.Gbps, true)
		if cfg != nil {
			tb.EnableFalconOnServer(*cfg)
		}
		return runTCPBulkConns(tb, 3, opt)
	}
	vanilla := run(nil)
	t.AddRow("vanilla overlay", fGbps(vanilla), "1.00x")

	pipe := falconcore.DefaultConfig(singleFlowFalconCPUs)
	pipe.GROSplit = false
	pipe.TwoChoice = false
	g := run(&pipe)
	t.AddRow("pipelining only", fGbps(g), fRatio(g/vanilla))

	split := falconcore.DefaultConfig(singleFlowFalconCPUs)
	split.TwoChoice = false
	g = run(&split)
	t.AddRow("pipelining + GRO split", fGbps(g), fRatio(g/vanilla))

	full := falconcore.DefaultConfig(singleFlowFalconCPUs)
	g = run(&full)
	t.AddRow("full falcon", fGbps(g), fRatio(g/vanilla))
	return []*stats.Table{t}
}
