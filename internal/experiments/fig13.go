package experiments

import (
	"fmt"

	falconcore "falcon/internal/core"
	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/transport"
	"falcon/internal/workload"
)

func init() {
	register("fig13", "Multi-flow throughput: UDP 16B and TCP 4K (Host+/Falcon)", fig13)
}

// multiFlowBed builds the dedicated-core multi-flow testbed: RSS on core
// 0, RPS across cores 1–4, FALCON_CPUS on dedicated idle cores 10–15,
// application threads on 5–9/16–19.
func multiFlowBed(mode workload.Mode, opt Options, hostPlus bool) *workload.Testbed {
	tb := workload.NewTestbed(workload.TestbedConfig{
		Kernel: opt.Kernel, LinkRate: 100 * devices.Gbps, Cores: 20, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1, 2, 3, 4},
		GRO: true, InnerGRO: true, Seed: opt.seed(),
	})
	if mode == workload.ModeFalcon || hostPlus {
		cfg := falconcore.DefaultConfig([]int{10, 11, 12, 13, 14, 15})
		tb.EnableFalconOnServer(cfg)
	}
	return tb
}

func multiAppCore(i int) int {
	cores := []int{5, 6, 7, 8, 9, 16, 17, 18, 19}
	return cores[i%len(cores)]
}

// fig13: multi-flow scaling. Paper: Falcon beats the vanilla overlay by
// up to 63% (UDP), GRO-splitting lifts even the host network ("Host+",
// +56%), and Falcon's overlay outperforms plain Host by up to 37% on TCP.
func fig13(opt Options) []*stats.Table {
	flowCounts := []int{1, 2, 4, 8}
	if opt.Quick {
		flowCounts = []int{2, 4}
	}
	var tables []*stats.Table

	// (a/b) UDP 16B flows, one flooding client per flow.
	tu := &stats.Table{
		Title:   "Fig 13(a,b): multi-flow UDP 16B packet rate (Kpps)",
		Columns: []string{"flows", "Host", "Con", "Falcon", "Falcon/Con"},
	}
	udp := func(mode workload.Mode, flows int) float64 {
		tb := multiFlowBed(mode, opt, false)
		stop := opt.warmup() + opt.window() + 5*sim.Millisecond
		var list []*workload.UDPFlow
		for i := 0; i < flows; i++ {
			var f *workload.UDPFlow
			if mode == workload.ModeHost {
				f = tb.NewUDPFlow(nil, workload.ServerIP, uint16(7000+i), uint16(5001+i),
					16, 2+i%4, multiAppCore(i), uint64(i+1))
			} else {
				f = tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, uint16(7000+i), uint16(5001+i),
					16, 2+i%4, multiAppCore(i), uint64(i+1))
			}
			f.Flood(stop)
			list = append(list, f)
		}
		return measureFlows(tb, list, opt).PPS
	}
	for _, flows := range flowCounts {
		h := udp(workload.ModeHost, flows)
		c := udp(workload.ModeCon, flows)
		f := udp(workload.ModeFalcon, flows)
		tu.AddRow(fmt.Sprintf("%d", flows), fKpps(h), fKpps(c), fKpps(f), fRatio(f/c))
	}
	tables = append(tables, tu)

	// (c/d) TCP 4K bulk flows; Host+ adds GRO splitting to the host.
	tt := &stats.Table{
		Title:   "Fig 13(c,d): multi-flow TCP 4K goodput (Gbps)",
		Columns: []string{"flows", "Host", "Host+", "Con", "Falcon", "Host+/Host", "Falcon/Host"},
	}
	tcp := func(mode workload.Mode, flows int, hostPlus bool) float64 {
		tb := multiFlowBed(mode, opt, hostPlus)
		var cs []*transport.Conn
		for i := 0; i < flows; i++ {
			cfg := newTCPConfig(tb, mode, 4096, i)
			cfg.AppCore = multiAppCore(i)
			cfg.SenderCore = 2 + i%4
			c := mustDial(tb, cfg)
			c.StartContinuous()
			cs = append(cs, c)
		}
		tb.Run(opt.warmup())
		base := uint64(0)
		for _, c := range cs {
			base += c.BytesAssembled.Value()
		}
		tb.Run(opt.warmup() + opt.window())
		var bytes uint64
		for _, c := range cs {
			bytes += c.BytesAssembled.Value()
			c.Close()
		}
		bytes -= base
		return float64(bytes) * 8 / opt.window().Seconds() / 1e9
	}
	for _, flows := range flowCounts {
		h := tcp(workload.ModeHost, flows, false)
		hp := tcp(workload.ModeHost, flows, true)
		c := tcp(workload.ModeCon, flows, false)
		f := tcp(workload.ModeFalcon, flows, false)
		tt.AddRow(fmt.Sprintf("%d", flows), fGbps(h), fGbps(hp), fGbps(c), fGbps(f),
			fRatio(hp/h), fRatio(f/h))
	}
	tables = append(tables, tt)
	return tables
}
