package experiments

import (
	"fmt"
	"runtime"

	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/socket"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

// abl-cache: the flow-caching ablation. Falcon attacks the overlay tax
// with parallelism (spread the serialized softirq stages over FALCON_CPUS);
// an ONCache-style RX decap fast path attacks it with caching (skip the
// stages entirely for warm flows). This experiment runs both, alone and
// combined, on the paper's Fig. 10 small-packet UDP stress and on the
// 8-host mesh, so the two approaches — and their composition — can be
// compared on equal footing.

func init() {
	register("abl-cache", "Ablation: RX flow caching vs Falcon vs both", ablCache)
}

// cacheRun is one measured abl-cache configuration.
type cacheRun struct {
	res                 workload.Result
	hits, misses, stale uint64
}

// hitRate is the warm-window fast-path hit fraction on the server.
func (r cacheRun) hitRate() float64 {
	total := r.hits + r.misses + r.stale
	if total == 0 {
		return 0
	}
	return float64(r.hits) / float64(total)
}

// softirqNsPerPkt charges every server softirq-context nanosecond of the
// window to the delivered packets — the per-packet cost the decap fast
// path is supposed to shrink.
func (r cacheRun) softirqNsPerPkt() float64 {
	if r.res.Delivered == 0 {
		return 0
	}
	var softirq float64
	for _, u := range r.res.CoreSoftirq {
		softirq += u
	}
	return softirq * float64(r.res.Window) / float64(r.res.Delivered)
}

// cacheStress runs the Fig. 10 3-client UDP stress with the requested
// datapath configuration and keeps the server's cache counters.
func cacheStress(mode workload.Mode, opt Options, size int, cache bool) cacheRun {
	o := opt
	o.RxCache = cache
	tb := newSingleFlowBed(mode, o, 100*devices.Gbps, false)
	until := o.warmup() + o.window() + 5*sim.Millisecond
	sock, _ := tb.StressFlood(true, 3, size, singleFlowAppCore, until)
	res := workload.MeasureWindow(tb, []*socket.Socket{sock}, o.warmup(), o.window())
	finishAudit(tb, until)
	return cacheRun{
		res:    res,
		hits:   tb.Server.RxCacheHits.Value(),
		misses: tb.Server.RxCacheMisses.Value(),
		stale:  tb.Server.RxCacheStale.Value(),
	}
}

// runMeshCache drives the mesh8 ring with the cache on or off and
// aggregates delivery, tail latency and cache counters over all hosts.
func runMeshCache(opt Options, cache bool) (float64, stats.Summary, uint64, uint64) {
	o := opt
	o.RxCache = cache
	e, nodes := buildMesh(o)
	warmup, window := o.warmup(), o.window()
	until := warmup + window + 5*sim.Millisecond
	for _, n := range nodes {
		n.start(until)
	}
	e.RunUntil(warmup)
	for _, n := range nodes {
		n.host.ResetMeasurement()
		n.sock.ResetMeasurement()
	}
	e.RunUntil(warmup + window)

	var delivered, hits, misses uint64
	agg := stats.NewHistogram()
	for _, n := range nodes {
		delivered += n.sock.Delivered.Value()
		agg.Merge(n.sock.Latency)
		hits += n.host.RxCacheHits.Value()
		misses += n.host.RxCacheMisses.Value() + n.host.RxCacheStale.Value()
	}
	return stats.Rate(delivered, int64(window)), agg.Summarize(), hits, misses
}

// ablCache emits the two comparison tables.
func ablCache(opt Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Ablation: RX flow cache vs Falcon, 16B UDP stress (100G)",
		Columns: []string{"configuration", "delivered(Kpps)", "softirq ns/pkt", "vs vanilla", "hit-rate", "stale"},
	}
	configs := []struct {
		label string
		mode  workload.Mode
		cache bool
	}{
		{"Con (vanilla)", workload.ModeCon, false},
		{"Con + cache", workload.ModeCon, true},
		{"Falcon", workload.ModeFalcon, false},
		{"Falcon + cache", workload.ModeFalcon, true},
	}
	var vanillaNs float64
	for i, c := range configs {
		r := cacheStress(c.mode, opt, 16, c.cache)
		ns := r.softirqNsPerPkt()
		if i == 0 {
			vanillaNs = ns
		}
		improve := "1.00x"
		if i > 0 && ns > 0 {
			improve = fRatio(vanillaNs / ns)
		}
		hit := "-"
		if c.cache {
			hit = fPct(r.hitRate())
		}
		t.AddRow(c.label, fKpps(r.res.PPS), fmt.Sprintf("%.0f", ns), improve,
			hit, fmt.Sprintf("%d", r.stale))
	}

	m := &stats.Table{
		Title:   "Ablation: RX flow cache on the 8-host mesh (256B ring)",
		Columns: []string{"configuration", "delivered(Kpps)", "p50(us)", "p99(us)", "hit-rate"},
	}
	offPPS, offSum, _, _ := runMeshCache(opt, false)
	m.AddRow("mesh8", fKpps(offPPS), fUs(offSum.P50), fUs(offSum.P99), "-")
	onPPS, onSum, hits, misses := runMeshCache(opt, true)
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	m.AddRow("mesh8 + cache", fKpps(onPPS), fUs(onSum.P50), fUs(onSum.P99), fPct(hitRate))
	return []*stats.Table{t, m}
}

// CacheComparison is the machine-readable core of abl-cache for the
// bench report: the Fig. 10-shaped stress under the four datapath
// configurations.
type CacheComparison struct {
	VanillaNsPerPkt   float64 `json:"vanilla_ns_per_pkt"`
	CacheNsPerPkt     float64 `json:"cache_ns_per_pkt"`
	FalconNsPerPkt    float64 `json:"falcon_ns_per_pkt"`
	CombinedNsPerPkt  float64 `json:"combined_ns_per_pkt"`
	CacheImprovement  float64 `json:"cache_improvement"`  // vanilla / cache-only
	FalconImprovement float64 `json:"falcon_improvement"` // vanilla / falcon-only
	CacheHitRate      float64 `json:"cache_hit_rate"`     // warm-window, cache-only run
	CacheKpps         float64 `json:"cache_kpps"`
	VanillaKpps       float64 `json:"vanilla_kpps"`
	// CacheAllocsPerPacket is the host-side allocation cost of one
	// delivered packet on the cache-only run — the fast path's hit leg is
	// pooled end to end, so this must not drift above the uncached
	// datapath's figure (the BENCH allocs gate).
	CacheAllocsPerPacket float64 `json:"cache_allocs_per_packet"`
}

// MeasureCache runs the four-way comparison and returns the summary the
// bench report embeds (and the CI gate checks). The improvement and
// hit-rate fields are simulated-time ratios, deterministic for a given
// seed; only the allocation figure sees host noise.
func MeasureCache(opt Options) CacheComparison {
	vanilla := cacheStress(workload.ModeCon, opt, 16, false)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	cached := cacheStress(workload.ModeCon, opt, 16, true)
	runtime.ReadMemStats(&m1)
	falcon := cacheStress(workload.ModeFalcon, opt, 16, false)
	both := cacheStress(workload.ModeFalcon, opt, 16, true)
	c := CacheComparison{
		VanillaNsPerPkt:  vanilla.softirqNsPerPkt(),
		CacheNsPerPkt:    cached.softirqNsPerPkt(),
		FalconNsPerPkt:   falcon.softirqNsPerPkt(),
		CombinedNsPerPkt: both.softirqNsPerPkt(),
		CacheHitRate:     cached.hitRate(),
		CacheKpps:        cached.res.PPS / 1e3,
		VanillaKpps:      vanilla.res.PPS / 1e3,
	}
	if cached.res.Delivered > 0 {
		c.CacheAllocsPerPacket = float64(m1.Mallocs-m0.Mallocs) / float64(cached.res.Delivered)
	}
	if c.CacheNsPerPkt > 0 {
		c.CacheImprovement = c.VanillaNsPerPkt / c.CacheNsPerPkt
	}
	if c.FalconNsPerPkt > 0 {
		c.FalconImprovement = c.VanillaNsPerPkt / c.FalconNsPerPkt
	}
	return c
}
