package experiments

import (
	"runtime"
	"time"

	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/socket"
	"falcon/internal/workload"
)

// HotPathBench is the measured cost of the simulator's packet hot path,
// taken from one full-window Fig. 10-style overlay UDP stress run. It is
// what `falconsim -bench-report` writes into BENCH_sim.json and what CI
// guards against allocation regressions.
type HotPathBench struct {
	// WallSeconds is host wall-clock time for the run.
	WallSeconds float64 `json:"wall_seconds"`
	// Events is the number of simulation events fired; EventsPerSec is
	// the engine's dispatch throughput.
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Packets is the number of packets the server application consumed
	// during the measured window.
	Packets uint64 `json:"packets"`
	// NsPerPacket and AllocsPerPacket are host-side costs of simulating
	// one delivered packet end to end (tx stack → wire → rx stack → app).
	NsPerPacket     float64 `json:"ns_per_packet"`
	AllocsPerPacket float64 `json:"allocs_per_packet"`
	BytesPerPacket  float64 `json:"bytes_per_packet"`
}

// BenchHotPath runs the overlay (Falcon-enabled) single-flow UDP stress
// with full measurement windows and reports hot-path costs. Allocation
// counts are process-wide malloc deltas, so callers should run it in a
// quiet process for stable numbers.
func BenchHotPath(opt Options) HotPathBench {
	opt.Quick = false
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()

	tb := newSingleFlowBed(workload.ModeFalcon, opt, 100*devices.Gbps, false)
	until := opt.warmup() + opt.window() + 5*sim.Millisecond
	sock, _ := tb.StressFlood(true, 3, 1500, singleFlowAppCore, until)
	res := workload.MeasureWindow(tb, []*socket.Socket{sock}, opt.warmup(), opt.window())

	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	events := tb.E.Fired()
	packets := res.Delivered
	if packets == 0 {
		packets = 1
	}
	return HotPathBench{
		WallSeconds:     wall,
		Events:          events,
		EventsPerSec:    float64(events) / wall,
		Packets:         packets,
		NsPerPacket:     wall * 1e9 / float64(packets),
		AllocsPerPacket: float64(m1.Mallocs-m0.Mallocs) / float64(packets),
		BytesPerPacket:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(packets),
	}
}
