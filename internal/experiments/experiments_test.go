package experiments

import (
	"strconv"
	"testing"

	"falcon/internal/devices"
	"falcon/internal/workload"
)

var quick = Options{Quick: true}

func TestRegistryComplete(t *testing.T) {
	// Every figure in DESIGN.md's experiment index must be registered.
	want := []string{
		"fig2a", "fig2b", "fig2c", "fig2d", "fig4", "fig5", "fig6",
		"fig9a", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19",
		"abl-grosplit", "abl-locality", "abl-stages", "abl-chaos",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Fatalf("registry has %d, want >= %d", len(All()), len(want))
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	// Smoke: every experiment runs in Quick mode and yields non-empty
	// tables. Heavier shape assertions live in the targeted tests below.
	if testing.Short() {
		t.Skip("slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(quick)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("table %q empty", tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Fatalf("table %q row width %d != %d cols",
							tb.Title, len(row), len(tb.Columns))
					}
				}
			}
		})
	}
}

func TestUDPStressShape(t *testing.T) {
	// The core result: Con loses badly, Falcon recovers most of it.
	host := udpStress(workload.ModeHost, quick, 100*devices.Gbps, 16)
	con := udpStress(workload.ModeCon, quick, 100*devices.Gbps, 16)
	fal := udpStress(workload.ModeFalcon, quick, 100*devices.Gbps, 16)
	if con.PPS >= 0.8*host.PPS {
		t.Fatalf("overlay loss too small: con=%.0f host=%.0f", con.PPS, host.PPS)
	}
	if fal.PPS <= con.PPS*1.15 {
		t.Fatalf("falcon gain too small: falcon=%.0f con=%.0f", fal.PPS, con.PPS)
	}
	if fal.PPS < 0.7*host.PPS {
		t.Fatalf("falcon too far from host: falcon=%.0f host=%.0f", fal.PPS, host.PPS)
	}
}

func TestStress64KShape(t *testing.T) {
	// Fig 2a headline: ~half the throughput lost at 100G with 64K
	// messages; near-native at 10G.
	host := udpStress(workload.ModeHost, quick, 100*devices.Gbps, 65000)
	con := udpStress(workload.ModeCon, quick, 100*devices.Gbps, 65000)
	loss := 1 - con.PPS/host.PPS
	if loss < 0.35 || loss > 0.70 {
		t.Fatalf("100G 64K loss = %.2f, want ~0.5", loss)
	}
	host10 := udpStress(workload.ModeHost, quick, 10*devices.Gbps, 65000)
	con10 := udpStress(workload.ModeCon, quick, 10*devices.Gbps, 65000)
	if con10.PPS < 0.9*host10.PPS {
		t.Fatalf("10G 64K should be near-native: con=%.0f host=%.0f", con10.PPS, host10.PPS)
	}
}

func TestFixedRateUnderloadedDeliversAll(t *testing.T) {
	r := udpFixedRate(workload.ModeCon, quick, 100*devices.Gbps, 1024, 50_000)
	if r.NICDrops+r.BacklogDrops+r.SocketDrops > 0 {
		t.Fatalf("drops in underloaded run: %d/%d/%d",
			r.NICDrops, r.BacklogDrops, r.SocketDrops)
	}
	if r.PPS < 40_000 || r.PPS > 60_000 {
		t.Fatalf("pps = %.0f, want ~50k", r.PPS)
	}
}

func TestLatencyOrdering(t *testing.T) {
	// Overlay latency must exceed host latency underloaded.
	host := udpFixedRate(workload.ModeHost, quick, 100*devices.Gbps, 1024, 50_000)
	con := udpFixedRate(workload.ModeCon, quick, 100*devices.Gbps, 1024, 50_000)
	if con.Latency.Mean <= host.Latency.Mean {
		t.Fatalf("overlay latency (%.0f) not above host (%.0f)",
			con.Latency.Mean, host.Latency.Mean)
	}
}

func TestTCPBulkShape(t *testing.T) {
	host := tcpBulk(workload.ModeHost, quick, 100*devices.Gbps, 4096, 1, false)
	con := tcpBulk(workload.ModeCon, quick, 100*devices.Gbps, 4096, 1, false)
	if host.Gbps <= 0 || con.Gbps <= 0 {
		t.Fatalf("tcp bulk dead: host=%.2f con=%.2f", host.Gbps, con.Gbps)
	}
	if con.Gbps >= host.Gbps {
		t.Fatalf("overlay TCP should lose: host=%.2f con=%.2f", host.Gbps, con.Gbps)
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{16: "16B", 1024: "1K", 4096: "4K", 65000: "64K", 300: "300B"}
	for in, want := range cases {
		if got := sizeLabel(in); got != want {
			t.Errorf("sizeLabel(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestLinkName(t *testing.T) {
	if linkName(10*devices.Gbps) != "10G" || linkName(100*devices.Gbps) != "100G" {
		t.Fatal("link names wrong")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.seed() != 1 {
		t.Fatal("default seed wrong")
	}
	o.Seed = 9
	if o.seed() != 9 {
		t.Fatal("explicit seed ignored")
	}
	if quick.window() >= (Options{}).window() {
		t.Fatal("quick window not shorter")
	}
}

func TestFormatters(t *testing.T) {
	if fKpps(1500) != "1.5" {
		t.Fatalf("fKpps = %q", fKpps(1500))
	}
	if fPct(0.5) != "50.0%" {
		t.Fatalf("fPct = %q", fPct(0.5))
	}
	if fRatio(2) != "2.00x" {
		t.Fatalf("fRatio = %q", fRatio(2))
	}
	if fUs(1500) != "1.5" {
		t.Fatalf("fUs = %q", fUs(1500))
	}
	if fGbps(1.234) != "1.23" {
		t.Fatalf("fGbps = %q", fGbps(1.234))
	}
	if _, err := strconv.ParseFloat(fKpps(123456), 64); err != nil {
		t.Fatal("fKpps not numeric")
	}
}
