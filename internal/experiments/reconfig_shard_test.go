package experiments

import (
	"strings"
	"testing"
)

// TestReconfigShardInvariance extends the PDES determinism contract to
// hot reconfiguration: abl-reconfig's generation swaps — kernel
// upgrade, graceful drain with twin handoff, re-add, steering and RPS
// flips — all run as coordinator-side control events, so the rendered
// tables must be byte-identical on the serial engine and on every
// cluster size. The spare host lives on shard 2, which makes shards=4
// the first configuration where client, server, and spare all occupy
// distinct shards.
func TestReconfigShardInvariance(t *testing.T) {
	ref := renderShards(t, "abl-reconfig", 0, false)
	if !strings.Contains(ref, "OK") || strings.Contains(ref, "FAIL") {
		t.Fatalf("serial abl-reconfig does not pass its own SLOs:\n%s", ref)
	}
	for _, shards := range []int{1, 2, 4} {
		if got := renderShards(t, "abl-reconfig", shards, false); got != ref {
			t.Errorf("shards=%d output diverges from serial\n--- serial ---\n%s\n--- shards=%d ---\n%s",
				shards, ref, shards, got)
		}
	}
}

// TestReconfigShardInvarianceWithAudit repeats the check with the audit
// harness attached: the drain's quiesce ladder and the twin handoff
// must keep the SKB ledger clean on every shard layout, and the ledger
// itself must not perturb a single simulated result.
func TestReconfigShardInvarianceWithAudit(t *testing.T) {
	ref := renderShards(t, "abl-reconfig", 0, true)
	noAudit := renderShards(t, "abl-reconfig", 0, false)
	if ref != noAudit {
		t.Fatal("audit harness changed serial output; shard comparison would be vacuous")
	}
	for _, shards := range []int{2, 4} {
		if got := renderShards(t, "abl-reconfig", shards, true); got != ref {
			t.Errorf("shards=%d audited output diverges from serial\n--- serial ---\n%s\n--- shards=%d ---\n%s",
				shards, ref, shards, got)
		}
	}
}
