package experiments

import (
	"strings"
	"testing"

	"falcon/internal/workload"
)

func TestChaosRegistered(t *testing.T) {
	if _, ok := ByID("abl-chaos"); !ok {
		t.Fatal("abl-chaos not registered")
	}
}

func TestChaosNeverWorseAndBoundedRecovery(t *testing.T) {
	// The PR's acceptance property: under every shipped fault scenario,
	// Falcon with health tracking delivers >= 0.98x the vanilla overlay,
	// and per-ms delivery recovers within half the measurement window of
	// the fault clearing.
	if testing.Short() {
		t.Skip("slow")
	}
	maxRecover := (quick.window() / 2).Seconds() * 1e3
	for _, sc := range chaosScenarios() {
		sc := sc
		t.Run(sc.key, func(t *testing.T) {
			con := runChaosScenario(workload.ModeCon, quick, sc)
			fal := runChaosScenario(workload.ModeFalcon, quick, sc)
			if fal.Res.PPS < 0.98*con.Res.PPS {
				t.Fatalf("never-worse violated: falcon=%.0f con=%.0f (%.3fx)",
					fal.Res.PPS, con.Res.PPS, fal.Res.PPS/con.Res.PPS)
			}
			if fal.RecoverMs < 0 || fal.RecoverMs > maxRecover {
				t.Fatalf("recovery out of bounds: %.1fms (budget %.1fms)",
					fal.RecoverMs, maxRecover)
			}
		})
	}
}

func TestChaosCoreOfflineDegradesGracefully(t *testing.T) {
	// Offlining 2 of 3 FALCON_CPUs pushes the healthy set below the
	// floor: Falcon must visibly fall back to the vanilla path and
	// account degraded time, while still delivering the flow.
	var offline chaosScenario
	for _, sc := range chaosScenarios() {
		if sc.key == "cpu-offline" {
			offline = sc
		}
	}
	out := runChaosScenario(workload.ModeFalcon, quick, offline)
	if out.Fallbacks == 0 {
		t.Fatal("no fallback placements during below-floor window")
	}
	if out.DegradedMs <= 0 {
		t.Fatal("no degraded-mode time accounted")
	}
	none := runChaosScenario(workload.ModeFalcon, quick, chaosScenarios()[0])
	if out.Res.PPS < 0.98*none.Res.PPS {
		t.Fatalf("offline run lost throughput: %.0f vs healthy %.0f",
			out.Res.PPS, none.Res.PPS)
	}
}

func TestChaosExperimentDeterministic(t *testing.T) {
	// Same seed, same plans: two full renders of the experiment must be
	// byte-identical (the chaos layer draws only from engine-seeded
	// RNGs).
	if testing.Short() {
		t.Skip("slow")
	}
	render := func() string {
		var b strings.Builder
		for _, tbl := range ablChaos(quick) {
			b.WriteString(tbl.String())
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("abl-chaos diverged between identical runs:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}

func TestChaosVerdictTableAllOK(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tables := ablChaos(quick)
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}
	verdict := tables[1]
	for _, row := range verdict.Rows {
		if row[len(row)-1] != "OK" {
			t.Fatalf("scenario %s verdict %s", row[0], row[len(row)-1])
		}
	}
}
