package experiments

import "testing"

// renderShards runs an experiment the way the goldens were captured,
// but on a PDES cluster with the given shard count (0 = serial engine).
func renderShards(t testing.TB, id string, shards int, audit bool) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	out := ""
	for _, tbl := range e.Run(Options{Quick: true, Seed: 1, Shards: shards, Audit: audit}) {
		out += tbl.String() + "\n"
	}
	return out
}

// TestShardInvariance is the determinism contract of the PDES engine:
// every experiment prints byte-identical tables whether it runs on the
// serial engine or on a conservative multi-shard cluster, for every
// shard count. fig10 covers the steady UDP datapath (two hosts, two
// shards, one busy direction), abl-chaos covers fault injection with
// coordinator-side Apply/Revert events and RNG-heavy degraded paths,
// and mesh8 covers the 8-host topology where every shard carries
// cross-shard traffic in both directions. abl-tail covers the
// heavy-tailed open-loop generators: thousands of churning flows whose
// send schedule must be identical however the datapath is sharded.
func TestShardInvariance(t *testing.T) {
	for _, id := range []string{"fig10", "abl-chaos", "mesh8", "abl-tail"} {
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			ref := renderShards(t, id, 0, false)
			for _, shards := range []int{1, 2, 8} {
				if got := renderShards(t, id, shards, false); got != ref {
					t.Errorf("shards=%d output diverges from serial\n--- serial ---\n%s\n--- shards=%d ---\n%s",
						shards, ref, shards, got)
				}
			}
		})
	}
}

// renderHorizon is renderShards with the adaptive-horizon switch
// exposed: fixed=true clips every window to the static global
// lookahead, the pre-adaptive behaviour.
func renderHorizon(t testing.TB, id string, shards int, fixed bool) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	out := ""
	for _, tbl := range e.Run(Options{Quick: true, Seed: 1, Shards: shards, FixedHorizon: fixed}) {
		out += tbl.String() + "\n"
	}
	return out
}

// TestAdaptiveHorizonInvariance pins the adaptive safe-horizon windows
// to the serial semantics: mesh8 — the topology where every shard both
// sends and receives and per-link bounds actually feed the adaptive
// derivation — renders byte-identical tables on the serial engine, on a
// sharded cluster with static windows, and on a sharded cluster with
// adaptive windows. Window placement is a pure scheduling concern; it
// must never leak into a simulated result.
func TestAdaptiveHorizonInvariance(t *testing.T) {
	ref := renderShards(t, "mesh8", 0, false)
	for _, shards := range []int{2, 4} {
		for _, fixed := range []bool{false, true} {
			if got := renderHorizon(t, "mesh8", shards, fixed); got != ref {
				t.Errorf("shards=%d fixed=%t output diverges from serial\n--- serial ---\n%s\n--- got ---\n%s",
					shards, fixed, ref, got)
			}
		}
	}
}

// TestShardInvarianceWithAudit repeats the invariance check with the
// full audit harness attached: per-shard SKB ledgers, cross-shard
// record handoffs at barriers, and coordinator-driven invariant sweeps
// must not perturb a single simulated result either. (mesh8 builds its
// topology directly on overlay.Network and has no audit harness, so the
// audited check covers the testbed-based goldens.)
func TestShardInvarianceWithAudit(t *testing.T) {
	for _, id := range []string{"fig10", "abl-chaos", "abl-tail"} {
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			ref := renderShards(t, id, 0, true)
			noAudit := renderShards(t, id, 0, false)
			if ref != noAudit {
				t.Fatal("audit harness changed serial output; shard comparison would be vacuous")
			}
			for _, shards := range []int{2, 8} {
				if got := renderShards(t, id, shards, true); got != ref {
					t.Errorf("shards=%d audited output diverges from serial\n--- serial ---\n%s\n--- shards=%d ---\n%s",
						shards, ref, shards, got)
				}
			}
		})
	}
}
