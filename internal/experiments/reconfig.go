package experiments

import (
	"fmt"

	"falcon/internal/audit"
	falconcore "falcon/internal/core"
	"falcon/internal/devices"
	"falcon/internal/reconfig"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

// abl-reconfig: hot reconfiguration under load. A fixed-rate UDP flow
// runs through a client/server/spare bed while a generation schedule
// performs a rolling kernel upgrade, a graceful drain of the server
// (containers remapped onto the spare's standby twins) followed by its
// re-add, and steering flips. The properties under test: zero packets
// unaccounted across every generation swap (whole-run conservation over
// the delivery and drop censuses), steady-state throughput within 2% of
// an identical run with no reconfiguration, and bounded blackout and
// recovery after each swap.

func init() {
	register("abl-reconfig", "Hot reconfiguration: generation swaps with convergence SLOs", ablReconfig)
}

// reconfigRate matches abl-chaos: underloaded enough that "steady state"
// is crisp, high enough that a blackout dents per-ms delivery visibly.
const reconfigRate = 100_000

// reconfigTailMs extends per-ms sampling past the measurement window
// (traffic runs 5 ms longer) so steady-state buckets exist even when the
// last scheduled action lands late in the window.
const reconfigTailMs = 4

// reconfigBlackoutBudgetMs is the acceptance bound on any generation's
// blackout window.
const reconfigBlackoutBudgetMs = 2

// defaultReconfigSchedule spreads the full action mix over the window:
// times are in units of windowMs/10 so quick and full runs exercise the
// same shape. Steering flips target the spare — the live receiver after
// the drain — and only exist in Falcon mode.
func defaultReconfigSchedule(windowMs int, falcon bool) *reconfig.Schedule {
	u := windowMs / 10
	if u < 1 {
		u = 1
	}
	on, off := true, false
	acts := []reconfig.Action{
		{Kind: reconfig.KindKernelUpgrade, AtMs: 1 * u, Host: "server", Kernel: "linux-5.4"},
		{Kind: reconfig.KindDrain, AtMs: 2 * u, Host: "server", To: "spare", TransitUs: 200},
		{Kind: reconfig.KindAdd, AtMs: 4 * u, Host: "server"},
	}
	if falcon {
		acts = append(acts,
			reconfig.Action{Kind: reconfig.KindSteerFlip, AtMs: 5 * u, Host: "spare", Enable: &off},
			reconfig.Action{Kind: reconfig.KindSteerFlip, AtMs: 6 * u, Host: "spare", Enable: &on})
	}
	acts = append(acts,
		reconfig.Action{Kind: reconfig.KindRPSFlip, AtMs: 7 * u, Host: "spare", Enable: &off},
		reconfig.Action{Kind: reconfig.KindRPSFlip, AtMs: 8 * u, Host: "spare", Enable: &on})
	return &reconfig.Schedule{Actions: acts}
}

// filterForMode strips steer-flip actions when the bed has no Falcon (a
// custom -reconfig schedule still runs in Con mode that way).
func filterForMode(s *reconfig.Schedule, falcon bool) *reconfig.Schedule {
	if falcon {
		return s
	}
	out := &reconfig.Schedule{}
	for _, a := range s.Actions {
		if a.Kind != reconfig.KindSteerFlip {
			out.Actions = append(out.Actions, a)
		}
	}
	return out
}

// newReconfigBed builds the three-host bed: the standard single-flow
// pair plus the spare migration target carrying the server container's
// standby twin. Falcon mode attaches Falcon to both receive-side hosts.
func newReconfigBed(mode workload.Mode, opt Options) *workload.Testbed {
	tb := workload.NewTestbed(workload.TestbedConfig{
		Kernel: opt.Kernel, LinkRate: 100 * devices.Gbps, Cores: 12, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1},
		GRO: true, InnerGRO: true, Seed: opt.seed(),
		Shards: opt.Shards, Spare: true,
	})
	if opt.MaxEvents > 0 {
		tb.E.SetEventBudget(opt.MaxEvents)
	}
	if opt.Audit {
		tb.EnableAudit(audit.Config{})
	}
	if mode == workload.ModeFalcon {
		tb.EnableFalconOnServer(falconcore.DefaultConfig(singleFlowFalconCPUs))
		tb.Spare.EnableFalcon(falconcore.DefaultConfig(singleFlowFalconCPUs))
	}
	return tb
}

// reconfigRun is one measured run (with or without a schedule). All
// counters are whole-run — nothing is reset mid-flight, so the
// conservation equation closes exactly across every generation swap.
type reconfigRun struct {
	samples   []uint64 // cumulative delivery at warmup + i*1ms
	recs      []*reconfig.GenRecord
	final     reconfig.DropSnapshot
	sent      uint64
	delivered uint64
	sockDrops uint64
	txPending uint64
	// quiesceUs is the drain's quiesce latency (-1: no drain/never).
	quiesceUs float64
}

// unaccounted is the conservation residue: every sent packet must be
// delivered, counted at a socket drop, counted in a datapath drop
// bucket, or still inside the transmit path. Zero or the run lost
// packets silently.
func (r reconfigRun) unaccounted() int64 {
	return int64(r.sent) - int64(r.delivered) - int64(r.sockDrops) -
		int64(r.final.Total()) - int64(r.txPending)
}

// runReconfig drives one bed for warmup + window + tail. sched == nil is
// the no-reconfig baseline; the sender's RNG draws are independent of
// the datapath, so baseline and reconfig runs see an identical send
// schedule and their steady buckets compare packet-for-packet.
func runReconfig(mode workload.Mode, opt Options, sched *reconfig.Schedule) reconfigRun {
	tb := newReconfigBed(mode, opt)
	until := opt.warmup() + opt.window() + 5*sim.Millisecond
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 64, 2, singleFlowAppCore, 1)
	// The spare's twin socket: same overlay IP and port as the primary,
	// live the moment the drain lands the container there.
	spareSock := tb.Spare.OpenUDP(tb.ServerCtrs[0].IP, 5001, singleFlowAppCore)

	var mgr *reconfig.Manager
	if sched != nil {
		mgr = reconfig.New(tb.Net, sched)
		if err := mgr.Arm(opt.warmup()); err != nil {
			panic(fmt.Sprintf("abl-reconfig: %v", err))
		}
	}
	f.SendAtRate(reconfigRate, until)

	msCount := int(opt.window()/sim.Millisecond) + reconfigTailMs
	samples := make([]uint64, msCount+1)
	for i := 0; i <= msCount; i++ {
		i := i
		tb.E.At(opt.warmup()+sim.Time(i)*sim.Millisecond, func() {
			samples[i] = f.Sock.Delivered.Value() + spareSock.Delivered.Value()
		})
	}

	tb.Run(until)
	// Flush transmit stragglers so the conservation equation closes.
	for i := 0; i < 10 && tb.Client.TxPending() > 0; i++ {
		until += 2 * sim.Millisecond
		tb.Run(until)
	}
	finishAudit(tb, until)

	r := reconfigRun{
		samples:   samples,
		sent:      f.Sent(),
		delivered: f.Sock.Delivered.Value() + spareSock.Delivered.Value(),
		sockDrops: f.Sock.SocketDrops.Value() + spareSock.SocketDrops.Value(),
		txPending: tb.Client.TxPending() + tb.Server.TxPending() + tb.Spare.TxPending(),
		quiesceUs: -1,
	}
	if mgr != nil {
		r.recs = mgr.Records()
		r.final = mgr.Snapshot()
		for _, rec := range r.recs {
			if rec.Action.Kind == reconfig.KindDrain && rec.QuiescedAt >= 0 {
				r.quiesceUs = float64(rec.QuiescedAt-rec.Applied) / 1e3
			}
		}
	} else {
		r.final = reconfig.New(tb.Net, &reconfig.Schedule{}).Snapshot()
	}
	return r
}

// steadyMean is the mean per-ms delivery over buckets [from, end) — the
// post-reconfig steady state when from clears the last scheduled action.
func steadyMean(samples []uint64, from int) float64 {
	nb := len(samples) - 1
	if from >= nb {
		from = nb - 1
	}
	if from < 0 {
		from = 0
	}
	return float64(samples[nb]-samples[from]) / float64(nb-from)
}

func ablReconfig(opt Options) []*stats.Table {
	windowMs := int(opt.window() / sim.Millisecond)
	detail := &stats.Table{
		Title: "Hot reconfiguration: per-generation convergence SLOs (64B UDP at 100Kpps, 100G)",
		Columns: []string{"mode", "gen", "action", "at(ms)", "blackout(ms)",
			"loss(pkts)", "resolve/nic/backlog", "recover(ms)"},
	}
	verdict := &stats.Table{
		Title: "Hot reconfiguration verdicts: steady state, conservation, drain quiesce",
		Columns: []string{"mode", "base(Kpps)", "reconfig(Kpps)", "ratio",
			"unaccounted", "quiesce(us)", "max-blackout(ms)", "verdict"},
	}
	fRecover := func(ms int) string {
		if ms < 0 {
			return ">window"
		}
		return fmt.Sprintf("%d", ms)
	}
	for _, mode := range []workload.Mode{workload.ModeCon, workload.ModeFalcon} {
		falcon := mode == workload.ModeFalcon
		sched := opt.Reconfig
		if sched == nil {
			sched = defaultReconfigSchedule(windowMs, falcon)
		}
		sched = filterForMode(sched, falcon)

		base := runReconfig(mode, opt, nil)
		run := runReconfig(mode, opt, sched)
		conv := reconfig.Analyze(run.samples, base.samples, run.recs, opt.warmup(), run.final)

		lastAt := 0
		for _, a := range sched.Actions {
			if a.AtMs > lastAt {
				lastAt = a.AtMs
			}
		}
		steadyFrom := lastAt + 1
		baseSteady := steadyMean(base.samples, steadyFrom)
		runSteady := steadyMean(run.samples, steadyFrom)
		ratio := 0.0
		if baseSteady > 0 {
			ratio = runSteady / baseSteady
		}

		maxBlackout, recovered, detached := 0, true, true
		for _, c := range conv {
			if c.BlackoutMs > maxBlackout {
				maxBlackout = c.BlackoutMs
			}
			if c.RecoverMs < 0 {
				recovered = false
			}
		}
		for i, rec := range run.recs {
			if rec.Action.Kind == reconfig.KindDrain && !rec.Detached {
				detached = false
			}
			c := conv[i]
			detail.AddRow(mode.String(), fmt.Sprintf("%d", rec.Gen), c.Kind,
				fmt.Sprintf("%d", c.AtMs), fmt.Sprintf("%d", c.BlackoutMs),
				fmt.Sprintf("%d", c.LossPkts),
				fmt.Sprintf("%d/%d/%d", c.Drops.Resolve, c.Drops.NIC, c.Drops.Backlog),
				fRecover(c.RecoverMs))
		}

		v := "OK"
		if ratio < 0.98 || run.unaccounted() != 0 || !recovered || !detached ||
			maxBlackout > reconfigBlackoutBudgetMs || run.quiesceUs < 0 {
			v = "FAIL"
		}
		verdict.AddRow(mode.String(),
			fKpps(baseSteady*1e3), fKpps(runSteady*1e3), fRatio(ratio),
			fmt.Sprintf("%d", run.unaccounted()),
			fmt.Sprintf("%.1f", run.quiesceUs),
			fmt.Sprintf("%d", maxBlackout), v)
	}
	return []*stats.Table{detail, verdict}
}
