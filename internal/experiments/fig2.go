package experiments

import (
	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/socket"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

// Figure 2: the motivation study comparing the native host network with
// the vanilla container overlay (no Falcon yet).

func init() {
	register("fig2a", "Single-flow max throughput (Gbps), Host vs Overlay", fig2a)
	register("fig2b", "Single-flow UDP packet rate vs packet size", fig2b)
	register("fig2c", "Multi-flow packet rate, flow:core 1:1 and 4:1", fig2c)
	register("fig2d", "Single-flow latency, Host vs Overlay", fig2d)
}

// fig2a: throughput stress with 64 KB messages over 10G and 100G, UDP
// and TCP. Paper: near-native at 10G; 53% (UDP) / 47% (TCP) loss at 100G.
func fig2a(opt Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Fig 2(a): single-flow throughput, 64K messages",
		Columns: []string{"link", "proto", "Host(Gbps)", "Con(Gbps)", "loss"},
	}
	const size = 65000
	for _, link := range []float64{10 * devices.Gbps, 100 * devices.Gbps} {
		host := udpStress(workload.ModeHost, opt, link, size)
		con := udpStress(workload.ModeCon, opt, link, size)
		hg, cg := host.GbpsFor(size), con.GbpsFor(size)
		t.AddRow(linkName(link), "UDP", fGbps(hg), fGbps(cg), fPct(1-cg/hg))

		hostT := tcpBulk(workload.ModeHost, opt, link, size, 1, false)
		conT := tcpBulk(workload.ModeCon, opt, link, size, 1, false)
		t.AddRow(linkName(link), "TCP", fGbps(hostT.Gbps), fGbps(conT.Gbps),
			fPct(1-conT.Gbps/hostT.Gbps))
	}
	return []*stats.Table{t}
}

// fig2b: UDP packet rate across packet sizes. Paper: the gap is largest
// at small sizes and persists on 100G across all sizes.
func fig2b(opt Options) []*stats.Table {
	var tables []*stats.Table
	sizes := []int{16, 256, 1024, 4096, 16384, 65000}
	for _, link := range []float64{10 * devices.Gbps, 100 * devices.Gbps} {
		t := &stats.Table{
			Title:   "Fig 2(b): UDP packet rate (Kpps) on " + linkName(link),
			Columns: []string{"size", "Host", "Con", "Con/Host"},
		}
		for _, size := range sizes {
			host := udpStress(workload.ModeHost, opt, link, size)
			con := udpStress(workload.ModeCon, opt, link, size)
			t.AddRow(sizeLabel(size), fKpps(host.PPS), fKpps(con.PPS),
				fRatio(con.PPS/host.PPS))
		}
		tables = append(tables, t)
	}
	return tables
}

// fig2c: multi-flow packet rate with 4 KB packets at flow-to-core
// ratios 1:1 and 4:1. Paper: overlay loss grows with the ratio and
// exceeds the single-flow loss even at 1:1 (hash-collision imbalance).
func fig2c(opt Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Fig 2(c): multi-flow UDP packet rate (Kpps), 4K packets, 100G",
		Columns: []string{"flows:cores", "Host", "Con", "Con/Host"},
	}
	rpsCores := []int{1, 2, 3, 4}
	run := func(mode workload.Mode, flows int) float64 {
		tb := workload.NewTestbed(workload.TestbedConfig{
			Kernel: opt.Kernel, LinkRate: 100 * devices.Gbps, Cores: 16, Containers: 1,
			RSSCores: []int{0}, RPSCores: rpsCores,
			GRO: true, InnerGRO: true, Seed: opt.seed(),
		})
		stop := opt.warmup() + opt.window() + 5*sim.Millisecond
		var socks []*socket.Socket
		for i := 0; i < flows; i++ {
			var f *workload.UDPFlow
			appCore := 8 + i%6
			if mode == workload.ModeHost {
				f = tb.NewUDPFlow(nil, workload.ServerIP, uint16(7000+i), uint16(5001+i),
					4096, 2+i%4, appCore, uint64(i+1))
			} else {
				f = tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, uint16(7000+i), uint16(5001+i),
					4096, 2+i%4, appCore, uint64(i+1))
			}
			f.Flood(stop)
			socks = append(socks, f.Sock)
		}
		res := workload.MeasureWindow(tb, socks, opt.warmup(), opt.window())
		return res.PPS
	}
	for _, ratio := range []struct {
		label string
		flows int
	}{{"1:1", 4}, {"4:1", 16}} {
		host := run(workload.ModeHost, ratio.flows)
		con := run(workload.ModeCon, ratio.flows)
		t.AddRow(ratio.label, fKpps(host), fKpps(con), fRatio(con/host))
	}
	return []*stats.Table{t}
}

// fig2d: per-packet latency under a light fixed rate. Paper: up to 2x
// (UDP) and 5x (TCP) higher latency for the overlay.
func fig2d(opt Options) []*stats.Table {
	t := &stats.Table{
		Title:   "Fig 2(d): single-flow latency (us), underloaded, 100G",
		Columns: []string{"proto", "metric", "Host", "Con", "Con/Host"},
	}
	link := 100 * devices.Gbps
	hostU := udpFixedRate(workload.ModeHost, opt, link, 1024, 50_000)
	conU := udpFixedRate(workload.ModeCon, opt, link, 1024, 50_000)
	t.AddRow("UDP", "avg", fUs(int64(hostU.Latency.Mean)), fUs(int64(conU.Latency.Mean)),
		fRatio(conU.Latency.Mean/hostU.Latency.Mean))
	t.AddRow("UDP", "p99", fUs(hostU.Latency.P99), fUs(conU.Latency.P99),
		fRatio(float64(conU.Latency.P99)/float64(hostU.Latency.P99)))

	hostT := tcpPaced(workload.ModeHost, opt, link, 1024, 20*sim.Microsecond)
	conT := tcpPaced(workload.ModeCon, opt, link, 1024, 20*sim.Microsecond)
	t.AddRow("TCP", "avg", fUs(int64(hostT.Mean)), fUs(int64(conT.Mean)),
		fRatio(conT.Mean/hostT.Mean))
	t.AddRow("TCP", "p99", fUs(hostT.P99), fUs(conT.P99),
		fRatio(float64(conT.P99)/float64(hostT.P99)))
	return []*stats.Table{t}
}
