package experiments

import (
	"fmt"

	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

func init() {
	register("abl-tail", "Tail latency under open-loop overload: 0.5x-1.2x capacity, Con vs Falcon", ablTail)
}

// abl-tail parameters. The sweep offers heavy-tailed open-loop load at
// fixed fractions of the vanilla overlay's closed-loop capacity, so the
// two modes see identical arrival schedules and the tail curves are
// directly comparable.
const (
	tailPayload = 256
	tailLink    = 100 * devices.Gbps
	// tailMeanPkts / tailAlpha shape the Pareto flow sizes (mean 12
	// packets, infinite variance — the heavy tail is the point).
	tailAlpha    = 1.5
	tailMeanPkts = 12.0
	// tailFlowRate is each live flow's send rate; low enough that the
	// population holds many flows concurrently live.
	tailFlowRate = 20_000.0
	// MMPP burst shape: equal expected sojourns, 0.5x/1.5x the target
	// rate, so the long-run offered load still matches the factor.
	tailSojourn = 500 * sim.Microsecond

	// SLO constants (the verdict table). The p99 budget applies at the
	// 0.5x underloaded point; the knee — the first load factor where
	// delivered drops below tailKneeFrac of offered — must sit above
	// 0.9x for both modes.
	tailP99BudgetNs = 400_000 // 400µs
	tailKneeFrac    = 0.90
)

// tailFactors returns the offered-load sweep (fractions of capacity).
func tailFactors(quick bool) []float64 {
	if quick {
		return []float64{0.5, 0.9, 1.2}
	}
	return []float64{0.5, 0.7, 0.9, 1.0, 1.1, 1.2}
}

// tailPoint is one measured sweep point. sentPPS is the population's
// realized send rate inside the window — the knee denominator. The
// nominal offered rate overstates a heavy-tailed population's
// finite-window emission (a Pareto sample mean converges from below
// when the variance is infinite), so delivered/nominal would read as
// loss even on a drop-free path.
type tailPoint struct {
	factor  float64
	offered float64
	sentPPS float64
	res     workload.Result
}

// runTailPoint drives one open-loop MMPP/Pareto population at the given
// offered rate against one mode's testbed and measures the window.
func runTailPoint(mode workload.Mode, opt Options, offered float64) tailPoint {
	tb := newSingleFlowBed(mode, opt, tailLink, false)
	until := opt.warmup() + opt.window() + 5*sim.Millisecond
	flowsPerSec := offered / tailMeanPkts
	ol := tb.StartOpenLoop(workload.OpenLoopConfig{
		Arrivals: &workload.MMPP2{
			CalmRate: 0.5 * flowsPerSec, BurstRate: 1.5 * flowsPerSec,
			MeanCalm: tailSojourn, MeanBurst: tailSojourn,
		},
		FlowSize:   workload.Pareto{Xm: tailMeanPkts * (tailAlpha - 1) / tailAlpha, Alpha: tailAlpha},
		PacketSize: tailPayload,
		FlowRate:   tailFlowRate,
		Ports:      2,
		SendCores:  []int{2, 3},
		AppCore:    singleFlowAppCore,
		Ctr:        1,
	}, until)
	var sent0, sent1 uint64
	tb.E.At(opt.warmup(), func() { sent0 = ol.Sent() })
	tb.E.At(opt.warmup()+opt.window(), func() { sent1 = ol.Sent() })
	res := workload.MeasureWindow(tb, ol.Socks, opt.warmup(), opt.window())
	finishAudit(tb, until)
	return tailPoint{
		offered: offered,
		sentPPS: stats.Rate(sent1-sent0, int64(opt.window())),
		res:     res,
	}
}

// ablTail sweeps offered load from well under to past capacity and
// reports vanilla-vs-Falcon percentile curves plus an SLO verdict
// table: the tail budget when underloaded, and where the goodput knee
// sits relative to capacity.
func ablTail(opt Options) []*stats.Table {
	// Capacity reference: the vanilla overlay's closed-loop stress rate
	// (the same estimate Fig 12(c) sweeps against). Both modes sweep
	// fractions of this one number so their arrival schedules match.
	capacity := udpStress(workload.ModeCon, opt, tailLink, tailPayload).PPS

	detail := &stats.Table{
		Title: fmt.Sprintf("Ablation: open-loop tail sweep, Pareto/MMPP %dB flows, capacity %s Kpps (Con closed-loop)",
			tailPayload, fKpps(capacity)),
		Columns: []string{"load", "mode", "offered(Kpps)", "sent(Kpps)", "delivered(Kpps)",
			"p50(us)", "p99(us)", "p99.9(us)", "del/sent"},
	}
	modes := []workload.Mode{workload.ModeCon, workload.ModeFalcon}
	points := map[workload.Mode][]tailPoint{}
	for _, factor := range tailFactors(opt.Quick) {
		offered := factor * capacity
		for _, mode := range modes {
			pt := runTailPoint(mode, opt, offered)
			pt.factor = factor
			points[mode] = append(points[mode], pt)
			s := pt.res.Latency
			detail.AddRow(fRatio(factor), mode.String(), fKpps(offered), fKpps(pt.sentPPS),
				fKpps(pt.res.PPS), fUs(s.P50), fUs(s.P99), fUs(s.P999),
				fmt.Sprintf("%.2f", pt.res.PPS/maxf(pt.sentPPS, 1)))
			if opt.TailLatency != nil {
				opt.TailLatency.Merge(pt.res.LatencyHist)
			}
		}
	}

	verdict := &stats.Table{
		Title: fmt.Sprintf("Tail SLO verdicts: p99@0.5x <= %dus, knee > %.1fx, tail monotone",
			tailP99BudgetNs/1000, tailKneeFrac),
		Columns: []string{"mode", "p99@0.5x(us)", "knee", "p99@max/p99@0.5x", "verdict"},
	}
	for _, mode := range modes {
		pts := points[mode]
		base, last := pts[0], pts[len(pts)-1]
		knee := "none"
		kneeOK := true
		for _, pt := range pts {
			if pt.res.PPS < tailKneeFrac*pt.sentPPS {
				knee = fRatio(pt.factor)
				kneeOK = pt.factor > 0.9
				break
			}
		}
		ok := kneeOK &&
			base.res.Latency.P99 <= tailP99BudgetNs &&
			last.res.Latency.P99 >= base.res.Latency.P99
		v := "OK"
		if !ok {
			v = "FAIL"
		}
		verdict.AddRow(mode.String(), fUs(base.res.Latency.P99), knee,
			fRatio(float64(last.res.Latency.P99)/maxf(float64(base.res.Latency.P99), 1)), v)
	}
	return []*stats.Table{detail, verdict}
}
