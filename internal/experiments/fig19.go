package experiments

import (
	"fmt"

	"falcon/internal/devices"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

func init() {
	register("fig19", "Overhead: CPU usage and softirq counts at fixed rates", fig19)
}

// fig19: Falcon's overhead. At fixed packet rates, total CPU usage with
// Falcon stays within ~10% of the vanilla overlay (loss of locality is
// offset by avoiding softirq-context thrash), while Falcon raises more
// softirqs (+44.6% at 400 Kpps in the paper) because cross-core raises
// to idle cores cannot coalesce.
func fig19(opt Options) []*stats.Table {
	link := 100 * devices.Gbps
	rates := []float64{100_000, 200_000, 300_000, 400_000}
	if opt.Quick {
		rates = []float64{200_000}
	}

	cpu := &stats.Table{
		Title:   "Fig 19(a): total CPU usage (cores) at fixed 16B UDP rates",
		Columns: []string{"rate(Kpps)", "Host", "Con", "Falcon", "Falcon/Con"},
	}
	irq := &stats.Table{
		Title:   "Fig 19(b): NET_RX softirqs per second at fixed rates",
		Columns: []string{"rate(Kpps)", "Con", "Falcon", "Falcon/Con"},
	}
	totalCPU := func(r workload.Result) float64 {
		s := 0.0
		for _, u := range r.CoreBusy {
			s += u
		}
		return s
	}
	secs := opt.window().Seconds()
	for _, rate := range rates {
		host := udpFixedRate(workload.ModeHost, opt, link, 16, rate)
		con := udpFixedRate(workload.ModeCon, opt, link, 16, rate)
		fal := udpFixedRate(workload.ModeFalcon, opt, link, 16, rate)
		hc, cc, fc := totalCPU(host), totalCPU(con), totalCPU(fal)
		cpu.AddRow(fKpps(rate), fmt.Sprintf("%.2f", hc), fmt.Sprintf("%.2f", cc),
			fmt.Sprintf("%.2f", fc), fRatio(fc/maxf(cc, 0.001)))
		irq.AddRow(fKpps(rate),
			fmt.Sprintf("%.0f", float64(con.NetRX)/secs),
			fmt.Sprintf("%.0f", float64(fal.NetRX)/secs),
			fRatio(float64(fal.NetRX)/maxf(float64(con.NetRX), 1)))
	}
	return []*stats.Table{cpu, irq}
}
