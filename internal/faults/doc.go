// Package faults is the deterministic chaos harness for the Falcon
// datapath: seeded, time-windowed fault injection that plugs into the
// discrete-event simulation without perturbing healthy runs.
//
// # Fault-plan format
//
// A Plan is a named list of Items. Each Item schedules one Fault over
// one absolute time window:
//
//	plan := faults.Plan{
//		Name: "stall-then-loss",
//		Items: []faults.Item{
//			{At: 20 * sim.Millisecond, For: 5 * sim.Millisecond,
//				Fault: &faults.CoreStall{M: host.M, Cores: []int{4}}},
//			{At: 30 * sim.Millisecond, For: 3 * sim.Millisecond,
//				Fault: &faults.LinkLossBurst{Link: link, Rate: 0.1}},
//		},
//	}
//	faults.NewInjector(engine).Install(plan)
//
// Install schedules Apply at each item's At and Revert at At+For, then
// returns; the engine fires them in virtual time. Every Item must lie
// in the future when installed. An empty plan schedules nothing — the
// fault layer is zero-cost when disabled, and a run with an empty plan
// is byte-identical to a run without the harness.
//
// # Shipped faults
//
//   - LinkLossBurst / LinkJitterBurst — wire impairments on a
//     devices.Link; loss and jitter draw from the link's own engine-
//     seeded RNG, so a given (seed, plan) pair replays exactly.
//   - RingShrink — caps a pNIC's rx rings far below their real depth,
//     producing overflow-drop storms under load.
//   - CoreStall — freezes cores silently (work queues, nothing runs):
//     the soft-lockup shape a health tracker must *infer*.
//   - CoreOffline — CPU hotplug: same freeze, but visible through
//     cpu.Core.Offline so balancers can react immediately.
//   - KVFlaky — overlay control-plane trouble: every KV lookup pays
//     extra latency and transiently fails with a given probability,
//     driving the overlay's retry/backoff and negative-cache paths.
//   - NoisyNeighbor — a softirq-context antagonist burning a fixed
//     utilization on victim cores, the colocated-tenant interference
//     case for Falcon's load gate.
//
// Determinism: all randomness is drawn from generators forked off the
// simulation engine's seeded root RNG at install time, in plan order.
// Two runs with the same engine seed and the same plan produce
// identical event sequences, counters and tables.
package faults
