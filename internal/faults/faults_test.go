package faults_test

import (
	"fmt"
	"testing"

	"falcon/internal/costmodel"
	"falcon/internal/cpu"
	"falcon/internal/devices"
	"falcon/internal/faults"
	"falcon/internal/overlay"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/stats"
	"falcon/internal/workload"
)

func TestLinkLossBurstWindow(t *testing.T) {
	e := sim.New(3)
	l := devices.NewLink(e, 100*devices.Gbps, 0)
	delivered := 0
	l.Deliver = func(*skb.SKB) { delivered++ }

	in := faults.NewInjector(e)
	in.Install(faults.Plan{Name: "loss", Items: []faults.Item{
		{At: sim.Millisecond, For: sim.Millisecond,
			Fault: &faults.LinkLossBurst{Link: l, Rate: 1.0}},
	}})

	// One frame before, one inside, one after the window.
	for _, at := range []sim.Time{500 * sim.Microsecond, 1500 * sim.Microsecond, 2500 * sim.Microsecond} {
		e.At(at, func() { l.Send(skb.New(make([]byte, 64))) })
	}
	e.Run()

	if delivered != 2 || l.Lost.Value() != 1 {
		t.Fatalf("delivered %d lost %d, want 2/1", delivered, l.Lost.Value())
	}
	if l.LossRate != 0 {
		t.Fatalf("loss rate not restored: %v", l.LossRate)
	}
	if in.Counters.Injected.Value() != 1 || in.Counters.Cleared.Value() != 1 {
		t.Fatalf("counters: injected %d cleared %d",
			in.Counters.Injected.Value(), in.Counters.Cleared.Value())
	}
}

func TestLinkJitterBurstRestores(t *testing.T) {
	e := sim.New(1)
	l := devices.NewLink(e, 100*devices.Gbps, 0)
	l.Jitter = 7 // pre-existing baseline jitter must survive the window
	in := faults.NewInjector(e)
	in.Install(faults.Plan{Items: []faults.Item{
		{At: 10, For: 10, Fault: &faults.LinkJitterBurst{Link: l, Jitter: 50 * sim.Microsecond}},
	}})
	e.RunUntil(15)
	if l.Jitter != 50*sim.Microsecond {
		t.Fatalf("jitter during window = %v", l.Jitter)
	}
	e.Run()
	if l.Jitter != 7 {
		t.Fatalf("jitter after window = %v, want 7", l.Jitter)
	}
}

func TestCoreStallFreezesAndResumes(t *testing.T) {
	e := sim.New(1)
	m := cpu.NewMachine(e, costmodel.Kernel419(), 2, sim.Millisecond)
	in := faults.NewInjector(e)
	in.Install(faults.Plan{Items: []faults.Item{
		{At: 10 * sim.Microsecond, For: 90 * sim.Microsecond,
			Fault: &faults.CoreStall{M: m, Cores: []int{0}}},
	}})

	var doneAt sim.Time
	// Submitted mid-window: must not start until the stall lifts at 100µs.
	e.At(20*sim.Microsecond, func() {
		m.Core(0).Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 1000, func() { doneAt = e.Now() })
	})
	// The other core keeps running — the stall is per-core.
	var peerAt sim.Time
	e.At(20*sim.Microsecond, func() {
		m.Core(1).Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 1000, func() { peerAt = e.Now() })
	})
	e.Run()

	want := 100*sim.Microsecond + 1000
	if doneAt != want {
		t.Fatalf("stalled work finished at %v, want %v", doneAt, want)
	}
	if peerAt != 20*sim.Microsecond+1000 {
		t.Fatalf("healthy core delayed: %v", peerAt)
	}
}

func TestCoreStallFinishesInflightWork(t *testing.T) {
	e := sim.New(1)
	m := cpu.NewMachine(e, costmodel.Kernel419(), 1, sim.Millisecond)
	in := faults.NewInjector(e)
	in.Install(faults.Plan{Items: []faults.Item{
		{At: 50, For: 1000, Fault: &faults.CoreStall{M: m, Cores: []int{0}}},
	}})
	var first, second sim.Time
	m.Core(0).Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 100, func() { first = e.Now() })
	m.Core(0).Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 100, func() { second = e.Now() })
	e.Run()
	// The item running when the stall hits completes (non-preemptive);
	// the queued one waits out the window.
	if first != 100 {
		t.Fatalf("in-flight item at %v, want 100", first)
	}
	if second != 1050+100 {
		t.Fatalf("queued item at %v, want %v", second, 1050+100)
	}
}

func TestCoreOfflineVisible(t *testing.T) {
	e := sim.New(1)
	m := cpu.NewMachine(e, costmodel.Kernel419(), 2, sim.Millisecond)
	in := faults.NewInjector(e)
	in.Install(faults.Plan{Items: []faults.Item{
		{At: 10, For: 10, Fault: &faults.CoreOffline{M: m, Cores: []int{1}}},
	}})
	e.RunUntil(15)
	if !m.Core(1).Offline() || m.Core(0).Offline() {
		t.Fatal("offline window not visible on the right core")
	}
	e.Run()
	if m.Core(1).Offline() {
		t.Fatal("core still offline after window")
	}
}

func TestNoisyNeighborBurnsCPU(t *testing.T) {
	e := sim.New(1)
	m := cpu.NewMachine(e, costmodel.Kernel419(), 2, sim.Millisecond)
	in := faults.NewInjector(e)
	in.Install(faults.Plan{Items: []faults.Item{
		{At: sim.Millisecond, For: 10 * sim.Millisecond,
			Fault: &faults.NoisyNeighbor{M: m, Cores: []int{1}, Utilization: 0.5}},
	}})
	e.RunUntil(20 * sim.Millisecond)
	busy := sim.Time(m.Acct.TotalBusy(1))
	// ~50% of the 10ms window, softirq context, victim core only.
	if busy < 4*sim.Millisecond || busy > 6*sim.Millisecond {
		t.Fatalf("noisy neighbor burned %v, want ~5ms", busy)
	}
	if sim.Time(m.Acct.Busy(1, stats.CtxSoftIRQ)) != busy {
		t.Fatal("antagonist load not in softirq context")
	}
	if m.Acct.TotalBusy(0) != 0 {
		t.Fatal("non-victim core burned")
	}
}

// newFaultBed is a minimal two-host overlay for control-plane fault tests.
func newFaultBed(seed uint64) (*sim.Engine, *overlay.Network, *overlay.Host, *overlay.Host, *overlay.Container, *overlay.Container) {
	e := sim.New(seed)
	n := overlay.NewNetwork(e)
	cli := n.AddHost(overlay.HostConfig{Name: "cli", IP: proto.IP4(192, 168, 9, 1), Cores: 8,
		RSSCores: []int{0}, RPSCores: []int{1}, GRO: true, InnerGRO: true})
	srv := n.AddHost(overlay.HostConfig{Name: "srv", IP: proto.IP4(192, 168, 9, 2), Cores: 8,
		RSSCores: []int{0}, RPSCores: []int{1}, GRO: true, InnerGRO: true})
	n.Connect(cli, srv, 100*devices.Gbps, sim.Microsecond)
	cc := cli.AddContainer("cc", proto.IP4(10, 60, 0, 1))
	sc := srv.AddContainer("sc", proto.IP4(10, 60, 0, 2))
	return e, n, cli, srv, cc, sc
}

func TestKVFlakyExhaustsRetriesThenDrops(t *testing.T) {
	e, n, cli, _, cc, sc := newFaultBed(11)
	in := faults.NewInjector(e)
	in.Install(faults.Plan{Items: []faults.Item{
		{At: sim.Millisecond, For: 5 * sim.Millisecond,
			Fault: &faults.KVFlaky{KV: n.KV, FailRate: 1.0}},
	}})
	var ok, called bool
	e.At(2*sim.Millisecond, func() {
		cli.SendUDP(overlay.SendParams{From: cc, SrcPort: 1, DstIP: sc.IP, DstPort: 2,
			Payload: 16, Core: 2, Done: func(v bool) { ok, called = v, true }})
	})
	e.RunUntil(10 * sim.Millisecond)
	if !called || ok {
		t.Fatalf("send under 100%% KV failure: called=%v ok=%v", called, ok)
	}
	if cli.TxResolveDrops.Value() != 1 {
		t.Fatalf("TxResolveDrops = %d, want 1", cli.TxResolveDrops.Value())
	}
	if cli.KVRetries.Value() != 4 {
		t.Fatalf("KVRetries = %d, want 4 (max backoff attempts)", cli.KVRetries.Value())
	}
}

func TestKVFlakyTransientFailureRecovers(t *testing.T) {
	// Latency-only flakiness: every lookup succeeds after paying delay, so
	// the datapath is slowed but loses nothing.
	e, n, cli, srv, cc, sc := newFaultBed(12)
	in := faults.NewInjector(e)
	in.Install(faults.Plan{Items: []faults.Item{
		{At: 0, For: 20 * sim.Millisecond,
			Fault: &faults.KVFlaky{KV: n.KV, Latency: 100 * sim.Microsecond}},
	}})
	sk := srv.OpenUDP(sc.IP, 5001, 2)
	const nPkts = 50
	for i := 0; i < nPkts; i++ {
		seq := uint64(i + 1)
		e.At(sim.Time(i)*20*sim.Microsecond, func() {
			cli.SendUDP(overlay.SendParams{From: cc, SrcPort: 7000, DstIP: sc.IP, DstPort: 5001,
				Payload: 64, Core: 2, FlowID: 1, Seq: seq})
		})
	}
	e.RunUntil(30 * sim.Millisecond)
	if got := sk.Delivered.Value(); got != nPkts {
		t.Fatalf("delivered %d/%d under KV latency", got, nPkts)
	}
	if sk.OrderViols != 0 {
		t.Fatalf("order violations: %d", sk.OrderViols)
	}
}

func TestKVMissNegativeCache(t *testing.T) {
	e, n, cli, _, cc, _ := newFaultBed(13)
	in := faults.NewInjector(e)
	in.Install(faults.Plan{Items: []faults.Item{
		{At: 0, For: 50 * sim.Millisecond, Fault: &faults.KVFlaky{KV: n.KV}},
	}})
	unknown := proto.IP4(10, 99, 0, 9)
	send := func(at sim.Time) {
		e.At(at, func() {
			cli.SendUDP(overlay.SendParams{From: cc, SrcPort: 1, DstIP: unknown, DstPort: 2,
				Payload: 16, Core: 2})
		})
	}
	send(sim.Millisecond)                         // definitive miss → caches the negative
	send(sim.Millisecond + 100*sim.Microsecond)   // within TTL → suppressed
	send(sim.Millisecond + 200*sim.Microsecond)   // still suppressed
	send(sim.Millisecond + 2*overlay.NegCacheTTL) // TTL expired → fresh lookup
	e.RunUntil(20 * sim.Millisecond)
	if got := cli.NegCacheHits.Value(); got != 2 {
		t.Fatalf("NegCacheHits = %d, want 2", got)
	}
	if got := cli.TxResolveDrops.Value(); got != 4 {
		t.Fatalf("TxResolveDrops = %d, want 4", got)
	}
}

// chaosSignature drives one UDP stream through a multi-fault plan and
// digests every observable: delivery count and per-packet delivery
// times, loss, drops, retries. Two runs with the same seed must agree
// exactly.
func chaosSignature(seed uint64) string {
	tb := workload.NewTestbed(workload.TestbedConfig{
		LinkRate: 10 * devices.Gbps, Cores: 12, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1}, GRO: true, InnerGRO: true, Seed: seed,
	})
	link := tb.Client.LinkTo(workload.ServerIP)
	in := faults.NewInjector(tb.E)
	in.Install(faults.Plan{Name: "mix", Items: []faults.Item{
		{At: 2 * sim.Millisecond, For: 2 * sim.Millisecond,
			Fault: &faults.LinkLossBurst{Link: link, Rate: 0.05}},
		{At: 5 * sim.Millisecond, For: 2 * sim.Millisecond,
			Fault: &faults.KVFlaky{KV: tb.Net.KV, Latency: 30 * sim.Microsecond, FailRate: 0.3}},
		{At: 8 * sim.Millisecond, For: 2 * sim.Millisecond,
			Fault: &faults.LinkJitterBurst{Link: link, Jitter: 20 * sim.Microsecond}},
	}})
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 256, 2, 2, 1)
	f.SendAtRate(50_000, 12*sim.Millisecond)

	// FNV-1a over every delivery's (seq, arrival time).
	hash := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			hash ^= (v >> (8 * i)) & 0xff
			hash *= 1099511628211
		}
	}
	f.Sock.OnDeliver = func(s *skb.SKB) {
		mix(s.Seq)
		mix(uint64(tb.E.Now()))
	}
	tb.Run(15 * sim.Millisecond)
	return fmt.Sprintf("d=%d lost=%d nic=%d retries=%d negc=%d h=%x",
		f.Sock.Delivered.Value(), link.Lost.Value(), tb.Server.NIC.Drops.Value(),
		tb.Client.KVRetries.Value(), tb.Client.NegCacheHits.Value(), hash)
}

func TestChaosPlanDeterministic(t *testing.T) {
	a := chaosSignature(42)
	b := chaosSignature(42)
	if a != b {
		t.Fatalf("same seed + same plan diverged:\n  %s\n  %s", a, b)
	}
	if c := chaosSignature(43); c == a {
		t.Logf("different seed produced identical signature (possible but suspicious): %s", c)
	}
}
