package faults

import (
	"fmt"

	"falcon/internal/overlay"
)

// HostCrash kills a whole host for the window: the NIC and stack go
// down, every queue-resident packet (rx rings, GRO holds, backlogs)
// dies into the audit-accounted crash drop bucket, and arriving or
// locally-sent packets blackhole the same way until Revert reboots the
// host. The crash itself is instantaneous and mechanical — detection,
// container fail-over and LP detach are the reconfig failure detector's
// job, driven by the heartbeats this fault silences.
type HostCrash struct {
	Host *overlay.Host
}

func (f *HostCrash) Name() string { return fmt.Sprintf("host-crash(%s)", f.Host.Name) }

func (f *HostCrash) Apply(*Injector) { f.Host.Crash() }

func (f *HostCrash) Revert(*Injector) { f.Host.Reboot() }

// HostReboot brings a crashed host back at the window start — the
// one-sided companion to a HostCrash whose window outlives the run (a
// crash that "never reverts"). Revert is a no-op.
type HostReboot struct {
	Host *overlay.Host
}

func (f *HostReboot) Name() string { return fmt.Sprintf("host-reboot(%s)", f.Host.Name) }

func (f *HostReboot) Apply(*Injector) { f.Host.Reboot() }

func (f *HostReboot) Revert(*Injector) {}

// KVPartition cuts one host off from the overlay control plane for the
// window: its transmit path serves version-pinned stale mappings from
// the TX flow cache (bounded staleness), retries remap misses with
// backoff, and on heal reconciles by dropping every cached resolution —
// no duplicate delivery, because the partitioned host never held a
// packet back, only mappings.
type KVPartition struct {
	KV   *overlay.KVStore
	Host *overlay.Host
}

func (f *KVPartition) Name() string { return fmt.Sprintf("kv-partition(%s)", f.Host.Name) }

func (f *KVPartition) Apply(*Injector) { f.KV.SetPartitioned(f.Host.IP, true) }

func (f *KVPartition) Revert(*Injector) {
	f.KV.SetPartitioned(f.Host.IP, false)
	f.Host.ReconcileKV()
}
