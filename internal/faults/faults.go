package faults

import (
	"fmt"
	"sync"

	"falcon/internal/costmodel"
	"falcon/internal/cpu"
	"falcon/internal/devices"
	"falcon/internal/overlay"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/stats"
)

// Fault is one impairment that can be applied at a window's start and
// reverted at its end. Implementations restore the exact pre-fault
// state on Revert.
type Fault interface {
	// Name labels the fault in plans and experiment output.
	Name() string
	// Apply engages the impairment. rng is the injector's seeded
	// generator; faults needing randomness fork from it.
	Apply(in *Injector)
	// Revert restores the pre-fault state.
	Revert(in *Injector)
}

// Item schedules one fault over one absolute time window.
type Item struct {
	// At is the window start (absolute virtual time); For its duration.
	At, For sim.Time
	Fault   Fault
}

// Plan is a named chaos plan: the full schedule of impairments for one
// run. The zero value (no items) is the healthy plan and costs nothing.
type Plan struct {
	Name  string
	Items []Item
}

// String summarizes the plan.
func (p Plan) String() string {
	return fmt.Sprintf("plan{%s: %d faults}", p.Name, len(p.Items))
}

// Single wraps one fault in a plan covering the window [at, at+dur],
// named after the fault — the shape almost every scenario uses.
func Single(at, dur sim.Time, f Fault) Plan {
	return Plan{Name: f.Name(), Items: []Item{{At: at, For: dur, Fault: f}}}
}

// Injector binds plans to a simulation and makes injection observable.
// On a PDES cluster the Apply/Revert events run on the coordinator —
// at barriers, with every shard parked — so faults may safely touch
// state owned by any shard.
type Injector struct {
	E sim.Sim
	// Counters tallies windows applied/cleared.
	Counters stats.FaultCounters

	rng *sim.Rand
}

// NewInjector returns an injector on simulation e with a private RNG
// forked from the simulation's seeded root generator.
func NewInjector(e sim.Sim) *Injector {
	return &Injector{E: e, rng: e.Rand().Fork()}
}

// Rand returns the injector's seeded generator (faults fork from it in
// Apply so each fault owns an independent deterministic stream).
func (in *Injector) Rand() *sim.Rand { return in.rng }

// Install schedules every item of the plan on the engine: Apply fires
// at Item.At, Revert at Item.At+Item.For. Items must lie in the future
// (sim.Engine panics on past scheduling — a plan bug). An empty plan
// schedules nothing.
func (in *Injector) Install(plan Plan) {
	for _, it := range plan.Items {
		f := it.Fault
		in.E.At(it.At, func() {
			f.Apply(in)
			in.Counters.Injected.Inc()
		})
		in.E.At(it.At+it.For, func() {
			f.Revert(in)
			in.Counters.Cleared.Inc()
		})
	}
}

// LinkLossBurst drops each frame on Link independently with probability
// Rate for the duration of the window (a flapping optic or overloaded
// middlebox). The draw uses the link's own engine-seeded RNG.
type LinkLossBurst struct {
	Link *devices.Link
	Rate float64

	prev float64
}

func (f *LinkLossBurst) Name() string { return fmt.Sprintf("link-loss(%.0f%%)", f.Rate*100) }

func (f *LinkLossBurst) Apply(*Injector) {
	f.prev = f.Link.LossRate
	f.Link.LossRate = f.Rate
}

func (f *LinkLossBurst) Revert(*Injector) { f.Link.LossRate = f.prev }

// LinkJitterBurst adds uniform random delay in [0, Jitter] to each
// frame on Link during the window, without reordering the wire.
type LinkJitterBurst struct {
	Link   *devices.Link
	Jitter sim.Time

	prev sim.Time
}

func (f *LinkJitterBurst) Name() string { return fmt.Sprintf("link-jitter(%v)", f.Jitter) }

func (f *LinkJitterBurst) Apply(*Injector) {
	f.prev = f.Link.Jitter
	f.Link.Jitter = f.Jitter
}

func (f *LinkJitterBurst) Revert(*Injector) { f.Link.Jitter = f.prev }

// RingShrink caps the NIC's rx rings at Limit slots during the window,
// so bursts that a full ring would absorb become overflow-drop storms.
type RingShrink struct {
	NIC   *devices.PNIC
	Limit int
}

func (f *RingShrink) Name() string { return fmt.Sprintf("ring-shrink(%d)", f.Limit) }

func (f *RingShrink) Apply(*Injector) { f.NIC.SetRingLimit(f.Limit) }

func (f *RingShrink) Revert(*Injector) { f.NIC.SetRingLimit(0) }

// CoreStall silently freezes the given cores: queued and newly
// submitted work waits, nothing executes, and no notification is
// raised — detectable only by watching for stalled progress.
type CoreStall struct {
	M     *cpu.Machine
	Cores []int
}

func (f *CoreStall) Name() string { return fmt.Sprintf("core-stall%v", f.Cores) }

func (f *CoreStall) Apply(*Injector) {
	for _, c := range f.Cores {
		f.M.Core(c).SetStalled(true)
	}
}

func (f *CoreStall) Revert(*Injector) {
	for _, c := range f.Cores {
		f.M.Core(c).SetStalled(false)
	}
}

// CoreOffline hot-unplugs the given cores for the window: execution
// freezes as in CoreStall, but cpu.Core.Offline exposes the state so
// balancers can blacklist the cores without waiting out a detection
// delay.
type CoreOffline struct {
	M     *cpu.Machine
	Cores []int
}

func (f *CoreOffline) Name() string { return fmt.Sprintf("cpu-offline%v", f.Cores) }

func (f *CoreOffline) Apply(*Injector) {
	for _, c := range f.Cores {
		f.M.Core(c).SetOffline(true)
	}
}

func (f *CoreOffline) Revert(*Injector) {
	for _, c := range f.Cores {
		f.M.Core(c).SetOffline(false)
	}
}

// KVFlaky impairs the overlay control plane: while applied, every KV
// lookup attempt pays Latency and transiently fails with probability
// FailRate (gossip-store churn during node restarts). Each consulting
// host draws from its own generator, seeded off a base value taken from
// the injector's stream at Apply time: hosts on different PDES shards
// resolve concurrently, and per-host streams make the failure pattern a
// function of (host, attempt number) alone — independent of shard
// layout and identical to the serial run.
type KVFlaky struct {
	KV       *overlay.KVStore
	Latency  sim.Time
	FailRate float64

	base uint64

	mu      sync.Mutex
	streams map[proto.IPv4Addr]*sim.Rand
}

func (f *KVFlaky) Name() string {
	return fmt.Sprintf("kv-flaky(+%v,%.0f%%)", f.Latency, f.FailRate*100)
}

func (f *KVFlaky) Apply(in *Injector) {
	f.base = in.Rand().Uint64()
	f.mu.Lock()
	f.streams = make(map[proto.IPv4Addr]*sim.Rand)
	f.mu.Unlock()
	f.KV.SetFault(f)
}

func (f *KVFlaky) Revert(*Injector) { f.KV.SetFault(nil) }

// Lookup implements overlay.LookupFault.
func (f *KVFlaky) Lookup(hostIP, _ proto.IPv4Addr) (sim.Time, bool) {
	if f.FailRate <= 0 {
		return f.Latency, false
	}
	f.mu.Lock()
	r := f.streams[hostIP]
	if r == nil {
		r = sim.NewRand(f.base ^ (uint64(hostIP)+1)*0x9e3779b97f4a7c15)
		f.streams[hostIP] = r
	}
	f.mu.Unlock()
	return f.Latency, r.Float64() < f.FailRate
}

// NoisyNeighbor burns Utilization of each victim core in softirq
// context for the duration of the window — a colocated tenant whose
// interrupt load competes with the datapath (the antagonist Falcon's
// load gate exists for).
type NoisyNeighbor struct {
	M     *cpu.Machine
	Cores []int
	// Utilization in (0,1]: the fraction of each Period spent busy.
	Utilization float64
	// Period between bursts (0 → 100µs).
	Period sim.Time

	active bool
}

func (f *NoisyNeighbor) Name() string {
	return fmt.Sprintf("noisy-neighbor%v(%.0f%%)", f.Cores, f.Utilization*100)
}

func (f *NoisyNeighbor) Apply(in *Injector) {
	period := f.Period
	if period == 0 {
		period = 100 * sim.Microsecond
	}
	cost := sim.Time(float64(period) * f.Utilization)
	if cost <= 0 {
		return
	}
	f.active = true
	for _, c := range f.Cores {
		core := f.M.Core(c)
		var burst func()
		burst = func() {
			if !f.active {
				return
			}
			core.Submit(stats.CtxSoftIRQ, costmodel.FnAppWork, cost, nil)
			in.E.After(period, burst)
		}
		burst()
	}
}

func (f *NoisyNeighbor) Revert(*Injector) { f.active = false }
