package scenario

import (
	"fmt"
	"path/filepath"
	"testing"
)

// cacheMeasure pre-populates a Ctx's run cache with a fabricated result,
// so oracle-logic tests can exercise comparison branches without
// simulating (a cache hit short-circuits Measure).
func cacheMeasure(c *Ctx, sc Scenario, falcon bool, r RunResult) {
	c.measures[fmt.Sprintf("m:%t:%s", falcon, sc.JSON())] = r
}

// tailOracle fetches the tail-sanity oracle from the battery.
func tailOracle(t *testing.T) Oracle {
	t.Helper()
	os, err := ByName([]string{"tail-sanity"})
	if err != nil {
		t.Fatal(err)
	}
	return os[0]
}

// sane is a well-formed measurement the fabricated tests perturb.
func sane(falcon bool) RunResult {
	return RunResult{Falcon: falcon, Delivered: 1000,
		P50: 12_000, P99: 60_000, P999: 90_000, MaxLat: 120_000}
}

// TestTailSanityCorpusBranchArmed guards the corpus scenario that
// exercises the fault-monotonicity branch: openloop-pareto-tail must
// keep satisfying every gate (fixed-rate sends, delay-only faults off
// the FALCON_CPUs, a drop-free baseline with enough tail mass), or the
// branch would silently stop running on real traffic.
func TestTailSanityCorpusBranchArmed(t *testing.T) {
	sc, _, err := LoadFile(filepath.Join("testdata", "openloop-pareto-tail.json"))
	if err != nil {
		t.Fatal(err)
	}
	o := tailOracle(t)
	if !o.Applies(sc) {
		t.Fatal("tail-sanity does not apply to openloop-pareto-tail")
	}
	if !sc.FixedRateOnly() || !delayOnlyFaults(sc) || hitsFalconCPU(sc) {
		t.Fatalf("monotonicity gates closed: fixedRate=%t delayOnly=%t hitsFalcon=%t",
			sc.FixedRateOnly(), delayOnlyFaults(sc), hitsFalconCPU(sc))
	}
	clean := sc
	clean.Faults = nil
	b := Measure(clean, hasFalcon(sc))
	if drops := b.NICDrops + b.BacklogDrops + b.SocketDrops; drops > 0 {
		t.Fatalf("baseline drops %d packets; the drop-free gate skips the branch", drops)
	}
	if b.Delivered < MinTailSamples {
		t.Fatalf("baseline delivered %d < MinTailSamples %d", b.Delivered, MinTailSamples)
	}
	f := Measure(sc, hasFalcon(sc))
	if f.Delivered < MinTailSamples {
		t.Fatalf("faulted run delivered %d < MinTailSamples %d", f.Delivered, MinTailSamples)
	}
	// And the armed branch must hold on the real datapath: jitter may
	// only push the tail up.
	if v := CheckOracle(o, NewCtx(sc)); v != nil {
		t.Fatalf("tail-sanity violated on corpus scenario: %s", v)
	}
}

// TestTailSanityCatchesLadderInversion: a run whose percentiles are out
// of order (p99 above p99.9 — the shape a histogram-merge bug produces)
// must be flagged.
func TestTailSanityCatchesLadderInversion(t *testing.T) {
	sc := valid()
	sc.Flows[0].RatePPS = 50_000
	c := NewCtx(sc)
	bad := sane(false)
	bad.P99, bad.P999 = 90_000, 60_000 // inverted
	cacheMeasure(c, sc, false, bad)
	cacheMeasure(c, sc, true, sane(true))
	v := CheckOracle(tailOracle(t), c)
	if v == nil {
		t.Fatal("inverted percentile ladder not flagged")
	}
}

// TestTailSanityCatchesWindowLeak: a max latency exceeding the run's
// own span means a sample survived a measurement reset.
func TestTailSanityCatchesWindowLeak(t *testing.T) {
	sc := valid()
	sc.Flows[0].RatePPS = 50_000
	c := NewCtx(sc)
	bad := sane(true)
	bad.MaxLat = int64(sc.Warmup()+sc.Window()) + 1
	bad.P999 = bad.MaxLat // keep the ladder ordered
	cacheMeasure(c, sc, false, sane(false))
	cacheMeasure(c, sc, true, bad)
	if CheckOracle(tailOracle(t), c) == nil {
		t.Fatal("cross-window latency leak not flagged")
	}
}

// TestTailSanityCatchesImprovedTail: a delay fault that *improves* p99
// beyond the envelope means the latency origin misses the delay it was
// meant to include — the regression the SendTime stamp exists to
// prevent.
func TestTailSanityCatchesImprovedTail(t *testing.T) {
	sc := valid()
	sc.Flows[0].RatePPS = 50_000
	sc.Faults = []FaultSpec{{Kind: "link-jitter", AtMs: 1, ForMs: 1, Amount: 50}}
	clean := sc
	clean.Faults = nil

	c := NewCtx(sc)
	faulted := sane(true)
	faulted.P50, faulted.P99, faulted.P999, faulted.MaxLat = 4_000, 8_000, 9_000, 10_000
	cacheMeasure(c, sc, false, sane(false))
	cacheMeasure(c, sc, true, faulted)
	cacheMeasure(c, clean, true, sane(true)) // clean p99 60µs vs faulted 8µs
	v := CheckOracle(tailOracle(t), c)
	if v == nil {
		t.Fatal("fault-improved tail not flagged")
	}

	// Within the envelope (slightly faster, above TailImproveFactor with
	// slack) stays legal: percentiles of a finite window wobble.
	c2 := NewCtx(sc)
	wobble := sane(true)
	wobble.P99 = 55_000
	cacheMeasure(c2, sc, false, sane(false))
	cacheMeasure(c2, sc, true, wobble)
	cacheMeasure(c2, clean, true, sane(true))
	if v := CheckOracle(tailOracle(t), c2); v != nil {
		t.Fatalf("in-envelope wobble flagged: %s", v)
	}
}
