package scenario

import (
	"path/filepath"
	"testing"
)

// TestCorpusShardInvariance replays the whole scenario corpus on a
// 2-shard PDES cluster and requires the measured window and the
// drain-complete accounting to match the serial run exactly — every
// counter, percentile, per-flow vector and audit verdict. Together with
// the corpus' own oracle battery this pins the sharded engine to the
// serial semantics across every datapath shape the fuzzer has found
// worth remembering.
//
// The one field excluded is RunResult.Fired: a cross-shard frame fires
// two engine events (the sender-side serializer retire plus the posted
// delivery on the receiving shard) where the serial engine fires one,
// so raw event counts legitimately differ by exactly the cross-shard
// frame count. Everything observable about the simulated system must
// not.
func TestCorpusShardInvariance(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			sc, _, err := LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for _, falcon := range applicableModes(sc) {
				serial, sharded := sc, sc
				sharded.Shards = 2

				mWant := Measure(serial, falcon)
				mGot := Measure(sharded, falcon)
				mWant.Fired, mGot.Fired = 0, 0
				if want, got := mWant.Fingerprint(), mGot.Fingerprint(); got != want {
					t.Errorf("falcon=%t: sharded Measure diverges\nserial:  %s\nsharded: %s", falcon, want, got)
				}

				aWant := Account(serial, falcon)
				aGot := Account(sharded, falcon)
				if want, got := accountFingerprint(aWant), accountFingerprint(aGot); got != want {
					t.Errorf("falcon=%t: sharded Account diverges\nserial:  %s\nsharded: %s", falcon, want, got)
				}
			}
		})
	}
}

// TestCorpusAdaptiveShardInvariance replays two fuzz-corpus scenarios
// — the dense steady-datapath flood and the hardest reconfig shape
// (graceful drain with twin handoff) — on a 2-shard cluster with
// adaptive safe-horizon windows on and off, and requires bit-identical
// measurement and accounting between the two. Unlike the serial
// comparison, Fired is included: both runs are sharded, so even raw
// event counts must match — adaptive horizons may only move window
// barriers, never an event.
func TestCorpusAdaptiveShardInvariance(t *testing.T) {
	for _, name := range []string{"det-udp-flood.json", "reconfig-drain.json"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc, _, err := LoadFile(filepath.Join("testdata", name))
			if err != nil {
				t.Fatal(err)
			}
			sc.Shards = 2
			for _, falcon := range applicableModes(sc) {
				adaptive, fixed := sc, sc
				fixed.FixedHorizon = true

				mWant := Measure(fixed, falcon)
				mGot := Measure(adaptive, falcon)
				if want, got := mWant.Fingerprint(), mGot.Fingerprint(); got != want {
					t.Errorf("falcon=%t: adaptive Measure diverges\nfixed:    %s\nadaptive: %s", falcon, want, got)
				}

				aWant := Account(fixed, falcon)
				aGot := Account(adaptive, falcon)
				if want, got := accountFingerprint(aWant), accountFingerprint(aGot); got != want {
					t.Errorf("falcon=%t: adaptive Account diverges\nfixed:    %s\nadaptive: %s", falcon, want, got)
				}
			}
		})
	}
}

// accountFingerprint renders an AccountResult for byte comparison.
func accountFingerprint(a AccountResult) string {
	out := ""
	out += "sent=" + itoa(a.Sent) + " wire=" + itoa(a.Wire) + " delivered=" + itoa(a.Delivered)
	out += " nic=" + itoa(a.NICDrops) + " backlog=" + itoa(a.BacklogDrops) + " sock=" + itoa(a.SocketDrops)
	out += " path=" + itoa(a.PathDrops) + " l4=" + itoa(a.L4Drops)
	out += " lost=" + itoa(a.LinkLost) + " txq=" + itoa(a.LinkDropped)
	out += " resolve=" + itoa(a.TxResolveDrops) + " build=" + itoa(a.TxBuildDrops)
	out += " crash=" + itoa(a.CrashDrops)
	out += " order=" + itoa(a.OrderViols)
	out += " flows=["
	for i := range a.PerFlowSent {
		out += itoa(a.PerFlowSent[i]) + ":" + itoa(a.PerFlowDelivered[i]) + " "
	}
	out += "]"
	out += " violations=["
	for _, v := range a.Violations {
		out += v + "; "
	}
	out += "]"
	return out
}

func itoa(n uint64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
