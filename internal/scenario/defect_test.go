package scenario

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"falcon/internal/core"
)

// dropLastCPU is the seeded steering defect from falconsim's
// -fuzz-defect drop-falcon-cpu: the placement mask silently loses its
// last CPU (a 1-CPU mask then divides by zero in the hash modulo).
func dropLastCPU(cpus []int) []int { return cpus[:len(cpus)-1] }

func withDefect(t *testing.T, f func()) {
	t.Helper()
	core.SeedPlacementDefect(dropLastCPU)
	defer core.SeedPlacementDefect(nil)
	f()
}

// TestSeededDefectCaughtByDeterminism: with the defect installed, a
// single-CPU Falcon scenario panics on the placement hot path; the
// oracle runner must convert that into a violation, not a crashed
// campaign — and the same scenario must pass once the defect is cleared.
func TestSeededDefectCaughtByDeterminism(t *testing.T) {
	sc := valid()
	sc.FalconCPUs = []int{3}
	sc.WindowMs = 2
	det, _ := ByName([]string{"determinism"})

	withDefect(t, func() {
		v := CheckOracle(det[0], NewCtx(sc))
		if v == nil {
			t.Fatal("seeded defect not caught")
		}
		if !strings.Contains(v.Detail, "panic") {
			t.Fatalf("violation did not capture the panic: %s", v.Detail)
		}
	})
	if v := CheckOracle(det[0], NewCtx(sc)); v != nil {
		t.Fatalf("defect hook not cleared: %s", v)
	}
}

// TestSeededDefectShrinks: the shrinker must walk a bigger failing
// scenario down while the violation keeps reproducing, and end on a
// valid, no-larger configuration that still fails.
func TestSeededDefectShrinks(t *testing.T) {
	sc := valid()
	sc.FalconCPUs = []int{3}
	sc.Containers = 2
	sc.WindowMs = 6
	sc.TwoChoice = true
	sc.Flows = append(sc.Flows, FlowSpec{Proto: "udp", Size: 512, RatePPS: 30000, Ctr: 2, SendCore: 3})

	withDefect(t, func() {
		min, checks := Shrink(sc, "determinism", 30)
		if checks == 0 {
			t.Fatal("shrink did not run")
		}
		if err := min.Validate(); err != nil {
			t.Fatalf("shrunk scenario invalid: %v", err)
		}
		if len(min.Flows) > len(sc.Flows) || min.WindowMs > sc.WindowMs ||
			min.Cores > sc.Cores || min.Containers > sc.Containers {
			t.Fatalf("shrink grew the scenario: %+v", min)
		}
		if reflect.DeepEqual(min, sc) {
			t.Fatalf("shrink made no progress on a 30-check budget: %+v", min)
		}
		det, _ := ByName([]string{"determinism"})
		if CheckOracle(det[0], NewCtx(min)) == nil {
			t.Fatal("shrunk scenario no longer reproduces the defect")
		}
	})
}

// TestFuzzFindsSeededDefect mirrors the CI acceptance gate at unit-test
// scale: a short campaign over the standard seed sequence must land on
// the seeded defect and emit a loadable reproducer that pins the
// violated oracle.
func TestFuzzFindsSeededDefect(t *testing.T) {
	dir := t.TempDir()
	withDefect(t, func() {
		failures, err := Fuzz(FuzzOptions{
			Seeds: 12, Workers: 4, NoShrink: true, ReproDir: dir,
			ExtraArgs: "-fuzz-defect drop-falcon-cpu",
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) == 0 {
			t.Fatal("12 seeds found nothing with the defect installed")
		}
		f := failures[0]
		if f.ReproPath == "" {
			t.Fatal("finding has no reproducer path")
		}
		if _, err := os.Stat(f.ReproPath); err != nil {
			t.Fatal(err)
		}
		sc, pinned, err := LoadFile(f.ReproPath)
		if err != nil {
			t.Fatalf("reproducer unloadable: %v", err)
		}
		if len(pinned) != 1 || pinned[0] != f.Violation.Oracle {
			t.Fatalf("reproducer pins %v, want [%s]", pinned, f.Violation.Oracle)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("reproducer scenario invalid: %v", err)
		}
		// The twin audit dump must exist alongside the JSON reproducer.
		dump := strings.TrimSuffix(f.ReproPath, ".json") + ".dump"
		if _, err := os.Stat(dump); err != nil {
			t.Fatalf("twin audit dump missing: %v", err)
		}
	})
}

// TestFuzzCleanSmoke: without any defect, the first seeds of the
// standard sequence must come back clean (the full 50-seed battery runs
// in CI).
func TestFuzzCleanSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	failures, err := Fuzz(FuzzOptions{Seeds: 2, Workers: 2, ReproDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range failures {
		t.Errorf("seed %d: %s", f.Seed, f.Violation)
	}
}
