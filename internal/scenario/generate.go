package scenario

import (
	"fmt"

	"falcon/internal/sim"
)

// Generate samples one random-but-valid scenario from the fuzz seed.
// The same seed always yields the same scenario (the generator draws
// from the simulator's own splitmix stream), and the scenario reuses
// the seed for its engine, so "fuzz seed N" fully determines the run.
//
// The distribution is shaped toward the paper's interesting regimes:
// mostly overlay traffic (the contribution is overlay parallelization),
// a UDP bias (the exact-conservation oracle needs UDP-only runs),
// occasional MTU-limited links (exercising IP fragmentation), and a
// ~30% chance of a fault schedule (exercising graceful degradation).
func Generate(seed uint64) Scenario {
	r := sim.NewRand(seed)
	pick := func(xs ...int) int { return xs[r.Intn(len(xs))] }

	sc := Scenario{
		Name:       fmt.Sprintf("gen-%d", seed),
		Seed:       seed,
		Cores:      pick(6, 8, 12, 16),
		LinkGbps:   float64(pick(10, 100)),
		Containers: 1 + r.Intn(3),
		GRO:        r.Float64() < 0.8,
		InnerGRO:   r.Float64() < 0.5,
		TwoChoice:  r.Float64() < 0.75,
		GROSplit:   r.Float64() < 0.75,
		AlwaysOn:   r.Float64() < 0.15,
		AppCore:    2,
		WarmupMs:   2 + r.Intn(2),
		WindowMs:   6 + r.Intn(5),
	}
	if r.Float64() < 0.25 {
		sc.Kernel = "5.4"
	}
	if r.Float64() < 0.1 {
		sc.MTU = 1500
	}

	// FALCON_CPUS: k cores starting at 3 (the single-flow layout: RSS
	// on 0, RPS on 1, app on 2). Bounded by the machine size.
	kmax := sc.Cores - 3
	if kmax > 4 {
		kmax = 4
	}
	k := 1 + r.Intn(kmax)
	for c := 3; c < 3+k; c++ {
		sc.FalconCPUs = append(sc.FalconCPUs, c)
	}

	nflows := 1 + r.Intn(3)
	for i := 0; i < nflows; i++ {
		f := FlowSpec{SendCore: 2 + i, Ctr: 1 + r.Intn(sc.Containers)}
		if r.Float64() < 0.25 {
			f.Proto = "tcp"
			f.Size = pick(1024, 4096, 16384, 65536)
		} else {
			f.Proto = "udp"
			f.Size = pick(16, 64, 256, 512, 1024, 1472, 4096, 16384)
			if r.Float64() < 0.6 {
				f.RatePPS = float64(20_000 + r.Intn(180_000))
			} // else flood
			if r.Float64() < 0.1 {
				f.Ctr = 0 // host networking
			}
		}
		sc.Flows = append(sc.Flows, f)
	}

	if r.Float64() < 0.3 {
		n := 1 + r.Intn(MaxFaults)
		for i := 0; i < n; i++ {
			sc.Faults = append(sc.Faults, genFault(r, sc))
		}
	}

	// Reconfig draws come after every earlier field, and crash draws
	// after every reconfig draw: each extension appends new draws
	// strictly behind the frozen prefix, so pre-extension fuzz seeds
	// keep generating byte-identical scenarios for everything they
	// already contained (the seeded-defect corpus and CI self-tests
	// depend on that).
	if r.Float64() < 0.2 {
		n := 1 + r.Intn(MaxReconfigs)
		for i := 0; i < n; i++ {
			sc.Reconfigs = append(sc.Reconfigs, genReconfig(r, sc))
		}
	}
	// A crash must be the sole reconfig (the validator's rule) and needs
	// the same migratable shape as a drain.
	if len(sc.Reconfigs) == 0 && sc.UDPOnly() && sc.OverlayOnly() && sc.Containers >= 1 {
		if r.Float64() < 0.12 {
			sc.Reconfigs = append(sc.Reconfigs, genCrash(r, sc))
		}
	}
	// Open-loop draws come after the crash draw (frozen-prefix rule
	// again): a quarter of scenarios add a churning heavy-tailed flow
	// population, the regime the tail-sanity oracle measures.
	if r.Float64() < 0.25 {
		sc.OpenLoop = genOpenLoop(r)
	}
	// RX-cache draw comes last (the newest extension of the frozen
	// prefix): a third of scenarios run with the decap fast path on, so
	// the whole oracle battery — conservation, kernel equivalence,
	// crash/reconfig sanity, shard invariance — also exercises the
	// cached datapath, and the transparency oracle gets cache-on runs to
	// compare against their cache-off twins.
	sc.RxCache = r.Float64() < 0.33
	return sc
}

// genOpenLoop samples one open-loop population. Offered load tops out
// at ~160 Kpps (10k flows/s × 16 pkts), well inside both the validator
// bound and a 100G receiver — overload is the tail experiment's job,
// the fuzzer just needs live churn on every datapath shape.
func genOpenLoop(r *sim.Rand) *OpenLoopSpec {
	dists := []string{"pareto", "lognormal"}
	arrivals := []string{"poisson", "mmpp"}
	sizes := []int{16, 64, 256, 512}
	return &OpenLoopSpec{
		Dist:        dists[r.Intn(len(dists))],
		Arrivals:    arrivals[r.Intn(len(arrivals))],
		FlowsPerSec: float64(1000 + r.Intn(9000)),
		MeanPkts:    float64(4 + r.Intn(13)),
		Size:        sizes[r.Intn(len(sizes))],
		FlowRatePPS: float64(10_000 + r.Intn(90_000)),
		Ports:       1 + r.Intn(3),
	}
}

// genCrash samples one abrupt server outage: the crash lands in the
// first half of the window and the reboot inside it, so the failure
// detector's fail-over, and usually the reboot re-admission too, play
// out under observation. Short outages (below the ~2ms detection bound)
// are deliberately reachable: a host that reboots before being declared
// dead exercises the no-failover recovery path.
func genCrash(r *sim.Rand, sc Scenario) ReconfigSpec {
	rc := ReconfigSpec{Kind: "crash"}
	rc.AtMs = 1 + r.Intn(max(1, sc.WindowMs/2))
	rc.ForMs = 1 + r.Intn(max(1, sc.WindowMs/2))
	if rc.AtMs+rc.ForMs > sc.WindowMs {
		rc.ForMs = sc.WindowMs - rc.AtMs
	}
	return rc
}

// genReconfig samples one hot-reconfiguration window that fits the
// scenario. Drains are only legal on overlay-only UDP scenarios (the
// validator's rule), and at most one per scenario.
func genReconfig(r *sim.Rand, sc Scenario) ReconfigSpec {
	kinds := []string{"kernel-upgrade", "rps-flip"}
	if sc.UDPOnly() && sc.OverlayOnly() && sc.Containers >= 1 && !sc.HasDrain() {
		kinds = append(kinds, "drain")
	}
	rc := ReconfigSpec{Kind: kinds[r.Intn(len(kinds))]}
	rc.AtMs = 1 + r.Intn(max(1, sc.WindowMs/2))
	if rc.Kind != "kernel-upgrade" {
		rc.ForMs = 1 + r.Intn(max(1, sc.WindowMs/4))
		if rc.AtMs+rc.ForMs > sc.WindowMs {
			rc.ForMs = sc.WindowMs - rc.AtMs
		}
	}
	return rc
}

// genFault samples one impairment whose window fits inside the
// scenario's measurement window.
func genFault(r *sim.Rand, sc Scenario) FaultSpec {
	kinds := []string{"link-loss", "link-jitter", "ring-shrink",
		"core-stall", "core-offline", "kv-flaky", "noisy-neighbor"}
	ft := FaultSpec{Kind: kinds[r.Intn(len(kinds))]}
	ft.AtMs = 1 + r.Intn(sc.WindowMs/2)
	ft.ForMs = 1 + r.Intn(max(1, sc.WindowMs/4))
	switch ft.Kind {
	case "link-loss":
		ft.Rate = 0.02 + 0.13*r.Float64()
	case "link-jitter":
		ft.Amount = 10 + r.Intn(150) // µs
	case "ring-shrink":
		ft.Amount = 4 + r.Intn(28) // slots
	case "core-stall", "core-offline":
		ft.Cores = []int{sc.FalconCPUs[r.Intn(len(sc.FalconCPUs))]}
	case "kv-flaky":
		ft.Amount = 20 + r.Intn(80) // µs
		ft.Rate = 0.1 + 0.3*r.Float64()
	case "noisy-neighbor":
		ft.Cores = append([]int(nil), sc.FalconCPUs...)
		ft.Rate = 0.3 + 0.4*r.Float64()
	}
	return ft
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
