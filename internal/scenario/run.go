package scenario

import (
	"fmt"
	"sort"
	"strings"

	"falcon/internal/audit"
	falconcore "falcon/internal/core"
	"falcon/internal/devices"
	"falcon/internal/faults"
	"falcon/internal/overlay"
	"falcon/internal/proto"
	"falcon/internal/reconfig"
	"falcon/internal/sim"
	"falcon/internal/socket"
	"falcon/internal/transport"
	"falcon/internal/workload"
)

// eventBudget aborts any single scenario run after this many engine
// events — a runaway-simulation guard (the oracle runner converts the
// panic into a reported violation rather than wedging the fuzz loop).
const eventBudget = 200_000_000

// RunResult is one measured window of a scenario under one mode. Every
// field is deterministic for a given (scenario, falcon) pair; the
// determinism oracle compares Fingerprints across repeated runs.
type RunResult struct {
	Falcon    bool
	Delivered uint64 // packets (GRO segments) consumed in the window
	TCPBytes  uint64 // TCP payload bytes assembled in the window
	PPS       float64

	P50, P99, P999, MaxLat int64

	NICDrops, BacklogDrops, SocketDrops uint64
	HardIRQs, NetRX, RES                uint64

	FalconFirst, FalconSecond, FalconGated uint64

	Fired uint64 // total engine events — the strictest determinism probe
}

// Fingerprint renders everything measurable; byte-equal fingerprints
// mean the runs were indistinguishable.
func (r RunResult) Fingerprint() string {
	return fmt.Sprintf("falcon=%t delivered=%d tcpbytes=%d pps=%.6f p50=%d p99=%d p999=%d max=%d nic=%d backlog=%d sock=%d hirq=%d netrx=%d res=%d f1=%d f2=%d gated=%d fired=%d",
		r.Falcon, r.Delivered, r.TCPBytes, r.PPS, r.P50, r.P99, r.P999, r.MaxLat,
		r.NICDrops, r.BacklogDrops, r.SocketDrops, r.HardIRQs, r.NetRX, r.RES,
		r.FalconFirst, r.FalconSecond, r.FalconGated, r.Fired)
}

// AccountResult is one drain-complete accounting run: traffic stops at
// the window end, the simulation drains until every ledgered SKB is
// freed, and every counter holds its whole-run total (nothing is reset
// mid-run). This is the form the exact conservation equations and the
// cross-mode packet-set comparison need.
type AccountResult struct {
	Sent      uint64 // Σ per-flow send() calls (UDP)
	Wire      uint64 // frames the client→server link put on the wire
	Delivered uint64 // Σ socket deliveries (GRO segments)

	PerFlowSent, PerFlowDelivered []uint64 // per UDP flow

	NICDrops, BacklogDrops, SocketDrops, PathDrops, L4Drops uint64
	LinkLost, LinkDropped, TxResolveDrops, TxBuildDrops     uint64
	// CrashDrops counts packets destroyed by a host crash on the receive
	// side: frames blackholed at the dead NIC/stack plus queue-resident
	// packets purged when the host went down.
	CrashDrops uint64

	OrderViols uint64 // per-flow sequence regressions on UDP sockets

	// Violations collects everything the audit subsystem flagged
	// (ledger leaks, balance breaks, queue corruption, watchdog stalls).
	Violations []string
}

// bed is one constructed scenario run, before time advances.
type bed struct {
	tb       *workload.Testbed
	udp      []*workload.UDPFlow
	tcp      []*transport.Conn
	socks    []*socket.Socket // unique sockets, UDP then TCP
	udpSocks []*socket.Socket
	// twins holds the spare-host twin socket per UDP flow (nil entries
	// when the scenario has no drain): same overlay IP and port as the
	// primary, live the moment the drain remaps the container.
	twins []*socket.Socket
	// ol is the open-loop flow population, when the scenario has one.
	ol       *workload.OpenLoop
	mgr      *reconfig.Manager
	audViols []string
}

// build constructs the testbed, falcon config, fault schedule and flows
// for one scenario run. withAudit attaches the full audit harness in
// collector mode (audit must precede flow creation so socket-open hooks
// see every receive queue).
func build(sc Scenario, falcon, withAudit bool) *bed {
	tb := workload.NewTestbed(workload.TestbedConfig{
		Kernel: sc.Kernel, LinkRate: sc.LinkGbps * devices.Gbps,
		Cores: sc.Cores, Containers: sc.Containers,
		RSSCores: []int{0}, RPSCores: []int{1},
		GRO: sc.GRO, InnerGRO: sc.InnerGRO,
		MTU: sc.MTU, Seed: sc.Seed,
		// TCP endpoints share connection state, so scenarios with any
		// TCP flow colocate both hosts on one shard.
		Shards: sc.Shards, Colocate: !sc.UDPOnly(), FixedHorizon: sc.FixedHorizon,
		// A drain or a crash fail-over needs the spare host carrying
		// standby twins of every server container.
		Spare:   sc.HasDrain() || sc.HasCrash(),
		RxCache: sc.RxCache,
	})
	tb.E.SetEventBudget(eventBudget)
	b := &bed{tb: tb}
	if withAudit {
		tb.EnableAudit(audit.Config{OnViolation: func(v *audit.Violation) {
			b.audViols = append(b.audViols, v.String())
		}})
	}
	if falcon && len(sc.FalconCPUs) > 0 {
		cfg := falconcore.DefaultConfig(sc.FalconCPUs)
		cfg.TwoChoice = sc.TwoChoice
		cfg.GROSplit = sc.GROSplit
		cfg.AlwaysOn = sc.AlwaysOn
		tb.EnableFalconOnServer(cfg)
	}
	if len(sc.Faults) > 0 {
		in := faults.NewInjector(tb.E)
		for _, ft := range sc.Faults {
			in.Install(faults.Single(
				sc.Warmup()+sim.Time(ft.AtMs)*sim.Millisecond,
				sim.Time(ft.ForMs)*sim.Millisecond,
				buildFault(tb, ft)))
		}
	}

	until := sc.Warmup() + sc.Window()
	for i, f := range sc.Flows {
		switch f.Proto {
		case "udp":
			var fl *workload.UDPFlow
			if f.Ctr > 0 {
				fl = tb.NewUDPFlow(tb.ClientCtrs[f.Ctr-1], tb.ServerCtrs[f.Ctr-1].IP,
					uint16(7000+i), uint16(5001+i), f.Size, f.SendCore, sc.AppCore, uint64(i+1))
			} else {
				fl = tb.NewUDPFlow(nil, workload.ServerIP,
					uint16(7000+i), uint16(5001+i), f.Size, f.SendCore, sc.AppCore, uint64(i+1))
			}
			if f.RatePPS > 0 {
				fl.SendAtRate(f.RatePPS, until)
			} else {
				fl.Flood(until)
			}
			b.udp = append(b.udp, fl)
			b.socks = append(b.socks, fl.Sock)
			b.udpSocks = append(b.udpSocks, fl.Sock)
			var twin *socket.Socket
			if tb.Spare != nil && f.Ctr > 0 {
				twin = tb.Spare.OpenUDP(tb.ServerCtrs[f.Ctr-1].IP, uint16(5001+i), sc.AppCore)
				b.socks = append(b.socks, twin)
				b.udpSocks = append(b.udpSocks, twin)
			}
			b.twins = append(b.twins, twin)
		case "tcp":
			cfg := transport.Config{
				Net:        tb.Net,
				SenderHost: tb.Client, SenderCore: f.SendCore, SrcPort: uint16(40000 + i),
				ReceiverHost: tb.Server, AppCore: sc.AppCore, DstPort: uint16(5200 + i),
				MsgSize: f.Size, FlowID: uint64(100 + i),
			}
			if f.Ctr > 0 {
				cfg.SenderCtr = tb.ClientCtrs[f.Ctr-1]
				cfg.ReceiverCtr = tb.ServerCtrs[f.Ctr-1]
			}
			c, err := transport.Dial(cfg, 0)
			if err != nil {
				panic(fmt.Sprintf("scenario: dialing tcp flow %d: %v", i, err))
			}
			c.StartContinuous()
			b.tcp = append(b.tcp, c)
			b.socks = append(b.socks, c.Socket())
		}
	}
	if sc.OpenLoop != nil {
		b.ol = tb.StartOpenLoop(openLoopConfig(sc), until)
		b.socks = append(b.socks, b.ol.Socks...)
		b.udpSocks = append(b.udpSocks, b.ol.Socks...)
	}
	switch {
	case sc.HasCrash():
		// A crash is not a planned schedule: the failure detector owns
		// the generation swaps. The host dies through the fault layer
		// and the detector notices the missing heartbeats, fails its
		// containers over to the spare's standby twins, and re-admits
		// it after the reboot.
		b.mgr = reconfig.New(tb.Net, &reconfig.Schedule{})
		if err := b.mgr.StartDetector(reconfig.DetectorConfig{TransitUs: 200},
			map[string]string{"server": "spare"}, sc.Warmup(), until); err != nil {
			panic(fmt.Sprintf("scenario: starting failure detector: %v", err))
		}
		in := faults.NewInjector(tb.E)
		for _, rc := range sc.Reconfigs {
			if rc.Kind != "crash" {
				continue
			}
			in.Install(faults.Single(
				sc.Warmup()+sim.Time(rc.AtMs)*sim.Millisecond,
				sim.Time(rc.ForMs)*sim.Millisecond,
				&faults.HostCrash{Host: tb.Server}))
		}
	case len(sc.Reconfigs) > 0:
		b.mgr = reconfig.New(tb.Net, reconfigSchedule(sc))
		if err := b.mgr.Arm(sc.Warmup()); err != nil {
			panic(fmt.Sprintf("scenario: arming reconfig schedule: %v", err))
		}
	}
	return b
}

// openLoopConfig translates an OpenLoopSpec into the concrete workload
// population: the spec picks distribution family and rates, the shapes
// (Pareto alpha, lognormal sigma, MMPP burst geometry) are fixed so a
// scenario file stays a small, comparable description. The population
// always rides the first container pair — the tail claims are about the
// overlay datapath — on the same send cores the generator hands
// explicit flows.
func openLoopConfig(sc Scenario) workload.OpenLoopConfig {
	ol := sc.OpenLoop
	var size workload.Sampler
	switch ol.Dist {
	case "pareto":
		const alpha = 1.5
		size = workload.Pareto{Xm: ol.MeanPkts * (alpha - 1) / alpha, Alpha: alpha}
	default: // "lognormal" (Validate closed the set)
		size = workload.LognormalWithMean(ol.MeanPkts, 0.75)
	}
	var arr workload.Arrivals
	switch ol.Arrivals {
	case "mmpp":
		arr = &workload.MMPP2{
			CalmRate: 0.5 * ol.FlowsPerSec, BurstRate: 1.5 * ol.FlowsPerSec,
			MeanCalm: 500 * sim.Microsecond, MeanBurst: 500 * sim.Microsecond,
		}
	default: // "poisson"
		arr = workload.PoissonArrivals{Rate: ol.FlowsPerSec}
	}
	return workload.OpenLoopConfig{
		Arrivals: arr, FlowSize: size,
		PacketSize: ol.Size, FlowRate: ol.FlowRatePPS, Ports: ol.Ports,
		SendCores: []int{2, 3}, AppCore: sc.AppCore, Ctr: 1,
	}
}

// reconfigSchedule translates the scenario's reconfig specs into the
// concrete generation schedule on the server host (a drain lands the
// containers on the spare's standby twins and re-adds the server ForMs
// later). Actions are sorted by effective time, as Arm requires.
func reconfigSchedule(sc Scenario) *reconfig.Schedule {
	on, off := true, false
	var acts []reconfig.Action
	for _, rc := range sc.Reconfigs {
		switch rc.Kind {
		case "drain":
			acts = append(acts,
				reconfig.Action{Kind: reconfig.KindDrain, AtMs: rc.AtMs,
					Host: "server", To: "spare", TransitUs: 200},
				reconfig.Action{Kind: reconfig.KindAdd, AtMs: rc.AtMs + rc.ForMs, Host: "server"})
		case "kernel-upgrade":
			acts = append(acts,
				reconfig.Action{Kind: reconfig.KindKernelUpgrade, AtMs: rc.AtMs,
					Host: "server", Kernel: "linux-5.4"})
		case "rps-flip":
			acts = append(acts,
				reconfig.Action{Kind: reconfig.KindRPSFlip, AtMs: rc.AtMs, Host: "server", Enable: &off},
				reconfig.Action{Kind: reconfig.KindRPSFlip, AtMs: rc.AtMs + rc.ForMs, Host: "server", Enable: &on})
		}
	}
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].AtMs < acts[j].AtMs })
	return &reconfig.Schedule{Actions: acts}
}

// buildFault resolves a FaultSpec against the concrete testbed.
func buildFault(tb *workload.Testbed, ft FaultSpec) faults.Fault {
	us := func(n int) sim.Time { return sim.Time(n) * sim.Microsecond }
	switch ft.Kind {
	case "link-loss":
		return &faults.LinkLossBurst{Link: tb.Client.LinkTo(workload.ServerIP), Rate: ft.Rate}
	case "link-jitter":
		return &faults.LinkJitterBurst{Link: tb.Client.LinkTo(workload.ServerIP), Jitter: us(ft.Amount)}
	case "ring-shrink":
		return &faults.RingShrink{NIC: tb.Server.NIC, Limit: ft.Amount}
	case "core-stall":
		return &faults.CoreStall{M: tb.Server.M, Cores: ft.Cores}
	case "core-offline":
		return &faults.CoreOffline{M: tb.Server.M, Cores: ft.Cores}
	case "kv-flaky":
		return &faults.KVFlaky{KV: tb.Net.KV, Latency: us(ft.Amount), FailRate: ft.Rate}
	case "noisy-neighbor":
		return &faults.NoisyNeighbor{M: tb.Server.M, Cores: ft.Cores, Utilization: ft.Rate}
	}
	panic("scenario: unknown fault kind " + ft.Kind) // Validate rejects these
}

// Measure runs the scenario under one mode and measures the window —
// the throughput/latency view the comparative oracles use.
func Measure(sc Scenario, falcon bool) RunResult {
	b := build(sc, falcon, false)
	b.tb.Run(sc.Warmup())
	var tcpBase uint64
	for _, c := range b.tcp {
		tcpBase += c.BytesAssembled.Value()
	}
	res := workload.MeasureWindow(b.tb, b.socks, sc.Warmup(), sc.Window())
	out := RunResult{
		Falcon:    falcon,
		Delivered: res.Delivered,
		PPS:       res.PPS,
		P50:       res.Latency.P50, P99: res.Latency.P99, P999: res.Latency.P999, MaxLat: res.Latency.Max,
		NICDrops: res.NICDrops, BacklogDrops: res.BacklogDrops, SocketDrops: res.SocketDrops,
		HardIRQs: res.HardIRQs, NetRX: res.NetRX, RES: res.RES,
		Fired: b.tb.E.Fired(),
	}
	for _, c := range b.tcp {
		out.TCPBytes += c.BytesAssembled.Value()
		c.Close()
	}
	out.TCPBytes -= tcpBase
	if fal := b.tb.Server.Falcon; fal != nil {
		out.FalconFirst, out.FalconSecond, out.FalconGated = fal.Stats()
	}
	return out
}

// Account runs the scenario drain-complete with the full audit harness
// in collector mode: traffic stops at the window end, the engine drains
// until the SKB ledger is empty, and the auditor's teardown checks
// (including the end-of-run leak check) run. Whole-run totals plus
// every collected audit violation come back for the conservation and
// packet-set oracles.
func Account(sc Scenario, falcon bool) AccountResult {
	b := build(sc, falcon, true)
	until := sc.Warmup() + sc.Window()
	b.tb.Run(until)
	for _, c := range b.tcp {
		c.Close()
	}
	a := b.tb.Audit
	deadline := until
	for i := 0; i < 20 && (a.LiveCount() > 0 || b.tb.Client.TxPending() > 0); i++ {
		deadline += 2 * sim.Millisecond
		b.tb.Run(deadline)
	}
	for _, v := range a.Final() {
		b.audViols = append(b.audViols, v.String())
	}

	out := AccountResult{Violations: dedupe(b.audViols)}
	for i, f := range b.udp {
		delivered := f.Sock.Delivered.Value()
		if tw := b.twins[i]; tw != nil {
			delivered += tw.Delivered.Value()
		}
		out.PerFlowSent = append(out.PerFlowSent, f.Sent())
		out.PerFlowDelivered = append(out.PerFlowDelivered, delivered)
		out.Sent += f.Sent()
	}
	if b.ol != nil {
		// The population's sends enter the same conservation books; its
		// deliveries are already in via b.socks.
		out.Sent += b.ol.Sent()
	}
	for _, sk := range b.socks {
		out.Delivered += sk.Delivered.Value()
		out.SocketDrops += sk.SocketDrops.Value()
	}
	for _, sk := range b.udpSocks {
		out.OrderViols += sk.OrderViols
	}
	// Wire accounting sums every client egress link: without a spare
	// host that is exactly the client→server link; a drained scenario
	// also puts post-migration frames on the client→spare link.
	b.tb.Client.EachLink(func(_ proto.IPv4Addr, l *devices.Link) {
		out.Wire += l.Sent.Value()
		out.LinkLost += l.Lost.Value()
		out.LinkDropped += l.Dropped.Value()
	})
	cli := b.tb.Client
	for _, h := range rxHosts(b.tb) {
		out.NICDrops += h.NIC.Drops.Value()
		out.BacklogDrops += h.St.Drops.Value()
		out.PathDrops += h.Rx.PathDrops.Value()
		out.L4Drops += h.L4Drops.Value()
		out.CrashDrops += h.CrashDrops.Value()
	}
	out.TxResolveDrops = cli.TxResolveDrops.Value()
	out.TxBuildDrops = cli.TxBuildDrops.Value()
	return out
}

// rxHosts returns every host packets can be delivered on: the server,
// plus the spare when the scenario provisioned one.
func rxHosts(tb *workload.Testbed) []*overlay.Host {
	hs := []*overlay.Host{tb.Server}
	if tb.Spare != nil {
		hs = append(hs, tb.Spare)
	}
	return hs
}

// dedupe collapses repeated violation strings (a stuck balance fires
// every sweep) while preserving first-seen order.
func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, s := range in {
		// Strip the timestamp so the same breach at successive sweeps
		// folds into one line.
		key := s
		if i := strings.Index(s, ": "); i >= 0 {
			key = s[i:]
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, s)
		}
	}
	return out
}
