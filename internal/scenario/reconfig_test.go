package scenario

import "testing"

// reconfigSeeds scans the fuzz seed space for generated scenarios that
// carry reconfig actions, returning up to want of them (drain-bearing
// ones first so the hardest shape is always represented).
func reconfigSeeds(t *testing.T, want int) []Scenario {
	t.Helper()
	var drains, others []Scenario
	for seed := uint64(1); seed <= 200; seed++ {
		sc := Generate(seed)
		if len(sc.Reconfigs) == 0 {
			continue
		}
		if sc.HasDrain() {
			drains = append(drains, sc)
		} else {
			others = append(others, sc)
		}
	}
	if len(drains) == 0 {
		t.Fatal("no fuzz seed in [1,200] generates a drain — generator regression")
	}
	out := append(drains, others...)
	if len(out) > want {
		out = out[:want]
	}
	return out
}

// TestGenerateReconfigs pins the generator's reconfig behavior: the
// distribution actually emits reconfig scenarios (including drains),
// every one validates, and drains only appear where the validator
// allows them.
func TestGenerateReconfigs(t *testing.T) {
	n := 0
	for seed := uint64(1); seed <= 200; seed++ {
		sc := Generate(seed)
		if len(sc.Reconfigs) == 0 {
			continue
		}
		n++
		if err := sc.Validate(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if sc.HasDrain() && (!sc.UDPOnly() || !sc.OverlayOnly()) {
			t.Errorf("seed %d: drain generated for a non-migratable workload", seed)
		}
	}
	if n < 10 {
		t.Fatalf("only %d/200 seeds carry reconfigs — distribution regression", n)
	}
}

// TestReconfigSeedsCheckClean runs generated reconfig scenarios through
// the full applicable oracle battery — in particular the
// reconfig-conservation oracle: no packet may go unaccounted across any
// generation swap, in either mode.
func TestReconfigSeedsCheckClean(t *testing.T) {
	for _, sc := range reconfigSeeds(t, 4) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			vs, err := Check(sc, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range vs {
				t.Errorf("%s", v)
			}
		})
	}
}

// TestReconfigScenarioShardInvariance runs generated reconfig scenarios
// — generation swaps, graceful drains, twin handoffs and all — on a
// 2-shard PDES cluster and requires byte-identical measurement and
// accounting against the serial engine (Fired excluded, as in the
// corpus invariance test: cross-shard frames legitimately fire extra
// engine events).
func TestReconfigScenarioShardInvariance(t *testing.T) {
	for _, sc := range reconfigSeeds(t, 3) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			for _, falcon := range applicableModes(sc) {
				serial, sharded := sc, sc
				sharded.Shards = 2

				mWant := Measure(serial, falcon)
				mGot := Measure(sharded, falcon)
				mWant.Fired, mGot.Fired = 0, 0
				if want, got := mWant.Fingerprint(), mGot.Fingerprint(); got != want {
					t.Errorf("falcon=%t: sharded Measure diverges\nserial:  %s\nsharded: %s", falcon, want, got)
				}

				aWant := Account(serial, falcon)
				aGot := Account(sharded, falcon)
				if want, got := accountFingerprint(aWant), accountFingerprint(aGot); got != want {
					t.Errorf("falcon=%t: sharded Account diverges\nserial:  %s\nsharded: %s", falcon, want, got)
				}
			}
		})
	}
}
