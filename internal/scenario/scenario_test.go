package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// valid returns a minimal scenario every field-mutation test starts from.
func valid() Scenario {
	return Scenario{
		Seed: 7, Cores: 8, LinkGbps: 100, Containers: 1,
		FalconCPUs: []int{3, 4}, GRO: true,
		AppCore: 2, WarmupMs: 1, WindowMs: 3,
		Flows: []FlowSpec{{Proto: "udp", Size: 1024, Ctr: 1, SendCore: 1}},
	}
}

func TestValidateAcceptsBaseline(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"zero-seed", func(s *Scenario) { s.Seed = 0 }},
		{"too-few-cores", func(s *Scenario) { s.Cores = MinCores - 1 }},
		{"too-many-cores", func(s *Scenario) { s.Cores = MaxCores + 1 }},
		{"bad-link-rate", func(s *Scenario) { s.LinkGbps = 25 }},
		{"tiny-mtu", func(s *Scenario) { s.MTU = 100 }},
		{"negative-containers", func(s *Scenario) { s.Containers = -1 }},
		{"unknown-kernel", func(s *Scenario) { s.Kernel = "4.9" }},
		{"falcon-cpu-off-machine", func(s *Scenario) { s.FalconCPUs = []int{8} }},
		{"app-core-off-machine", func(s *Scenario) { s.AppCore = 99 }},
		{"zero-warmup", func(s *Scenario) { s.WarmupMs = 0 }},
		{"window-too-long", func(s *Scenario) { s.WindowMs = MaxWindow + 1 }},
		{"no-flows", func(s *Scenario) { s.Flows = nil }},
		{"unknown-proto", func(s *Scenario) { s.Flows[0].Proto = "sctp" }},
		{"oversize-udp", func(s *Scenario) { s.Flows[0].Size = 70000 }},
		{"negative-rate", func(s *Scenario) { s.Flows[0].RatePPS = -1 }},
		{"ctr-beyond-containers", func(s *Scenario) { s.Flows[0].Ctr = 2 }},
		{"send-core-off-machine", func(s *Scenario) { s.Flows[0].SendCore = 20 }},
		{"open-loop-bad-dist", func(s *Scenario) {
			s.OpenLoop = &OpenLoopSpec{Dist: "cauchy", Arrivals: "poisson",
				FlowsPerSec: 2000, MeanPkts: 8, Size: 256, FlowRatePPS: 40000, Ports: 1}
		}},
		{"open-loop-bad-arrivals", func(s *Scenario) {
			s.OpenLoop = &OpenLoopSpec{Dist: "pareto", Arrivals: "sawtooth",
				FlowsPerSec: 2000, MeanPkts: 8, Size: 256, FlowRatePPS: 40000, Ports: 1}
		}},
		{"open-loop-offered-overload", func(s *Scenario) {
			s.OpenLoop = &OpenLoopSpec{Dist: "pareto", Arrivals: "poisson",
				FlowsPerSec: 50000, MeanPkts: 64, Size: 256, FlowRatePPS: 40000, Ports: 1}
		}},
		{"open-loop-oversize-packet", func(s *Scenario) {
			s.OpenLoop = &OpenLoopSpec{Dist: "pareto", Arrivals: "poisson",
				FlowsPerSec: 2000, MeanPkts: 8, Size: 4096, FlowRatePPS: 40000, Ports: 1}
		}},
		{"unknown-fault-kind", func(s *Scenario) {
			s.Faults = []FaultSpec{{Kind: "meteor", AtMs: 0, ForMs: 1}}
		}},
		{"fault-outside-window", func(s *Scenario) {
			s.Faults = []FaultSpec{{Kind: "link-loss", AtMs: 2, ForMs: 5, Rate: 0.1}}
		}},
		{"fault-rate-above-one", func(s *Scenario) {
			s.Faults = []FaultSpec{{Kind: "link-loss", AtMs: 0, ForMs: 1, Rate: 1.5}}
		}},
		{"fault-core-off-machine", func(s *Scenario) {
			s.Faults = []FaultSpec{{Kind: "core-stall", AtMs: 0, ForMs: 1, Cores: []int{12}}}
		}},
		{"crash-reboot-outside-window", func(s *Scenario) {
			s.Reconfigs = []ReconfigSpec{{Kind: "crash", AtMs: 2, ForMs: 5}}
		}},
		{"crash-without-reboot-window", func(s *Scenario) {
			s.Reconfigs = []ReconfigSpec{{Kind: "crash", AtMs: 1}}
		}},
		{"crash-with-tcp-flow", func(s *Scenario) {
			s.Flows[0].Proto = "tcp"
			s.Reconfigs = []ReconfigSpec{{Kind: "crash", AtMs: 1, ForMs: 1}}
		}},
		{"crash-with-host-networking", func(s *Scenario) {
			s.Flows[0].Ctr = 0
			s.Reconfigs = []ReconfigSpec{{Kind: "crash", AtMs: 1, ForMs: 1}}
		}},
		{"crash-not-sole-reconfig", func(s *Scenario) {
			s.Reconfigs = []ReconfigSpec{
				{Kind: "crash", AtMs: 1, ForMs: 1},
				{Kind: "kernel-upgrade", AtMs: 2},
			}
		}},
		{"double-crash", func(s *Scenario) {
			s.Reconfigs = []ReconfigSpec{
				{Kind: "crash", AtMs: 1, ForMs: 1},
				{Kind: "crash", AtMs: 2, ForMs: 1},
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := valid()
			tc.mut(&sc)
			if sc.Validate() == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}
}

func TestGenerateAlwaysValid(t *testing.T) {
	// Every generated scenario must pass the same validator hand-written
	// ones do — the fuzzer treats a violation here as a finding.
	for seed := uint64(1); seed <= 300; seed++ {
		sc := Generate(seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sc.Seed != seed {
			t.Fatalf("seed %d: scenario records seed %d", seed, sc.Seed)
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 17, 255} {
		if a, b := Generate(seed), Generate(seed); !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, sc := range []Scenario{valid(), Generate(42), Generate(99)} {
		back, err := FromJSON([]byte(sc.JSON()))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Fatalf("round trip changed the scenario:\n  in:  %+v\n  out: %+v", sc, back)
		}
	}
}

func TestLoadFileBareScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bare.json")
	if err := os.WriteFile(path, []byte(valid().JSON()), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, names, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if names != nil {
		t.Fatalf("bare scenario pinned oracles %v", names)
	}
	if !reflect.DeepEqual(sc, valid()) {
		t.Fatal("bare scenario mangled")
	}
}

func TestLoadFileReproducer(t *testing.T) {
	rep := Reproducer{Magic: ReproMagic, Oracle: "determinism", Seed: 9,
		Detail: "example", Command: "falconsim -scenario x.json", Scenario: valid()}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sc, names, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "determinism" {
		t.Fatalf("reproducer pinned %v, want [determinism]", names)
	}
	if !reflect.DeepEqual(sc, valid()) {
		t.Fatal("reproducer scenario mangled")
	}
	// An invalid embedded scenario must be rejected even via the
	// reproducer path.
	bad := rep
	bad.Scenario.Cores = 1
	data, _ = json.Marshal(bad)
	os.WriteFile(path, data, 0o644)
	if _, _, err := LoadFile(path); err == nil {
		t.Fatal("invalid reproducer scenario accepted")
	}
}

func TestByNameSelection(t *testing.T) {
	all, err := ByName(nil)
	if err != nil || len(all) != 9 {
		t.Fatalf("full battery = %d oracles, err %v; want 9", len(all), err)
	}
	sel, err := ByName([]string{"conservation", "fault-sanity"})
	if err != nil || len(sel) != 2 || sel[0].Name != "conservation" || sel[1].Name != "fault-sanity" {
		t.Fatalf("selection wrong: %v, err %v", sel, err)
	}
	if _, err := ByName([]string{"astrology"}); err == nil {
		t.Fatal("unknown oracle accepted")
	}
}

func TestShrinkPreservesValidity(t *testing.T) {
	// Shrinking against an oracle the scenario satisfies must return the
	// scenario unchanged (no mutation reproduces a non-failure) — and
	// never propose an invalid config along the way. Use a tiny scenario
	// so the budgeted re-checks stay cheap.
	sc := valid()
	sc.WindowMs = 2
	min, checks := Shrink(sc, "conservation", 6)
	if err := min.Validate(); err != nil {
		t.Fatalf("shrink produced invalid scenario: %v", err)
	}
	if checks > 6 {
		t.Fatalf("shrink used %d checks, budget 6", checks)
	}
	if !reflect.DeepEqual(min, sc) {
		t.Fatal("shrink moved away from a passing scenario")
	}
}
