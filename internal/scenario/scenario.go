// Package scenario is the simulator's generative test layer: a seeded
// generator that samples random-but-valid simulation scenarios, a
// battery of metamorphic differential oracles that every scenario must
// satisfy (determinism, packet conservation, kernel equivalence,
// resource monotonicity, fault sanity), and a greedy shrinker that
// reduces any violating scenario to a minimal one-command reproducer.
//
// The package deliberately reuses the exact harnesses the figure
// experiments use (workload.Testbed, MeasureWindow, the audit ledger,
// the fault injector), so a property that holds under fuzz holds for
// the paper's tables too — and a violation found here replays through
// `falconsim -scenario` with nothing but the JSON file.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"

	"falcon/internal/sim"
)

// Generator bounds. The window sizes keep a single run in the tens of
// milliseconds of virtual time so a 50-seed battery fits CI; the core
// and link choices mirror the paper's testbed (20-core servers, 10G
// and 100G NICs).
const (
	MinCores     = 6
	MaxCores     = 16
	MaxFlows     = 4
	MaxFaults    = 2
	MaxReconfigs = 2
	MaxWarmpMs   = 4
	MaxWindow    = 12 // ms
)

// FlowSpec is one traffic source in a scenario.
type FlowSpec struct {
	// Proto is "udp" or "tcp".
	Proto string `json:"proto"`
	// Size is the UDP payload or TCP message size in bytes.
	Size int `json:"size"`
	// RatePPS is the offered rate for UDP (Poisson arrivals); 0 means
	// flood (closed-loop back-to-back sends). Ignored for TCP, which is
	// always a continuous bulk stream.
	RatePPS float64 `json:"rate_pps,omitempty"`
	// Ctr is the 1-based container index on each side (client sends
	// from ClientCtrs[Ctr-1] to ServerCtrs[Ctr-1]); 0 selects host
	// networking.
	Ctr int `json:"ctr"`
	// SendCore is the client core the sender runs on.
	SendCore int `json:"send_core"`
}

// OpenLoopSpec is an optional heavy-tailed open-loop flow population
// riding alongside the explicit flows (see workload.OpenLoopConfig):
// flows arrive by an external process and send on their own clocks, so
// the offered load — and thus the tail-latency behaviour under it — is
// independent of how the datapath under test is coping.
type OpenLoopSpec struct {
	// Dist is the flow-size distribution: "pareto" (alpha 1.5) or
	// "lognormal" (sigma 0.75).
	Dist string `json:"dist"`
	// Arrivals is the arrival process: "poisson" or "mmpp" (two-state,
	// 0.5x/1.5x the mean rate with 500us sojourns).
	Arrivals string `json:"arrivals"`
	// FlowsPerSec is the mean flow arrival rate.
	FlowsPerSec float64 `json:"flows_per_sec"`
	// MeanPkts is the mean flow size in packets.
	MeanPkts float64 `json:"mean_pkts"`
	// Size is the UDP payload per packet (bytes).
	Size int `json:"size"`
	// FlowRatePPS is each live flow's send rate.
	FlowRatePPS float64 `json:"flow_rate_pps"`
	// Ports spreads the population over that many server sockets.
	Ports int `json:"ports"`
}

// FaultSpec is one impairment window, resolved against the concrete
// testbed at run time (see buildFault).
type FaultSpec struct {
	// Kind names the fault: "link-loss", "link-jitter", "ring-shrink",
	// "core-stall", "core-offline", "kv-flaky", "noisy-neighbor".
	Kind string `json:"kind"`
	// AtMs is the window start in ms after warmup; ForMs its duration.
	AtMs  int `json:"at_ms"`
	ForMs int `json:"for_ms"`
	// Rate is the loss/fail probability or antagonist utilization.
	Rate float64 `json:"rate,omitempty"`
	// Amount is the kind-specific magnitude: jitter or KV latency in
	// microseconds, or the ring limit in slots.
	Amount int `json:"amount,omitempty"`
	// Cores are the server cores the fault targets (stall/offline/noisy).
	Cores []int `json:"cores,omitempty"`
}

// ReconfigSpec is one hot-reconfiguration window, resolved against the
// concrete testbed at run time (see reconfigSchedule): the runner
// translates it into internal/reconfig generation swaps on the server
// host, applied at deterministic effective times after warmup.
type ReconfigSpec struct {
	// Kind names the swap: "drain" (graceful drain of the server onto
	// the spare's standby twins, re-added ForMs later), "kernel-upgrade"
	// (cost-profile swap to 5.4; ForMs ignored), "rps-flip" (RPS
	// disabled at AtMs, re-enabled ForMs later), "crash" (the server
	// host fails abruptly at AtMs and reboots ForMs later; the failure
	// detector fails its containers over to the spare's standby twins
	// and re-admits the host after the reboot).
	Kind string `json:"kind"`
	// AtMs is the swap's effective time in ms after warmup; ForMs the
	// window until the reverse swap for drain/rps-flip, or the outage
	// length (crash → reboot) for crash.
	AtMs  int `json:"at_ms"`
	ForMs int `json:"for_ms,omitempty"`
}

// Scenario is one fully specified simulation configuration: topology,
// kernel/steering config, workload, and optional fault schedule. It is
// the unit the fuzzer generates, the oracles check, and the shrinker
// minimizes; the JSON encoding is the reproducer format.
type Scenario struct {
	Name string `json:"name,omitempty"`
	// Seed seeds the engine (and, for generated scenarios, records the
	// fuzz seed that produced it).
	Seed uint64 `json:"seed"`

	// Topology.
	Cores      int     `json:"cores"`
	LinkGbps   float64 `json:"link_gbps"`
	MTU        int     `json:"mtu,omitempty"`
	Containers int     `json:"containers"`

	// Kernel / steering configuration.
	Kernel     string `json:"kernel,omitempty"`
	FalconCPUs []int  `json:"falcon_cpus,omitempty"`
	TwoChoice  bool   `json:"two_choice"`
	GROSplit   bool   `json:"gro_split"`
	AlwaysOn   bool   `json:"always_on,omitempty"`
	GRO        bool   `json:"gro"`
	InnerGRO   bool   `json:"inner_gro"`

	// Workload.
	AppCore  int `json:"app_core"`
	WarmupMs int `json:"warmup_ms"`
	WindowMs int `json:"window_ms"`

	// RxCache enables the ONCache-style RX decap fast path (per-core
	// flow caches) on both hosts. Part of scenario identity — the
	// transparency oracle compares cache-on against cache-off runs, so
	// the knob must distinguish their run-cache keys. Old reproducers
	// without the field parse as false (cache off), their pre-cache
	// behavior.
	RxCache bool `json:"rx_cache,omitempty"`

	Flows []FlowSpec `json:"flows"`
	// OpenLoop, when set, adds a churning open-loop flow population on
	// the first container pair (always overlay: the tail claims are
	// about the overlay datapath). Its sends count toward conservation
	// and its sockets toward delivery and latency percentiles.
	OpenLoop *OpenLoopSpec `json:"open_loop,omitempty"`
	Faults   []FaultSpec   `json:"faults,omitempty"`
	// Reconfigs schedules hot generation swaps during the window. A
	// drain additionally provisions the spare host with standby twins.
	Reconfigs []ReconfigSpec `json:"reconfigs,omitempty"`

	// Shards > 1 runs the scenario on a conservative PDES cluster
	// (internal/sim.Cluster) instead of the serial engine. Excluded from
	// the JSON encoding: it is an execution knob, not part of scenario
	// identity — results are byte-identical for every value, which the
	// shard-invariance tests assert over the whole corpus.
	Shards int `json:"-"`
	// FixedHorizon disables adaptive safe-horizon windows on sharded
	// runs. An execution knob like Shards (byte-identical either way),
	// excluded from scenario identity for the same reason.
	FixedHorizon bool `json:"-"`
}

// Warmup and Window convert the ms fields to engine time.
func (sc Scenario) Warmup() sim.Time { return sim.Time(sc.WarmupMs) * sim.Millisecond }
func (sc Scenario) Window() sim.Time { return sim.Time(sc.WindowMs) * sim.Millisecond }

// UDPOnly reports whether every flow is UDP (the precondition for the
// exact wire-conservation equation: TCP adds reverse-path ACKs and
// retransmits that the per-frame accounting deliberately excludes).
func (sc Scenario) UDPOnly() bool {
	for _, f := range sc.Flows {
		if f.Proto != "udp" {
			return false
		}
	}
	return true
}

// FixedRateOnly reports whether every flow is a fixed-rate UDP flow —
// the open-loop shape whose send schedule is identical across
// configurations (closed-loop flood adapts its rate to the datapath
// under test, so cross-mode packet-set comparison is meaningless).
func (sc Scenario) FixedRateOnly() bool {
	for _, f := range sc.Flows {
		if f.Proto != "udp" || f.RatePPS <= 0 {
			return false
		}
	}
	return true
}

// OverlayOnly reports whether every flow crosses the container overlay.
func (sc Scenario) OverlayOnly() bool {
	for _, f := range sc.Flows {
		if f.Ctr == 0 {
			return false
		}
	}
	return true
}

// HasDrain reports whether the reconfig schedule drains the server (the
// runner then provisions the spare host and twin sockets).
func (sc Scenario) HasDrain() bool {
	for _, rc := range sc.Reconfigs {
		if rc.Kind == "drain" {
			return true
		}
	}
	return false
}

// HasCrash reports whether the scenario crashes the server (the runner
// then provisions the spare host plus twin sockets and arms the failure
// detector instead of a planned generation schedule).
func (sc Scenario) HasCrash() bool {
	for _, rc := range sc.Reconfigs {
		if rc.Kind == "crash" {
			return true
		}
	}
	return false
}

// validReconfigKinds is the closed set the runner translates ("crash"
// takes the detector path; the rest go through reconfigSchedule).
var validReconfigKinds = map[string]bool{
	"drain": true, "kernel-upgrade": true, "rps-flip": true, "crash": true,
}

// validFaultKinds is the closed set buildFault resolves.
var validFaultKinds = map[string]bool{
	"link-loss": true, "link-jitter": true, "ring-shrink": true,
	"core-stall": true, "core-offline": true, "kv-flaky": true,
	"noisy-neighbor": true,
}

// Validate rejects scenarios the harness cannot run (or that would run
// unboundedly). Generated scenarios are valid by construction; this
// guards hand-written and shrunk ones.
func (sc Scenario) Validate() error {
	if sc.Seed == 0 {
		return fmt.Errorf("scenario: seed must be non-zero")
	}
	if sc.Cores < MinCores || sc.Cores > MaxCores {
		return fmt.Errorf("scenario: cores %d outside [%d,%d]", sc.Cores, MinCores, MaxCores)
	}
	if sc.LinkGbps != 10 && sc.LinkGbps != 100 {
		return fmt.Errorf("scenario: link_gbps %v (want 10 or 100)", sc.LinkGbps)
	}
	if sc.MTU != 0 && (sc.MTU < 576 || sc.MTU > 9000) {
		return fmt.Errorf("scenario: mtu %d outside [576,9000]", sc.MTU)
	}
	if sc.Containers < 0 || sc.Containers > 4 {
		return fmt.Errorf("scenario: containers %d outside [0,4]", sc.Containers)
	}
	if sc.Kernel != "" && sc.Kernel != "5.4" && sc.Kernel != "linux-5.4" {
		return fmt.Errorf("scenario: unknown kernel %q", sc.Kernel)
	}
	for _, c := range sc.FalconCPUs {
		if c < 0 || c >= sc.Cores {
			return fmt.Errorf("scenario: falcon cpu %d outside machine (%d cores)", c, sc.Cores)
		}
	}
	if sc.AppCore < 0 || sc.AppCore >= sc.Cores {
		return fmt.Errorf("scenario: app core %d outside machine", sc.AppCore)
	}
	if sc.WarmupMs < 1 || sc.WarmupMs > MaxWarmpMs {
		return fmt.Errorf("scenario: warmup_ms %d outside [1,%d]", sc.WarmupMs, MaxWarmpMs)
	}
	if sc.WindowMs < 2 || sc.WindowMs > MaxWindow {
		return fmt.Errorf("scenario: window_ms %d outside [2,%d]", sc.WindowMs, MaxWindow)
	}
	if len(sc.Flows) == 0 || len(sc.Flows) > MaxFlows {
		return fmt.Errorf("scenario: %d flows outside [1,%d]", len(sc.Flows), MaxFlows)
	}
	for i, f := range sc.Flows {
		if f.Proto != "udp" && f.Proto != "tcp" {
			return fmt.Errorf("scenario: flow %d: unknown proto %q", i, f.Proto)
		}
		sizeCap := 65507 // max UDP datagram payload
		if f.Proto == "tcp" {
			sizeCap = 1 << 20 // message size, segmented by the transport
		}
		if f.Size < 16 || f.Size > sizeCap {
			return fmt.Errorf("scenario: flow %d: size %d outside [16,%d]", i, f.Size, sizeCap)
		}
		if f.RatePPS < 0 || f.RatePPS > 2e6 {
			return fmt.Errorf("scenario: flow %d: rate %v outside [0,2M]", i, f.RatePPS)
		}
		if f.Ctr < 0 || f.Ctr > sc.Containers {
			return fmt.Errorf("scenario: flow %d: ctr %d outside [0,%d]", i, f.Ctr, sc.Containers)
		}
		if f.SendCore < 0 || f.SendCore >= sc.Cores {
			return fmt.Errorf("scenario: flow %d: send core %d outside machine", i, f.SendCore)
		}
	}
	if ol := sc.OpenLoop; ol != nil {
		if ol.Dist != "pareto" && ol.Dist != "lognormal" {
			return fmt.Errorf("scenario: open_loop: unknown dist %q", ol.Dist)
		}
		if ol.Arrivals != "poisson" && ol.Arrivals != "mmpp" {
			return fmt.Errorf("scenario: open_loop: unknown arrivals %q", ol.Arrivals)
		}
		if ol.FlowsPerSec < 500 || ol.FlowsPerSec > 50_000 {
			return fmt.Errorf("scenario: open_loop: flows_per_sec %v outside [500,50000]", ol.FlowsPerSec)
		}
		if ol.MeanPkts < 2 || ol.MeanPkts > 64 {
			return fmt.Errorf("scenario: open_loop: mean_pkts %v outside [2,64]", ol.MeanPkts)
		}
		if ol.Size < 16 || ol.Size > 1472 {
			return fmt.Errorf("scenario: open_loop: size %d outside [16,1472]", ol.Size)
		}
		if ol.FlowRatePPS < 1000 || ol.FlowRatePPS > 200_000 {
			return fmt.Errorf("scenario: open_loop: flow_rate_pps %v outside [1k,200k]", ol.FlowRatePPS)
		}
		if ol.Ports < 1 || ol.Ports > 4 {
			return fmt.Errorf("scenario: open_loop: ports %d outside [1,4]", ol.Ports)
		}
		if sc.Containers < 1 {
			return fmt.Errorf("scenario: open_loop requires containers >= 1")
		}
		// Bound the population's long-run offered packet rate so a fuzz
		// run cannot blow the event budget.
		if offered := ol.FlowsPerSec * ol.MeanPkts; offered > 1.5e6 {
			return fmt.Errorf("scenario: open_loop: offered %v pps above 1.5M", offered)
		}
	}
	if len(sc.Faults) > MaxFaults {
		return fmt.Errorf("scenario: %d faults (max %d)", len(sc.Faults), MaxFaults)
	}
	for i, ft := range sc.Faults {
		if !validFaultKinds[ft.Kind] {
			return fmt.Errorf("scenario: fault %d: unknown kind %q", i, ft.Kind)
		}
		if ft.AtMs < 0 || ft.ForMs < 1 || ft.AtMs+ft.ForMs > sc.WindowMs {
			return fmt.Errorf("scenario: fault %d: window [%d,%d)ms outside the %dms measurement window",
				i, ft.AtMs, ft.AtMs+ft.ForMs, sc.WindowMs)
		}
		if ft.Rate < 0 || ft.Rate > 1 {
			return fmt.Errorf("scenario: fault %d: rate %v outside [0,1]", i, ft.Rate)
		}
		for _, c := range ft.Cores {
			if c < 0 || c >= sc.Cores {
				return fmt.Errorf("scenario: fault %d: core %d outside machine", i, c)
			}
		}
	}
	if len(sc.Reconfigs) > MaxReconfigs {
		return fmt.Errorf("scenario: %d reconfigs (max %d)", len(sc.Reconfigs), MaxReconfigs)
	}
	drains, crashes := 0, 0
	for i, rc := range sc.Reconfigs {
		if !validReconfigKinds[rc.Kind] {
			return fmt.Errorf("scenario: reconfig %d: unknown kind %q", i, rc.Kind)
		}
		if rc.Kind == "kernel-upgrade" {
			if rc.AtMs < 0 || rc.AtMs > sc.WindowMs {
				return fmt.Errorf("scenario: reconfig %d: at_ms %d outside the %dms window",
					i, rc.AtMs, sc.WindowMs)
			}
			continue
		}
		if rc.AtMs < 0 || rc.ForMs < 1 || rc.AtMs+rc.ForMs > sc.WindowMs {
			return fmt.Errorf("scenario: reconfig %d: window [%d,%d)ms outside the %dms measurement window",
				i, rc.AtMs, rc.AtMs+rc.ForMs, sc.WindowMs)
		}
		switch rc.Kind {
		case "drain":
			drains++
			// A drain remaps every server container onto the spare's
			// standby twins: it needs overlay UDP flows only (TCP state
			// and host-networking sockets cannot migrate) and at least
			// one container to remap.
			if !sc.UDPOnly() || !sc.OverlayOnly() || sc.Containers < 1 {
				return fmt.Errorf("scenario: reconfig %d: drain requires overlay-only UDP flows and containers >= 1", i)
			}
		case "crash":
			crashes++
			// A crash fails the server over onto the spare's standby
			// twins: the same migration preconditions as drain apply.
			if !sc.UDPOnly() || !sc.OverlayOnly() || sc.Containers < 1 {
				return fmt.Errorf("scenario: reconfig %d: crash requires overlay-only UDP flows and containers >= 1", i)
			}
		}
	}
	if drains > 1 {
		return fmt.Errorf("scenario: %d drains (max 1)", drains)
	}
	// A crash owns the reconfig machinery for the whole run: the failure
	// detector drives the generation swaps, so a planned maintenance
	// schedule on the same host does not compose with it.
	if crashes > 0 && len(sc.Reconfigs) != 1 {
		return fmt.Errorf("scenario: a crash must be the only reconfig (got %d)", len(sc.Reconfigs))
	}
	return nil
}

// JSON renders the scenario compactly (the cache key and the embedded
// form inside reproducers and audit dump headers).
func (sc Scenario) JSON() string {
	b, err := json.Marshal(sc)
	if err != nil {
		panic(err) // static struct: cannot fail
	}
	return string(b)
}

// FromJSON parses and validates a scenario.
func FromJSON(data []byte) (Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return sc, fmt.Errorf("scenario: %w", err)
	}
	return sc, sc.Validate()
}

// LoadFile reads a scenario file: either a bare Scenario or a
// reproducer (see Reproducer). It returns the scenario plus the
// oracle names the file asks to check (nil: all applicable).
func LoadFile(path string) (Scenario, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, nil, err
	}
	var rep Reproducer
	if err := json.Unmarshal(data, &rep); err == nil && rep.Magic == ReproMagic {
		return rep.Scenario, rep.Oracles(), rep.Scenario.Validate()
	}
	sc, err := FromJSON(data)
	return sc, nil, err
}
