package scenario

import "fmt"

// DefaultShrinkBudget bounds how many oracle re-checks one shrink may
// spend. Each check is a handful of simulation runs, so the budget is
// the real wall-clock knob.
const DefaultShrinkBudget = 60

// Shrink greedily minimizes a violating scenario: it tries one
// structural reduction at a time (drop a flow, drop a fault, halve the
// window, shed cores/containers/config), keeps any candidate that still
// fails the same oracle, and repeats until no reduction helps or the
// check budget is spent. Returns the smallest still-failing scenario
// and the number of checks used.
//
// First-improvement greedy is deliberate: oracle checks dominate cost,
// and re-scanning from the strongest reductions after every success
// converges in a few passes on these small scenarios.
func Shrink(sc Scenario, oracleName string, budget int) (Scenario, int) {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	oracles, err := ByName([]string{oracleName})
	if err != nil {
		return sc, 0
	}
	o := oracles[0]
	stillFails := func(cand Scenario) bool {
		if cand.Validate() != nil || !o.Applies(cand) {
			return false
		}
		return CheckOracle(o, NewCtx(cand)) != nil
	}

	checks := 0
	for {
		improved := false
		for _, cand := range mutations(sc) {
			if checks >= budget {
				return sc, checks
			}
			checks++
			if stillFails(cand) {
				sc = cand
				improved = true
				break // restart from the strongest reductions
			}
		}
		if !improved {
			return sc, checks
		}
	}
}

// mutations enumerates single-step reductions of sc, strongest first.
// Every candidate is strictly "smaller": fewer moving parts, shorter
// windows, or fewer enabled features.
func mutations(sc Scenario) []Scenario {
	var out []Scenario
	add := func(m Scenario) { out = append(out, m) }

	// Drop whole flows and faults first — the biggest simplifications.
	if len(sc.Flows) > 1 {
		for i := range sc.Flows {
			m := sc
			m.Flows = append(append([]FlowSpec(nil), sc.Flows[:i]...), sc.Flows[i+1:]...)
			add(m)
		}
	}
	if sc.OpenLoop != nil {
		m := sc
		m.OpenLoop = nil
		add(m)
	}
	for i := range sc.Faults {
		m := sc
		m.Faults = append(append([]FaultSpec(nil), sc.Faults[:i]...), sc.Faults[i+1:]...)
		add(m)
	}
	for i := range sc.Reconfigs {
		m := sc
		m.Reconfigs = append(append([]ReconfigSpec(nil), sc.Reconfigs[:i]...), sc.Reconfigs[i+1:]...)
		add(m)
	}

	// Shorter run.
	if sc.WindowMs > 2 {
		m := sc
		m.WindowMs = max(2, sc.WindowMs/2)
		m = clampReconfigs(clampFaults(m))
		add(m)
	}
	if sc.WarmupMs > 1 {
		m := sc
		m.WarmupMs = sc.WarmupMs / 2
		add(m)
	}

	// Smaller topology. Cores may only shrink to just above the highest
	// core any part of the scenario references.
	if floor := minCoresFor(sc); sc.Cores-4 >= floor {
		m := sc
		m.Cores = sc.Cores - 4
		add(m)
	}
	if maxCtr := maxCtrUsed(sc); sc.Containers > maxCtr && sc.Containers > 1 {
		m := sc
		m.Containers = max(1, maxCtr)
		add(m)
	}
	if n := len(sc.FalconCPUs); n > 1 {
		m := sc
		m.FalconCPUs = append([]int(nil), sc.FalconCPUs[:n-1]...)
		if !faultCoresOK(m) {
			// A fault targets the dropped CPU; retarget it too.
			m = retargetFaults(m)
		}
		add(m)
	}

	// Smaller workload parameters.
	for i, f := range sc.Flows {
		if f.Size > 16 {
			m := sc
			m.Flows = append([]FlowSpec(nil), sc.Flows...)
			m.Flows[i].Size = max(16, f.Size/2)
			add(m)
		}
		if f.RatePPS > 20_000 {
			m := sc
			m.Flows = append([]FlowSpec(nil), sc.Flows...)
			m.Flows[i].RatePPS = f.RatePPS / 2
			add(m)
		}
	}

	// Simpler configuration: one knob at a time toward the zero value.
	if sc.LinkGbps == 100 {
		m := sc
		m.LinkGbps = 10
		add(m)
	}
	if sc.MTU != 0 {
		m := sc
		m.MTU = 0
		add(m)
	}
	if sc.Kernel != "" {
		m := sc
		m.Kernel = ""
		add(m)
	}
	for _, knob := range []struct {
		on  bool
		set func(*Scenario)
	}{
		{sc.RxCache, func(m *Scenario) { m.RxCache = false }},
		{sc.InnerGRO, func(m *Scenario) { m.InnerGRO = false }},
		{sc.GRO, func(m *Scenario) { m.GRO = false }},
		{sc.AlwaysOn, func(m *Scenario) { m.AlwaysOn = false }},
		{sc.GROSplit, func(m *Scenario) { m.GROSplit = false }},
		{sc.TwoChoice, func(m *Scenario) { m.TwoChoice = false }},
	} {
		if knob.on {
			m := sc
			knob.set(&m)
			add(m)
		}
	}
	return out
}

// clampReconfigs drops reconfig windows that no longer fit a shrunken
// measurement window.
func clampReconfigs(sc Scenario) Scenario {
	var kept []ReconfigSpec
	for _, rc := range sc.Reconfigs {
		if rc.AtMs+rc.ForMs <= sc.WindowMs {
			kept = append(kept, rc)
		}
	}
	sc.Reconfigs = kept
	return sc
}

// clampFaults pulls fault windows back inside a shrunken measurement
// window (dropping any that no longer fit).
func clampFaults(sc Scenario) Scenario {
	var kept []FaultSpec
	for _, ft := range sc.Faults {
		if ft.AtMs+ft.ForMs <= sc.WindowMs {
			kept = append(kept, ft)
		}
	}
	sc.Faults = kept
	return sc
}

// minCoresFor returns the smallest legal core count for the scenario.
func minCoresFor(sc Scenario) int {
	hi := sc.AppCore
	for _, c := range sc.FalconCPUs {
		if c > hi {
			hi = c
		}
	}
	for _, f := range sc.Flows {
		if f.SendCore > hi {
			hi = f.SendCore
		}
	}
	for _, ft := range sc.Faults {
		for _, c := range ft.Cores {
			if c > hi {
				hi = c
			}
		}
	}
	return max(MinCores, hi+1)
}

func maxCtrUsed(sc Scenario) int {
	hi := 0
	for _, f := range sc.Flows {
		if f.Ctr > hi {
			hi = f.Ctr
		}
	}
	return hi
}

// faultCoresOK reports whether every core-targeting fault still points
// at a FALCON_CPU of the scenario.
func faultCoresOK(sc Scenario) bool {
	in := make(map[int]bool, len(sc.FalconCPUs))
	for _, c := range sc.FalconCPUs {
		in[c] = true
	}
	for _, ft := range sc.Faults {
		if ft.Kind != "core-stall" && ft.Kind != "core-offline" && ft.Kind != "noisy-neighbor" {
			continue
		}
		for _, c := range ft.Cores {
			if !in[c] {
				return false
			}
		}
	}
	return true
}

// retargetFaults points core-targeting faults at the (shrunken) falcon
// CPU set.
func retargetFaults(sc Scenario) Scenario {
	fts := append([]FaultSpec(nil), sc.Faults...)
	for i, ft := range fts {
		if ft.Kind == "core-stall" || ft.Kind == "core-offline" || ft.Kind == "noisy-neighbor" {
			fts[i].Cores = append([]int(nil), sc.FalconCPUs...)
			if ft.Kind != "noisy-neighbor" && len(fts[i].Cores) > 1 {
				fts[i].Cores = fts[i].Cores[:1]
			}
		}
	}
	sc.Faults = fts
	return sc
}

// ShrinkSummary describes how far a shrink got, for logs.
func ShrinkSummary(from, to Scenario, checks int) string {
	return fmt.Sprintf("shrunk: flows %d→%d, faults %d→%d, window %d→%dms, cores %d→%d (%d re-checks)",
		len(from.Flows), len(to.Flows), len(from.Faults), len(to.Faults),
		from.WindowMs, to.WindowMs, from.Cores, to.Cores, checks)
}
