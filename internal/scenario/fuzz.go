package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"falcon/internal/audit"
)

// ReproMagic marks a reproducer file (the "falcon_fuzz" JSON field).
const ReproMagic = "v1"

// Reproducer is the one-command replay artifact the fuzzer emits for a
// shrunk violation: `falconsim -scenario <file>` re-checks exactly the
// embedded scenario against exactly the violated oracle.
type Reproducer struct {
	Magic    string   `json:"falcon_fuzz"`
	Oracle   string   `json:"oracle"`
	Seed     uint64   `json:"fuzz_seed"`
	Detail   string   `json:"detail"`
	Command  string   `json:"command"`
	Scenario Scenario `json:"scenario"`
}

// Oracles returns the oracle selection the reproducer pins (nil: all).
func (r Reproducer) Oracles() []string {
	if r.Oracle == "" {
		return nil
	}
	return []string{r.Oracle}
}

// Failure is one fuzz finding: the seed, the violation, the shrunk
// scenario, and where the reproducer was written.
type Failure struct {
	Seed      uint64
	Violation Violation
	Scenario  Scenario
	ReproPath string
}

// FuzzOptions configures one fuzz campaign.
type FuzzOptions struct {
	// Seeds is how many consecutive fuzz seeds to run (default 50),
	// starting at StartSeed (default 1).
	Seeds     int
	StartSeed uint64
	// Oracles restricts the battery (nil: all).
	Oracles []string
	// ReproDir receives reproducer files (default ".").
	ReproDir string
	// NoShrink skips minimization (reproducers carry the raw scenario).
	NoShrink bool
	// ShrinkBudget caps oracle re-checks per shrink (default
	// DefaultShrinkBudget).
	ShrinkBudget int
	// Workers runs seeds concurrently (each scenario run owns its
	// engine; runs share nothing but buffer pools). Default 1.
	Workers int
	// ExtraArgs is appended to the reproducer's replay command line
	// (e.g. the -fuzz-defect flag that must be active to reproduce).
	ExtraArgs string
	// Log receives per-seed progress lines (default: discarded).
	Log io.Writer
}

func (opt FuzzOptions) withDefaults() FuzzOptions {
	if opt.Seeds <= 0 {
		opt.Seeds = 50
	}
	if opt.StartSeed == 0 {
		opt.StartSeed = 1
	}
	if opt.ReproDir == "" {
		opt.ReproDir = "."
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if opt.Log == nil {
		opt.Log = io.Discard
	}
	return opt
}

// Fuzz runs the campaign: for each seed it generates a scenario, checks
// every applicable oracle, and on the first violation shrinks the
// scenario and writes a reproducer. All seeds run to completion (one
// finding does not stop the campaign); findings come back in seed
// order.
func Fuzz(opt FuzzOptions) ([]Failure, error) {
	opt = opt.withDefaults()
	if _, err := ByName(opt.Oracles); err != nil {
		return nil, err
	}

	results := make([]chan seedResult, opt.Seeds)
	for i := range results {
		results[i] = make(chan seedResult, 1)
	}
	sem := make(chan struct{}, opt.Workers)
	for i := 0; i < opt.Seeds; i++ {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] <- fuzzOne(opt, opt.StartSeed+uint64(i))
		}(i)
	}

	var failures []Failure
	for i := 0; i < opt.Seeds; i++ {
		r := <-results[i]
		fmt.Fprint(opt.Log, r.log)
		if r.failure != nil {
			failures = append(failures, *r.failure)
		}
	}
	return failures, nil
}

// seedResult is one seed's transcript plus any finding.
type seedResult struct {
	log     string
	failure *Failure
}

// fuzzOne runs one seed end to end and returns its log transcript plus
// any finding.
func fuzzOne(opt FuzzOptions, seed uint64) (out seedResult) {
	sc := Generate(seed)
	if err := sc.Validate(); err != nil {
		// The generator emitted an invalid scenario: a bug in this
		// package, reported as a finding so CI surfaces it.
		out.failure = &Failure{Seed: seed,
			Violation: Violation{"generator", err.Error()}, Scenario: sc}
		out.log = fmt.Sprintf("seed %d: GENERATOR BUG: %v\n", seed, err)
		return
	}

	oracles, _ := ByName(opt.Oracles)
	c := NewCtx(sc)
	var checked []string
	for _, o := range oracles {
		if !o.Applies(sc) {
			continue
		}
		checked = append(checked, o.Name)
		v := CheckOracle(o, c)
		if v == nil {
			continue
		}
		min, note := sc, ""
		if !opt.NoShrink {
			var checks int
			min, checks = Shrink(sc, o.Name, opt.ShrinkBudget)
			note = "  " + ShrinkSummary(sc, min, checks) + "\n"
			// Re-derive the violation detail from the minimal scenario
			// when it still reproduces cleanly.
			if mv := CheckOracle(o, NewCtx(min)); mv != nil {
				v = mv
			}
		}
		path, err := writeRepro(opt, seed, *v, min)
		if err != nil {
			note += fmt.Sprintf("  (writing reproducer: %v)\n", err)
		}
		out.failure = &Failure{Seed: seed, Violation: *v, Scenario: min, ReproPath: path}
		out.log = fmt.Sprintf("seed %d: FAIL [%s] %s\n%s  reproduce: %s\n",
			seed, v.Oracle, v.Detail, note, replayCommand(opt, path))
		return
	}
	out.log = fmt.Sprintf("seed %d: ok (%s)\n", seed, join(checked))
	return
}

func join(names []string) string {
	if len(names) == 0 {
		return "no applicable oracles"
	}
	s := names[0]
	for _, n := range names[1:] {
		s += "," + n
	}
	return s
}

func replayCommand(opt FuzzOptions, path string) string {
	cmd := "falconsim -scenario " + path
	if opt.ExtraArgs != "" {
		cmd += " " + opt.ExtraArgs
	}
	return cmd
}

// writeRepro emits the reproducer JSON for one finding.
func writeRepro(opt FuzzOptions, seed uint64, v Violation, sc Scenario) (string, error) {
	path := filepath.Join(opt.ReproDir, fmt.Sprintf("falcon-fuzz-%s-seed%d.json", v.Oracle, seed))
	rep := Reproducer{
		Magic: ReproMagic, Oracle: v.Oracle, Seed: seed, Detail: v.Detail,
		Command: replayCommand(opt, path), Scenario: sc,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return path, err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return path, err
	}
	// Twin audit dump: the same finding through the existing -replay
	// plumbing (the header embeds the scenario and pins the oracle).
	dumpPath := strings.TrimSuffix(path, ".json") + ".dump"
	info := audit.RunInfo{
		Exp: "fuzz/" + v.Oracle, Seed: int64(sc.Seed),
		Kernel: sc.Kernel, Scenario: sc.JSON(),
	}
	return path, audit.WriteDumpFile(dumpPath, info, nil, nil)
}

// Replay loads a scenario or reproducer file and re-checks it: the
// pinned oracle for a reproducer, every applicable oracle for a bare
// scenario. Violations mean the failure reproduces.
func Replay(path string) ([]Violation, error) {
	sc, names, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	return Check(sc, names)
}
