package scenario

import (
	"fmt"
	"strings"
)

// Oracle tolerances. Ratio checks always carry an absolute slack floor
// so low-packet-count windows (a 20 Kpps flow over a 6 ms window is
// ~120 packets) don't fail on ±a-few-packets boundary effects; at high
// counts the slack vanishes into the ratio.
const (
	// EquivTolerance: Falcon throughput vs vanilla on fault-free
	// multi-core overlay runs (the paper's never-worse claim, Fig. 14).
	EquivTolerance = 0.98
	// TCPEquivTolerance replaces it when the workload includes TCP:
	// fuzz windows are a few ms, which catches TCP in its
	// latency-sensitive ramp, where Falcon's extra inter-core hops
	// lengthen the ACK clock — the paper's never-worse claim is about
	// steady-state throughput. Loose enough to ride out ramp noise,
	// tight enough to catch a wedged stream (a held-GRO deadlock shows
	// ratios below 0.3).
	TCPEquivTolerance = 0.85
	// MonoTolerance: adding cores or link rate must not reduce
	// fault-free throughput below this fraction of the base run.
	// Looser than EquivTolerance: a topology change reshuffles hashes
	// and cache locality, which legitimately moves throughput a little.
	MonoTolerance = 0.90
	// FaultEnvelope / FaultLossEnvelope: Falcon vs vanilla under the
	// same fault schedule (abl-chaos's ≥0.98x envelope; loss-class
	// faults get extra room for binomial noise between the two runs).
	FaultEnvelope     = 0.98
	FaultLossEnvelope = 0.95
	// SurvivalEnvelope replaces both outside the geometry the chaos
	// harness calibrates them for (open-loop UDP through faults that hit
	// both modes symmetrically). A fault stalling or crowding a
	// FALCON_CPU is asymmetric by construction — vanilla RPS never uses
	// those cores — so the ratio then measures detection latency against
	// a fuzz-sized window; closed-loop TCP likewise amplifies any delay
	// into ack-clock collapse. The bound still catches a datapath that
	// wedges and never recovers (those show ratios near zero).
	SurvivalEnvelope = 0.5
	// SlackPackets is the absolute floor added to every ratio check.
	SlackPackets = 8
	// MinComparable: comparative checks are skipped below this many
	// delivered packets (nothing statistical survives such counts).
	MinComparable = 50

	// TailImproveFactor bounds the tail-sanity oracle's monotonicity
	// half: a delay-class fault may never *improve* p99 below this
	// fraction of the fault-free run's p99. Wide on purpose — fewer
	// delivered packets under a fault legitimately move a percentile —
	// while still catching inverted accounting (a latency origin stamped
	// after the stall it was meant to include shows up as a fault
	// "improving" the tail).
	TailImproveFactor = 0.70
	// TailSlackNs is the absolute floor under TailImproveFactor, so
	// microsecond-scale baselines don't flag on fixed-cost jitter.
	TailSlackNs = 10_000
	// MinTailSamples: percentile comparisons need more mass than plain
	// delivery ratios — p99 of fewer than 200 samples is the max of a
	// handful of packets.
	MinTailSamples = 200
)

// Violation is one oracle failure on one scenario.
type Violation struct {
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

func (v Violation) String() string { return v.Oracle + ": " + v.Detail }

// Oracle is one named metamorphic property over a scenario.
type Oracle struct {
	Name string
	Desc string
	// Applies reports whether the property is defined for the scenario.
	Applies func(sc Scenario) bool
	// Check runs the property (through the Ctx's run cache) and returns
	// nil when it holds.
	Check func(c *Ctx) *Violation
}

// Ctx caches scenario runs so oracles sharing a configuration (e.g.
// equivalence and conservation both want the vanilla accounting run)
// pay for it once.
type Ctx struct {
	SC       Scenario
	measures map[string]RunResult
	accounts map[string]AccountResult
}

// NewCtx returns a fresh cache for one scenario.
func NewCtx(sc Scenario) *Ctx {
	return &Ctx{SC: sc,
		measures: make(map[string]RunResult),
		accounts: make(map[string]AccountResult)}
}

func (c *Ctx) measure(sc Scenario, falcon bool) RunResult {
	key := fmt.Sprintf("m:%t:%s", falcon, sc.JSON())
	if r, ok := c.measures[key]; ok {
		return r
	}
	r := Measure(sc, falcon)
	c.measures[key] = r
	return r
}

func (c *Ctx) account(sc Scenario, falcon bool) AccountResult {
	key := fmt.Sprintf("a:%t:%s", falcon, sc.JSON())
	if r, ok := c.accounts[key]; ok {
		return r
	}
	r := Account(sc, falcon)
	c.accounts[key] = r
	return r
}

// hasFalcon reports whether the scenario's primary mode is Falcon.
func hasFalcon(sc Scenario) bool { return len(sc.FalconCPUs) > 0 }

// applicableModes lists the modes a scenario runs under: scenarios
// without Falcon CPUs only run vanilla.
func applicableModes(sc Scenario) []bool {
	if !hasFalcon(sc) {
		return []bool{false}
	}
	return []bool{false, true}
}

// withinEnvelope holds when got >= tol*base - SlackPackets.
func withinEnvelope(got, base uint64, tol float64) bool {
	return float64(got)+SlackPackets >= tol*float64(base)
}

// lossFault reports whether the schedule destroys packets outright
// (vs merely delaying or displacing work).
func lossFault(sc Scenario) bool {
	for _, ft := range sc.Faults {
		if ft.Kind == "link-loss" || ft.Kind == "ring-shrink" {
			return true
		}
	}
	return false
}

// reorderingFault reports whether the schedule can legitimately reorder
// packets at the sender: a flaky KV store makes some sends wait out a
// resolution backoff while later sends of the same flow resolve
// instantly and overtake them — the ARP-queue reordering every real
// host exhibits. (Wire jitter does not count: Link monotonizes
// arrivals, so the wire itself never reorders.)
func reorderingFault(sc Scenario) bool {
	for _, ft := range sc.Faults {
		if ft.Kind == "kv-flaky" {
			return true
		}
	}
	return false
}

// reorderingReconfig reports whether a scheduled generation swap can
// legitimately reorder a flow: an rps-flip moves the flow's processing
// off the RPS core mid-stream, so packets still queued on the old
// core's backlog finish after newer packets that took the direct RSS
// path. A crash counts too: sends that miss the KV during the remap
// wait out a retry backoff while later sends of the same flow resolve
// against the repopulated store and overtake them (the same ARP-queue
// reordering kv-flaky exhibits). (Drain does not count: each socket —
// primary or twin — still sees its own packets in order, which the
// drain corpus pins.)
func reorderingReconfig(sc Scenario) bool {
	for _, rc := range sc.Reconfigs {
		if rc.Kind == "rps-flip" || rc.Kind == "crash" {
			return true
		}
	}
	return false
}

// Oracles returns the full battery in checking order (cheapest and
// most fundamental first).
func Oracles() []Oracle {
	return []Oracle{
		{
			Name:    "determinism",
			Desc:    "same seed ⇒ byte-identical stats across repeated runs",
			Applies: func(Scenario) bool { return true },
			Check: func(c *Ctx) *Violation {
				a := c.measure(c.SC, hasFalcon(c.SC)) // cached for later oracles
				b := Measure(c.SC, hasFalcon(c.SC))   // always a fresh engine
				if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
					return &Violation{"determinism",
						fmt.Sprintf("fingerprints diverge:\n  run1: %s\n  run2: %s", fa, fb)}
				}
				return nil
			},
		},
		{
			Name:    "conservation",
			Desc:    "injected == delivered + Σ drop buckets; audit ledger clean; per-flow order (vanilla)",
			Applies: func(Scenario) bool { return true },
			Check:   checkConservation,
		},
		{
			Name: "equivalence",
			Desc: "falcon delivers the vanilla packet set fault-free; throughput ≥ vanilla on overlay multi-core",
			// MTU fragmentation is outside the paper's claims (and
			// fragmented TCP in a ms-scale ramp is dominated by
			// reassembly latency); fragmented runs stay covered by the
			// determinism and conservation oracles.
			// Reconfig swaps (like faults) perturb throughput by design,
			// so the steady-state comparisons below only apply without
			// them; reconfig scenarios get their own conservation oracle.
			Applies: func(sc Scenario) bool {
				return len(sc.Faults) == 0 && len(sc.Reconfigs) == 0 &&
					hasFalcon(sc) && sc.OverlayOnly() && sc.MTU == 0
			},
			Check: checkEquivalence,
		},
		{
			Name:    "monotonicity",
			Desc:    "more cores / link rate never reduce fault-free throughput beyond tolerance",
			Applies: func(sc Scenario) bool { return len(sc.Faults) == 0 && len(sc.Reconfigs) == 0 },
			Check:   checkMonotonicity,
		},
		{
			Name: "fault-sanity",
			Desc: "falcon stays within the never-worse envelope vs vanilla under the same fault schedule",
			Applies: func(sc Scenario) bool {
				return len(sc.Faults) > 0 && len(sc.Reconfigs) == 0 && hasFalcon(sc)
			},
			Check: checkFaultSanity,
		},
		{
			Name: "reconfig-conservation",
			Desc: "no packet unaccounted across any generation swap; audit ledger clean in both modes",
			Applies: func(sc Scenario) bool {
				return len(sc.Reconfigs) > 0 && !sc.HasCrash()
			},
			Check: checkReconfigConservation,
		},
		{
			Name: "tail-sanity",
			Desc: "latency percentiles finite and ordered; delay faults never improve p99",
			// Reconfig swaps migrate delivery mid-run (twin sockets, crash
			// fail-over), which splits the latency population across
			// sockets; the ordering half would still hold but the
			// monotonicity half would compare different populations, so
			// reconfig scenarios stay with their conservation oracles. TCP
			// latency is message-assembly latency, a different quantity —
			// UDP-only keeps one definition.
			Applies: func(sc Scenario) bool {
				return sc.UDPOnly() && len(sc.Reconfigs) == 0
			},
			Check: checkTailSanity,
		},
		{
			Name: "crash-conservation",
			Desc: "no packet unaccounted across a host crash: every frame delivered or in a named drop bucket (incl. crash); audit ledger clean",
			Applies: func(sc Scenario) bool {
				return sc.HasCrash()
			},
			Check: checkCrashConservation,
		},
		{
			Name: "cache-transparency",
			Desc: "RX flow cache is invisible to delivery: cached runs conserve exactly, shard-invariantly, and deliver the uncached packet set",
			Applies: func(sc Scenario) bool {
				return sc.RxCache
			},
			Check: checkCacheTransparency,
		},
	}
}

// ByName resolves a comma-separated selection against the battery.
func ByName(names []string) ([]Oracle, error) {
	if len(names) == 0 {
		return Oracles(), nil
	}
	all := Oracles()
	var out []Oracle
	for _, n := range names {
		found := false
		for _, o := range all {
			if o.Name == n {
				out = append(out, o)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("scenario: unknown oracle %q", n)
		}
	}
	return out, nil
}

func checkConservation(c *Ctx) *Violation {
	sc := c.SC
	// Vanilla accounting run: exact equations + per-flow order. (Order
	// is asserted only here: Falcon's load gate and two-choice rehash
	// may legitimately migrate a flow mid-stream, which can transiently
	// reorder; vanilla RPS pins each flow to one core, so any sequence
	// regression is a real bug.)
	av := c.account(sc, false)
	if v := conservationOn(sc, av, "vanilla"); v != nil {
		return v
	}
	if sc.UDPOnly() && !reorderingFault(sc) && !reorderingReconfig(sc) && av.OrderViols > 0 {
		return &Violation{"conservation",
			fmt.Sprintf("vanilla: %d per-flow order violations on UDP sockets", av.OrderViols)}
	}
	if hasFalcon(sc) {
		af := c.account(sc, true)
		if v := conservationOn(sc, af, "falcon"); v != nil {
			return v
		}
	}
	return nil
}

// conservationOn checks one accounting run: the audit subsystem must be
// silent, and for UDP-only unfragmented runs the two exact equations
// must hold — every send() is accounted on the client side, every wire
// frame on the server side.
func conservationOn(sc Scenario, ac AccountResult, mode string) *Violation {
	if len(ac.Violations) > 0 {
		n := len(ac.Violations)
		show := ac.Violations
		if n > 3 {
			show = show[:3]
		}
		return &Violation{"conservation",
			fmt.Sprintf("%s: %d audit violations: %s", mode, n, strings.Join(show, "; "))}
	}
	if !sc.UDPOnly() || sc.MTU != 0 {
		return nil // exact frame accounting needs UDP-only, unfragmented
	}
	clientSide := ac.Wire + ac.TxResolveDrops + ac.TxBuildDrops + ac.LinkDropped
	if ac.Sent != clientSide {
		return &Violation{"conservation",
			fmt.Sprintf("%s: client side: sent=%d != wire=%d + resolve=%d + build=%d + txq=%d",
				mode, ac.Sent, ac.Wire, ac.TxResolveDrops, ac.TxBuildDrops, ac.LinkDropped)}
	}
	serverSide := ac.Delivered + ac.NICDrops + ac.BacklogDrops + ac.SocketDrops +
		ac.PathDrops + ac.L4Drops + ac.LinkLost + ac.CrashDrops
	if ac.Wire != serverSide {
		return &Violation{"conservation",
			fmt.Sprintf("%s: server side: wire=%d != delivered=%d + nic=%d + backlog=%d + sock=%d + path=%d + l4=%d + lost=%d + crash=%d",
				mode, ac.Wire, ac.Delivered, ac.NICDrops, ac.BacklogDrops,
				ac.SocketDrops, ac.PathDrops, ac.L4Drops, ac.LinkLost, ac.CrashDrops)}
	}
	return nil
}

// checkReconfigConservation is the "no packet unaccounted across any
// generation swap" property: the drain-complete accounting run — with
// the generation schedule armed — must still satisfy the exact
// conservation equations (generalized over the client's links and both
// receive hosts) and keep the audit ledger silent, in every applicable
// mode. A packet silently eaten by a drain, a stale flow-cache entry, or
// the standby-twin handoff breaks one of the equations.
func checkReconfigConservation(c *Ctx) *Violation {
	sc := c.SC
	for _, mode := range applicableModes(sc) {
		label := "vanilla+reconfig"
		if mode {
			label = "falcon+reconfig"
		}
		if v := conservationOn(sc, c.account(sc, mode), label); v != nil {
			return &Violation{"reconfig-conservation", v.Detail}
		}
	}
	return nil
}

// checkCrashConservation is the crash fault domain's global equation:
// with a host crash (and its detector-driven fail-over, remap, and
// reboot re-admission) armed, the drain-complete accounting run must
// leave zero packets unaccounted — every send() lands in delivery or a
// named drop bucket, with the crash bucket (frames blackholed at the
// dead NIC/stack plus queue-resident packets purged at crash time)
// closing the books on the outage — and the audit ledger (SKB leaks,
// balance breaks, queue corruption) must stay silent, in every
// applicable mode. Fresh traffic must also have reached a socket after
// the crash: the fail-over onto the spare's twins (or the rebooted
// host) cannot silently blackhole the rest of the run.
func checkCrashConservation(c *Ctx) *Violation {
	sc := c.SC
	var crashMs int
	for _, rc := range sc.Reconfigs {
		if rc.Kind == "crash" {
			crashMs = rc.AtMs
		}
	}
	for _, mode := range applicableModes(sc) {
		label := "vanilla+crash"
		if mode {
			label = "falcon+crash"
		}
		ac := c.account(sc, mode)
		if v := conservationOn(sc, ac, label); v != nil {
			return &Violation{"crash-conservation", v.Detail}
		}
		// The crash is at >= 1ms into a window that outlives the outage,
		// so a run whose delivery stopped for good at the crash has lost
		// its recovery path (detector wedged, or remap left every sender
		// in permanent retry). Guard only well-fed runs: a slow flow may
		// legitimately fit its whole delivery before the crash.
		if ac.Sent >= MinComparable && ac.Delivered == 0 {
			return &Violation{"crash-conservation",
				fmt.Sprintf("%s: sent %d packets, delivered none across the crash at %dms",
					label, ac.Sent, crashMs)}
		}
	}
	return nil
}

func checkEquivalence(c *Ctx) *Violation {
	sc := c.SC
	// Throughput half: on multi-core overlay runs Falcon must stay
	// within EquivTolerance of vanilla (the never-worse claim; with one
	// FALCON_CPU there is no parallelism to claim, so no comparison).
	if len(sc.FalconCPUs) >= 2 {
		tol := EquivTolerance
		if !sc.UDPOnly() {
			tol = TCPEquivTolerance
		}
		mv := c.measure(sc, false)
		mf := c.measure(sc, true)
		if mv.Delivered >= MinComparable && !withinEnvelope(mf.Delivered, mv.Delivered, tol) {
			return &Violation{"equivalence",
				fmt.Sprintf("falcon delivered %d < %.2f × vanilla %d (fault-free overlay, %d falcon cpus)",
					mf.Delivered, tol, mv.Delivered, len(sc.FalconCPUs))}
		}
	}
	// Packet-set half: open-loop fixed-rate UDP sends are generated
	// identically in both modes, so when neither run dropped anything,
	// both must deliver exactly the same per-flow packet sets.
	if sc.FixedRateOnly() && sc.MTU == 0 {
		av := c.account(sc, false)
		af := c.account(sc, true)
		if totalDrops(av) == 0 && totalDrops(af) == 0 {
			for i := range av.PerFlowSent {
				if av.PerFlowSent[i] != af.PerFlowSent[i] {
					return &Violation{"equivalence",
						fmt.Sprintf("flow %d: send schedule diverged between modes: vanilla sent %d, falcon sent %d",
							i, av.PerFlowSent[i], af.PerFlowSent[i])}
				}
				if av.PerFlowDelivered[i] != af.PerFlowDelivered[i] {
					return &Violation{"equivalence",
						fmt.Sprintf("flow %d: packet set differs with zero drops: vanilla delivered %d, falcon delivered %d (sent %d)",
							i, av.PerFlowDelivered[i], af.PerFlowDelivered[i], av.PerFlowSent[i])}
				}
			}
		}
	}
	return nil
}

// totalDrops sums every loss bucket of an accounting run.
func totalDrops(ac AccountResult) uint64 {
	return ac.NICDrops + ac.BacklogDrops + ac.SocketDrops + ac.PathDrops +
		ac.L4Drops + ac.LinkLost + ac.LinkDropped + ac.TxResolveDrops + ac.TxBuildDrops
}

func checkMonotonicity(c *Ctx) *Violation {
	sc := c.SC
	base := c.measure(sc, hasFalcon(sc))
	if base.Delivered < MinComparable {
		return nil
	}
	type variant struct {
		label string
		sc    Scenario
	}
	var vs []variant
	// Link upgrade: only meaningful open-loop (flood adapts its send
	// rate to the wire, changing the offered load) and only when the
	// base receiver isn't already dropping — a faster wire delivers
	// burstier arrivals to a saturated receiver, which legitimately
	// increases drops.
	baseDrops := base.NICDrops + base.BacklogDrops + base.SocketDrops
	if sc.LinkGbps == 10 && sc.FixedRateOnly() && baseDrops == 0 {
		up := sc
		up.LinkGbps = 100
		vs = append(vs, variant{"link 10G→100G", up})
	}
	// (Deliberately no FALCON_CPUs k→k+1 variant: adding a stage CPU
	// re-spreads flow hashes and raises the per-packet migration cost,
	// so throughput is not monotone in k — the paper tunes k per
	// workload rather than claiming more is always better.)
	if sc.Cores+4 <= MaxCores {
		up := sc
		up.Cores = sc.Cores + 4
		vs = append(vs, variant{fmt.Sprintf("cores %d→%d", sc.Cores, up.Cores), up})
	}
	for _, v := range vs {
		got := c.measure(v.sc, hasFalcon(v.sc))
		if !withinEnvelope(got.Delivered, base.Delivered, MonoTolerance) {
			return &Violation{"monotonicity",
				fmt.Sprintf("%s reduced delivery %d → %d (tolerance %.2f)",
					v.label, base.Delivered, got.Delivered, MonoTolerance)}
		}
	}
	return nil
}

func checkFaultSanity(c *Ctx) *Violation {
	sc := c.SC
	fv := c.measure(sc, false)
	ff := c.measure(sc, true)
	if fv.Delivered < MinComparable {
		return nil
	}
	env := FaultEnvelope
	if lossFault(sc) {
		env = FaultLossEnvelope
	}
	if !sc.UDPOnly() || hitsFalconCPU(sc) {
		env = SurvivalEnvelope
	}
	if !withinEnvelope(ff.Delivered, fv.Delivered, env) {
		return &Violation{"fault-sanity",
			fmt.Sprintf("under %s: falcon delivered %d < %.2f × vanilla %d",
				faultNames(sc), ff.Delivered, env, fv.Delivered)}
	}
	return nil
}

// checkTailSanity is the latency-percentile contract. Finiteness half:
// on every applicable mode's measured window, the percentile ladder
// must be ordered (0 <= p50 <= p99 <= p99.9 <= max), bounded by the
// run's own span (no latency can exceed warmup+window: every sample's
// send and delivery both happen inside the run), and non-degenerate
// (packets cannot traverse the stack in zero time). Monotonicity half:
// a delay-class fault schedule may slow the tail but never improve it —
// p99 under the faults must stay above TailImproveFactor of the same
// scenario's fault-free p99. A violation here means latency accounting
// is broken (origin stamped after the delay it should include, samples
// leaking across windows), not that the datapath is slow.
func checkTailSanity(c *Ctx) *Violation {
	sc := c.SC
	span := int64(sc.Warmup() + sc.Window())
	for _, mode := range applicableModes(sc) {
		label := "vanilla"
		if mode {
			label = "falcon"
		}
		r := c.measure(sc, mode)
		if r.Delivered < MinComparable {
			continue
		}
		if r.P50 < 0 || r.P50 > r.P99 || r.P99 > r.P999 || r.P999 > r.MaxLat {
			return &Violation{"tail-sanity",
				fmt.Sprintf("%s: percentile ladder out of order: p50=%d p99=%d p99.9=%d max=%d",
					label, r.P50, r.P99, r.P999, r.MaxLat)}
		}
		if r.MaxLat > span {
			return &Violation{"tail-sanity",
				fmt.Sprintf("%s: max latency %dns exceeds the run span %dns (a sample leaked across windows)",
					label, r.MaxLat, span)}
		}
		if r.P99 <= 0 {
			return &Violation{"tail-sanity",
				fmt.Sprintf("%s: p99=%d with %d delivered (zero-cost traversal)",
					label, r.P99, r.Delivered)}
		}
	}

	// Monotonicity half: only for open-loop (fixed-rate) sends, where
	// both runs offer the identical schedule, and only for pure
	// delay-class faults. Loss faults thin queues (survivors are
	// faster), and faults on a FALCON_CPU can legitimately push the
	// steering onto a shorter path — both excluded.
	if len(sc.Faults) == 0 || !sc.FixedRateOnly() || !delayOnlyFaults(sc) || hitsFalconCPU(sc) {
		return nil
	}
	clean := sc
	clean.Faults = nil
	mode := hasFalcon(sc)
	b := c.measure(clean, mode)
	f := c.measure(sc, mode)
	if b.NICDrops+b.BacklogDrops+b.SocketDrops > 0 {
		return nil // a saturated baseline's p99 is already queue-bound
	}
	if b.Delivered < MinTailSamples || f.Delivered < MinTailSamples {
		return nil
	}
	if float64(f.P99)+TailSlackNs < TailImproveFactor*float64(b.P99) {
		return &Violation{"tail-sanity",
			fmt.Sprintf("under %s: p99 improved %d -> %d ns (below %.2f of fault-free; delay faults cannot speed packets up)",
				faultNames(sc), b.P99, f.P99, TailImproveFactor)}
	}
	return nil
}

// checkCacheTransparency is the tentpole property of the RX decap fast
// path: a cache hit may only change *when* work happens, never *what*
// is delivered. Three sub-checks on the scenario's primary mode:
// the cached accounting run satisfies the exact conservation equations
// with a silent audit ledger; the same cached run on a 4-shard PDES
// cluster produces identical books (the cache's per-core tables live
// inside one logical process, so sharding must not perturb them); and —
// when the send schedule is datapath-independent (fixed-rate, no
// fragmentation) and neither run dropped a packet — the cached run
// delivers exactly the per-flow packet sets of its cache-off twin.
func checkCacheTransparency(c *Ctx) *Violation {
	sc := c.SC
	mode := hasFalcon(sc)
	on := c.account(sc, mode)
	if v := conservationOn(sc, on, "cache-on"); v != nil {
		return &Violation{"cache-transparency", v.Detail}
	}
	// Shard invariance of the cached run. Direct Account call: Shards is
	// an execution knob outside scenario identity (json:"-"), so the
	// Ctx's JSON-keyed run cache cannot distinguish this run — it must
	// not be cached.
	sh := sc
	sh.Shards = 4
	onSh := Account(sh, mode)
	if v := conservationOn(sc, onSh, "cache-on+shards=4"); v != nil {
		return &Violation{"cache-transparency", v.Detail}
	}
	if onSh.Sent != on.Sent || onSh.Wire != on.Wire || onSh.Delivered != on.Delivered ||
		totalDrops(onSh)+onSh.CrashDrops != totalDrops(on)+on.CrashDrops {
		return &Violation{"cache-transparency",
			fmt.Sprintf("cached run diverges across shard counts: serial sent=%d wire=%d delivered=%d drops=%d, 4-shard sent=%d wire=%d delivered=%d drops=%d",
				on.Sent, on.Wire, on.Delivered, totalDrops(on)+on.CrashDrops,
				onSh.Sent, onSh.Wire, onSh.Delivered, totalDrops(onSh)+onSh.CrashDrops)}
	}
	// Delivery-set half: closed-loop flood adapts its send schedule to
	// the datapath under test (the cache changes costs, so the schedules
	// legitimately diverge); only open-loop fixed-rate UDP offers the
	// identical schedule to both runs.
	if !sc.FixedRateOnly() || sc.MTU != 0 {
		return nil
	}
	off := sc
	off.RxCache = false
	ao := c.account(off, mode)
	if totalDrops(on)+on.CrashDrops != 0 || totalDrops(ao)+ao.CrashDrops != 0 {
		return nil // a dropped packet makes set comparison meaningless
	}
	for i := range ao.PerFlowSent {
		if on.PerFlowSent[i] != ao.PerFlowSent[i] {
			return &Violation{"cache-transparency",
				fmt.Sprintf("flow %d: send schedule diverged: cache-off sent %d, cache-on sent %d",
					i, ao.PerFlowSent[i], on.PerFlowSent[i])}
		}
		if on.PerFlowDelivered[i] != ao.PerFlowDelivered[i] {
			return &Violation{"cache-transparency",
				fmt.Sprintf("flow %d: packet set differs with zero drops: cache-off delivered %d, cache-on delivered %d (sent %d)",
					i, ao.PerFlowDelivered[i], on.PerFlowDelivered[i], ao.PerFlowSent[i])}
		}
	}
	return nil
}

// delayOnlyFaults reports whether every fault merely delays work:
// link-jitter, kv-flaky, core-stall and noisy-neighbor hold packets or
// steal cycles; link-loss and ring-shrink destroy packets, and
// core-offline reroutes them (both change which packets make up the
// percentile population).
func delayOnlyFaults(sc Scenario) bool {
	for _, ft := range sc.Faults {
		switch ft.Kind {
		case "link-jitter", "kv-flaky", "core-stall", "noisy-neighbor":
		default:
			return false
		}
	}
	return true
}

// hitsFalconCPU reports whether some CPU fault impairs at least one
// FALCON_CPU — the asymmetric class (vanilla RPS never runs on those
// cores, so only Falcon pays for the fault).
func hitsFalconCPU(sc Scenario) bool {
	for _, ft := range sc.Faults {
		if ft.Kind != "core-stall" && ft.Kind != "core-offline" && ft.Kind != "noisy-neighbor" {
			continue
		}
		for _, c := range ft.Cores {
			for _, fc := range sc.FalconCPUs {
				if c == fc {
					return true
				}
			}
		}
	}
	return false
}

func faultNames(sc Scenario) string {
	var ns []string
	for _, ft := range sc.Faults {
		ns = append(ns, ft.Kind)
	}
	return strings.Join(ns, "+")
}

// CheckOracle runs one oracle with panic containment: a crash anywhere
// inside a scenario run (division by zero in a steering defect, an
// event-budget breach, an audit abort) becomes a reported violation
// instead of killing the fuzz loop.
func CheckOracle(o Oracle, c *Ctx) (v *Violation) {
	defer func() {
		if r := recover(); r != nil {
			v = &Violation{o.Name, fmt.Sprintf("panic during check: %v", r)}
		}
	}()
	return o.Check(c)
}

// Check runs the named oracles (nil: all) that apply to the scenario
// and returns every violation found.
func Check(sc Scenario, names []string) ([]Violation, error) {
	oracles, err := ByName(names)
	if err != nil {
		return nil, err
	}
	c := NewCtx(sc)
	var out []Violation
	for _, o := range oracles {
		if !o.Applies(sc) {
			continue
		}
		if v := CheckOracle(o, c); v != nil {
			out = append(out, *v)
		}
	}
	return out, nil
}
