package scenario

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestSeedCorpusReplaysClean replays every checked-in scenario under the
// full applicable oracle battery. The corpus is the fuzzer's regression
// memory: each file pins either an oracle's happy path or a shape that
// once broke the datapath (tcp-inner-gro-drain is the shrunk scenario of
// the held-segment drain bug the fuzzer found), so a violation here is a
// regression even if a fresh fuzz campaign would need many seeds to
// rediscover it.
func TestSeedCorpusReplaysClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("corpus has %d scenarios, want >=10", len(files))
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			sc, pinned, err := LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if want := strings.TrimSuffix(filepath.Base(path), ".json"); sc.Name != want {
				t.Fatalf("scenario name %q != file name %q", sc.Name, want)
			}
			vs, err := Check(sc, pinned)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range vs {
				t.Errorf("%s", v)
			}
		})
	}
}

// TestSeedCorpusCoversEveryOracle: the corpus must keep at least one
// scenario in each oracle's applicability domain, or a battery change
// could silently leave an oracle untested until the next live finding.
func TestSeedCorpusCoversEveryOracle(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, path := range files {
		sc, _, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, o := range Oracles() {
			if o.Applies(sc) {
				covered[o.Name] = true
			}
		}
	}
	for _, o := range Oracles() {
		if !covered[o.Name] {
			t.Errorf("no corpus scenario exercises oracle %q", o.Name)
		}
	}
}
