package workload

import (
	"testing"

	falconcore "falcon/internal/core"
	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/socket"
)

// runStress runs a seeded Falcon stress test and returns a fingerprint
// of everything measurable.
func runStress(seed uint64) []uint64 {
	tb := NewTestbed(TestbedConfig{
		LinkRate: 100 * devices.Gbps, Cores: 12, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1},
		GRO: true, InnerGRO: true, Seed: seed,
	})
	tb.EnableFalconOnServer(falconcore.DefaultConfig([]int{3, 4, 5}))
	sock, _ := tb.StressFlood(true, 3, 64, 2, 40*sim.Millisecond)
	res := MeasureWindow(tb, []*socket.Socket{sock}, 10*sim.Millisecond, 25*sim.Millisecond)
	first, second, gated := tb.Server.Falcon.Stats()
	return []uint64{
		res.Delivered,
		uint64(res.Latency.P99),
		uint64(res.Latency.Max),
		res.NICDrops, res.BacklogDrops, res.SocketDrops,
		res.HardIRQs, res.NetRX, res.RES,
		first, second, gated,
		tb.E.Fired(),
	}
}

func TestEndToEndDeterminism(t *testing.T) {
	// The entire simulation — CPU scheduling, hashing, drops, Falcon
	// placements, even the total event count — must be bit-identical
	// across runs with the same seed.
	a := runStress(42)
	b := runStress(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism violated at field %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	a := runStress(42)
	c := runStress(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fingerprints")
	}
}

func TestConservationOfPackets(t *testing.T) {
	// Every packet put on the wire is accounted for: delivered, dropped
	// at the NIC ring, backlog, socket, or still queued when time stops.
	tb := NewTestbed(TestbedConfig{
		LinkRate: 100 * devices.Gbps, Cores: 12, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1}, GRO: true, InnerGRO: true,
	})
	sock, flows := tb.StressFlood(true, 3, 64, 2, 30*sim.Millisecond)
	tb.Run(60 * sim.Millisecond) // drain fully after senders stop

	var sent uint64
	for _, f := range flows {
		sent += f.Sent()
	}
	wire := tb.Client.LinkTo(ServerIP).Sent.Value()
	if wire > sent {
		t.Fatalf("wire %d > sent %d", wire, sent)
	}
	accounted := sock.Delivered.Value() +
		tb.Server.NIC.Drops.Value() +
		tb.Server.St.Drops.Value() +
		sock.SocketDrops.Value() +
		tb.Server.Rx.PathDrops.Value() +
		tb.Server.L4Drops.Value()
	if accounted != wire {
		t.Fatalf("conservation violated: wire=%d accounted=%d (delivered=%d nic=%d backlog=%d sock=%d path=%d l4=%d)",
			wire, accounted, sock.Delivered.Value(), tb.Server.NIC.Drops.Value(),
			tb.Server.St.Drops.Value(), sock.SocketDrops.Value(),
			tb.Server.Rx.PathDrops.Value(), tb.Server.L4Drops.Value())
	}
}
