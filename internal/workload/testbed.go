// Package workload provides the traffic generators and measurement
// harnesses behind every experiment: the standard two-server testbed
// (client + server over a direct 10G/100G link, as in the paper's
// evaluation setup), sockperf-style UDP stress and fixed-rate flows,
// multi-flow and multi-container populations, TCP bulk flows, and the
// hotspot generator used by the adaptability test.
package workload

import (
	"fmt"

	"falcon/internal/audit"
	falconcore "falcon/internal/core"
	"falcon/internal/devices"
	"falcon/internal/overlay"
	"falcon/internal/proto"
	"falcon/internal/sim"
)

// Standard testbed addresses.
var (
	ClientIP = proto.IP4(192, 168, 1, 1)
	ServerIP = proto.IP4(192, 168, 1, 2)
	// SpareIP is the optional third host (TestbedConfig.Spare): the
	// migration target reconfiguration drains the server's containers
	// onto.
	SpareIP = proto.IP4(192, 168, 1, 3)
)

// ContainerIP returns the private IP of container i (1-based) on the
// given side (0 = client side, 1 = server side).
func ContainerIP(side, i int) proto.IPv4Addr {
	return proto.IP4(10, 32, byte(side), byte(i))
}

// TestbedConfig sizes the standard two-host testbed.
type TestbedConfig struct {
	// Kernel selects the cost profile for both hosts.
	Kernel string
	// LinkRate in bits/s (10G or 100G in the paper).
	LinkRate float64
	// Cores per host.
	Cores int
	// Server steering: RSS queue cores and the RPS mask.
	RSSCores, RPSCores []int
	// GRO / InnerGRO on both hosts.
	GRO, InnerGRO bool
	// Containers created per side (client side sends, server side
	// receives). 0 is valid for host-network-only experiments.
	Containers int
	// MTU, when positive, enables IP fragmentation on the inter-host
	// link (default 0: jumbo/GSO mode).
	MTU int
	// Seed for the engine.
	Seed uint64
	// Shards > 1 runs the testbed on a conservative PDES cluster with
	// that many shards: the client lives on shard 0 and the server on
	// shard 1 (extra shards idle — the two-host testbed exposes at most
	// two-way parallelism). 0 or 1 uses the plain serial engine. A
	// negative value (the CLI's -shards auto sentinel) resolves shard
	// and worker counts from the bed's host count and runtime.NumCPU()
	// via sim.AutoShards — serial when the bed colocates its hosts on
	// one shard or the machine has a single CPU.
	Shards int
	// FixedHorizon disables adaptive safe-horizon windows on sharded
	// runs (results are byte-identical either way; only synchronization
	// counts change).
	FixedHorizon bool
	// Colocate forces both hosts onto shard 0 even when Shards > 1 —
	// required by workloads whose endpoints share state across hosts
	// (TCP connections and closed-loop RPC apps).
	Colocate bool
	// Spare adds a third host (SpareIP, shard 2) carrying one standby
	// twin per server-side container — the landing zone for a
	// reconfiguration drain of the server. Twins are dark (not in the
	// KV) until a drain remaps them.
	Spare bool
	// RxCache installs the ONCache-style RX decap fast path on every
	// host: warm inner-UDP flows skip the decap stage walk and deliver
	// with a cached cost sum (see internal/overlay/rxcache.go). Off by
	// default — the fast path is the ablation under study, not the
	// baseline.
	RxCache bool
}

// Defaults fills zero fields with the paper's standard setup.
func (c TestbedConfig) withDefaults() TestbedConfig {
	if c.LinkRate == 0 {
		c.LinkRate = 100 * devices.Gbps
	}
	if c.Cores == 0 {
		c.Cores = 12
	}
	if len(c.RSSCores) == 0 {
		c.RSSCores = []int{0}
	}
	if len(c.RPSCores) == 0 {
		c.RPSCores = []int{1}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Testbed is the standard client/server pair, optionally with a spare
// migration-target host.
type Testbed struct {
	E              sim.Sim
	Net            *overlay.Network
	Client, Server *overlay.Host
	// Spare is the standby host (nil unless TestbedConfig.Spare).
	Spare *overlay.Host
	// ClientCtrs and ServerCtrs are the per-side containers; SpareCtrs
	// are the spare host's standby twins (same IPs as ServerCtrs).
	ClientCtrs, ServerCtrs, SpareCtrs []*overlay.Container
	// Audit is non-nil after EnableAudit.
	Audit *audit.Auditor
}

// NewTestbed builds the standard testbed.
func NewTestbed(cfg TestbedConfig) *Testbed {
	cfg = cfg.withDefaults()
	shards, workers := cfg.Shards, 0
	if shards < 0 {
		// Auto: size from the bed's own parallelism. A colocated bed puts
		// every host on shard 0, so sharding cannot help it — resolve
		// against one host, which degrades to the serial engine.
		hosts := 2
		if cfg.Spare {
			hosts = 3
		}
		if cfg.Colocate {
			hosts = 1
		}
		shards, workers = sim.AutoShards(hosts)
	}
	var e sim.Sim
	if shards > 1 {
		cl := sim.NewCluster(cfg.Seed, shards, workers)
		cl.SetAdaptive(!cfg.FixedHorizon)
		e = cl
	} else {
		e = sim.New(cfg.Seed)
	}
	n := overlay.NewNetwork(e)
	mk := func(name string, ip proto.IPv4Addr, shard int) *overlay.Host {
		h := n.AddHost(overlay.HostConfig{
			Name: name, IP: ip, Cores: cfg.Cores,
			RSSCores: cfg.RSSCores, RPSCores: cfg.RPSCores,
			GRO: cfg.GRO, InnerGRO: cfg.InnerGRO, Kernel: cfg.Kernel,
			Shard: shard,
		})
		if cfg.RxCache {
			h.EnableRxCache()
		}
		return h
	}
	serverShard := 1
	if cfg.Colocate {
		serverShard = 0
	}
	tb := &Testbed{E: e, Net: n, Client: mk("client", ClientIP, 0), Server: mk("server", ServerIP, serverShard)}
	n.Connect(tb.Client, tb.Server, cfg.LinkRate, sim.Microsecond)
	if cfg.MTU > 0 {
		tb.Client.LinkTo(ServerIP).MTU = cfg.MTU
		tb.Server.LinkTo(ClientIP).MTU = cfg.MTU
	}
	if cfg.Spare {
		spareShard := 2
		if cfg.Colocate {
			spareShard = 0
		}
		tb.Spare = mk("spare", SpareIP, spareShard)
		n.Connect(tb.Client, tb.Spare, cfg.LinkRate, sim.Microsecond)
		n.Connect(tb.Server, tb.Spare, cfg.LinkRate, sim.Microsecond)
		if cfg.MTU > 0 {
			tb.Client.LinkTo(SpareIP).MTU = cfg.MTU
			tb.Spare.LinkTo(ClientIP).MTU = cfg.MTU
			tb.Server.LinkTo(SpareIP).MTU = cfg.MTU
			tb.Spare.LinkTo(ServerIP).MTU = cfg.MTU
		}
	}
	for i := 1; i <= cfg.Containers; i++ {
		tb.ClientCtrs = append(tb.ClientCtrs,
			tb.Client.AddContainer(fmt.Sprintf("cli-%d", i), ContainerIP(0, i)))
		tb.ServerCtrs = append(tb.ServerCtrs,
			tb.Server.AddContainer(fmt.Sprintf("srv-%d", i), ContainerIP(1, i)))
		if tb.Spare != nil {
			tb.SpareCtrs = append(tb.SpareCtrs,
				tb.Spare.AddStandbyContainer(fmt.Sprintf("srv-%d-twin", i), ContainerIP(1, i)))
		}
	}
	return tb
}

// Hosts returns the testbed's live hosts (2 or 3 with a spare).
func (tb *Testbed) Hosts() []*overlay.Host {
	hosts := []*overlay.Host{tb.Client, tb.Server}
	if tb.Spare != nil {
		hosts = append(hosts, tb.Spare)
	}
	return hosts
}

// EnableFalconOnServer attaches Falcon to the receive-heavy side.
func (tb *Testbed) EnableFalconOnServer(cfg falconcore.Config) *falconcore.Falcon {
	return tb.Server.EnableFalcon(cfg)
}

// Run advances the simulation to the absolute time t.
func (tb *Testbed) Run(t sim.Time) { tb.E.RunUntil(t) }

// Mode names the three configurations every figure compares.
type Mode int

// The paper's three comparison points.
const (
	ModeHost   Mode = iota // native host network, no containers
	ModeCon                // vanilla Docker-style overlay
	ModeFalcon             // overlay with Falcon
)

// String returns the paper's label for the mode.
func (m Mode) String() string {
	switch m {
	case ModeHost:
		return "Host"
	case ModeCon:
		return "Con"
	case ModeFalcon:
		return "Falcon"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}
