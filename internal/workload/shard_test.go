package workload

import (
	"testing"

	"falcon/internal/audit"
	"falcon/internal/devices"
	"falcon/internal/faults"
	"falcon/internal/sim"
	"falcon/internal/socket"
)

// runJittery runs the two-host testbed with fault-injected link jitter
// and loss on both directions of the inter-host wire, and returns a
// fingerprint of everything measurable. With shards=2 the client and
// server live on different PDES shards and every frame crosses the
// shard boundary through a PostSource whose horizon guard panics if a
// frame ever arrives earlier than now+Lookahead() — so this doubles as
// the runtime proof that devices.Link.Lookahead is never overestimated:
// jitter only adds delay and a busy serializer only pushes arrivals
// later, and the guard re-checks that bound on every single frame.
func runJittery(t *testing.T, shards int, withAudit bool) []uint64 {
	t.Helper()
	tb := NewTestbed(TestbedConfig{
		LinkRate: 10 * devices.Gbps, Cores: 8, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1},
		GRO: true, InnerGRO: true, Seed: 7, Shards: shards,
	})
	var a *audit.Auditor
	if withAudit {
		a = tb.EnableAudit(audit.Config{OnViolation: func(v *audit.Violation) {
			t.Errorf("audit violation: %v", v)
		}})
	}
	in := faults.NewInjector(tb.E)
	link := tb.Client.LinkTo(ServerIP)
	back := tb.Server.LinkTo(ClientIP)
	in.Install(faults.Plan{Name: "jitter+loss", Items: []faults.Item{
		{At: 2 * sim.Millisecond, For: 6 * sim.Millisecond,
			Fault: &faults.LinkJitterBurst{Link: link, Jitter: 30 * sim.Microsecond}},
		{At: 3 * sim.Millisecond, For: 4 * sim.Millisecond,
			Fault: &faults.LinkLossBurst{Link: link, Rate: 0.02}},
		{At: 4 * sim.Millisecond, For: 3 * sim.Millisecond,
			Fault: &faults.LinkJitterBurst{Link: back, Jitter: 10 * sim.Microsecond}},
	}})
	until := 12 * sim.Millisecond
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 256, 2, 2, 1)
	f.SendAtRate(200_000, until)
	res := MeasureWindow(tb, []*socket.Socket{f.Sock}, 2*sim.Millisecond, 9*sim.Millisecond)
	if withAudit {
		deadline := until
		tb.Run(deadline)
		for i := 0; i < 10 && a.LiveCount() > 0; i++ {
			deadline += 2 * sim.Millisecond
			tb.Run(deadline)
		}
		for _, v := range a.Final() {
			t.Errorf("teardown violation: %v", v)
		}
	}
	return []uint64{
		res.Delivered, uint64(res.Latency.P50), uint64(res.Latency.P99),
		uint64(res.Latency.Max), res.NICDrops, res.BacklogDrops,
		res.SocketDrops, link.Sent.Value(), link.Lost.Value(),
		link.Dropped.Value(), f.Sent(),
	}
}

// TestShardInvarianceUnderLinkFaults: the sharded testbed must survive
// fault-injected jitter and loss on the cross-shard wire without ever
// tripping the lookahead horizon guard, and must reproduce the serial
// run's results exactly.
func TestShardInvarianceUnderLinkFaults(t *testing.T) {
	want := runJittery(t, 0, false)
	for _, shards := range []int{2, 4} {
		got := runJittery(t, shards, false)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d field %d: %d != serial %d", shards, i, got[i], want[i])
			}
		}
	}
}

// TestShardAuditUnderLinkFaults: same workload with the audit harness
// attached — per-shard ledgers, SKB handoffs across the jittery lossy
// boundary, conservation balances and the end-of-run leak check must
// all stay clean, and results must still match the serial audited run.
func TestShardAuditUnderLinkFaults(t *testing.T) {
	want := runJittery(t, 0, true)
	got := runJittery(t, 2, true)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("audited shards=2 field %d: %d != serial %d", i, got[i], want[i])
		}
	}
}
