package workload

import (
	"hash/fnv"

	"falcon/internal/overlay"
	"falcon/internal/pcap"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/socket"
)

// Pcap replay turns a capture into an open-loop workload: every trace
// record becomes one send at its (time-warped) capture offset, with the
// trace's 5-tuples hashed onto a fixed set of testbed flows. The replay
// is a pure function of the records and the config — no RNG — so it is
// trivially seed-stable, and every send is a plain timed event on the
// client, so it is shard-invariant by the same argument as the
// fixed-rate generators: the schedule never consults datapath state.

// ReplayConfig maps a capture onto the testbed.
type ReplayConfig struct {
	Records []pcap.Record
	// Warp scales trace pacing: gaps between records are divided by
	// Warp, so Warp 2 replays twice as fast as captured. <= 0 means 1.
	Warp float64
	// Start is the sim time of the first record's send.
	Start sim.Time
	// Flows is how many testbed flow slots trace 5-tuples hash onto
	// (each slot is one flow identity + destination port).
	Flows    int
	BasePort uint16
	// SendCores are the client cores slots rotate over; AppCore pins
	// the receiving sockets.
	SendCores []int
	AppCore   int
	// Ctr selects the overlay container pair (1-based); 0 replays over
	// the host network.
	Ctr int
	// BaseFlowID offsets the slots' flow IDs.
	BaseFlowID uint64
	// SizeCap clamps per-packet payload bytes (traces can carry jumbo
	// frames the testbed flow would fragment).
	SizeCap int
}

func (cfg ReplayConfig) withDefaults() ReplayConfig {
	if cfg.Warp <= 0 {
		cfg.Warp = 1
	}
	if cfg.Flows == 0 {
		cfg.Flows = 8
	}
	if cfg.BasePort == 0 {
		cfg.BasePort = 6200
	}
	if len(cfg.SendCores) == 0 {
		cfg.SendCores = []int{2}
	}
	if cfg.BaseFlowID == 0 {
		cfg.BaseFlowID = 20_000
	}
	if cfg.SizeCap == 0 {
		cfg.SizeCap = 1472
	}
	return cfg
}

// Replay is a scheduled trace replay.
type Replay struct {
	// Socks are the receiving sockets, one per flow slot.
	Socks []*socket.Socket
	// Scheduled counts trace records mapped to sends; Skipped counts
	// records dropped because they did not parse as IPv4 UDP/TCP.
	Scheduled uint64
	Skipped   uint64

	sent uint64
}

// Sent returns how many replayed packets have been handed to the stack.
func (rp *Replay) Sent() uint64 { return rp.sent }

// replaySlot is one testbed flow identity trace tuples collapse onto.
type replaySlot struct {
	srcPort, dstPort uint16
	core             int
	flowID           uint64
	seq              uint64
}

// StartReplay opens the slots' sockets and schedules every record's
// send. The first record anchors the time base: record i goes out at
// Start + (T_i - T_0)/Warp.
func (tb *Testbed) StartReplay(cfg ReplayConfig) *Replay {
	cfg = cfg.withDefaults()
	rp := &Replay{}
	dst := ServerIP
	var from *overlay.Container
	if cfg.Ctr > 0 {
		from = tb.ClientCtrs[cfg.Ctr-1]
		dst = tb.ServerCtrs[cfg.Ctr-1].IP
	}
	slots := make([]*replaySlot, cfg.Flows)
	for i := range slots {
		slots[i] = &replaySlot{
			srcPort: uint16(21_000 + i),
			dstPort: cfg.BasePort + uint16(i),
			core:    cfg.SendCores[i%len(cfg.SendCores)],
			flowID:  cfg.BaseFlowID + uint64(i),
		}
		rp.Socks = append(rp.Socks, tb.Server.OpenUDP(dst, slots[i].dstPort, cfg.AppCore))
	}
	var t0 sim.Time
	for _, rec := range cfg.Records {
		f, err := proto.ParseFrame(rec.Frame)
		if err != nil || f.IP.FragOff != 0 {
			rp.Skipped++
			continue
		}
		size := len(f.Payload)
		if size < 1 {
			size = 1
		}
		if size > cfg.SizeCap {
			size = cfg.SizeCap
		}
		if rp.Scheduled == 0 {
			t0 = rec.T
		}
		at := cfg.Start + sim.Time(float64(rec.T-t0)/cfg.Warp)
		slot := slots[tupleHash(f)%uint64(len(slots))]
		sz := size
		rp.Scheduled++
		tb.Client.E.At(at, func() {
			slot.seq++
			rp.sent++
			tb.Client.SendUDP(overlay.SendParams{
				From: from, SrcPort: slot.srcPort, DstIP: dst, DstPort: slot.dstPort,
				Payload: sz, Core: slot.core, FlowID: slot.flowID, Seq: slot.seq,
			})
		})
	}
	return rp
}

// tupleHash collapses a parsed frame's 5-tuple deterministically.
func tupleHash(f proto.Frame) uint64 {
	h := fnv.New64a()
	var b [13]byte
	src, dst := uint32(f.IP.Src), uint32(f.IP.Dst)
	b[0], b[1], b[2], b[3] = byte(src>>24), byte(src>>16), byte(src>>8), byte(src)
	b[4], b[5], b[6], b[7] = byte(dst>>24), byte(dst>>16), byte(dst>>8), byte(dst)
	sp, dp := f.SrcPort(), f.DstPort()
	b[8], b[9] = byte(sp>>8), byte(sp)
	b[10], b[11] = byte(dp>>8), byte(dp)
	b[12] = f.IP.Protocol
	_, _ = h.Write(b[:])
	return h.Sum64()
}
