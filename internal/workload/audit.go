package workload

import (
	"fmt"
	"io"
	"sort"

	"falcon/internal/audit"
	"falcon/internal/devices"
	"falcon/internal/overlay"
	"falcon/internal/proto"
	"falcon/internal/skb"
	"falcon/internal/socket"
)

// EnableAudit attaches a run auditor to the testbed: the SKB lifecycle
// ledger on both hosts' transmit paths, one conservation balance per
// named drop stage (every counter the datapath increments when it frees
// a packet must match the ledger's dispositions at that stage), queue
// validation over every NIC ring and socket receive queue, and a
// per-core softirq watchdog. Call before traffic starts.
//
// The auditor observes and never mutates: enabling it leaves the run's
// schedule — and therefore its printed output — byte-identical.
func (tb *Testbed) EnableAudit(cfg audit.Config) *audit.Auditor {
	a := audit.New(tb.E, cfg)
	tb.Audit = a
	hosts := tb.Hosts()

	sum := func(get func(h *overlay.Host) uint64) func() uint64 {
		return func() uint64 {
			var n uint64
			for _, h := range hosts {
				n += get(h)
			}
			return n
		}
	}

	// Every named drop counter pairs with the ledger dispositions freed
	// at that stage; a packet that vanishes without touching its stage's
	// counter (or vice versa) breaks the pair immediately.
	a.Balance("nic-drops",
		[]audit.Term{audit.T("nic.Drops", sum(func(h *overlay.Host) uint64 { return h.NIC.Drops.Value() }))},
		[]audit.Term{audit.T("ledger", a.Disposed("drop:nic-ring", "drop:nic-frame"))})
	a.Balance("backlog-drops",
		[]audit.Term{audit.T("stack.Drops", sum(func(h *overlay.Host) uint64 { return h.St.Drops.Value() }))},
		[]audit.Term{audit.T("ledger", a.Disposed("drop:backlog"))})
	a.Balance("link-loss",
		[]audit.Term{audit.T("link.Lost", sum(func(h *overlay.Host) uint64 {
			return linkSum(h, func(l *devices.Link) uint64 { return l.Lost.Value() })
		}))},
		[]audit.Term{audit.T("ledger", a.Disposed("drop:link-loss"))})
	a.Balance("link-txq",
		[]audit.Term{audit.T("link.Dropped", sum(func(h *overlay.Host) uint64 {
			return linkSum(h, func(l *devices.Link) uint64 { return l.Dropped.Value() })
		}))},
		[]audit.Term{audit.T("ledger", a.Disposed("drop:link-txq"))})
	a.Balance("gro-absorbed",
		[]audit.Term{
			audit.T("nic.GROMerged", sum(func(h *overlay.Host) uint64 { return h.NIC.GROMerged() })),
			audit.T("innerGROMerged", sum(func(h *overlay.Host) uint64 { return h.Rx.InnerGROMerged() })),
		},
		[]audit.Term{audit.T("ledger", a.Disposed("gro-absorbed"))})
	a.Balance("l4-drops",
		[]audit.Term{audit.T("host.L4Drops", sum(func(h *overlay.Host) uint64 { return h.L4Drops.Value() }))},
		[]audit.Term{audit.T("ledger", a.Disposed("drop:l4-frame", "drop:l4-unbound"))})
	sockDrops := a.Balance("sock-drops",
		[]audit.Term{}, // per-socket terms appended on open
		[]audit.Term{audit.T("ledger", a.Disposed("drop:sock-overflow"))})
	delivered := a.Balance("delivered",
		[]audit.Term{}, // per-socket terms appended on open
		[]audit.Term{audit.T("ledger", a.Disposed("delivered"))})

	// The transmit equation: every message entering sendL4 either
	// becomes a ledgered SKB, is counted as a resolve/build drop, or is
	// still in flight through asynchronous KV resolution.
	a.Balance("tx-msgs",
		[]audit.Term{audit.T("tx.Msgs", sum(func(h *overlay.Host) uint64 { return h.TxMsgs.Value() }))},
		[]audit.Term{
			audit.T("skb.created", a.CreatedAt("tx:fast", "tx:slow")),
			audit.T("tx.ResolveDrops", sum(func(h *overlay.Host) uint64 { return h.TxResolveDrops.Value() })),
			audit.T("tx.BuildDrops", sum(func(h *overlay.Host) uint64 { return h.TxBuildDrops.Value() })),
			audit.T("tx.Pending", sum(func(h *overlay.Host) uint64 { return h.TxPending() })),
		})

	for _, h := range hosts {
		h := h
		// Each host attaches the ledger of its own shard engine, so the
		// per-packet hooks stay lock-free; on a serial run both hosts
		// resolve to the same single ledger.
		h.Audit = a.LedgerFor(h.E)
		h.OnReset = a.NoteReset
		h.OnSocketOpen = func(port uint16, sk *socket.Socket) {
			name := fmt.Sprintf("%s:sock:%d", h.Name, port)
			delivered.AddLHS(audit.T(name, sk.Consumed.Value))
			sockDrops.AddLHS(audit.T(name, sk.SocketDrops.Value))
			a.AddQueue(name, sk.RcvQueue())
		}
		a.AddQueues(func(yield func(name string, q *skb.Queue)) {
			h.NIC.EachRing(func(core int, ring *skb.Queue) {
				yield(fmt.Sprintf("%s:nic-ring:%d", h.Name, core), ring)
			})
		})
		for c := 0; c < h.M.NumCores(); c++ {
			c := c
			core := h.M.Core(c)
			a.Watch(fmt.Sprintf("%s:core%d", h.Name, c), func() audit.WatchState {
				local, remote, _, _ := h.St.BacklogState(c)
				ring, _, _ := h.NIC.QueueState(c)
				return audit.WatchState{
					Queued:   local + remote + ring,
					Progress: uint64(h.M.Acct.TotalBusy(c)),
					Frozen:   core.Stalled() || core.Offline(),
				}
			})
		}
		a.AddDump(func(w io.Writer) { dumpHost(w, h) })
	}
	a.Start()
	return a
}

// linkSum aggregates a counter over every outgoing link of h. Each
// unidirectional link is owned by exactly one sending host, so summing
// per-host egress links visits every link in the testbed exactly once.
func linkSum(h *overlay.Host, get func(l *devices.Link) uint64) uint64 {
	var n uint64
	h.EachLink(func(_ proto.IPv4Addr, l *devices.Link) { n += get(l) })
	return n
}

// dumpHost renders one host's per-core state for watchdog reports and
// failure dumps.
func dumpHost(w io.Writer, h *overlay.Host) {
	fmt.Fprintf(w, "host %s: txmsgs=%d resolve-drops=%d build-drops=%d pending=%d nic-drops=%d backlog-drops=%d l4-drops=%d\n",
		h.Name, h.TxMsgs.Value(), h.TxResolveDrops.Value(), h.TxBuildDrops.Value(),
		h.TxPending(), h.NIC.Drops.Value(), h.St.Drops.Value(), h.L4Drops.Value())
	for c := 0; c < h.M.NumCores(); c++ {
		core := h.M.Core(c)
		local, remote, pending, draining := h.St.BacklogState(c)
		ring, budget, active := h.NIC.QueueState(c)
		if local+remote+ring == 0 && core.Idle() && !core.Stalled() && !core.Offline() {
			continue // only report cores with state worth reading
		}
		fmt.Fprintf(w, "  core %2d: backlog=%d/%d pending=%t draining=%t ring=%d budget=%d napi=%t idle=%t stalled=%t offline=%t\n",
			c, local, remote, pending, draining, ring, budget, active,
			core.Idle(), core.Stalled(), core.Offline())
	}
	if h.Falcon != nil {
		healthy := append([]int(nil), h.Falcon.HealthyCPUs()...)
		sort.Ints(healthy)
		fmt.Fprintf(w, "  falcon: healthy=%v degraded=%t\n", healthy, h.Falcon.Degraded())
	}
}
