package workload

import (
	"math"
	"testing"

	"falcon/internal/devices"
	"falcon/internal/sim"
)

// sampleStats draws n values and returns their mean plus the fraction
// exceeding the tail threshold.
func sampleStats(s Sampler, r *sim.Rand, n int, tailAt float64) (mean, tailMass float64) {
	sum, tail := 0.0, 0
	for i := 0; i < n; i++ {
		v := s.Sample(r)
		sum += v
		if v > tailAt {
			tail++
		}
	}
	return sum / float64(n), float64(tail) / float64(n)
}

func TestParetoSampler(t *testing.T) {
	// Alpha 2.5 keeps the variance finite so the sample mean converges
	// at a testable rate while the tail stays polynomial.
	p := Pareto{Xm: 4, Alpha: 2.5}
	wantMean := 2.5 * 4 / 1.5
	if got := p.Mean(); math.Abs(got-wantMean) > 1e-9 {
		t.Fatalf("analytic mean = %v, want %v", got, wantMean)
	}
	r := sim.NewRand(42)
	mean, tail := sampleStats(p, r, 200_000, 16)
	if math.Abs(mean-wantMean)/wantMean > 0.05 {
		t.Fatalf("sample mean %v, analytic %v", mean, wantMean)
	}
	// P(X > 16) = (4/16)^2.5 = 0.03125.
	wantTail := math.Pow(0.25, 2.5)
	if math.Abs(tail-wantTail) > 0.004 {
		t.Fatalf("tail mass %v, analytic %v", tail, wantTail)
	}
	if (Pareto{Xm: 1, Alpha: 1}).Mean() != math.Inf(1) {
		t.Fatal("alpha<=1 must report infinite mean")
	}
}

func TestLognormalSampler(t *testing.T) {
	l := LognormalWithMean(12, 0.75)
	if math.Abs(l.Mean()-12) > 1e-9 {
		t.Fatalf("LognormalWithMean mean = %v", l.Mean())
	}
	r := sim.NewRand(43)
	mean, tail := sampleStats(l, r, 200_000, l.Mean()*2)
	if math.Abs(mean-12)/12 > 0.03 {
		t.Fatalf("sample mean %v, analytic 12", mean)
	}
	// P(X > 2·mean) = P(Z > (ln(2·mean)-Mu)/Sigma) = 1 - Φ(z).
	z := (math.Log(24) - l.Mu) / l.Sigma
	wantTail := 0.5 * math.Erfc(z/math.Sqrt2)
	if math.Abs(tail-wantTail) > 0.005 {
		t.Fatalf("tail mass %v, analytic %v", tail, wantTail)
	}
}

// gapCV returns the coefficient of variation of n interarrival gaps and
// their mean in seconds.
func gapCV(a Arrivals, r *sim.Rand, n int) (cv, meanSec float64) {
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		g := float64(a.NextGap(r))
		sum += g
		sumSq += g * g
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	return math.Sqrt(variance) / mean, mean / 1e9
}

func TestPoissonArrivalCV(t *testing.T) {
	r := sim.NewRand(44)
	cv, mean := gapCV(PoissonArrivals{Rate: 50_000}, r, 100_000)
	if cv < 0.95 || cv > 1.05 {
		t.Fatalf("Poisson interarrival CV = %v, want ~1", cv)
	}
	if math.Abs(mean-1.0/50_000)/(1.0/50_000) > 0.02 {
		t.Fatalf("Poisson mean gap %vs, want %vs", mean, 1.0/50_000)
	}
}

func TestMMPPArrivalCV(t *testing.T) {
	m := &MMPP2{
		CalmRate: 20_000, BurstRate: 200_000,
		MeanCalm: sim.Millisecond, MeanBurst: 250 * sim.Microsecond,
	}
	wantRate := (20_000*1.0 + 200_000*0.25) / 1.25
	if math.Abs(m.MeanRate()-wantRate)/wantRate > 1e-9 {
		t.Fatalf("MeanRate = %v, want %v", m.MeanRate(), wantRate)
	}
	r := sim.NewRand(45)
	cv, mean := gapCV(m, r, 200_000)
	// Modulated arrivals must be over-dispersed relative to Poisson.
	if cv < 1.25 {
		t.Fatalf("MMPP interarrival CV = %v, want > 1.25 (burstier than Poisson)", cv)
	}
	if math.Abs(mean-1.0/wantRate)/(1.0/wantRate) > 0.10 {
		t.Fatalf("MMPP mean gap %vs, want %vs", mean, 1.0/wantRate)
	}
}

// TestOpenLoopChurn: a heavy-tailed population with Poisson flow
// arrivals must settle near Little's-law occupancy — live flows
// ≈ arrival rate × mean flow duration — with continuous churn, reaching
// thousands of concurrent flows.
func TestOpenLoopChurn(t *testing.T) {
	tb := NewTestbed(TestbedConfig{
		LinkRate: 100 * devices.Gbps, Cores: 8, Containers: 1,
		GRO: true, InnerGRO: true, Seed: 11,
	})
	until := 15 * sim.Millisecond
	flowsPerSec := 250_000.0
	cfg := OpenLoopConfig{
		Arrivals:   PoissonArrivals{Rate: flowsPerSec},
		FlowSize:   Pareto{Xm: 2, Alpha: 2}, // mean 4 packets
		PacketSize: 64,
		FlowRate:   400, // 2.5ms mean gap: flows live for milliseconds
		SendCores:  []int{2, 3},
		Ctr:        1,
	}
	ol := tb.StartOpenLoop(cfg, until)
	// E[duration] ≈ (E[size]-1)/FlowRate; Little's law gives the
	// expected live population once past the ramp.
	expLive := flowsPerSec * (4 - 1) / 400
	var samples []int
	for _, at := range []sim.Time{10, 12, 14} {
		tb.E.At(at*sim.Millisecond, func() { samples = append(samples, ol.Live()) })
	}
	tb.Run(until)
	for i, live := range samples {
		if float64(live) < 0.45*expLive || float64(live) > 1.8*expLive {
			t.Fatalf("sample %d: live=%d far from Little's-law expectation %.0f", i, live, expLive)
		}
	}
	if ol.Peak() < 1000 {
		t.Fatalf("peak live flows = %d, want thousands", ol.Peak())
	}
	if ol.Finished() < 1000 {
		t.Fatalf("finished flows = %d, want heavy churn", ol.Finished())
	}
	if ol.Sent() == 0 || ol.Started() == 0 {
		t.Fatal("population sent nothing")
	}
	if got := cfg.OfferedPPS(flowsPerSec); math.Abs(got-1_000_000) > 1 {
		t.Fatalf("OfferedPPS = %v, want 1e6", got)
	}
}
