package workload

import (
	"testing"

	falconcore "falcon/internal/core"
	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/socket"
)

func stdBed(t *testing.T, containers int) *Testbed {
	t.Helper()
	return NewTestbed(TestbedConfig{
		LinkRate: 100 * devices.Gbps, Cores: 12, Containers: containers,
		GRO: true, InnerGRO: true,
	})
}

func TestTestbedConstruction(t *testing.T) {
	tb := stdBed(t, 2)
	if len(tb.ClientCtrs) != 2 || len(tb.ServerCtrs) != 2 {
		t.Fatal("containers not created")
	}
	if tb.Client.LinkTo(ServerIP) == nil || tb.Server.LinkTo(ClientIP) == nil {
		t.Fatal("link not wired")
	}
	if tb.Net.KV.Len() != 4 {
		t.Fatalf("kv entries = %d, want 4", tb.Net.KV.Len())
	}
}

func TestModeString(t *testing.T) {
	if ModeHost.String() != "Host" || ModeCon.String() != "Con" || ModeFalcon.String() != "Falcon" {
		t.Fatal("mode names wrong")
	}
}

func TestFixedRateFlowDelivers(t *testing.T) {
	tb := stdBed(t, 1)
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 64, 2, 6, 1)
	f.SendAtRate(50_000, 20*sim.Millisecond)
	tb.Run(25 * sim.Millisecond)
	sent := f.Sent()
	if sent < 800 || sent > 1200 {
		t.Fatalf("sent %d packets at 50kpps over 20ms, want ~1000", sent)
	}
	if f.Sock.Delivered.Value() != sent {
		t.Fatalf("delivered %d of %d (underloaded: no drops expected)",
			f.Sock.Delivered.Value(), sent)
	}
	if f.Sock.OrderViols != 0 {
		t.Fatal("order violated")
	}
}

func TestFloodIsSenderBound(t *testing.T) {
	tb := stdBed(t, 1)
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 64, 2, 6, 1)
	f.Flood(10 * sim.Millisecond)
	tb.Run(15 * sim.Millisecond)
	if f.Sent() < 1000 {
		t.Fatalf("flood sent only %d packets", f.Sent())
	}
	// Flood from one client must keep the sender core busy.
	if u := tb.Client.M.Acct.Utilization(2); u < 0.5 {
		t.Fatalf("sender core utilization %.2f, want high", u)
	}
}

func TestStressFloodOverloadsServer(t *testing.T) {
	tb := stdBed(t, 1)
	sock, flows := tb.StressFlood(true, 3, 64, 6, 50*sim.Millisecond)
	if len(flows) != 3 {
		t.Fatalf("flows = %d", len(flows))
	}
	res := MeasureWindow(tb, []*socket.Socket{sock}, 10*sim.Millisecond, 30*sim.Millisecond)
	if res.Delivered == 0 {
		t.Fatal("stress delivered nothing")
	}
	// Three flooding clients must overload the serialized overlay path:
	// drops appear somewhere in the receive path.
	if res.NICDrops+res.BacklogDrops+res.SocketDrops == 0 {
		t.Fatal("no drops under 3-client flood (server not saturated)")
	}
	// The RPS core (1) should be pinned at ~100% softirq.
	if res.CoreBusy[1] < 0.9 {
		t.Fatalf("RPS core busy %.2f, want ~1 (serialized softirqs)", res.CoreBusy[1])
	}
}

func TestMeasureWindow(t *testing.T) {
	tb := stdBed(t, 1)
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 64, 2, 6, 1)
	f.SendAtRate(100_000, 60*sim.Millisecond)
	res := MeasureWindow(tb, []*socket.Socket{f.Sock}, 10*sim.Millisecond, 40*sim.Millisecond)
	if res.PPS < 80_000 || res.PPS > 120_000 {
		t.Fatalf("measured %.0f pps, want ~100k", res.PPS)
	}
	if res.Latency.Count == 0 || res.Latency.P99 <= 0 {
		t.Fatal("latency summary empty")
	}
	if res.SystemUtilization() <= 0 {
		t.Fatal("no utilization measured")
	}
	if res.NetRX == 0 {
		t.Fatal("no NET_RX counted in window")
	}
}

func TestStopHaltsFlow(t *testing.T) {
	tb := stdBed(t, 1)
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 64, 2, 6, 1)
	f.SendAtRate(100_000, sim.Second)
	tb.Run(5 * sim.Millisecond)
	f.Stop()
	sent := f.Sent()
	tb.Run(20 * sim.Millisecond)
	if f.Sent() != sent {
		t.Fatal("sender continued after Stop")
	}
}

func TestFalconTestbedEndToEnd(t *testing.T) {
	tb := stdBed(t, 1)
	tb.EnableFalconOnServer(falconcore.DefaultConfig([]int{3, 4, 5}))
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 64, 2, 6, 1)
	f.SendAtRate(100_000, 30*sim.Millisecond)
	tb.Run(40 * sim.Millisecond)
	if f.Sock.Delivered.Value() == 0 || f.Sock.OrderViols != 0 {
		t.Fatalf("falcon testbed broken: delivered=%d viols=%d",
			f.Sock.Delivered.Value(), f.Sock.OrderViols)
	}
}

func TestContainerIPDistinct(t *testing.T) {
	seen := map[string]bool{}
	for side := 0; side < 2; side++ {
		for i := 1; i <= 40; i++ {
			ip := ContainerIP(side, i).String()
			if seen[ip] {
				t.Fatalf("duplicate container IP %s", ip)
			}
			seen[ip] = true
		}
	}
}

func TestMTUModeFragmentsAndReassembles(t *testing.T) {
	tb := NewTestbed(TestbedConfig{
		LinkRate: 100 * devices.Gbps, Cores: 12, Containers: 1,
		GRO: true, InnerGRO: true, MTU: 1500,
	})
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 9000, 2, 6, 1)
	f.SendAtRate(5_000, 20*sim.Millisecond)
	tb.Run(30 * sim.Millisecond)
	sent := f.Sent()
	if sent == 0 || f.Sock.Delivered.Value() != sent {
		t.Fatalf("delivered %d of %d datagrams over MTU 1500",
			f.Sock.Delivered.Value(), sent)
	}
	// The wire must have carried >1 frame per datagram.
	if tb.Client.LinkTo(ServerIP).Sent.Value() <= sent {
		t.Fatal("no fragmentation happened on the wire")
	}
	if tb.Server.Rx.Reasm == nil || tb.Server.Rx.Reasm.Reassembled == 0 {
		t.Fatal("reassembler idle")
	}
	if f.Sock.OrderViols != 0 {
		t.Fatal("order violated in MTU mode")
	}
}

func TestMTUModeSmallPacketsUntouched(t *testing.T) {
	tb := NewTestbed(TestbedConfig{
		LinkRate: 100 * devices.Gbps, Cores: 12, Containers: 1,
		GRO: true, InnerGRO: true, MTU: 1500,
	})
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 512, 2, 6, 1)
	f.SendAtRate(10_000, 10*sim.Millisecond)
	tb.Run(20 * sim.Millisecond)
	if f.Sock.Delivered.Value() != f.Sent() {
		t.Fatal("small packets lost in MTU mode")
	}
	if tb.Client.LinkTo(ServerIP).Sent.Value() != f.Sent() {
		t.Fatal("small packets fragmented unnecessarily")
	}
}

func TestIMIXAverageSize(t *testing.T) {
	avg := AverageSize(SimpleIMIX)
	if avg < 300 || avg > 350 {
		t.Fatalf("IMIX average = %.1f, want ~332", avg)
	}
	if AverageSize(nil) != 0 {
		t.Fatal("empty mix average != 0")
	}
}

func TestIMIXFlowMixesSizes(t *testing.T) {
	tb := stdBed(t, 1)
	f := tb.NewUDPFlow(tb.ClientCtrs[0], tb.ServerCtrs[0].IP, 7000, 5001, 0, 2, 6, 1)
	f.SendIMIXAtRate(SimpleIMIX, 100_000, 20*sim.Millisecond)
	tb.Run(30 * sim.Millisecond)
	if f.Sock.Delivered.Value() != f.Sent() {
		t.Fatalf("delivered %d of %d", f.Sock.Delivered.Value(), f.Sent())
	}
	// Mean delivered frame size (headers add 42B) must track the mix.
	meanFrame := float64(f.Sock.Bytes.Value()) / float64(f.Sock.Delivered.Value())
	avg := AverageSize(SimpleIMIX) + 42
	if meanFrame < avg*0.85 || meanFrame > avg*1.15 {
		t.Fatalf("mean frame %.0f, want ~%.0f", meanFrame, avg)
	}
	if f.Sock.OrderViols != 0 {
		t.Fatal("order violated")
	}
}
