package workload

import (
	"bytes"
	"testing"

	"falcon/internal/audit"
	"falcon/internal/devices"
	"falcon/internal/pcap"
	"falcon/internal/proto"
	"falcon/internal/sim"
)

// buildTrace synthesizes a deterministic capture: 400 UDP records plus
// a few TCP records across a handful of 5-tuples, written through the
// real pcap Writer and read back through the real Reader, so the replay
// tests exercise the full trace pipeline.
func buildTrace(t *testing.T) []pcap.Record {
	t.Helper()
	var buf bytes.Buffer
	pw, err := pcap.NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRand(99)
	base := sim.Second
	for i := 0; i < 400; i++ {
		at := base + sim.Time(i)*20*sim.Microsecond + sim.Time(r.Intn(8))*sim.Microsecond
		srcIP := proto.IP4(172, 16, 0, byte(1+r.Intn(6)))
		dstIP := proto.IP4(172, 16, 1, byte(1+r.Intn(3)))
		srcPort := uint16(30_000 + r.Intn(10))
		size := 64 + r.Intn(1200)
		var frame []byte
		if i%10 == 9 {
			frame = proto.BuildTCPFrame(proto.MACFromUint64(3), proto.MACFromUint64(4),
				srcIP, dstIP, proto.TCPHdr{SrcPort: srcPort, DstPort: 443}, uint16(i),
				make([]byte, size))
		} else {
			frame = proto.BuildUDPFrame(proto.MACFromUint64(3), proto.MACFromUint64(4),
				srcIP, dstIP, srcPort, 53, uint16(i), make([]byte, size))
		}
		if err := pw.WriteFrame(at, frame); err != nil {
			t.Fatal(err)
		}
	}
	// One unparsable runt: the replay must skip it, not choke on it.
	if err := pw.WriteFrame(base, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	recs, err := pcap.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// runReplay replays the synthetic trace on the two-host overlay testbed
// and returns a fingerprint of everything measurable, mirroring
// runJittery. shards 0 = serial engine, -1 = the CLI's auto sentinel.
func runReplay(t *testing.T, shards int, withAudit bool) []uint64 {
	t.Helper()
	tb := NewTestbed(TestbedConfig{
		LinkRate: 10 * devices.Gbps, Cores: 8, Containers: 1,
		RSSCores: []int{0}, RPSCores: []int{1},
		GRO: true, InnerGRO: true, Seed: 7, Shards: shards,
	})
	var a *audit.Auditor
	if withAudit {
		a = tb.EnableAudit(audit.Config{OnViolation: func(v *audit.Violation) {
			t.Errorf("audit violation: %v", v)
		}})
	}
	rp := tb.StartReplay(ReplayConfig{
		Records: buildTrace(t),
		Warp:    1.25, // 8ms of trace replayed in 6.4ms
		Start:   500 * sim.Microsecond,
		Flows:   6,
		Ctr:     1,
		AppCore: 2,
		SendCores: []int{
			2, 3,
		},
	})
	res := MeasureWindow(tb, rp.Socks, 400*sim.Microsecond, 7*sim.Millisecond)
	link := tb.Client.LinkTo(ServerIP)
	if withAudit {
		deadline := 9 * sim.Millisecond
		tb.Run(deadline)
		for i := 0; i < 10 && a.LiveCount() > 0; i++ {
			deadline += 2 * sim.Millisecond
			tb.Run(deadline)
		}
		for _, v := range a.Final() {
			t.Errorf("teardown violation: %v", v)
		}
	}
	return []uint64{
		res.Delivered, uint64(res.Latency.P50), uint64(res.Latency.P99),
		uint64(res.Latency.P999), uint64(res.Latency.Max),
		res.NICDrops, res.BacklogDrops, res.SocketDrops,
		link.Sent.Value(), link.Lost.Value(), link.Dropped.Value(),
		rp.Sent(), rp.Scheduled, rp.Skipped,
	}
}

// TestReplayDeterminism: two identical replays produce identical
// fingerprints, every parseable record is scheduled, and the runt is
// skipped.
func TestReplayDeterminism(t *testing.T) {
	a := runReplay(t, 0, false)
	b := runReplay(t, 0, false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("field %d differs across identical runs: %d != %d", i, a[i], b[i])
		}
	}
	scheduled, skipped := a[12], a[13]
	if scheduled != 400 || skipped != 1 {
		t.Fatalf("scheduled=%d skipped=%d, want 400/1", scheduled, skipped)
	}
	if a[11] != 400 {
		t.Fatalf("sent=%d, want all scheduled records sent", a[11])
	}
	if a[0] == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestReplayShardInvariance: the trace replay must be byte-identical
// across -shards 1, 4, and auto, with and without the audit harness —
// the same guarantee the existing shard-invariance suites prove for the
// synthetic generators.
func TestReplayShardInvariance(t *testing.T) {
	want := runReplay(t, 1, false)
	for _, shards := range []int{4, -1} {
		for _, withAudit := range []bool{false, true} {
			got := runReplay(t, shards, withAudit)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shards=%d audit=%v field %d: %d != serial %d",
						shards, withAudit, i, got[i], want[i])
				}
			}
		}
	}
	// Audited serial must match plain serial too.
	got := runReplay(t, 1, true)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("audited serial field %d: %d != plain %d", i, got[i], want[i])
		}
	}
}
