package workload

import (
	"falcon/internal/overlay"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/socket"
)

// UDPFlow is one sockperf-style UDP sender/receiver pair.
type UDPFlow struct {
	tb *Testbed

	// FromCtr selects overlay mode (nil = host networking).
	FromCtr *overlay.Container
	DstIP   proto.IPv4Addr
	// SrcPort/DstPort form the flow identity; Size is the payload bytes.
	SrcPort, DstPort uint16
	Size             int
	// SendCore is the client core the sending task runs on; AppCore the
	// server core the receiving application is pinned to.
	SendCore, AppCore int
	// FlowID tags packets for order verification.
	FlowID uint64

	// Sock is the receiving socket (created by Open).
	Sock *socket.Socket

	seq     uint64
	stopped bool
	rate    float64 // pps; 0 = flood
	rng     *sim.Rand
}

// Open binds the receiving socket on the server.
func (f *UDPFlow) Open() *UDPFlow {
	f.Sock = f.tb.Server.OpenUDP(f.DstIP, f.DstPort, f.AppCore)
	return f
}

// NewUDPFlow builds (but does not start) a flow on the testbed. ctr may
// be nil for host networking; dst must match (container IP or ServerIP).
func (tb *Testbed) NewUDPFlow(ctr *overlay.Container, dst proto.IPv4Addr, srcPort, dstPort uint16, size, sendCore, appCore int, flowID uint64) *UDPFlow {
	f := &UDPFlow{
		tb: tb, FromCtr: ctr, DstIP: dst,
		SrcPort: srcPort, DstPort: dstPort, Size: size,
		SendCore: sendCore, AppCore: appCore, FlowID: flowID,
		rng: tb.E.Rand().Fork(),
	}
	return f.Open()
}

// Clone returns a second sender for the same flow (same 5-tuple and
// receiving socket) running on another client core — how multiple
// sender threads press a single flow without rebinding the port.
func (f *UDPFlow) Clone(sendCore int, flowID uint64) *UDPFlow {
	c := *f
	c.SendCore = sendCore
	c.FlowID = flowID // distinct id keeps per-sender order checks valid
	c.rng = f.tb.E.Rand().Fork()
	c.seq = 0
	return &c
}

// Stop halts the sender after in-flight work completes.
func (f *UDPFlow) Stop() { f.stopped = true }

// Sent returns how many packets the sender has emitted.
func (f *UDPFlow) Sent() uint64 { return f.seq }

// SetRate changes a running fixed-rate sender's rate (the hotspot
// generator uses this to create sudden intensity shifts, Fig. 16).
func (f *UDPFlow) SetRate(pps float64) { f.rate = pps }

func (f *UDPFlow) send(done func(ok bool)) {
	f.seq++
	f.tb.Client.SendUDP(overlay.SendParams{
		From: f.FromCtr, SrcPort: f.SrcPort, DstIP: f.DstIP, DstPort: f.DstPort,
		Payload: f.Size, Core: f.SendCore, FlowID: f.FlowID, Seq: f.seq,
		Done: done,
	})
}

// Flood sends back to back until `until`: each transmission starts when
// the previous one finishes, so the offered load is bounded only by the
// sender core — the sockperf stress shape (the paper uses 3 such
// clients to overload a single UDP server port). A sub-microsecond
// random gap between sends models real sender jitter; without it,
// identical senders phase-lock against full queues and deterministic
// drop patterns starve individual flows.
func (f *UDPFlow) Flood(until sim.Time) {
	// next and fire are allocated once and reference each other; the
	// per-packet schedule reuses fire instead of wrapping a fresh
	// closure around every send.
	var next func(bool)
	fire := func() { f.send(next) }
	next = func(bool) {
		if f.stopped || f.tb.Client.E.Now() >= until {
			return
		}
		f.tb.Client.E.After(sim.Time(f.rng.Intn(200)), fire)
	}
	f.send(next)
}

// SendAtRate emits packets at the given average rate with Poisson
// arrivals until `until` (the underloaded/fixed-rate tests). The rate
// can be changed live via SetRate.
func (f *UDPFlow) SendAtRate(pps float64, until sim.Time) {
	f.rate = pps
	var tick func()
	tick = func() {
		if f.stopped || f.tb.Client.E.Now() >= until || f.rate <= 0 {
			return
		}
		f.send(nil)
		gap := sim.Time(f.rng.ExpFloat64() * 1e9 / f.rate)
		if gap < 1 {
			gap = 1
		}
		f.tb.Client.E.After(gap, tick)
	}
	tick()
}

// StressFlood launches n flooding clients on distinct cores, all
// targeting the same server port — the paper's "3 sockperf clients to
// overload a UDP server" configuration. Returns the shared receiving
// socket.
func (tb *Testbed) StressFlood(overlayMode bool, clients, size, appCore int, until sim.Time) (*socket.Socket, []*UDPFlow) {
	dst := ServerIP
	var flows []*UDPFlow
	var sock *socket.Socket
	for i := 0; i < clients; i++ {
		var ctr *overlay.Container
		if overlayMode {
			ctr = tb.ClientCtrs[0]
			dst = tb.ServerCtrs[0].IP
		}
		fl := &UDPFlow{
			tb: tb, FromCtr: ctr, DstIP: dst,
			SrcPort: uint16(7000 + i), DstPort: 5001, Size: size,
			SendCore: 2 + i, AppCore: appCore, FlowID: uint64(i + 1),
			rng: tb.E.Rand().Fork(),
		}
		if sock == nil {
			fl.Open()
			sock = fl.Sock
		} else {
			fl.Sock = sock
		}
		fl.Flood(until)
		flows = append(flows, fl)
	}
	return sock, flows
}
