package workload

import (
	"falcon/internal/sim"
	"falcon/internal/socket"
	"falcon/internal/stats"
)

// Result is one measured window.
type Result struct {
	Window    sim.Time
	Delivered uint64
	PPS       float64
	Latency   stats.Summary
	// LatencyHist is the merged per-socket latency histogram behind
	// Latency, kept so callers can merge windows into aggregate tail
	// curves (p99.9 needs the buckets, not the summary).
	LatencyHist *stats.Histogram

	// Drop accounting on the server side.
	NICDrops, BacklogDrops, SocketDrops uint64

	// CoreBusy is per-core utilization [0,1] on the server during the
	// window; CoreSoftirq/CoreTask the context shares.
	CoreBusy, CoreSoftirq, CoreTask []float64

	// IRQ counts on the server during the window.
	HardIRQs, NetRX, RES uint64
}

// GbpsFor converts the packet rate to goodput for a payload size.
func (r Result) GbpsFor(payloadBytes int) float64 {
	return r.PPS * float64(payloadBytes) * 8 / 1e9
}

// MeasureWindow advances to `warmup`, resets all measurement state, runs
// one window, and collects server-side metrics plus the union of the
// given sockets' delivery stats.
func MeasureWindow(tb *Testbed, socks []*socket.Socket, warmup, window sim.Time) Result {
	tb.Run(warmup)
	tb.Server.ResetMeasurement()
	tb.Client.ResetMeasurement()
	if tb.Spare != nil {
		tb.Spare.ResetMeasurement()
	}
	for _, sk := range socks {
		sk.ResetMeasurement()
	}
	tb.Run(warmup + window)

	res := Result{Window: window}
	lat := stats.NewHistogram()
	for _, sk := range socks {
		res.Delivered += sk.Delivered.Value()
		res.SocketDrops += sk.SocketDrops.Value()
		lat.Merge(sk.Latency)
	}
	res.PPS = stats.Rate(res.Delivered, int64(window))
	res.Latency = lat.Summarize()
	res.LatencyHist = lat

	srv := tb.Server
	res.NICDrops = srv.NIC.Drops.Value()
	res.BacklogDrops = srv.St.Drops.Value()
	n := srv.M.NumCores()
	res.CoreBusy = make([]float64, n)
	res.CoreSoftirq = make([]float64, n)
	res.CoreTask = make([]float64, n)
	for c := 0; c < n; c++ {
		res.CoreBusy[c] = srv.M.Acct.Utilization(c)
		res.CoreSoftirq[c] = srv.M.Acct.ContextShare(c, stats.CtxSoftIRQ)
		res.CoreTask[c] = srv.M.Acct.ContextShare(c, stats.CtxTask)
	}
	res.HardIRQs = srv.M.IRQ.Total(stats.IRQHard)
	res.NetRX = srv.M.IRQ.Total(stats.IRQNetRX)
	res.RES = srv.M.IRQ.Total(stats.IRQRES)
	return res
}

// SystemUtilization returns the mean busy fraction across server cores.
func (r Result) SystemUtilization() float64 {
	if len(r.CoreBusy) == 0 {
		return 0
	}
	s := 0.0
	for _, u := range r.CoreBusy {
		s += u
	}
	return s / float64(len(r.CoreBusy))
}
