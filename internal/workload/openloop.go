package workload

import (
	"math"

	"falcon/internal/overlay"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/socket"
)

// This file is the open-loop side of the workload package. The
// closed-loop generators (Flood, StressFlood, the RPC apps) adapt their
// send schedule to the datapath — a slow server throttles the offered
// load. Open-loop traffic does not: flows arrive by an external process,
// each carries a size drawn from a heavy-tailed distribution, and
// packets go out on the flows' own clocks regardless of how the network
// is coping. That is the regime where tail latency means something —
// queues grow because arrivals do not wait for service — and it is how
// the paper's memcached-style percentile claims have to be measured.

// Sampler draws positive values from a distribution. All randomness
// flows through the caller's sim.Rand, so draws are deterministic and
// shard-invariant.
type Sampler interface {
	Sample(r *sim.Rand) float64
	// Mean returns the analytic expectation (used to convert a target
	// offered load into a flow arrival rate).
	Mean() float64
}

// Pareto is the classic heavy-tailed size distribution:
// P(X > x) = (Xm/x)^Alpha for x >= Xm. Alpha <= 1 has infinite mean;
// the generators use Alpha in (1, 3] so offered load stays defined
// while the tail stays heavy.
type Pareto struct {
	Xm, Alpha float64
}

// Sample draws by inversion: Xm / U^(1/Alpha).
func (p Pareto) Sample(r *sim.Rand) float64 {
	for {
		u := 1 - r.Float64() // (0, 1]
		if u > 0 {
			return p.Xm / math.Pow(u, 1/p.Alpha)
		}
	}
}

// Mean returns Alpha·Xm/(Alpha-1); +Inf when Alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Lognormal: ln X ~ N(Mu, Sigma²). Moderate Sigma gives the skewed,
// long-tailed flow-size mixes measured in datacenter traces.
type Lognormal struct {
	Mu, Sigma float64
}

// Sample draws exp(Mu + Sigma·Z) with Z standard normal.
func (l Lognormal) Sample(r *sim.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean returns exp(Mu + Sigma²/2).
func (l Lognormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// LognormalWithMean builds a Lognormal with the given expectation and
// shape: Mu = ln(mean) - Sigma²/2.
func LognormalWithMean(mean, sigma float64) Lognormal {
	return Lognormal{Mu: math.Log(mean) - sigma*sigma/2, Sigma: sigma}
}

// Arrivals produces interarrival gaps for an open-loop arrival process.
// Implementations may be stateful (MMPP tracks its modulating chain);
// each generator owns one instance, never shared across RNG streams.
type Arrivals interface {
	NextGap(r *sim.Rand) sim.Time
}

// PoissonArrivals is the memoryless baseline: exponential gaps at Rate
// arrivals per second.
type PoissonArrivals struct {
	Rate float64
}

// NextGap draws one exponential interarrival gap.
func (p PoissonArrivals) NextGap(r *sim.Rand) sim.Time {
	g := sim.Time(r.ExpFloat64() * 1e9 / p.Rate)
	if g < 1 {
		g = 1
	}
	return g
}

// MMPP2 is a two-state Markov-modulated Poisson process: arrivals are
// Poisson at CalmRate or BurstRate per second, with exponentially
// distributed sojourns in each state. The result is bursty — the
// interarrival CV exceeds 1 — which is what stresses queues and tails
// in a way plain Poisson traffic cannot.
type MMPP2 struct {
	CalmRate, BurstRate float64
	// MeanCalm/MeanBurst are the expected sojourn times per state.
	MeanCalm, MeanBurst sim.Time

	started bool
	burst   bool
	left    sim.Time // remaining sojourn in the current state
}

// MeanRate returns the long-run arrival rate (sojourn-weighted).
func (m *MMPP2) MeanRate() float64 {
	tc, tb := float64(m.MeanCalm), float64(m.MeanBurst)
	return (m.CalmRate*tc + m.BurstRate*tb) / (tc + tb)
}

func (m *MMPP2) sojourn(r *sim.Rand) {
	mean := m.MeanCalm
	if m.burst {
		mean = m.MeanBurst
	}
	m.left = sim.Time(r.ExpFloat64() * float64(mean))
	if m.left < 1 {
		m.left = 1
	}
}

// NextGap advances the modulating chain and draws the gap to the next
// arrival. A gap can span state switches: the exponential remainder is
// redrawn at the new state's rate, which is exactly the competing-clock
// construction of an MMPP.
func (m *MMPP2) NextGap(r *sim.Rand) sim.Time {
	if !m.started {
		m.started = true
		m.burst = false
		m.sojourn(r)
	}
	var total sim.Time
	for {
		rate := m.CalmRate
		if m.burst {
			rate = m.BurstRate
		}
		gap := sim.Time(r.ExpFloat64() * 1e9 / rate)
		if gap < 1 {
			gap = 1
		}
		if gap <= m.left {
			m.left -= gap
			total += gap
			return total
		}
		// The state switches before the next arrival: consume the
		// sojourn remainder and keep drawing at the new rate.
		total += m.left
		m.burst = !m.burst
		m.sojourn(r)
	}
}

// OpenLoopConfig describes a heavy-tailed open-loop flow population:
// flows arrive by Arrivals, each draws a size (packets) from FlowSize,
// and sends its packets at FlowRate with Poisson pacing. Thousands of
// short flows churn through the population during a run.
type OpenLoopConfig struct {
	Arrivals Arrivals
	FlowSize Sampler
	// PacketSize is the UDP payload per packet (bytes).
	PacketSize int
	// FlowRate is each live flow's send rate in packets/s.
	FlowRate float64
	// Ports spreads the population across that many server sockets
	// (BasePort..BasePort+Ports-1); flows map to ports by flow ID.
	Ports    int
	BasePort uint16
	// SendCores are the client cores flows rotate over; AppCore is the
	// server core the receiving sockets pin to.
	SendCores []int
	AppCore   int
	// Ctr selects the overlay container pair (1-based); 0 sends over
	// the host network.
	Ctr int
	// BaseFlowID offsets packet flow IDs so the population cannot
	// collide with explicitly configured flows.
	BaseFlowID uint64
}

func (cfg OpenLoopConfig) withDefaults() OpenLoopConfig {
	if cfg.PacketSize == 0 {
		cfg.PacketSize = 256
	}
	if cfg.FlowRate == 0 {
		cfg.FlowRate = 50_000
	}
	if cfg.Ports == 0 {
		cfg.Ports = 1
	}
	if cfg.BasePort == 0 {
		cfg.BasePort = 6000
	}
	if len(cfg.SendCores) == 0 {
		cfg.SendCores = []int{2}
	}
	if cfg.BaseFlowID == 0 {
		cfg.BaseFlowID = 10_000
	}
	return cfg
}

// OfferedPPS returns the population's long-run offered packet rate
// λ_flows × E[size] for the given flow arrival rate.
func (cfg OpenLoopConfig) OfferedPPS(flowsPerSec float64) float64 {
	return flowsPerSec * cfg.FlowSize.Mean()
}

// OpenLoop is a running open-loop population.
type OpenLoop struct {
	tb  *Testbed
	cfg OpenLoopConfig
	// Socks are the receiving sockets (one per port).
	Socks []*socket.Socket

	from  *overlay.Container
	dstIP proto.IPv4Addr
	rng   *sim.Rand
	until sim.Time

	nextID  uint64
	live    int
	peak    int
	started uint64
	done    uint64
	sent    uint64
	stopped bool
}

// StartOpenLoop opens the population's sockets and starts the arrival
// process. Arrivals stop at `until`; flows already live also stop
// sending then, so the run drains promptly even when the size
// distribution produced an enormous flow.
func (tb *Testbed) StartOpenLoop(cfg OpenLoopConfig, until sim.Time) *OpenLoop {
	cfg = cfg.withDefaults()
	ol := &OpenLoop{
		tb: tb, cfg: cfg, rng: tb.E.Rand().Fork(), until: until,
		dstIP: ServerIP,
	}
	if cfg.Ctr > 0 {
		ol.from = tb.ClientCtrs[cfg.Ctr-1]
		ol.dstIP = tb.ServerCtrs[cfg.Ctr-1].IP
	}
	for i := 0; i < cfg.Ports; i++ {
		ol.Socks = append(ol.Socks,
			tb.Server.OpenUDP(ol.dstIP, cfg.BasePort+uint16(i), cfg.AppCore))
	}
	ol.arrive()
	return ol
}

// Stop halts arrivals and live flows after in-flight work completes.
func (ol *OpenLoop) Stop() { ol.stopped = true }

// Sent returns packets emitted so far; Live the current live-flow
// count; Peak its high-water mark; Started/Finished the flow churn.
func (ol *OpenLoop) Sent() uint64     { return ol.sent }
func (ol *OpenLoop) Live() int        { return ol.live }
func (ol *OpenLoop) Peak() int        { return ol.peak }
func (ol *OpenLoop) Started() uint64  { return ol.started }
func (ol *OpenLoop) Finished() uint64 { return ol.done }

// arrive launches one flow and schedules the next arrival.
func (ol *OpenLoop) arrive() {
	if ol.stopped || ol.tb.Client.E.Now() >= ol.until {
		return
	}
	size := int(ol.cfg.FlowSize.Sample(ol.rng))
	if size < 1 {
		size = 1
	}
	id := ol.nextID
	ol.nextID++
	f := &olFlow{
		ol:   ol,
		id:   ol.cfg.BaseFlowID + id,
		size: size,
		port: ol.cfg.BasePort + uint16(id%uint64(ol.cfg.Ports)),
		// Source ports rotate over a wide range so the population
		// exercises many distinct 5-tuples (RSS spread, flow-cache
		// population) without ever colliding with a receive port.
		srcPort: uint16(20_000 + id%20_000),
		core:    ol.cfg.SendCores[int(id)%len(ol.cfg.SendCores)],
		rng:     ol.rng.Fork(),
	}
	ol.live++
	ol.started++
	if ol.live > ol.peak {
		ol.peak = ol.live
	}
	f.tick()
	ol.tb.Client.E.After(ol.cfg.Arrivals.NextGap(ol.rng), ol.arrive)
}

// olFlow is one live open-loop flow.
type olFlow struct {
	ol      *OpenLoop
	id      uint64
	seq     uint64
	size    int
	port    uint16
	srcPort uint16
	core    int
	rng     *sim.Rand
}

// tick sends the flow's next packet and schedules the one after, until
// the drawn size is exhausted or the population halts.
func (f *olFlow) tick() {
	ol := f.ol
	if ol.stopped || ol.tb.Client.E.Now() >= ol.until {
		ol.live--
		ol.done++
		return
	}
	f.seq++
	ol.sent++
	ol.tb.Client.SendUDP(overlay.SendParams{
		From: ol.from, SrcPort: f.srcPort, DstIP: ol.dstIP, DstPort: f.port,
		Payload: ol.cfg.PacketSize, Core: f.core, FlowID: f.id, Seq: f.seq,
	})
	if int(f.seq) >= f.size {
		ol.live--
		ol.done++
		return
	}
	gap := sim.Time(f.rng.ExpFloat64() * 1e9 / ol.cfg.FlowRate)
	if gap < 1 {
		gap = 1
	}
	ol.tb.Client.E.After(gap, f.tick)
}
