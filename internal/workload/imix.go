package workload

import "falcon/internal/sim"

// IMIXEntry is one component of a packet-size mixture.
type IMIXEntry struct {
	Size   int
	Weight float64
}

// SimpleIMIX is the classic Internet-mix distribution used by network
// equipment benchmarks: 7:4:1 of small, medium and near-MTU packets
// (weights normalized). Real application traffic (paper Fig. 6's
// memcached observation) is a size mixture, not a single size; IMIX
// flows let micro-benchmarks approximate that.
var SimpleIMIX = []IMIXEntry{
	{Size: 40, Weight: 7.0 / 12},
	{Size: 576, Weight: 4.0 / 12},
	{Size: 1400, Weight: 1.0 / 12},
}

// AverageSize returns the weighted mean of a mixture.
func AverageSize(mix []IMIXEntry) float64 {
	total, wsum := 0.0, 0.0
	for _, e := range mix {
		total += float64(e.Size) * e.Weight
		wsum += e.Weight
	}
	if wsum == 0 {
		return 0
	}
	return total / wsum
}

// SendIMIXAtRate emits packets whose sizes follow the mixture, at the
// given average rate with Poisson arrivals, until the absolute time.
func (f *UDPFlow) SendIMIXAtRate(mix []IMIXEntry, pps float64, until sim.Time) {
	f.rate = pps
	wsum := 0.0
	for _, e := range mix {
		wsum += e.Weight
	}
	pick := func() int {
		r := f.rng.Float64() * wsum
		acc := 0.0
		for _, e := range mix {
			acc += e.Weight
			if r < acc {
				return e.Size
			}
		}
		return mix[len(mix)-1].Size
	}
	var tick func()
	tick = func() {
		if f.stopped || f.tb.Client.E.Now() >= until || f.rate <= 0 {
			return
		}
		f.Size = pick()
		f.send(nil)
		gap := sim.Time(f.rng.ExpFloat64() * 1e9 / f.rate)
		if gap < 1 {
			gap = 1
		}
		f.tb.Client.E.After(gap, tick)
	}
	tick()
}
