// Package apps implements the paper's two real-world applications on top
// of the overlay: CloudSuite-style Data Caching (a memcached server and
// closed-loop clients replaying a GET/SET mix with 550-byte objects,
// Fig. 18) and Web Serving (a three-tier nginx/memcached/mysql stack
// serving an Elgg-like social-network operation mix to 200 users,
// Fig. 17). Both are built on a small UDP request/response RPC layer:
// every request and response traverses the full overlay datapath, so
// application latency directly reflects softirq behaviour.
package apps

import (
	"falcon/internal/overlay"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/socket"
	"falcon/internal/stats"
)

// Request is what an RPC server handler receives.
type Request struct {
	// ConnID and Seq identify the request for correlation.
	ConnID uint64
	Seq    uint64
	// Size is the request payload length.
	Size int
	// SrcIP and SrcPort identify the requester for the response.
	SrcIP   proto.IPv4Addr
	SrcPort uint16
}

// Server is a UDP RPC server bound to a container port. The handler runs
// in the application's task context; calling respond sends the reply
// through the full transmit path.
type Server struct {
	Host *overlay.Host
	Ctr  *overlay.Container // nil = host networking
	Port uint16

	// MTU, when positive, fragments responses larger than it into
	// MTU-sized frames (a web page is many wire packets). The final
	// fragment carries the request's sequence number, so the client's
	// round trip covers the whole response (fragments of one flow
	// deliver in order).
	MTU int

	// Sock is the receiving socket (exposed for measurements).
	Sock *socket.Socket

	// Requests counts handled requests.
	Requests stats.Counter
}

// ServeFunc handles one request; it must eventually call respond exactly
// once (possibly asynchronously, e.g. after backend calls complete).
type ServeFunc func(req Request, respond func(respSize int))

// NewServer binds an RPC server. appCore pins the server thread;
// appWork is per-request CPU beyond the base application cost.
func NewServer(h *overlay.Host, ctr *overlay.Container, port uint16, appCore int, appWork sim.Time, handle ServeFunc) *Server {
	srv := &Server{Host: h, Ctr: ctr, Port: port}
	ip := h.IP
	if ctr != nil {
		ip = ctr.IP
	}
	srv.Sock = h.OpenUDP(ip, port, appCore)
	srv.Sock.AppWork = appWork
	srv.Sock.OnDeliver = func(s *skb.SKB) {
		f, err := proto.ParseFrame(s.Data)
		if err != nil {
			return
		}
		srv.Requests.Inc()
		req := Request{
			ConnID:  s.FlowID,
			Seq:     s.Seq,
			Size:    len(f.Payload),
			SrcIP:   f.IP.Src,
			SrcPort: f.SrcPort(),
		}
		handle(req, func(respSize int) {
			send := func(size int, seq uint64) {
				h.SendUDP(overlay.SendParams{
					From: ctr, SrcPort: port,
					DstIP: req.SrcIP, DstPort: req.SrcPort,
					Payload: size, Core: appCore,
					FlowID: req.ConnID, Seq: seq,
				})
			}
			if srv.MTU > 0 {
				for respSize > srv.MTU {
					send(srv.MTU, 0) // filler fragments: seq 0 is ignored
					respSize -= srv.MTU
				}
			}
			send(respSize, req.Seq)
		})
	}
	return srv
}

// Conn is one closed-loop RPC client connection: it keeps exactly one
// request outstanding, recording round-trip latency per response, and
// issues the next request after an exponentially distributed think time.
type Conn struct {
	ID   uint64
	host *overlay.Host
	ctr  *overlay.Container
	port uint16 // local port (also the demux key for responses)

	dstIP   proto.IPv4Addr
	dstPort uint16
	core    int // client-side core for both sending and receiving

	// NextRequest picks the next request's payload size and expected
	// response handling; nil uses FixedRequest semantics.
	nextReq func() int

	think   sim.Time
	rng     *sim.Rand
	e       *sim.Engine
	until   sim.Time
	stopped bool

	seq      uint64
	sentAt   sim.Time
	inflight bool

	// RTT is the per-response round-trip histogram; Completed counts
	// responses received.
	RTT       *stats.Histogram
	Completed stats.Counter
	// Retries counts request retransmissions after the retry timeout
	// (requests or responses dropped under overload would otherwise
	// deadlock the closed loop).
	Retries stats.Counter
	// OnResponse, if set, runs when a response arrives (before the next
	// request is scheduled).
	OnResponse func(rtt sim.Time)
}

// NewConn builds a closed-loop connection. reqSize is called per request
// for the payload size; think is the mean think time between responses
// and next requests.
func NewConn(id uint64, h *overlay.Host, ctr *overlay.Container, localPort uint16, dstIP proto.IPv4Addr, dstPort uint16, core int, reqSize func() int, think sim.Time) *Conn {
	c := &Conn{
		ID: id, host: h, ctr: ctr, port: localPort,
		dstIP: dstIP, dstPort: dstPort, core: core,
		nextReq: reqSize, think: think,
		rng: h.Net.E.Rand().Fork(), e: h.E,
		RTT: stats.NewHistogram(),
	}
	ip := h.IP
	if ctr != nil {
		ip = ctr.IP
	}
	sock := h.OpenUDP(ip, localPort, core)
	sock.OnDeliver = c.onResponse
	return c
}

// Start begins the request loop until the given absolute time.
func (c *Conn) Start(until sim.Time) {
	c.until = until
	c.sendNext()
}

// Stop halts the loop.
func (c *Conn) Stop() { c.stopped = true }

// retryTimeout bounds how long a request stays unanswered before the
// client resends it (requests are idempotent reads/stores).
const retryTimeout = 30 * sim.Millisecond

func (c *Conn) sendNext() {
	if c.stopped || c.e.Now() >= c.until || c.inflight {
		return
	}
	c.inflight = true
	c.seq++
	c.transmit(c.nextReq())
}

func (c *Conn) transmit(size int) {
	c.sentAt = c.e.Now()
	seq := c.seq
	c.host.SendUDP(overlay.SendParams{
		From: c.ctr, SrcPort: c.port,
		DstIP: c.dstIP, DstPort: c.dstPort,
		Payload: size, Core: c.core,
		FlowID: c.ID, Seq: seq,
	})
	c.e.After(retryTimeout, func() {
		if !c.stopped && c.inflight && c.seq == seq {
			c.Retries.Inc()
			c.transmit(size)
		}
	})
}

func (c *Conn) onResponse(s *skb.SKB) {
	if s.Seq != c.seq || !c.inflight {
		return // stale or duplicate response
	}
	c.inflight = false
	rtt := c.e.Now() - c.sentAt
	c.RTT.Record(int64(rtt))
	c.Completed.Inc()
	if c.OnResponse != nil {
		c.OnResponse(rtt)
	}
	gap := sim.Time(1)
	if c.think > 0 {
		gap = sim.Time(c.rng.ExpFloat64() * float64(c.think))
		if gap < 1 {
			gap = 1
		}
	}
	c.e.After(gap, func() { c.sendNext() })
}
