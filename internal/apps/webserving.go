package apps

import (
	"falcon/internal/costmodel"
	"falcon/internal/overlay"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/stats"
)

// WebOp is one Elgg operation type in the CloudSuite Web Serving mix.
type WebOp struct {
	Name string
	// ReqSize uniquely identifies the operation on the wire.
	ReqSize int
	// CacheCalls and DBCalls are backend RPCs the web tier performs.
	CacheCalls, DBCalls int
	// ServerWork is web-tier CPU per operation.
	ServerWork sim.Time
	// RespSize is the page/fragment returned.
	RespSize int
	// Target is the expected completion time; the benchmark's "delay
	// time" is how far beyond it an operation finishes.
	Target sim.Time
	// Weight sets the operation's share of the mix.
	Weight float64
}

// ElggOps is the operation mix (shapes follow the CloudSuite Web Serving
// benchmark's Elgg actions the paper reports in Fig. 17).
var ElggOps = []WebOp{
	{Name: "BrowsetoElgg", ReqSize: 200, CacheCalls: 3, DBCalls: 1, ServerWork: 300 * sim.Microsecond, RespSize: 36000, Target: 2 * sim.Millisecond, Weight: 0.30},
	{Name: "Login", ReqSize: 220, CacheCalls: 1, DBCalls: 2, ServerWork: 200 * sim.Microsecond, RespSize: 12000, Target: 1500 * sim.Microsecond, Weight: 0.10},
	{Name: "CheckActivity", ReqSize: 240, CacheCalls: 2, DBCalls: 1, ServerWork: 150 * sim.Microsecond, RespSize: 18000, Target: 1500 * sim.Microsecond, Weight: 0.25},
	{Name: "SendChatMessage", ReqSize: 260, CacheCalls: 1, DBCalls: 1, ServerWork: 100 * sim.Microsecond, RespSize: 3600, Target: sim.Millisecond, Weight: 0.15},
	{Name: "UpdateActivity", ReqSize: 280, CacheCalls: 1, DBCalls: 2, ServerWork: 250 * sim.Microsecond, RespSize: 6000, Target: 2 * sim.Millisecond, Weight: 0.10},
	{Name: "PostSelfWall", ReqSize: 300, CacheCalls: 2, DBCalls: 2, ServerWork: 350 * sim.Microsecond, RespSize: 9000, Target: 2500 * sim.Microsecond, Weight: 0.10},
}

// Caller issues correlated backend RPCs (web tier → cache/db tiers) with
// any number outstanding.
type Caller struct {
	host    *overlay.Host
	ctr     *overlay.Container
	port    uint16
	core    int
	seq     uint64
	pending map[uint64]func()
}

// NewCaller binds the backend-call socket on the web container.
func NewCaller(h *overlay.Host, ctr *overlay.Container, localPort uint16, core int) *Caller {
	ca := &Caller{host: h, ctr: ctr, port: localPort, core: core,
		pending: make(map[uint64]func())}
	ip := h.IP
	if ctr != nil {
		ip = ctr.IP
	}
	sock := h.OpenUDP(ip, localPort, core)
	sock.OnDeliver = func(s *skb.SKB) {
		if cb, ok := ca.pending[s.Seq]; ok {
			delete(ca.pending, s.Seq)
			cb()
		}
	}
	return ca
}

// Call sends one request and invokes cb when the response arrives.
func (ca *Caller) Call(dstIP proto.IPv4Addr, dstPort uint16, size int, cb func()) {
	ca.seq++
	ca.pending[ca.seq] = cb
	ca.host.SendUDP(overlay.SendParams{
		From: ca.ctr, SrcPort: ca.port,
		DstIP: dstIP, DstPort: dstPort,
		Payload: size, Core: ca.core,
		FlowID: uint64(ca.port), Seq: ca.seq,
	})
}

// WebConfig sizes the three-tier deployment.
type WebConfig struct {
	// Server-side tiers (all containers on ServerHost, as in the paper:
	// web server workers on their own cores — pm.max_children-style
	// worker pool — and cache and database on two separate cores).
	ServerHost              *overlay.Host
	WebCtr, CacheCtr, DBCtr *overlay.Container
	WebCores                []int
	CacheCore, DBCore       int

	// WorkScale multiplies every operation's web-tier CPU work
	// (1.0 = the ElggOps defaults).
	WorkScale float64

	// Client side.
	ClientHost *overlay.Host
	ClientCtr  *overlay.Container
	// Users is the closed-loop client population (paper: 200).
	Users int
	// ClientCores spreads users across client cores.
	ClientCores []int
	// ThinkTime is the mean user think time between operations.
	ThinkTime sim.Time
}

// OpStats accumulates per-operation results.
type OpStats struct {
	Op        WebOp
	Completed stats.Counter
	Resp      *stats.Histogram // response time
	Delay     *stats.Histogram // max(0, response - target)
}

// Web is a running web-serving deployment.
type Web struct {
	cfg   WebConfig
	Stats []*OpStats
	Conns []*Conn

	cacheSrv, dbSrv *Server
	webSrvs         []*Server
}

const (
	webPort   = 80
	cachePort = 11211
	dbPort    = 3306
)

// StartWeb deploys all tiers and starts the user population, running
// until the given absolute time.
func StartWeb(cfg WebConfig, until sim.Time) *Web {
	w := &Web{cfg: cfg}
	for _, op := range ElggOps {
		w.Stats = append(w.Stats, &OpStats{
			Op: op, Resp: stats.NewHistogram(), Delay: stats.NewHistogram(),
		})
	}

	// Backend tiers: fixed small responses (cache hit / row fetch).
	w.cacheSrv = NewServer(cfg.ServerHost, cfg.CacheCtr, cachePort, cfg.CacheCore,
		2*sim.Microsecond, func(req Request, respond func(int)) { respond(512) })
	w.dbSrv = NewServer(cfg.ServerHost, cfg.DBCtr, dbPort, cfg.DBCore,
		10*sim.Microsecond, func(req Request, respond func(int)) { respond(1024) })

	// Web tier: a pool of workers, each pinned to a core with its own
	// backend-call socket. Workers look the operation up by request
	// size, run its backend chain, then respond with the page.
	if len(cfg.WebCores) == 0 {
		cfg.WebCores = []int{0}
	}
	if cfg.WorkScale == 0 {
		cfg.WorkScale = 1
	}
	w.cfg = cfg
	for i, core := range cfg.WebCores {
		core := core
		caller := NewCaller(cfg.ServerHost, cfg.WebCtr, uint16(8081+i), core)
		srv := NewServer(cfg.ServerHost, cfg.WebCtr,
			webPort+uint16(i), core, 0,
			func(req Request, respond func(int)) {
				op := opBySize(req.Size)
				if op == nil {
					respond(64)
					return
				}
				w.runOp(caller, core, *op, respond)
			})
		srv.MTU = 1400 // pages leave as MTU-sized wire packets
		w.webSrvs = append(w.webSrvs, srv)
	}

	// User population.
	if cfg.Users == 0 {
		cfg.Users = 200
	}
	if len(cfg.ClientCores) == 0 {
		cfg.ClientCores = []int{2, 3, 4}
	}
	rng := cfg.ServerHost.Net.E.Rand().Fork()
	for u := 0; u < cfg.Users; u++ {
		core := cfg.ClientCores[u%len(cfg.ClientCores)]
		var current *OpStats
		pick := func() int {
			current = w.pickOp(rng)
			return current.Op.ReqSize
		}
		worker := webPort + uint16(u%len(cfg.WebCores))
		c := NewConn(uint64(5000+u), cfg.ClientHost, cfg.ClientCtr,
			uint16(30000+u), cfg.WebCtr.IP, worker, core, pick, cfg.ThinkTime)
		cur := &current
		c.OnResponse = func(rtt sim.Time) {
			st := *cur
			if st == nil {
				return
			}
			st.Completed.Inc()
			st.Resp.Record(int64(rtt))
			d := rtt - st.Op.Target
			if d < 0 {
				d = 0
			}
			st.Delay.Record(int64(d))
		}
		c.Start(until)
		w.Conns = append(w.Conns, c)
	}
	return w
}

// runOp executes the web-tier work for one operation: the backend calls
// in sequence (cache first, then database), then the CPU work, then the
// response — the shape of a PHP page render.
func (w *Web) runOp(caller *Caller, core int, op WebOp, respond func(int)) {
	cacheLeft, dbLeft := op.CacheCalls, op.DBCalls
	var step func()
	step = func() {
		switch {
		case cacheLeft > 0:
			cacheLeft--
			caller.Call(w.cfg.CacheCtr.IP, cachePort, 96, step)
		case dbLeft > 0:
			dbLeft--
			caller.Call(w.cfg.DBCtr.IP, dbPort, 256, step)
		default:
			// Template rendering: real CPU time on the worker's core, so
			// a saturated web tier backs up like a real PHP worker pool.
			work := sim.Time(float64(op.ServerWork) * w.cfg.WorkScale)
			w.cfg.ServerHost.M.Core(core).Submit(
				stats.CtxTask, costmodel.FnAppWork, work,
				func() { respond(op.RespSize) })
		}
	}
	step()
}

func (w *Web) pickOp(rng *sim.Rand) *OpStats {
	r := rng.Float64()
	acc := 0.0
	for _, st := range w.Stats {
		acc += st.Op.Weight
		if r < acc {
			return st
		}
	}
	return w.Stats[len(w.Stats)-1]
}

func opBySize(size int) *WebOp {
	for i := range ElggOps {
		if ElggOps[i].ReqSize == size {
			return &ElggOps[i]
		}
	}
	return nil
}

// ResetMeasurement clears per-op stats for a fresh window.
func (w *Web) ResetMeasurement() {
	for _, st := range w.Stats {
		st.Completed.Reset()
		st.Resp.Reset()
		st.Delay.Reset()
	}
}
