package apps

import (
	"testing"

	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/workload"
)

func appBed(t *testing.T) *workload.Testbed {
	t.Helper()
	return workload.NewTestbed(workload.TestbedConfig{
		LinkRate: 100 * devices.Gbps, Cores: 12, Containers: 4,
		GRO: true, InnerGRO: true,
		RPSCores: []int{1},
	})
}

func TestRPCRoundTrip(t *testing.T) {
	tb := appBed(t)
	srv := NewServer(tb.Server, tb.ServerCtrs[0], 9000, 6, 0,
		func(req Request, respond func(int)) { respond(256) })
	c := NewConn(1, tb.Client, tb.ClientCtrs[0], 21000,
		tb.ServerCtrs[0].IP, 9000, 3, func() int { return 64 }, sim.Millisecond)
	c.Start(40 * sim.Millisecond)
	tb.Run(50 * sim.Millisecond)

	if c.Completed.Value() == 0 {
		t.Fatal("no responses completed")
	}
	if srv.Requests.Value() != c.Completed.Value() {
		t.Fatalf("server handled %d, client completed %d",
			srv.Requests.Value(), c.Completed.Value())
	}
	if c.RTT.Count() == 0 || c.RTT.Min() <= 0 {
		t.Fatal("RTT not measured")
	}
	// Closed loop: roughly window/think operations.
	if c.Completed.Value() > 60 {
		t.Fatalf("closed loop too fast: %d ops", c.Completed.Value())
	}
}

func TestRPCClosedLoopOneOutstanding(t *testing.T) {
	tb := appBed(t)
	inflight, maxInflight := 0, 0
	NewServer(tb.Server, tb.ServerCtrs[0], 9000, 6, 0,
		func(req Request, respond func(int)) {
			inflight++
			if inflight > maxInflight {
				maxInflight = inflight
			}
			inflight--
			respond(128)
		})
	c := NewConn(1, tb.Client, tb.ClientCtrs[0], 21000,
		tb.ServerCtrs[0].IP, 9000, 3, func() int { return 64 }, 0)
	c.Start(20 * sim.Millisecond)
	tb.Run(30 * sim.Millisecond)
	if maxInflight > 1 {
		t.Fatalf("closed loop had %d outstanding", maxInflight)
	}
	if c.Completed.Value() < 10 {
		t.Fatalf("too few ops: %d", c.Completed.Value())
	}
}

func TestMemcachedMix(t *testing.T) {
	tb := appBed(t)
	m := StartMemcached(MemcachedConfig{
		ServerHost: tb.Server, ServerCtr: tb.ServerCtrs[0], ServerCores: []int{6, 7}, Port: 11211,
		ClientHost: tb.Client, ClientCtr: tb.ClientCtrs[0],
		ClientThreads: 2, ClientCoreBase: 2, Connections: 20,
		ThinkTime: 2 * sim.Millisecond,
	}, 60*sim.Millisecond)
	tb.Run(80 * sim.Millisecond)

	total := m.Completed()
	if total < 100 {
		t.Fatalf("completed %d requests, want >100", total)
	}
	gets, sets := m.Gets.Value(), m.Sets.Value()
	if gets == 0 || sets == 0 {
		t.Fatalf("mix missing a type: gets=%d sets=%d", gets, sets)
	}
	ratio := float64(gets) / float64(gets+sets)
	if ratio < 0.8 || ratio > 0.97 {
		t.Fatalf("get ratio %.2f, want ~0.9", ratio)
	}
	lat := m.Latency()
	if lat.P99 < lat.P50 || lat.P50 <= 0 {
		t.Fatalf("latency summary broken: %+v", lat)
	}
}

func TestMemcachedReset(t *testing.T) {
	tb := appBed(t)
	m := StartMemcached(MemcachedConfig{
		ServerHost: tb.Server, ServerCtr: tb.ServerCtrs[0], ServerCores: []int{6, 7}, Port: 11211,
		ClientHost: tb.Client, ClientCtr: tb.ClientCtrs[0],
		Connections: 5, ClientCoreBase: 2, ThinkTime: sim.Millisecond,
	}, 30*sim.Millisecond)
	tb.Run(10 * sim.Millisecond)
	m.ResetMeasurement()
	if m.Completed() != 0 {
		t.Fatal("reset incomplete")
	}
	tb.Run(30 * sim.Millisecond)
	if m.Completed() == 0 {
		t.Fatal("no ops after reset")
	}
}

func TestWebServingOps(t *testing.T) {
	tb := appBed(t)
	w := StartWeb(WebConfig{
		ServerHost: tb.Server,
		WebCtr:     tb.ServerCtrs[0], CacheCtr: tb.ServerCtrs[1], DBCtr: tb.ServerCtrs[2],
		WebCores: []int{6, 9}, CacheCore: 7, DBCore: 8,
		ClientHost: tb.Client, ClientCtr: tb.ClientCtrs[0],
		Users: 40, ClientCores: []int{2, 3, 4},
		ThinkTime: 5 * sim.Millisecond,
	}, 80*sim.Millisecond)
	tb.Run(100 * sim.Millisecond)

	totalOps := uint64(0)
	typesSeen := 0
	for _, st := range w.Stats {
		if st.Completed.Value() > 0 {
			typesSeen++
			totalOps += st.Completed.Value()
			if st.Resp.Count() != st.Completed.Value() {
				t.Fatalf("%s: resp samples %d != completed %d",
					st.Op.Name, st.Resp.Count(), st.Completed.Value())
			}
		}
	}
	if totalOps < 100 {
		t.Fatalf("total ops = %d, want >100", totalOps)
	}
	if typesSeen < 4 {
		t.Fatalf("only %d op types exercised", typesSeen)
	}
	// Backend tiers must have been exercised.
	if w.cacheSrv.Requests.Value() == 0 || w.dbSrv.Requests.Value() == 0 {
		t.Fatal("backend tiers idle")
	}
	// Cache calls outnumber DB calls in the mix.
	if w.cacheSrv.Requests.Value() <= w.dbSrv.Requests.Value()/2 {
		t.Fatalf("backend mix off: cache=%d db=%d",
			w.cacheSrv.Requests.Value(), w.dbSrv.Requests.Value())
	}
}

func TestElggOpSizesUnique(t *testing.T) {
	seen := map[int]bool{}
	sum := 0.0
	for _, op := range ElggOps {
		if seen[op.ReqSize] {
			t.Fatalf("duplicate request size %d", op.ReqSize)
		}
		seen[op.ReqSize] = true
		sum += op.Weight
		if op.Target <= 0 || op.RespSize <= 0 {
			t.Fatalf("op %s malformed", op.Name)
		}
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("weights sum to %.2f", sum)
	}
}
