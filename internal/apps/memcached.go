package apps

import (
	"falcon/internal/overlay"
	"falcon/internal/sim"
	"falcon/internal/stats"
)

// CloudSuite Data Caching parameters (paper Section 6.2): a memcached
// server with 550-byte objects, clients driving 100 connections with a
// Twitter-derived GET-heavy mix.
const (
	MemcachedValueSize   = 550
	MemcachedGetRequest  = 64 // GET <key>\r\n
	MemcachedSetOverhead = 80 // SET header around the value
	MemcachedGetRatio    = 0.9
	memcachedServerWork  = 2 * sim.Microsecond // hash lookup + LRU touch
)

// MemcachedConfig sizes a data-caching deployment.
type MemcachedConfig struct {
	// ServerHost/ServerCtr run memcached; ServerCores pin its worker
	// threads (the paper configures 4 threads), one shard port per core.
	ServerHost  *overlay.Host
	ServerCtr   *overlay.Container
	ServerCores []int
	Port        uint16

	// ClientHost/ClientCtr run the load generator.
	ClientHost *overlay.Host
	ClientCtr  *overlay.Container
	// ClientThreads spreads connections across this many client cores
	// starting at ClientCoreBase (the paper scales 1 → 10 threads).
	ClientThreads  int
	ClientCoreBase int
	// Connections total (the paper uses 100).
	Connections int
	// ThinkTime is the mean per-connection think time, which sets the
	// offered request rate.
	ThinkTime sim.Time
}

// Memcached is a running data-caching deployment.
type Memcached struct {
	Servers []*Server
	Conns   []*Conn

	// Gets/Sets count requests by type.
	Gets, Sets stats.Counter

	rng *sim.Rand
}

// StartMemcached deploys the server and starts all client connections,
// running until the given absolute time.
func StartMemcached(cfg MemcachedConfig, until sim.Time) *Memcached {
	m := &Memcached{rng: cfg.ServerHost.Net.E.Rand().Fork()}
	if len(cfg.ServerCores) == 0 {
		cfg.ServerCores = []int{0}
	}
	handle := func(req Request, respond func(int)) {
		// GETs (small request) return the object; SETs (large request)
		// return a brief stored-acknowledgement.
		if req.Size <= MemcachedGetRequest {
			m.Gets.Inc()
			respond(MemcachedValueSize)
		} else {
			m.Sets.Inc()
			respond(8)
		}
	}
	for i, core := range cfg.ServerCores {
		m.Servers = append(m.Servers, NewServer(cfg.ServerHost, cfg.ServerCtr,
			cfg.Port+uint16(i), core, memcachedServerWork, handle))
	}

	if cfg.Connections == 0 {
		cfg.Connections = 100
	}
	if cfg.ClientThreads == 0 {
		cfg.ClientThreads = 1
	}
	dstIP := cfg.ServerHost.IP
	if cfg.ServerCtr != nil {
		dstIP = cfg.ServerCtr.IP
	}
	for i := 0; i < cfg.Connections; i++ {
		core := cfg.ClientCoreBase + i%cfg.ClientThreads
		reqSize := func() int {
			if m.rng.Float64() < MemcachedGetRatio {
				return MemcachedGetRequest
			}
			return MemcachedValueSize + MemcachedSetOverhead
		}
		shard := cfg.Port + uint16(i%len(cfg.ServerCores))
		c := NewConn(uint64(1000+i), cfg.ClientHost, cfg.ClientCtr,
			uint16(20000+i), dstIP, shard, core, reqSize, cfg.ThinkTime)
		c.Start(until)
		m.Conns = append(m.Conns, c)
	}
	return m
}

// Latency merges all connections' round-trip histograms.
func (m *Memcached) Latency() stats.Summary {
	h := stats.NewHistogram()
	for _, c := range m.Conns {
		h.Merge(c.RTT)
	}
	return h.Summarize()
}

// Completed sums completed requests across connections.
func (m *Memcached) Completed() uint64 {
	var n uint64
	for _, c := range m.Conns {
		n += c.Completed.Value()
	}
	return n
}

// ResetMeasurement clears client-side histograms (for warm-up windows).
func (m *Memcached) ResetMeasurement() {
	for _, c := range m.Conns {
		c.RTT.Reset()
		c.Completed.Reset()
	}
	m.Gets.Reset()
	m.Sets.Reset()
}
