package ipfrag

import (
	"bytes"
	"testing"

	"falcon/internal/sim"
)

// TestEvictionBoundaryExact pins the timeout comparison: a partial aged
// exactly ReassemblyTimeout is still live (eviction is strictly
// older-than, matching ip_expire firing after, not at, ip_frag_time),
// and one tick later it is gone.
func TestEvictionBoundaryExact(t *testing.T) {
	partsA, _ := Fragment(bigFrame(4000, 20), 1500)
	r := NewReassembler()
	r.Add(partsA[0], 0)

	// An unrelated fragment at exactly the timeout must NOT evict A...
	partsB, _ := Fragment(bigFrame(4000, 21), 1500)
	r.Add(partsB[0], ReassemblyTimeout)
	if r.Evicted != 0 {
		t.Fatal("partial evicted at exactly ReassemblyTimeout")
	}
	// ...and A can still complete at the boundary instant.
	var got []byte
	for _, p := range partsA[1:] {
		if out, err := r.Add(p, ReassemblyTimeout); err != nil {
			t.Fatal(err)
		} else if out != nil {
			got = out
		}
	}
	if got == nil || r.Reassembled != 1 {
		t.Fatal("datagram aged exactly ReassemblyTimeout failed to complete")
	}

	// One tick past the timeout, the survivor (B, started at the
	// boundary... still young) stays but a fresh lone partial from t=0
	// would be gone; age B past its own deadline to check the far side.
	r.Add(partsA[0], 2*ReassemblyTimeout+1) // re-keys id 20 as a new partial
	if r.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1 (partial B past its timeout)", r.Evicted)
	}
}

// TestDuplicateLastFragment: the MF=0 fragment both sets the datagram's
// total length and, duplicated, must be counted once — a double-counted
// tail either corrupts the length or completes the datagram twice.
func TestDuplicateLastFragment(t *testing.T) {
	orig := bigFrame(6000, 30)
	parts, _ := Fragment(orig, 1500)
	last := parts[len(parts)-1]
	r := NewReassembler()

	// Last fragment first, then again (retransmit), then the rest.
	if out, _ := r.Add(last, 0); out != nil {
		t.Fatal("completed from the tail alone")
	}
	if out, _ := r.Add(last, 1); out != nil {
		t.Fatal("completed from a duplicated tail")
	}
	completions := 0
	var got []byte
	for i, p := range parts[:len(parts)-1] {
		out, err := r.Add(p, sim.Time(2+i))
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			completions++
			got = out
		}
	}
	if completions != 1 {
		t.Fatalf("completions = %d, want exactly 1", completions)
	}
	if !bytes.Equal(got, orig) {
		t.Fatal("duplicate tail corrupted the reassembled datagram")
	}
	if r.Pending() != 0 {
		t.Fatal("state left behind after completion")
	}

	// A straggler duplicate arriving after completion must not resurrect
	// the datagram — it opens a fresh partial that can only time out.
	if out, _ := r.Add(last, 10); out != nil {
		t.Fatal("post-completion duplicate completed a datagram")
	}
	if r.Pending() != 1 || r.Reassembled != 1 {
		t.Fatalf("pending=%d reassembled=%d after straggler", r.Pending(), r.Reassembled)
	}
}
