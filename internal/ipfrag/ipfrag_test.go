package ipfrag

import (
	"bytes"
	"testing"
	"testing/quick"

	"falcon/internal/proto"
	"falcon/internal/sim"
)

func bigFrame(n int, id uint16) []byte {
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	return proto.BuildUDPFrame(proto.MACFromUint64(1), proto.MACFromUint64(2),
		proto.IP4(10, 0, 0, 1), proto.IP4(10, 0, 0, 2), 7000, 5001, id, payload)
}

func TestSmallFramePassesThrough(t *testing.T) {
	f := bigFrame(100, 1)
	out, err := Fragment(f, 1500)
	if err != nil || len(out) != 1 || !bytes.Equal(out[0], f) {
		t.Fatalf("small frame mangled: %d parts, %v", len(out), err)
	}
}

func TestFragmentSizesAndFlags(t *testing.T) {
	f := bigFrame(4000, 2)
	parts, err := Fragment(f, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d, want 3", len(parts))
	}
	for i, p := range parts {
		ip, err := proto.ParseIPv4(p[proto.EthLen:])
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		if int(ip.TotalLen) > 1500 {
			t.Fatalf("fragment %d exceeds MTU: %d", i, ip.TotalLen)
		}
		if ip.FragOff%8 != 0 {
			t.Fatalf("fragment %d offset %d not 8-aligned", i, ip.FragOff)
		}
		if (i < len(parts)-1) != ip.MoreFrags {
			t.Fatalf("fragment %d MF flag wrong", i)
		}
		if ip.ID != 2 {
			t.Fatalf("fragment %d lost the datagram id", i)
		}
	}
}

func TestRefuseRefragment(t *testing.T) {
	parts, _ := Fragment(bigFrame(4000, 3), 1500)
	if _, err := Fragment(parts[0], 600); err == nil {
		t.Fatal("re-fragmenting a fragment succeeded")
	}
}

func TestReassembleRoundTrip(t *testing.T) {
	orig := bigFrame(9000, 4)
	parts, err := Fragment(orig, 1500)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReassembler()
	var got []byte
	for i, p := range parts {
		out, err := r.Add(p, sim.Time(i))
		if err != nil {
			t.Fatal(err)
		}
		if i < len(parts)-1 && out != nil {
			t.Fatal("completed early")
		}
		if i == len(parts)-1 {
			got = out
		}
	}
	if got == nil {
		t.Fatal("never completed")
	}
	if !bytes.Equal(got, orig) {
		t.Fatal("reassembly corrupted the datagram")
	}
	if r.Pending() != 0 || r.Reassembled != 1 {
		t.Fatalf("state: pending=%d reassembled=%d", r.Pending(), r.Reassembled)
	}
}

func TestReassembleOutOfOrderAndDuplicates(t *testing.T) {
	orig := bigFrame(6000, 5)
	parts, _ := Fragment(orig, 1500)
	r := NewReassembler()
	// Deliver in reverse with a duplicate in the middle.
	var got []byte
	order := [][]byte{parts[len(parts)-1]}
	for i := len(parts) - 2; i >= 0; i-- {
		order = append(order, parts[i], parts[i])
	}
	for i, p := range order {
		out, err := r.Add(p, sim.Time(i))
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			got = out
		}
	}
	if !bytes.Equal(got, orig) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestInterleavedDatagrams(t *testing.T) {
	a, _ := Fragment(bigFrame(4000, 10), 1500)
	b, _ := Fragment(bigFrame(4000, 11), 1500)
	r := NewReassembler()
	done := 0
	for i := range a {
		if out, _ := r.Add(a[i], 0); out != nil {
			done++
		}
		if out, _ := r.Add(b[i], 0); out != nil {
			done++
		}
	}
	if done != 2 {
		t.Fatalf("completed %d datagrams, want 2", done)
	}
}

func TestEvictionOnTimeout(t *testing.T) {
	parts, _ := Fragment(bigFrame(4000, 12), 1500)
	r := NewReassembler()
	r.Add(parts[0], 0) // lone fragment
	if r.Pending() != 1 {
		t.Fatal("partial not held")
	}
	// A later fragment of another datagram triggers eviction.
	other, _ := Fragment(bigFrame(4000, 13), 1500)
	r.Add(other[0], ReassemblyTimeout+1)
	if r.Evicted != 1 {
		t.Fatalf("evicted = %d", r.Evicted)
	}
	// The stale datagram can no longer complete.
	for _, p := range parts[1:] {
		if out, _ := r.Add(p, ReassemblyTimeout+2); out != nil {
			t.Fatal("evicted datagram completed")
		}
	}
}

func TestNonFragmentPassesThrough(t *testing.T) {
	f := bigFrame(200, 14)
	r := NewReassembler()
	out, err := r.Add(f, 0)
	if err != nil || !bytes.Equal(out, f) {
		t.Fatal("non-fragment did not pass through")
	}
}

func TestFragmentRoundTripProperty(t *testing.T) {
	// Any payload size and MTU choice round-trips byte-for-byte.
	r := NewReassembler()
	id := uint16(100)
	if err := quick.Check(func(sizeRaw uint16, mtuRaw uint8) bool {
		size := int(sizeRaw)%30000 + 100
		mtu := int(mtuRaw)%2000 + 576
		id++
		orig := bigFrame(size, id)
		parts, err := Fragment(orig, mtu)
		if err != nil {
			return false
		}
		var got []byte
		for _, p := range parts {
			out, err := r.Add(p, 0)
			if err != nil {
				return false
			}
			if out != nil {
				got = out
			}
		}
		return bytes.Equal(got, orig)
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
