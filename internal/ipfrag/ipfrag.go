// Package ipfrag implements IPv4 fragmentation and reassembly, enabling
// the testbed's MTU mode: with a 1500-byte MTU (instead of the default
// jumbo/GSO model), a 64 KB UDP datagram crosses the wire as ~44
// fragments and the receiver pays per-fragment stack costs before
// reassembly — the regime the paper's 64 KB sockperf runs actually
// exercise on hardware.
package ipfrag

import (
	"errors"
	"fmt"

	"falcon/internal/proto"
	"falcon/internal/sim"
)

// ReassemblyTimeout evicts incomplete datagrams (the kernel's
// ip_frag_time is 30 s; the simulation uses a tighter bound).
const ReassemblyTimeout = 500 * sim.Millisecond

// Fragment splits an Ethernet/IPv4 frame whose IP packet exceeds mtu
// into valid fragments, each a complete Ethernet frame. The original
// frame's IP ID groups the fragments (callers must use unique non-zero
// IDs per datagram). Frames already within mtu are returned unchanged.
func Fragment(frame []byte, mtu int) ([][]byte, error) {
	eth, err := proto.ParseEthernet(frame)
	if err != nil {
		return nil, err
	}
	ip, err := proto.ParseIPv4(frame[proto.EthLen:])
	if err != nil {
		return nil, err
	}
	if int(ip.TotalLen) <= mtu {
		return [][]byte{frame}, nil
	}
	if ip.IsFragment() {
		return nil, errors.New("ipfrag: refusing to re-fragment a fragment")
	}
	chunk := (mtu - proto.IPv4Len) &^ 7 // offsets are 8-byte aligned
	if chunk <= 0 {
		return nil, fmt.Errorf("ipfrag: mtu %d too small", mtu)
	}
	payload := frame[proto.EthLen+proto.IPv4Len : proto.EthLen+int(ip.TotalLen)]
	var out [][]byte
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		part := payload[off:end]
		f := make([]byte, proto.EthLen+proto.IPv4Len+len(part))
		proto.PutEthernet(f, eth)
		proto.PutIPv4(f[proto.EthLen:], proto.IPv4Hdr{
			TotalLen:  uint16(proto.IPv4Len + len(part)),
			ID:        ip.ID,
			TTL:       ip.TTL,
			Protocol:  ip.Protocol,
			Src:       ip.Src,
			Dst:       ip.Dst,
			MoreFrags: end < len(payload),
			FragOff:   uint16(off),
		})
		copy(f[proto.EthLen+proto.IPv4Len:], part)
		out = append(out, f)
	}
	return out, nil
}

type fragKey struct {
	src, dst proto.IPv4Addr
	id       uint16
	protocol uint8
}

type partial struct {
	parts    map[uint16][]byte // offset → payload bytes
	total    int               // payload length, known once the MF=0 part arrives
	received int
	eth      proto.EthernetHdr
	hdr      proto.IPv4Hdr
	started  sim.Time
}

// Reassembler collects fragments into whole datagrams.
type Reassembler struct {
	table map[fragKey]*partial

	// Reassembled and Evicted count completed datagrams and timed-out
	// partials.
	Reassembled uint64
	Evicted     uint64
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{table: make(map[fragKey]*partial)}
}

// Pending returns the number of incomplete datagrams held.
func (r *Reassembler) Pending() int { return len(r.table) }

// Add offers one fragment at virtual time now. When the fragment
// completes its datagram, the reconstructed frame is returned; otherwise
// nil. Non-fragment frames pass straight through.
func (r *Reassembler) Add(frame []byte, now sim.Time) ([]byte, error) {
	eth, err := proto.ParseEthernet(frame)
	if err != nil {
		return nil, err
	}
	ip, err := proto.ParseIPv4(frame[proto.EthLen:])
	if err != nil {
		return nil, err
	}
	if !ip.IsFragment() {
		return frame, nil
	}
	r.evict(now)

	key := fragKey{src: ip.Src, dst: ip.Dst, id: ip.ID, protocol: ip.Protocol}
	p, ok := r.table[key]
	if !ok {
		p = &partial{parts: make(map[uint16][]byte), total: -1, eth: eth, hdr: ip, started: now}
		r.table[key] = p
	}
	payload := frame[proto.EthLen+proto.IPv4Len : proto.EthLen+int(ip.TotalLen)]
	if _, dup := p.parts[ip.FragOff]; !dup {
		p.parts[ip.FragOff] = payload
		p.received += len(payload)
	}
	if !ip.MoreFrags {
		p.total = int(ip.FragOff) + len(payload)
	}
	if p.total < 0 || p.received < p.total {
		return nil, nil
	}
	// Verify contiguity and rebuild.
	buf := make([]byte, proto.EthLen+proto.IPv4Len+p.total)
	covered := 0
	for off, part := range p.parts {
		if int(off)+len(part) > p.total {
			delete(r.table, key)
			return nil, errors.New("ipfrag: fragment overruns datagram")
		}
		copy(buf[proto.EthLen+proto.IPv4Len+int(off):], part)
		covered += len(part)
	}
	if covered != p.total {
		return nil, nil // overlapping or duplicate-counted: wait for more
	}
	delete(r.table, key)
	proto.PutEthernet(buf, p.eth)
	proto.PutIPv4(buf[proto.EthLen:], proto.IPv4Hdr{
		TotalLen: uint16(proto.IPv4Len + p.total),
		ID:       p.hdr.ID,
		TTL:      p.hdr.TTL,
		Protocol: p.hdr.Protocol,
		Src:      p.hdr.Src,
		Dst:      p.hdr.Dst,
	})
	r.Reassembled++
	return buf, nil
}

// evict drops partials older than the reassembly timeout.
func (r *Reassembler) evict(now sim.Time) {
	for k, p := range r.table {
		if now-p.started > ReassemblyTimeout {
			delete(r.table, k)
			r.Evicted++
		}
	}
}
