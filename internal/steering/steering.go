// Package steering implements the kernel's existing scaling techniques —
// RSS (hardware receive-side scaling across NIC queues) and RPS (software
// receive packet steering) — which the paper shows are inter-flow only:
// every stage of a given flow hashes to the same CPU, so they cannot
// parallelize a single flow's prolonged overlay data path.
package steering

// RSS models a multi-queue NIC's hash indirection table: a flow hash
// selects a queue, and each queue's hardirq is affined to one core.
type RSS struct {
	// QueueCores maps queue index to the core its IRQ is affined to.
	QueueCores []int
}

// CoreFor returns the core whose queue receives a flow with this hash.
func (r *RSS) CoreFor(hash uint32) int {
	if len(r.QueueCores) == 0 {
		return 0
	}
	return r.QueueCores[int(hash)%len(r.QueueCores)]
}

// RPS models the rps_cpus mask of a device: get_rps_cpu picks a CPU from
// the flow hash. Packets of one flow always map to the same CPU, which
// both guarantees in-order delivery and prevents intra-flow scaling.
type RPS struct {
	// CPUs is the steering mask (cores eligible to receive softirqs).
	CPUs []int
	// Enabled mirrors /sys/class/net/<dev>/queues/rx-0/rps_cpus != 0.
	Enabled bool
}

// CPUFor returns the steering target for a flow hash and whether
// steering applies. With RPS disabled (or an empty mask) packets stay on
// the current core.
func (r *RPS) CPUFor(hash uint32, current int) int {
	if !r.Enabled || len(r.CPUs) == 0 {
		return current
	}
	return r.CPUs[int(hash)%len(r.CPUs)]
}
