package steering

import (
	"testing"

	"falcon/internal/skb"
)

func TestRSSStableMapping(t *testing.T) {
	r := RSS{QueueCores: []int{0, 2, 4, 6}}
	h := uint32(0xdeadbeef)
	if r.CoreFor(h) != r.CoreFor(h) {
		t.Fatal("RSS mapping not stable")
	}
	if got := r.CoreFor(5); got != 2 {
		t.Fatalf("CoreFor(5) = %d, want 2", got)
	}
}

func TestRSSEmptyDefaultsToZero(t *testing.T) {
	var r RSS
	if r.CoreFor(123) != 0 {
		t.Fatal("empty RSS should map to core 0")
	}
}

func TestRPSDisabledStaysPut(t *testing.T) {
	r := RPS{CPUs: []int{1, 2, 3}, Enabled: false}
	if got := r.CPUFor(99, 7); got != 7 {
		t.Fatalf("disabled RPS moved packet to %d", got)
	}
	r2 := RPS{Enabled: true}
	if got := r2.CPUFor(99, 7); got != 7 {
		t.Fatalf("empty-mask RPS moved packet to %d", got)
	}
}

func TestRPSSameFlowSameCPU(t *testing.T) {
	// The paper's Section 3.3 observation: all packets of one flow --
	// and all *stages* of one flow -- map to the same CPU under RPS.
	r := RPS{CPUs: []int{1, 2, 3, 4}, Enabled: true}
	flow := skb.FlowKey{SrcPort: 1234, DstPort: 80, Proto: 17}.Hash()
	first := r.CPUFor(flow, 0)
	for i := 0; i < 100; i++ {
		if r.CPUFor(flow, 0) != first {
			t.Fatal("same flow steered to different CPUs")
		}
	}
}

func TestRPSSpreadsFlows(t *testing.T) {
	r := RPS{CPUs: []int{0, 1, 2, 3}, Enabled: true}
	seen := map[int]int{}
	for p := uint16(0); p < 400; p++ {
		k := skb.FlowKey{SrcPort: p, DstPort: 80, Proto: 6}
		seen[r.CPUFor(k.Hash(), 0)]++
	}
	if len(seen) != 4 {
		t.Fatalf("flows hit %d cores, want 4", len(seen))
	}
	for core, n := range seen {
		if n < 50 || n > 150 {
			t.Fatalf("core %d badly skewed: %d flows", core, n)
		}
	}
}

func TestRPSCollisionsExist(t *testing.T) {
	// With more flows than cores, collisions are inevitable (the paper's
	// load-imbalance observation in multi-flow tests).
	r := RPS{CPUs: []int{0, 1, 2, 3, 4, 5, 6, 7}, Enabled: true}
	counts := map[int]int{}
	for p := uint16(0); p < 16; p++ {
		k := skb.FlowKey{SrcPort: 1000 + p, DstPort: 80, Proto: 6}
		counts[r.CPUFor(k.Hash(), 0)]++
	}
	collided := false
	for _, n := range counts {
		if n > 1 {
			collided = true
		}
	}
	if !collided {
		t.Skip("no collision in this sample (unlikely but possible)")
	}
}
