package steering

import (
	"testing"

	"falcon/internal/skb"
)

// Falcon's placement (Algorithm 1 line 20) is vanilla RPS steering fed
// a device-mixed hash: cpus[DeviceFlowHash(flowHash, ifindex) % n].
// These tests pin the three properties that construction must provide —
// stages of one flow spread across cores (what RPS alone cannot do),
// every (flow, device) pair stays pinned (in-order delivery per stage),
// and the mechanism degenerates to plain RPS when the device term is
// held fixed.

// firstChoice is Falcon's static placement for one stage of one flow.
func firstChoice(mask []int, flowHash uint32, ifindex int) int {
	return mask[int(skb.DeviceFlowHash(flowHash, ifindex))%len(mask)]
}

// flowHashFor builds a distinct flow hash per source port.
func flowHashFor(srcPort uint16) uint32 {
	return skb.FlowKey{SrcPort: srcPort, DstPort: 5001, Proto: 17}.Hash()
}

// The overlay's three stage devices: pNIC, VXLAN, veth.
var stageIfindexes = []int{1, 2, 3}

func TestDeviceAwareSpreadsStages(t *testing.T) {
	// The paper's core observation (Fig. 8): mixing the ifindex into the
	// hash gives each softirq stage of the same flow its own core. With
	// k cores in the mask, a flow whose three stages all collide onto
	// one core should be the exception, not the rule.
	cases := []struct {
		name string
		mask []int
		// minSpread is the fraction of flows whose stages must land on
		// at least two distinct cores.
		minSpread float64
	}{
		{"k2", []int{3, 4}, 0.60},
		{"k3", []int{3, 4, 5}, 0.75},
		{"k5", []int{3, 4, 5, 6, 7}, 0.85},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const flows = 500
			spread := 0
			for p := uint16(0); p < flows; p++ {
				h := flowHashFor(7000 + p)
				cores := map[int]bool{}
				for _, ifx := range stageIfindexes {
					cores[firstChoice(tc.mask, h, ifx)] = true
				}
				if len(cores) >= 2 {
					spread++
				}
			}
			if got := float64(spread) / flows; got < tc.minSpread {
				t.Fatalf("only %.0f%% of flows spread stages across cores, want >=%.0f%%",
					got*100, tc.minSpread*100)
			}
		})
	}
}

func TestDeviceAwarePerFlowStability(t *testing.T) {
	// A (flow, device) pair must always map to the same core: that pin
	// is what preserves per-stage in-order processing while the flow is
	// still parallelized across stages.
	masks := [][]int{{3}, {3, 4}, {3, 4, 5, 6}}
	for _, mask := range masks {
		for p := uint16(0); p < 50; p++ {
			h := flowHashFor(9000 + p)
			for _, ifx := range stageIfindexes {
				want := firstChoice(mask, h, ifx)
				for rep := 0; rep < 20; rep++ {
					if got := firstChoice(mask, h, ifx); got != want {
						t.Fatalf("mask %v flow %d if %d: placement flapped %d -> %d",
							mask, p, ifx, want, got)
					}
				}
			}
		}
	}
}

func TestDeviceAwareDistribution(t *testing.T) {
	// Across many flows and all three stage devices, placements must
	// cover every core in the mask near-uniformly (no core silently
	// excluded — the defect class the scenario fuzzer seeds with
	// -fuzz-defect drop-falcon-cpu).
	masks := [][]int{{3, 4}, {3, 4, 5}, {3, 4, 5, 6, 7}}
	for _, mask := range masks {
		counts := map[int]int{}
		total := 0
		for p := uint16(0); p < 2000; p++ {
			h := flowHashFor(p)
			for _, ifx := range stageIfindexes {
				counts[firstChoice(mask, h, ifx)]++
				total++
			}
		}
		if len(counts) != len(mask) {
			t.Fatalf("mask %v: placements hit %d cores, want %d", mask, len(counts), len(mask))
		}
		uniform := float64(total) / float64(len(mask))
		for core, n := range counts {
			if f := float64(n); f < 0.5*uniform || f > 1.5*uniform {
				t.Fatalf("mask %v: core %d got %d of %d placements (uniform %.0f)",
					mask, core, n, total, uniform)
			}
		}
	}
}

func TestVanillaRPSParity(t *testing.T) {
	// Vanilla RPS ignores the device: every stage of a flow maps to one
	// core (the serialization the paper fixes). And Falcon's placement
	// is exactly RPS's table lookup once the device-mixed hash is fed
	// in — same plumbing, different hash, per Section 4.1.
	mask := []int{1, 2, 3, 4}
	rps := RPS{CPUs: mask, Enabled: true}
	for p := uint16(0); p < 200; p++ {
		h := flowHashFor(4000 + p)
		want := rps.CPUFor(h, 0)
		for _, ifx := range stageIfindexes {
			if rps.CPUFor(h, 0) != want {
				t.Fatal("vanilla RPS moved a stage across cores")
			}
			dh := skb.DeviceFlowHash(h, ifx)
			if got, parity := firstChoice(mask, h, ifx), rps.CPUFor(dh, 0); got != parity {
				t.Fatalf("flow %d if %d: falcon placement %d != RPS-over-device-hash %d",
					p, ifx, got, parity)
			}
		}
	}
	// A single-CPU mask degenerates to vanilla pinning for every stage.
	single := []int{3}
	srps := RPS{CPUs: single, Enabled: true}
	for p := uint16(0); p < 50; p++ {
		h := flowHashFor(p)
		for _, ifx := range stageIfindexes {
			if firstChoice(single, h, ifx) != 3 || srps.CPUFor(h, 0) != 3 {
				t.Fatal("single-CPU mask did not pin to its core")
			}
		}
	}
}
