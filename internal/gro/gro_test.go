package gro

import (
	"bytes"
	"testing"

	"falcon/internal/proto"
	"falcon/internal/skb"
)

func tcpSeg(srcPort uint16, seq uint32, payload []byte) *skb.SKB {
	frame := proto.BuildTCPFrame(proto.MACFromUint64(1), proto.MACFromUint64(2),
		proto.IP4(10, 0, 0, 1), proto.IP4(10, 0, 0, 2),
		proto.TCPHdr{SrcPort: srcPort, DstPort: 80, Seq: seq, Flags: proto.TCPAck, Window: 65535},
		0, payload)
	return skb.New(frame)
}

func udpPkt() *skb.SKB {
	return skb.New(proto.BuildUDPFrame(proto.MACFromUint64(1), proto.MACFromUint64(2),
		proto.IP4(10, 0, 0, 1), proto.IP4(10, 0, 0, 2), 100, 200, 0, []byte("u")))
}

func payloadOf(t *testing.T, s *skb.SKB) []byte {
	t.Helper()
	f, err := proto.ParseFrame(s.Data)
	if err != nil {
		t.Fatalf("merged frame does not parse: %v", err)
	}
	return f.Payload
}

func TestUDPPassesThrough(t *testing.T) {
	e := New()
	p := udpPkt()
	if got := e.Push(p); got != p {
		t.Fatal("UDP packet not passed through")
	}
	if e.HeldCount() != 0 {
		t.Fatal("UDP packet held")
	}
}

func TestUnparsablePassesThrough(t *testing.T) {
	e := New()
	p := skb.New([]byte{1, 2, 3})
	if got := e.Push(p); got != p {
		t.Fatal("garbage not passed through")
	}
}

func TestControlSegmentsPassThrough(t *testing.T) {
	e := New()
	syn := tcpSeg(5000, 0, nil)
	// Zero-payload control packet passes straight through.
	if got := e.Push(syn); got != syn {
		t.Fatal("SYN-ish zero payload segment held")
	}
}

func TestContiguousSegmentsMerge(t *testing.T) {
	e := New()
	a := tcpSeg(5000, 1000, bytes.Repeat([]byte{'a'}, 100))
	b := tcpSeg(5000, 1100, bytes.Repeat([]byte{'b'}, 100))
	c := tcpSeg(5000, 1200, bytes.Repeat([]byte{'c'}, 100))
	if e.Push(a) != nil || e.Push(b) != nil || e.Push(c) != nil {
		t.Fatal("contiguous segments not absorbed")
	}
	out := e.Flush()
	if len(out) != 1 {
		t.Fatalf("flush returned %d packets, want 1", len(out))
	}
	m := out[0]
	if m.Segs != 3 {
		t.Fatalf("segs = %d, want 3", m.Segs)
	}
	pl := payloadOf(t, m)
	if len(pl) != 300 || pl[0] != 'a' || pl[100] != 'b' || pl[200] != 'c' {
		t.Fatalf("merged payload wrong: len=%d", len(pl))
	}
	if e.Merged != 2 {
		t.Fatalf("merged counter = %d, want 2", e.Merged)
	}
}

func TestNonContiguousReleasesHeld(t *testing.T) {
	e := New()
	a := tcpSeg(5000, 1000, bytes.Repeat([]byte{'a'}, 100))
	gap := tcpSeg(5000, 9000, bytes.Repeat([]byte{'g'}, 100))
	e.Push(a)
	out := e.Push(gap)
	if out == nil {
		t.Fatal("gap did not release held packet")
	}
	if string(payloadOf(t, out)) != string(bytes.Repeat([]byte{'a'}, 100)) {
		t.Fatal("released wrong packet")
	}
	// The gap segment is now held.
	fl := e.Flush()
	if len(fl) != 1 || payloadOf(t, fl[0])[0] != 'g' {
		t.Fatal("gap segment not held after release")
	}
}

func TestDistinctFlowsDoNotMerge(t *testing.T) {
	e := New()
	a := tcpSeg(5000, 0, []byte("aaaa"))
	b := tcpSeg(6000, 0, []byte("bbbb"))
	e.Push(a)
	e.Push(b)
	out := e.Flush()
	if len(out) != 2 {
		t.Fatalf("flush = %d packets, want 2", len(out))
	}
	if out[0].Segs != 1 || out[1].Segs != 1 {
		t.Fatal("cross-flow merge happened")
	}
}

func TestFlushOrderIsArrivalOrder(t *testing.T) {
	e := New()
	e.Push(tcpSeg(7000, 0, []byte("x")))
	e.Push(tcpSeg(5000, 0, []byte("y")))
	e.Push(tcpSeg(6000, 0, []byte("z")))
	out := e.Flush()
	f0, _ := proto.ParseFrame(out[0].Data)
	f2, _ := proto.ParseFrame(out[2].Data)
	if f0.TCP.SrcPort != 7000 || f2.TCP.SrcPort != 6000 {
		t.Fatal("flush order != arrival order")
	}
	if e.HeldCount() != 0 {
		t.Fatal("flush left state behind")
	}
}

func TestSizeCapReleases(t *testing.T) {
	e := New()
	seg := 16000
	seq := uint32(0)
	var released *skb.SKB
	for i := 0; i < 8 && released == nil; i++ {
		released = e.Push(tcpSeg(5000, seq, bytes.Repeat([]byte{'x'}, seg)))
		seq += uint32(seg)
	}
	if released == nil {
		t.Fatal("size cap never triggered")
	}
	if len(released.Data) > MaxMergedBytes {
		t.Fatalf("released frame exceeds cap: %d", len(released.Data))
	}
	// Released super-packet must still parse with a valid checksum.
	if _, err := proto.ParseFrame(released.Data); err != nil {
		t.Fatalf("capped super-packet invalid: %v", err)
	}
}

func TestMergedFrameChecksumValid(t *testing.T) {
	e := New()
	e.Push(tcpSeg(5000, 0, bytes.Repeat([]byte{'p'}, 500)))
	e.Push(tcpSeg(5000, 500, bytes.Repeat([]byte{'q'}, 500)))
	out := e.Flush()
	if len(out) != 1 {
		t.Fatal("merge failed")
	}
	f, err := proto.ParseFrame(out[0].Data)
	if err != nil {
		t.Fatalf("checksum/parse error: %v", err)
	}
	if int(f.IP.TotalLen) != proto.IPv4Len+proto.TCPLen+1000 {
		t.Fatalf("total len = %d", f.IP.TotalLen)
	}
}
