package gro

import (
	"bytes"
	"testing"

	"falcon/internal/proto"
	"falcon/internal/skb"
)

// vxlanSeg builds a VXLAN-encapsulated TCP segment of the inner flow.
func vxlanSeg(srcPort uint16, seq uint32, payload []byte, entropy uint16) *skb.SKB {
	inner := proto.BuildTCPFrame(proto.MACFromUint64(10), proto.MACFromUint64(11),
		proto.IP4(10, 32, 0, 1), proto.IP4(10, 32, 0, 2),
		proto.TCPHdr{SrcPort: srcPort, DstPort: 80, Seq: seq, Flags: proto.TCPAck, Window: 65535},
		0, payload)
	outer := proto.Encapsulate(inner, proto.MACFromUint64(20), proto.MACFromUint64(21),
		proto.IP4(192, 168, 1, 1), proto.IP4(192, 168, 1, 2), entropy, 42, seq16(seq))
	return skb.New(outer)
}

func seq16(v uint32) uint16 { return uint16(v%65000) + 1 }

func TestVXLANTCPBytesEligibility(t *testing.T) {
	if TCPBytes(vxlanSeg(5000, 0, []byte("data"), 49152)) == 0 {
		t.Fatal("VXLAN-encapsulated TCP not GRO-eligible")
	}
	// Encapsulated UDP is not eligible.
	innerUDP := proto.BuildUDPFrame(proto.MACFromUint64(10), proto.MACFromUint64(11),
		proto.IP4(10, 32, 0, 1), proto.IP4(10, 32, 0, 2), 7000, 5001, 1, []byte("u"))
	outer := proto.Encapsulate(innerUDP, proto.MACFromUint64(20), proto.MACFromUint64(21),
		proto.IP4(192, 168, 1, 1), proto.IP4(192, 168, 1, 2), 49152, 42, 9)
	if TCPBytes(skb.New(outer)) != 0 {
		t.Fatal("VXLAN-encapsulated UDP marked GRO-eligible")
	}
	// Plain UDP is not eligible.
	if TCPBytes(skb.New(innerUDP)) != 0 {
		t.Fatal("plain UDP marked GRO-eligible")
	}
}

func TestVXLANSegmentsMerge(t *testing.T) {
	e := New()
	pay := bytes.Repeat([]byte{'v'}, 1000)
	for i := 0; i < 4; i++ {
		out := e.Push(vxlanSeg(5000, uint32(i*1000), pay, 49152))
		if out != nil {
			t.Fatalf("segment %d not absorbed", i)
		}
	}
	merged := e.Flush()
	if len(merged) != 1 || merged[0].Segs != 4 {
		t.Fatalf("merge failed: %d packets", len(merged))
	}
	// The merged frame must still decapsulate into a valid inner frame
	// carrying all four payloads in order.
	inner, vni, err := proto.Decapsulate(merged[0].Data)
	if err != nil {
		t.Fatalf("merged frame does not decapsulate: %v", err)
	}
	if vni != 42 {
		t.Fatalf("vni = %d", vni)
	}
	fi, err := proto.ParseFrame(inner)
	if err != nil {
		t.Fatalf("merged inner invalid: %v", err)
	}
	if len(fi.Payload) != 4000 {
		t.Fatalf("merged inner payload = %d, want 4000", len(fi.Payload))
	}
	for i, b := range fi.Payload {
		if b != 'v' {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestVXLANDistinctInnerFlowsDoNotMerge(t *testing.T) {
	e := New()
	pay := bytes.Repeat([]byte{'x'}, 500)
	e.Push(vxlanSeg(5000, 0, pay, 49152))
	e.Push(vxlanSeg(6000, 0, pay, 49153)) // different inner flow
	out := e.Flush()
	if len(out) != 2 {
		t.Fatalf("cross-flow merge: %d packets", len(out))
	}
}

func TestVXLANAndPlainDoNotMerge(t *testing.T) {
	// Same inner 5-tuple, but one is encapsulated and one is plain: the
	// engine must not fold them into the same super-packet.
	e := New()
	pay := bytes.Repeat([]byte{'y'}, 500)
	e.Push(vxlanSeg(5000, 0, pay, 49152))
	plain := proto.BuildTCPFrame(proto.MACFromUint64(10), proto.MACFromUint64(11),
		proto.IP4(10, 32, 0, 1), proto.IP4(10, 32, 0, 2),
		proto.TCPHdr{SrcPort: 5000, DstPort: 80, Seq: 500, Flags: proto.TCPAck, Window: 65535},
		0, pay)
	released := e.Push(skb.New(plain))
	// Different encapsulation forces a release rather than a merge.
	if released == nil {
		flushed := e.Flush()
		total := 0
		for _, s := range flushed {
			total += s.Segs
		}
		if len(flushed) < 1 || total != 2 {
			t.Fatalf("plain+vxlan merged: %d packets, %d segs", len(flushed), total)
		}
		if flushed[0].Segs != 1 {
			t.Fatal("encapsulation mismatch merged")
		}
	}
}

func TestFragmentNotEligible(t *testing.T) {
	// An IP fragment (even of a TCP datagram) must bypass GRO.
	big := proto.BuildTCPFrame(proto.MACFromUint64(1), proto.MACFromUint64(2),
		proto.IP4(10, 0, 0, 1), proto.IP4(10, 0, 0, 2),
		proto.TCPHdr{SrcPort: 5000, DstPort: 80, Seq: 0, Flags: proto.TCPAck, Window: 65535},
		0, bytes.Repeat([]byte{'z'}, 100))
	// Rewrite as a fragment (set MF).
	ip := proto.IPv4Hdr{TotalLen: uint16(len(big) - proto.EthLen), ID: 9, TTL: 64,
		Protocol: proto.ProtoTCP, Src: proto.IP4(10, 0, 0, 1), Dst: proto.IP4(10, 0, 0, 2),
		MoreFrags: true}
	proto.PutIPv4(big[proto.EthLen:], ip)
	if TCPBytes(skb.New(big)) != 0 {
		t.Fatal("IP fragment marked GRO-eligible")
	}
	e := New()
	s := skb.New(big)
	if out := e.Push(s); out != s {
		t.Fatal("fragment absorbed by GRO")
	}
}
