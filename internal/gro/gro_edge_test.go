package gro

import (
	"bytes"
	"testing"
)

// TestOutOfOrderAbsorbTable pins Push's merge decision against every
// out-of-order shape one flow can produce relative to a held run
// [1000, 1100): only the exact-next sequence is absorbed; anything else
// — forward gap, retransmit, backward overlap — releases the held
// super-packet and starts a new run at the offered segment, exactly as
// the kernel's tcp_gro_receive flush-on-mismatch does.
func TestOutOfOrderAbsorbTable(t *testing.T) {
	cases := []struct {
		name    string
		seq     uint32
		absorb  bool
		newNext uint32 // expected nextSeq of the head left behind
	}{
		{"exact-next", 1100, true, 1200},
		{"forward-gap", 1300, false, 1400},
		{"retransmit-head", 1000, false, 1100},
		{"backward-overlap", 1050, false, 1150},
		{"far-backward", 20, false, 120},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := New()
			head := bytes.Repeat([]byte{'a'}, 100)
			if e.Push(tcpSeg(5000, 1000, head)) != nil {
				t.Fatal("head segment not held")
			}
			out := e.Push(tcpSeg(5000, tc.seq, bytes.Repeat([]byte{'b'}, 100)))
			if tc.absorb {
				if out != nil {
					t.Fatal("exact-next segment not absorbed")
				}
				if e.Merged != 1 {
					t.Fatalf("Merged = %d, want 1", e.Merged)
				}
			} else {
				if out == nil {
					t.Fatalf("seq %d did not release the held packet", tc.seq)
				}
				if got := payloadOf(t, out); !bytes.Equal(got, head) {
					t.Fatal("released packet is not the held head")
				}
				if e.Merged != 0 {
					t.Fatal("out-of-order segment was merged")
				}
			}
			// Exactly one run remains held either way; a following
			// exact-next segment for the new run must be absorbed,
			// proving nextSeq advanced to the expected position.
			if e.HeldCount() != 1 {
				t.Fatalf("HeldCount = %d, want 1", e.HeldCount())
			}
			if e.Push(tcpSeg(5000, tc.newNext, []byte("zz"))) != nil {
				t.Fatalf("segment at new nextSeq %d not absorbed", tc.newNext)
			}
			if fl := e.Flush(); len(fl) != 1 {
				t.Fatalf("flush = %d packets, want 1", len(fl))
			}
			if e.HeldCount() != 0 {
				t.Fatal("flush left held state")
			}
		})
	}
}

// TestInterleavedFlowsKeepIndependentRuns: out-of-order on one flow must
// not disturb another flow's in-progress merge.
func TestInterleavedFlowsKeepIndependentRuns(t *testing.T) {
	e := New()
	e.Push(tcpSeg(5000, 0, bytes.Repeat([]byte{'a'}, 50)))
	e.Push(tcpSeg(6000, 0, bytes.Repeat([]byte{'x'}, 50)))
	// Flow 5000 jumps; flow 6000 stays contiguous.
	if e.Push(tcpSeg(5000, 7777, bytes.Repeat([]byte{'b'}, 50))) == nil {
		t.Fatal("gap on flow 5000 not released")
	}
	if e.Push(tcpSeg(6000, 50, bytes.Repeat([]byte{'y'}, 50))) != nil {
		t.Fatal("contiguous segment on flow 6000 not absorbed")
	}
	out := e.Flush()
	if len(out) != 2 {
		t.Fatalf("flush = %d packets, want 2", len(out))
	}
	// Flow 6000's super-packet kept both segments despite the other
	// flow's reset in between.
	var found bool
	for _, s := range out {
		if s.Segs == 2 && len(payloadOf(t, s)) == 100 {
			found = true
		}
	}
	if !found {
		t.Fatal("flow 6000 merge was disturbed by flow 5000's gap")
	}
}
