// Package gro implements Generic Receive Offload: coalescing consecutive
// TCP segments of one flow, received within a NAPI poll batch, into
// super-packets of up to 64 KB. GRO slashes per-packet upper-stack cost
// for bulk TCP but is itself CPU-hungry — at 4 KB segments it saturates
// the pNIC stage together with skb allocation (paper Fig. 9a), which is
// why Falcon's softirq *splitting* moves napi_gro_receive to its own
// core ("GRO-splitting", Section 4.2).
//
// The engine operates on real frame bytes: merged super-packets carry a
// rewritten IPv4 header (length + checksum) so they still parse as valid
// frames downstream.
package gro

import "falcon/internal/skb"

// MaxMergedBytes caps a merged frame's total size; IPv4's 16-bit length
// bounds it just under 64 KB.
const MaxMergedBytes = 65000

type flowKeyID struct {
	key skb.FlowKey
}

type held struct {
	s        *skb.SKB
	nextSeq  uint32 // expected sequence of the next in-order segment
	innerOff int    // inner IPv4 offset for VXLAN frames; -1 for plain TCP
}

// Engine holds per-flow merge state for one NAPI context. It is a pure
// data structure: the caller charges CPU costs.
type Engine struct {
	table map[flowKeyID]*held
	order []flowKeyID // flush order = first-arrival order

	// Merged counts segments absorbed into a super-packet; Held counts
	// packets currently buffered.
	Merged uint64
}

// New returns an empty GRO engine.
func New() *Engine {
	return &Engine{table: make(map[flowKeyID]*held)}
}

// HeldCount returns the number of flows with a packet buffered.
func (e *Engine) HeldCount() int { return len(e.order) }

// Push offers s to the engine. Packets that cannot participate in GRO
// (non-TCP, unparsable, SYN/FIN/RST) are returned immediately for
// delivery. TCP segments — plain or VXLAN-encapsulated (matched on the
// inner flow, as udp_tunnel GRO does) — are buffered or merged; nil is
// returned while the engine absorbs them. A previously held super-packet
// is returned when s starts a new non-contiguous run for the same flow
// or when the held packet reached the size cap.
func (e *Engine) Push(s *skb.SKB) *skb.SKB {
	gi, ok := dissect(s)
	if !ok {
		return s
	}
	id := flowKeyID{key: gi.key}
	h, found := e.table[id]
	if !found {
		e.table[id] = &held{s: s, nextSeq: gi.seq + uint32(len(gi.payload)), innerOff: gi.innerOff}
		e.order = append(e.order, id)
		return nil
	}
	// Contiguity, size and same-encapsulation checks.
	if gi.seq != h.nextSeq || gi.innerOff != h.innerOff ||
		len(h.s.Data)+len(gi.payload) > MaxMergedBytes {
		// Release the held super-packet; s becomes the new head.
		out := h.s
		e.table[id] = &held{s: s, nextSeq: gi.seq + uint32(len(gi.payload)), innerOff: gi.innerOff}
		return out
	}
	mergeAt(h.s, gi.payload, h.innerOff)
	h.s.Segs += s.Segs
	h.nextSeq += uint32(len(gi.payload))
	e.Merged++
	// The absorbed segment's payload was copied into the super-packet;
	// recycle it (the kernel frees merged skbs in gro_pull_from_frag0).
	s.Stage("gro-absorbed")
	s.Free()
	return nil
}

// Flush releases all held packets in first-arrival order; called at the
// end of a NAPI poll batch (napi_gro_flush).
func (e *Engine) Flush() []*skb.SKB {
	if len(e.order) == 0 {
		return nil
	}
	out := make([]*skb.SKB, 0, len(e.order))
	for _, id := range e.order {
		if h, ok := e.table[id]; ok {
			out = append(out, h.s)
			delete(e.table, id)
		}
	}
	e.order = e.order[:0]
	return out
}
