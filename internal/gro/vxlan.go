package gro

import (
	"encoding/binary"

	"falcon/internal/proto"
	"falcon/internal/skb"
)

// VXLAN-aware GRO: modern NICs/kernels (udp_tunnel GRO) coalesce
// encapsulated TCP segments at the physical NIC's NAPI context by
// matching on the *inner* flow. This is why the pNIC stage saturates
// for overlay TCP bulk traffic exactly as for host traffic (paper
// Fig. 9a) and why Falcon's GRO splitting helps overlay TCP (Fig. 13).

// dissect classifies a frame for GRO: a plain TCP frame, a VXLAN frame
// with an inner TCP segment, or neither.
type groInfo struct {
	key      skb.FlowKey
	seq      uint32
	payload  []byte
	innerOff int // offset of the inner IPv4 header (VXLAN); -1 for plain
}

func dissect(s *skb.SKB) (groInfo, bool) {
	f, err := s.Frame()
	if err != nil || f.IP.IsFragment() {
		return groInfo{}, false
	}
	switch {
	case f.IP.Protocol == proto.ProtoTCP:
		if f.TCP.Flags&(proto.TCPSyn|proto.TCPFin|proto.TCPRst) != 0 || len(f.Payload) == 0 {
			return groInfo{}, false
		}
		return groInfo{
			key: skb.FlowKey{SrcIP: f.IP.Src, DstIP: f.IP.Dst,
				SrcPort: f.TCP.SrcPort, DstPort: f.TCP.DstPort, Proto: proto.ProtoTCP},
			seq: f.TCP.Seq, payload: f.Payload, innerOff: -1,
		}, true
	case f.IP.Protocol == proto.ProtoUDP && f.UDP.DstPort == proto.VXLANPort:
		fi, ok := s.VXLANInner()
		if !ok || fi.IP.Protocol != proto.ProtoTCP {
			return groInfo{}, false
		}
		if fi.TCP.Flags&(proto.TCPSyn|proto.TCPFin|proto.TCPRst) != 0 || len(fi.Payload) == 0 {
			return groInfo{}, false
		}
		return groInfo{
			key: skb.FlowKey{SrcIP: fi.IP.Src, DstIP: fi.IP.Dst,
				SrcPort: fi.TCP.SrcPort, DstPort: fi.TCP.DstPort, Proto: proto.ProtoTCP},
			seq: fi.TCP.Seq, payload: fi.Payload,
			innerOff: proto.OverlayOverhead + proto.EthLen,
		}, true
	default:
		return groInfo{}, false
	}
}

// TCPBytes reports the GRO-chargeable bytes of a packet: its length when
// it is a plain or VXLAN-encapsulated TCP segment, else zero. The
// receive path uses this to decide napi_gro_receive's per-byte cost and
// whether Falcon's GRO split applies. It runs off the skb's cached
// dissect, so repeated stage checks cost nothing.
func TCPBytes(s *skb.SKB) int {
	if _, ok := dissect(s); ok {
		return s.Len()
	}
	return 0
}

// mergeAt appends payload to the merged frame and patches every length
// and checksum on the path to it: for plain TCP the single IPv4 header;
// for VXLAN both the outer IPv4/UDP and the inner IPv4.
func mergeAt(dst *skb.SKB, payload []byte, innerOff int) {
	dst.SetData(append(dst.Data, payload...))
	n := uint16(len(payload))
	patchIPv4 := func(off int) {
		ip := dst.Data[off:]
		total := binary.BigEndian.Uint16(ip[2:4]) + n
		binary.BigEndian.PutUint16(ip[2:4], total)
		binary.BigEndian.PutUint16(ip[10:12], 0)
		binary.BigEndian.PutUint16(ip[10:12], proto.Checksum(ip[:proto.IPv4Len]))
	}
	patchIPv4(proto.EthLen)
	if innerOff >= 0 {
		// Outer UDP length, then the inner IPv4 header.
		udp := dst.Data[proto.EthLen+proto.IPv4Len:]
		binary.BigEndian.PutUint16(udp[4:6], binary.BigEndian.Uint16(udp[4:6])+n)
		patchIPv4(innerOff)
	}
}
