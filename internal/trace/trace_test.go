package trace

import (
	"strings"
	"testing"

	"falcon/internal/costmodel"
)

func TestProfileChargeAndShares(t *testing.T) {
	p := NewProfile(2)
	p.Charge(0, costmodel.FnGROReceive, 600)
	p.Charge(1, costmodel.FnSKBAlloc, 300)
	p.Charge(1, costmodel.FnSKBAlloc, 100)

	if p.Time(costmodel.FnSKBAlloc) != 400 {
		t.Fatalf("alloc time = %d", p.Time(costmodel.FnSKBAlloc))
	}
	if p.Calls(costmodel.FnSKBAlloc) != 2 {
		t.Fatalf("alloc calls = %d", p.Calls(costmodel.FnSKBAlloc))
	}
	if p.CoreTime(1, costmodel.FnSKBAlloc) != 400 || p.CoreTime(0, costmodel.FnSKBAlloc) != 0 {
		t.Fatal("per-core attribution wrong")
	}
	if p.Total() != 1000 {
		t.Fatalf("total = %d", p.Total())
	}
	if s := p.Share(costmodel.FnGROReceive); s != 0.6 {
		t.Fatalf("share = %v", s)
	}
}

func TestProfileTopOrdering(t *testing.T) {
	p := NewProfile(1)
	p.Charge(0, costmodel.FnBridge, 100)
	p.Charge(0, costmodel.FnVethXmit, 300)
	p.Charge(0, costmodel.FnIPRcv, 200)
	top := p.Top(2)
	if len(top) != 2 {
		t.Fatalf("top len = %d", len(top))
	}
	if top[0].Func != costmodel.FnVethXmit || top[1].Func != costmodel.FnIPRcv {
		t.Fatalf("ordering wrong: %v", top)
	}
}

func TestProfileTopEmpty(t *testing.T) {
	p := NewProfile(1)
	if p.Top(5) != nil {
		t.Fatal("empty profile returned rows")
	}
	if p.Share(costmodel.FnBridge) != 0 {
		t.Fatal("share of empty profile non-zero")
	}
}

func TestProfileReset(t *testing.T) {
	p := NewProfile(1)
	p.Charge(0, costmodel.FnBridge, 100)
	p.Reset()
	if p.Total() != 0 || p.Calls(costmodel.FnBridge) != 0 || p.CoreTime(0, costmodel.FnBridge) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestProfileChargeOutOfRangeCore(t *testing.T) {
	p := NewProfile(1)
	p.Charge(-1, costmodel.FnBridge, 50) // must not panic
	p.Charge(5, costmodel.FnBridge, 50)
	if p.Time(costmodel.FnBridge) != 100 {
		t.Fatal("totals should still accumulate")
	}
}

func TestProfileTable(t *testing.T) {
	p := NewProfile(1)
	p.Charge(0, costmodel.FnGROCellPoll, 1000)
	p.Charge(0, costmodel.FnBacklog, 3000)
	out := p.Table("flame", 10).String()
	if !strings.Contains(out, "gro_cell_poll") || !strings.Contains(out, "process_backlog") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	if !strings.Contains(out, "75.00%") {
		t.Fatalf("share missing:\n%s", out)
	}
}
