// Package trace is the simulation's perf/flamegraph analogue: it
// accumulates CPU time per datapath function (optionally per core) and
// renders the share tables the paper presents as flamegraphs (Figs. 6
// and 9a).
package trace

import (
	"fmt"
	"sort"

	"falcon/internal/costmodel"
	"falcon/internal/stats"
)

// Profile accumulates nanoseconds per function.
type Profile struct {
	total   [costmodel.NumFuncs]int64
	perCore [][costmodel.NumFuncs]int64
	calls   [costmodel.NumFuncs]uint64
}

// NewProfile returns a profile tracking cores CPU cores.
func NewProfile(cores int) *Profile {
	return &Profile{perCore: make([][costmodel.NumFuncs]int64, cores)}
}

// Charge records ns nanoseconds of fn on core.
func (p *Profile) Charge(core int, fn costmodel.Func, ns int64) {
	p.total[fn] += ns
	p.calls[fn]++
	if core >= 0 && core < len(p.perCore) {
		p.perCore[core][fn] += ns
	}
}

// Time returns the accumulated ns of fn across all cores.
func (p *Profile) Time(fn costmodel.Func) int64 { return p.total[fn] }

// Calls returns the number of invocations of fn.
func (p *Profile) Calls(fn costmodel.Func) uint64 { return p.calls[fn] }

// CoreTime returns the accumulated ns of fn on one core.
func (p *Profile) CoreTime(core int, fn costmodel.Func) int64 {
	return p.perCore[core][fn]
}

// Total returns the accumulated ns across all functions.
func (p *Profile) Total() int64 {
	var t int64
	for _, v := range p.total {
		t += v
	}
	return t
}

// Share returns fn's fraction of all profiled CPU time.
func (p *Profile) Share(fn costmodel.Func) float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return float64(p.total[fn]) / float64(t)
}

// Reset clears the profile.
func (p *Profile) Reset() {
	p.total = [costmodel.NumFuncs]int64{}
	p.calls = [costmodel.NumFuncs]uint64{}
	for i := range p.perCore {
		p.perCore[i] = [costmodel.NumFuncs]int64{}
	}
}

// Top returns the n most expensive functions with their shares, sorted
// descending — the flamegraph's widest frames.
func (p *Profile) Top(n int) []FuncShare {
	var all []FuncShare
	t := p.Total()
	if t == 0 {
		return nil
	}
	for f := costmodel.Func(0); f < costmodel.NumFuncs; f++ {
		if p.total[f] > 0 {
			all = append(all, FuncShare{
				Func:  f,
				Ns:    p.total[f],
				Share: float64(p.total[f]) / float64(t),
				Calls: p.calls[f],
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Ns != all[j].Ns {
			return all[i].Ns > all[j].Ns
		}
		return all[i].Func < all[j].Func
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// FuncShare is one row of a flamegraph table.
type FuncShare struct {
	Func  costmodel.Func
	Ns    int64
	Share float64
	Calls uint64
}

// Table renders the top-n functions as a stats.Table shaped like the
// paper's flamegraph annotations ("gro_cell_poll 30.61%...").
func (p *Profile) Table(title string, n int) *stats.Table {
	t := &stats.Table{Title: title, Columns: []string{"function", "cpu%", "calls", "time"}}
	for _, fs := range p.Top(n) {
		t.AddRow(fs.Func.String(),
			fmt.Sprintf("%.2f%%", fs.Share*100),
			fmt.Sprintf("%d", fs.Calls),
			fmt.Sprintf("%.3fms", float64(fs.Ns)/1e6))
	}
	return t
}
