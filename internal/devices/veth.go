package devices

import "falcon/internal/proto"

// Veth is one end of a virtual Ethernet pair. The bridge-side end gates
// a container's private network: veth_xmit on one end emerges as a
// receive on the peer, entering the container's stack through the
// per-CPU backlog (veth is not a NAPI device, so process_backlog polls
// it — the third softirq of the paper's Figure 3).
type Veth struct {
	Name    string
	Ifindex int
	MAC     proto.MAC

	peer *Veth

	// ContainerID identifies the container the pair serves (instrument-
	// ation only).
	ContainerID int
}

// NewVethPair creates both ends, already peered: the bridge-side end
// (attached to the host bridge) and the container-side end.
func NewVethPair(bridgeSide, containerSide string, bridgeIf, containerIf int, mac proto.MAC, containerID int) (*Veth, *Veth) {
	b := &Veth{Name: bridgeSide, Ifindex: bridgeIf, MAC: mac, ContainerID: containerID}
	c := &Veth{Name: containerSide, Ifindex: containerIf, MAC: mac, ContainerID: containerID}
	b.peer, c.peer = c, b
	return b, c
}

// Peer returns the other end of the pair.
func (v *Veth) Peer() *Veth { return v.peer }
