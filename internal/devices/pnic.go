package devices

import (
	"sort"

	"falcon/internal/costmodel"
	"falcon/internal/gro"
	"falcon/internal/netdev"
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/stats"
	"falcon/internal/steering"
)

// DefaultRingSize is the per-queue receive ring capacity.
const DefaultRingSize = 4096

// DefaultNAPIBudget is packets processed per softirq activation before
// the poll yields (net_rx_action's budget).
const DefaultNAPIBudget = 64

// DefaultModeration is the adaptive interrupt-moderation window: after a
// NAPI cycle completes, the next hardirq is held off this long so
// back-to-back traffic accumulates into poll batches (and GRO gets
// segments to merge). An arrival after a quiet period interrupts
// immediately, so idle-flow latency is unaffected — the "adaptive
// interrupt coalescing" the paper's testbed enables.
const DefaultModeration = 12 * sim.Microsecond

// PNIC is a multi-queue physical NIC on the receive side: RSS spreads
// flows across queues, each queue's hardirq is affined to a core, and a
// NAPI poll loop drains the ring in softirq context with interrupt
// coalescing (no further hardirqs while polling) and optional GRO.
type PNIC struct {
	St      *netdev.Stack
	Name    string
	Ifindex int

	RSS        steering.RSS
	GROEnabled bool
	RingSize   int
	Budget     int
	// Moderation is the interrupt-coalescing window (0 = default;
	// negative = disabled).
	Moderation sim.Time

	// OnReceive continues the stack after poll+alloc(+GRO merge): it is
	// the netif_receive_skb entry installed by the receive path builder.
	OnReceive netdev.Handler

	queues map[int]*nicQueue

	// ringLimit, when positive, caps the usable depth of every rx ring
	// below RingSize — fault injection's "ring shrink" (a driver reset
	// renegotiating a tiny ring, or DMA buffer exhaustion). Zero is the
	// healthy full-depth ring.
	ringLimit int

	// down, when set, models a crashed host's NIC: every arriving frame
	// is dropped (accounted into crashDrops) instead of DMA'd — the wire
	// keeps delivering, the silicon is dead. Set via SetDown by the
	// host-crash fault.
	down       bool
	crashDrops *stats.Counter

	// Drops counts frames rejected by full rings.
	Drops stats.Counter
	// HardIRQs counts interrupt activations (coalesced).
	HardIRQs stats.Counter
}

type nicQueue struct {
	core         int
	ring         *skb.Queue
	active       bool
	gro          *gro.Engine
	lastComplete sim.Time // when the previous NAPI cycle finished
	irqArmed     bool     // a delayed (moderated) hardirq is scheduled

	// Per-cycle poll state, held on the queue (instead of per-packet
	// closures) so the cached continuations below drive the whole NAPI
	// loop allocation-free.
	budget  int
	cur     *skb.SKB
	flushed []*skb.SKB
	fi      int
	more    bool

	fire       func() // (possibly moderated) hardirq entry
	raiseFn    func() // softirq raise after the hardirq charge
	pollStart  func() // fresh activation: reset budget, start polling
	afterAlloc func() // continue cur after poll+alloc charges
	pollNext   func() // next poll iteration
	deliverNxt func() // next flushed super-packet delivery
}

// NewPNIC builds a NIC registered on stack st.
func NewPNIC(st *netdev.Stack, name string, rss steering.RSS, groOn bool) *PNIC {
	return &PNIC{
		St:         st,
		Name:       name,
		Ifindex:    st.RegisterDevice(name),
		RSS:        rss,
		GROEnabled: groOn,
		RingSize:   DefaultRingSize,
		Budget:     DefaultNAPIBudget,
		queues:     make(map[int]*nicQueue),
	}
}

func (n *PNIC) queue(core int) *nicQueue {
	q, ok := n.queues[core]
	if !ok {
		q = &nicQueue{core: core, ring: skb.NewQueue(n.RingSize), gro: gro.New()}
		q.fire = func() {
			q.irqArmed = false
			if q.active || q.ring.Len() == 0 {
				return
			}
			q.active = true
			n.HardIRQs.Inc()
			n.St.M.IRQ.Inc(q.core, stats.IRQHard)
			n.St.M.Core(q.core).Exec(stats.CtxHardIRQ, costmodel.FnHardIRQ, 0, q.raiseFn)
		}
		q.raiseFn = func() { n.raiseNetRX(q) }
		q.pollStart = func() {
			q.budget = n.Budget
			n.poll(q)
		}
		q.afterAlloc = func() {
			s := q.cur
			q.cur = nil
			q.budget--
			out := s
			if n.GROEnabled {
				out = q.gro.Push(s)
			}
			if out != nil {
				n.OnReceive(n.St.M.Core(q.core), out, q.pollNext)
				return
			}
			n.poll(q)
		}
		q.pollNext = func() { n.poll(q) }
		q.deliverNxt = func() {
			if q.fi < len(q.flushed) {
				s := q.flushed[q.fi]
				q.fi++
				n.OnReceive(n.St.M.Core(q.core), s, q.deliverNxt)
				return
			}
			q.flushed = nil
			if q.more || q.ring.Len() > 0 {
				n.raiseNetRX(q)
				return
			}
			// napi_complete: re-enable the (moderated) hardirq.
			q.active = false
			q.lastComplete = n.St.M.E.Now()
		}
		n.queues[core] = q
	}
	return q
}

// RingLen returns the rx ring depth of the queue affined to core.
func (n *PNIC) RingLen(core int) int { return n.queue(core).ring.Len() }

// QueueState reports the queue affined to core without creating it:
// ring depth, remaining poll budget, and whether NAPI is active. The
// audit watchdog probes through here every sweep, so instantiating
// queues as a side effect would perturb the run.
func (n *PNIC) QueueState(core int) (ringLen, budget int, active bool) {
	q, ok := n.queues[core]
	if !ok {
		return 0, 0, false
	}
	return q.ring.Len(), q.budget, q.active
}

// EachRing visits every instantiated rx ring in core order.
func (n *PNIC) EachRing(yield func(core int, ring *skb.Queue)) {
	cores := make([]int, 0, len(n.queues))
	for c := range n.queues {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	for _, c := range cores {
		yield(c, n.queues[c].ring)
	}
}

// GROMerged sums segments absorbed into held super-packets across every
// queue's GRO engine.
func (n *PNIC) GROMerged() uint64 {
	var total uint64
	for _, q := range n.queues {
		total += q.gro.Merged
	}
	return total
}

// SetRingLimit caps (limit > 0) or restores (limit <= 0) the usable rx
// ring depth. Frames already in a ring beyond a new cap stay queued;
// only admissions are limited.
func (n *PNIC) SetRingLimit(limit int) {
	if limit < 0 {
		limit = 0
	}
	n.ringLimit = limit
}

// SetDown marks the NIC dead (crashed host) or alive again. While down,
// every arriving frame is freed and counted into drops (the crash
// census bucket), so wire-delivered frames stay conserved.
func (n *PNIC) SetDown(down bool, drops *stats.Counter) {
	n.down = down
	n.crashDrops = drops
}

// PurgeRings frees every frame parked in an rx ring or held by an outer
// GRO engine, in core order, counting each into drops. In-flight poll
// state (q.cur, a flushed batch mid-delivery) is deliberately left
// alone: those SKBs are owned by continuation chains that terminate at
// the stack's own down checks.
func (n *PNIC) PurgeRings(drops *stats.Counter) {
	cores := make([]int, 0, len(n.queues))
	for c := range n.queues {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	for _, c := range cores {
		q := n.queues[c]
		for q.ring.Len() > 0 {
			s := q.ring.Dequeue()
			s.Stage("drop:nic-down")
			s.Free()
			drops.Inc()
		}
		for _, s := range q.gro.Flush() {
			s.Stage("drop:nic-down")
			s.Free()
			drops.Inc()
		}
	}
}

// Arrive is the link-delivery entry: DMA into the RSS-selected queue's
// ring and raise a (coalesced) hardirq. The receiving host starts from a
// fresh sk_buff: sender-side hash and core affinity do not carry over
// the wire.
func (n *PNIC) Arrive(s *skb.SKB) {
	if n.down {
		s.Stage("drop:nic-down")
		s.Free()
		if n.crashDrops != nil {
			n.crashDrops.Inc()
		}
		return
	}
	s.ResetFlowHash()
	s.LastCore = -1
	s.Migrations = 0
	if err := s.SetFlowHash(); err != nil {
		n.Drops.Inc()
		s.Stage("drop:nic-frame")
		s.Free()
		return
	}
	s.IfIndex = n.Ifindex
	q := n.queue(n.RSS.CoreFor(s.Hash))
	if n.ringLimit > 0 && q.ring.Len() >= n.ringLimit {
		n.Drops.Inc()
		s.Stage("drop:nic-ring")
		s.Free()
		return
	}
	s.Stage("nic-ring")
	if !q.ring.Enqueue(s) {
		n.Drops.Inc()
		s.Stage("drop:nic-ring")
		s.Free()
		return
	}
	if q.active || q.irqArmed {
		return // NAPI polling or a moderated interrupt pending
	}
	mod := n.Moderation
	if mod == 0 {
		mod = DefaultModeration
	}
	now := n.St.M.E.Now()
	if hold := q.lastComplete + mod - now; mod > 0 && hold > 0 {
		q.irqArmed = true
		n.St.M.E.After(hold, q.fire)
		return
	}
	q.fire()
}

// raiseNetRX schedules one softirq activation of the poll loop.
func (n *PNIC) raiseNetRX(q *nicQueue) {
	n.St.M.IRQ.Inc(q.core, stats.IRQNetRX)
	core := n.St.M.Core(q.core)
	core.Exec(stats.CtxSoftIRQ, costmodel.FnSoftIRQEntry, 0, q.pollStart)
}

// poll drains up to the queue's remaining budget: per packet it charges
// the poll and skb-allocation costs, then feeds GRO. When the ring
// empties or the budget runs out, held GRO super-packets flush and the
// batch is handed to OnReceive in order.
func (n *PNIC) poll(q *nicQueue) {
	if q.budget == 0 || q.ring.Len() == 0 {
		n.flushAndDeliver(q, q.ring.Len() > 0)
		return
	}
	s := q.ring.Dequeue()
	s.Stage("napi-poll")
	s.Touch(q.core)
	q.cur = s
	core := n.St.M.Core(q.core)
	n.St.RunChain(core, stats.CtxSoftIRQ, []netdev.Step{
		{Fn: costmodel.FnNAPIPoll},
		{Fn: costmodel.FnSKBAlloc, Bytes: s.Len()},
	}, q.afterAlloc)
}

// flushAndDeliver releases GRO state and either re-arms the poll (budget
// exhausted with work remaining → a fresh NET_RX activation) or
// completes the NAPI cycle, re-enabling the hardirq.
func (n *PNIC) flushAndDeliver(q *nicQueue, more bool) {
	q.flushed = q.gro.Flush()
	q.fi = 0
	q.more = more
	q.deliverNxt()
}
