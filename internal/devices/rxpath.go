package devices

import (
	"sort"

	"falcon/internal/costmodel"
	"falcon/internal/cpu"
	"falcon/internal/gro"
	"falcon/internal/ipfrag"
	"falcon/internal/netdev"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/stats"
	"falcon/internal/steering"
)

// RxFlowCache abstracts the ONCache-style decap fast path so the
// datapath does not depend on the overlay package (which owns the KV
// version and generation state entries revalidate against). The cache
// is consulted at the l3 branch for non-fragment VXLAN frames: a Probe
// hit returns the precomputed per-stage cost sum to charge, and the
// frame decapsulates in place and delivers straight to L4 — skipping
// the inner stage walk (outer udp_rcv + vxlan_rcv, gro_cell_poll,
// bridge, veth_xmit, backlog, second L3 traversal) and its softirq
// raises. A miss falls through to the walk after Learn records the
// flow, so the next packet fast-paths. Tables are per simulated core —
// core is the ID of the core the probe runs on — and implementations
// must only record flows the walk would deliver.
type RxFlowCache interface {
	Probe(core int, s *skb.SKB) (sim.Time, bool)
	Learn(core int, s *skb.SKB)
}

// CPUSelector abstracts Falcon's placement decisions so the datapath
// does not depend on the core package. A nil selector is the vanilla
// kernel (stages stay on the current core).
type CPUSelector interface {
	// GetCPU returns the core for the next stage of s at device ifindex
	// and whether Falcon placement applies.
	GetCPU(s *skb.SKB, ifindex int) (int, bool)
	// GROSplitOn reports whether the pNIC stage should be split before
	// napi_gro_receive.
	GROSplitOn() bool
}

// RxPath is the composed receive pipeline of one host (paper Fig. 8):
//
//	pNIC poll/alloc [→ Falcon GRO split] → GRO → netif_receive → RPS hop
//	→ ip_rcv → (host: L4) | (overlay: udp_rcv → vxlan_rcv decap
//	[→ Falcon hop] → gro_cell_poll → inner GRO → bridge → veth_xmit
//	[→ Falcon hop] → process_backlog → inner ip_rcv → L4)
//
// L4 handling (udp_rcv/tcp_v4_rcv + socket or transport delivery) is
// delegated to DeliverL4, installed by the overlay builder.
type RxPath struct {
	St  *netdev.Stack
	NIC *PNIC
	RPS steering.RPS

	// Falcon, when non-nil, pipelines stages across FALCON_CPUS.
	Falcon CPUSelector

	// Cache, when non-nil, is the RX decap fast path probed at the l3
	// branch (installed by the overlay builder; nil = full walk always).
	Cache RxFlowCache

	// Overlay wiring (nil Bridge means host-network mode for all
	// traffic).
	VXLANIf   int
	Bridge    *Bridge
	VethByMAC map[proto.MAC]*Veth

	// InnerGRO enables GRO at the VXLAN gro_cells stage (inner TCP
	// flows), as the kernel's gro_cells do.
	InnerGRO bool

	// DeliverL4 terminates the path: it must charge L4 costs and hand
	// the packet to a socket or transport endpoint.
	DeliverL4 netdev.Handler

	// Reasm is the host's IP reassembly queue (created on first
	// fragment; only exercised in MTU mode).
	Reasm *ipfrag.Reassembler

	// Decapped counts packets that took the overlay branch; HostPath
	// counts packets delivered natively.
	Decapped stats.Counter
	HostPath stats.Counter
	// PathDrops counts packets discarded inside the path (unparsable,
	// unknown MAC).
	PathDrops stats.Counter

	innerGRO map[int]*gro.Engine // per-core gro_cells engines

	// Cached Handler method values for the backlog entry points. A bound
	// method expression like rx.groStage allocates a closure at every
	// evaluation site; binding each once at Install keeps the per-packet
	// NetifRx calls allocation-free.
	hGRO          netdev.Handler
	hL3Backlog    netdev.Handler
	hVxlanBacklog netdev.Handler
	hVeth         netdev.Handler

	// walks is the path's rxWalk free list: every walk starts and ends on
	// this path's host (one PDES shard), so a plain single-owner list
	// recycles them without the sync.Pool atomics the walks used to pay.
	walks *rxWalk
}

// InnerGROMerged sums segments absorbed by the per-core gro_cells
// engines (the inner-GRO analogue of PNIC.GROMerged).
func (rx *RxPath) InnerGROMerged() uint64 {
	var total uint64
	for _, e := range rx.innerGRO {
		total += e.Merged
	}
	return total
}

// InnerGROHeld counts super-packets currently buffered inside the
// per-core gro_cells engines — in-flight work a host drain must see
// flushed before declaring the datapath quiesced.
func (rx *RxPath) InnerGROHeld() int {
	var total int
	for _, e := range rx.innerGRO {
		total += e.HeldCount()
	}
	return total
}

// PurgeHeld frees every segment the per-core gro_cells engines hold, in
// core order, counting each into drops — a host crash kills held
// inner-GRO state with the kernel that was accumulating it.
func (rx *RxPath) PurgeHeld(drops *stats.Counter) {
	cores := make([]int, 0, len(rx.innerGRO))
	for c := range rx.innerGRO {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	for _, c := range cores {
		for _, s := range rx.innerGRO[c].Flush() {
			s.Stage("drop:host-crash")
			s.Free()
			drops.Inc()
		}
	}
}

// Install wires the path into its NIC. Call once after filling fields.
func (rx *RxPath) Install() {
	if rx.innerGRO == nil {
		rx.innerGRO = make(map[int]*gro.Engine)
	}
	rx.hGRO = rx.groStage
	rx.hL3Backlog = rx.l3Backlog
	rx.hVxlanBacklog = rx.vxlanBacklog
	rx.hVeth = rx.vethBacklog
	rx.NIC.OnReceive = rx.afterAlloc
	if rx.InnerGRO {
		rx.St.OnDrained = rx.flushHeld
	}
}

// rxWalk threads one packet through the stage pipeline without per-stage
// closures: the continuation passed to each Submit/Exec/RunChain is a
// method value cached on the recycled object, so steady-state traffic
// reuses the same handful of walk objects instead of allocating a chain
// of closures per packet (previously the dominant rx-side allocation
// source). A walk lives from a backlog entry point to the next stage
// boundary — each NetifRx hop ends the current walk and a fresh one
// starts when the target backlog drains.
type rxWalk struct {
	rx   *RxPath
	c    *cpu.Core
	s    *skb.SKB
	done func()

	vethIf int         // destination veth, bridge → veth_xmit handoff
	eng    *gro.Engine // this core's gro_cells engine (inner-GRO path)

	// Continuations, bound once at pool-New time.
	afterGRO       func()
	afterNetif     func()
	afterL3Poll    func()
	afterIPRcv     func()
	afterVxlanRcv  func()
	afterCellPoll  func()
	afterInnerGRO  func()
	afterBridge    func()
	afterVethXmit  func()
	afterVethPoll  func()
	afterVethChain func()
	afterFast      func() // cache hit: straight to DeliverL4

	next *rxWalk // RxPath free list
}

func newRxWalk(rx *RxPath, c *cpu.Core, s *skb.SKB, done func()) *rxWalk {
	w := rx.walks
	if w == nil {
		w = new(rxWalk)
		w.afterGRO = w.netifStage
		w.afterNetif = w.steer
		w.afterL3Poll = w.l3Stage
		w.afterIPRcv = w.l3Branch
		w.afterVxlanRcv = w.decap
		w.afterCellPoll = w.cellPolled
		w.afterInnerGRO = w.innerMerged
		w.afterBridge = w.bridged
		w.afterVethXmit = w.vethHop
		w.afterVethPoll = w.vethStage
		w.afterVethChain = w.vethDeliver
		w.afterFast = w.deliver
	} else {
		rx.walks = w.next
		w.next = nil
	}
	w.rx, w.c, w.s, w.done = rx, c, s, done
	return w
}

// release returns the walk to its path's free list.
func (w *rxWalk) release() {
	rx := w.rx
	w.rx, w.c, w.s, w.done, w.eng = nil, nil, nil, nil, nil
	w.next = rx.walks
	rx.walks = w
}

// finish releases the walk and runs its completion. The walk is
// released before done runs: done may start a new walk (the inner-GRO
// flush loop does) and should find this one available.
func (w *rxWalk) finish() {
	done := w.done
	w.release()
	done()
}

// deliver ends the walk at DeliverL4, releasing the walk first so L4
// processing (which may recirculate into the path) can reuse it.
func (w *rxWalk) deliver() {
	rx, c, s, done := w.rx, w.c, w.s, w.done
	w.release()
	rx.DeliverL4(c, s, done)
}

// drop disposes the packet at the named stage and ends the walk.
func (w *rxWalk) drop(stage string) {
	w.rx.PathDrops.Inc()
	w.s.Stage(stage)
	w.s.Free()
	w.finish()
}

// flushHeld is the napi_complete analogue: when a core's backlog fully
// drains, any segments its gro_cells engine still holds must flush. The
// in-batch flush in cellPolled misses them when the batch's last
// vxlan-stage packet is absorbed while later veth-stage entries still
// occupy the same queue — nothing re-enters the engine once those
// drain, and a window-limited TCP sender then deadlocks against its own
// held tail.
func (rx *RxPath) flushHeld(c *cpu.Core, done func()) {
	eng := rx.innerGRO[c.ID()]
	if eng == nil || eng.HeldCount() == 0 {
		done()
		return
	}
	items := eng.Flush()
	var run func(i int)
	run = func(i int) {
		if i < len(items) {
			rx.bridgeStage(c, items[i], func() { run(i + 1) })
			return
		}
		done()
	}
	run(0)
}

// afterAlloc runs on the NAPI core once poll+alloc are charged. With
// Falcon GRO splitting, everything from napi_gro_receive onward moves to
// a Falcon core (Section 4.2); otherwise it continues inline. The split
// applies only to TCP frames: GRO is a no-op for UDP, so moving UDP
// packets would pay the hop for nothing (the paper's Section 6.4
// observation that GRO splitting "does not take effect" for UDP).
func (rx *RxPath) afterAlloc(c *cpu.Core, s *skb.SKB, done func()) {
	if rx.Falcon != nil && rx.Falcon.GROSplitOn() && gro.TCPBytes(s) > 0 {
		if target, ok := rx.Falcon.GetCPU(s, rx.NIC.Ifindex); ok && target != c.ID() {
			// A full backlog is already counted by the stack's drop
			// counter; nothing extra to account here.
			rx.St.NetifRx(c, target, s, rx.hGRO)
			done()
			return
		}
	}
	rx.groStage(c, s, done)
}

// groStage charges napi_gro_receive. The per-byte merge work applies to
// TCP frames (segment folding + checksum); UDP and VXLAN-in-UDP outer
// frames only pay the base lookup.
func (rx *RxPath) groStage(c *cpu.Core, s *skb.SKB, done func()) {
	w := newRxWalk(rx, c, s, done)
	bytes := gro.TCPBytes(s)
	segs := s.Segs
	if segs < 1 {
		segs = 1
	}
	e := rx.St.M.Model.Get(costmodel.FnGROReceive)
	cost := sim.Time(e.Base*float64(segs) + e.PerByte*float64(bytes))
	c.Submit(stats.CtxSoftIRQ, costmodel.FnGROReceive, cost, w.afterGRO)
}

// netifStage charges netif_receive_skb and applies RPS steering — the
// first and only steering point the vanilla kernel gives a flow.
func (w *rxWalk) netifStage() {
	steps := []netdev.Step{
		{Fn: costmodel.FnNetifReceive},
		{Fn: costmodel.FnRPS},
	}
	w.rx.St.RunChain(w.c, stats.CtxSoftIRQ, steps, w.afterNetif)
}

func (w *rxWalk) steer() {
	rx, c, s := w.rx, w.c, w.s
	target := rx.RPS.CPUFor(s.Hash, c.ID())
	if target != c.ID() {
		rx.St.NetifRx(c, target, s, rx.hL3Backlog)
		w.finish()
		return
	}
	w.l3Stage()
}

// l3Backlog is the l3 stage reached through a backlog (charges the
// process_backlog poll cost first).
func (rx *RxPath) l3Backlog(c *cpu.Core, s *skb.SKB, done func()) {
	w := newRxWalk(rx, c, s, done)
	c.Exec(stats.CtxSoftIRQ, costmodel.FnBacklog, 0, w.afterL3Poll)
}

// l3Entry restarts the walk at ip_rcv — the re-entry point for
// datagrams completed by the reassembler.
func (rx *RxPath) l3Entry(c *cpu.Core, s *skb.SKB, done func()) {
	newRxWalk(rx, c, s, done).l3Stage()
}

// l3Stage runs ip_rcv and branches: IP fragments go to reassembly,
// VXLAN frames to the decapsulation path, the rest to native delivery.
func (w *rxWalk) l3Stage() {
	w.c.Exec(stats.CtxSoftIRQ, costmodel.FnIPRcv, 0, w.afterIPRcv)
}

func (w *rxWalk) l3Branch() {
	rx, s := w.rx, w.s
	if isFragment(s.Data) {
		// Cold path: release the walk and hand off to the closure-based
		// reassembler (only exercised in MTU mode).
		c, done := w.c, w.done
		w.release()
		rx.reassemble(c, s, done)
		return
	}
	if rx.Bridge != nil && s.IsVXLAN() {
		if rx.Cache != nil {
			if cost, hit := rx.Cache.Probe(w.c.ID(), s); hit {
				w.fastPath(cost)
				return
			}
			rx.Cache.Learn(w.c.ID(), s)
		}
		w.vxlanRcv()
		return
	}
	rx.HostPath.Inc()
	w.deliver()
}

// fastPath is the cache-hit continuation of the l3 branch: the frame
// decapsulates in place on the current core and goes straight to L4
// delivery, charged with the entry's cached per-stage cost sum instead
// of walking the inner stage pipeline. No stage transitions means no
// extra softirq raises and no backlog occupancy — which is the modeled
// win (and why hit-path delivery can exceed the walk's under overload:
// the skipped queues are where the walk drops).
func (w *rxWalk) fastPath(cost sim.Time) {
	rx, c, s := w.rx, w.c, w.s
	if !s.DecapVXLAN() {
		// Unreachable for a probed hit (the probe parsed the inner frame),
		// kept for parity with the walk's decap stage.
		w.drop("drop:decap")
		return
	}
	s.IfIndex = rx.VXLANIf
	s.Stage("rx-cache-hit")
	rx.Decapped.Inc()
	c.Submit(stats.CtxSoftIRQ, costmodel.FnRxCacheDeliver, cost, w.afterFast)
}

// reassemble feeds an IP fragment to the host's reassembly queue
// (ip_defrag); when the datagram completes it pays the rebuild copy and
// re-enters l3 processing as a whole packet.
func (rx *RxPath) reassemble(c *cpu.Core, s *skb.SKB, done func()) {
	if rx.Reasm == nil {
		rx.Reasm = ipfrag.NewReassembler()
	}
	whole, err := rx.Reasm.Add(s.Data, rx.St.M.E.Now())
	if err != nil {
		rx.PathDrops.Inc()
		s.Stage("drop:reasm")
		s.Free()
		done()
		return
	}
	if whole == nil {
		// Datagram incomplete: the reassembler retained the fragment's
		// payload bytes, so the buffer must not be recycled with the skb.
		s.DisownBuf()
		s.Stage("reasm-absorbed")
		s.Free()
		done()
		return
	}
	s.SetData(whole)
	// The linearization copy of the completed datagram.
	c.Exec(stats.CtxSoftIRQ, costmodel.FnSKBAlloc, len(whole), func() {
		rx.l3Entry(c, s, done)
	})
}

// isFragment peeks at the IPv4 flags without a full dissect.
func isFragment(frame []byte) bool {
	if len(frame) < proto.EthLen+proto.IPv4Len {
		return false
	}
	flags := uint16(frame[proto.EthLen+6])<<8 | uint16(frame[proto.EthLen+7])
	return flags&0x2000 != 0 || flags&0x1FFF != 0
}

// vxlanRcv charges the outer udp_rcv plus vxlan_rcv, performs the real
// decapsulation, and ends stage 1: the packet transitions to the VXLAN
// device's stage (Falcon: on another core; vanilla: same core).
func (w *rxWalk) vxlanRcv() {
	steps := []netdev.Step{
		{Fn: costmodel.FnUDPRcv},
		{Fn: costmodel.FnVXLANRcv, Bytes: w.s.Len()},
	}
	w.rx.St.RunChain(w.c, stats.CtxSoftIRQ, steps, w.afterVxlanRcv)
}

func (w *rxWalk) decap() {
	rx, c, s := w.rx, w.c, w.s
	if !s.DecapVXLAN() {
		w.drop("drop:decap")
		return
	}
	s.IfIndex = rx.VXLANIf
	s.Stage("vxlan-decap")
	rx.Decapped.Inc()
	rx.transition(c, s, rx.VXLANIf, rx.hVxlanBacklog)
	w.finish()
}

// vxlanBacklog is the VXLAN device's softirq reached through a backlog:
// gro_cell_poll picks the inner packet up, optionally GRO-merges inner
// TCP segments, then the frame crosses the bridge and veth pair.
func (rx *RxPath) vxlanBacklog(c *cpu.Core, s *skb.SKB, done func()) {
	w := newRxWalk(rx, c, s, done)
	c.Exec(stats.CtxSoftIRQ, costmodel.FnGROCellPoll, s.Len(), w.afterCellPoll)
}

func (w *rxWalk) cellPolled() {
	rx, c, s := w.rx, w.c, w.s
	if !rx.InnerGRO {
		w.bridgeChain()
		return
	}
	eng := rx.innerGRO[c.ID()]
	if eng == nil {
		eng = gro.New()
		rx.innerGRO[c.ID()] = eng
	}
	w.eng = eng
	// Charge inner GRO (per-byte for TCP only; Push ignores others).
	bytes := 0
	if isTCP(s.Data) && s.Segs == 1 {
		bytes = s.Len()
	}
	c.Exec(stats.CtxSoftIRQ, costmodel.FnGROReceive, bytes, w.afterInnerGRO)
}

func (w *rxWalk) innerMerged() {
	rx, c, eng := w.rx, w.c, w.eng
	out := eng.Push(w.s)
	// Flush at the end of the gro_cells batch (backlog drained), the
	// analogue of napi_gro_flush when the poll completes.
	if rx.St.BacklogLen(c.ID()) != 0 {
		// Mid-batch: at most the merge output continues; held segments
		// stay in the engine.
		if out == nil {
			w.finish()
			return
		}
		w.s = out
		w.bridgeChain()
		return
	}
	held := eng.HeldCount()
	if held == 0 {
		if out == nil {
			w.finish()
			return
		}
		w.s = out
		w.bridgeChain()
		return
	}
	flushed := eng.Flush()
	if out == nil && len(flushed) == 1 {
		w.s = flushed[0]
		w.bridgeChain()
		return
	}
	// Multiple packets leave the stage at once (merge output plus
	// flushed holds, in that order). Rare — batch boundaries only — so
	// the sequencing closure is acceptable here.
	c2, done := w.c, w.done
	w.release()
	items := flushed
	if out != nil {
		items = append([]*skb.SKB{out}, flushed...)
	}
	var run func(i int)
	run = func(i int) {
		if i < len(items) {
			rx.bridgeStage(c2, items[i], func() { run(i + 1) })
			return
		}
		done()
	}
	run(0)
}

// bridgeStage charges br_handle_frame, resolves the destination
// container's veth port via the FDB, charges veth_xmit, and ends stage
// 2: the packet transitions to the veth device's stage. Handler-shaped
// entry point for the flush loops.
func (rx *RxPath) bridgeStage(c *cpu.Core, s *skb.SKB, done func()) {
	newRxWalk(rx, c, s, done).bridgeChain()
}

func (w *rxWalk) bridgeChain() {
	steps := []netdev.Step{
		{Fn: costmodel.FnNetifReceive},
		{Fn: costmodel.FnBridge},
	}
	w.rx.St.RunChain(w.c, stats.CtxSoftIRQ, steps, w.afterBridge)
}

func (w *rxWalk) bridged() {
	rx, c, s := w.rx, w.c, w.s
	// The FDB lookup needs only the destination MAC: take it from the
	// cached dissect when available, falling back to the 14-byte
	// Ethernet parse for frames that don't dissect through L4.
	var dst proto.MAC
	if f, err := s.Frame(); err == nil {
		dst = f.Eth.Dst
	} else if eth, err := proto.ParseEthernet(s.Data); err == nil {
		dst = eth.Dst
	} else {
		w.drop("drop:bridge")
		return
	}
	veth, ok := rx.VethByMAC[dst]
	if !ok {
		rx.Bridge.Flooded.Inc()
		w.drop("drop:fdb")
		return
	}
	s.Stage("bridge")
	w.vethIf = veth.Ifindex
	c.Exec(stats.CtxSoftIRQ, costmodel.FnVethXmit, 0, w.afterVethXmit)
}

func (w *rxWalk) vethHop() {
	rx, c, s := w.rx, w.c, w.s
	s.IfIndex = w.vethIf
	rx.transition(c, s, w.vethIf, rx.hVeth)
	w.finish()
}

// isTCP is a cheap L4 check (IP protocol byte) without a full dissect.
func isTCP(frame []byte) bool {
	const protoOff = proto.EthLen + 9
	return len(frame) > protoOff && frame[proto.EthLen]>>4 == 4 && frame[protoOff] == proto.ProtoTCP
}

// InjectLocal delivers a frame destined to a local container without
// touching the NIC: the transmit path of same-host container-to-container
// traffic enqueues directly into the veth stage's backlog on the given
// core (netif_rx from the sender's context).
func (rx *RxPath) InjectLocal(from *cpu.Core, core int, s *skb.SKB) bool {
	return rx.St.NetifRx(from, core, s, rx.hVeth)
}

// vethBacklog is the veth stage reached through a backlog: veth is not a
// NAPI device, so process_backlog polls it (the paper's third softirq).
func (rx *RxPath) vethBacklog(c *cpu.Core, s *skb.SKB, done func()) {
	w := newRxWalk(rx, c, s, done)
	c.Exec(stats.CtxSoftIRQ, costmodel.FnBacklog, s.Len(), w.afterVethPoll)
}

// vethStage runs the container's private stack: netif_receive + ip_rcv,
// then L4 delivery.
func (w *rxWalk) vethStage() {
	steps := []netdev.Step{
		{Fn: costmodel.FnNetifReceive},
		{Fn: costmodel.FnIPRcv},
	}
	w.rx.St.RunChain(w.c, stats.CtxSoftIRQ, steps, w.afterVethChain)
}

func (w *rxWalk) vethDeliver() {
	w.deliver()
}

// transition implements the stage boundary at a device: netif_rx always
// enqueues to a per-CPU backlog and raises a softirq (so the vanilla
// overlay pays its three softirqs per packet on one core, paper Fig. 4);
// with Falcon active the target backlog is the device-hashed core
// instead of the current one (Algorithm 1, line 7).
func (rx *RxPath) transition(c *cpu.Core, s *skb.SKB, ifindex int, viaBacklog netdev.Handler) {
	target := c.ID()
	if rx.Falcon != nil {
		if t, ok := rx.Falcon.GetCPU(s, ifindex); ok {
			target = t
		}
	}
	rx.St.NetifRx(c, target, s, viaBacklog)
}
