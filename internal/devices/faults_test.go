package devices

import (
	"testing"

	"falcon/internal/sim"
	"falcon/internal/skb"
)

func TestLinkLossRate(t *testing.T) {
	e := sim.New(3)
	l := NewLink(e, 100*Gbps, 0)
	l.LossRate = 0.2
	delivered := 0
	l.Deliver = func(s *skb.SKB) { delivered++ }
	const n = 5000
	var send func(i int)
	send = func(i int) {
		if i == n {
			return
		}
		l.Send(skb.New(make([]byte, 64)))
		e.After(100, func() { send(i + 1) })
	}
	send(0)
	e.Run()
	if l.Lost.Value() == 0 {
		t.Fatal("no injected loss")
	}
	got := float64(delivered) / n
	if got < 0.75 || got > 0.85 {
		t.Fatalf("delivery ratio %.3f, want ~0.8", got)
	}
	if uint64(delivered)+l.Lost.Value() != n {
		t.Fatal("lost + delivered != sent")
	}
}

func TestLinkJitterPreservesOrder(t *testing.T) {
	e := sim.New(5)
	l := NewLink(e, 100*Gbps, sim.Microsecond)
	l.Jitter = 50 * sim.Microsecond
	var got []uint64
	l.Deliver = func(s *skb.SKB) { got = append(got, s.Seq) }
	for i := uint64(0); i < 200; i++ {
		s := skb.New(make([]byte, 64))
		s.Seq = i
		l.Send(s)
	}
	e.Run()
	if len(got) != 200 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("jitter reordered the wire at %d", i)
		}
	}
}

func TestLinkJitterDelaysDelivery(t *testing.T) {
	withJitter := func(j sim.Time) sim.Time {
		e := sim.New(9)
		l := NewLink(e, 100*Gbps, 0)
		l.Jitter = j
		var last sim.Time
		l.Deliver = func(s *skb.SKB) { last = e.Now() }
		for i := 0; i < 50; i++ {
			l.Send(skb.New(make([]byte, 64)))
		}
		e.Run()
		return last
	}
	if withJitter(100*sim.Microsecond) <= withJitter(0) {
		t.Fatal("jitter did not delay delivery")
	}
}

func TestLinkZeroImpairmentsUnchanged(t *testing.T) {
	e := sim.New(1)
	l := NewLink(e, 100*Gbps, 0)
	delivered := 0
	l.Deliver = func(s *skb.SKB) { delivered++ }
	for i := 0; i < 100; i++ {
		l.Send(skb.New(make([]byte, 64)))
	}
	e.Run()
	if delivered != 100 || l.Lost.Value() != 0 {
		t.Fatalf("clean link lost frames: %d/%d", delivered, l.Lost.Value())
	}
}
