// Package devices implements the network devices on the paper's data
// path: the physical NIC (rx rings, NAPI, RSS, GRO, hardware interrupt
// coalescing), the point-to-point link with real serialization delay,
// the Linux bridge (learning FDB), and veth pairs — plus the composed
// receive pipeline (rxpath.go) that chains them exactly as Figure 8
// shows, with Falcon's stage transitions at each device boundary.
package devices

import (
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/stats"
)

// Gbps expresses link rates.
const Gbps = 1e9

// ethOverheadBytes approximates per-frame wire overhead beyond the
// Ethernet header already present in the frame: preamble, SFD, FCS and
// inter-frame gap.
const ethOverheadBytes = 24

// DefaultTxQueueLen mirrors Linux's default NIC qdisc length.
const DefaultTxQueueLen = 1000

// Link is a unidirectional point-to-point wire with finite bandwidth, a
// bounded transmit queue, and propagation delay. Frames serialize in
// FIFO order; a full queue drops (the sender-side bottleneck the paper
// hits in 16 B single-client UDP tests).
type Link struct {
	E *sim.Engine
	// RateBitsPerSec is the link speed (10 Gb/s and 100 Gb/s in the
	// paper's testbed).
	RateBitsPerSec float64
	// Delay is one-way propagation latency (direct cable: sub-µs).
	Delay sim.Time
	// Deliver receives each frame at the far end.
	Deliver func(s *skb.SKB)

	// TxQueueLen bounds frames in flight on the serializer (0 = default).
	TxQueueLen int

	// MTU, when positive, is the largest IP packet the wire carries;
	// senders must fragment beyond it (0 = jumbo-frame mode, the
	// default, modelling GSO/TSO offloads).
	MTU int

	// Failure injection. LossRate drops each frame independently with
	// the given probability; Jitter adds a uniform random delay in
	// [0, Jitter] to each frame without reordering the wire (delays are
	// monotonized, as on a real point-to-point link).
	LossRate float64
	Jitter   sim.Time

	// Remote, when set, marks the far end as living on another PDES
	// shard: live frames are handed to it (a sim.PostSource wrapper)
	// at Send time with their computed arrival, while all link state —
	// serializer, queue, RNG draws for loss and jitter, counters, and
	// the disposal of lost frames — stays on the sending shard.
	Remote RemoteEgress

	busyUntil   sim.Time
	lastArrival sim.Time
	queued      int
	rng         *sim.Rand

	// inflight is the FIFO of frames on the wire. Arrival times are
	// monotone (serialization order, and jitter is monotonized), and the
	// engine fires equal-time events in schedule order, so the head of
	// this ring is always the frame whose delivery event fires next —
	// letting delivery run through one shared AtArg trampoline instead of
	// a per-frame closure.
	inflight []wireFrame
	head     int

	Sent    stats.Counter
	Dropped stats.Counter
	// Lost counts frames destroyed by injected loss (distinct from
	// queue-overflow drops).
	Lost stats.Counter
}

// NewLink builds a link of the given rate on engine e.
func NewLink(e *sim.Engine, rateBitsPerSec float64, delay sim.Time) *Link {
	return &Link{
		E: e, RateBitsPerSec: rateBitsPerSec, Delay: delay,
		TxQueueLen: DefaultTxQueueLen, rng: e.Rand().Fork(),
	}
}

// RemoteEgress carries frames whose delivery belongs to another PDES
// shard (the overlay wires it to a cluster PostSource targeting the
// receiving host's engine).
type RemoteEgress interface {
	// Send hands the frame to the far shard for delivery at arrival.
	Send(s *skb.SKB, arrival sim.Time)
}

// SerializationTime returns how long a frame of n bytes occupies the wire.
func (l *Link) SerializationTime(n int) sim.Time {
	bits := float64(n+ethOverheadBytes) * 8
	return sim.Time(bits / l.RateBitsPerSec * 1e9)
}

// Lookahead returns the minimum sender→receiver latency any frame on
// this link can experience: serialization of a zero-byte payload (wire
// overhead still serializes) plus propagation delay, floored at 1 ns.
// Jitter only ever adds delay and a busy serializer only pushes
// arrivals later, so no frame sent at time t can arrive before
// t+Lookahead() — the conservative bound a PDES cluster synchronizes
// on, and sim.PostSource's horizon guard re-checks it on every frame.
func (l *Link) Lookahead() sim.Time {
	la := l.SerializationTime(0) + l.Delay
	if la < 1 {
		la = 1
	}
	return la
}

// QueueLen returns frames currently queued or serializing.
func (l *Link) QueueLen() int { return l.queued }

// Send enqueues a frame for transmission. It reports false when the
// transmit queue is full (frame dropped).
func (l *Link) Send(s *skb.SKB) bool {
	limit := l.TxQueueLen
	if limit <= 0 {
		limit = DefaultTxQueueLen
	}
	if l.queued >= limit {
		l.Dropped.Inc()
		// The frame is dropped here, not handed back: no caller retries a
		// full tx queue, so the SKB's lifetime ends at this stage.
		s.Stage("drop:link-txq")
		s.Free()
		return false
	}
	now := l.E.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	txEnd := start + l.SerializationTime(s.Len())
	l.busyUntil = txEnd
	l.queued++
	if s.WireTime == 0 {
		s.WireTime = now
	}
	l.Sent.Inc()
	s.Stage("wire")
	arrival := txEnd + l.Delay
	if l.Jitter > 0 {
		arrival += sim.Time(l.rng.Intn(int(l.Jitter) + 1))
	}
	// No reordering on the wire: a frame can never overtake its
	// predecessor, even when a jitter fault reverts while jittered frames
	// are still in flight. The clamp must apply unconditionally — the
	// in-flight FIFO, the serial delivery events and the cross-shard
	// posted deliveries all rely on arrivals being monotone.
	if arrival < l.lastArrival {
		arrival = l.lastArrival
	}
	l.lastArrival = arrival
	lost := l.LossRate > 0 && l.rng.Float64() < l.LossRate
	if l.Remote != nil {
		// Cross-shard wire: the receiving shard owns live frames from
		// here on, so the in-flight ring keeps the SKB pointer only for
		// lost frames (disposed locally, at the same simulated time and
		// drop site as the serial path). The pop event still runs for
		// every frame to retire the serializer queue in FIFO order.
		wf := wireFrame{lost: lost}
		if lost {
			wf.s = s
		}
		l.inflight = append(l.inflight, wf)
		l.E.AtArg(arrival, linkRemotePop, l)
		if !lost {
			l.Remote.Send(s, arrival)
		}
		return true
	}
	l.inflight = append(l.inflight, wireFrame{s: s, lost: lost})
	l.E.AtArg(arrival, linkDeliver, l)
	return true
}

// wireFrame is one frame in flight on a link.
type wireFrame struct {
	s    *skb.SKB
	lost bool
}

// linkDeliver fires when the head-of-wire frame arrives.
func linkDeliver(v any) {
	l := v.(*Link)
	f := l.inflight[l.head]
	l.inflight[l.head] = wireFrame{}
	l.head++
	if l.head == len(l.inflight) {
		l.inflight = l.inflight[:0]
		l.head = 0
	}
	l.queued--
	if f.lost {
		l.Lost.Inc()
		f.s.Stage("drop:link-loss")
		f.s.Free()
		return
	}
	if l.Deliver != nil {
		l.Deliver(f.s)
	}
}

// linkRemotePop fires at a cross-shard frame's arrival time on the
// sending shard: it retires the frame from the serializer queue and
// disposes lost frames locally. Delivery of live frames happens on the
// receiving shard (the cluster scheduled it at the same nanosecond).
func linkRemotePop(v any) {
	l := v.(*Link)
	f := l.inflight[l.head]
	l.inflight[l.head] = wireFrame{}
	l.head++
	if l.head == len(l.inflight) {
		l.inflight = l.inflight[:0]
		l.head = 0
	}
	l.queued--
	if f.lost {
		l.Lost.Inc()
		f.s.Stage("drop:link-loss")
		f.s.Free()
	}
}

// Utilization returns the fraction of time [since, now] the wire was busy
// — approximated by whether the serializer is backed up.
func (l *Link) Busy() bool { return l.busyUntil > l.E.Now() }
