package devices

import (
	"bytes"
	"testing"

	"falcon/internal/costmodel"
	"falcon/internal/cpu"
	"falcon/internal/netdev"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/stats"
	"falcon/internal/steering"
)

func macFor(v uint64) proto.MAC { return proto.MACFromUint64(v) }

func newNIC(t *testing.T, cores int, rssCores []int, groOn bool) (*sim.Engine, *netdev.Stack, *PNIC) {
	t.Helper()
	e := sim.New(1)
	m := cpu.NewMachine(e, costmodel.Kernel419(), cores, sim.Millisecond)
	st := netdev.NewStack(m)
	nic := NewPNIC(st, "eth0", steering.RSS{QueueCores: rssCores}, groOn)
	return e, st, nic
}

func udpSKB(srcPort uint16, seq uint64) *skb.SKB {
	s := skb.New(proto.BuildUDPFrame(macFor(1), macFor(2),
		proto.IP4(192, 168, 0, 1), proto.IP4(192, 168, 0, 2), srcPort, 9000, uint16(seq), []byte("pp")))
	s.Seq = seq
	s.FlowID = uint64(srcPort)
	return s
}

func tcpSKB(srcPort uint16, seq uint32, payload []byte) *skb.SKB {
	return skb.New(proto.BuildTCPFrame(macFor(1), macFor(2),
		proto.IP4(192, 168, 0, 1), proto.IP4(192, 168, 0, 2),
		proto.TCPHdr{SrcPort: srcPort, DstPort: 80, Seq: seq, Flags: proto.TCPAck, Window: 65535},
		0, payload))
}

func TestPNICDeliversPackets(t *testing.T) {
	e, _, nic := newNIC(t, 2, []int{0}, false)
	var got []uint64
	nic.OnReceive = func(c *cpu.Core, s *skb.SKB, done func()) {
		got = append(got, s.Seq)
		done()
	}
	for i := uint64(0); i < 10; i++ {
		nic.Arrive(udpSKB(1234, i))
	}
	e.Run()
	if len(got) != 10 {
		t.Fatalf("delivered %d, want 10", len(got))
	}
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestPNICHardIRQCoalescing(t *testing.T) {
	e, st, nic := newNIC(t, 1, []int{0}, false)
	nic.OnReceive = func(c *cpu.Core, s *skb.SKB, done func()) { done() }
	// A burst arriving while NAPI is active must raise only one hardirq.
	for i := uint64(0); i < 20; i++ {
		nic.Arrive(udpSKB(1, i))
	}
	e.Run()
	if nic.HardIRQs.Value() != 1 {
		t.Fatalf("hardirqs = %d, want 1 (coalesced)", nic.HardIRQs.Value())
	}
	if st.M.IRQ.Core(0, stats.IRQHard) != 1 {
		t.Fatal("IRQ counter mismatch")
	}
	// After the ring drains, a new arrival raises a fresh hardirq.
	nic.Arrive(udpSKB(1, 100))
	e.Run()
	if nic.HardIRQs.Value() != 2 {
		t.Fatalf("hardirqs = %d, want 2", nic.HardIRQs.Value())
	}
}

func TestPNICRSSSpreadsFlows(t *testing.T) {
	e, st, nic := newNIC(t, 4, []int{0, 1, 2, 3}, false)
	nic.OnReceive = func(c *cpu.Core, s *skb.SKB, done func()) { done() }
	for p := uint16(1); p <= 64; p++ {
		for i := uint64(0); i < 4; i++ {
			nic.Arrive(udpSKB(p, i))
		}
	}
	e.Run()
	busyCores := 0
	for c := 0; c < 4; c++ {
		if st.M.Acct.TotalBusy(c) > 0 {
			busyCores++
		}
	}
	if busyCores < 3 {
		t.Fatalf("RSS used %d cores, want >=3", busyCores)
	}
}

func TestPNICSingleFlowSingleQueue(t *testing.T) {
	e, st, nic := newNIC(t, 4, []int{0, 1, 2, 3}, false)
	nic.OnReceive = func(c *cpu.Core, s *skb.SKB, done func()) { done() }
	for i := uint64(0); i < 50; i++ {
		nic.Arrive(udpSKB(777, i)) // one flow
	}
	e.Run()
	busyCores := 0
	for c := 0; c < 4; c++ {
		if st.M.Acct.TotalBusy(c) > 0 {
			busyCores++
		}
	}
	if busyCores != 1 {
		t.Fatalf("single flow used %d cores, want 1 (RSS is per-flow)", busyCores)
	}
}

func TestPNICRingOverflowDrops(t *testing.T) {
	e, _, nic := newNIC(t, 1, []int{0}, false)
	nic.RingSize = 8
	nic.OnReceive = func(c *cpu.Core, s *skb.SKB, done func()) { done() }
	for i := uint64(0); i < 100; i++ {
		nic.Arrive(udpSKB(1, i))
	}
	if nic.Drops.Value() == 0 {
		t.Fatal("no drops with tiny ring")
	}
	e.Run()
}

func TestPNICDropsUnparsableFrame(t *testing.T) {
	e, _, nic := newNIC(t, 1, []int{0}, false)
	delivered := 0
	nic.OnReceive = func(c *cpu.Core, s *skb.SKB, done func()) { delivered++; done() }
	nic.Arrive(skb.New([]byte{1, 2, 3}))
	e.Run()
	if nic.Drops.Value() != 1 || delivered != 0 {
		t.Fatal("garbage frame not dropped")
	}
}

func TestPNICGROMergesTCPBatch(t *testing.T) {
	e, _, nic := newNIC(t, 1, []int{0}, true)
	var out []*skb.SKB
	nic.OnReceive = func(c *cpu.Core, s *skb.SKB, done func()) {
		out = append(out, s)
		done()
	}
	payload := bytes.Repeat([]byte{'x'}, 1000)
	for i := 0; i < 8; i++ {
		nic.Arrive(tcpSKB(5000, uint32(i*1000), payload))
	}
	e.Run()
	if len(out) != 1 {
		t.Fatalf("GRO produced %d packets, want 1 merged", len(out))
	}
	if out[0].Segs != 8 {
		t.Fatalf("segs = %d, want 8", out[0].Segs)
	}
	if _, err := proto.ParseFrame(out[0].Data); err != nil {
		t.Fatalf("merged frame invalid: %v", err)
	}
}

func TestPNICGROOffNoMerge(t *testing.T) {
	e, _, nic := newNIC(t, 1, []int{0}, false)
	count := 0
	nic.OnReceive = func(c *cpu.Core, s *skb.SKB, done func()) { count++; done() }
	for i := 0; i < 8; i++ {
		nic.Arrive(tcpSKB(5000, uint32(i*100), bytes.Repeat([]byte{'x'}, 100)))
	}
	e.Run()
	if count != 8 {
		t.Fatalf("delivered %d, want 8 unmerged", count)
	}
}

func TestPNICGROFlushOnBudgetExhaustion(t *testing.T) {
	// When the NAPI budget runs out mid-burst, the poll loop must flush
	// its GRO engine before yielding (napi_gro_flush at the end of
	// net_rx_action's slice) — segments held across activations would
	// stall delivery behind the next activation and, for a window-limited
	// sender, deadlock the flow. A 10-segment contiguous burst at budget
	// 4 must therefore surface as three super-packets of 4+4+2 segments,
	// never one of 10.
	e, st, nic := newNIC(t, 1, []int{0}, true)
	nic.Budget = 4
	var out []*skb.SKB
	nic.OnReceive = func(c *cpu.Core, s *skb.SKB, done func()) {
		out = append(out, s)
		done()
	}
	payload := bytes.Repeat([]byte{'x'}, 1000)
	for i := 0; i < 10; i++ {
		nic.Arrive(tcpSKB(6000, uint32(i*1000), payload))
	}
	e.Run()
	if len(out) != 3 {
		t.Fatalf("budget-bounded GRO produced %d packets, want 3 (4+4+2)", len(out))
	}
	total := 0
	for i, s := range out {
		total += s.Segs
		if s.Segs > nic.Budget {
			t.Fatalf("packet %d merged %d segs across a budget boundary", i, s.Segs)
		}
		if _, err := proto.ParseFrame(s.Data); err != nil {
			t.Fatalf("super-packet %d invalid: %v", i, err)
		}
	}
	if total != 10 {
		t.Fatalf("segs delivered = %d, want 10", total)
	}
	if out[0].Segs != 4 || out[2].Segs != 2 {
		t.Fatalf("segs pattern = [%d %d %d], want [4 4 2]", out[0].Segs, out[1].Segs, out[2].Segs)
	}
	// Each budget exhaustion re-raises NET_RX: three activations minimum.
	if got := st.M.IRQ.Core(0, stats.IRQNetRX); got < 3 {
		t.Fatalf("NET_RX = %d, want >=3", got)
	}
}

func TestPNICBudgetReraisesSoftirq(t *testing.T) {
	e, st, nic := newNIC(t, 1, []int{0}, false)
	nic.Budget = 4
	count := 0
	nic.OnReceive = func(c *cpu.Core, s *skb.SKB, done func()) { count++; done() }
	for i := uint64(0); i < 10; i++ {
		nic.Arrive(udpSKB(1, i))
	}
	e.Run()
	if count != 10 {
		t.Fatalf("delivered %d, want 10", count)
	}
	// 10 packets at budget 4 => at least 3 NET_RX activations.
	if got := st.M.IRQ.Core(0, stats.IRQNetRX); got < 3 {
		t.Fatalf("NET_RX = %d, want >=3", got)
	}
}
