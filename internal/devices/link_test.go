package devices

import (
	"testing"

	"falcon/internal/sim"
	"falcon/internal/skb"
)

func TestLinkSerializationTime(t *testing.T) {
	e := sim.New(1)
	l := NewLink(e, 10*Gbps, 0)
	// (1500+24)*8 bits at 10 Gb/s = 1219.2 ns.
	got := l.SerializationTime(1500)
	if got < 1200 || got > 1240 {
		t.Fatalf("serialization = %v", got)
	}
	l100 := NewLink(e, 100*Gbps, 0)
	if l100.SerializationTime(1500) >= got {
		t.Fatal("faster link not faster")
	}
}

func TestLinkDeliversInOrderWithDelay(t *testing.T) {
	e := sim.New(1)
	l := NewLink(e, 10*Gbps, 500)
	var got []uint64
	var times []sim.Time
	l.Deliver = func(s *skb.SKB) {
		got = append(got, s.Seq)
		times = append(times, e.Now())
	}
	for i := uint64(0); i < 3; i++ {
		s := skb.New(make([]byte, 1500))
		s.Seq = i
		if !l.Send(s) {
			t.Fatal("send failed")
		}
	}
	e.Run()
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("order: %v", got)
	}
	// Frames serialize back to back: deliveries spaced by one
	// serialization time.
	ser := l.SerializationTime(1500)
	if times[1]-times[0] != ser || times[2]-times[1] != ser {
		t.Fatalf("spacing: %v (ser=%v)", times, ser)
	}
	// First delivery = serialization + propagation.
	if times[0] != ser+500 {
		t.Fatalf("first delivery at %v, want %v", times[0], ser+500)
	}
}

// TestLinkLookaheadNeverOverestimated drives frames through every fault
// regime a link supports — jitter bursts switching on and off mid-wire,
// loss, queue pressure — and checks the PDES safety contract directly:
// no frame may arrive earlier than send-time + Lookahead(). Jitter only
// ever adds delay and reverting it must not let later frames undercut
// the bound (the wire-reorder bug the shard-invariance tests caught was
// exactly such an undercut relative to in-flight jittered frames).
func TestLinkLookaheadNeverOverestimated(t *testing.T) {
	e := sim.New(7)
	l := NewLink(e, 10*Gbps, 500)
	la := l.Lookahead()
	if want := l.SerializationTime(0) + 500; la != want {
		t.Fatalf("Lookahead = %v, want %v", la, want)
	}
	sent := make(map[uint64]sim.Time)
	var lastArrival sim.Time
	l.Deliver = func(s *skb.SKB) {
		now := e.Now()
		if now < sent[s.Seq]+la {
			t.Fatalf("frame %d arrived at %v < send %v + lookahead %v",
				s.Seq, now, sent[s.Seq], la)
		}
		if now < lastArrival {
			t.Fatalf("wire reordered: arrival %v after %v", now, lastArrival)
		}
		lastArrival = now
		s.Free()
	}
	rng := e.Rand().Fork()
	seq := uint64(0)
	var tick func()
	tick = func() {
		if seq >= 400 {
			return
		}
		// Flip fault regimes while frames are in flight.
		switch seq {
		case 50:
			l.Jitter = 3000
		case 120:
			l.Jitter = 0 // revert with jittered frames still on the wire
		case 200:
			l.Jitter = 900
			l.LossRate = 0.2
		case 300:
			l.Jitter = 0
			l.LossRate = 0
		}
		s := skb.New(make([]byte, 64+rng.Intn(1400)))
		s.Seq = seq
		sent[seq] = e.Now()
		seq++
		l.Send(s)
		e.After(sim.Time(1+rng.Intn(2000)), tick)
	}
	tick()
	e.Run()
	if lastArrival == 0 {
		t.Fatal("no frames delivered")
	}
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	e := sim.New(1)
	l := NewLink(e, 1*Gbps, 0)
	l.TxQueueLen = 5
	l.Deliver = func(s *skb.SKB) {}
	sent := 0
	for i := 0; i < 20; i++ {
		if l.Send(skb.New(make([]byte, 1500))) {
			sent++
		}
	}
	if sent != 5 {
		t.Fatalf("sent = %d, want 5", sent)
	}
	if l.Dropped.Value() != 15 {
		t.Fatalf("dropped = %d", l.Dropped.Value())
	}
	e.Run()
	// After drain the queue frees up.
	if !l.Send(skb.New(make([]byte, 64))) {
		t.Fatal("send after drain failed")
	}
}

func TestLinkStampsWireTime(t *testing.T) {
	e := sim.New(1)
	l := NewLink(e, 10*Gbps, 0)
	l.Deliver = func(s *skb.SKB) {}
	e.After(1000, func() {
		s := skb.New(make([]byte, 64))
		l.Send(s)
		if s.WireTime != 1000 {
			t.Errorf("wire time = %v", s.WireTime)
		}
	})
	e.Run()
}

func TestLinkBusy(t *testing.T) {
	e := sim.New(1)
	l := NewLink(e, 1*Gbps, 0)
	l.Deliver = func(s *skb.SKB) {}
	if l.Busy() {
		t.Fatal("idle link busy")
	}
	l.Send(skb.New(make([]byte, 9000)))
	if !l.Busy() {
		t.Fatal("transmitting link not busy")
	}
}

func TestBridgeLearnAndLookup(t *testing.T) {
	b := NewBridge("br0", 3)
	p0 := b.AddPort("veth0")
	p1 := b.AddPort("veth1")
	if b.NumPorts() != 2 {
		t.Fatalf("ports = %d", b.NumPorts())
	}
	m0 := macFor(10)
	b.Learn(m0, p0)
	if b.Lookup(m0) != p0 {
		t.Fatal("lookup after learn failed")
	}
	if b.FDBSize() != 1 {
		t.Fatalf("fdb size = %d", b.FDBSize())
	}
	unknown := macFor(99)
	if b.Lookup(unknown) != -1 {
		t.Fatal("unknown MAC did not flood")
	}
	if b.Flooded.Value() != 1 {
		t.Fatal("flood counter not incremented")
	}
	// Re-learning moves the MAC.
	b.Learn(m0, p1)
	if b.Lookup(m0) != p1 {
		t.Fatal("relearn did not update")
	}
}

func TestVethPair(t *testing.T) {
	b, c := NewVethPair("veth-br", "eth0", 4, 5, macFor(7), 1)
	if b.Peer() != c || c.Peer() != b {
		t.Fatal("pair not peered")
	}
	if b.Ifindex == c.Ifindex {
		t.Fatal("pair ends share ifindex")
	}
	if b.MAC != c.MAC || b.ContainerID != 1 {
		t.Fatal("pair metadata wrong")
	}
}
