package devices

import (
	"falcon/internal/proto"
	"falcon/internal/stats"
)

// Bridge is a learning L2 switch (the Linux bridge containers attach to
// through veth ports). br_handle_frame looks up the destination MAC in
// the forwarding database and hands the frame to the matching port.
type Bridge struct {
	Name    string
	Ifindex int

	fdb   map[proto.MAC]int // MAC -> port id
	ports []string

	Flooded stats.Counter // frames with no FDB entry
}

// NewBridge returns an empty bridge.
func NewBridge(name string, ifindex int) *Bridge {
	return &Bridge{Name: name, Ifindex: ifindex, fdb: make(map[proto.MAC]int)}
}

// AddPort registers a port (e.g. a veth endpoint) and returns its id.
func (b *Bridge) AddPort(name string) int {
	b.ports = append(b.ports, name)
	return len(b.ports) - 1
}

// Learn records that src is reachable via port.
func (b *Bridge) Learn(src proto.MAC, port int) { b.fdb[src] = port }

// Lookup returns the port for dst, or -1 (flood) when unknown.
func (b *Bridge) Lookup(dst proto.MAC) int {
	if p, ok := b.fdb[dst]; ok {
		return p
	}
	b.Flooded.Inc()
	return -1
}

// NumPorts returns the number of attached ports.
func (b *Bridge) NumPorts() int { return len(b.ports) }

// FDBSize returns the number of learned entries.
func (b *Bridge) FDBSize() int { return len(b.fdb) }
