package netdev

import (
	"testing"

	"falcon/internal/costmodel"
	"falcon/internal/cpu"
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/stats"
)

func newStack(cores int) (*sim.Engine, *Stack) {
	e := sim.New(1)
	m := cpu.NewMachine(e, costmodel.Kernel419(), cores, sim.Millisecond)
	return e, NewStack(m)
}

func passthrough(processed *[]uint64) Handler {
	return func(c *cpu.Core, s *skb.SKB, done func()) {
		c.Exec(stats.CtxSoftIRQ, costmodel.FnBacklog, 0, func() {
			*processed = append(*processed, s.Seq)
			done()
		})
	}
}

func TestRegisterDevice(t *testing.T) {
	_, st := newStack(1)
	if idx := st.RegisterDevice("eth0"); idx != 1 {
		t.Fatalf("first ifindex = %d, want 1", idx)
	}
	if idx := st.RegisterDevice("vxlan0"); idx != 2 {
		t.Fatalf("second ifindex = %d, want 2", idx)
	}
	if st.DeviceName(2) != "vxlan0" {
		t.Fatal("device name lookup failed")
	}
	if st.DeviceName(99) != "if99" {
		t.Fatal("unknown ifindex fallback wrong")
	}
}

func TestNetifRxProcessesFIFO(t *testing.T) {
	e, st := newStack(1)
	var processed []uint64
	h := passthrough(&processed)
	for i := uint64(0); i < 5; i++ {
		s := skb.New(nil)
		s.Seq = i
		if !st.NetifRx(nil, 0, s, h) {
			t.Fatal("enqueue failed")
		}
	}
	e.Run()
	if len(processed) != 5 {
		t.Fatalf("processed %d, want 5", len(processed))
	}
	for i, seq := range processed {
		if seq != uint64(i) {
			t.Fatalf("out of order: %v", processed)
		}
	}
}

func TestNetifRxCountsNetRXPerActivation(t *testing.T) {
	e, st := newStack(1)
	var processed []uint64
	h := passthrough(&processed)
	// Burst of 10 packets while the softirq is pending: one activation.
	for i := 0; i < 10; i++ {
		st.NetifRx(nil, 0, skb.New(nil), h)
	}
	e.Run()
	if got := st.M.IRQ.Core(0, stats.IRQNetRX); got != 1 {
		t.Fatalf("NET_RX = %d for one burst, want 1 (coalesced raise)", got)
	}
	// A second, later burst: second activation.
	st.NetifRx(nil, 0, skb.New(nil), h)
	e.Run()
	if got := st.M.IRQ.Core(0, stats.IRQNetRX); got != 2 {
		t.Fatalf("NET_RX = %d after second burst, want 2", got)
	}
}

func TestNetifRxRemoteCountsRES(t *testing.T) {
	e, st := newStack(2)
	var processed []uint64
	h := passthrough(&processed)
	// A handler on core 0 that forwards to core 1 mid-softirq.
	fwd := func(c *cpu.Core, s *skb.SKB, done func()) {
		c.Exec(stats.CtxSoftIRQ, costmodel.FnBridge, 0, func() {
			st.NetifRx(c, 1, s, h)
			done()
		})
	}
	st.NetifRx(nil, 0, skb.New(nil), fwd)
	e.Run()
	if len(processed) != 1 {
		t.Fatalf("processed = %d", len(processed))
	}
	if st.M.IRQ.Core(1, stats.IRQRES) != 1 {
		t.Fatalf("RES on core1 = %d, want 1", st.M.IRQ.Core(1, stats.IRQRES))
	}
	if st.M.IRQ.Core(1, stats.IRQNetRX) != 1 {
		t.Fatalf("NET_RX on core1 = %d, want 1", st.M.IRQ.Core(1, stats.IRQNetRX))
	}
}

func TestNetifRxBacklogOverflowDrops(t *testing.T) {
	e, st := newStack(1)
	st.MaxBacklog = 3
	var processed []uint64
	h := passthrough(&processed)
	ok := 0
	for i := 0; i < 10; i++ {
		if st.NetifRx(nil, 0, skb.New(nil), h) {
			ok++
		}
	}
	if ok >= 10 {
		t.Fatal("no drops despite tiny backlog")
	}
	if st.Drops.Value() == 0 || st.BacklogDropped(0) == 0 {
		t.Fatal("drop counters not incremented")
	}
	e.Run()
	if len(processed) != ok {
		t.Fatalf("processed %d, admitted %d", len(processed), ok)
	}
}

func TestMigrationPenaltyCharged(t *testing.T) {
	e, st := newStack(2)
	var processed []uint64
	h := passthrough(&processed)
	s := skb.New(nil)
	s.LastCore = 1 // pretend stage ran on core 1 before
	st.NetifRx(nil, 0, s, h)
	e.Run()
	if s.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1", s.Migrations)
	}
	// Same-core processing must not count a migration.
	s2 := skb.New(nil)
	s2.LastCore = 0
	st.NetifRx(nil, 0, s2, h)
	e.Run()
	if s2.Migrations != 0 {
		t.Fatalf("migrations = %d, want 0", s2.Migrations)
	}
}

func TestRunChainExecutesAllSteps(t *testing.T) {
	e, st := newStack(1)
	c := st.M.Core(0)
	doneRan := false
	steps := []Step{
		{Fn: costmodel.FnIPRcv},
		{Fn: costmodel.FnUDPRcv},
		{Fn: costmodel.FnSocketDeliver},
	}
	RunChain(c, stats.CtxSoftIRQ, steps, func() { doneRan = true })
	e.Run()
	if !doneRan {
		t.Fatal("chain completion not called")
	}
	want := st.M.Model.Cost(costmodel.FnIPRcv, 0) +
		st.M.Model.Cost(costmodel.FnUDPRcv, 0) +
		st.M.Model.Cost(costmodel.FnSocketDeliver, 0)
	if e.Now() != want {
		t.Fatalf("chain took %v, want %v", e.Now(), want)
	}
	if st.M.Prof.Calls(costmodel.FnUDPRcv) != 1 {
		t.Fatal("per-function profile not charged")
	}
}

func TestRunChainEmpty(t *testing.T) {
	e, st := newStack(1)
	ran := false
	RunChain(st.M.Core(0), stats.CtxSoftIRQ, nil, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("empty chain did not call then")
	}
}

func TestPipelinedStagesRunConcurrently(t *testing.T) {
	// Two-stage pipeline across two cores: with N packets, total time
	// should approach max(stage cost) * N, not sum * N — the essence of
	// Falcon's softirq pipelining.
	const n = 200
	cost := 1 * sim.Microsecond

	run := func(stage2Core int) sim.Time {
		e, st := newStack(2)
		var delivered int
		stage2 := func(c *cpu.Core, s *skb.SKB, done func()) {
			c.Submit(stats.CtxSoftIRQ, costmodel.FnBacklog, cost, func() {
				delivered++
				done()
			})
		}
		stage1 := func(c *cpu.Core, s *skb.SKB, done func()) {
			c.Submit(stats.CtxSoftIRQ, costmodel.FnNAPIPoll, cost, func() {
				st.NetifRx(c, stage2Core, s, stage2)
				done()
			})
		}
		for i := 0; i < n; i++ {
			st.NetifRx(nil, 0, skb.New(nil), stage1)
		}
		e.Run()
		if delivered != n {
			t.Fatalf("delivered %d, want %d", delivered, n)
		}
		return e.Now()
	}

	serial := run(0) // both stages on core 0 (vanilla overlay shape)
	piped := run(1)  // stage 2 on core 1 (Falcon shape)
	if float64(piped) > 0.75*float64(serial) {
		t.Fatalf("pipelining did not help: serial=%v piped=%v", serial, piped)
	}
}
