// Package netdev provides the kernel-side plumbing every network device
// shares: per-CPU packet backlogs (input_pkt_queue), softirq raising with
// NET_RX/RES accounting, the netif_rx stage-transition mechanism that
// Falcon re-purposes, and a device registry assigning ifindex values.
//
// The semantics mirror Linux: enqueueing to a backlog whose softirq is
// not yet pending raises NET_RX (counted once per activation, so batched
// processing coalesces raises exactly as the kernel does); enqueueing to
// a *remote* idle core additionally costs an IPI, counted as a RES
// interrupt on the target. Those two rules are what make the paper's
// interrupt-count observations (Figs. 4 and 19b) emerge rather than
// being hard-coded.
package netdev

import (
	"fmt"
	"sync"

	"falcon/internal/costmodel"
	"falcon/internal/cpu"
	"falcon/internal/skb"
	"falcon/internal/stats"
)

// DefaultMaxBacklog is the per-core input_pkt_queue limit
// (net.core.netdev_max_backlog's Linux default).
const DefaultMaxBacklog = 1000

// Handler processes one packet at one pipeline stage, in softirq context
// on core c. Implementations charge their own per-function costs through
// c and MUST call done exactly once when the packet leaves the stage.
type Handler func(c *cpu.Core, s *skb.SKB, done func())

// Step is one costed function invocation in a processing chain.
type Step struct {
	Fn    costmodel.Func
	Bytes int
}

// chain is the recycled state of one RunChain invocation. Steps are
// copied into the inline array (the datapath's chains are at most 2–3
// steps), so caller step-slice literals never escape, and the
// continuation passed to Exec is the cached self method value — the
// whole multi-step charge sequence costs zero allocations per packet.
//
// Chains recycle through their owning entity's free list: per-Stack via
// (*Stack).RunChain on the datapath (a stack — and thus its chains —
// lives entirely on one PDES shard, so a plain single-owner list works
// without atomics), or the package-level sync.Pool for the ownerless
// helper RunChain.
type chain struct {
	c    *cpu.Core
	ctx  stats.CPUContext
	buf  [4]Step
	n, i int
	then func()
	self func() // cached ch.step method value
	put  func(*chain)
	next *chain // Stack free list
}

var chainPool sync.Pool

func init() {
	// Assigned in init: a composite-literal New would form an
	// initialization cycle through ch.step's use of the pool.
	chainPool.New = func() any {
		ch := new(chain)
		ch.self = ch.step
		ch.put = poolPutChain
		return ch
	}
}

func poolPutChain(ch *chain) { chainPool.Put(ch) }

func (ch *chain) step() {
	if ch.i >= ch.n {
		then := ch.then
		ch.c, ch.then = nil, nil
		ch.put(ch)
		if then != nil {
			then()
		}
		return
	}
	s := ch.buf[ch.i]
	ch.i++
	ch.c.Exec(ch.ctx, s.Fn, s.Bytes, ch.self)
}

// run copies steps into the chain and starts it (steps fits ch.buf).
func (ch *chain) run(c *cpu.Core, ctx stats.CPUContext, steps []Step, then func()) {
	ch.c, ch.ctx, ch.then = c, ctx, then
	ch.n, ch.i = copy(ch.buf[:], steps), 0
	ch.step()
}

// runChainSlow handles the degenerate RunChain shapes shared by both
// entry points: empty chains and chains longer than the inline buffer.
func runChainSlow(c *cpu.Core, ctx stats.CPUContext, steps []Step, then func()) {
	if len(steps) == 0 {
		if then != nil {
			then()
		}
		return
	}
	// Long chains fall back to the recursive form (none exist on the
	// datapath today). The remainder is copied so the closure never
	// captures the caller's slice: keeping the steps parameter
	// non-escaping is what lets every per-packet step literal on the
	// hot path live on the caller's stack.
	rest := make([]Step, len(steps)-1)
	copy(rest, steps[1:])
	c.Exec(ctx, steps[0].Fn, steps[0].Bytes, func() {
		RunChain(c, ctx, rest, then)
	})
}

// RunChain executes steps sequentially on c in context ctx, charging each
// through the machine's cost model, then calls then (which may be nil).
// Chain state recycles through a global pool; datapath callers that own a
// Stack should prefer (*Stack).RunChain, whose free list avoids the
// pool's atomics.
func RunChain(c *cpu.Core, ctx stats.CPUContext, steps []Step, then func()) {
	if len(steps) == 0 || len(steps) > len(chain{}.buf) {
		runChainSlow(c, ctx, steps, then)
		return
	}
	chainPool.Get().(*chain).run(c, ctx, steps, then)
}

// RunChain is the Stack-affine form of the package RunChain: chain state
// recycles through the stack's single-owner free list (every chain a
// stack runs starts and finishes on the stack's own shard).
func (st *Stack) RunChain(c *cpu.Core, ctx stats.CPUContext, steps []Step, then func()) {
	if len(steps) == 0 || len(steps) > len(chain{}.buf) {
		runChainSlow(c, ctx, steps, then)
		return
	}
	ch := st.chains
	if ch == nil {
		ch = new(chain)
		ch.self = ch.step
		ch.put = st.putChain
	} else {
		st.chains = ch.next
		ch.next = nil
	}
	ch.run(c, ctx, steps, then)
}

func (st *Stack) putChain(ch *chain) {
	ch.next = st.chains
	st.chains = ch
}

type backlogEntry struct {
	s *skb.SKB
	h Handler
}

// entryQueue is a FIFO of backlog entries that recycles its backing
// array (same shape as cpu's workQueue): popping advances a head index,
// and a fully drained queue rewinds to the array's front so the
// steady-state drain-refill cycle never reallocates.
type entryQueue struct {
	items []backlogEntry
	head  int
}

func (q *entryQueue) push(e backlogEntry) { q.items = append(q.items, e) }

func (q *entryQueue) pop() backlogEntry {
	e := q.items[q.head]
	q.items[q.head] = backlogEntry{}
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return e
}

func (q *entryQueue) len() int { return len(q.items) - q.head }

// perCPUBacklog is one core's input_pkt_queue plus its NAPI-style state.
// pending mirrors the NET_RX bit in the softirq pending mask: set by
// netif_rx, cleared when a softirq invocation begins. draining tracks
// whether a drain loop is active on the core. An enqueue during a drain
// sets pending again and counts another NET_RX — exactly how raising a
// softirq from softirq context re-invokes __do_softirq in Linux (and the
// reason the overlay path's vxlan_rcv and veth_xmit each add a counted
// softirq, paper Fig. 4).
// Two queues per core mirror the kernel's structure: `remote` is the
// admission-limited input_pkt_queue fresh packets enter from other cores
// (RPS steering, Falcon transitions); `local` holds same-core
// recirculation — packets a stage on this core re-enqueued for its own
// next stage (the vanilla overlay's vxlan→gro_cells and veth→backlog
// hops, which in Linux live on separate NAPI instances and therefore do
// not compete with fresh admissions for queue slots). local drains
// first, so packets already inside the pipeline finish before new ones
// are admitted.
type perCPUBacklog struct {
	local    entryQueue
	remote   entryQueue
	pending  bool
	draining bool
	dropped  uint64
	// enter is the cached softirq-entry continuation (clear the pending
	// bit, drain): scheduling a softirq invocation is then
	// allocation-free, like the per-core drainDone continuation.
	enter func()
	// idleFlushed records that OnDrained already ran for the current
	// idle period; cleared by any enqueue so the next full drain runs
	// the hook again.
	idleFlushed bool
}

// Stack is one host's shared network-stack state.
type Stack struct {
	M          *cpu.Machine
	MaxBacklog int

	backlogs []perCPUBacklog
	devices  []string // index = ifindex-1

	// chains is the stack's chain free list (see (*Stack).RunChain).
	chains *chain

	// drainDone caches one drain continuation per core so the per-packet
	// handler invocation in drain does not allocate a closure.
	drainDone []func()

	// OnDrained, when set, runs as a core's backlog fully drains and its
	// softirq is about to exit — the napi_complete point. The receive
	// path uses it to flush GRO engines that would otherwise hold
	// segments across an idle period (a window-limited TCP sender then
	// deadlocks against its own held tail). The hook runs at most once
	// per idle period, must call done exactly once, and may enqueue:
	// anything it adds is drained before the softirq exits.
	OnDrained func(c *cpu.Core, done func())

	// Drops counts packets rejected by full backlogs.
	Drops stats.Counter

	// down, when set, models a crashed host's kernel: every NetifRx —
	// fresh admission or same-core recirculation — is refused and the
	// packet freed into crashDrops. In-flight handler chains thus
	// terminate, accounted, at their next stage transition.
	down       bool
	crashDrops *stats.Counter
}

// NewStack returns a stack over machine m.
func NewStack(m *cpu.Machine) *Stack {
	st := &Stack{
		M:          m,
		MaxBacklog: DefaultMaxBacklog,
		backlogs:   make([]perCPUBacklog, m.NumCores()),
	}
	st.drainDone = make([]func(), m.NumCores())
	for i := range st.drainDone {
		core := m.Core(i)
		st.drainDone[i] = func() { st.drain(core) }
		b := &st.backlogs[i]
		b.enter = func() {
			b.pending = false
			st.drain(core)
		}
	}
	return st
}

// RegisterDevice assigns the next ifindex (1-based, as in Linux) to a
// named device.
func (st *Stack) RegisterDevice(name string) int {
	st.devices = append(st.devices, name)
	return len(st.devices)
}

// DeviceName returns the name registered for ifindex.
func (st *Stack) DeviceName(ifindex int) string {
	if ifindex < 1 || ifindex > len(st.devices) {
		return fmt.Sprintf("if%d", ifindex)
	}
	return st.devices[ifindex-1]
}

// BacklogLen returns the queue depth of core's backlog (both classes).
func (st *Stack) BacklogLen(core int) int {
	b := &st.backlogs[core]
	return b.local.len() + b.remote.len()
}

// BacklogDropped returns drops on one core's backlog.
func (st *Stack) BacklogDropped(core int) uint64 { return st.backlogs[core].dropped }

// NetifRx is the stage-transition function (the kernel's netif_rx, as
// re-purposed by Falcon): it enqueues s on target core's backlog to be
// processed by h, raising NET_RX there if not already pending. from is
// the core currently processing the packet (nil when the packet enters
// from hardirq context with no running softirq, e.g. a NIC).
//
// It reports false when the backlog is full and the packet was dropped.
func (st *Stack) NetifRx(from *cpu.Core, target int, s *skb.SKB, h Handler) bool {
	if st.down {
		s.Stage("drop:stack-down")
		s.Free()
		if st.crashDrops != nil {
			st.crashDrops.Inc()
		}
		return false
	}
	b := &st.backlogs[target]
	local := from != nil && from.ID() == target
	if local {
		// Same-core recirculation: a separate NAPI instance in Linux
		// (gro_cells for VXLAN, the backlog for veth), not subject to the
		// input_pkt_queue admission limit. Scheduling an idle per-device
		// NAPI counts a NET_RX invocation — this is why the overlay path
		// shows multiples of the native softirq count (paper Fig. 4).
		if b.local.len() == 0 {
			st.M.IRQ.Inc(target, stats.IRQNetRX)
			// The fresh invocation of this device's NAPI pays softirq
			// entry overhead on the core, as each net_rx_action restart
			// does in Linux.
			from.Exec(stats.CtxSoftIRQ, costmodel.FnSoftIRQEntry, 0, nil)
		}
		s.Stage("backlog")
		b.local.push(backlogEntry{s: s, h: h})
		b.idleFlushed = false
		st.ensureDraining(target)
		return true
	}
	if b.remote.len() >= st.MaxBacklog {
		b.dropped++
		st.Drops.Inc()
		s.Stage("drop:backlog")
		s.Free()
		return false
	}
	if from != nil {
		// Cost of the cross-core handoff, charged to the initiating core:
		// the enqueue itself plus, if the target's softirq is not already
		// pending, the IPI that kicks it.
		from.Exec(stats.CtxSoftIRQ, costmodel.FnEnqueueRemote, 0, nil)
		if !b.pending && !b.draining {
			from.Exec(stats.CtxSoftIRQ, costmodel.FnIPIRaise, 0, nil)
			st.M.IRQ.Inc(target, stats.IRQRES)
		}
	}
	s.Stage("backlog")
	b.remote.push(backlogEntry{s: s, h: h})
	b.idleFlushed = false
	st.kick(target)
	return true
}

// BacklogState reports one core's backlog for the audit watchdog:
// queue depths plus the pending/draining softirq bits.
func (st *Stack) BacklogState(core int) (local, remote int, pending, draining bool) {
	b := &st.backlogs[core]
	return b.local.len(), b.remote.len(), b.pending, b.draining
}

// kick raises NET_RX on the target: set the pending bit (counting one
// NET_RX per pending transition, matching /proc/softirqs) and start a
// drain loop if none is active.
func (st *Stack) kick(target int) {
	b := &st.backlogs[target]
	if !b.pending {
		b.pending = true
		st.M.IRQ.Inc(target, stats.IRQNetRX)
	}
	st.ensureDraining(target)
}

// ensureDraining schedules the softirq drain loop if none is active.
func (st *Stack) ensureDraining(target int) {
	b := &st.backlogs[target]
	if b.draining {
		return
	}
	b.draining = true
	// do_softirq entry overhead, then drain.
	st.M.Core(target).Exec(stats.CtxSoftIRQ, costmodel.FnSoftIRQEntry, 0, b.enter)
}

// drain processes backlog entries one packet at a time, FIFO. Each
// packet's handler runs to completion (calling done) before the next
// packet starts, preserving per-stage in-order processing. When the
// queue empties but the pending bit was re-set during the drain, the
// softirq re-enters (a fresh invocation), as __do_softirq does.
func (st *Stack) drain(core *cpu.Core) {
	b := &st.backlogs[core.ID()]
	var e backlogEntry
	switch {
	case b.local.len() > 0:
		e = b.local.pop()
	case b.remote.len() > 0:
		e = b.remote.pop()
	default:
		if b.pending {
			core.Exec(stats.CtxSoftIRQ, costmodel.FnSoftIRQEntry, 0, b.enter)
			return
		}
		if st.OnDrained != nil && !b.idleFlushed {
			b.idleFlushed = true
			st.OnDrained(core, st.drainDone[core.ID()])
			return
		}
		b.draining = false
		return
	}
	st.chargeMigration(core, e.s)
	e.h(core, e.s, st.drainDone[core.ID()])
}

// chargeMigration applies the cache-locality penalty when a packet
// resumes on a different core than last touched it.
func (st *Stack) chargeMigration(core *cpu.Core, s *skb.SKB) {
	if s.Touch(core.ID()) {
		core.Submit(stats.CtxSoftIRQ, costmodel.FnSoftIRQEntry, st.M.Model.Migration(), nil)
	}
}

// SetDown marks the stack dead (crashed host) or alive again; while
// down, NetifRx refuses everything into drops (the crash census
// bucket).
func (st *Stack) SetDown(down bool, drops *stats.Counter) {
	st.down = down
	st.crashDrops = drops
}

// PurgeBacklogs frees every packet queued in a per-CPU backlog — local
// recirculation first, then remote admissions, cores in order —
// counting each into drops. Softirq bookkeeping (pending/draining) is
// left to wind down through the normal drain loop, which simply finds
// the queues empty.
func (st *Stack) PurgeBacklogs(drops *stats.Counter) {
	for i := range st.backlogs {
		b := &st.backlogs[i]
		for b.local.len() > 0 {
			e := b.local.pop()
			e.s.Stage("drop:stack-down")
			e.s.Free()
			drops.Inc()
		}
		for b.remote.len() > 0 {
			e := b.remote.pop()
			e.s.Stage("drop:stack-down")
			e.s.Free()
			drops.Inc()
		}
	}
}

// ChargeMigrationTask applies the same penalty in task context — used by
// the socket layer when the application thread reads a packet that was
// processed on other cores (the user-space locality loss the paper
// identifies as Falcon's residual gap from host performance).
func (st *Stack) ChargeMigrationTask(core *cpu.Core, s *skb.SKB) {
	if s.Touch(core.ID()) {
		core.Submit(stats.CtxTask, costmodel.FnUserCopy, st.M.Model.Migration(), nil)
	}
}
