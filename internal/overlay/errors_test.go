package overlay

import (
	"testing"

	"falcon/internal/cpu"
	"falcon/internal/devices"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/skb"
)

func TestUnknownMACDropsAtBridge(t *testing.T) {
	b := newBed(t, "", 100*devices.Gbps)
	// Forge a VXLAN frame whose inner dst MAC no container owns.
	inner := proto.BuildUDPFrame(proto.MACFromUint64(1), proto.MACFromUint64(0x999),
		cliCtrIP, srvCtrIP, 7000, 5001, 1, []byte("x"))
	outer := proto.Encapsulate(inner, b.client.MAC, b.server.MAC,
		clientIP, serverIP, 49200, b.n.VNI, 7)
	b.client.LinkTo(serverIP).Send(skb.New(outer))
	b.e.RunUntil(5 * sim.Millisecond)
	if b.server.Rx.PathDrops.Value() != 1 {
		t.Fatalf("path drops = %d, want 1 (unknown MAC)", b.server.Rx.PathDrops.Value())
	}
	if b.server.Bridge.Flooded.Value() != 1 {
		t.Fatal("bridge flood not counted")
	}
}

func TestCorruptedFrameDroppedAtNIC(t *testing.T) {
	b := newBed(t, "", 100*devices.Gbps)
	inner := proto.BuildUDPFrame(proto.MACFromUint64(1), proto.MACFromUint64(2),
		cliCtrIP, srvCtrIP, 7000, 5001, 1, []byte("x"))
	outer := proto.Encapsulate(inner, b.client.MAC, b.server.MAC,
		clientIP, serverIP, 49200, b.n.VNI, 8)
	outer[proto.EthLen+13] ^= 0xFF // corrupt a header byte in flight
	b.client.LinkTo(serverIP).Send(skb.New(outer))
	b.e.RunUntil(5 * sim.Millisecond)
	if b.server.NIC.Drops.Value() != 1 {
		t.Fatalf("NIC drops = %d, want 1 (checksum)", b.server.NIC.Drops.Value())
	}
	if b.server.Rx.Decapped.Value() != 0 {
		t.Fatal("corrupt frame decapsulated")
	}
}

func TestSendTCPBuildsValidSegments(t *testing.T) {
	b := newBed(t, "", 100*devices.Gbps)
	var got []*skb.SKB
	b.server.Bind(SockKey{IP: srvCtrIP, Port: 443, Proto: proto.ProtoTCP},
		func(c *cpu.Core, s *skb.SKB, f *proto.Frame, done func()) {
			got = append(got, s)
			if f.TCP.Seq != 1000 || f.TCP.Flags&proto.TCPPsh == 0 {
				t.Errorf("tcp header mangled: %+v", f.TCP)
			}
			done()
		})
	_ = got
	b.client.SendTCP(SendParams{
		From: b.cliCtr, DstIP: srvCtrIP, Payload: 512, Core: 2,
	}, proto.TCPHdr{SrcPort: 40000, DstPort: 443, Seq: 1000,
		Flags: proto.TCPAck | proto.TCPPsh, Window: 65535})
	b.e.RunUntil(5 * sim.Millisecond)
	if len(got) != 1 {
		t.Fatalf("delivered %d segments", len(got))
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	b := newBed(t, "", 100*devices.Gbps)
	result := true
	b.client.SendUDP(SendParams{
		From: b.cliCtr, SrcPort: 1, DstIP: srvCtrIP, DstPort: 2,
		Payload: MaxOverlayPayload + 1, Core: 2,
		Done: func(ok bool) { result = ok },
	})
	b.e.RunUntil(sim.Millisecond)
	if result {
		t.Fatal("oversized overlay payload accepted")
	}
	// The host-network limit is higher: the same payload fits there.
	result = false
	b.client.SendUDP(SendParams{
		SrcPort: 1, DstIP: serverIP, DstPort: 2,
		Payload: MaxOverlayPayload + 1, Core: 2,
		Done: func(ok bool) { result = ok },
	})
	b.e.RunUntil(2 * sim.Millisecond)
	if !result {
		t.Fatal("host payload within limit rejected")
	}
}
