package overlay

import (
	"falcon/internal/costmodel"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/skb"
)

// rxFlowKey identifies one receive flow by its inner 5-tuple. The
// protocol is not part of the key: only UDP flows are cached (inner GRO
// coalesces TCP segments, so a TCP fast path would change the delivered
// packet population), and a protocol collision on the same 4-tuple
// simply misses through the version check when the mapping changes.
type rxFlowKey struct {
	srcIP, dstIP     proto.IPv4Addr
	srcPort, dstPort uint16
}

// rxFlowEntry is the cached outcome of one inner flow's decap walk — the
// simulation analogue of an ONCache eBPF flow-table record on the TC
// ingress hook. A hit replaces the whole inner stage pipeline (outer
// udp_rcv + vxlan_rcv, gro_cell_poll, bridge, veth_xmit, backlog and the
// second L3 traversal, plus their softirq raises) with the cached
// per-stage cost sum recorded here: the lookup and deliver bases from
// the host's cost profile, with the per-byte rewrite term applied to the
// live frame at hit time (GRO-merged frames vary in length).
//
// Entries carry the same revalidation discipline as the TX flow cache:
// (kvVersion, gen) freshness, the host's lazy-eviction epoch
// (ReconcileKV), and the purge clock of the outer source host
// (PurgeDeadHost) — so crash and reconfiguration runs behave identically
// whether eviction happens eagerly or on the next probe.
type rxFlowEntry struct {
	kvVersion uint64
	gen       uint64
	epoch     uint64   // host cacheEpoch at build (ReconcileKV laziness)
	born      uint64   // host purgeClock at build (PurgeDeadHost laziness)
	builtAt   sim.Time // when the walk populated the entry (staleness bound)
	srcHostIP proto.IPv4Addr
	base      float64 // cached cost sum: lookup + deliver base ns
	perByte   float64 // per-byte rewrite cost applied to the inner frame
}

// rxCache is the host's per-core RX decap fast-path table. Each
// simulated core owns its own map (State-Compute-Replication style):
// cores never read another core's table, so the modeled structure is
// lock-free by construction — and since one host is one PDES logical
// process, plain maps implement it without real synchronization either.
type rxCache struct {
	h      *Host
	tables []map[rxFlowKey]*rxFlowEntry // index = simulated core ID
}

// EnableRxCache installs the ONCache-style RX decap fast path on the
// host: warm inner-UDP flows skip the decap stage walk at the l3 branch
// and deliver straight to the socket with the cached cost sum. Idempotent.
func (h *Host) EnableRxCache() {
	if h.rxCache == nil {
		h.rxCache = &rxCache{h: h, tables: make([]map[rxFlowKey]*rxFlowEntry, h.M.NumCores())}
	}
	h.Rx.Cache = h.rxCache
}

// DisableRxCache restores the full decap walk for every packet.
func (h *Host) DisableRxCache() { h.Rx.Cache = nil }

// RxCacheEnabled reports whether the fast path is installed.
func (h *Host) RxCacheEnabled() bool { return h.rxCache != nil && h.Rx.Cache != nil }

// innerUDP parses the arriving VXLAN frame's inner flow, accepting only
// complete inner UDP frames (the cacheable population).
func innerUDP(s *skb.SKB) (*proto.Frame, bool) {
	f, ok := s.VXLANInner()
	if !ok || f.IP.Protocol != proto.ProtoUDP {
		return nil, false
	}
	return f, true
}

// Probe implements devices.RxFlowCache: it looks the arriving frame's
// inner flow up in core's table and, on a valid entry, returns the
// fast-path cost to charge. Invalid entries (stale epoch, source host
// declared dead since build, version-expired outside a partition's
// staleness bound) are lazily evicted here. Probes charge no simulated
// time themselves — the lookup's cost is part of the cached sum on a
// hit, and a miss's probe models a per-core L1-resident table check
// below the simulation's cost resolution.
func (rc *rxCache) Probe(core int, s *skb.SKB) (sim.Time, bool) {
	h := rc.h
	f, ok := innerUDP(s)
	if !ok {
		h.RxCacheMisses.Inc()
		return 0, false
	}
	t := rc.tables[core]
	key := rxFlowKey{srcIP: f.IP.Src, dstIP: f.IP.Dst, srcPort: f.SrcPort(), dstPort: f.DstPort()}
	e, ok := t[key]
	if !ok {
		h.RxCacheMisses.Inc()
		return 0, false
	}
	if e.epoch != h.cacheEpoch || h.deadAt[e.srcHostIP] > e.born {
		delete(t, key)
		h.RxCacheMisses.Inc()
		return 0, false
	}
	innerLen := s.Len() - proto.OverlayOverhead
	if e.kvVersion == h.Net.KV.Version() && e.gen == h.Net.Generation() {
		h.RxCacheHits.Inc()
		return sim.Time(e.base + e.perByte*float64(innerLen)), true
	}
	// Version-expired: a control-plane-partitioned host cannot revalidate,
	// so it keeps fast-pathing on the last mapping it saw for the same
	// bounded window the TX cache allows (the walk it would fall into
	// consults no KV either — staleness here affects costs, not routing).
	if h.Net.KV.Partitioned(h.IP) && h.E.Now()-e.builtAt <= PartitionStaleBound {
		h.RxCacheStale.Inc()
		return sim.Time(e.base + e.perByte*float64(innerLen)), true
	}
	delete(t, key)
	h.RxCacheMisses.Inc()
	return 0, false
}

// Learn implements devices.RxFlowCache: after a miss fell through to the
// full walk, it records the walk's (deterministic) outcome so the flow's
// next packet fast-paths. Only frames the walk would actually deliver
// are recorded — the inner destination MAC must resolve to a local veth,
// exactly the bridge FDB condition — so a hit never delivers a packet
// the walk would have dropped.
func (rc *rxCache) Learn(core int, s *skb.SKB) {
	h := rc.h
	f, ok := innerUDP(s)
	if !ok {
		return
	}
	if _, local := h.Rx.VethByMAC[f.Eth.Dst]; !local {
		return
	}
	outer, err := s.Frame()
	if err != nil {
		return
	}
	t := rc.tables[core]
	if t == nil {
		t = make(map[rxFlowKey]*rxFlowEntry)
		rc.tables[core] = t
	}
	m := h.M.Model
	lk, dl := m.Get(costmodel.FnRxCacheLookup), m.Get(costmodel.FnRxCacheDeliver)
	key := rxFlowKey{srcIP: f.IP.Src, dstIP: f.IP.Dst, srcPort: f.SrcPort(), dstPort: f.DstPort()}
	t[key] = &rxFlowEntry{
		kvVersion: h.Net.KV.Version(),
		gen:       h.Net.Generation(),
		epoch:     h.cacheEpoch,
		born:      h.purgeClock,
		builtAt:   h.E.Now(),
		srcHostIP: outer.IP.Src,
		base:      lk.Base + dl.Base,
		perByte:   lk.PerByte + dl.PerByte,
	}
}

// rxEntries counts RX fast-path entries across every core's table that
// survive lazy eviction (epoch and dead-host purge; version freshness
// is a revalidation concern, not eviction). Test and stats helper —
// physical map sizes include lazily dead entries.
func (h *Host) rxEntries() int {
	if h.rxCache == nil {
		return 0
	}
	n := 0
	for _, t := range h.rxCache.tables {
		for _, e := range t {
			if e.epoch == h.cacheEpoch && h.deadAt[e.srcHostIP] <= e.born {
				n++
			}
		}
	}
	return n
}
