package overlay

import (
	"testing"

	"falcon/internal/devices"
	"falcon/internal/proto"
	"falcon/internal/sim"
)

// newRxBed is newBed with the RX decap fast path enabled on the server
// (the receiving side of every test flow here).
func newRxBed(t *testing.T) *bed {
	t.Helper()
	b := newBed(t, "", 100*devices.Gbps)
	b.server.EnableRxCache()
	return b
}

// rxCounters snapshots the server's fast-path counters.
func rxCounters(h *Host) (hits, misses, stale uint64) {
	return h.RxCacheHits.Value(), h.RxCacheMisses.Value(), h.RxCacheStale.Value()
}

// TestCacheRxFastPathHitAndLearn: the first packet of a flow misses and
// populates the cache through the full decap walk; the second fast-paths.
// Both must reach the destination socket.
func TestCacheRxFastPathHitAndLearn(t *testing.T) {
	b := newRxBed(t)
	sock := b.server.OpenUDP(srvCtrIP, 5001, 2)

	b.e.At(0, func() { sendOne(b, 1, nil) })
	b.e.RunUntil(sim.Millisecond)
	hits, misses, _ := rxCounters(b.server)
	if hits != 0 || misses != 1 {
		t.Fatalf("after first packet: hits=%d misses=%d, want 0/1", hits, misses)
	}
	if got := b.server.rxEntries(); got != 1 {
		t.Fatalf("rx cache has %d entries, want 1", got)
	}

	b.e.At(sim.Millisecond, func() { sendOne(b, 2, nil) })
	b.e.RunUntil(2 * sim.Millisecond)
	hits, misses, _ = rxCounters(b.server)
	if hits != 1 || misses != 1 {
		t.Fatalf("after second packet: hits=%d misses=%d, want 1/1", hits, misses)
	}
	if got := sock.Delivered.Value(); got != 2 {
		t.Fatalf("delivered %d, want 2 (fast path must deliver like the walk)", got)
	}
}

// TestCacheRxGenerationInvalidation: a generation bump (steering flip,
// membership change) version-expires every RX entry; an unpartitioned
// host must fall back to the full walk and relearn, never serve stale.
func TestCacheRxGenerationInvalidation(t *testing.T) {
	b := newRxBed(t)
	sock := b.server.OpenUDP(srvCtrIP, 5001, 2)

	b.e.At(0, func() { sendOne(b, 1, nil) })
	b.e.At(10*sim.Microsecond, func() { sendOne(b, 2, nil) })
	b.e.At(20*sim.Microsecond, func() { b.n.BumpGeneration() })
	b.e.At(30*sim.Microsecond, func() { sendOne(b, 3, nil) })
	b.e.RunUntil(sim.Millisecond)

	hits, misses, stale := rxCounters(b.server)
	if hits != 1 || misses != 2 || stale != 0 {
		t.Fatalf("hits=%d misses=%d stale=%d, want 1/2/0 (bump must force a relearn, not a stale serve)",
			hits, misses, stale)
	}
	// The relearned entry carries the new generation: the next packet hits.
	b.e.At(sim.Millisecond, func() { sendOne(b, 4, nil) })
	b.e.RunUntil(2 * sim.Millisecond)
	if hits, _, _ = rxCounters(b.server); hits != 2 {
		t.Fatalf("hits=%d after relearn, want 2", hits)
	}
	if got := sock.Delivered.Value(); got != 4 {
		t.Fatalf("delivered %d, want 4", got)
	}
}

// TestCacheRxPartitionStaleServe: a control-plane-partitioned receiver
// cannot revalidate a version-expired entry; within PartitionStaleBound
// of the entry's build it keeps fast-pathing (counted as stale), beyond
// the bound it falls back to the walk — mirroring the TX cache's
// split-brain discipline.
func TestCacheRxPartitionStaleServe(t *testing.T) {
	b := newRxBed(t)
	sock := b.server.OpenUDP(srvCtrIP, 5001, 2)

	// Learn well before the bump: the walk takes tens of microseconds, and
	// an entry learned after the bump would carry the new generation.
	b.e.At(0, func() { sendOne(b, 1, nil) })
	b.e.At(200*sim.Microsecond, func() {
		b.n.KV.SetPartitioned(serverIP, true)
		b.n.BumpGeneration()
	})
	// Version-expired + partitioned + young: stale serve.
	b.e.At(300*sim.Microsecond, func() { sendOne(b, 2, nil) })
	b.e.RunUntil(sim.Millisecond)
	hits, misses, stale := rxCounters(b.server)
	if hits != 0 || misses != 1 || stale != 1 {
		t.Fatalf("hits=%d misses=%d stale=%d, want 0/1/1", hits, misses, stale)
	}

	// Past PartitionStaleBound the entry is unusable: full walk, relearn.
	beyond := PartitionStaleBound + sim.Millisecond
	b.e.At(beyond, func() { sendOne(b, 3, nil) })
	b.e.RunUntil(beyond + sim.Millisecond)
	_, misses, stale = rxCounters(b.server)
	if misses != 2 || stale != 1 {
		t.Fatalf("misses=%d stale=%d after the bound, want 2/1", misses, stale)
	}
	// Delivery never stops: the fallback walk consults no KV on RX.
	if got := sock.Delivered.Value(); got != 3 {
		t.Fatalf("delivered %d, want 3", got)
	}
}

// TestCrashRxPurgeDeadHostEvicts: when the failure detector declares the
// outer source host dead, every survivor must drop its RX fast-path
// entries learned from that host's frames — a rebooted host's flows must
// go back through the full walk and relearn, not hit a pre-crash entry.
func TestCrashRxPurgeDeadHostEvicts(t *testing.T) {
	b := newRxBed(t)
	b.server.OpenUDP(srvCtrIP, 5001, 2)

	b.e.At(0, func() { sendOne(b, 1, nil) })
	b.e.RunUntil(sim.Millisecond)
	if got := b.server.rxEntries(); got != 1 {
		t.Fatalf("warm rx cache has %d entries, want 1", got)
	}

	// The server (a survivor here) learns the client died.
	b.server.PurgeDeadHost(clientIP, []proto.IPv4Addr{cliCtrIP})
	if got := b.server.rxEntries(); got != 0 {
		t.Fatalf("rx cache has %d live entries after purge, want 0", got)
	}

	// The client reboots and resumes the flow: miss + relearn, then hits.
	// The relearned entry's born equals the purge clock, so it is valid.
	b.e.At(sim.Millisecond, func() { sendOne(b, 2, nil) })
	b.e.At(2*sim.Millisecond, func() { sendOne(b, 3, nil) })
	b.e.RunUntil(3 * sim.Millisecond)
	hits, misses, _ := rxCounters(b.server)
	if hits != 1 || misses != 2 {
		t.Fatalf("hits=%d misses=%d after reboot, want 1/2 (miss+relearn, then hit)", hits, misses)
	}
	if got := b.server.rxEntries(); got != 1 {
		t.Fatalf("rx cache has %d entries after relearn, want 1", got)
	}
}

// TestCacheLazyEvictionNoScan is the satellite regression for the
// generation-lazy eviction refactor: ReconcileKV and PurgeDeadHost no
// longer walk the caches (O(1) and O(containers) respectively) — the
// maps physically keep their entries until the next lookup touches them,
// but every read path must treat the entries as gone immediately.
func TestCacheLazyEvictionNoScan(t *testing.T) {
	b := newRxBed(t)
	b.server.OpenUDP(srvCtrIP, 5001, 2)

	// Warm 4 TX flows on the client (distinct source ports) and their RX
	// twins on the server.
	const flows = 4
	for i := 0; i < flows; i++ {
		src := uint16(7000 + i)
		b.e.At(sim.Time(i)*10*sim.Microsecond, func() {
			b.client.SendUDP(SendParams{
				From: b.cliCtr, SrcPort: src, DstIP: srvCtrIP, DstPort: 5001,
				Payload: 64, Core: 2, FlowID: uint64(src), Seq: 1,
			})
		})
	}
	b.e.RunUntil(sim.Millisecond)
	if got := b.client.txEntries(); got != flows {
		t.Fatalf("client tx cache has %d entries, want %d", got, flows)
	}
	if got := b.server.rxEntries(); got != flows {
		t.Fatalf("server rx cache has %d entries, want %d", got, flows)
	}
	physTx := len(b.client.flowCaches[2])
	b.client.negCache[srvCtrIP] = negEntry{until: sim.Second,
		kvVersion: b.n.KV.Version(), epoch: b.client.cacheEpoch}

	// ReconcileKV: one epoch bump, no map traversal.
	b.client.ReconcileKV()
	b.server.ReconcileKV()
	if got := len(b.client.flowCaches[2]); got != physTx {
		t.Fatalf("ReconcileKV physically cleared the tx cache (%d -> %d entries): eviction must be lazy",
			physTx, got)
	}
	if got := b.client.txEntries(); got != 0 {
		t.Fatalf("client tx cache has %d live entries after ReconcileKV, want 0", got)
	}
	if got := b.server.rxEntries(); got != 0 {
		t.Fatalf("server rx cache has %d live entries after ReconcileKV, want 0", got)
	}
	// The stale-epoch negative entry is dead too (read paths check epoch).
	if ne, ok := b.client.negCache[srvCtrIP]; ok && ne.epoch == b.client.cacheEpoch {
		t.Fatal("negative-cache entry survived ReconcileKV with a fresh epoch")
	}

	// A lookup lazily evicts: probe one stale key and watch it vanish.
	key := txFlowKey{from: b.cliCtr, dstIP: srvCtrIP, srcPort: 7000, dstPort: 5001,
		ipProto: proto.ProtoUDP, payload: 64}
	if _, ok := b.client.txLookup(2, key); ok {
		t.Fatal("txLookup returned an epoch-stale entry")
	}
	if got := len(b.client.flowCaches[2]); got != physTx-1 {
		t.Fatalf("lookup did not lazily evict: physical entries %d, want %d", got, physTx-1)
	}
}
