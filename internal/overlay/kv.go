// Package overlay assembles complete container-overlay topologies: hosts
// (machine + stack + NIC + bridge), containers (veth pairs, private IPs),
// the VXLAN tunnel fabric with its distributed key-value store mapping
// container IPs to host endpoints (as Docker overlay/Flannel do), links
// between hosts, and the transmit path. It is the integration layer that
// turns the device/stack substrates into the systems the paper measures.
package overlay

import (
	"fmt"

	"falcon/internal/proto"
	"falcon/internal/sim"
)

// EndpointInfo is what the overlay control plane knows about a container
// IP: which host carries it and the MACs needed for encapsulation.
type EndpointInfo struct {
	ContainerMAC proto.MAC
	HostIP       proto.IPv4Addr
	HostMAC      proto.MAC
}

// KVStore is the distributed key-value store backing the overlay: the
// mapping from private container IPs to public host endpoints that
// vxlan_xmit consults when encapsulating (Section 2.1). Lookups are
// local (hosts cache the full table, as Docker's gossip-backed store
// effectively provides).
type KVStore struct {
	entries map[proto.IPv4Addr]EndpointInfo
	fault   LookupFault
	// version counts mutations; cached resolutions (the tx flow cache)
	// revalidate against it so a Put/Delete invalidates them all.
	version uint64
	// partitioned marks hosts cut off from the control plane: a
	// partitioned host cannot perform fresh lookups and instead serves
	// version-pinned stale mappings from its TX flow cache (bounded
	// staleness) with retry/backoff on misses — split-brain tolerance
	// without a global fault. Keyed by host IP so everyone else stays on
	// the healthy fast path.
	partitioned map[proto.IPv4Addr]bool
}

// Version returns the store's mutation counter.
func (kv *KVStore) Version() uint64 { return kv.version }

// LookupFault models control-plane misbehaviour on the lookup path
// (internal/faults installs implementations): each consulted lookup may
// be delayed and/or transiently fail. A nil fault keeps Get purely
// local and synchronous — the healthy Docker-gossip behaviour.
type LookupFault interface {
	// Lookup is consulted once per resolution attempt — by the host at
	// hostIP, resolving containerIP — and returns the extra latency the
	// attempt pays and whether it transiently fails. The consulting
	// host's identity lets implementations keep per-host RNG streams,
	// which a sharded run needs for determinism (hosts on different
	// shards resolve concurrently).
	Lookup(hostIP, containerIP proto.IPv4Addr) (delay sim.Time, fail bool)
}

// SetFault installs (or, with nil, removes) a lookup fault.
func (kv *KVStore) SetFault(f LookupFault) { kv.fault = f }

// SetPartitioned marks (or heals) a control-plane partition for the
// host at hostIP. While set, that host's transmit path takes the
// partition-tolerant branch (stale cache serving + backoff retries).
func (kv *KVStore) SetPartitioned(hostIP proto.IPv4Addr, on bool) {
	if on {
		if kv.partitioned == nil {
			kv.partitioned = make(map[proto.IPv4Addr]bool)
		}
		kv.partitioned[hostIP] = true
		return
	}
	delete(kv.partitioned, hostIP)
}

// Partitioned reports whether the host at hostIP is cut off from the
// control plane.
func (kv *KVStore) Partitioned(hostIP proto.IPv4Addr) bool {
	return kv.partitioned[hostIP]
}

// Fault returns the installed lookup fault, nil when healthy.
func (kv *KVStore) Fault() LookupFault { return kv.fault }

// NewKVStore returns an empty store.
func NewKVStore() *KVStore {
	return &KVStore{entries: make(map[proto.IPv4Addr]EndpointInfo)}
}

// Put registers (or updates) a container IP mapping.
func (kv *KVStore) Put(containerIP proto.IPv4Addr, info EndpointInfo) {
	kv.entries[containerIP] = info
	kv.version++
}

// Get resolves a container IP.
func (kv *KVStore) Get(containerIP proto.IPv4Addr) (EndpointInfo, error) {
	info, ok := kv.entries[containerIP]
	if !ok {
		return EndpointInfo{}, fmt.Errorf("overlay: no endpoint for %s", containerIP)
	}
	return info, nil
}

// Delete removes a mapping (container teardown).
func (kv *KVStore) Delete(containerIP proto.IPv4Addr) {
	delete(kv.entries, containerIP)
	kv.version++
}

// Len returns the number of registered containers.
func (kv *KVStore) Len() int { return len(kv.entries) }
