package overlay

import (
	"testing"

	"falcon/internal/devices"
	"falcon/internal/proto"
	"falcon/internal/sim"
)

var spareIP = proto.IP4(192, 168, 1, 3)

// newDrainBed is newBed plus a spare host carrying a standby twin of the
// server container — the topology a graceful drain migrates across.
func newDrainBed(t *testing.T) (*bed, *Host, *Container) {
	t.Helper()
	b := newBed(t, "", 100*devices.Gbps)
	spare := b.n.AddHost(HostConfig{
		Name: "spare", IP: spareIP, Cores: 8,
		RSSCores: []int{0}, RPSCores: []int{1}, GRO: true, InnerGRO: true,
	})
	b.n.Connect(b.client, spare, 100*devices.Gbps, sim.Microsecond)
	b.n.Connect(b.server, spare, 100*devices.Gbps, sim.Microsecond)
	twin := spare.AddStandbyContainer("c-srv-twin", srvCtrIP)
	return b, spare, twin
}

// sendOne transmits a single container UDP packet at the current time
// and reports (via Done) whether it made it onto the wire.
func sendOne(b *bed, seq uint64, done func(ok bool)) {
	b.client.SendUDP(SendParams{
		From: b.cliCtr, SrcPort: 7000, DstIP: srvCtrIP, DstPort: 5001,
		Payload: 64, Core: 2, FlowID: 1, Seq: seq, Done: done,
	})
}

// TestFlowCacheGenerationInvalidation: a generation bump that never
// touches the KV store (the steering-flip/topology-membership class of
// swap) must still invalidate cached transmit flows.
func TestFlowCacheGenerationInvalidation(t *testing.T) {
	b := newBed(t, "", 100*devices.Gbps)
	b.server.OpenUDP(srvCtrIP, 5001, 2)

	b.e.At(0, func() { sendOne(b, 1, nil) })
	b.e.RunUntil(sim.Millisecond)
	if len(b.client.flowCache) != 1 {
		t.Fatalf("flow cache has %d entries, want 1", len(b.client.flowCache))
	}
	var before *txFlowEntry
	for _, e := range b.client.flowCache {
		before = e
	}
	if before.gen != b.n.Generation() {
		t.Fatalf("cached gen %d != network gen %d", before.gen, b.n.Generation())
	}

	// Same flow again without a bump: the entry must be reused.
	b.e.At(sim.Millisecond, func() { sendOne(b, 2, nil) })
	b.e.RunUntil(2 * sim.Millisecond)
	for _, e := range b.client.flowCache {
		if e != before {
			t.Fatal("cache entry rebuilt without any configuration change")
		}
	}

	// Bump the generation (no KV mutation): next send must rebuild.
	b.n.BumpGeneration()
	b.e.At(2*sim.Millisecond, func() { sendOne(b, 3, nil) })
	b.e.RunUntil(3 * sim.Millisecond)
	for _, e := range b.client.flowCache {
		if e == before {
			t.Fatal("stale flow-cache entry survived a generation bump")
		}
		if e.gen != b.n.Generation() {
			t.Fatalf("rebuilt entry gen %d != network gen %d", e.gen, b.n.Generation())
		}
	}
}

// TestDrainedHostNotSteeredTo is the post-swap steering regression: once
// a drain remaps the server container onto the spare's standby twin, a
// warm transmit flow cache must not put a single further frame on the
// wire toward the drained host.
func TestDrainedHostNotSteeredTo(t *testing.T) {
	b, spare, twin := newDrainBed(t)
	b.server.OpenUDP(srvCtrIP, 5001, 2)
	twinSock := spare.OpenUDP(srvCtrIP, 5001, 2)

	const warm = 50
	for i := 0; i < warm; i++ {
		seq := uint64(i + 1)
		b.e.At(sim.Time(i)*5*sim.Microsecond, func() { sendOne(b, seq, nil) })
	}
	b.e.RunUntil(2 * sim.Millisecond)
	toServer := b.client.LinkTo(serverIP).Sent.Value()
	if toServer != warm {
		t.Fatalf("warm phase: %d frames toward server, want %d", toServer, warm)
	}

	// The drain swap, exactly as the reconfig manager applies it: mapping
	// removed, generation bumped, twin landed (in-transit window elided —
	// steering correctness is about the post-swap state).
	b.e.At(2*sim.Millisecond, func() {
		b.n.KV.Delete(srvCtrIP)
		b.n.BumpGeneration()
		b.n.KV.Put(srvCtrIP, twin.Endpoint())
	})
	for i := 0; i < warm; i++ {
		seq := uint64(warm + i + 1)
		b.e.At(2*sim.Millisecond+sim.Time(i+1)*5*sim.Microsecond, func() { sendOne(b, seq, nil) })
	}
	b.e.RunUntil(5 * sim.Millisecond)

	if got := b.client.LinkTo(serverIP).Sent.Value(); got != toServer {
		t.Fatalf("drained host received %d new frames after the swap", got-toServer)
	}
	if got := b.client.LinkTo(spareIP).Sent.Value(); got != warm {
		t.Fatalf("spare link carried %d frames, want %d", got, warm)
	}
	if got := twinSock.Delivered.Value(); got != warm {
		t.Fatalf("twin socket delivered %d, want %d", got, warm)
	}
}

// nullFault is a LookupFault that neither delays nor fails: it forces
// the degraded per-packet resolution path (where the negative cache
// lives) without perturbing timing.
type nullFault struct{}

func (nullFault) Lookup(_, _ proto.IPv4Addr) (sim.Time, bool) { return 0, false }

// TestNegCachePurgedByRemap: a definitive KV miss recorded while a
// container is in transit between hosts (drain window) must die with the
// Put that lands the container — recovery is bounded by the remap
// itself, not by NegCacheTTL.
func TestNegCachePurgedByRemap(t *testing.T) {
	b, spare, twin := newDrainBed(t)
	twinSock := spare.OpenUDP(srvCtrIP, 5001, 2)
	b.n.KV.SetFault(nullFault{})

	// Drain begins: the mapping disappears while the container is in
	// transit.
	b.e.At(0, func() { b.n.KV.Delete(srvCtrIP) })

	// A send during the transit window records the definitive miss...
	b.e.At(10*sim.Microsecond, func() {
		sendOne(b, 1, func(ok bool) {
			if ok {
				t.Error("send during transit window succeeded")
			}
		})
	})
	// ...and a second one must be served from the negative cache.
	b.e.At(20*sim.Microsecond, func() { sendOne(b, 2, nil) })
	b.e.RunUntil(30 * sim.Microsecond)
	if got := b.client.NegCacheHits.Value(); got != 1 {
		t.Fatalf("negative-cache hits = %d, want 1", got)
	}
	if got := b.client.TxResolveDrops.Value(); got != 2 {
		t.Fatalf("resolve drops = %d, want 2", got)
	}

	// The container lands on the spare. The very next send — still deep
	// inside the 2ms NegCacheTTL — must resolve and deliver immediately:
	// the KV version pin invalidates the stale negative entry.
	landAt := 200 * sim.Microsecond
	b.e.At(landAt, func() { b.n.KV.Put(srvCtrIP, twin.Endpoint()) })
	recoverAt := landAt + 10*sim.Microsecond
	if recoverAt >= NegCacheTTL {
		t.Fatalf("test geometry broken: recovery probe at %v not inside TTL %v", recoverAt, NegCacheTTL)
	}
	b.e.At(recoverAt, func() {
		sendOne(b, 3, func(ok bool) {
			if !ok {
				t.Error("send after remap blackholed by stale negative cache")
			}
		})
	})
	b.e.RunUntil(2 * sim.Millisecond)
	if got := twinSock.Delivered.Value(); got != 1 {
		t.Fatalf("twin delivered %d, want 1 (post-remap packet)", got)
	}
	if got := b.client.NegCacheHits.Value(); got != 1 {
		t.Fatalf("negative-cache hits after remap = %d, want 1 (no further hits)", got)
	}
}
