package overlay

import (
	"testing"

	"falcon/internal/devices"
	"falcon/internal/proto"
	"falcon/internal/sim"
)

var spareIP = proto.IP4(192, 168, 1, 3)

// newDrainBed is newBed plus a spare host carrying a standby twin of the
// server container — the topology a graceful drain migrates across.
func newDrainBed(t *testing.T) (*bed, *Host, *Container) {
	t.Helper()
	b := newBed(t, "", 100*devices.Gbps)
	spare := b.n.AddHost(HostConfig{
		Name: "spare", IP: spareIP, Cores: 8,
		RSSCores: []int{0}, RPSCores: []int{1}, GRO: true, InnerGRO: true,
	})
	b.n.Connect(b.client, spare, 100*devices.Gbps, sim.Microsecond)
	b.n.Connect(b.server, spare, 100*devices.Gbps, sim.Microsecond)
	twin := spare.AddStandbyContainer("c-srv-twin", srvCtrIP)
	return b, spare, twin
}

// sendOne transmits a single container UDP packet at the current time
// and reports (via Done) whether it made it onto the wire.
func sendOne(b *bed, seq uint64, done func(ok bool)) {
	b.client.SendUDP(SendParams{
		From: b.cliCtr, SrcPort: 7000, DstIP: srvCtrIP, DstPort: 5001,
		Payload: 64, Core: 2, FlowID: 1, Seq: seq, Done: done,
	})
}

// TestFlowCacheGenerationInvalidation: a generation bump that never
// touches the KV store (the steering-flip/topology-membership class of
// swap) must still invalidate cached transmit flows.
func TestFlowCacheGenerationInvalidation(t *testing.T) {
	b := newBed(t, "", 100*devices.Gbps)
	b.server.OpenUDP(srvCtrIP, 5001, 2)

	b.e.At(0, func() { sendOne(b, 1, nil) })
	b.e.RunUntil(sim.Millisecond)
	if got := b.client.txEntries(); got != 1 {
		t.Fatalf("flow cache has %d entries, want 1", got)
	}
	// sendOne transmits from core 2, so the entry lives in core 2's table.
	var before *txFlowEntry
	for _, e := range b.client.flowCaches[2] {
		before = e
	}
	if before.gen != b.n.Generation() {
		t.Fatalf("cached gen %d != network gen %d", before.gen, b.n.Generation())
	}

	// Same flow again without a bump: the entry must be reused.
	b.e.At(sim.Millisecond, func() { sendOne(b, 2, nil) })
	b.e.RunUntil(2 * sim.Millisecond)
	for _, e := range b.client.flowCaches[2] {
		if e != before {
			t.Fatal("cache entry rebuilt without any configuration change")
		}
	}

	// Bump the generation (no KV mutation): next send must rebuild.
	b.n.BumpGeneration()
	b.e.At(2*sim.Millisecond, func() { sendOne(b, 3, nil) })
	b.e.RunUntil(3 * sim.Millisecond)
	for _, e := range b.client.flowCaches[2] {
		if e == before {
			t.Fatal("stale flow-cache entry survived a generation bump")
		}
		if e.gen != b.n.Generation() {
			t.Fatalf("rebuilt entry gen %d != network gen %d", e.gen, b.n.Generation())
		}
	}
}

// TestDrainedHostNotSteeredTo is the post-swap steering regression: once
// a drain remaps the server container onto the spare's standby twin, a
// warm transmit flow cache must not put a single further frame on the
// wire toward the drained host.
func TestDrainedHostNotSteeredTo(t *testing.T) {
	b, spare, twin := newDrainBed(t)
	b.server.OpenUDP(srvCtrIP, 5001, 2)
	twinSock := spare.OpenUDP(srvCtrIP, 5001, 2)

	const warm = 50
	for i := 0; i < warm; i++ {
		seq := uint64(i + 1)
		b.e.At(sim.Time(i)*5*sim.Microsecond, func() { sendOne(b, seq, nil) })
	}
	b.e.RunUntil(2 * sim.Millisecond)
	toServer := b.client.LinkTo(serverIP).Sent.Value()
	if toServer != warm {
		t.Fatalf("warm phase: %d frames toward server, want %d", toServer, warm)
	}

	// The drain swap, exactly as the reconfig manager applies it: mapping
	// removed, generation bumped, twin landed (in-transit window elided —
	// steering correctness is about the post-swap state).
	b.e.At(2*sim.Millisecond, func() {
		b.n.KV.Delete(srvCtrIP)
		b.n.BumpGeneration()
		b.n.KV.Put(srvCtrIP, twin.Endpoint())
	})
	for i := 0; i < warm; i++ {
		seq := uint64(warm + i + 1)
		b.e.At(2*sim.Millisecond+sim.Time(i+1)*5*sim.Microsecond, func() { sendOne(b, seq, nil) })
	}
	b.e.RunUntil(5 * sim.Millisecond)

	if got := b.client.LinkTo(serverIP).Sent.Value(); got != toServer {
		t.Fatalf("drained host received %d new frames after the swap", got-toServer)
	}
	if got := b.client.LinkTo(spareIP).Sent.Value(); got != warm {
		t.Fatalf("spare link carried %d frames, want %d", got, warm)
	}
	if got := twinSock.Delivered.Value(); got != warm {
		t.Fatalf("twin socket delivered %d, want %d", got, warm)
	}
}

// TestPurgeDeadHostEvictsCaches: when the failure detector declares a
// host dead, every survivor's cached route to it — container flow-cache
// entries resolving onto the dead host, host-network entries addressed
// to it, and negative-cache entries for its containers — must go at
// once; cached routes to other hosts survive.
func TestCrashPurgeDeadHostEvictsCaches(t *testing.T) {
	b, spare, _ := newDrainBed(t)
	b.server.OpenUDP(srvCtrIP, 5001, 2)

	// Warm three flows: container → dead host, host-network → dead host,
	// host-network → surviving spare.
	b.e.At(0, func() {
		sendOne(b, 1, nil)
		b.client.SendUDP(SendParams{SrcPort: 9000, DstIP: serverIP, DstPort: 9001,
			Payload: 64, Core: 2, FlowID: 2, Seq: 1})
		b.client.SendUDP(SendParams{SrcPort: 9000, DstIP: spare.IP, DstPort: 9001,
			Payload: 64, Core: 2, FlowID: 3, Seq: 1})
	})
	b.e.RunUntil(sim.Millisecond)
	if got := b.client.txEntries(); got != 3 {
		t.Fatalf("warm flow cache has %d entries, want 3", got)
	}
	// And a negative-cache entry for the dead host's container.
	b.client.negCache[srvCtrIP] = negEntry{until: sim.Second,
		kvVersion: b.n.KV.Version(), epoch: b.client.cacheEpoch}

	b.client.PurgeDeadHost(serverIP, []proto.IPv4Addr{srvCtrIP})

	if got := b.client.txEntries(); got != 1 {
		t.Fatalf("flow cache has %d live entries after purge, want 1 (spare only)", got)
	}
	for k, e := range b.client.flowCaches[2] {
		if b.client.deadAt[e.info.HostIP] > e.born {
			continue // lazily dead, evicted on next lookup
		}
		if k.dstIP != spare.IP {
			t.Fatalf("surviving flow-cache entry points at %v, want %v", k.dstIP, spare.IP)
		}
	}
	if _, ok := b.client.negCache[srvCtrIP]; ok {
		t.Fatal("negative-cache entry for the dead host's container survived the purge")
	}
	// The purge is generation-lazy: dead entries are physically evicted by
	// the next lookup that touches them, not by a scan at declare time.
	if _, ok := b.client.txLookup(2, txFlowKey{from: b.cliCtr, dstIP: srvCtrIP,
		srcPort: 7000, dstPort: 5001, ipProto: proto.ProtoUDP, payload: 64}); ok {
		t.Fatal("txLookup returned an entry routing through the dead host")
	}
}

// TestPartitionStaleServeAndReconcile drives the split-brain transmit
// path end to end: fresh entries transmit normally, a version-expired
// entry serves stale within PartitionStaleBound, beyond the bound the
// flow falls into retry/backoff and negative caching, and the heal's
// reconciliation restores real resolution — with every delivery counted
// exactly once.
func TestCrashPartitionStaleServeAndReconcile(t *testing.T) {
	b := newBed(t, "", 100*devices.Gbps)
	sock := b.server.OpenUDP(srvCtrIP, 5001, 2)

	// Warm the flow, then partition the client.
	b.e.At(0, func() { sendOne(b, 1, nil) })
	b.e.At(10*sim.Microsecond, func() { b.n.KV.SetPartitioned(b.client.IP, true) })

	// Fresh entry: transmits normally, no stale serve counted.
	b.e.At(20*sim.Microsecond, func() { sendOne(b, 2, nil) })

	// A generation bump the partitioned host cannot resolve around:
	// the entry is now version-expired but young — it serves stale.
	b.e.At(30*sim.Microsecond, func() { b.n.BumpGeneration() })
	b.e.At(40*sim.Microsecond, func() { sendOne(b, 3, nil) })
	b.e.RunUntil(sim.Millisecond)
	if got := b.client.StaleServes.Value(); got != 1 {
		t.Fatalf("stale serves = %d, want 1", got)
	}

	// Past the staleness bound the entry is unusable: the send retries
	// with backoff, fails definitively, and leaves a negative entry.
	b.e.At(6*sim.Millisecond, func() {
		sendOne(b, 4, func(ok bool) {
			if ok {
				t.Error("send beyond the staleness bound succeeded while partitioned")
			}
		})
	})
	b.e.RunUntil(7 * sim.Millisecond)
	if got := b.client.TxResolveDrops.Value(); got != 1 {
		t.Fatalf("resolve drops = %d, want 1", got)
	}
	if got := b.client.KVRetries.Value(); got == 0 {
		t.Fatal("partitioned miss never retried")
	}
	b.e.At(7*sim.Millisecond, func() { sendOne(b, 5, nil) })
	b.e.RunUntil(8 * sim.Millisecond)
	if got := b.client.NegCacheHits.Value(); got != 1 {
		t.Fatalf("negative-cache hits = %d, want 1", got)
	}

	// Heal: partition lifts, caches reconcile, resolution is real again.
	b.e.At(8*sim.Millisecond, func() {
		b.n.KV.SetPartitioned(b.client.IP, false)
		b.client.ReconcileKV()
	})
	b.e.At(8*sim.Millisecond+10*sim.Microsecond, func() {
		sendOne(b, 6, func(ok bool) {
			if !ok {
				t.Error("send after heal failed to resolve")
			}
		})
	})
	b.e.RunUntil(10 * sim.Millisecond)
	// Exactly the four transmittable sends delivered — no duplicates.
	if got := sock.Delivered.Value(); got != 4 {
		t.Fatalf("delivered %d, want 4", got)
	}
}

// nullFault is a LookupFault that neither delays nor fails: it forces
// the degraded per-packet resolution path (where the negative cache
// lives) without perturbing timing.
type nullFault struct{}

func (nullFault) Lookup(_, _ proto.IPv4Addr) (sim.Time, bool) { return 0, false }

// TestNegCachePurgedByRemap: a definitive KV miss recorded while a
// container is in transit between hosts (drain window) must die with the
// Put that lands the container — recovery is bounded by the remap
// itself, not by NegCacheTTL.
func TestNegCachePurgedByRemap(t *testing.T) {
	b, spare, twin := newDrainBed(t)
	twinSock := spare.OpenUDP(srvCtrIP, 5001, 2)
	b.n.KV.SetFault(nullFault{})

	// Drain begins: the mapping disappears while the container is in
	// transit.
	b.e.At(0, func() { b.n.KV.Delete(srvCtrIP) })

	// A send during the transit window records the definitive miss...
	b.e.At(10*sim.Microsecond, func() {
		sendOne(b, 1, func(ok bool) {
			if ok {
				t.Error("send during transit window succeeded")
			}
		})
	})
	// ...and a second one must be served from the negative cache.
	b.e.At(20*sim.Microsecond, func() { sendOne(b, 2, nil) })
	b.e.RunUntil(30 * sim.Microsecond)
	if got := b.client.NegCacheHits.Value(); got != 1 {
		t.Fatalf("negative-cache hits = %d, want 1", got)
	}
	if got := b.client.TxResolveDrops.Value(); got != 2 {
		t.Fatalf("resolve drops = %d, want 2", got)
	}

	// The container lands on the spare. The very next send — still deep
	// inside the 2ms NegCacheTTL — must resolve and deliver immediately:
	// the KV version pin invalidates the stale negative entry.
	landAt := 200 * sim.Microsecond
	b.e.At(landAt, func() { b.n.KV.Put(srvCtrIP, twin.Endpoint()) })
	recoverAt := landAt + 10*sim.Microsecond
	if recoverAt >= NegCacheTTL {
		t.Fatalf("test geometry broken: recovery probe at %v not inside TTL %v", recoverAt, NegCacheTTL)
	}
	b.e.At(recoverAt, func() {
		sendOne(b, 3, func(ok bool) {
			if !ok {
				t.Error("send after remap blackholed by stale negative cache")
			}
		})
	})
	b.e.RunUntil(2 * sim.Millisecond)
	if got := twinSock.Delivered.Value(); got != 1 {
		t.Fatalf("twin delivered %d, want 1 (post-remap packet)", got)
	}
	if got := b.client.NegCacheHits.Value(); got != 1 {
		t.Fatalf("negative-cache hits after remap = %d, want 1 (no further hits)", got)
	}
}
