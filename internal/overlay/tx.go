package overlay

import (
	"fmt"

	"falcon/internal/costmodel"
	"falcon/internal/cpu"
	"falcon/internal/ipfrag"
	"falcon/internal/netdev"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/stats"
)

// SendParams describes one message transmission.
type SendParams struct {
	// From is the sending container; nil sends over the host network.
	From    *Container
	SrcPort uint16
	DstIP   proto.IPv4Addr
	DstPort uint16
	// Payload is the message size in bytes.
	Payload int
	// Core is the core the sending task runs on.
	Core int
	// FlowID and Seq instrument delivery-order verification.
	FlowID, Seq uint64
	// Done, if non-nil, reports whether the frame made it onto the wire
	// (false: resolution failure or transmit-queue drop).
	Done func(ok bool)
	// FromSoftirq charges the transmit work in softirq context instead
	// of task context — how the kernel emits TCP ACKs from tcp_v4_rcv.
	FromSoftirq bool
}

// SendUDP transmits one UDP message through the full transmit path in
// task context: container stack → veth → bridge → vxlan_xmit
// encapsulation → pNIC, or the plain host stack for host networking.
func (h *Host) SendUDP(p SendParams) {
	h.sendL4(p, proto.ProtoUDP, nil)
}

// SendTCP transmits one TCP segment with the given header. Payload bytes
// are p.Payload; ports are taken from the header.
func (h *Host) SendTCP(p SendParams, hdr proto.TCPHdr) {
	h.sendL4(p, proto.ProtoTCP, &hdr)
}

// txFlowKey identifies one transmit flow shape: everything that
// determines the frame bytes except the per-packet IP ID and TCP header.
type txFlowKey struct {
	from             *Container
	dstIP            proto.IPv4Addr
	srcPort, dstPort uint16
	ipProto          uint8
	payload          int
}

// txFlowEntry is the cached result of resolving and building one flow's
// frames — the simulation analogue of an ONCache/flow-table entry that
// amortizes the per-packet vxlan_xmit work (FIB/neighbor lookup + header
// construction) across a flow. The inner template carries IP ID 0 (and a
// zero TCP header); each packet copies the template and patches only the
// ID (+ TCP header), which produces byte-identical frames to a from-
// scratch build. Entries revalidate against the KV store's version AND
// the network's configuration generation, so both endpoint moves and
// reconfigurations that never touch the KV (steering flips, topology
// membership) invalidate them; the cache is bypassed entirely while a
// KV fault is installed (the degraded path draws RNG per lookup;
// skipping those draws would change deterministic schedules).
type txFlowEntry struct {
	kvVersion uint64
	gen       uint64
	epoch     uint64   // host cacheEpoch at build (lazy ReconcileKV)
	born      uint64   // host purgeClock at build (lazy PurgeDeadHost)
	builtAt   sim.Time // when the entry was resolved (staleness bound)
	info      EndpointInfo
	sameHost  bool
	hostNet   bool
	hash      uint32
	inner     []byte // inner frame template (IP ID 0, TCP header zero)
	outer     []byte // outer VXLAN header template (cross-host only)
}

// txOp carries one fast-path transmit through its asynchronous charge
// chain. The continuations the chain needs (after the stack steps, after
// vxlan_xmit, after the NIC doorbell) are method values cached at pool
// construction, so a steady-state send costs zero closure allocations —
// the op itself is recycled once the frame is on the wire. The degraded
// path (sendSlow) keeps its closures: it only runs inside KV fault
// windows.
type txOp struct {
	h       *Host
	core    *cpu.Core
	ctx     stats.CPUContext
	p       SendParams
	ipProto uint8
	tcp     *proto.TCPHdr
	s       *skb.SKB
	e       *txFlowEntry
	start   sim.Time // when the app handed us the payload (skb SendTime)

	afterStack func() // cached op.stackDone
	afterVXLAN func() // cached op.vxlanDone
	afterNIC   func() // cached op.nicDone (overlay wire-out)
	afterHost  func() // cached op.hostDone (host-network wire-out)

	next *txOp // host free list
}

func (h *Host) getTxOp() *txOp {
	op := h.txOps
	if op == nil {
		op = new(txOp)
		op.afterStack = op.stackDone
		op.afterVXLAN = op.vxlanDone
		op.afterNIC = op.nicDone
		op.afterHost = op.hostDone
	} else {
		h.txOps = op.next
		op.next = nil
	}
	return op
}

// finish releases the op back to the host's free list and reports the
// outcome. The op is released first: Done may immediately send another
// packet and legitimately reuse the same recycled op.
func (op *txOp) finish(ok bool) {
	h, done := op.h, op.p.Done
	op.h, op.core, op.tcp, op.s, op.e = nil, nil, nil, nil, nil
	op.p = SendParams{}
	op.next = h.txOps
	h.txOps = op
	if done != nil {
		done(ok)
	}
}

// sendL4 is the shared transmit machinery. For TCP, hdr carries the
// prebuilt TCP header (ports in hdr override p's).
func (h *Host) sendL4(p SendParams, ipProto uint8, tcp *proto.TCPHdr) {
	h.TxMsgs.Inc()
	if h.crashed {
		// The host is dead: the (schedule-driven) send is counted and
		// destroyed without charging work — dead silicon runs nothing.
		h.CrashDrops.Inc()
		if p.Done != nil {
			p.Done(false)
		}
		return
	}
	h.txPending++
	core := h.M.Core(p.Core)
	ctx := stats.CtxTask
	if p.FromSoftirq {
		ctx = stats.CtxSoftIRQ
	}
	op := h.getTxOp()
	op.h, op.core, op.ctx, op.p, op.ipProto, op.tcp = h, core, ctx, p, ipProto, tcp
	op.start = h.E.Now()
	// Fixed-size step buffer: appending to a 1-element literal reallocates
	// on every overlay send, and RunChain copies the steps anyway.
	var steps [3]netdev.Step
	steps[0] = netdev.Step{Fn: costmodel.FnTxStack, Bytes: p.Payload}
	n := 1
	if p.From != nil {
		steps[1] = netdev.Step{Fn: costmodel.FnVethXmit}
		steps[2] = netdev.Step{Fn: costmodel.FnBridge}
		n = 3
	}
	h.St.RunChain(core, ctx, steps[:n], op.afterStack)
}

// stackDone runs once the stack/veth/bridge costs are charged and picks
// the healthy or degraded resolution path.
func (op *txOp) stackDone() {
	h := op.h
	if h.crashed {
		// The host died while this message was inside the transmit path:
		// it terminates here, accounted, so Quiesced() can drain.
		h.CrashDrops.Inc()
		h.txPending--
		op.finish(false)
		return
	}
	if h.Net.KV.Fault() != nil {
		core, ctx, p, ipProto, tcp, start := op.core, op.ctx, op.p, op.ipProto, op.tcp, op.start
		op.p.Done = nil // sendSlow owns completion now
		op.finish(false)
		h.sendSlow(core, ctx, p, ipProto, tcp, start)
		return
	}
	if h.Net.KV.Partitioned(h.IP) {
		h.sendPartitioned(op)
		return
	}
	h.sendFast(op)
}

// sendFast is the healthy-path transmit: flow-cached resolution and
// template-built frames in a pooled skb with VXLAN headroom.
func (h *Host) sendFast(op *txOp) {
	e, resolved := h.txFlow(op.p, op.ipProto, op.tcp)
	if !resolved {
		h.TxResolveDrops.Inc()
		h.txPending--
		op.finish(false)
		return
	}
	if e == nil {
		// Resolved but unbuildable (payload exceeds the frame limit).
		h.TxBuildDrops.Inc()
		h.txPending--
		op.finish(false)
		return
	}
	h.transmitEntry(op, e)
}

// transmitEntry builds the frame from a resolved flow-cache entry and
// drives it out — the back half of sendFast, shared with the
// partition-tolerant path (which resolves through stale entries).
func (h *Host) transmitEntry(op *txOp, e *txFlowEntry) {
	core, ctx, p := op.core, op.ctx, op.p
	headroom := 0
	if !e.sameHost && !e.hostNet {
		headroom = proto.OverlayOverhead
	}
	s := h.Arena.NewTx(len(e.inner), headroom)
	if h.Audit != nil {
		s.Audit(h.Audit, "tx:fast")
	}
	h.txPending--
	copy(s.Data, e.inner)
	if op.tcp != nil {
		proto.PutTCP(s.Data[proto.EthLen+proto.IPv4Len:], *op.tcp)
	}
	proto.PatchIPv4ID(s.Data, h.nextIPID())
	s.FlowID = p.FlowID
	s.Seq = p.Seq
	s.SendTime = op.start
	s.Hash = e.hash
	s.HashValid = true
	op.s, op.e = s, e
	if e.hostNet {
		// Host networking: straight out the NIC.
		core.Exec(ctx, costmodel.FnTxNIC, 0, op.afterHost)
		return
	}
	if e.sameHost {
		// Same-host container: the bridge forwards locally; the frame
		// enters the destination's veth backlog without encapsulation.
		s.WireTime = h.E.Now()
		op.finish(h.Rx.InjectLocal(nil, p.Core, s))
		return
	}
	// Cross-host: encapsulate in place (skb_push into the headroom) and
	// transmit.
	core.Exec(ctx, costmodel.FnVXLANXmit, len(s.Data), op.afterVXLAN)
}

// hostDone wires out a host-network frame after the NIC doorbell.
func (op *txOp) hostDone() {
	h := op.h
	op.finish(h.sendWire(op.core, op.ctx, op.s, op.p.DstIP))
}

// vxlanDone encapsulates in place once vxlan_xmit is charged, then
// charges the NIC doorbell.
func (op *txOp) vxlanDone() {
	s, h := op.s, op.h
	s.Push(proto.OverlayOverhead)
	copy(s.Data[:proto.OverlayOverhead], op.e.outer)
	proto.PatchIPv4ID(s.Data, h.nextIPID())
	op.core.Exec(op.ctx, costmodel.FnTxNIC, 0, op.afterNIC)
}

// nicDone wires out an encapsulated frame after the NIC doorbell.
func (op *txOp) nicDone() {
	h := op.h
	op.finish(h.sendWire(op.core, op.ctx, op.s, op.e.info.HostIP))
}

// txCache returns core's TX flow table, creating it on first use. One
// map per simulated core: the sending core owns its table outright, so
// cores never contend on shared cache state.
func (h *Host) txCache(core int) map[txFlowKey]*txFlowEntry {
	t := h.flowCaches[core]
	if t == nil {
		t = make(map[txFlowKey]*txFlowEntry)
		h.flowCaches[core] = t
	}
	return t
}

// txLookup returns the entry under key in core's table if it survives
// lazy eviction: entries invalidated by ReconcileKV (stale epoch) or by
// a PurgeDeadHost declared after they were built are deleted here, on
// touch, instead of by scanning the tables at invalidation time.
// (kvVersion, gen) freshness is deliberately NOT checked — the
// partitioned path serves version-expired entries within its staleness
// bound.
func (h *Host) txLookup(core int, key txFlowKey) (*txFlowEntry, bool) {
	t := h.flowCaches[core]
	if t == nil {
		return nil, false
	}
	e, ok := t[key]
	if !ok {
		return nil, false
	}
	// For host-network entries info.HostIP is the addressed host itself,
	// so one condition covers both shapes the eager purge matched.
	if e.epoch != h.cacheEpoch || h.deadAt[e.info.HostIP] > e.born {
		delete(t, key)
		return nil, false
	}
	return e, true
}

// txEntries counts TX flow-cache entries across every core's table that
// survive lazy eviction (epoch and dead-host purge; version freshness
// is a revalidation concern, not eviction). Test and stats helper —
// physical map sizes include lazily dead entries.
func (h *Host) txEntries() int {
	n := 0
	for _, t := range h.flowCaches {
		for _, e := range t {
			if e.epoch == h.cacheEpoch && h.deadAt[e.info.HostIP] <= e.born {
				n++
			}
		}
	}
	return n
}

// txFlow returns the flow-cache entry for p, building and caching it on
// first use or after a KV mutation. resolved is false when the
// destination cannot be resolved (the caller counts the drop); a nil
// entry with resolved true means the flow is resolvable but unbuildable.
func (h *Host) txFlow(p SendParams, ipProto uint8, tcp *proto.TCPHdr) (e *txFlowEntry, resolved bool) {
	key := txFlowKey{from: p.From, dstIP: p.DstIP, ipProto: ipProto, payload: p.Payload}
	if tcp != nil {
		key.srcPort, key.dstPort = tcp.SrcPort, tcp.DstPort
	} else {
		key.srcPort, key.dstPort = p.SrcPort, p.DstPort
	}
	ver, gen := h.Net.KV.Version(), h.Net.Generation()
	if e, ok := h.txLookup(p.Core, key); ok && e.kvVersion == ver && e.gen == gen {
		return e, true
	}
	e = &txFlowEntry{kvVersion: ver, gen: gen, builtAt: h.E.Now(),
		epoch: h.cacheEpoch, born: h.purgeClock}
	if p.From == nil {
		peer := h.Net.hostByIP(p.DstIP)
		if peer == nil {
			return nil, false
		}
		e.info = EndpointInfo{HostIP: p.DstIP, HostMAC: peer.MAC}
		e.hostNet = true
	} else {
		info, err := h.Net.KV.Get(p.DstIP)
		if err != nil {
			return nil, false
		}
		e.info = info
		e.sameHost = info.HostIP == h.IP
	}
	limit := MaxHostPayload
	if p.From != nil {
		limit = MaxOverlayPayload
	}
	if p.Payload > limit {
		return nil, true
	}
	payload := make([]byte, key.payload)
	srcMAC, srcIP := h.MAC, h.IP
	dstMAC := e.info.HostMAC
	if p.From != nil {
		srcMAC, srcIP = p.From.MAC, p.From.IP
		dstMAC = e.info.ContainerMAC
	}
	if ipProto == proto.ProtoTCP {
		e.inner = proto.BuildTCPFrame(srcMAC, dstMAC, srcIP, p.DstIP, proto.TCPHdr{}, 0, payload)
	} else {
		e.inner = proto.BuildUDPFrame(srcMAC, dstMAC, srcIP, p.DstIP, key.srcPort, key.dstPort, 0, payload)
	}
	e.hash = skb.FlowKey{SrcIP: srcIP, DstIP: p.DstIP,
		SrcPort: key.srcPort, DstPort: key.dstPort, Proto: ipProto}.Hash()
	if !e.sameHost && !e.hostNet {
		entropy := uint16(49152 + (e.hash % 16384))
		e.outer = make([]byte, proto.OverlayOverhead)
		proto.PutEncapHeaders(e.outer, h.MAC, e.info.HostMAC, h.IP, e.info.HostIP,
			entropy, h.Net.VNI, 0, len(e.inner))
	}
	h.txCache(p.Core)[key] = e
	return e, true
}

// sendSlow is the degraded-path transmit, taken while a KV lookup fault
// is installed: per-packet resolution with backoff retries and negative
// caching, frames built from scratch. It deliberately bypasses the flow
// cache in both directions — reads would skip the fault's RNG draws and
// writes would survive past the fault window — so chaos schedules stay
// byte-identical to the pre-cache simulator.
func (h *Host) sendSlow(core *cpu.Core, ctx stats.CPUContext, p SendParams, ipProto uint8, tcp *proto.TCPHdr, start sim.Time) {
	finish := func(ok bool) {
		if p.Done != nil {
			p.Done(ok)
		}
	}
	h.resolve(p, func(info EndpointInfo, ok bool) {
		if !ok {
			h.TxResolveDrops.Inc()
			h.txPending--
			finish(false)
			return
		}
		inner, err := h.buildInner(p, ipProto, tcp, info)
		if err != nil {
			h.TxBuildDrops.Inc()
			h.txPending--
			finish(false)
			return
		}
		s := skb.New(inner)
		if h.Audit != nil {
			s.Audit(h.Audit, "tx:slow")
		}
		h.txPending--
		s.FlowID = p.FlowID
		s.Seq = p.Seq
		s.SendTime = start
		if err := s.SetFlowHash(); err != nil {
			s.Stage("drop:tx-frame")
			s.Free()
			finish(false)
			return
		}
		if p.From == nil {
			// Host networking: straight out the NIC.
			core.Exec(ctx, costmodel.FnTxNIC, 0, func() {
				finish(h.sendWire(core, ctx, s, p.DstIP))
			})
			return
		}
		if info.HostIP == h.IP {
			// Same-host container: the bridge forwards locally; the frame
			// enters the destination's veth backlog without encapsulation.
			s.WireTime = h.E.Now()
			finish(h.Rx.InjectLocal(nil, p.Core, s))
			return
		}
		// Cross-host: encapsulate and transmit.
		core.Exec(ctx, costmodel.FnVXLANXmit, len(inner), func() {
			entropy := uint16(49152 + (s.Hash % 16384))
			outer := proto.Encapsulate(inner, h.MAC, info.HostMAC, h.IP, info.HostIP,
				entropy, h.Net.VNI, h.nextIPID())
			s.SetData(outer)
			core.Exec(ctx, costmodel.FnTxNIC, 0, func() {
				finish(h.sendWire(core, ctx, s, info.HostIP))
			})
		})
	})
}

// KV-resolution resilience parameters: transiently failed lookups retry
// with exponential backoff; definitive misses enter a negative cache so
// a burst toward an unknown IP does not hammer the control plane.
const (
	// kvRetryBase is the first retry's backoff; each further attempt
	// doubles it.
	kvRetryBase = 20 * sim.Microsecond
	// kvMaxRetries bounds resolution attempts per packet.
	kvMaxRetries = 4
	// NegCacheTTL is how long a definitive KV miss suppresses further
	// lookups of the same IP.
	NegCacheTTL = 2 * sim.Millisecond
	// PartitionStaleBound bounds how old a version-expired flow-cache
	// entry a control-plane-partitioned host may keep serving: within
	// the bound the host transmits on the last mapping it saw (counted
	// in StaleServes — the frame may land on a corpse, where it dies
	// accounted); beyond it the host treats the flow as unresolvable and
	// falls into retry/backoff until the partition heals.
	PartitionStaleBound = 5 * sim.Millisecond
)

// sendPartitioned is the split-brain transmit path, taken while this
// host is marked partitioned from the KV control plane. Fresh cache
// entries transmit normally; version-expired entries within
// PartitionStaleBound serve stale; misses cannot consult the KV and
// retry with the same deterministic backoff schedule as the degraded
// path, resolving for real only if the partition heals mid-retry. Cold
// path — closures are acceptable here, as in sendSlow.
func (h *Host) sendPartitioned(op *txOp) {
	p := op.p
	if p.From == nil {
		// Host networking resolves through the local link map, not the
		// KV: the partition does not apply.
		h.sendFast(op)
		return
	}
	key := txFlowKey{from: p.From, dstIP: p.DstIP, ipProto: op.ipProto, payload: p.Payload}
	if op.tcp != nil {
		key.srcPort, key.dstPort = op.tcp.SrcPort, op.tcp.DstPort
	} else {
		key.srcPort, key.dstPort = p.SrcPort, p.DstPort
	}
	ver, gen := h.Net.KV.Version(), h.Net.Generation()
	if e, ok := h.txLookup(p.Core, key); ok {
		fresh := e.kvVersion == ver && e.gen == gen
		if fresh || h.E.Now()-e.builtAt <= PartitionStaleBound {
			if !fresh {
				h.StaleServes.Inc()
			}
			h.transmitEntry(op, e)
			return
		}
		delete(h.flowCaches[p.Core], key)
	}
	core, ctx, ipProto, tcp, start := op.core, op.ctx, op.ipProto, op.tcp, op.start
	op.p.Done = nil // the retry loop owns completion now
	op.finish(false)
	finish := func(ok bool) {
		if p.Done != nil {
			p.Done(ok)
		}
	}
	if ne, ok := h.negCache[p.DstIP]; ok {
		if ne.epoch == h.cacheEpoch && h.E.Now() < ne.until && ne.kvVersion == ver {
			h.NegCacheHits.Inc()
			h.txPending--
			finish(false)
			return
		}
		delete(h.negCache, p.DstIP)
	}
	attempt := 0
	var try func()
	try = func() {
		if h.crashed {
			h.CrashDrops.Inc()
			h.txPending--
			finish(false)
			return
		}
		if !h.Net.KV.Partitioned(h.IP) {
			// Healed mid-retry: resolve for real through the uncached
			// degraded path (the caches were reconciled on heal).
			h.sendSlow(core, ctx, p, ipProto, tcp, start)
			return
		}
		if attempt >= kvMaxRetries {
			h.TxResolveDrops.Inc()
			h.negCache[p.DstIP] = negEntry{
				until:     h.E.Now() + NegCacheTTL,
				kvVersion: h.Net.KV.Version(),
				epoch:     h.cacheEpoch,
			}
			h.txPending--
			finish(false)
			return
		}
		backoff := kvRetryBase << attempt
		attempt++
		h.KVRetries.Inc()
		h.E.After(backoff, try)
	}
	try()
}

// negEntry is one negative-cache record: a definitive KV miss suppresses
// lookups of the same IP until the TTL expires OR the KV store mutates.
// The version pin matters during reconfiguration: a miss recorded while
// a container is in transit between hosts must not outlive the Put that
// lands it on its new host, or the sender would keep blackholing traffic
// for up to a full TTL after the mapping recovered. The epoch pin makes
// ReconcileKV's O(1) bump cover this cache too (heals don't always move
// the KV version).
type negEntry struct {
	until     sim.Time
	kvVersion uint64
	epoch     uint64
}

// resolve produces the EndpointInfo for p's destination and calls cont
// exactly once. On the healthy path it is fully synchronous (cont runs
// inline, zero extra simulation events). With a KV lookup fault
// installed, container resolutions pay the injected latency, retry
// transient failures with exponential backoff, and negative-cache
// definitive misses instead of erroring straight out.
func (h *Host) resolve(p SendParams, cont func(EndpointInfo, bool)) {
	if p.From == nil {
		// Host networking: resolve the peer host's MAC via the link map.
		peer := h.Net.hostByIP(p.DstIP)
		if peer == nil {
			cont(EndpointInfo{}, false)
			return
		}
		cont(EndpointInfo{HostIP: p.DstIP, HostMAC: peer.MAC}, true)
		return
	}
	flt := h.Net.KV.Fault()
	if flt == nil {
		info, err := h.Net.KV.Get(p.DstIP)
		cont(info, err == nil)
		return
	}
	if ne, ok := h.negCache[p.DstIP]; ok {
		if ne.epoch == h.cacheEpoch && h.E.Now() < ne.until && ne.kvVersion == h.Net.KV.Version() {
			h.NegCacheHits.Inc()
			cont(EndpointInfo{}, false)
			return
		}
		delete(h.negCache, p.DstIP)
	}
	attempt := 0
	var try func()
	try = func() {
		delay, fail := flt.Lookup(h.IP, p.DstIP)
		after := func() {
			if fail {
				if attempt >= kvMaxRetries {
					cont(EndpointInfo{}, false)
					return
				}
				backoff := kvRetryBase << attempt
				attempt++
				h.KVRetries.Inc()
				h.E.After(backoff, try)
				return
			}
			info, err := h.Net.KV.Get(p.DstIP)
			if err != nil {
				h.negCache[p.DstIP] = negEntry{
					until:     h.E.Now() + NegCacheTTL,
					kvVersion: h.Net.KV.Version(),
					epoch:     h.cacheEpoch,
				}
				cont(EndpointInfo{}, false)
				return
			}
			cont(info, true)
		}
		if delay > 0 {
			h.E.After(delay, after)
		} else {
			after()
		}
	}
	try()
}

// MaxOverlayPayload is the largest L4 payload a container can send in
// one frame: IPv4's 16-bit total length must also fit the VXLAN
// encapsulation overhead. (The testbed models jumbo/GSO frames rather
// than IP fragmentation, so "64 KB" experiments use payloads under this
// cap; see DESIGN.md.)
const MaxOverlayPayload = 65535 - proto.IPv4Len - proto.UDPLen - proto.OverlayOverhead

// MaxHostPayload is the host-network equivalent.
const MaxHostPayload = 65535 - proto.IPv4Len - proto.UDPLen

// buildInner constructs the L2–L4 frame for an already-resolved
// destination. For container senders the inner MACs come from the KV
// entry; for host networking from the peer host.
func (h *Host) buildInner(p SendParams, ipProto uint8, tcp *proto.TCPHdr, info EndpointInfo) ([]byte, error) {
	limit := MaxHostPayload
	if p.From != nil {
		limit = MaxOverlayPayload
	}
	if p.Payload > limit {
		return nil, fmt.Errorf("overlay: payload %d exceeds frame limit %d", p.Payload, limit)
	}
	payload := make([]byte, p.Payload)
	srcMAC, srcIP := h.MAC, h.IP
	dstMAC := info.HostMAC
	if p.From != nil {
		srcMAC, srcIP = p.From.MAC, p.From.IP
		dstMAC = info.ContainerMAC
	}
	if ipProto == proto.ProtoTCP {
		return proto.BuildTCPFrame(srcMAC, dstMAC, srcIP, p.DstIP, *tcp, h.nextIPID(), payload), nil
	}
	return proto.BuildUDPFrame(srcMAC, dstMAC, srcIP, p.DstIP,
		p.SrcPort, p.DstPort, h.nextIPID(), payload), nil
}

// sendWire puts the frame on the link toward dstHostIP, fragmenting to
// the link MTU when one is configured. Fragments inherit the skb's flow
// identity; they pay per-fragment NIC transmit cost.
func (h *Host) sendWire(core *cpu.Core, ctx stats.CPUContext, s *skb.SKB, dstHostIP proto.IPv4Addr) bool {
	l := h.links[dstHostIP]
	if l == nil {
		s.Stage("drop:tx-route")
		s.Free()
		return false
	}
	if l.MTU <= 0 {
		return l.Send(s)
	}
	parts, err := ipfrag.Fragment(s.Data, l.MTU)
	if err != nil {
		s.Stage("drop:tx-frag")
		s.Free()
		return false
	}
	if len(parts) > 1 {
		// The first fragment's doorbell was already charged; the rest
		// cost one FnTxNIC each.
		cost := h.M.Model.Cost(costmodel.FnTxNIC, 0) * sim.Time(len(parts)-1)
		core.Submit(ctx, costmodel.FnTxNIC, cost, nil)
	}
	ok := true
	for i, part := range parts {
		fs := s
		if i > 0 || len(parts) > 1 {
			fs = skb.New(part)
			if h.Audit != nil {
				fs.Audit(h.Audit, "tx:frag")
			}
			fs.FlowID = s.FlowID
			fs.Seq = s.Seq
			fs.SendTime = s.SendTime
			_ = fs.SetFlowHash()
		}
		if !l.Send(fs) {
			ok = false
		}
	}
	if len(parts) > 1 {
		// Fragment copies are on the wire; the original frame is done.
		s.Stage("tx:fragmented")
		s.Free()
	}
	return ok
}

func (h *Host) nextIPID() uint16 {
	h.txSeq++
	return h.txSeq
}
