package overlay

import (
	"fmt"

	"falcon/internal/costmodel"
	"falcon/internal/cpu"
	"falcon/internal/ipfrag"
	"falcon/internal/netdev"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/stats"
)

// SendParams describes one message transmission.
type SendParams struct {
	// From is the sending container; nil sends over the host network.
	From    *Container
	SrcPort uint16
	DstIP   proto.IPv4Addr
	DstPort uint16
	// Payload is the message size in bytes.
	Payload int
	// Core is the core the sending task runs on.
	Core int
	// FlowID and Seq instrument delivery-order verification.
	FlowID, Seq uint64
	// Done, if non-nil, reports whether the frame made it onto the wire
	// (false: resolution failure or transmit-queue drop).
	Done func(ok bool)
	// FromSoftirq charges the transmit work in softirq context instead
	// of task context — how the kernel emits TCP ACKs from tcp_v4_rcv.
	FromSoftirq bool
}

// SendUDP transmits one UDP message through the full transmit path in
// task context: container stack → veth → bridge → vxlan_xmit
// encapsulation → pNIC, or the plain host stack for host networking.
func (h *Host) SendUDP(p SendParams) {
	h.sendL4(p, proto.ProtoUDP, nil)
}

// SendTCP transmits one TCP segment with the given header. Payload bytes
// are p.Payload; ports are taken from the header.
func (h *Host) SendTCP(p SendParams, hdr proto.TCPHdr) {
	h.sendL4(p, proto.ProtoTCP, &hdr)
}

// sendL4 is the shared transmit machinery. For TCP, hdr carries the
// prebuilt TCP header (ports in hdr override p's).
func (h *Host) sendL4(p SendParams, ipProto uint8, tcp *proto.TCPHdr) {
	core := h.M.Core(p.Core)
	ctx := stats.CtxTask
	if p.FromSoftirq {
		ctx = stats.CtxSoftIRQ
	}
	finish := func(ok bool) {
		if p.Done != nil {
			p.Done(ok)
		}
	}
	steps := []netdev.Step{{Fn: costmodel.FnTxStack, Bytes: p.Payload}}
	if p.From != nil {
		steps = append(steps, netdev.Step{Fn: costmodel.FnVethXmit}, netdev.Step{Fn: costmodel.FnBridge})
	}
	netdev.RunChain(core, ctx, steps, func() {
		h.resolve(p, func(info EndpointInfo, ok bool) {
			if !ok {
				h.TxResolveDrops.Inc()
				finish(false)
				return
			}
			inner, err := h.buildInner(p, ipProto, tcp, info)
			if err != nil {
				finish(false)
				return
			}
			s := skb.New(inner)
			s.FlowID = p.FlowID
			s.Seq = p.Seq
			if err := s.SetFlowHash(); err != nil {
				finish(false)
				return
			}
			if p.From == nil {
				// Host networking: straight out the NIC.
				core.Exec(ctx, costmodel.FnTxNIC, 0, func() {
					finish(h.sendWire(core, ctx, s, p.DstIP))
				})
				return
			}
			if info.HostIP == h.IP {
				// Same-host container: the bridge forwards locally; the frame
				// enters the destination's veth backlog without encapsulation.
				s.WireTime = h.Net.E.Now()
				finish(h.Rx.InjectLocal(nil, p.Core, s))
				return
			}
			// Cross-host: encapsulate and transmit.
			core.Exec(ctx, costmodel.FnVXLANXmit, len(inner), func() {
				entropy := uint16(49152 + (s.Hash % 16384))
				outer := proto.Encapsulate(inner, h.MAC, info.HostMAC, h.IP, info.HostIP,
					entropy, h.Net.VNI, h.nextIPID())
				s.Data = outer
				core.Exec(ctx, costmodel.FnTxNIC, 0, func() {
					finish(h.sendWire(core, ctx, s, info.HostIP))
				})
			})
		})
	})
}

// KV-resolution resilience parameters: transiently failed lookups retry
// with exponential backoff; definitive misses enter a negative cache so
// a burst toward an unknown IP does not hammer the control plane.
const (
	// kvRetryBase is the first retry's backoff; each further attempt
	// doubles it.
	kvRetryBase = 20 * sim.Microsecond
	// kvMaxRetries bounds resolution attempts per packet.
	kvMaxRetries = 4
	// NegCacheTTL is how long a definitive KV miss suppresses further
	// lookups of the same IP.
	NegCacheTTL = 2 * sim.Millisecond
)

// resolve produces the EndpointInfo for p's destination and calls cont
// exactly once. On the healthy path it is fully synchronous (cont runs
// inline, zero extra simulation events). With a KV lookup fault
// installed, container resolutions pay the injected latency, retry
// transient failures with exponential backoff, and negative-cache
// definitive misses instead of erroring straight out.
func (h *Host) resolve(p SendParams, cont func(EndpointInfo, bool)) {
	if p.From == nil {
		// Host networking: resolve the peer host's MAC via the link map.
		peer := h.Net.hostByIP(p.DstIP)
		if peer == nil {
			cont(EndpointInfo{}, false)
			return
		}
		cont(EndpointInfo{HostIP: p.DstIP, HostMAC: peer.MAC}, true)
		return
	}
	flt := h.Net.KV.Fault()
	if flt == nil {
		info, err := h.Net.KV.Get(p.DstIP)
		cont(info, err == nil)
		return
	}
	if exp, ok := h.negCache[p.DstIP]; ok {
		if h.Net.E.Now() < exp {
			h.NegCacheHits.Inc()
			cont(EndpointInfo{}, false)
			return
		}
		delete(h.negCache, p.DstIP)
	}
	attempt := 0
	var try func()
	try = func() {
		delay, fail := flt.Lookup(p.DstIP)
		after := func() {
			if fail {
				if attempt >= kvMaxRetries {
					cont(EndpointInfo{}, false)
					return
				}
				backoff := kvRetryBase << attempt
				attempt++
				h.KVRetries.Inc()
				h.Net.E.After(backoff, try)
				return
			}
			info, err := h.Net.KV.Get(p.DstIP)
			if err != nil {
				h.negCache[p.DstIP] = h.Net.E.Now() + NegCacheTTL
				cont(EndpointInfo{}, false)
				return
			}
			cont(info, true)
		}
		if delay > 0 {
			h.Net.E.After(delay, after)
		} else {
			after()
		}
	}
	try()
}

// MaxOverlayPayload is the largest L4 payload a container can send in
// one frame: IPv4's 16-bit total length must also fit the VXLAN
// encapsulation overhead. (The testbed models jumbo/GSO frames rather
// than IP fragmentation, so "64 KB" experiments use payloads under this
// cap; see DESIGN.md.)
const MaxOverlayPayload = 65535 - proto.IPv4Len - proto.UDPLen - proto.OverlayOverhead

// MaxHostPayload is the host-network equivalent.
const MaxHostPayload = 65535 - proto.IPv4Len - proto.UDPLen

// buildInner constructs the L2–L4 frame for an already-resolved
// destination. For container senders the inner MACs come from the KV
// entry; for host networking from the peer host.
func (h *Host) buildInner(p SendParams, ipProto uint8, tcp *proto.TCPHdr, info EndpointInfo) ([]byte, error) {
	limit := MaxHostPayload
	if p.From != nil {
		limit = MaxOverlayPayload
	}
	if p.Payload > limit {
		return nil, fmt.Errorf("overlay: payload %d exceeds frame limit %d", p.Payload, limit)
	}
	payload := make([]byte, p.Payload)
	srcMAC, srcIP := h.MAC, h.IP
	dstMAC := info.HostMAC
	if p.From != nil {
		srcMAC, srcIP = p.From.MAC, p.From.IP
		dstMAC = info.ContainerMAC
	}
	if ipProto == proto.ProtoTCP {
		return proto.BuildTCPFrame(srcMAC, dstMAC, srcIP, p.DstIP, *tcp, h.nextIPID(), payload), nil
	}
	return proto.BuildUDPFrame(srcMAC, dstMAC, srcIP, p.DstIP,
		p.SrcPort, p.DstPort, h.nextIPID(), payload), nil
}

// sendWire puts the frame on the link toward dstHostIP, fragmenting to
// the link MTU when one is configured. Fragments inherit the skb's flow
// identity; they pay per-fragment NIC transmit cost.
func (h *Host) sendWire(core *cpu.Core, ctx stats.CPUContext, s *skb.SKB, dstHostIP proto.IPv4Addr) bool {
	l := h.links[dstHostIP]
	if l == nil {
		return false
	}
	if l.MTU <= 0 {
		return l.Send(s)
	}
	parts, err := ipfrag.Fragment(s.Data, l.MTU)
	if err != nil {
		return false
	}
	if len(parts) > 1 {
		// The first fragment's doorbell was already charged; the rest
		// cost one FnTxNIC each.
		cost := h.M.Model.Cost(costmodel.FnTxNIC, 0) * sim.Time(len(parts)-1)
		core.Submit(ctx, costmodel.FnTxNIC, cost, nil)
	}
	ok := true
	for i, part := range parts {
		fs := s
		if i > 0 || len(parts) > 1 {
			fs = skb.New(part)
			fs.FlowID = s.FlowID
			fs.Seq = s.Seq
			_ = fs.SetFlowHash()
		}
		if !l.Send(fs) {
			ok = false
		}
	}
	return ok
}

func (h *Host) nextIPID() uint16 {
	h.txSeq++
	return h.txSeq
}
