package overlay

import (
	"fmt"

	"falcon/internal/costmodel"
	"falcon/internal/cpu"
	"falcon/internal/ipfrag"
	"falcon/internal/netdev"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/stats"
)

// SendParams describes one message transmission.
type SendParams struct {
	// From is the sending container; nil sends over the host network.
	From    *Container
	SrcPort uint16
	DstIP   proto.IPv4Addr
	DstPort uint16
	// Payload is the message size in bytes.
	Payload int
	// Core is the core the sending task runs on.
	Core int
	// FlowID and Seq instrument delivery-order verification.
	FlowID, Seq uint64
	// Done, if non-nil, reports whether the frame made it onto the wire
	// (false: resolution failure or transmit-queue drop).
	Done func(ok bool)
	// FromSoftirq charges the transmit work in softirq context instead
	// of task context — how the kernel emits TCP ACKs from tcp_v4_rcv.
	FromSoftirq bool
}

// SendUDP transmits one UDP message through the full transmit path in
// task context: container stack → veth → bridge → vxlan_xmit
// encapsulation → pNIC, or the plain host stack for host networking.
func (h *Host) SendUDP(p SendParams) {
	h.sendL4(p, proto.ProtoUDP, nil)
}

// SendTCP transmits one TCP segment with the given header. Payload bytes
// are p.Payload; ports are taken from the header.
func (h *Host) SendTCP(p SendParams, hdr proto.TCPHdr) {
	h.sendL4(p, proto.ProtoTCP, &hdr)
}

// sendL4 is the shared transmit machinery. For TCP, hdr carries the
// prebuilt TCP header (ports in hdr override p's).
func (h *Host) sendL4(p SendParams, ipProto uint8, tcp *proto.TCPHdr) {
	core := h.M.Core(p.Core)
	ctx := stats.CtxTask
	if p.FromSoftirq {
		ctx = stats.CtxSoftIRQ
	}
	finish := func(ok bool) {
		if p.Done != nil {
			p.Done(ok)
		}
	}
	steps := []netdev.Step{{Fn: costmodel.FnTxStack, Bytes: p.Payload}}
	if p.From != nil {
		steps = append(steps, netdev.Step{Fn: costmodel.FnVethXmit}, netdev.Step{Fn: costmodel.FnBridge})
	}
	netdev.RunChain(core, ctx, steps, func() {
		inner, info, err := h.buildInner(p, ipProto, tcp)
		if err != nil {
			finish(false)
			return
		}
		s := skb.New(inner)
		s.FlowID = p.FlowID
		s.Seq = p.Seq
		if err := s.SetFlowHash(); err != nil {
			finish(false)
			return
		}
		if p.From == nil {
			// Host networking: straight out the NIC.
			core.Exec(ctx, costmodel.FnTxNIC, 0, func() {
				finish(h.sendWire(core, ctx, s, p.DstIP))
			})
			return
		}
		if info.HostIP == h.IP {
			// Same-host container: the bridge forwards locally; the frame
			// enters the destination's veth backlog without encapsulation.
			s.WireTime = h.Net.E.Now()
			finish(h.Rx.InjectLocal(nil, p.Core, s))
			return
		}
		// Cross-host: encapsulate and transmit.
		core.Exec(ctx, costmodel.FnVXLANXmit, len(inner), func() {
			entropy := uint16(49152 + (s.Hash % 16384))
			outer := proto.Encapsulate(inner, h.MAC, info.HostMAC, h.IP, info.HostIP,
				entropy, h.Net.VNI, h.nextIPID())
			s.Data = outer
			core.Exec(ctx, costmodel.FnTxNIC, 0, func() {
				finish(h.sendWire(core, ctx, s, info.HostIP))
			})
		})
	})
}

// MaxOverlayPayload is the largest L4 payload a container can send in
// one frame: IPv4's 16-bit total length must also fit the VXLAN
// encapsulation overhead. (The testbed models jumbo/GSO frames rather
// than IP fragmentation, so "64 KB" experiments use payloads under this
// cap; see DESIGN.md.)
const MaxOverlayPayload = 65535 - proto.IPv4Len - proto.UDPLen - proto.OverlayOverhead

// MaxHostPayload is the host-network equivalent.
const MaxHostPayload = 65535 - proto.IPv4Len - proto.UDPLen

// buildInner constructs the L2–L4 frame and resolves the destination.
// For container senders it also computes the flow hash used as VXLAN
// source-port entropy.
func (h *Host) buildInner(p SendParams, ipProto uint8, tcp *proto.TCPHdr) ([]byte, EndpointInfo, error) {
	limit := MaxHostPayload
	if p.From != nil {
		limit = MaxOverlayPayload
	}
	if p.Payload > limit {
		return nil, EndpointInfo{}, fmt.Errorf("overlay: payload %d exceeds frame limit %d", p.Payload, limit)
	}
	payload := make([]byte, p.Payload)
	if p.From != nil {
		info, err := h.Net.KV.Get(p.DstIP)
		if err != nil {
			return nil, EndpointInfo{}, err
		}
		var frame []byte
		if ipProto == proto.ProtoTCP {
			frame = proto.BuildTCPFrame(p.From.MAC, info.ContainerMAC, p.From.IP, p.DstIP,
				*tcp, h.nextIPID(), payload)
		} else {
			frame = proto.BuildUDPFrame(p.From.MAC, info.ContainerMAC, p.From.IP, p.DstIP,
				p.SrcPort, p.DstPort, h.nextIPID(), payload)
		}
		return frame, info, nil
	}
	// Host networking: resolve the peer host's MAC through the link map.
	peer := h.Net.hostByIP(p.DstIP)
	if peer == nil {
		return nil, EndpointInfo{}, errNoRoute(p.DstIP)
	}
	var frame []byte
	if ipProto == proto.ProtoTCP {
		frame = proto.BuildTCPFrame(h.MAC, peer.MAC, h.IP, p.DstIP, *tcp, h.nextIPID(), payload)
	} else {
		frame = proto.BuildUDPFrame(h.MAC, peer.MAC, h.IP, p.DstIP,
			p.SrcPort, p.DstPort, h.nextIPID(), payload)
	}
	return frame, EndpointInfo{HostIP: p.DstIP, HostMAC: peer.MAC}, nil
}

// sendWire puts the frame on the link toward dstHostIP, fragmenting to
// the link MTU when one is configured. Fragments inherit the skb's flow
// identity; they pay per-fragment NIC transmit cost.
func (h *Host) sendWire(core *cpu.Core, ctx stats.CPUContext, s *skb.SKB, dstHostIP proto.IPv4Addr) bool {
	l := h.links[dstHostIP]
	if l == nil {
		return false
	}
	if l.MTU <= 0 {
		return l.Send(s)
	}
	parts, err := ipfrag.Fragment(s.Data, l.MTU)
	if err != nil {
		return false
	}
	if len(parts) > 1 {
		// The first fragment's doorbell was already charged; the rest
		// cost one FnTxNIC each.
		cost := h.M.Model.Cost(costmodel.FnTxNIC, 0) * sim.Time(len(parts)-1)
		core.Submit(ctx, costmodel.FnTxNIC, cost, nil)
	}
	ok := true
	for i, part := range parts {
		fs := s
		if i > 0 || len(parts) > 1 {
			fs = skb.New(part)
			fs.FlowID = s.FlowID
			fs.Seq = s.Seq
			_ = fs.SetFlowHash()
		}
		if !l.Send(fs) {
			ok = false
		}
	}
	return ok
}

func (h *Host) nextIPID() uint16 {
	h.txSeq++
	return h.txSeq
}

type errNoRoute proto.IPv4Addr

func (e errNoRoute) Error() string {
	return "overlay: no route to host " + proto.IPv4Addr(e).String()
}
