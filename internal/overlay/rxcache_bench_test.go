package overlay

import (
	"testing"

	"falcon/internal/devices"
	"falcon/internal/proto"
	"falcon/internal/skb"
)

// benchRxBed builds a cache-enabled bed plus a hand-crafted VXLAN frame
// addressed to the server's container — the exact frame shape the RX
// probe sees at the l3 branch — so the fast-path data structure can be
// exercised without driving the whole simulation per operation.
func benchRxBed(tb testing.TB) (*bed, *rxCache, *skb.SKB) {
	b := newBed(tb, "", 100*devices.Gbps)
	b.server.EnableRxCache()
	inner := proto.BuildUDPFrame(b.cliCtr.MAC, b.srvCtr.MAC, cliCtrIP, srvCtrIP,
		7000, 5001, 1, make([]byte, 64))
	outer := proto.Encapsulate(inner, b.client.MAC, b.server.MAC, clientIP, serverIP,
		40000, DefaultVNI, 1)
	return b, b.server.rxCache, skb.New(outer)
}

// TestCacheRxHitPathZeroAlloc pins the fast path's allocation budget:
// a warm-hit probe — the per-packet cost the cache adds to every cached
// delivery — must allocate nothing.
func TestCacheRxHitPathZeroAlloc(t *testing.T) {
	_, rc, s := benchRxBed(t)
	rc.Learn(1, s)
	if _, ok := rc.Probe(1, s); !ok {
		t.Fatal("warm probe missed")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := rc.Probe(1, s); !ok {
			t.Fatal("warm probe missed mid-run")
		}
	})
	if allocs != 0 {
		t.Fatalf("hit path allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkRxFastPath measures the warm-hit probe: one map lookup, the
// freshness checks, and the cached cost computation.
func BenchmarkRxFastPath(b *testing.B) {
	_, rc, s := benchRxBed(b)
	rc.Learn(1, s)
	if _, ok := rc.Probe(1, s); !ok {
		b.Fatal("warm probe missed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.Probe(1, s)
	}
}

// BenchmarkRxMiss measures the full miss cycle a cold or invalidated
// flow pays: a probe that lazily evicts the epoch-stale entry, plus the
// relearn that repopulates it. ReconcileKV between iterations is the
// O(1) generation-lazy invalidation itself, so this also benchmarks the
// eviction discipline end to end.
func BenchmarkRxMiss(b *testing.B) {
	bd, rc, s := benchRxBed(b)
	rc.Learn(1, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd.server.ReconcileKV()
		if _, ok := rc.Probe(1, s); ok {
			b.Fatal("probe hit an epoch-stale entry")
		}
		rc.Learn(1, s)
	}
}
