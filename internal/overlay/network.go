package overlay

import (
	"falcon/internal/devices"
	"falcon/internal/proto"
	"falcon/internal/sim"
)

// DefaultVNI is the VXLAN network identifier overlays are built with.
const DefaultVNI = 42

// Network is a set of hosts joined by point-to-point links and one
// overlay (VXLAN) segment backed by a shared KV store.
type Network struct {
	E   *sim.Engine
	KV  *KVStore
	VNI uint32

	hosts []*Host
}

// NewNetwork returns an empty network on engine e.
func NewNetwork(e *sim.Engine) *Network {
	return &Network{E: e, KV: NewKVStore(), VNI: DefaultVNI}
}

// AddHost creates a host from cfg.
func (n *Network) AddHost(cfg HostConfig) *Host {
	h := newHost(n, cfg, uint64(len(n.hosts)+1))
	n.hosts = append(n.hosts, h)
	return h
}

// Hosts returns all hosts.
func (n *Network) Hosts() []*Host { return n.hosts }

// Connect joins two hosts with a full-duplex link of the given rate and
// one-way delay (two unidirectional links delivering into each peer's
// NIC).
func (n *Network) Connect(a, b *Host, rateBitsPerSec float64, delay sim.Time) {
	ab := devices.NewLink(n.E, rateBitsPerSec, delay)
	ab.Deliver = b.NIC.Arrive
	ba := devices.NewLink(n.E, rateBitsPerSec, delay)
	ba.Deliver = a.NIC.Arrive
	a.links[b.IP] = ab
	b.links[a.IP] = ba
}

// LinkTo returns the outgoing link from h toward the host owning dstIP.
func (h *Host) LinkTo(dstIP proto.IPv4Addr) *devices.Link {
	return h.links[dstIP]
}

// hostByIP finds a host by its public IP.
func (n *Network) hostByIP(ip proto.IPv4Addr) *Host {
	for _, h := range n.hosts {
		if h.IP == ip {
			return h
		}
	}
	return nil
}
