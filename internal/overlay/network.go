package overlay

import (
	"falcon/internal/devices"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/skb"
)

// DefaultVNI is the VXLAN network identifier overlays are built with.
const DefaultVNI = 42

// Network is a set of hosts joined by point-to-point links and one
// overlay (VXLAN) segment backed by a shared KV store. E is the whole
// simulation — a serial *sim.Engine or a multi-shard *sim.Cluster; each
// host additionally pins to one shard engine (Host.E) chosen by
// HostConfig.Shard, and every object a host owns schedules there.
type Network struct {
	E   sim.Sim
	KV  *KVStore
	VNI uint32

	hosts []*Host

	// gen is the configuration generation: 0 is the construction-time
	// configuration, and every reconfiguration action applied by
	// internal/reconfig bumps it. TX flow-cache entries revalidate
	// against it (alongside the KV version), so a generation swap
	// invalidates every cached resolution even when the change did not
	// touch the KV store (steering flips, topology membership).
	gen uint64
}

// Generation returns the current configuration generation.
func (n *Network) Generation() uint64 { return n.gen }

// BumpGeneration advances the configuration generation. Call from
// control context only (a coordinator event on a cluster, with every
// logical process parked): hosts read the generation on their transmit
// paths.
func (n *Network) BumpGeneration() uint64 {
	n.gen++
	return n.gen
}

// NewNetwork returns an empty network on simulation e.
func NewNetwork(e sim.Sim) *Network {
	return &Network{E: e, KV: NewKVStore(), VNI: DefaultVNI}
}

// AddHost creates a host from cfg.
func (n *Network) AddHost(cfg HostConfig) *Host {
	h := newHost(n, cfg, uint64(len(n.hosts)+1))
	n.hosts = append(n.hosts, h)
	return h
}

// Hosts returns all hosts.
func (n *Network) Hosts() []*Host { return n.hosts }

// Connect joins two hosts with a full-duplex link of the given rate and
// one-way delay (two unidirectional links delivering into each peer's
// NIC). Each unidirectional link lives on its sending host's shard
// engine; when the hosts sit on different shards the link becomes a
// cross-shard boundary — frames travel through a cluster PostSource and
// the link's minimum latency lower-bounds the cluster's lookahead.
func (n *Network) Connect(a, b *Host, rateBitsPerSec float64, delay sim.Time) {
	ab := devices.NewLink(a.E, rateBitsPerSec, delay)
	ba := devices.NewLink(b.E, rateBitsPerSec, delay)
	if a.E == b.E {
		ab.Deliver = b.NIC.Arrive
		ba.Deliver = a.NIC.Arrive
	} else {
		cl := n.E.(*sim.Cluster)
		abs, bas := cl.Source(a.E, b.E), cl.Source(b.E, a.E)
		ab.Remote = newRemoteEgress(abs, b)
		ba.Remote = newRemoteEgress(bas, a)
		// Per-source bounds: each direction declares its own link's
		// minimum latency, so adaptive horizons can stretch windows past
		// the slowest pair instead of clipping everything to the global
		// minimum (PostSource.Bound also feeds the global floor).
		abs.Bound(ab.Lookahead())
		bas.Bound(ba.Lookahead())
	}
	a.links[b.IP] = ab
	b.links[a.IP] = ba
}

// remoteEgress adapts a cluster PostSource to devices.RemoteEgress: the
// far end of a cross-shard link. Delivery runs on the receiving shard at
// the frame's wire-arrival time; the prep step — run at the barrier,
// with both shards parked — migrates the SKB's audit record to the
// receiving host's ledger and rehomes its pool affinity to the receiving
// host's arena (the frame will be freed on that shard). The closures are
// built once so the per-frame send path does not allocate.
type remoteEgress struct {
	out     *sim.PostSource
	dst     *Host
	prep    func(any)
	deliver func(any)
}

func newRemoteEgress(out *sim.PostSource, dst *Host) *remoteEgress {
	r := &remoteEgress{out: out, dst: dst}
	r.prep = func(v any) {
		s := v.(*skb.SKB)
		s.AuditHandoff(dst.Audit)
		s.Rehome(dst.Arena)
	}
	r.deliver = func(v any) { dst.NIC.Arrive(v.(*skb.SKB)) }
	return r
}

// Send implements devices.RemoteEgress.
func (r *remoteEgress) Send(s *skb.SKB, arrival sim.Time) {
	r.out.Post(arrival, r.prep, r.deliver, s)
}

// LinkTo returns the outgoing link from h toward the host owning dstIP.
func (h *Host) LinkTo(dstIP proto.IPv4Addr) *devices.Link {
	return h.links[dstIP]
}

// EachLink yields every outgoing link of h with its peer host IP.
// Iteration order is unspecified (map order), so callers must only
// aggregate order-insensitive facts: counter sums, emptiness checks.
func (h *Host) EachLink(yield func(peer proto.IPv4Addr, l *devices.Link)) {
	for ip, l := range h.links {
		yield(ip, l)
	}
}

// HostByIP finds a host by its public IP (nil when absent).
func (n *Network) HostByIP(ip proto.IPv4Addr) *Host { return n.hostByIP(ip) }

// hostByIP finds a host by its public IP.
func (n *Network) hostByIP(ip proto.IPv4Addr) *Host {
	for _, h := range n.hosts {
		if h.IP == ip {
			return h
		}
	}
	return nil
}
