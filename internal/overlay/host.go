package overlay

import (
	"fmt"

	falconcore "falcon/internal/core"
	"falcon/internal/costmodel"
	"falcon/internal/cpu"
	"falcon/internal/devices"
	"falcon/internal/netdev"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/socket"
	"falcon/internal/stats"
	"falcon/internal/steering"
)

// SockKey identifies an L4 delivery target.
type SockKey struct {
	IP    proto.IPv4Addr
	Port  uint16
	Proto uint8
}

// L4Handler terminates the receive path for one bound endpoint. It runs
// in softirq context and must call done exactly once. The L4 protocol
// cost (udp_rcv / tcp_v4_rcv) has already been charged. f points into
// s's parsed-header cache and is valid only until s is freed or its
// data replaced.
type L4Handler func(c *cpu.Core, s *skb.SKB, f *proto.Frame, done func())

// HostConfig sizes a host.
type HostConfig struct {
	Name string
	IP   proto.IPv4Addr
	// Cores is the machine size (the paper's servers: 20 physical cores).
	Cores int
	// RSSCores are the cores NIC queues are affined to.
	RSSCores []int
	// RPSCores is the rps_cpus mask (empty disables RPS).
	RPSCores []int
	// GRO enables pNIC GRO; InnerGRO enables gro_cells GRO on decap.
	GRO, InnerGRO bool
	// Kernel selects the cost profile ("linux-4.19" default, "linux-5.4").
	Kernel string
	// Shard selects which PDES shard (logical process) the host lives
	// on when the network runs on a sim.Cluster; every event the host's
	// machine, stack and devices schedule runs on that shard's engine.
	// Ignored (everything is shard 0) on a serial engine.
	Shard int
	// TickPeriod is the timer tick (default 1ms).
	TickPeriod sim.Time
}

// Host is one simulated server: machine, network stack, NIC, bridge and
// any number of containers.
type Host struct {
	Net *Network
	// E is the shard engine the host lives on: Net.E.Shard(cfg.Shard).
	// All host-owned scheduling goes through it; on a serial run it is
	// simply the one engine.
	E    *sim.Engine
	Name string
	IP   proto.IPv4Addr
	MAC  proto.MAC

	M  *cpu.Machine
	St *netdev.Stack
	Rx *devices.RxPath

	// Arena is the host's shard-local SKB/buffer allocator: the entire
	// host datapath runs on one logical process, so frames recycle
	// through single-owner free lists instead of the global sync.Pools
	// (whose atomics bounce cache lines between PDES worker goroutines).
	// Cross-shard frames rehome at the cluster barrier (see
	// remoteEgress.prep).
	Arena *skb.Arena

	NIC    *devices.PNIC
	Bridge *devices.Bridge

	Falcon *falconcore.Falcon

	containers []*Container
	handlers   map[SockKey]L4Handler
	links      map[proto.IPv4Addr]*devices.Link // by peer host IP
	negCache   map[proto.IPv4Addr]negEntry      // KV miss suppression
	// flowCaches is the TX fast-path flow table, one map per simulated
	// core (index = sending core ID): each core owns its table outright,
	// State-Compute-Replication style, so the modeled caches are
	// lock-free and share nothing.
	flowCaches []map[txFlowKey]*txFlowEntry
	// rxCache, when enabled, is the per-core RX decap fast path
	// (rxcache.go); nil means every arriving frame pays the full walk.
	rxCache *rxCache

	// Generation-lazy cache eviction state. Invalidation events bump
	// counters in O(1); entries record the counter values they were built
	// under and are evicted on their next lookup instead of by scanning
	// every per-core table at event time (a reconfig bump used to pause
	// proportional to cache size).
	//
	// cacheEpoch versions whole-cache invalidations (ReconcileKV: crash,
	// reboot, partition heal). purgeClock orders PurgeDeadHost calls;
	// deadAt records, per purged host IP, the clock at declare time — an
	// entry routing through (TX) or sourced from (RX) that host is dead
	// iff it was built before the purge (born < deadAt).
	cacheEpoch uint64
	purgeClock uint64
	deadAt     map[proto.IPv4Addr]uint64

	// L4Drops counts packets with no bound endpoint.
	L4Drops stats.Counter

	// TxMsgs counts entries into the L4 transmit path (SendUDP/SendTCP
	// calls), the injected side of the transmit conservation balance.
	TxMsgs stats.Counter
	// TxResolveDrops counts transmissions abandoned because the
	// destination could not be resolved (KV miss / exhausted retries /
	// no route) — previously a silent error discard in the tx path.
	TxResolveDrops stats.Counter
	// TxBuildDrops counts transmissions abandoned after resolution
	// because no frame could be built (payload over the frame limit) —
	// previously a silent discard in the tx path.
	TxBuildDrops stats.Counter
	// KVRetries counts backoff retries of transiently failed KV
	// lookups; NegCacheHits counts sends suppressed by the negative
	// cache.
	KVRetries    stats.Counter
	NegCacheHits stats.Counter
	// CrashDrops counts packets destroyed by a host crash: frames purged
	// from rings/backlogs/GRO holds at the instant of death plus
	// everything blackholed at the NIC, stack, L4 and TX boundaries
	// while the host is down. It is the crash bucket of the drop census,
	// so conservation balances close across a crash window.
	CrashDrops stats.Counter
	// StaleServes counts transmissions a control-plane-partitioned host
	// served from a stale (version-expired but within the staleness
	// bound) TX flow-cache entry.
	StaleServes stats.Counter
	// RxCacheHits counts arriving VXLAN frames delivered over the RX
	// decap fast path from a fresh entry; RxCacheMisses counts frames
	// that probed the cache and fell through to the full walk;
	// RxCacheStale counts fast-path deliveries a partitioned host served
	// from a version-expired entry within the staleness bound.
	RxCacheHits   stats.Counter
	RxCacheMisses stats.Counter
	RxCacheStale  stats.Counter

	// Audit, when non-nil, attaches every SKB the transmit path creates
	// to the run's lifecycle ledger (see internal/audit).
	Audit skb.Auditor
	// OnSocketOpen observes every OpenUDP socket; the audit harness
	// uses it to register receive queues and delivery counters.
	OnSocketOpen func(port uint16, sk *socket.Socket)
	// OnReset fires when ResetMeasurement clears counters, so external
	// observers comparing counter deltas can re-base.
	OnReset func()

	// txPending gauges messages inside sendL4 that have neither
	// produced an SKB nor been counted as a drop yet (asynchronous KV
	// resolution keeps a message in flight across sim events).
	txPending int

	txSeq uint16 // IPv4 identification counter

	// crashed marks a dead host: NIC and stack are down, arrivals and
	// sends blackhole into CrashDrops, and the failure detector will
	// detach the LP once the datapath quiesces. Set by Crash, cleared by
	// Reboot — both coordinator-context only.
	crashed bool

	// Per-host continuation free lists. These ops used to live in
	// package-level sync.Pools; every op's lifetime is confined to its
	// host's logical process, so plain single-owner lists recycle them
	// without atomics or cross-shard cache traffic.
	txOps   *txOp
	l4Ops   *l4Op
	sockOps *sockDeliverOp
}

// TxPending reports messages currently inside the transmit path (not
// yet an SKB, not yet a counted drop).
func (h *Host) TxPending() uint64 { return uint64(h.txPending) }

// Container is a container attached to its host's bridge via a veth pair,
// with a private IP on the overlay network.
type Container struct {
	Host *Host
	ID   int
	Name string
	IP   proto.IPv4Addr
	MAC  proto.MAC

	VethBr *devices.Veth // bridge-side end
	VethCt *devices.Veth // container-side end
}

func newHost(n *Network, cfg HostConfig, hostID uint64) *Host {
	if cfg.Cores <= 0 {
		cfg.Cores = 8
	}
	if cfg.TickPeriod == 0 {
		cfg.TickPeriod = sim.Millisecond
	}
	if len(cfg.RSSCores) == 0 {
		cfg.RSSCores = []int{0}
	}
	model := costmodel.ByName(cfg.Kernel)
	e := n.E.Shard(cfg.Shard)
	m := cpu.NewMachine(e, model, cfg.Cores, cfg.TickPeriod)
	st := netdev.NewStack(m)
	h := &Host{
		Net:        n,
		E:          e,
		Name:       cfg.Name,
		IP:         cfg.IP,
		MAC:        proto.MACFromUint64(0xA0000 + hostID),
		M:          m,
		St:         st,
		Arena:      skb.NewArena(),
		handlers:   make(map[SockKey]L4Handler),
		links:      make(map[proto.IPv4Addr]*devices.Link),
		negCache:   make(map[proto.IPv4Addr]negEntry),
		flowCaches: make([]map[txFlowKey]*txFlowEntry, cfg.Cores),
		deadAt:     make(map[proto.IPv4Addr]uint64),
	}
	h.NIC = devices.NewPNIC(st, cfg.Name+"-eth0", steering.RSS{QueueCores: cfg.RSSCores}, cfg.GRO)
	vxlanIf := st.RegisterDevice(cfg.Name + "-vxlan0")
	bridgeIf := st.RegisterDevice(cfg.Name + "-br0")
	h.Bridge = devices.NewBridge(cfg.Name+"-br0", bridgeIf)
	h.Rx = &devices.RxPath{
		St:        st,
		NIC:       h.NIC,
		RPS:       steering.RPS{CPUs: cfg.RPSCores, Enabled: len(cfg.RPSCores) > 0},
		VXLANIf:   vxlanIf,
		Bridge:    h.Bridge,
		VethByMAC: make(map[proto.MAC]*devices.Veth),
		InnerGRO:  cfg.InnerGRO,
		DeliverL4: h.deliverL4,
	}
	h.Rx.Install()
	m.StartTicker()
	return h
}

// EnableFalcon attaches a Falcon instance to the host's receive path.
func (h *Host) EnableFalcon(cfg falconcore.Config) *falconcore.Falcon {
	h.Falcon = falconcore.New(h.M, cfg)
	h.Rx.Falcon = h.Falcon
	return h.Falcon
}

// DisableFalcon restores the vanilla path.
func (h *Host) DisableFalcon() {
	h.Falcon = nil
	h.Rx.Falcon = nil
}

// AddContainer creates a container with the given private IP, wires its
// veth pair into the bridge, and publishes it in the overlay KV store.
func (h *Host) AddContainer(name string, ip proto.IPv4Addr) *Container {
	id := len(h.containers) + 1
	mac := proto.MACFromUint64(uint64(ip))
	brIf := h.St.RegisterDevice(fmt.Sprintf("%s-veth%d", h.Name, id))
	ctIf := h.St.RegisterDevice(fmt.Sprintf("%s-c%d-eth0", h.Name, id))
	vbr, vct := devices.NewVethPair(
		fmt.Sprintf("%s-veth%d", h.Name, id),
		fmt.Sprintf("%s-c%d-eth0", h.Name, id),
		brIf, ctIf, mac, id)
	c := &Container{Host: h, ID: id, Name: name, IP: ip, MAC: mac, VethBr: vbr, VethCt: vct}
	port := h.Bridge.AddPort(vbr.Name)
	h.Bridge.Learn(mac, port)
	h.Rx.VethByMAC[mac] = vbr
	h.containers = append(h.containers, c)
	h.Net.KV.Put(ip, EndpointInfo{ContainerMAC: mac, HostIP: h.IP, HostMAC: h.MAC})
	return c
}

// AddStandbyContainer creates a container exactly like AddContainer but
// without publishing it in the overlay KV store: a migration target that
// stays dark until a reconfiguration remaps its IP onto this host. The
// container MAC derives from the IP, so the standby's endpoint identity
// matches the primary's — a migrated container keeps its MAC.
func (h *Host) AddStandbyContainer(name string, ip proto.IPv4Addr) *Container {
	id := len(h.containers) + 1
	mac := proto.MACFromUint64(uint64(ip))
	brIf := h.St.RegisterDevice(fmt.Sprintf("%s-veth%d", h.Name, id))
	ctIf := h.St.RegisterDevice(fmt.Sprintf("%s-c%d-eth0", h.Name, id))
	vbr, vct := devices.NewVethPair(
		fmt.Sprintf("%s-veth%d", h.Name, id),
		fmt.Sprintf("%s-c%d-eth0", h.Name, id),
		brIf, ctIf, mac, id)
	c := &Container{Host: h, ID: id, Name: name, IP: ip, MAC: mac, VethBr: vbr, VethCt: vct}
	port := h.Bridge.AddPort(vbr.Name)
	h.Bridge.Learn(mac, port)
	h.Rx.VethByMAC[mac] = vbr
	h.containers = append(h.containers, c)
	return c
}

// Endpoint returns the KV mapping that routes overlay traffic for this
// container to its current host.
func (c *Container) Endpoint() EndpointInfo {
	return EndpointInfo{ContainerMAC: c.MAC, HostIP: c.Host.IP, HostMAC: c.Host.MAC}
}

// Containers returns the host's containers.
func (h *Host) Containers() []*Container { return h.containers }

// ContainerByIP finds a container on this host by overlay IP (nil when
// absent).
func (h *Host) ContainerByIP(ip proto.IPv4Addr) *Container {
	for _, c := range h.containers {
		if c.IP == ip {
			return c
		}
	}
	return nil
}

// SetKernel swaps the host's cost profile to the named kernel — the
// simulation analogue of a reboot into a new kernel, applied instantly
// once the host is quiesced. Costs charged before the swap keep their
// old values; only work submitted afterwards prices at the new profile.
func (h *Host) SetKernel(name string) {
	h.M.Model = costmodel.ByName(name)
}

// Crashed reports whether the host is currently dead.
func (h *Host) Crashed() bool { return h.crashed }

// Crash fails the host instantly: the NIC and stack go down (arrivals
// blackhole into CrashDrops), every queue-resident packet — rx rings,
// outer-GRO holds, per-CPU backlogs, inner-GRO holds — is purged
// accounted, and the host's cached KV resolutions die with it.
// In-execution continuation chains are deliberately left running: they
// terminate, accounted, at the next stage boundary's down check, which
// is what lets Quiesced() become true so the failure detector can
// detach the LP. Coordinator context only (it touches one shard's
// state while all shards are parked).
func (h *Host) Crash() {
	if h.crashed {
		return
	}
	h.crashed = true
	h.NIC.SetDown(true, &h.CrashDrops)
	h.St.SetDown(true, &h.CrashDrops)
	h.NIC.PurgeRings(&h.CrashDrops)
	h.St.PurgeBacklogs(&h.CrashDrops)
	h.Rx.PurgeHeld(&h.CrashDrops)
	h.ReconcileKV()
}

// Reboot brings a crashed host back: NIC and stack come up, caches
// start cold (ReconcileKV — the rebooted kernel holds no resolutions,
// so reconciliation cannot double-deliver), and the machine ticker
// restarts so the failure detector sees heartbeats again and can
// re-admit the host through the reattach path. Coordinator context
// only.
func (h *Host) Reboot() {
	if !h.crashed {
		return
	}
	h.crashed = false
	h.NIC.SetDown(false, nil)
	h.St.SetDown(false, nil)
	h.ReconcileKV()
	h.M.StartTicker()
}

// ReconcileKV drops every cached KV resolution — the whole TX flow
// cache, RX fast-path cache and negative cache. Called on crash (the
// dead kernel's state is gone), on reboot (cold caches), and when a
// control-plane partition heals (stale mappings must not outlive
// reconciliation).
//
// The drop is generation-lazy: bumping cacheEpoch invalidates every
// entry in O(1), and lookups evict mismatched entries as they touch
// them. Eviction never charged simulated time, so the lazy form is
// observably identical to the eager scans it replaced — without the
// event-time pause proportional to cache size.
func (h *Host) ReconcileKV() {
	h.cacheEpoch++
}

// PurgeDeadHost evicts every cached resolution that routes through a
// host just declared dead — TX flow-cache entries resolving to its
// endpoint (or host-network entries addressed to it), RX fast-path
// entries for flows arriving from it, plus negative-cache records for
// the container IPs it carried. The failure detector calls this on
// every surviving host the moment it declares a death, so senders stop
// steering packets at a corpse for however long the current KV version
// would otherwise have validated the entries.
//
// Like ReconcileKV, eviction is generation-lazy: the purge clock
// advances and the dead host's declare time is recorded; entries built
// before it (born < deadAt) die on their next lookup. The negative
// cache is still purged eagerly — that loop is O(containers carried by
// the dead host), not O(cache).
func (h *Host) PurgeDeadHost(hostIP proto.IPv4Addr, containerIPs []proto.IPv4Addr) {
	h.purgeClock++
	h.deadAt[hostIP] = h.purgeClock
	for _, ip := range containerIPs {
		delete(h.negCache, ip)
	}
}

// Quiesced reports whether the host's datapath is empty: no message
// inside the transmit path, no held inner-GRO segments, and every core
// idle with empty backlog and NIC ring. Wire occupancy (frames still in
// flight on links toward this host) is the caller's responsibility —
// links belong to their sending host.
func (h *Host) Quiesced() bool {
	if h.txPending != 0 || h.Rx.InnerGROHeld() != 0 {
		return false
	}
	for c := 0; c < h.M.NumCores(); c++ {
		if !h.M.Core(c).Idle() {
			return false
		}
		local, remote, _, _ := h.St.BacklogState(c)
		ring, _, _ := h.NIC.QueueState(c)
		if local+remote+ring != 0 {
			return false
		}
	}
	return true
}

// Bind registers an L4 handler for (ip, port, proto).
func (h *Host) Bind(key SockKey, fn L4Handler) {
	h.handlers[key] = fn
}

// Unbind removes a binding.
func (h *Host) Unbind(key SockKey) { delete(h.handlers, key) }

// sockDeliverOp carries one packet across the FnSocketDeliver charge
// into Socket.Deliver without a per-packet closure (recycled through the
// host's free list, like the transmit path's txOp).
type sockDeliverOp struct {
	h    *Host
	sk   *socket.Socket
	c    *cpu.Core
	s    *skb.SKB
	done func()
	run  func() // cached op.deliver
	next *sockDeliverOp
}

func (h *Host) getSockDeliverOp() *sockDeliverOp {
	op := h.sockOps
	if op == nil {
		op = new(sockDeliverOp)
		op.run = op.deliver
	} else {
		h.sockOps = op.next
		op.next = nil
	}
	return op
}

func (op *sockDeliverOp) deliver() {
	h, sk, c, s, done := op.h, op.sk, op.c, op.s, op.done
	op.h, op.sk, op.c, op.s, op.done = nil, nil, nil, nil, nil
	op.next = h.sockOps
	h.sockOps = op
	sk.Deliver(c, s)
	done()
}

// OpenUDP binds a plain receiving socket (the sockperf-server shape) at
// ip:port, consumed by an application thread pinned to appCore.
func (h *Host) OpenUDP(ip proto.IPv4Addr, port uint16, appCore int) *socket.Socket {
	sk := socket.New(h.M, appCore)
	if h.OnSocketOpen != nil {
		h.OnSocketOpen(port, sk)
	}
	h.Bind(SockKey{IP: ip, Port: port, Proto: proto.ProtoUDP},
		func(c *cpu.Core, s *skb.SKB, f *proto.Frame, done func()) {
			op := h.getSockDeliverOp()
			op.h, op.sk, op.c, op.s, op.done = h, sk, c, s, done
			c.Exec(stats.CtxSoftIRQ, costmodel.FnSocketDeliver, 0, op.run)
		})
	return sk
}

// l4Op carries one packet across the L4 receive charge into handler
// dispatch (recycled through the host's free list; the dispatch closure
// was a per-packet allocation).
type l4Op struct {
	h    *Host
	c    *cpu.Core
	s    *skb.SKB
	f    *proto.Frame
	done func()
	run  func() // cached op.dispatch
	next *l4Op
}

func (h *Host) getL4Op() *l4Op {
	op := h.l4Ops
	if op == nil {
		op = new(l4Op)
		op.run = op.dispatch
	} else {
		h.l4Ops = op.next
		op.next = nil
	}
	return op
}

func (op *l4Op) dispatch() {
	h, c, s, f, done := op.h, op.c, op.s, op.f, op.done
	op.h, op.c, op.s, op.f, op.done = nil, nil, nil, nil, nil
	op.next = h.l4Ops
	h.l4Ops = op
	key := SockKey{IP: f.IP.Dst, Port: f.DstPort(), Proto: f.IP.Protocol}
	fn, ok := h.handlers[key]
	if !ok {
		h.L4Drops.Inc()
		s.Stage("drop:l4-unbound")
		s.Free()
		done()
		return
	}
	fn(c, s, f, done)
}

// deliverL4 terminates the receive path: it parses the (inner) frame,
// charges the L4 receive cost, and dispatches to the bound handler.
func (h *Host) deliverL4(c *cpu.Core, s *skb.SKB, done func()) {
	if h.crashed {
		h.CrashDrops.Inc()
		s.Stage("drop:host-crash")
		s.Free()
		done()
		return
	}
	f, err := s.Frame()
	if err != nil {
		h.L4Drops.Inc()
		s.Stage("drop:l4-frame")
		s.Free()
		done()
		return
	}
	var l4 costmodel.Func
	switch f.IP.Protocol {
	case proto.ProtoTCP:
		l4 = costmodel.FnTCPRcv
	default:
		l4 = costmodel.FnUDPRcv
	}
	op := h.getL4Op()
	op.h, op.c, op.s, op.f, op.done = h, c, s, f, done
	c.Exec(stats.CtxSoftIRQ, l4, 0, op.run)
}

// ResetMeasurement clears the host's accounting for a fresh window.
func (h *Host) ResetMeasurement() {
	h.M.ResetMeasurement()
	h.NIC.Drops.Reset()
	h.NIC.HardIRQs.Reset()
	h.St.Drops.Reset()
	h.L4Drops.Reset()
	h.TxResolveDrops.Reset()
	h.TxBuildDrops.Reset()
	h.KVRetries.Reset()
	h.NegCacheHits.Reset()
	h.CrashDrops.Reset()
	h.StaleServes.Reset()
	h.RxCacheHits.Reset()
	h.RxCacheMisses.Reset()
	h.RxCacheStale.Reset()
	if h.OnReset != nil {
		h.OnReset()
	}
}
