package overlay

import (
	"testing"

	falconcore "falcon/internal/core"
	"falcon/internal/devices"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/socket"
	"falcon/internal/stats"
)

var (
	clientIP  = proto.IP4(192, 168, 1, 1)
	serverIP  = proto.IP4(192, 168, 1, 2)
	cliCtrIP  = proto.IP4(10, 32, 0, 1)
	srvCtrIP  = proto.IP4(10, 32, 0, 2)
	srvCtrIP2 = proto.IP4(10, 32, 0, 3)
)

type bed struct {
	e              *sim.Engine
	n              *Network
	client, server *Host
	cliCtr, srvCtr *Container
}

func newBed(t testing.TB, kernel string, rate float64) *bed {
	t.Helper()
	e := sim.New(7)
	n := NewNetwork(e)
	client := n.AddHost(HostConfig{
		Name: "client", IP: clientIP, Cores: 8,
		RSSCores: []int{0}, RPSCores: []int{1}, GRO: true, InnerGRO: true, Kernel: kernel,
	})
	server := n.AddHost(HostConfig{
		Name: "server", IP: serverIP, Cores: 8,
		RSSCores: []int{0}, RPSCores: []int{1}, GRO: true, InnerGRO: true, Kernel: kernel,
	})
	n.Connect(client, server, rate, sim.Microsecond)
	return &bed{
		e: e, n: n, client: client, server: server,
		cliCtr: client.AddContainer("c-cli", cliCtrIP),
		srvCtr: server.AddContainer("c-srv", srvCtrIP),
	}
}

// sendUDPStream schedules n packets of size bytes at the given interval,
// container-to-container.
func (b *bed) sendUDPStream(n int, size int, every sim.Time) {
	for i := 0; i < n; i++ {
		seq := uint64(i + 1)
		b.e.At(sim.Time(i)*every, func() {
			b.client.SendUDP(SendParams{
				From: b.cliCtr, SrcPort: 7000, DstIP: srvCtrIP, DstPort: 5001,
				Payload: size, Core: 2, FlowID: 1, Seq: seq,
			})
		})
	}
}

func TestOverlayUDPEndToEnd(t *testing.T) {
	b := newBed(t, "", 100*devices.Gbps)
	sk := b.server.OpenUDP(srvCtrIP, 5001, 2)
	const n = 500
	b.sendUDPStream(n, 64, 5*sim.Microsecond)
	b.e.RunUntil(20 * sim.Millisecond)

	if got := sk.Delivered.Value(); got != n {
		t.Fatalf("delivered %d, want %d", got, n)
	}
	if sk.OrderViols != 0 {
		t.Fatalf("order violations: %d", sk.OrderViols)
	}
	if b.server.Rx.Decapped.Value() != n {
		t.Fatalf("decapped %d, want %d", b.server.Rx.Decapped.Value(), n)
	}
	if sk.Latency.Min() <= 0 {
		t.Fatal("latency not measured")
	}
}

func TestHostNetworkUDPEndToEnd(t *testing.T) {
	b := newBed(t, "", 100*devices.Gbps)
	sk := b.server.OpenUDP(serverIP, 5001, 2)
	const n = 300
	for i := 0; i < n; i++ {
		seq := uint64(i + 1)
		b.e.At(sim.Time(i)*5*sim.Microsecond, func() {
			b.client.SendUDP(SendParams{
				SrcPort: 7000, DstIP: serverIP, DstPort: 5001,
				Payload: 64, Core: 2, FlowID: 1, Seq: seq,
			})
		})
	}
	b.e.RunUntil(20 * sim.Millisecond)
	if got := sk.Delivered.Value(); got != n {
		t.Fatalf("delivered %d, want %d", got, n)
	}
	if b.server.Rx.HostPath.Value() != n {
		t.Fatalf("host path count %d", b.server.Rx.HostPath.Value())
	}
	if b.server.Rx.Decapped.Value() != 0 {
		t.Fatal("host traffic went through decap")
	}
}

func TestOverlayTriggersMoreSoftirqs(t *testing.T) {
	// Paper Fig. 4: the overlay path raises ~3x the NET_RX softirqs of
	// the native path for the same traffic.
	run := func(overlayMode bool) float64 {
		b := newBed(t, "", 100*devices.Gbps)
		var sk *socket.Socket
		const n = 400
		if overlayMode {
			sk = b.server.OpenUDP(srvCtrIP, 5001, 2)
		} else {
			sk = b.server.OpenUDP(serverIP, 5001, 2)
		}
		for i := 0; i < n; i++ {
			seq := uint64(i + 1)
			var from *Container
			dst := serverIP
			if overlayMode {
				from = b.cliCtr
				dst = srvCtrIP
			}
			b.e.At(sim.Time(i)*20*sim.Microsecond, func() {
				b.client.SendUDP(SendParams{
					From: from, SrcPort: 7000, DstIP: dst, DstPort: 5001,
					Payload: 64, Core: 2, FlowID: 1, Seq: seq,
				})
			})
		}
		b.e.RunUntil(30 * sim.Millisecond)
		if sk.Delivered.Value() != n {
			t.Fatalf("delivered %d/%d (overlay=%v)", sk.Delivered.Value(), n, overlayMode)
		}
		total := uint64(0)
		for c := 0; c < b.server.M.NumCores(); c++ {
			total += b.server.M.IRQ.Core(c, stats.IRQNetRX)
		}
		return float64(total)
	}
	native := run(false)
	over := run(true)
	ratio := over / native
	// Isolated packets: native = 2 invocations (NAPI + RPS backlog),
	// overlay = 3 (the vxlan/veth re-raise adds one; the two same-core
	// raises coalesce). The paper's 3.6x is measured under stress where
	// coalescing dynamics differ; the experiment harness reports the
	// stressed ratio.
	if ratio < 1.4 {
		t.Fatalf("overlay/native NET_RX ratio = %.2f, want >= 1.4", ratio)
	}
}

func TestFalconPreservesOrderAndDelivery(t *testing.T) {
	b := newBed(t, "", 100*devices.Gbps)
	b.server.EnableFalcon(falconcore.DefaultConfig([]int{3, 4, 5, 6}))
	sk := b.server.OpenUDP(srvCtrIP, 5001, 2)
	const n = 2000
	b.sendUDPStream(n, 64, 2*sim.Microsecond)
	b.e.RunUntil(50 * sim.Millisecond)

	if got := sk.Delivered.Value(); got != n {
		t.Fatalf("delivered %d, want %d", got, n)
	}
	if sk.OrderViols != 0 {
		t.Fatalf("order violations under falcon: %d", sk.OrderViols)
	}
	first, _, _ := b.server.Falcon.Stats()
	if first == 0 {
		t.Fatal("falcon never placed a softirq")
	}
	// Falcon must have spread softirq work onto its CPU set.
	busyFalconCores := 0
	for _, c := range []int{3, 4, 5, 6} {
		if b.server.M.Acct.Busy(c, stats.CtxSoftIRQ) > 0 {
			busyFalconCores++
		}
	}
	if busyFalconCores == 0 {
		t.Fatal("no softirq work on FALCON_CPUS")
	}
}

func TestVanillaOverlaySerializesOnRPSCore(t *testing.T) {
	// Without Falcon, all three softirq stages stack on the RPS core
	// (core 1) — the paper's Fig. 5/11 serialization.
	b := newBed(t, "", 100*devices.Gbps)
	sk := b.server.OpenUDP(srvCtrIP, 5001, 2)
	const n = 1000
	b.sendUDPStream(n, 64, 2*sim.Microsecond)
	b.e.RunUntil(50 * sim.Millisecond)
	if sk.Delivered.Value() != n {
		t.Fatalf("delivered %d", sk.Delivered.Value())
	}
	acct := b.server.M.Acct
	soft1 := acct.Busy(1, stats.CtxSoftIRQ)
	for c := 3; c < 8; c++ {
		if s := acct.Busy(c, stats.CtxSoftIRQ); s > soft1/10 {
			t.Fatalf("vanilla overlay leaked softirq work to core %d (%d vs %d)", c, s, soft1)
		}
	}
	if soft1 == 0 {
		t.Fatal("RPS core did no softirq work")
	}
}

func TestSameHostContainerTraffic(t *testing.T) {
	b := newBed(t, "", 100*devices.Gbps)
	second := b.server.AddContainer("c-srv2", srvCtrIP2)
	_ = second
	sk := b.server.OpenUDP(srvCtrIP2, 5001, 2)
	const n = 100
	for i := 0; i < n; i++ {
		seq := uint64(i + 1)
		b.e.At(sim.Time(i)*5*sim.Microsecond, func() {
			b.server.SendUDP(SendParams{
				From: b.srvCtr, SrcPort: 7000, DstIP: srvCtrIP2, DstPort: 5001,
				Payload: 64, Core: 3, FlowID: 9, Seq: seq,
			})
		})
	}
	b.e.RunUntil(10 * sim.Millisecond)
	if sk.Delivered.Value() != n {
		t.Fatalf("delivered %d, want %d", sk.Delivered.Value(), n)
	}
	// Local traffic must not touch the wire or the decap path.
	if b.server.Rx.Decapped.Value() != 0 {
		t.Fatal("local traffic was encapsulated")
	}
}

func TestUnboundPortDropped(t *testing.T) {
	b := newBed(t, "", 100*devices.Gbps)
	b.client.SendUDP(SendParams{
		From: b.cliCtr, SrcPort: 7000, DstIP: srvCtrIP, DstPort: 9999,
		Payload: 64, Core: 2, FlowID: 1, Seq: 1,
	})
	b.e.RunUntil(5 * sim.Millisecond)
	if b.server.L4Drops.Value() != 1 {
		t.Fatalf("L4 drops = %d, want 1", b.server.L4Drops.Value())
	}
}

func TestKVStore(t *testing.T) {
	kv := NewKVStore()
	info := EndpointInfo{HostIP: serverIP, HostMAC: proto.MACFromUint64(1)}
	kv.Put(srvCtrIP, info)
	got, err := kv.Get(srvCtrIP)
	if err != nil || got.HostIP != serverIP {
		t.Fatalf("get: %+v, %v", got, err)
	}
	if _, err := kv.Get(proto.IP4(1, 2, 3, 4)); err == nil {
		t.Fatal("missing key did not error")
	}
	if kv.Len() != 1 {
		t.Fatalf("len = %d", kv.Len())
	}
	kv.Delete(srvCtrIP)
	if kv.Len() != 0 {
		t.Fatal("delete failed")
	}
}

func TestSendToUnknownContainerFails(t *testing.T) {
	b := newBed(t, "", 100*devices.Gbps)
	okReported := true
	b.client.SendUDP(SendParams{
		From: b.cliCtr, SrcPort: 1, DstIP: proto.IP4(10, 99, 0, 1), DstPort: 2,
		Payload: 16, Core: 2,
		Done: func(ok bool) { okReported = ok },
	})
	b.e.RunUntil(sim.Millisecond)
	if okReported {
		t.Fatal("send to unknown container reported success")
	}
}

func TestKernel54ProfileRuns(t *testing.T) {
	b := newBed(t, "linux-5.4", 100*devices.Gbps)
	sk := b.server.OpenUDP(srvCtrIP, 5001, 2)
	b.sendUDPStream(200, 64, 5*sim.Microsecond)
	b.e.RunUntil(10 * sim.Millisecond)
	if sk.Delivered.Value() != 200 {
		t.Fatalf("delivered %d under 5.4 profile", sk.Delivered.Value())
	}
	if b.server.M.Model.Name != "linux-5.4" {
		t.Fatal("kernel profile not applied")
	}
}

func TestThreeHostMesh(t *testing.T) {
	// Container traffic routes correctly across a 3-host full mesh: each
	// host carries one container; every container messages every other.
	e := sim.New(21)
	n := NewNetwork(e)
	mk := func(name string, ip proto.IPv4Addr) *Host {
		return n.AddHost(HostConfig{
			Name: name, IP: ip, Cores: 6,
			RSSCores: []int{0}, RPSCores: []int{1}, GRO: true, InnerGRO: true,
		})
	}
	hosts := []*Host{
		mk("h1", proto.IP4(192, 168, 2, 1)),
		mk("h2", proto.IP4(192, 168, 2, 2)),
		mk("h3", proto.IP4(192, 168, 2, 3)),
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			n.Connect(hosts[i], hosts[j], 100*devices.Gbps, sim.Microsecond)
		}
	}
	var ctrs []*Container
	var socks []*socket.Socket
	for i, h := range hosts {
		c := h.AddContainer("c", proto.IP4(10, 40, 0, byte(i+1)))
		ctrs = append(ctrs, c)
		socks = append(socks, h.OpenUDP(c.IP, 5001, 3))
	}
	const per = 50
	for i, src := range hosts {
		for j := range hosts {
			if i == j {
				continue
			}
			i, j, src := i, j, src
			for k := 0; k < per; k++ {
				seq := uint64(k + 1)
				e.At(sim.Time(k)*20*sim.Microsecond, func() {
					src.SendUDP(SendParams{
						From: ctrs[i], SrcPort: uint16(7000 + i), DstIP: ctrs[j].IP, DstPort: 5001,
						Payload: 128, Core: 2, FlowID: uint64(i*10 + j), Seq: seq,
					})
				})
			}
		}
	}
	e.RunUntil(20 * sim.Millisecond)
	for i, sk := range socks {
		if got := sk.Delivered.Value(); got != 2*per {
			t.Fatalf("host %d received %d, want %d", i, got, 2*per)
		}
		if sk.OrderViols != 0 {
			t.Fatalf("host %d saw reordering", i)
		}
	}
	for _, h := range hosts {
		if h.Rx.Decapped.Value() != 2*per {
			t.Fatalf("%s decapped %d", h.Name, h.Rx.Decapped.Value())
		}
	}
}
