package stats

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic uniform source for distribution tests.
func lcg(seed uint64) func() float64 {
	state := seed
	return func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
}

// checkQuantiles records the same samples into the histogram and the
// exact Distribution and asserts p50/p99/p99.9 relative error stays
// within the bucket resolution (1/32 ≈ 3.1%, plus slack for the
// half-bucket midpoint convention).
func checkQuantiles(t *testing.T, name string, gen func() int64) {
	t.Helper()
	h := NewHistogram()
	var d Distribution
	for i := 0; i < 200_000; i++ {
		v := gen()
		h.Record(v)
		d.Record(v)
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		exact := float64(d.Quantile(q))
		approx := float64(h.Quantile(q))
		if exact < float64(subBuckets) {
			// Below subBuckets the buckets are exact integers.
			if approx != exact {
				t.Errorf("%s q%g: approx %v != exact %v in the exact range", name, q, approx, exact)
			}
			continue
		}
		if rel := math.Abs(approx-exact) / exact; rel > 1.0/subBuckets+0.004 {
			t.Errorf("%s q%g: approx %v vs exact %v (rel err %.4f)", name, q, approx, exact, rel)
		}
	}
}

func TestHistogramQuantileKnownDistributions(t *testing.T) {
	u := lcg(7)
	checkQuantiles(t, "uniform", func() int64 {
		return int64(u() * 2_000_000)
	})
	e := lcg(8)
	checkQuantiles(t, "exponential", func() int64 {
		v := e()
		if v <= 0 {
			v = 1e-12
		}
		return int64(-math.Log(v) * 50_000) // mean 50µs in ns
	})
	// Bimodal: a fast mode near 5µs and a slow mode near 800µs — the
	// shape GRO/non-GRO latency mixes actually produce, where a single
	// mode's accuracy can mask tail error in the other.
	b := lcg(9)
	checkQuantiles(t, "bimodal", func() int64 {
		if b() < 0.9 {
			return int64(4_000 + b()*2_000)
		}
		return int64(750_000 + b()*100_000)
	})
}

// TestHistogramMergeAssociative: merging per-shard histograms must be
// associative and order-independent — aggregate tail columns cannot
// depend on which shard's histogram was folded in first.
func TestHistogramMergeAssociative(t *testing.T) {
	mk := func(seed uint64, scale float64, n int) *Histogram {
		h := NewHistogram()
		g := lcg(seed)
		for i := 0; i < n; i++ {
			h.Record(int64(g() * scale))
		}
		return h
	}
	parts := func() []*Histogram {
		return []*Histogram{
			mk(1, 10_000, 5_000),
			mk(2, 2_000_000, 3_000),
			mk(3, 300, 8_000),
		}
	}

	// (a ⊕ b) ⊕ c
	ab := parts()
	left := NewHistogram()
	left.Merge(ab[0])
	left.Merge(ab[1])
	left.Merge(ab[2])
	// a ⊕ (b ⊕ c), folded in reverse order
	bc := parts()
	inner := NewHistogram()
	inner.Merge(bc[2])
	inner.Merge(bc[1])
	inner.Merge(bc[0])

	if left.Count() != inner.Count() || left.Sum() != inner.Sum() {
		t.Fatalf("count/sum differ: %d/%d vs %d/%d",
			left.Count(), left.Sum(), inner.Count(), inner.Sum())
	}
	if left.Min() != inner.Min() || left.Max() != inner.Max() {
		t.Fatalf("min/max differ: %d/%d vs %d/%d",
			left.Min(), left.Max(), inner.Min(), inner.Max())
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		if left.Quantile(q) != inner.Quantile(q) {
			t.Fatalf("q%g differs: %d vs %d", q, left.Quantile(q), inner.Quantile(q))
		}
	}
}
