// Package stats provides the measurement primitives used by every
// experiment: log-linear latency histograms with accurate tail
// percentiles, rate counters, interrupt counters, and per-core CPU
// utilization timelines. These reproduce the metrics the paper reports:
// packet rates (Figs. 2, 10, 13, 14), latency percentiles (Figs. 12, 18),
// interrupt counts (Figs. 4, 19) and CPU breakdowns (Figs. 5, 11, 19).
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// subBuckets is the number of linear sub-buckets per power-of-two bucket.
// 32 sub-buckets bound relative quantile error to ~3%, plenty for the
// factor-level comparisons the paper makes.
const subBuckets = 32

// Histogram is a log-linear histogram of non-negative int64 samples
// (latencies in nanoseconds, queue depths, sizes). It records exact
// min/max/sum and approximates quantiles with bounded relative error.
type Histogram struct {
	counts [64][subBuckets]uint64
	n      uint64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

func bucketOf(v int64) (int, int) {
	if v < subBuckets {
		return 0, int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	// Values in [2^exp, 2^(exp+1)) split into subBuckets linear slots.
	shift := exp - 5 // log2(subBuckets)
	sub := int((uint64(v) >> uint(shift)) & (subBuckets - 1))
	return exp - 4, sub
}

func bucketMid(b, sub int) int64 {
	if b == 0 {
		return int64(sub)
	}
	exp := b + 4
	shift := exp - 5
	lo := (int64(1) << uint(exp)) | (int64(sub) << uint(shift))
	return lo + (int64(1)<<uint(shift))/2
}

// Record adds one sample. Negative samples are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	b, sub := bucketOf(v)
	h.counts[b][sub]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest sample, or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 when empty.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns the approximate q-quantile (q in [0,1]). Exact for the
// min (q=0); the max is exact by construction.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var cum uint64
	for b := 0; b < 64; b++ {
		for sub := 0; sub < subBuckets; sub++ {
			c := h.counts[b][sub]
			if c == 0 {
				continue
			}
			cum += c
			if cum > rank {
				m := bucketMid(b, sub)
				if m < h.min {
					m = h.min
				}
				if m > h.max {
					m = h.max
				}
				return m
			}
		}
	}
	return h.max
}

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	for b := range h.counts {
		for s := range h.counts[b] {
			h.counts[b][s] += other.counts[b][s]
		}
	}
	h.n += other.n
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	*h = Histogram{min: math.MaxInt64}
}

// Summary holds the standard percentile set the paper reports.
type Summary struct {
	Count              uint64
	Mean               float64
	Min, P50, P90, P99 int64
	P999, Max          int64
}

// Summarize extracts the standard summary.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.n,
		Mean:  h.Mean(),
		Min:   h.Min(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// String renders the summary in microseconds, the unit of the paper's
// latency figures.
func (s Summary) String() string {
	us := func(v int64) float64 { return float64(v) / 1e3 }
	return fmt.Sprintf("n=%d avg=%.1fus p50=%.1fus p90=%.1fus p99=%.1fus p99.9=%.1fus max=%.1fus",
		s.Count, s.Mean/1e3, us(s.P50), us(s.P90), us(s.P99), us(s.P999), us(s.Max))
}

// Distribution is a helper for exact small-sample percentiles used in
// tests to validate the histogram approximation.
type Distribution struct{ samples []int64 }

// Record adds a sample.
func (d *Distribution) Record(v int64) { d.samples = append(d.samples, v) }

// Quantile returns the exact q-quantile by sorting.
func (d *Distribution) Quantile(q float64) int64 {
	if len(d.samples) == 0 {
		return 0
	}
	s := make([]int64, len(d.samples))
	copy(s, d.samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Bar renders an ASCII bar of width proportional to frac (0..1), used by
// the CLI tools to sketch figure shapes in the terminal.
func Bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}
