package stats

import (
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("value = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRate(t *testing.T) {
	if r := Rate(1000, 1e9); r != 1000 {
		t.Fatalf("rate = %v", r)
	}
	if r := Rate(500, 5e8); r != 1000 {
		t.Fatalf("rate = %v", r)
	}
	if r := Rate(10, 0); r != 0 {
		t.Fatalf("rate with zero elapsed = %v", r)
	}
}

func TestIRQCounters(t *testing.T) {
	ic := NewIRQCounters(4)
	ic.Inc(0, IRQHard)
	ic.Inc(1, IRQNetRX)
	ic.Inc(1, IRQNetRX)
	ic.Inc(2, IRQRES)
	if ic.Total(IRQNetRX) != 2 {
		t.Fatalf("NET_RX total = %d", ic.Total(IRQNetRX))
	}
	if ic.Core(1, IRQNetRX) != 2 {
		t.Fatalf("NET_RX core1 = %d", ic.Core(1, IRQNetRX))
	}
	if ic.Total(IRQHard) != 1 || ic.Total(IRQRES) != 1 {
		t.Fatal("per-kind totals wrong")
	}
	ic.Reset()
	if ic.Total(IRQNetRX) != 0 {
		t.Fatal("reset failed")
	}
}

func TestIRQKindString(t *testing.T) {
	names := map[IRQKind]string{
		IRQHard: "HW", IRQNetRX: "NET_RX", IRQNetTX: "NET_TX",
		IRQRES: "RES", IRQTimer: "TIMER",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d", len(lines))
	}
	// Column alignment: "value" column starts at same offset in all rows.
	h := strings.Index(lines[1], "value")
	if h < 0 {
		t.Fatal("header missing")
	}
	if lines[2][h-2:h] != "  " && lines[2][h:h+1] == "" {
		t.Fatal("misaligned column")
	}
}

func TestTableSortRows(t *testing.T) {
	tb := &Table{Columns: []string{"k"}}
	tb.AddRow("z")
	tb.AddRow("a")
	tb.AddRow("m")
	tb.SortRows()
	if tb.Rows[0][0] != "a" || tb.Rows[2][0] != "z" {
		t.Fatalf("rows not sorted: %v", tb.Rows)
	}
}

func TestCPUAccount(t *testing.T) {
	a := NewCPUAccount(2)
	a.ResetAt(0)
	a.Charge(0, CtxSoftIRQ, 500, 1000)
	a.Charge(0, CtxHardIRQ, 100, 1000)
	a.Charge(1, CtxTask, 250, 1000)
	if a.TotalBusy(0) != 600 {
		t.Fatalf("busy0 = %d", a.TotalBusy(0))
	}
	if u := a.Utilization(0); u != 0.6 {
		t.Fatalf("util0 = %v", u)
	}
	if s := a.ContextShare(0, CtxSoftIRQ); s != 0.5 {
		t.Fatalf("softirq share = %v", s)
	}
	if u := a.SystemUtilization(); u != (0.6+0.25)/2 {
		t.Fatalf("system util = %v", u)
	}
	a.ResetAt(1000)
	if a.TotalBusy(0) != 0 || a.Span() != 0 {
		t.Fatal("ResetAt did not clear")
	}
}

func TestCPUAccountClamp(t *testing.T) {
	a := NewCPUAccount(1)
	a.ResetAt(0)
	a.Charge(0, CtxSoftIRQ, 5000, 1000) // overcommitted
	if u := a.Utilization(0); u != 1 {
		t.Fatalf("util should clamp to 1, got %v", u)
	}
}

func TestLoadMeterStaleness(t *testing.T) {
	a := NewCPUAccount(2)
	a.ResetAt(0)
	m := NewLoadMeter(2, 1000)

	a.Charge(0, CtxSoftIRQ, 800, 1000)
	m.Tick(a, 1000)
	if l := m.Load(0); l != 0.8 {
		t.Fatalf("load0 = %v, want 0.8", l)
	}
	if l := m.Load(1); l != 0 {
		t.Fatalf("load1 = %v, want 0", l)
	}
	if avg := m.SystemAvg(); avg != 0.4 {
		t.Fatalf("avg = %v, want 0.4", avg)
	}

	// Between ticks the meter reports stale values even as busy accrues.
	a.Charge(1, CtxSoftIRQ, 900, 2000)
	if l := m.Load(1); l != 0 {
		t.Fatalf("load should be stale between ticks, got %v", l)
	}
	m.Tick(a, 2000)
	if l := m.Load(1); l != 0.9 {
		t.Fatalf("load1 after tick = %v, want 0.9", l)
	}
	if l := m.Load(0); l != 0 {
		t.Fatalf("load0 after idle window = %v, want 0", l)
	}
}

func TestCPUContextString(t *testing.T) {
	if CtxSoftIRQ.String() != "softirq" || CtxIdle.String() != "idle" {
		t.Fatal("context names wrong")
	}
}
