package stats

import "fmt"

// CPUContext classifies what a core spends its cycles on. The paper's
// per-core utilization figures (5, 11, 19) break CPU time into hardirq,
// softirq and task (user) time.
type CPUContext int

// CPU contexts.
const (
	CtxIdle CPUContext = iota
	CtxHardIRQ
	CtxSoftIRQ
	CtxTask
	numContexts
)

// String names the context as in the paper's figures.
func (c CPUContext) String() string {
	switch c {
	case CtxIdle:
		return "idle"
	case CtxHardIRQ:
		return "hardirq"
	case CtxSoftIRQ:
		return "softirq"
	case CtxTask:
		return "task"
	default:
		return fmt.Sprintf("ctx(%d)", int(c))
	}
}

// CPUAccount accumulates busy nanoseconds per core per context.
type CPUAccount struct {
	busy  [][numContexts]int64
	since int64 // start of the accounting interval
	until int64 // end of the accounting interval (latest sample)
}

// NewCPUAccount returns an account for cores CPU cores starting at time 0.
func NewCPUAccount(cores int) *CPUAccount {
	return &CPUAccount{busy: make([][numContexts]int64, cores)}
}

// Charge records ns nanoseconds of context ctx on core, ending at time
// `end` (virtual nanoseconds).
func (a *CPUAccount) Charge(core int, ctx CPUContext, ns, end int64) {
	a.busy[core][ctx] += ns
	if end > a.until {
		a.until = end
	}
}

// Busy returns the busy ns of ctx on core since the last Reset.
func (a *CPUAccount) Busy(core int, ctx CPUContext) int64 {
	return a.busy[core][ctx]
}

// TotalBusy returns the busy ns of core across all non-idle contexts.
func (a *CPUAccount) TotalBusy(core int) int64 {
	var t int64
	for ctx := CtxHardIRQ; ctx < numContexts; ctx++ {
		t += a.busy[core][ctx]
	}
	return t
}

// Cores returns the number of cores tracked.
func (a *CPUAccount) Cores() int { return len(a.busy) }

// Utilization returns core's busy fraction over the interval
// [since, until]. It is clamped to [0, 1].
func (a *CPUAccount) Utilization(core int) float64 {
	span := a.until - a.since
	if span <= 0 {
		return 0
	}
	u := float64(a.TotalBusy(core)) / float64(span)
	if u > 1 {
		u = 1
	}
	return u
}

// ContextShare returns the fraction of the interval core spent in ctx.
func (a *CPUAccount) ContextShare(core int, ctx CPUContext) float64 {
	span := a.until - a.since
	if span <= 0 {
		return 0
	}
	u := float64(a.busy[core][ctx]) / float64(span)
	if u > 1 {
		u = 1
	}
	return u
}

// SystemUtilization returns the mean utilization across all cores.
func (a *CPUAccount) SystemUtilization() float64 {
	if len(a.busy) == 0 {
		return 0
	}
	sum := 0.0
	for c := range a.busy {
		sum += a.Utilization(c)
	}
	return sum / float64(len(a.busy))
}

// ResetAt starts a fresh accounting interval at time now, discarding all
// accumulated busy time. Used to drop warm-up phases from measurements.
func (a *CPUAccount) ResetAt(now int64) {
	for i := range a.busy {
		a.busy[i] = [numContexts]int64{}
	}
	a.since = now
	a.until = now
}

// Span returns the length of the current accounting interval in ns.
func (a *CPUAccount) Span() int64 { return a.until - a.since }

// LoadMeter maintains a sliding-window per-core load estimate — the
// simulation's analogue of sampling /proc/stat from the timer interrupt,
// which is exactly how the paper's Falcon implementation measures load
// (Section 5). Loads update only when Tick is called, so readers between
// ticks observe slightly stale values, reproducing the paper's
// observation that per-packet balancing lacks timely load information.
type LoadMeter struct {
	window    int64   // ns of history the load estimate covers
	lastBusy  []int64 // TotalBusy at the previous tick
	lastTick  int64
	load      []float64
	systemAvg float64
}

// NewLoadMeter returns a meter over the given account with the given
// window (ns between ticks).
func NewLoadMeter(cores int, window int64) *LoadMeter {
	return &LoadMeter{
		window:   window,
		lastBusy: make([]int64, cores),
		load:     make([]float64, cores),
	}
}

// Tick recomputes per-core load from the busy deltas since the last tick.
// now is the current virtual time.
func (m *LoadMeter) Tick(a *CPUAccount, now int64) {
	span := now - m.lastTick
	if span <= 0 {
		return
	}
	sum := 0.0
	for c := range m.load {
		busy := a.TotalBusy(c)
		delta := busy - m.lastBusy[c]
		m.lastBusy[c] = busy
		l := float64(delta) / float64(span)
		if l > 1 {
			l = 1
		}
		m.load[c] = l
		sum += l
	}
	m.systemAvg = sum / float64(len(m.load))
	m.lastTick = now
}

// Load returns the most recent load estimate of a core in [0,1].
func (m *LoadMeter) Load(core int) float64 { return m.load[core] }

// SystemAvg returns the most recent system-wide average load — the
// paper's L_avg used in Algorithm 1's enable gate.
func (m *LoadMeter) SystemAvg() float64 { return m.systemAvg }
