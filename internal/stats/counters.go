package stats

import (
	"fmt"
	"sort"
)

// Counter is a monotonically increasing event count (packets delivered,
// bytes received, softirqs raised...).
type Counter struct {
	v uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v = 0 }

// Rate converts a count accumulated over elapsed nanoseconds into a
// per-second rate.
func Rate(count uint64, elapsedNs int64) float64 {
	if elapsedNs <= 0 {
		return 0
	}
	return float64(count) * 1e9 / float64(elapsedNs)
}

// IRQKind enumerates the interrupt classes the paper counts (Fig. 4).
type IRQKind int

// Interrupt classes.
const (
	IRQHard  IRQKind = iota // hardware interrupts from the pNIC
	IRQNetRX                // NET_RX_SOFTIRQ software interrupts
	IRQNetTX                // NET_TX_SOFTIRQ software interrupts
	IRQRES                  // rescheduling IPIs (cross-core wakeups)
	IRQTimer                // timer ticks
	irqKinds
)

// String returns the kernel-style name of the interrupt class.
func (k IRQKind) String() string {
	switch k {
	case IRQHard:
		return "HW"
	case IRQNetRX:
		return "NET_RX"
	case IRQNetTX:
		return "NET_TX"
	case IRQRES:
		return "RES"
	case IRQTimer:
		return "TIMER"
	default:
		return fmt.Sprintf("IRQ(%d)", int(k))
	}
}

// IRQCounters tallies interrupts per class and per core, reproducing the
// /proc/interrupts and /proc/softirqs views used in the paper's Fig. 4.
type IRQCounters struct {
	perCore [][irqKinds]uint64
}

// NewIRQCounters returns counters for cores CPU cores.
func NewIRQCounters(cores int) *IRQCounters {
	return &IRQCounters{perCore: make([][irqKinds]uint64, cores)}
}

// Inc records one interrupt of kind k on the given core.
func (ic *IRQCounters) Inc(core int, k IRQKind) {
	ic.perCore[core][k]++
}

// Core returns the count of kind k on a single core.
func (ic *IRQCounters) Core(core int, k IRQKind) uint64 {
	return ic.perCore[core][k]
}

// Total returns the count of kind k summed over all cores.
func (ic *IRQCounters) Total(k IRQKind) uint64 {
	var t uint64
	for i := range ic.perCore {
		t += ic.perCore[i][k]
	}
	return t
}

// Reset zeroes every counter.
func (ic *IRQCounters) Reset() {
	for i := range ic.perCore {
		ic.perCore[i] = [irqKinds]uint64{}
	}
}

// Table holds a labelled results grid: the common currency between
// experiment harnesses, benchmarks and the CLI. Each experiment prints
// one or more Tables shaped like the paper's figures.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b []byte
	if t.Title != "" {
		b = append(b, "== "+t.Title+" ==\n"...)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b = append(b, "  "...)
			}
			b = append(b, fmt.Sprintf("%-*s", widths[i], c)...)
		}
		b = append(b, '\n')
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	return string(b)
}

// SortRows sorts rows by the first column (stable, lexicographic); useful
// when rows are produced by map iteration.
func (t *Table) SortRows() {
	sort.SliceStable(t.Rows, func(i, j int) bool { return t.Rows[i][0] < t.Rows[j][0] })
}
