package stats

// FaultCounters makes chaos-engineering behavior observable: how many
// impairment windows were applied, and how the datapath degraded and
// recovered around them. The injector (internal/faults) fills the
// injection side; Falcon's health tracker (internal/core) fills the
// degradation side. All fields are plain Counters, so an unused
// FaultCounters costs nothing.
type FaultCounters struct {
	// Injected counts impairment windows applied; Cleared counts windows
	// reverted (Injected == Cleared once a plan has fully played out).
	Injected Counter
	Cleared  Counter

	// Rerouted counts packet placements steered away from a core the
	// health tracker had blacklisted (the packet's first-choice hash
	// landed on a sick core).
	Rerouted Counter

	// Fallbacks counts placements declined entirely because the healthy
	// set shrank below the configured floor — those packets took the
	// vanilla same-core path.
	Fallbacks Counter

	// DegradedNs accumulates virtual nanoseconds spent in degraded mode
	// (healthy FALCON_CPUS below the floor).
	DegradedNs Counter
}

// Reset zeroes every counter.
func (f *FaultCounters) Reset() {
	f.Injected.Reset()
	f.Cleared.Reset()
	f.Rerouted.Reset()
	f.Fallbacks.Reset()
	f.DegradedNs.Reset()
}
