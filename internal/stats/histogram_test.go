package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 32; v++ {
		h.Record(v)
	}
	if h.Min() != 0 || h.Max() != 31 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if h.Quantile(0) != 0 {
		t.Fatalf("q0 = %d", h.Quantile(0))
	}
	if q := h.Quantile(0.5); q < 15 || q > 17 {
		t.Fatalf("q50 = %d, want ~16", q)
	}
}

func TestHistogramMeanSum(t *testing.T) {
	h := NewHistogram()
	h.Record(100)
	h.Record(200)
	h.Record(300)
	if h.Sum() != 600 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Mean() != 200 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatal("negative sample not clamped to 0")
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Quantiles must be within ~3.5% relative error vs exact values.
	h := NewHistogram()
	var d Distribution
	r := func() func() int64 {
		state := uint64(12345)
		return func() int64 {
			state = state*6364136223846793005 + 1442695040888963407
			return int64(state >> 40) // values up to ~16M
		}
	}()
	for i := 0; i < 100000; i++ {
		v := r()
		h.Record(v)
		d.Record(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := float64(d.Quantile(q))
		approx := float64(h.Quantile(q))
		if exact == 0 {
			continue
		}
		rel := math.Abs(approx-exact) / exact
		if rel > 0.035 {
			t.Errorf("q%.3f: approx %v vs exact %v (rel err %.4f)", q, approx, exact, rel)
		}
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		h := NewHistogram()
		s := seed
		for i := 0; i < 1000; i++ {
			s = s*6364136223846793005 + 17
			h.Record(int64(s >> 45))
		}
		last := int64(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileWithinMinMax(t *testing.T) {
	if err := quick.Check(func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			if v < 0 {
				v = -v
			}
			h.Record(v)
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < h.Min() || v > h.Max() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(0); i < 100; i++ {
		a.Record(i)
	}
	for i := int64(100); i < 200; i++ {
		b.Record(i)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Min() != 0 || a.Max() != 199 {
		t.Fatalf("min/max = %d/%d", a.Min(), a.Max())
	}
	empty := NewHistogram()
	a.Merge(empty) // must not disturb min
	if a.Min() != 0 {
		t.Fatal("merging empty histogram disturbed min")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(42)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear histogram")
	}
	h.Record(7)
	if h.Min() != 7 {
		t.Fatal("min tracking broken after reset")
	}
}

func TestSummary(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1000)
	}
	s := h.Summarize()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P99 < s.P50 || s.P999 < s.P99 || s.Max < s.P999 {
		t.Fatalf("percentiles not ordered: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); len(got) != 10 {
		t.Fatalf("bar length = %d", len(got))
	}
	if got := Bar(-1, 4); got != "...." {
		t.Fatalf("bar(-1) = %q", got)
	}
	if got := Bar(2, 4); got != "####" {
		t.Fatalf("bar(2) = %q", got)
	}
}
