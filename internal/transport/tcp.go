// Package transport implements a simulated TCP on top of the overlay
// datapath: cumulative ACKs with delayed acking, slow start and AIMD
// congestion avoidance, fast retransmit on triple duplicate ACKs, and
// retransmission timeouts. Connections run entirely through the overlay's
// transmit and receive paths, so every data segment and every ACK pays
// the real per-device softirq costs — including VXLAN encapsulation in
// both directions, exactly as the paper's overlay TCP traffic does.
//
// Simplifications relative to a full TCP (documented in DESIGN.md): the
// three-way handshake is elided (connections start established, as the
// paper's steady-state measurements assume), segments equal the
// application message size (the testbed's jumbo-frame/GSO behaviour),
// and SACK is approximated by go-back-N from the fast-retransmit point.
package transport

import (
	"fmt"

	"falcon/internal/overlay"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/skb"
	"falcon/internal/socket"
	"falcon/internal/stats"
)

// Default connection parameters.
const (
	DefaultInitialCwnd = 10  // segments (RFC 6928)
	DefaultMaxCwnd     = 256 // segments; stands in for the receive window
	DefaultRTO         = 10 * sim.Millisecond
	MinRTO             = 500 * sim.Microsecond
	MaxRTO             = sim.Second
	delayedAckTimeout  = 200 * sim.Microsecond
	dupAckThreshold    = 3
)

// Config describes one unidirectional TCP data flow (data sender →
// receiver; ACKs flow back automatically).
type Config struct {
	Net *overlay.Network

	// Sender endpoint. Ctr nil means host networking.
	SenderHost *overlay.Host
	SenderCtr  *overlay.Container
	SenderCore int
	SrcPort    uint16

	// Receiver endpoint.
	ReceiverHost *overlay.Host
	ReceiverCtr  *overlay.Container
	AppCore      int
	DstPort      uint16

	// MsgSize is the application write (= segment payload) in bytes.
	MsgSize int

	// InitialCwnd / MaxCwnd in segments (0 → defaults).
	InitialCwnd, MaxCwnd int

	// FlowID instruments measurement attribution.
	FlowID uint64
}

// Conn is an established TCP connection.
type Conn struct {
	cfg Config
	// e is the shard engine both endpoints live on. Conn state is
	// shared between the sender path (ACK processing, RTO) and the
	// receiver path (reassembly, delayed ACKs), so Dial requires the
	// two hosts to be colocated on one shard.
	e *sim.Engine

	srcIP, dstIP proto.IPv4Addr

	// Sender state (sequence space in bytes; no wraparound handling —
	// experiment transfer volumes stay far below 2^63).
	sndNxt    uint64
	sndUna    uint64
	cwnd      float64 // segments
	ssthresh  float64
	dupAcks   int
	inFastRec bool
	recover   uint64
	rtoTimer  sim.Timer
	rto       sim.Time

	// RTT estimation (Jacobson/Karn): one timed segment at a time,
	// retransmissions never sampled.
	srtt, rttvar sim.Time
	sampling     bool
	sampleSeq    uint64
	sampleAt     sim.Time

	// Application send buffer in whole messages.
	pendingMsgs int
	continuous  bool
	sendActive  bool

	// Receiver state.
	rcvNxt   uint64
	oooSegs  map[uint64]*skb.SKB // seq → buffered out-of-order segment
	ackEvery int                 // delayed-ACK segment counter
	ackTimer sim.Timer
	sock     *socket.Socket

	// Diagnostics.
	Retransmits   stats.Counter
	FastRetrans   stats.Counter
	Timeouts      stats.Counter
	AcksSent      stats.Counter
	SegsDelivered stats.Counter
	// BytesAssembled is in-order payload handed to the application
	// (always equals rcvNxt: the stream never gaps).
	BytesAssembled stats.Counter

	closed bool
}

// Dial establishes the connection: binds both directions' L4 handlers
// and returns the conn ready to Send. appWork is extra per-message
// application processing at the receiver.
func Dial(cfg Config, appWork sim.Time) (*Conn, error) {
	if cfg.MsgSize <= 0 {
		return nil, fmt.Errorf("transport: MsgSize must be positive")
	}
	if cfg.InitialCwnd == 0 {
		cfg.InitialCwnd = DefaultInitialCwnd
	}
	if cfg.MaxCwnd == 0 {
		cfg.MaxCwnd = DefaultMaxCwnd
	}
	if cfg.SenderHost.E != cfg.ReceiverHost.E {
		return nil, fmt.Errorf("transport: TCP endpoints must be colocated on one shard (%s and %s live on different engines)",
			cfg.SenderHost.Name, cfg.ReceiverHost.Name)
	}
	c := &Conn{
		cfg:      cfg,
		e:        cfg.SenderHost.E,
		cwnd:     float64(cfg.InitialCwnd),
		ssthresh: float64(cfg.MaxCwnd),
		rto:      DefaultRTO,
		oooSegs:  make(map[uint64]*skb.SKB),
	}
	if cfg.SenderCtr != nil {
		c.srcIP = cfg.SenderCtr.IP
	} else {
		c.srcIP = cfg.SenderHost.IP
	}
	if cfg.ReceiverCtr != nil {
		c.dstIP = cfg.ReceiverCtr.IP
	} else {
		c.dstIP = cfg.ReceiverHost.IP
	}

	c.sock = socket.New(cfg.ReceiverHost.M, cfg.AppCore)
	c.sock.AppWork = appWork
	if cfg.ReceiverHost.OnSocketOpen != nil {
		cfg.ReceiverHost.OnSocketOpen(cfg.DstPort, c.sock)
	}

	// Data direction: receiver host demuxes (dstIP, DstPort, TCP).
	cfg.ReceiverHost.Bind(overlay.SockKey{IP: c.dstIP, Port: cfg.DstPort, Proto: proto.ProtoTCP},
		c.onData)
	// ACK direction: sender host demuxes (srcIP, SrcPort, TCP).
	cfg.SenderHost.Bind(overlay.SockKey{IP: c.srcIP, Port: cfg.SrcPort, Proto: proto.ProtoTCP},
		c.onAck)
	return c, nil
}

// Socket returns the receiver-side socket (latency/throughput metrics).
func (c *Conn) Socket() *socket.Socket { return c.sock }

// Cwnd returns the current congestion window in segments.
func (c *Conn) Cwnd() float64 { return c.cwnd }

// Outstanding returns unacknowledged bytes in flight.
func (c *Conn) Outstanding() uint64 { return c.sndNxt - c.sndUna }

// Close tears the connection down (stops timers and sending).
func (c *Conn) Close() {
	c.closed = true
	c.continuous = false
	c.pendingMsgs = 0
	c.rtoTimer.Stop()
	c.ackTimer.Stop()
	// Buffered out-of-order segments will never be delivered.
	for seq, s := range c.oooSegs {
		delete(c.oooSegs, seq)
		s.Stage("drop:tcp-closed")
		s.Free()
	}
	c.cfg.ReceiverHost.Unbind(overlay.SockKey{IP: c.dstIP, Port: c.cfg.DstPort, Proto: proto.ProtoTCP})
	c.cfg.SenderHost.Unbind(overlay.SockKey{IP: c.srcIP, Port: c.cfg.SrcPort, Proto: proto.ProtoTCP})
}

// Send queues n application messages for transmission.
func (c *Conn) Send(n int) {
	if c.closed {
		return
	}
	c.pendingMsgs += n
	c.trySend()
}

// StartContinuous switches the sender to bulk mode: the window is kept
// full indefinitely (the sockperf TCP throughput stress shape).
func (c *Conn) StartContinuous() {
	c.continuous = true
	c.trySend()
}

// windowBytes is the current usable window.
func (c *Conn) windowBytes() uint64 {
	w := uint64(c.cwnd) * uint64(c.cfg.MsgSize)
	return w
}

// trySend fills the window with queued messages. Transmissions chain
// through the sender core's task queue, so segments serialize naturally.
func (c *Conn) trySend() {
	if c.closed || c.sendActive {
		return
	}
	if !c.continuous && c.pendingMsgs == 0 {
		return
	}
	if c.Outstanding()+uint64(c.cfg.MsgSize) > c.windowBytes() {
		return // window full; ACKs will reopen
	}
	c.sendActive = true
	seq := c.sndNxt
	c.sndNxt += uint64(c.cfg.MsgSize)
	if !c.continuous {
		c.pendingMsgs--
	}
	c.transmit(seq, false, func() {
		c.sendActive = false
		c.trySend()
	})
}

// transmit emits one data segment starting at seq.
func (c *Conn) transmit(seq uint64, isRetrans bool, done func()) {
	if isRetrans {
		// Karn's rule: a retransmission invalidates any in-flight sample
		// (the eventual ACK is ambiguous).
		c.sampling = false
	} else if !c.sampling {
		c.sampling = true
		c.sampleSeq = seq
		c.sampleAt = c.e.Now()
	}
	hdr := proto.TCPHdr{
		SrcPort: c.cfg.SrcPort,
		DstPort: c.cfg.DstPort,
		Seq:     uint32(seq),
		Flags:   proto.TCPAck | proto.TCPPsh,
		Window:  65535,
	}
	c.armRTO()
	c.cfg.SenderHost.SendTCP(overlay.SendParams{
		From:    c.cfg.SenderCtr,
		DstIP:   c.dstIP,
		Payload: c.cfg.MsgSize,
		Core:    c.cfg.SenderCore,
		FlowID:  c.cfg.FlowID,
		Seq:     seq,
		Done: func(ok bool) {
			if done != nil {
				done()
			}
		},
	}, hdr)
	if isRetrans {
		c.Retransmits.Inc()
	}
}

// armRTO (re)starts the retransmission timer. This runs once per
// transmitted segment, so it schedules through AfterArg with a
// package-level trampoline instead of allocating a method-value closure.
func (c *Conn) armRTO() {
	c.rtoTimer.Stop()
	c.rtoTimer = c.e.AfterArg(c.rto, connRTO, c)
}

func connRTO(v any) { v.(*Conn).onRTO() }

// onRTO fires when the oldest segment went unacknowledged too long:
// collapse the window and go-back-N from sndUna.
func (c *Conn) onRTO() {
	if c.closed || c.sndUna == c.sndNxt {
		return
	}
	c.Timeouts.Inc()
	c.ssthresh = maxf(c.cwnd/2, 2)
	c.cwnd = 1
	c.dupAcks = 0
	c.inFastRec = false
	// Go-back-N: rewind sndNxt to the loss point; trySend re-sends.
	if !c.continuous {
		c.pendingMsgs += int(c.Outstanding()) / c.cfg.MsgSize
	}
	c.sndNxt = c.sndUna
	c.rto *= 2
	if c.rto > MaxRTO {
		c.rto = MaxRTO
	}
	c.sendActive = false
	c.trySend()
}

// updateRTT folds a timing sample into the smoothed estimators and
// recomputes the retransmission timeout (RFC 6298).
func (c *Conn) updateRTT(ack uint64) {
	if !c.sampling || ack <= c.sampleSeq {
		return
	}
	c.sampling = false
	sample := c.e.Now() - c.sampleAt
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		diff := c.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	rto := c.srtt + 4*c.rttvar
	if rto < MinRTO {
		rto = MinRTO
	}
	if rto > MaxRTO {
		rto = MaxRTO
	}
	c.rto = rto
}

// SRTT returns the smoothed round-trip estimate (0 until sampled).
func (c *Conn) SRTT() sim.Time { return c.srtt }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
