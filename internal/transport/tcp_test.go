package transport

import (
	"testing"

	"falcon/internal/devices"
	"falcon/internal/overlay"
	"falcon/internal/proto"
	"falcon/internal/sim"
)

var (
	clientIP = proto.IP4(192, 168, 1, 1)
	serverIP = proto.IP4(192, 168, 1, 2)
	cliCtrIP = proto.IP4(10, 32, 0, 1)
	srvCtrIP = proto.IP4(10, 32, 0, 2)
)

type bed struct {
	e              *sim.Engine
	n              *overlay.Network
	client, server *overlay.Host
	cliCtr, srvCtr *overlay.Container
}

func newBed(t *testing.T, rate float64, txq int) *bed {
	t.Helper()
	e := sim.New(11)
	n := overlay.NewNetwork(e)
	client := n.AddHost(overlay.HostConfig{
		Name: "client", IP: clientIP, Cores: 8,
		RSSCores: []int{0}, RPSCores: []int{1}, GRO: true, InnerGRO: true,
	})
	server := n.AddHost(overlay.HostConfig{
		Name: "server", IP: serverIP, Cores: 8,
		RSSCores: []int{0}, RPSCores: []int{1}, GRO: true, InnerGRO: true,
	})
	n.Connect(client, server, rate, sim.Microsecond)
	if txq > 0 {
		client.LinkTo(serverIP).TxQueueLen = txq
		server.LinkTo(clientIP).TxQueueLen = txq
	}
	return &bed{
		e: e, n: n, client: client, server: server,
		cliCtr: client.AddContainer("c-cli", cliCtrIP),
		srvCtr: server.AddContainer("c-srv", srvCtrIP),
	}
}

func dialOverlay(t *testing.T, b *bed, msgSize int) *Conn {
	t.Helper()
	c, err := Dial(Config{
		Net:        b.n,
		SenderHost: b.client, SenderCtr: b.cliCtr, SenderCore: 2, SrcPort: 40000,
		ReceiverHost: b.server, ReceiverCtr: b.srvCtr, AppCore: 2, DstPort: 5201,
		MsgSize: msgSize, FlowID: 1,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTCPBasicTransfer(t *testing.T) {
	b := newBed(t, 100*devices.Gbps, 0)
	c := dialOverlay(t, b, 1024)
	const msgs = 100
	c.Send(msgs)
	b.e.RunUntil(50 * sim.Millisecond)

	if got := c.rcvNxt; got != msgs*1024 {
		t.Fatalf("rcvNxt = %d, want %d", got, msgs*1024)
	}
	if c.Socket().Delivered.Value() != msgs {
		t.Fatalf("delivered %d messages, want %d", c.Socket().Delivered.Value(), msgs)
	}
	if c.Retransmits.Value() != 0 || c.Timeouts.Value() != 0 {
		t.Fatalf("unexpected loss recovery: retrans=%d timeouts=%d",
			c.Retransmits.Value(), c.Timeouts.Value())
	}
	if c.AcksSent.Value() == 0 {
		t.Fatal("no ACKs sent")
	}
	if c.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after full ack", c.Outstanding())
	}
}

func TestTCPHostNetworkTransfer(t *testing.T) {
	b := newBed(t, 100*devices.Gbps, 0)
	c, err := Dial(Config{
		Net:        b.n,
		SenderHost: b.client, SenderCore: 2, SrcPort: 40001,
		ReceiverHost: b.server, AppCore: 2, DstPort: 5202,
		MsgSize: 4096, FlowID: 2,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Send(50)
	b.e.RunUntil(50 * sim.Millisecond)
	if c.Socket().Delivered.Value() != 50 {
		t.Fatalf("delivered %d, want 50", c.Socket().Delivered.Value())
	}
	// Host-network segments must not be decapsulated.
	if b.server.Rx.Decapped.Value() != 0 {
		t.Fatal("host TCP went through overlay decap")
	}
}

func TestTCPCwndGrowsInBulkMode(t *testing.T) {
	b := newBed(t, 100*devices.Gbps, 0)
	c := dialOverlay(t, b, 4096)
	c.StartContinuous()
	b.e.RunUntil(20 * sim.Millisecond)
	if c.Cwnd() <= float64(DefaultInitialCwnd) {
		t.Fatalf("cwnd = %.1f never grew", c.Cwnd())
	}
	if c.Socket().Delivered.Value() == 0 {
		t.Fatal("no bulk delivery")
	}
	// The byte stream must be contiguous: rcvNxt equals delivered bytes.
	if c.rcvNxt != c.BytesAssembled.Value() {
		t.Fatalf("stream gap: rcvNxt=%d assembled=%d", c.rcvNxt, c.BytesAssembled.Value())
	}
}

func TestTCPRecoversFromLoss(t *testing.T) {
	// A slow link with a tiny transmit queue forces drops under bulk
	// load; the connection must keep the stream contiguous and make
	// progress through retransmission.
	b := newBed(t, 1*devices.Gbps, 6)
	c := dialOverlay(t, b, 4096)
	c.StartContinuous()
	b.e.RunUntil(100 * sim.Millisecond)

	if c.Retransmits.Value() == 0 && c.Timeouts.Value() == 0 {
		t.Fatalf("no loss recovery triggered (drops=%d)",
			b.client.LinkTo(serverIP).Dropped.Value())
	}
	if c.rcvNxt == 0 {
		t.Fatal("no progress under loss")
	}
	if c.rcvNxt != c.BytesAssembled.Value() {
		t.Fatalf("stream gap after recovery: rcvNxt=%d assembled=%d",
			c.rcvNxt, c.BytesAssembled.Value())
	}
	if c.Socket().OrderViols != 0 {
		t.Fatalf("out-of-order delivery to application: %d", c.Socket().OrderViols)
	}
}

func TestTCPCloseStopsTraffic(t *testing.T) {
	b := newBed(t, 100*devices.Gbps, 0)
	c := dialOverlay(t, b, 1024)
	c.StartContinuous()
	b.e.RunUntil(5 * sim.Millisecond)
	c.Close()
	delivered := c.Socket().Delivered.Value()
	b.e.RunUntil(10 * sim.Millisecond)
	// A few in-flight segments may still land, but the stream must stop.
	after := c.Socket().Delivered.Value()
	if after > delivered+uint64(2*DefaultMaxCwnd) {
		t.Fatalf("traffic continued after close: %d -> %d", delivered, after)
	}
}

func TestTCPDialValidation(t *testing.T) {
	b := newBed(t, 100*devices.Gbps, 0)
	if _, err := Dial(Config{Net: b.n, SenderHost: b.client, ReceiverHost: b.server}, 0); err == nil {
		t.Fatal("zero MsgSize accepted")
	}
}

func TestTCPSlowLinkThroughputBounded(t *testing.T) {
	// On a 1 Gb/s link, delivered goodput must be below the line rate
	// and above a sane floor (congestion control converges).
	b := newBed(t, 1*devices.Gbps, 0)
	c := dialOverlay(t, b, 4096)
	c.StartContinuous()
	const window = 100 * sim.Millisecond
	b.e.RunUntil(window)
	bits := float64(c.BytesAssembled.Value()) * 8
	gbps := bits / window.Seconds() / 1e9
	if gbps > 1.0 {
		t.Fatalf("goodput %.2f Gb/s exceeds the 1 Gb/s link", gbps)
	}
	if gbps < 0.3 {
		t.Fatalf("goodput %.2f Gb/s implausibly low", gbps)
	}
}
