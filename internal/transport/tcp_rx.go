package transport

import (
	"falcon/internal/cpu"
	"falcon/internal/overlay"
	"falcon/internal/proto"
	"falcon/internal/skb"
)

// onData runs in softirq context on the receiver when a data segment (or
// a GRO super-segment) reaches tcp_v4_rcv. It reassembles the byte
// stream, delivers in-order data to the socket, and emits ACKs: delayed
// for in-order arrivals, immediate duplicates for out-of-order ones.
func (c *Conn) onData(core *cpu.Core, s *skb.SKB, f *proto.Frame, done func()) {
	if c.closed {
		s.Stage("drop:tcp-closed")
		s.Free()
		done()
		return
	}
	// Reconstruct the 64-bit stream offset from the 32-bit header field
	// (transfer volumes in the experiments stay below 2^32, so the low
	// bits identify the segment uniquely).
	seq := uint64(f.TCP.Seq)
	segLen := uint64(len(f.Payload))

	switch {
	case seq == c.rcvNxt:
		// The socket owns s once delivered; read Segs first.
		segs := s.Segs
		c.rcvNxt += segLen
		c.deliver(core, s, segLen)
		// Drain any buffered continuation.
		for {
			nxt, ok := c.oooSegs[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.oooSegs, c.rcvNxt)
			nf, err := nxt.Frame()
			if err != nil {
				break
			}
			c.rcvNxt += uint64(len(nf.Payload))
			c.deliver(core, nxt, uint64(len(nf.Payload)))
		}
		c.ackEvery += segs
		if c.ackEvery >= 2 {
			c.sendAck(core, false)
		} else {
			c.armDelayedAck(core)
		}
	case seq > c.rcvNxt:
		// Out of order: buffer and signal the gap with a duplicate ACK.
		if _, dup := c.oooSegs[seq]; !dup {
			c.oooSegs[seq] = s
		} else {
			s.Stage("drop:tcp-dup")
			s.Free()
		}
		c.sendAck(core, true)
	default:
		// Duplicate of already-received data (spurious retransmit):
		// re-ACK so the sender advances.
		s.Stage("drop:tcp-dup")
		s.Free()
		c.sendAck(core, true)
	}
	done()
}

// deliver hands an in-order segment to the receiver socket. skb.Seq is
// rewritten to the stream offset so per-flow ordering checks hold.
func (c *Conn) deliver(core *cpu.Core, s *skb.SKB, payload uint64) {
	s.FlowID = c.cfg.FlowID
	s.Seq = c.rcvNxt
	c.SegsDelivered.Add(uint64(s.Segs))
	c.BytesAssembled.Add(payload)
	c.sock.Deliver(core, s)
}

// armDelayedAck schedules a flush ACK so a lone segment is still
// acknowledged promptly (the kernel's delayed-ACK timer).
func (c *Conn) armDelayedAck(core *cpu.Core) {
	if c.ackTimer.Pending() {
		return
	}
	coreID := core.ID()
	c.ackTimer = c.e.After(delayedAckTimeout, func() {
		if c.ackEvery > 0 && !c.closed {
			c.sendAck(c.cfg.ReceiverHost.M.Core(coreID), false)
		}
	})
}

// sendAck emits a cumulative ACK for rcvNxt from softirq context on the
// receiver, traversing the full (overlay) transmit path back to the
// sender.
func (c *Conn) sendAck(core *cpu.Core, immediate bool) {
	c.ackEvery = 0
	c.ackTimer.Stop()
	c.AcksSent.Inc()
	hdr := proto.TCPHdr{
		SrcPort: c.cfg.DstPort,
		DstPort: c.cfg.SrcPort,
		Seq:     0,
		Ack:     uint32(c.rcvNxt),
		Flags:   proto.TCPAck,
		Window:  65535,
	}
	c.cfg.ReceiverHost.SendTCP(overlay.SendParams{
		From:        c.cfg.ReceiverCtr,
		DstIP:       c.srcIP,
		Payload:     0,
		Core:        core.ID(),
		FlowID:      c.cfg.FlowID | 1<<63, // ack stream, distinct flow id
		FromSoftirq: true,
	}, hdr)
}

// onAck runs in softirq context on the sender when an ACK returns.
// Congestion control follows Reno: slow start below ssthresh, additive
// increase above it, fast retransmit + window halving on the third
// duplicate ACK.
func (c *Conn) onAck(core *cpu.Core, s *skb.SKB, f *proto.Frame, done func()) {
	if c.closed {
		s.Stage("drop:tcp-closed")
		s.Free()
		done()
		return
	}
	ack := c.reconstructAck(uint64(f.TCP.Ack))
	s.Stage("tcp-ack")
	s.Free() // pure ACK: nothing downstream holds the frame
	switch {
	case ack > c.sndUna:
		c.sndUna = ack
		c.dupAcks = 0
		if c.sndUna > c.sndNxt {
			// A pre-rewind transmission was acknowledged after an RTO
			// rolled sndNxt back: the receiver already has that data.
			c.sndNxt = c.sndUna
		}
		if c.inFastRec {
			if ack >= c.recover {
				c.inFastRec = false
				c.cwnd = c.ssthresh
			} else {
				// NewReno partial ACK: the window held more than one
				// hole; retransmit the next one immediately instead of
				// waiting out an RTO.
				c.transmit(c.sndUna, true, nil)
			}
		}
		if !c.inFastRec {
			if c.cwnd < c.ssthresh {
				c.cwnd++ // slow start: +1 segment per ACK
			} else {
				c.cwnd += 1 / c.cwnd // congestion avoidance
			}
			if c.cwnd > float64(c.cfg.MaxCwnd) {
				c.cwnd = float64(c.cfg.MaxCwnd)
			}
		}
		if c.sndUna == c.sndNxt {
			c.rtoTimer.Stop() // everything acknowledged
		} else if c.sndUna < c.sndNxt {
			c.armRTO()
		}
		c.updateRTT(ack)
		c.trySend()
	case ack == c.sndUna && c.sndNxt > c.sndUna:
		c.dupAcks++
		if c.dupAcks == dupAckThreshold && !c.inFastRec {
			// Fast retransmit: resend the missing segment, halve the
			// window, and remember the recovery point.
			c.inFastRec = true
			c.recover = c.sndNxt
			c.ssthresh = maxf(c.cwnd/2, 2)
			c.cwnd = c.ssthresh
			c.FastRetrans.Inc()
			c.transmit(c.sndUna, true, nil)
		}
	}
	// The pure-ACK processing cost was already charged by deliverL4's
	// tcp_v4_rcv step.
	done()
}

// reconstructAck lifts a 32-bit cumulative ACK into the 64-bit stream
// space around sndUna.
func (c *Conn) reconstructAck(ack32 uint64) uint64 {
	base := c.sndUna &^ 0xFFFFFFFF
	cand := base | ack32
	// Choose the candidate closest to sndUna that is plausible.
	if cand+1<<31 < c.sndUna {
		cand += 1 << 32
	}
	return cand
}
