package transport

import (
	"testing"

	"falcon/internal/devices"
	"falcon/internal/faults"
	"falcon/internal/sim"
)

// RTO clamping and backoff coverage, driven through chaos-plan loss
// bursts rather than static link state: the timer must double per
// timeout, clamp to [MinRTO, MaxRTO], and re-converge from a fresh
// RTT sample once ACKs flow again.

func TestRTOBackoffDoublesAndClampsAtMax(t *testing.T) {
	b := newBed(t, 100*devices.Gbps, 0)
	c := dialOverlay(t, b, 1024)
	// Total blackout from the start: no data segment ever arrives, so
	// recovery is pure RTO backoff from DefaultRTO.
	faults.NewInjector(b.e).Install(faults.Plan{Items: []faults.Item{
		{At: 0, For: 10 * sim.Second,
			Fault: &faults.LinkLossBurst{Link: b.client.LinkTo(serverIP), Rate: 1.0}},
	}})
	c.Send(1)
	b.e.RunUntil(5 * sim.Second)

	if c.rto != MaxRTO {
		t.Fatalf("rto = %v after sustained blackout, want clamp at %v", c.rto, MaxRTO)
	}
	// Exponential schedule: timeouts at 10,30,70,150,310,630,1270ms and
	// then every MaxRTO — ~10 in 5s. A linear (non-doubling) timer would
	// fire hundreds of times.
	if n := c.Timeouts.Value(); n < 8 || n > 12 {
		t.Fatalf("timeouts = %d in 5s, want ~10 (exponential backoff)", n)
	}
	if c.Socket().Delivered.Value() != 0 {
		t.Fatal("data delivered through a 100% lossy link")
	}
}

func TestRTOMinClampOnFastPath(t *testing.T) {
	// On a microsecond-RTT link srtt+4*rttvar is far below MinRTO: the
	// recomputed timer must clamp up, never dip below the floor.
	b := newBed(t, 100*devices.Gbps, 0)
	c := dialOverlay(t, b, 1024)
	c.Send(50)
	b.e.RunUntil(50 * sim.Millisecond)
	if c.Socket().Delivered.Value() != 50 {
		t.Fatalf("delivered %d/50", c.Socket().Delivered.Value())
	}
	if c.SRTT() <= 0 {
		t.Fatal("no RTT sample taken")
	}
	if c.rto != MinRTO {
		t.Fatalf("rto = %v on fast path, want MinRTO %v", c.rto, MinRTO)
	}
}

func TestRTOResetsAfterLossBurstClears(t *testing.T) {
	// A mid-stream blackout escalates the timer; once the burst clears,
	// the next ACK's RTT sample must collapse it back to the floor and
	// the transfer must finish.
	b := newBed(t, 100*devices.Gbps, 0)
	c := dialOverlay(t, b, 1024)
	faults.NewInjector(b.e).Install(faults.Plan{Items: []faults.Item{
		{At: 5 * sim.Millisecond, For: 40 * sim.Millisecond,
			Fault: &faults.LinkLossBurst{Link: b.client.LinkTo(serverIP), Rate: 1.0}},
	}})
	c.StartContinuous()

	b.e.RunUntil(40 * sim.Millisecond)
	if c.Timeouts.Value() == 0 {
		t.Fatal("blackout triggered no timeouts")
	}
	escalated := c.rto
	if escalated <= DefaultRTO {
		t.Fatalf("rto = %v mid-blackout, want escalated above %v", escalated, DefaultRTO)
	}

	b.e.RunUntil(200 * sim.Millisecond)
	if c.rto != MinRTO {
		t.Fatalf("rto = %v after recovery, want reset to MinRTO %v", c.rto, MinRTO)
	}
	if c.rcvNxt != c.BytesAssembled.Value() || c.rcvNxt == 0 {
		t.Fatalf("stream state after recovery: rcvNxt=%d assembled=%d",
			c.rcvNxt, c.BytesAssembled.Value())
	}
	if c.Socket().OrderViols != 0 {
		t.Fatal("app saw reordering across the burst")
	}
}
