package transport

import (
	"testing"

	"falcon/internal/devices"
	"falcon/internal/faults"
	"falcon/internal/sim"
)

// faultBed builds a testbed whose client→server link has injected
// impairments.
func faultBed(t *testing.T, seed uint64, loss float64, jitter sim.Time) *bed {
	t.Helper()
	b := newBed(t, 100*devices.Gbps, 0)
	l := b.client.LinkTo(serverIP)
	l.LossRate = loss
	l.Jitter = jitter
	return b
}

func TestTCPSurvivesInjectedLoss(t *testing.T) {
	b := faultBed(t, 1, 0.02, 0)
	c := dialOverlay(t, b, 4096)
	c.StartContinuous()
	b.e.RunUntil(150 * sim.Millisecond)

	if c.Retransmits.Value() == 0 && c.Timeouts.Value() == 0 {
		t.Fatalf("2%% loss triggered no recovery (link lost %d)",
			b.client.LinkTo(serverIP).Lost.Value())
	}
	if c.rcvNxt != c.BytesAssembled.Value() {
		t.Fatalf("stream gap under loss: rcvNxt=%d assembled=%d",
			c.rcvNxt, c.BytesAssembled.Value())
	}
	if c.Socket().OrderViols != 0 {
		t.Fatal("app saw out-of-order data under loss")
	}
	if c.BytesAssembled.Value() < 1<<20 {
		t.Fatalf("little progress under 2%% loss: %d bytes", c.BytesAssembled.Value())
	}
}

func TestTCPSurvivesJitter(t *testing.T) {
	b := faultBed(t, 1, 0, 200*sim.Microsecond)
	c := dialOverlay(t, b, 4096)
	c.Send(200)
	b.e.RunUntil(200 * sim.Millisecond)
	if c.Socket().Delivered.Value() != 200 {
		t.Fatalf("delivered %d of 200 under jitter", c.Socket().Delivered.Value())
	}
	if c.rcvNxt != 200*4096 {
		t.Fatalf("rcvNxt = %d", c.rcvNxt)
	}
}

func TestTCPLossSweepProperty(t *testing.T) {
	// Property: at any loss rate, the delivered byte stream is exactly
	// contiguous (rcvNxt == assembled bytes) and the application never
	// observes reordering.
	if testing.Short() {
		t.Skip("slow")
	}
	for _, loss := range []float64{0.001, 0.01, 0.05, 0.15} {
		for _, seed := range []uint64{1, 2} {
			b := faultBed(t, seed, loss, 50*sim.Microsecond)
			c := dialOverlay(t, b, 2048)
			c.StartContinuous()
			b.e.RunUntil(120 * sim.Millisecond)
			if c.rcvNxt != c.BytesAssembled.Value() {
				t.Fatalf("loss=%.3f seed=%d: gap rcvNxt=%d assembled=%d",
					loss, seed, c.rcvNxt, c.BytesAssembled.Value())
			}
			if c.Socket().OrderViols != 0 {
				t.Fatalf("loss=%.3f seed=%d: order violation", loss, seed)
			}
			if c.rcvNxt == 0 {
				t.Fatalf("loss=%.3f seed=%d: no progress", loss, seed)
			}
			c.Close()
		}
	}
}

func TestTCPRetransmitsThroughHostCrash(t *testing.T) {
	// The receiving host dies mid-transfer with segments in its rings and
	// reboots 5ms later. Everything the corpse destroyed is counted in
	// its crash bucket, and the sender's RTO (10ms — the first timeout
	// fires after the reboot) must carry the stream across the blackout:
	// the full transfer completes, contiguous, with no reordering.
	b := newBed(t, 100*devices.Gbps, 0)
	c := dialOverlay(t, b, 4096)
	const msgs = 800
	c.Send(msgs)
	faults.NewInjector(b.e).Install(faults.Single(
		sim.Millisecond, 5*sim.Millisecond, &faults.HostCrash{Host: b.server}))
	b.e.RunUntil(300 * sim.Millisecond)

	if b.server.CrashDrops.Value() == 0 {
		t.Fatal("crash destroyed no packets — the blackout window missed the transfer")
	}
	if c.Timeouts.Value() == 0 && c.Retransmits.Value() == 0 {
		t.Fatal("blackout triggered no retransmission")
	}
	if got := c.Socket().Delivered.Value(); got != msgs {
		t.Fatalf("delivered %d of %d messages across the crash", got, msgs)
	}
	if c.rcvNxt != msgs*4096 {
		t.Fatalf("rcvNxt = %d, want %d", c.rcvNxt, msgs*4096)
	}
	if c.rcvNxt != c.BytesAssembled.Value() {
		t.Fatalf("stream gap after crash: rcvNxt=%d assembled=%d", c.rcvNxt, c.BytesAssembled.Value())
	}
	if c.Socket().OrderViols != 0 {
		t.Fatal("app saw out-of-order data across the crash")
	}
}

func TestTCPGoodputDegradesWithLoss(t *testing.T) {
	run := func(loss float64) uint64 {
		b := faultBed(t, 1, loss, 0)
		c := dialOverlay(t, b, 4096)
		c.StartContinuous()
		b.e.RunUntil(100 * sim.Millisecond)
		return c.BytesAssembled.Value()
	}
	clean := run(0)
	lossy := run(0.05)
	if lossy >= clean {
		t.Fatalf("5%% loss did not reduce goodput: %d vs %d", lossy, clean)
	}
}
