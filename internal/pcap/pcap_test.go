package pcap

import (
	"bytes"
	"encoding/binary"
	"testing"

	"falcon/internal/devices"
	"falcon/internal/proto"
	"falcon/internal/sim"
	"falcon/internal/skb"
)

func TestWriterHeader(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, 0); err != nil {
		t.Fatal(err)
	}
	h := buf.Bytes()
	if len(h) != 24 {
		t.Fatalf("header len = %d", len(h))
	}
	if binary.LittleEndian.Uint32(h[0:4]) != magicNumber {
		t.Fatal("bad magic")
	}
	if binary.LittleEndian.Uint32(h[20:24]) != linkTypeEth {
		t.Fatal("bad link type")
	}
	if binary.LittleEndian.Uint32(h[16:20]) != maxSnapLen {
		t.Fatal("default snaplen not applied")
	}
}

func TestWriteFrameRecord(t *testing.T) {
	var buf bytes.Buffer
	pw, _ := NewWriter(&buf, 0)
	frame := proto.BuildUDPFrame(proto.MACFromUint64(1), proto.MACFromUint64(2),
		proto.IP4(10, 0, 0, 1), proto.IP4(10, 0, 0, 2), 1, 2, 0, []byte("payload"))
	at := 3*sim.Second + 250*sim.Millisecond
	if err := pw.WriteFrame(at, frame); err != nil {
		t.Fatal(err)
	}
	if pw.Packets() != 1 {
		t.Fatalf("packets = %d", pw.Packets())
	}
	rec := buf.Bytes()[24:]
	if binary.LittleEndian.Uint32(rec[0:4]) != 3 {
		t.Fatalf("ts_sec = %d", binary.LittleEndian.Uint32(rec[0:4]))
	}
	if binary.LittleEndian.Uint32(rec[4:8]) != 250000 {
		t.Fatalf("ts_usec = %d", binary.LittleEndian.Uint32(rec[4:8]))
	}
	if int(binary.LittleEndian.Uint32(rec[8:12])) != len(frame) {
		t.Fatal("caplen mismatch")
	}
	if !bytes.Equal(rec[16:16+len(frame)], frame) {
		t.Fatal("frame bytes corrupted")
	}
}

func TestSnapLenTruncates(t *testing.T) {
	var buf bytes.Buffer
	pw, _ := NewWriter(&buf, 64)
	frame := make([]byte, 512)
	if err := pw.WriteFrame(0, frame); err != nil {
		t.Fatal(err)
	}
	rec := buf.Bytes()[24:]
	if binary.LittleEndian.Uint32(rec[8:12]) != 64 {
		t.Fatal("caplen not truncated")
	}
	if binary.LittleEndian.Uint32(rec[12:16]) != 512 {
		t.Fatal("origlen lost")
	}
	if len(rec) != 16+64 {
		t.Fatalf("record size = %d", len(rec))
	}
}

func TestReaderRoundTrip(t *testing.T) {
	// Write a small capture, read it back, re-write the records: both
	// byte streams must be identical (timestamps are µs-quantized by the
	// format, so write→read→write is exact even though sim.Time is ns).
	var buf bytes.Buffer
	pw, _ := NewWriter(&buf, 0)
	var frames [][]byte
	for i := 0; i < 8; i++ {
		frame := proto.BuildUDPFrame(proto.MACFromUint64(1), proto.MACFromUint64(2),
			proto.IP4(10, 0, 0, 1), proto.IP4(10, 0, 0, 2),
			uint16(4000+i), uint16(5000+i%3), uint16(i), make([]byte, 16+i*32))
		frames = append(frames, frame)
		at := sim.Time(i)*137*sim.Microsecond + sim.Second
		if err := pw.WriteFrame(at, frame); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(frames) {
		t.Fatalf("read %d records, wrote %d", len(recs), len(frames))
	}
	var out bytes.Buffer
	pw2, _ := NewWriter(&out, 0)
	for i, rec := range recs {
		if !bytes.Equal(rec.Frame, frames[i]) {
			t.Fatalf("record %d frame bytes differ", i)
		}
		want := (sim.Second + sim.Time(i)*137*sim.Microsecond) / sim.Microsecond * sim.Microsecond
		if rec.T != want {
			t.Fatalf("record %d time = %d, want %d", i, rec.T, want)
		}
		if err := pw2.WriteFrame(rec.T, rec.Frame); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out.Bytes(), buf.Bytes()) {
		t.Fatal("write→read→write capture bytes differ")
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	bad := make([]byte, 24)
	binary.LittleEndian.PutUint32(bad[0:4], 0xdeadbeef)
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	var buf bytes.Buffer
	pw, _ := NewWriter(&buf, 0)
	_ = pw.WriteFrame(0, make([]byte, 100))
	// Truncate mid-record: Next must report an error, not clean EOF.
	trunc := buf.Bytes()[:24+16+10]
	if _, err := ReadAll(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated record read as clean EOF")
	}
}

func TestTapRecordsLinkTraffic(t *testing.T) {
	e := sim.New(1)
	l := devices.NewLink(e, 10*devices.Gbps, 0)
	delivered := 0
	l.Deliver = func(s *skb.SKB) { delivered++ }

	var buf bytes.Buffer
	pw, _ := NewWriter(&buf, 0)
	Tap(l, pw)

	for i := 0; i < 5; i++ {
		frame := proto.BuildUDPFrame(proto.MACFromUint64(1), proto.MACFromUint64(2),
			proto.IP4(10, 0, 0, 1), proto.IP4(10, 0, 0, 2), 100, 200, uint16(i), []byte("x"))
		l.Send(skb.New(frame))
	}
	e.Run()

	if delivered != 5 {
		t.Fatalf("tap broke delivery: %d", delivered)
	}
	if pw.Packets() != 5 {
		t.Fatalf("captured %d packets", pw.Packets())
	}
	// The capture must contain parseable frames at the right offsets.
	data := buf.Bytes()[24:]
	for i := 0; i < 5; i++ {
		caplen := int(binary.LittleEndian.Uint32(data[8:12]))
		frame := data[16 : 16+caplen]
		if _, err := proto.ParseFrame(frame); err != nil {
			t.Fatalf("captured frame %d unparsable: %v", i, err)
		}
		data = data[16+caplen:]
	}
	if len(data) != 0 {
		t.Fatal("trailing bytes in capture")
	}
}
