// Package pcap writes simulated traffic as standard pcap capture files
// (readable by tcpdump/Wireshark). Because the simulator builds real
// frame bytes — Ethernet, IPv4 with checksums, UDP/TCP, VXLAN — captures
// taken on the virtual wire dissect exactly like captures from a
// physical testbed, which makes datapath debugging and demonstration
// concrete: `tcpdump -r run.pcap 'udp port 4789'` shows the overlay's
// encapsulated traffic.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"

	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/skb"
)

// pcap file constants (classic libpcap format, microsecond timestamps).
const (
	magicNumber  = 0xa1b2c3d4
	versionMajor = 2
	versionMinor = 4
	linkTypeEth  = 1
	maxSnapLen   = 65535
)

// Writer streams pcap records to an io.Writer.
type Writer struct {
	w       io.Writer
	snapLen int
	packets uint64
}

// NewWriter writes the pcap global header and returns the writer.
// snapLen of 0 uses the maximum.
func NewWriter(w io.Writer, snapLen int) (*Writer, error) {
	if snapLen <= 0 || snapLen > maxSnapLen {
		snapLen = maxSnapLen
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicNumber)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone, sigfigs: zero.
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(snapLen))
	binary.LittleEndian.PutUint32(hdr[20:24], linkTypeEth)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: header: %w", err)
	}
	return &Writer{w: w, snapLen: snapLen}, nil
}

// Packets returns how many records have been written.
func (pw *Writer) Packets() uint64 { return pw.packets }

// WriteFrame records one frame at virtual time t.
func (pw *Writer) WriteFrame(t sim.Time, frame []byte) error {
	capLen := len(frame)
	if capLen > pw.snapLen {
		capLen = pw.snapLen
	}
	var rec [16]byte
	usec := int64(t) / 1000
	binary.LittleEndian.PutUint32(rec[0:4], uint32(usec/1e6))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(usec%1e6))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(capLen))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	if _, err := pw.w.Write(rec[:]); err != nil {
		return fmt.Errorf("pcap: record header: %w", err)
	}
	if _, err := pw.w.Write(frame[:capLen]); err != nil {
		return fmt.Errorf("pcap: record body: %w", err)
	}
	pw.packets++
	return nil
}

// Tap attaches the writer to a link: every frame put on the wire is
// recorded at its transmit time. Chain-safe: the link's existing
// Deliver callback is preserved.
func Tap(l *devices.Link, pw *Writer) {
	next := l.Deliver
	l.Deliver = func(s *skb.SKB) {
		// Record at delivery time (the far end of the wire).
		_ = pw.WriteFrame(l.E.Now(), s.Data)
		if next != nil {
			next(s)
		}
	}
}
