// Package pcap writes simulated traffic as standard pcap capture files
// (readable by tcpdump/Wireshark). Because the simulator builds real
// frame bytes — Ethernet, IPv4 with checksums, UDP/TCP, VXLAN — captures
// taken on the virtual wire dissect exactly like captures from a
// physical testbed, which makes datapath debugging and demonstration
// concrete: `tcpdump -r run.pcap 'udp port 4789'` shows the overlay's
// encapsulated traffic.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"

	"falcon/internal/devices"
	"falcon/internal/sim"
	"falcon/internal/skb"
)

// pcap file constants (classic libpcap format, microsecond timestamps).
const (
	magicNumber  = 0xa1b2c3d4
	versionMajor = 2
	versionMinor = 4
	linkTypeEth  = 1
	maxSnapLen   = 65535
)

// Writer streams pcap records to an io.Writer.
type Writer struct {
	w       io.Writer
	snapLen int
	packets uint64
}

// NewWriter writes the pcap global header and returns the writer.
// snapLen of 0 uses the maximum.
func NewWriter(w io.Writer, snapLen int) (*Writer, error) {
	if snapLen <= 0 || snapLen > maxSnapLen {
		snapLen = maxSnapLen
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicNumber)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone, sigfigs: zero.
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(snapLen))
	binary.LittleEndian.PutUint32(hdr[20:24], linkTypeEth)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: header: %w", err)
	}
	return &Writer{w: w, snapLen: snapLen}, nil
}

// Packets returns how many records have been written.
func (pw *Writer) Packets() uint64 { return pw.packets }

// WriteFrame records one frame at virtual time t.
func (pw *Writer) WriteFrame(t sim.Time, frame []byte) error {
	capLen := len(frame)
	if capLen > pw.snapLen {
		capLen = pw.snapLen
	}
	var rec [16]byte
	usec := int64(t) / 1000
	binary.LittleEndian.PutUint32(rec[0:4], uint32(usec/1e6))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(usec%1e6))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(capLen))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	if _, err := pw.w.Write(rec[:]); err != nil {
		return fmt.Errorf("pcap: record header: %w", err)
	}
	if _, err := pw.w.Write(frame[:capLen]); err != nil {
		return fmt.Errorf("pcap: record body: %w", err)
	}
	pw.packets++
	return nil
}

// Record is one captured frame: its capture timestamp (microsecond
// resolution, the format's native unit) and the frame bytes.
type Record struct {
	T     sim.Time
	Frame []byte
}

// Reader streams records from a classic-format pcap capture.
type Reader struct {
	r       io.Reader
	packets uint64
}

// NewReader validates the pcap global header and returns the reader.
// Only the simulator's own dialect is accepted: classic little-endian
// magic, version 2.4, Ethernet link type, microsecond timestamps.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: global header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != magicNumber {
		return nil, fmt.Errorf("pcap: bad magic %#08x (want %#08x)", m, uint32(magicNumber))
	}
	major := binary.LittleEndian.Uint16(hdr[4:6])
	minor := binary.LittleEndian.Uint16(hdr[6:8])
	if major != versionMajor || minor != versionMinor {
		return nil, fmt.Errorf("pcap: unsupported version %d.%d", major, minor)
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != linkTypeEth {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	return &Reader{r: r}, nil
}

// Packets returns how many records have been read.
func (pr *Reader) Packets() uint64 { return pr.packets }

// Next returns the next record, or io.EOF at a clean end of capture.
// A capture truncated mid-record is an error, not EOF.
func (pr *Reader) Next() (Record, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("pcap: record header: %w", err)
	}
	secs := binary.LittleEndian.Uint32(hdr[0:4])
	frac := binary.LittleEndian.Uint32(hdr[4:8])
	capLen := binary.LittleEndian.Uint32(hdr[8:12])
	if capLen > maxSnapLen {
		return Record{}, fmt.Errorf("pcap: record length %d exceeds snap limit", capLen)
	}
	frame := make([]byte, capLen)
	if _, err := io.ReadFull(pr.r, frame); err != nil {
		return Record{}, fmt.Errorf("pcap: record body: %w", err)
	}
	pr.packets++
	t := sim.Time(int64(secs)*1e6+int64(frac)) * sim.Microsecond
	return Record{T: t, Frame: frame}, nil
}

// ReadAll drains the capture into memory.
func ReadAll(r io.Reader) ([]Record, error) {
	pr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var recs []Record
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
}

// Tap attaches the writer to a link: every frame put on the wire is
// recorded at its transmit time. Chain-safe: the link's existing
// Deliver callback is preserved.
func Tap(l *devices.Link, pw *Writer) {
	next := l.Deliver
	l.Deliver = func(s *skb.SKB) {
		// Record at delivery time (the far end of the wire).
		_ = pw.WriteFrame(l.E.Now(), s.Data)
		if next != nil {
			next(s)
		}
	}
}
