package cpu

import (
	"testing"

	"falcon/internal/costmodel"
	"falcon/internal/sim"
	"falcon/internal/stats"
)

func newTestMachine(n int) (*sim.Engine, *Machine) {
	e := sim.New(1)
	m := NewMachine(e, costmodel.Kernel419(), n, sim.Millisecond)
	return e, m
}

func TestMachineBasics(t *testing.T) {
	_, m := newTestMachine(4)
	if m.NumCores() != 4 {
		t.Fatalf("cores = %d", m.NumCores())
	}
	if m.Core(2).ID() != 2 {
		t.Fatal("core id mismatch")
	}
	if m.Core(0).Machine() != m {
		t.Fatal("machine backref wrong")
	}
}

func TestMachineCoreOutOfRangePanics(t *testing.T) {
	_, m := newTestMachine(2)
	defer func() {
		if recover() == nil {
			t.Error("Core(9) did not panic")
		}
	}()
	m.Core(9)
}

func TestNewMachineZeroCoresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero cores did not panic")
		}
	}()
	NewMachine(sim.New(1), costmodel.Kernel419(), 0, sim.Millisecond)
}

func TestCoreExecutesAndCharges(t *testing.T) {
	e, m := newTestMachine(1)
	done := false
	m.Core(0).Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 500, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("work item did not run")
	}
	if e.Now() != 500 {
		t.Fatalf("completion at %v, want 500", e.Now())
	}
	if m.Acct.Busy(0, stats.CtxSoftIRQ) != 500 {
		t.Fatalf("charged %d", m.Acct.Busy(0, stats.CtxSoftIRQ))
	}
	if m.Prof.Time(costmodel.FnBridge) != 500 {
		t.Fatal("profile not charged")
	}
}

func TestCoreSerializesWork(t *testing.T) {
	e, m := newTestMachine(1)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		m.Core(0).Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 100, func() {
			order = append(order, i)
		})
	}
	e.Run()
	if e.Now() != 300 {
		t.Fatalf("three 100ns items finished at %v, want 300 (serialized)", e.Now())
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestCoresRunInParallel(t *testing.T) {
	e, m := newTestMachine(2)
	m.Core(0).Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 100, nil)
	m.Core(1).Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 100, nil)
	e.Run()
	if e.Now() != 100 {
		t.Fatalf("parallel items finished at %v, want 100", e.Now())
	}
}

func TestHardIRQPriority(t *testing.T) {
	e, m := newTestMachine(1)
	var order []string
	c := m.Core(0)
	// Submit a long softirq first; while it runs, queue a task then a
	// hardirq. The hardirq must run before the task.
	c.Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 100, func() { order = append(order, "soft") })
	c.Submit(stats.CtxTask, costmodel.FnAppWork, 100, func() { order = append(order, "task") })
	c.Submit(stats.CtxHardIRQ, costmodel.FnHardIRQ, 100, func() { order = append(order, "hard") })
	e.Run()
	want := []string{"soft", "hard", "task"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSoftirqBeforeTask(t *testing.T) {
	e, m := newTestMachine(1)
	var order []string
	c := m.Core(0)
	c.Submit(stats.CtxHardIRQ, costmodel.FnHardIRQ, 10, func() {
		c.Submit(stats.CtxTask, costmodel.FnAppWork, 10, func() { order = append(order, "task") })
		c.Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 10, func() { order = append(order, "soft") })
	})
	e.Run()
	if order[0] != "soft" || order[1] != "task" {
		t.Fatalf("order = %v", order)
	}
}

func TestKsoftirqdAntiStarvation(t *testing.T) {
	e, m := newTestMachine(1)
	c := m.Core(0)
	taskRan := false
	// Queue one task, then a continuous stream of softirqs that always
	// resubmit themselves. Without the anti-starvation rule the task
	// would never run.
	c.Submit(stats.CtxTask, costmodel.FnAppWork, 10, func() { taskRan = true })
	var resubmit func()
	count := 0
	resubmit = func() {
		count++
		if count < 100 {
			c.Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 10, resubmit)
		}
	}
	c.Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 10, resubmit)
	e.Run()
	if !taskRan {
		t.Fatal("task starved by continuous softirq stream")
	}
}

func TestCoreIdleAndQueueLen(t *testing.T) {
	e, m := newTestMachine(1)
	c := m.Core(0)
	if !c.Idle() {
		t.Fatal("fresh core not idle")
	}
	c.Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 100, nil)
	c.Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 100, nil)
	if c.Idle() {
		t.Fatal("busy core reported idle")
	}
	if c.QueueLen(stats.CtxSoftIRQ) != 1 { // one running, one queued
		t.Fatalf("queue len = %d", c.QueueLen(stats.CtxSoftIRQ))
	}
	e.Run()
	if !c.Idle() {
		t.Fatal("drained core not idle")
	}
}

func TestExecUsesModelCost(t *testing.T) {
	e, m := newTestMachine(1)
	m.Core(0).Exec(stats.CtxSoftIRQ, costmodel.FnBridge, 0, nil)
	e.Run()
	want := m.Model.Cost(costmodel.FnBridge, 0)
	if e.Now() != want {
		t.Fatalf("exec took %v, want %v", e.Now(), want)
	}
}

func TestTickerUpdatesLoad(t *testing.T) {
	e, m := newTestMachine(2)
	m.StartTicker()
	// Keep core 0 ~100% busy with softirq work for 10ms.
	var feed func()
	feed = func() {
		if e.Now() < 10*sim.Millisecond {
			m.Core(0).Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 100*sim.Microsecond, feed)
		}
	}
	feed()
	e.RunUntil(10 * sim.Millisecond)
	m.StopTicker()
	if l := m.Load.Load(0); l < 0.9 {
		t.Fatalf("core 0 load = %v, want ~1", l)
	}
	if l := m.Load.Load(1); l != 0 {
		t.Fatalf("core 1 load = %v, want 0", l)
	}
	if avg := m.Load.SystemAvg(); avg < 0.4 || avg > 0.6 {
		t.Fatalf("system avg = %v, want ~0.5", avg)
	}
	if m.IRQ.Total(stats.IRQTimer) == 0 {
		t.Fatal("no timer interrupts counted")
	}
}

func TestOnTickCallback(t *testing.T) {
	e, m := newTestMachine(1)
	ticks := 0
	m.OnTick(func(now sim.Time) { ticks++ })
	m.StartTicker()
	e.RunUntil(5 * sim.Millisecond)
	m.StopTicker()
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	// StartTicker twice must not double-tick.
	m.StartTicker()
	m.StartTicker()
	e.RunUntil(10 * sim.Millisecond)
	m.StopTicker()
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
}

func TestResetMeasurement(t *testing.T) {
	e, m := newTestMachine(1)
	m.Core(0).Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 100, nil)
	m.IRQ.Inc(0, stats.IRQNetRX)
	e.Run()
	m.ResetMeasurement()
	if m.Acct.TotalBusy(0) != 0 || m.IRQ.Total(stats.IRQNetRX) != 0 || m.Prof.Total() != 0 {
		t.Fatal("reset incomplete")
	}
}
