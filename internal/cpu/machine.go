// Package cpu models a multi-core machine executing the kernel datapath:
// cores with prioritized hardirq/softirq/task contexts, non-preemptive
// work items, ksoftirqd-style anti-starvation, per-core accounting, and
// the periodic timer tick that refreshes the system load estimate
// Falcon's Algorithm 1 reads.
package cpu

import (
	"fmt"

	"falcon/internal/costmodel"
	"falcon/internal/sim"
	"falcon/internal/stats"
	"falcon/internal/trace"
)

// ksoftirqdBatch bounds consecutive softirq items run while tasks are
// waiting on the same core. After this many, one task item is allowed to
// run — the simulation analogue of softirq work being deferred to
// ksoftirqd under sustained load so user threads are not fully starved.
const ksoftirqdBatch = 16

// Machine is a simulated multi-core host.
type Machine struct {
	E     *sim.Engine
	Model *costmodel.Model
	Acct  *stats.CPUAccount
	IRQ   *stats.IRQCounters
	Load  *stats.LoadMeter
	Prof  *trace.Profile

	cores      []*Core
	tickPeriod sim.Time
	onTick     []func(now sim.Time)
	ticker     sim.Timer
}

// NewMachine builds a machine with n cores on engine e using the given
// cost model. tickPeriod is the timer-tick interval used for load
// estimation (the kernel's do_timer cadence; the paper samples
// /proc/stat from it).
func NewMachine(e *sim.Engine, model *costmodel.Model, n int, tickPeriod sim.Time) *Machine {
	if n <= 0 {
		panic("cpu: machine needs at least one core")
	}
	m := &Machine{
		E:          e,
		Model:      model,
		Acct:       stats.NewCPUAccount(n),
		IRQ:        stats.NewIRQCounters(n),
		Load:       stats.NewLoadMeter(n, int64(tickPeriod)),
		Prof:       trace.NewProfile(n),
		tickPeriod: tickPeriod,
	}
	m.cores = make([]*Core, n)
	for i := range m.cores {
		m.cores[i] = &Core{id: i, m: m}
	}
	return m
}

// NumCores returns the core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// Core returns core i.
func (m *Machine) Core(i int) *Core {
	if i < 0 || i >= len(m.cores) {
		panic(fmt.Sprintf("cpu: core %d out of range [0,%d)", i, len(m.cores)))
	}
	return m.cores[i]
}

// OnTick registers a callback invoked on every timer tick (after the
// load meter refresh). Falcon registers its L_avg update here.
func (m *Machine) OnTick(fn func(now sim.Time)) {
	m.onTick = append(m.onTick, fn)
}

// StartTicker begins the periodic timer tick. Each tick refreshes the
// load meter and counts a TIMER interrupt on core 0 (where the global
// timer lands).
func (m *Machine) StartTicker() {
	if m.ticker.Pending() {
		return
	}
	var tick func()
	tick = func() {
		now := m.E.Now()
		m.IRQ.Inc(0, stats.IRQTimer)
		m.Load.Tick(m.Acct, int64(now))
		for _, fn := range m.onTick {
			fn(now)
		}
		m.ticker = m.E.After(m.tickPeriod, tick)
	}
	m.ticker = m.E.After(m.tickPeriod, tick)
}

// StopTicker cancels the periodic tick (so Engine.Run can drain).
func (m *Machine) StopTicker() {
	m.ticker.Stop()
}

// ResetMeasurement clears accounting, profile and IRQ counters at the
// current time — used to discard warm-up before a measured window.
func (m *Machine) ResetMeasurement() {
	m.Acct.ResetAt(int64(m.E.Now()))
	m.IRQ.Reset()
	m.Prof.Reset()
}

// workItem is one non-preemptible slice of CPU work.
type workItem struct {
	ctx  stats.CPUContext
	fn   costmodel.Func
	cost sim.Time
	run  func() // invoked when the slice completes; may submit more work
}

// workQueue is a FIFO of work items that recycles its backing array:
// popping advances a head index instead of reslicing, and a fully
// drained queue rewinds to the front of the array. The drain-refill
// cycle of a softirq queue under load then stops allocating entirely —
// with the `q = q[1:]` idiom every drain strands the array's capacity
// behind the slice pointer and the next push reallocates from scratch
// (this was the single largest allocation site on the packet hot path).
type workQueue struct {
	items []workItem
	head  int
}

func (q *workQueue) push(it workItem) { q.items = append(q.items, it) }

func (q *workQueue) pop() workItem {
	it := q.items[q.head]
	q.items[q.head] = workItem{} // release the completion closure
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return it
}

func (q *workQueue) len() int { return len(q.items) - q.head }

// Core is one CPU. Work is executed in strict context priority
// (hardirq > softirq > task) with FIFO order within a context, except
// for the ksoftirqd anti-starvation rule.
type Core struct {
	id   int
	m    *Machine
	hard workQueue
	soft workQueue
	task workQueue
	busy bool

	softStreak int // consecutive softirq items while tasks waited

	// Fault-injection state (internal/faults). A stalled core finishes
	// its in-flight work item but starts nothing new until unstalled —
	// the simulation analogue of a core wedged by a runaway SMI/hypervisor
	// preemption. An offline core behaves the same but is additionally
	// visible to software (CPU-hotplug notification), so balancers can
	// blacklist it immediately rather than inferring sickness from
	// stalled progress.
	stalled bool
	offline bool

	// cur is the in-flight work item, held here (instead of in a per-item
	// closure) so dispatch can schedule completion with AfterArg and keep
	// the per-slice hot path allocation-free. Valid only while busy.
	cur workItem
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// Machine returns the owning machine.
func (c *Core) Machine() *Machine { return c.m }

// QueueLen returns the number of pending work items in ctx.
func (c *Core) QueueLen(ctx stats.CPUContext) int {
	switch ctx {
	case stats.CtxHardIRQ:
		return c.hard.len()
	case stats.CtxSoftIRQ:
		return c.soft.len()
	case stats.CtxTask:
		return c.task.len()
	default:
		return 0
	}
}

// Idle reports whether the core has no running or queued work.
func (c *Core) Idle() bool {
	return !c.busy && c.hard.len() == 0 && c.soft.len() == 0 && c.task.len() == 0
}

// SetStalled freezes (true) or resumes (false) the core. While stalled,
// the in-flight work item completes but no queued item starts; queues
// keep accepting work. Progress-based health trackers can detect the
// condition (queued work, no busy-time delta), which is exactly how the
// kernel's soft-lockup watchdog infers a wedged CPU.
func (c *Core) SetStalled(v bool) {
	if c.stalled == v {
		return
	}
	c.stalled = v
	if !v && !c.busy {
		c.dispatch()
	}
}

// Stalled reports whether the core is currently stalled.
func (c *Core) Stalled() bool { return c.stalled }

// SetOffline takes the core out of service (true) or returns it (false)
// — the simulation's CPU hotplug. Execution freezes exactly as in
// SetStalled, but the state is visible via Offline, modelling the
// hotplug notification real kernels broadcast.
func (c *Core) SetOffline(v bool) {
	if c.offline == v {
		return
	}
	c.offline = v
	if !v && !c.busy {
		c.dispatch()
	}
}

// Offline reports whether the core has been hot-unplugged.
func (c *Core) Offline() bool { return c.offline }

// Submit enqueues a work slice of explicit cost. done may be nil.
func (c *Core) Submit(ctx stats.CPUContext, fn costmodel.Func, cost sim.Time, done func()) {
	item := workItem{ctx: ctx, fn: fn, cost: cost, run: done}
	switch ctx {
	case stats.CtxHardIRQ:
		c.hard.push(item)
	case stats.CtxSoftIRQ:
		c.soft.push(item)
	case stats.CtxTask:
		c.task.push(item)
	default:
		panic("cpu: invalid submit context")
	}
	if !c.busy {
		c.dispatch()
	}
}

// Exec submits a slice whose cost is taken from the machine's cost model
// for fn over bytes.
func (c *Core) Exec(ctx stats.CPUContext, fn costmodel.Func, bytes int, done func()) {
	c.Submit(ctx, fn, c.m.Model.Cost(fn, bytes), done)
}

func (c *Core) next() (workItem, bool) {
	if c.hard.len() > 0 {
		return c.hard.pop(), true
	}
	// ksoftirqd rule: after a long softirq streak with tasks waiting,
	// let one task slice through.
	if c.task.len() > 0 && (c.soft.len() == 0 || c.softStreak >= ksoftirqdBatch) {
		c.softStreak = 0
		return c.task.pop(), true
	}
	if c.soft.len() > 0 {
		it := c.soft.pop()
		if c.task.len() > 0 {
			c.softStreak++
		} else {
			c.softStreak = 0
		}
		return it, true
	}
	return workItem{}, false
}

func (c *Core) dispatch() {
	if c.stalled || c.offline {
		// Frozen: leave queued work in place. SetStalled/SetOffline
		// re-enter dispatch on resume.
		c.busy = false
		return
	}
	item, ok := c.next()
	if !ok {
		c.busy = false
		return
	}
	c.busy = true
	c.cur = item
	c.m.E.AfterArg(item.cost, coreComplete, c)
}

// coreComplete finishes the core's in-flight slice: charge accounting,
// run the completion, dispatch the next item. Package-level so dispatch
// needs no per-slice closure.
func coreComplete(v any) {
	c := v.(*Core)
	item := c.cur
	c.cur = workItem{} // release the completion closure for reuse
	end := int64(c.m.E.Now())
	c.m.Acct.Charge(c.id, item.ctx, int64(item.cost), end)
	c.m.Prof.Charge(c.id, item.fn, int64(item.cost))
	if item.run != nil {
		item.run()
	}
	c.dispatch()
}
