package cpu

import (
	"testing"

	"falcon/internal/costmodel"
	"falcon/internal/stats"
)

func TestStalledCoreParksQueuedWork(t *testing.T) {
	e, m := newTestMachine(1)
	c := m.Core(0)
	c.SetStalled(true)
	if !c.Stalled() {
		t.Fatal("stall flag not visible")
	}
	ran := false
	c.Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 100, func() { ran = true })
	e.Run()
	if ran {
		t.Fatal("stalled core executed new work")
	}
	if c.QueueLen(stats.CtxSoftIRQ) == 0 {
		t.Fatal("work not parked in the queue")
	}
	// Unstalling must redispatch the parked item without a new Submit.
	c.SetStalled(false)
	e.Run()
	if !ran {
		t.Fatal("parked work did not resume after unstall")
	}
}

func TestOfflineCoreVisibleAndParked(t *testing.T) {
	e, m := newTestMachine(1)
	c := m.Core(0)
	c.SetOffline(true)
	if !c.Offline() {
		t.Fatal("offline flag not visible")
	}
	ran := false
	c.Submit(stats.CtxTask, costmodel.FnAppWork, 10, func() { ran = true })
	e.Run()
	if ran {
		t.Fatal("offline core executed work")
	}
	c.SetOffline(false)
	e.Run()
	if !ran {
		t.Fatal("work did not resume after online")
	}
}

func TestStallDoesNotPreemptInflight(t *testing.T) {
	e, m := newTestMachine(1)
	c := m.Core(0)
	var doneAt []int64
	c.Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 100, func() { doneAt = append(doneAt, int64(e.Now())) })
	c.Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 100, func() { doneAt = append(doneAt, int64(e.Now())) })
	e.At(50, func() { c.SetStalled(true) })
	e.At(500, func() { c.SetStalled(false) })
	e.Run()
	if len(doneAt) != 2 {
		t.Fatalf("completions = %d", len(doneAt))
	}
	// First item was in flight when the stall hit: completes on time
	// (non-preemptive). Second waits for the unstall.
	if doneAt[0] != 100 {
		t.Fatalf("in-flight item at %d, want 100", doneAt[0])
	}
	if doneAt[1] != 600 {
		t.Fatalf("queued item at %d, want 600", doneAt[1])
	}
}

func TestUnstallIdempotent(t *testing.T) {
	e, m := newTestMachine(1)
	c := m.Core(0)
	// Toggling state on an idle core must not panic or double-dispatch.
	c.SetStalled(true)
	c.SetStalled(false)
	c.SetStalled(false)
	ran := 0
	c.Submit(stats.CtxSoftIRQ, costmodel.FnBridge, 10, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran %d times", ran)
	}
}
