// Package costmodel is the single calibration point of the simulation:
// it assigns every kernel function in the modelled datapath a CPU cost
// (base nanoseconds per invocation plus nanoseconds per byte). All
// devices and stack layers charge cores through this table, so every
// experiment draws from one consistent calibration.
//
// Two profiles reproduce the two kernels the paper evaluates (4.19 and
// 5.4): the paper notes 5.4's sk_buff-allocation rework brought both
// improvements and regressions, which the profiles encode.
package costmodel

// Func identifies a datapath function for costing and profiling. The
// names mirror the kernel symbols in the paper's Figures 3, 6 and 8.
type Func int

// Datapath functions.
const (
	FnHardIRQ       Func = iota // pNIC_interrupt: hardirq top half
	FnNAPIPoll                  // mlx5e_napi_poll: per-poll overhead
	FnSKBAlloc                  // skb allocation + DMA unmap per packet
	FnGROReceive                // napi_gro_receive: coalescing work
	FnNetifReceive              // __netif_receive_skb: L2 demux, taps
	FnRPS                       // get_rps_cpu + enqueue_to_backlog
	FnIPRcv                     // ip_rcv: L3 validation and routing
	FnUDPRcv                    // udp_rcv: L4 demux
	FnTCPRcv                    // tcp_v4_rcv: L4 + ack/window processing
	FnVXLANRcv                  // vxlan_rcv: outer header strip (decap)
	FnGROCellPoll               // gro_cell_poll: VXLAN device NAPI poll
	FnBridge                    // br_handle_frame: FDB lookup + forward
	FnVethXmit                  // veth_xmit: cross the veth pair
	FnBacklog                   // process_backlog: per-packet poll cost
	FnSocketDeliver             // socket lookup, buffer charge, wakeup
	FnUserCopy                  // syscall + copy_to_user
	FnAppWork                   // application-level processing
	FnTxStack                   // sendmsg through container L4/L3/L2
	FnVXLANXmit                 // vxlan_xmit: encapsulation on transmit
	FnTxNIC                     // pNIC tx queue + doorbell
	FnEnqueueRemote             // enqueue_to_backlog on another CPU
	FnIPIRaise                  // smp_call IPI to signal a remote core
	FnSoftIRQEntry              // do_softirq entry/exit amortized
	FnRxCacheLookup             // RX flow-cache probe on the steering core
	FnRxCacheDeliver            // cached decap + direct socket handoff
	NumFuncs
)

var funcNames = [NumFuncs]string{
	"pNIC_interrupt",
	"mlx5e_napi_poll",
	"skb_allocation",
	"napi_gro_receive",
	"netif_receive_skb",
	"get_rps_cpu",
	"ip_rcv",
	"udp_rcv",
	"tcp_v4_rcv",
	"vxlan_rcv",
	"gro_cell_poll",
	"br_handle_frame",
	"veth_xmit",
	"process_backlog",
	"socket_deliver",
	"copy_to_user",
	"app_work",
	"tx_stack",
	"vxlan_xmit",
	"tx_nic",
	"enqueue_to_backlog",
	"ipi_raise",
	"do_softirq",
	"rx_cache_lookup",
	"rx_cache_deliver",
}

// String returns the kernel-style symbol name.
func (f Func) String() string {
	if f < 0 || f >= NumFuncs {
		return "unknown"
	}
	return funcNames[f]
}
