package costmodel

import "falcon/internal/sim"

// Entry is the cost of one function invocation: Base nanoseconds plus
// PerByte nanoseconds for every byte the invocation touches.
type Entry struct {
	Base    float64
	PerByte float64
}

// Model is a complete datapath calibration. Values are chosen so the
// *relationships* the paper reports hold (see calibration notes on each
// profile); absolute packet rates are simulator-scale, not testbed-scale.
type Model struct {
	// Name identifies the profile ("linux-4.19", "linux-5.4").
	Name string

	entries [NumFuncs]Entry

	// MigrationPenalty is charged once whenever a packet's processing
	// resumes on a different core than the previous stage ran on: the
	// cache-locality cost of Falcon's pipelining (paper Section 6.3)
	// and of RPS's initial steering hop.
	MigrationPenalty float64
}

// Cost returns the cost of invoking f over the given byte count.
func (m *Model) Cost(f Func, bytes int) sim.Time {
	e := m.entries[f]
	return sim.Time(e.Base + e.PerByte*float64(bytes))
}

// Base returns the per-invocation base cost of f.
func (m *Model) Base(f Func) sim.Time { return sim.Time(m.entries[f].Base) }

// Migration returns the cross-core cache penalty as a Time.
func (m *Model) Migration() sim.Time { return sim.Time(m.MigrationPenalty) }

// Set overrides one entry; used by calibration sweeps and ablation
// benchmarks (e.g. the locality-penalty sweep in DESIGN.md §5).
func (m *Model) Set(f Func, e Entry) { m.entries[f] = e }

// Get returns the entry for f.
func (m *Model) Get(f Func) Entry { return m.entries[f] }

// Clone returns an independent copy of the model.
func (m *Model) Clone() *Model {
	c := *m
	return &c
}

// Kernel419 returns the Linux 4.19 calibration.
//
// Calibration notes (all costs in ns; receive path of a small UDP packet):
//   - host softirq path ≈ 1.27 us/pkt, user-space receive ≈ 1.45 us/pkt:
//     the host network is bottlenecked by user-space receive (Fig. 11).
//   - overlay adds vxlan_rcv + gro_cell_poll + bridge + veth + backlog +
//     a second L3/L4 traversal ≈ 3.1 us/pkt of softirq work; serialized
//     on one core this halves single-flow packet rate vs host (Fig. 2).
//   - per-byte costs make TCP 4 KB saturate stage 1 with skb_allocation
//     and napi_gro_receive contributing ≈ 45% each (Fig. 9a).
func Kernel419() *Model {
	m := &Model{Name: "linux-4.19", MigrationPenalty: 130}
	m.entries = [NumFuncs]Entry{
		FnHardIRQ:      {Base: 600},
		FnNAPIPoll:     {Base: 50},
		FnSKBAlloc:     {Base: 260, PerByte: 0.050},
		FnGROReceive:   {Base: 100, PerByte: 0.105}, // per-byte charged for TCP only
		FnNetifReceive: {Base: 130},
		FnRPS:          {Base: 70},
		FnIPRcv:        {Base: 220},
		FnUDPRcv:       {Base: 220},
		FnTCPRcv:       {Base: 400},
		// The overlay-only stages carry real per-byte cost (header pulls,
		// checksum re-validation and cache-cold data touches on the inner
		// frame), which is what makes the overlay's throughput loss GROW
		// with packet size on fast links (Fig. 2a: 53% UDP loss at 100G
		// with 64 KB messages) while staying hidden at 10 Gb/s.
		FnVXLANRcv:      {Base: 420, PerByte: 0.060},
		FnGROCellPoll:   {Base: 80, PerByte: 0.030},
		FnBridge:        {Base: 320},
		FnVethXmit:      {Base: 280},
		FnBacklog:       {Base: 150, PerByte: 0.035},
		FnSocketDeliver: {Base: 220},
		FnUserCopy:      {Base: 1300, PerByte: 0.040},
		FnAppWork:       {Base: 150},
		FnTxStack:       {Base: 600, PerByte: 0.030},
		FnVXLANXmit:     {Base: 450, PerByte: 0.015},
		FnTxNIC:         {Base: 250},
		FnEnqueueRemote: {Base: 80},
		FnIPIRaise:      {Base: 150},
		FnSoftIRQEntry:  {Base: 120},
		// ONCache-style RX fast path: a warm flow-cache hit replaces the
		// whole inner decap walk (vxlan_rcv, gro_cell_poll, bridge, veth,
		// backlog, second L3 traversal) with one lookup plus a cached
		// decap-and-deliver step. The per-byte term is a single header
		// rewrite pass — the inner frame's payload is never re-touched,
		// which is where the walk's ~0.125 ns/B disappears to.
		FnRxCacheLookup:  {Base: 40},
		FnRxCacheDeliver: {Base: 150, PerByte: 0.020},
	}
	return m
}

// Kernel504 returns the Linux 5.4 calibration. The 5.4 sk_buff
// allocation rework makes allocation cheaper (improvement) while GRO and
// demux grew slightly costlier (the regressions the paper observed when
// porting Falcon from 4.19 to 5.4).
func Kernel504() *Model {
	m := Kernel419().Clone()
	m.Name = "linux-5.4"
	m.Set(FnSKBAlloc, Entry{Base: 205, PerByte: 0.042})
	m.Set(FnGROReceive, Entry{Base: 112, PerByte: 0.115})
	m.Set(FnNetifReceive, Entry{Base: 140})
	m.Set(FnUDPRcv, Entry{Base: 205})
	return m
}

// ByName returns the profile for a kernel name, defaulting to 4.19.
func ByName(name string) *Model {
	if name == "linux-5.4" || name == "5.4" {
		return Kernel504()
	}
	return Kernel419()
}
